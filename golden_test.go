package repro_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestGoldenTraces replays the recorded reference executions under
// testdata/golden and fails on any event-level divergence. These traces
// pin the complete observable behavior — every send, delivery, action id,
// state and phase transition — of the canonical runs; any change to the
// algorithms or engines that alters behavior must update them consciously
// (regenerate with: go run ./cmd/ringelect ... -record <file>).
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		file   string
		spec   string
		alg    string
		k      int
		engine string
	}{
		{"ring122_ak_sync.json", "1 2 2", "A", 2, "sync"},
		{"ring122_bk_sync.json", "1 2 2", "B", 2, "sync"},
		{"figure1_bk_unit.json", "1 3 1 3 2 2 1 2", "B", 3, "unit"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", "golden", c.file))
			if err != nil {
				t.Fatal(err)
			}
			golden, err := trace.Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(golden) == 0 {
				t.Fatal("empty golden trace")
			}
			r, err := ring.Parse(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			var p core.Protocol
			switch c.alg {
			case "A":
				p, err = core.NewAProtocol(c.k, r.LabelBits())
			case "B":
				p, err = core.NewBProtocol(c.k, r.LabelBits())
			}
			if err != nil {
				t.Fatal(err)
			}
			mem := &trace.Mem{}
			switch c.engine {
			case "sync":
				_, err = sim.RunSync(r, p, sim.Options{Sink: mem})
			case "unit":
				_, err = sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{Sink: mem})
			}
			if err != nil {
				t.Fatal(err)
			}
			if d := trace.Diff(golden, mem.Events); d != "" {
				t.Fatalf("behavior drifted from golden trace: %s", d)
			}
		})
	}
}
