package repro_test

import (
	"strings"
	"testing"
	"time"

	repro "repro"
)

func TestElectFacade(t *testing.T) {
	r := repro.MustParseRing("1 3 1 3 2 2 1 2")
	for _, alg := range []repro.Algorithm{repro.AlgorithmA, repro.AlgorithmB, repro.AlgorithmAStar} {
		out, err := repro.Elect(r, alg, 3)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if out.Leader != 0 || out.LeaderLabel != 1 {
			t.Errorf("%s elected p%d (label %s), want p0 (label 1)", alg, out.Leader, out.LeaderLabel)
		}
		if out.Messages <= 0 || out.TimeUnits <= 0 || out.PeakSpaceBits <= 0 {
			t.Errorf("%s: implausible accounting %+v", alg, out)
		}
	}
}

func TestElectBaselinesOnDistinct(t *testing.T) {
	r := repro.MustParseRing("4 2 5 1 3")
	for _, alg := range []repro.Algorithm{repro.AlgorithmChangRoberts, repro.AlgorithmPeterson} {
		out, err := repro.Elect(r, alg, 1)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if out.Leader < 0 || out.Leader >= r.N() {
			t.Errorf("%s: leader index %d out of range", alg, out.Leader)
		}
	}
	// Chang–Roberts specifically elects the minimum = true leader.
	out, err := repro.Elect(r, repro.AlgorithmChangRoberts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := repro.TrueLeader(r); out.Leader != want {
		t.Errorf("CR elected p%d, true leader p%d", out.Leader, want)
	}
}

func TestProtocolForValidation(t *testing.T) {
	sym := repro.MustParseRing("1 2 1 2")
	if _, err := repro.ProtocolFor(sym, repro.AlgorithmA, 2); err == nil || !strings.Contains(err.Error(), "symmetric") {
		t.Errorf("symmetric ring: err = %v", err)
	}
	tight := repro.MustParseRing("1 1 1 2")
	if _, err := repro.ProtocolFor(tight, repro.AlgorithmA, 2); err == nil || !strings.Contains(err.Error(), "multiplicity") {
		t.Errorf("k too small: err = %v", err)
	}
	homonym := repro.MustParseRing("1 2 2")
	if _, err := repro.ProtocolFor(homonym, repro.AlgorithmChangRoberts, 1); err == nil {
		t.Error("CR on homonym ring must be rejected")
	}
	if _, err := repro.NewProtocol(repro.Algorithm(99), 2, 4); err == nil {
		t.Error("unknown algorithm must fail")
	}
}

func TestElectParallel(t *testing.T) {
	r := repro.Figure1Ring()
	out, err := repro.ElectParallel(r, repro.AlgorithmB, 3, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if out.Leader != 0 {
		t.Errorf("parallel Bk elected p%d, want p0", out.Leader)
	}
	ref, err := repro.Elect(r, repro.AlgorithmB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Messages != ref.Messages {
		t.Errorf("parallel run %d messages, simulator %d", out.Messages, ref.Messages)
	}
}

func TestRunTCP(t *testing.T) {
	r := repro.MustParseRing("1 2 2")
	out, err := repro.RunTCP(r, repro.AlgorithmB, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if out.Leader != 0 || out.LeaderLabel != 1 {
		t.Errorf("TCP Bk elected p%d (label %s), want p0 (label 1)", out.Leader, out.LeaderLabel)
	}
	ref, err := repro.Elect(r, repro.AlgorithmB, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Messages != ref.Messages {
		t.Errorf("TCP run %d messages, simulator %d", out.Messages, ref.Messages)
	}
	if out.PeakSpaceBits <= 0 {
		t.Errorf("implausible peak space %d", out.PeakSpaceBits)
	}
	// Validation errors surface before any socket work.
	if _, err := repro.RunTCP(repro.MustParseRing("1 2 1 2"), repro.AlgorithmA, 2, time.Second); err == nil {
		t.Error("symmetric ring must fail in RunTCP too")
	}
}

func TestRandomRingFacade(t *testing.T) {
	r, err := repro.RandomRing(7, 20, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 20 || !r.InKk(3) || !r.IsAsymmetric() {
		t.Errorf("RandomRing = %s outside A ∩ K3", r)
	}
	// Same seed, same ring.
	r2, err := repro.RandomRing(7, 20, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != r2.String() {
		t.Error("RandomRing must be deterministic per seed")
	}
}

func TestRingConstructors(t *testing.T) {
	r, err := repro.NewRing([]repro.Label{1, 2, 3})
	if err != nil || r.N() != 3 {
		t.Fatalf("NewRing = %v, %v", r, err)
	}
	if _, err := repro.NewRing([]repro.Label{1}); err == nil {
		t.Error("single-process ring must fail")
	}
	r2, err := repro.ParseRing("1, 2, 3")
	if err != nil || r2.String() != r.String() {
		t.Fatalf("ParseRing = %v, %v", r2, err)
	}
	if _, err := repro.ParseRing("zzz"); err == nil {
		t.Error("garbage spec must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseRing must panic on bad input")
		}
	}()
	repro.MustParseRing("not a ring")
}

func TestElectRejectsBadInputs(t *testing.T) {
	if _, err := repro.Elect(repro.MustParseRing("1 1 2"), repro.AlgorithmA, 1); err == nil {
		t.Error("k below multiplicity must fail")
	}
	if _, err := repro.ElectParallel(repro.MustParseRing("1 2 1 2"), repro.AlgorithmB, 2, time.Second); err == nil {
		t.Error("symmetric ring must fail in ElectParallel too")
	}
	if _, err := repro.NewProtocol(repro.AlgorithmKnownN, 2, 4); err == nil {
		t.Error("KnownN without a ring must direct the caller to ProtocolFor")
	}
}

func TestElectKnownNViaFacade(t *testing.T) {
	r := repro.MustParseRing("1 3 1 3 2 2 1 2")
	out, err := repro.Elect(r, repro.AlgorithmKnownN, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Leader != 0 {
		t.Errorf("KnownN elected p%d, want p0", out.Leader)
	}
	if out.Messages != r.N()*r.N() {
		t.Errorf("KnownN messages = %d, want n² = %d", out.Messages, r.N()*r.N())
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[repro.Algorithm]string{
		repro.AlgorithmA: "Ak", repro.AlgorithmB: "Bk", repro.AlgorithmAStar: "A*",
		repro.AlgorithmChangRoberts: "ChangRoberts", repro.AlgorithmPeterson: "Peterson",
	}
	for alg, want := range names {
		if alg.String() != want {
			t.Errorf("%d String = %q, want %q", alg, alg.String(), want)
		}
	}
	if !strings.Contains(repro.Algorithm(42).String(), "42") {
		t.Error("unknown algorithm must render its number")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]repro.Algorithm{
		"A": repro.AlgorithmA, "a": repro.AlgorithmA, "Ak": repro.AlgorithmA,
		"B": repro.AlgorithmB, "bk": repro.AlgorithmB,
		"Astar": repro.AlgorithmAStar, "A*": repro.AlgorithmAStar,
		"CR": repro.AlgorithmChangRoberts, "changroberts": repro.AlgorithmChangRoberts,
		"Peterson": repro.AlgorithmPeterson, "KNOWNN": repro.AlgorithmKnownN,
	}
	for name, want := range cases {
		got, err := repro.ParseAlgorithm(name)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := repro.ParseAlgorithm("nope"); err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("bad name: err = %v", err)
	}
	// Parse and String must round-trip for every real algorithm.
	for _, alg := range []repro.Algorithm{
		repro.AlgorithmA, repro.AlgorithmB, repro.AlgorithmAStar,
		repro.AlgorithmChangRoberts, repro.AlgorithmPeterson, repro.AlgorithmKnownN,
	} {
		if got, err := repro.ParseAlgorithm(alg.String()); err != nil || got != alg {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", alg.String(), got, err, alg)
		}
	}
}

func TestTrueLeaderFacade(t *testing.T) {
	if l, ok := repro.TrueLeader(repro.MustParseRing("3 1 2")); !ok || l != 1 {
		t.Errorf("TrueLeader = %d/%t, want 1/true", l, ok)
	}
	if _, ok := repro.TrueLeader(repro.MustParseRing("1 1")); ok {
		t.Error("symmetric ring must have no true leader")
	}
}
