// Package repro is a Go reproduction of "Leader Election in Asymmetric
// Labeled Unidirectional Rings" (Altisen, Datta, Devismes, Durand, Larmore;
// IPPS 2017): deterministic process-terminating leader election for rings
// of homonym processes that know neither n nor any bound on it — only a
// bound k on label multiplicity.
//
// The package is a façade over the implementation packages:
//
//   - internal/core — the guarded-action machine model and the paper's
//     algorithms Ak (Table 1) and Bk (Table 2), plus the A* extension;
//   - internal/sim — the deterministic simulator (synchronous, unit-delay,
//     random and adversarial schedules) with time/message/space accounting;
//   - internal/gorun — the goroutine/channel parallel runtime;
//   - internal/netring — the TCP transport engine: real sockets, a
//     sequence-numbered wire protocol, reconnect/backoff (RunTCP here,
//     multi-process rings via cmd/ringnode);
//   - internal/ring — labeled rings, the classes Kk, A, U*, generators;
//   - internal/lowerbound — the Lemma 1 / Theorem 1 constructions;
//   - internal/experiments — the E1…E13 reproduction harness.
//
// Quick start:
//
//	r := repro.MustParseRing("1 3 1 3 2 2 1 2")
//	out, err := repro.Elect(r, repro.AlgorithmB, 3)
//	// out.Leader == 0, the process whose counter-clockwise label
//	// sequence is a Lyndon word.
//
// See README.md for the architecture overview and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro
