// Goroutines: run the election as real concurrency — one goroutine per
// process, channel-backed FIFO links — and cross-check it against the
// deterministic simulator.
//
// Because the ring is unidirectional with FIFO links and the machines are
// deterministic, the sequence of messages each process receives is the
// same in every schedule; the Go scheduler's nondeterminism changes only
// the interleaving. The example demonstrates that: leader and exact
// message count agree between the two engines across repeated parallel
// runs.
//
// Run: go run ./examples/goroutines
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
)

func main() {
	// A 64-process asymmetric ring with homonyms (multiplicity ≤ 3 over a
	// 30-label alphabet) that no process knows the size of.
	r, err := repro.RandomRing(42, 64, 3, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring: n=%d, max multiplicity %d, alphabet %d labels\n", r.N(), r.MaxMultiplicity(), len(r.Multiplicities()))

	ref, err := repro.Elect(r, repro.AlgorithmB, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator:  leader p%d (label %s), %d messages\n", ref.Leader, ref.LeaderLabel, ref.Messages)

	for run := 1; run <= 5; run++ {
		start := time.Now()
		out, err := repro.ElectParallel(r, repro.AlgorithmB, 3, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		agree := "agrees"
		if out.Leader != ref.Leader || out.Messages != ref.Messages {
			agree = "DISAGREES"
		}
		fmt.Printf("goroutines #%d: leader p%d, %d messages in %v (%s)\n",
			run, out.Leader, out.Messages, time.Since(start).Round(time.Millisecond), agree)
		if agree != "agrees" {
			log.Fatal("engines disagree — schedule-independence violated")
		}
	}
	fmt.Println("\nAll parallel runs elected the same leader with the same message count:")
	fmt.Println("asynchrony changes interleavings, never outcomes, on FIFO unidirectional rings.")
}
