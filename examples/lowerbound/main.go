// Lower bound: play out the proof of Theorem 1 ("there is no leader
// election algorithm for the class U*") on a concrete algorithm.
//
// The construction of Lemma 1: take any algorithm ALG that terminates in T
// synchronous steps on a distinct-label ring R_n. Build R_{n,k} — the
// labels of R_n repeated k times, then one fresh label X — with k large
// enough that T ≤ (k-2)n. R_{n,k} is in U* ∩ Kk, but within T steps the
// processes at positions (k-2)n+ℓ and (k-1)n+ℓ cannot have heard from the
// unique-labeled process, so they behave exactly like p_ℓ of R_n: both
// declare themselves leader.
//
// Run: go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/ring"
	"repro/internal/sim"
)

func main() {
	n := 6
	base := ring.Distinct(n)
	fmt.Printf("base ring R_n = %s (distinct labels)\n\n", base)

	// The victim: algorithm Ak hard-wired with k0 = 2. It is a correct,
	// terminating election algorithm for every ring in A ∩ K2 — including
	// every distinct-label ring.
	alg, err := core.NewAProtocol(2, ring.Label(999).Bits())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.RunSync(base, alg, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on R_n: elects p%d in T = %d synchronous steps\n", alg.Name(), res.LeaderIndex, res.Steps)

	// Property (*): on R_{n,k}, process q_j is indistinguishable from
	// p_{j mod n} for the first j steps.
	k := (res.Steps+n-1)/n + 3
	rep, err := lowerbound.CheckIndistinguishability(base, k, 999, alg, sim.Options{})
	if err != nil {
		log.Fatalf("property (*) violated: %v", err)
	}
	fmt.Printf("property (*) verified on R_{n,%d}: %d state pairs compared over %d steps, all equal\n",
		k, rep.PairsChecked, rep.StepsChecked)

	// The contradiction: the same unchanged algorithm on R_{n,k}.
	demo, err := lowerbound.DemonstrateTwoLeaders(base, alg, 999, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	big, _ := lowerbound.BuildRnk(base, demo.K, 999)
	fmt.Printf("\nR_{n,k} with k=%d: %s  (kn+1 = %d processes; in U* ∩ K%d since label 999 is unique)\n",
		demo.K, big, big.N(), demo.K)
	if demo.Violation == nil {
		log.Fatal("expected a spec violation — the construction should defeat the algorithm")
	}
	fmt.Printf("running %s there: %v\n\n", alg.Name(), demo.Violation)
	fmt.Printf("Two processes declared themselves leader — the specification's bullet 1 is violated,\n")
	fmt.Printf("exactly as Lemma 1 predicts. Knowing a multiplicity bound k is essential: no single\n")
	fmt.Printf("algorithm works for all of U* (Theorem 1), and any correct algorithm for U* ∩ Kk\n")
	fmt.Printf("needs ≥ 1+(k-2)n = %d steps on R_n (Corollary 2: Ω(kn)).\n",
		lowerbound.MinStepsBound(n, demo.K))
}
