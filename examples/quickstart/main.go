// Quickstart: elect a leader on a small ring of homonym processes.
//
// The ring [1 2 2] is the paper's introductory example: two of its three
// processes share label 2, no process knows the ring size, yet leader
// election is solvable because the labeling is asymmetric and every
// process knows the multiplicity bound k = 2.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	r := repro.MustParseRing("1 2 2")
	fmt.Printf("ring %s: n=%d (unknown to the processes), max multiplicity %d\n",
		r, r.N(), r.MaxMultiplicity())

	// The "true leader" is the process whose counter-clockwise label
	// sequence is a Lyndon word — the canonical distinguished process of an
	// asymmetric ring.
	if tl, ok := repro.TrueLeader(r); ok {
		fmt.Printf("true leader: p%d (label %s)\n", tl, r.Label(tl))
	}

	// Both of the paper's algorithms elect exactly that process; they
	// differ in cost, not outcome.
	for _, alg := range []repro.Algorithm{repro.AlgorithmA, repro.AlgorithmB} {
		out, err := repro.Elect(r, alg, 2)
		if err != nil {
			log.Fatalf("electing with %s: %v", alg, err)
		}
		fmt.Printf("%-3s elected p%d (label %s): %4.0f time units, %3d messages, %3d bits/process\n",
			alg, out.Leader, out.LeaderLabel, out.TimeUnits, out.Messages, out.PeakSpaceBits)
	}

	// A symmetric ring, by contrast, is rejected up front: no deterministic
	// algorithm can break its rotational symmetry (Angluin 1980).
	sym := repro.MustParseRing("1 2 1 2")
	if _, err := repro.Elect(sym, repro.AlgorithmA, 2); err != nil {
		fmt.Printf("ring %s: %v\n", sym, err)
	}
}
