// Trade-off: the paper's two algorithms occupy opposite ends of a
// time/space trade-off; this example sweeps ring size and multiplicity
// bound and prints the crossover table (experiment E9 in miniature).
//
//	Ak:  time ≤ (2k+2)n (optimal, Corollary 4)   space Θ(k·n·b) bits
//	A*:  time ≈ (k+2)n (Fine–Wilf early stop)     space Θ(k·n·b) bits
//	Bk:  time Θ(k²n²)                             space 2⌈log k⌉+3b+5 bits
//
// Run: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/ring"

	repro "repro"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ring\tn\tk\talg\ttime units\tmessages\tpeak bits/proc")

	for _, n := range []int{16, 32, 64} {
		for _, k := range []int{2, 4} {
			// Worst case for the string-growth algorithms: all labels
			// distinct, so no label reaches the 2k+1 (resp. k+1) threshold
			// before ~2kn (resp. ~kn) tokens arrive.
			r := ring.Distinct(n)
			for _, alg := range []repro.Algorithm{repro.AlgorithmA, repro.AlgorithmAStar, repro.AlgorithmB} {
				out, err := repro.Elect(r, alg, k)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(tw, "distinct\t%d\t%d\t%s\t%.0f\t%d\t%d\n",
					n, k, alg, out.TimeUnits, out.Messages, out.PeakSpaceBits)
			}
		}
	}

	// Best case: every label at maximum multiplicity k — thresholds are
	// reached k times sooner, so Ak and A* speed up while Bk's phase count
	// is unchanged in order.
	for _, k := range []int{2, 4} {
		r, err := ring.BlockMultiplicity(16, k) // n = 16k
		if err != nil {
			log.Fatal(err)
		}
		for _, alg := range []repro.Algorithm{repro.AlgorithmA, repro.AlgorithmAStar, repro.AlgorithmB} {
			out, err := repro.Elect(r, alg, k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "blocks M=k\t%d\t%d\t%s\t%.0f\t%d\t%d\n",
				r.N(), k, alg, out.TimeUnits, out.Messages, out.PeakSpaceBits)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading the table: Bk needs orders of magnitude more time but its per-process")
	fmt.Println("state never grows with n — the classical time/space trade-off the paper proves.")
}
