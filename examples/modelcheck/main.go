// Modelcheck: exhaustively verify small rings instead of sampling them.
//
// Two exhaustive tools are demonstrated:
//
//  1. sim.ExploreAll enumerates EVERY asynchronous schedule (all
//     interleavings of initial actions and FIFO deliveries) of an
//     election and proves outcome confluence — the property that makes
//     the engines agree in experiment E10;
//  2. the bounded-n decision protocol (Dobrev–Pelc model, paper ref [4])
//     shows why the paper prefers a multiplicity bound: with size bounds
//     [m, M] wide enough to admit a symmetric multiple, even the paper's
//     flagship ring 1 2 2 becomes provably impossible.
//
// Run: go run ./examples/modelcheck
package main

import (
	"fmt"
	"log"

	"repro/internal/boundedn"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
)

func main() {
	fmt.Println("Exhaustive schedule exploration (every interleaving, not a sample):")
	for _, spec := range []string{"1 2 2", "2 1 3", "1 1 2 2", "2 1 2 1 3"} {
		r, err := ring.Parse(spec)
		if err != nil {
			log.Fatal(err)
		}
		k := max(2, r.MaxMultiplicity())
		p, err := core.NewAProtocol(k, r.LabelBits())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.ExploreAll(r, p, 2_000_000)
		if err != nil {
			log.Fatalf("%s on %s: %v", p.Name(), r, err)
		}
		want, _ := r.TrueLeader()
		verdict := "== true leader"
		if res.LeaderIndex != want {
			verdict = fmt.Sprintf("!= true leader p%d", want)
		}
		fmt.Printf("  %-12s %s: %5d reachable configs, every schedule elects p%d (%s), %d msgs, link depth ≤ %d\n",
			r, p.Name(), res.States, res.LeaderIndex, verdict, res.Messages, res.MaxLinkDepth)
	}

	fmt.Println("\nWhy a multiplicity bound instead of size bounds (paper §I, experiment E12):")
	r := ring.Ring122()
	for _, bounds := range [][2]int{{2, 5}, {2, 6}, {2, 12}} {
		res, err := boundedn.Run(r, bounds[0], bounds[1])
		if err != nil {
			log.Fatal(err)
		}
		outcome := res.Verdict.String()
		if res.Verdict == boundedn.VerdictElected {
			outcome = fmt.Sprintf("elects p%d", res.LeaderIndex)
		}
		fmt.Printf("  ring %s, know %d ≤ n ≤ %d: %s\n", r, bounds[0], bounds[1], outcome)
	}
	fmt.Println("\nWith M ≥ 6 the observer cannot exclude the symmetric double 1 2 2 1 2 2,")
	fmt.Println("so election is impossible — yet Ak with k=2 elects on the same ring (quickstart).")
}
