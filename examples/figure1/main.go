// Figure 1: replay the paper's worked execution of algorithm Bk with
// k = 3 on the 8-process ring [1 3 1 3 2 2 1 2], printing the
// phase-by-phase table (guests and active/passive processes) and checking
// it against the figure.
//
// Run: go run ./examples/figure1
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/ring"
)

func main() {
	table, res, err := experiments.RunFigure1()
	if err != nil {
		log.Fatal(err)
	}

	r := ring.Figure1()
	fmt.Printf("Bk with k=%d on %s (paper, Figure 1)\n\n", experiments.Figure1K, r)
	fmt.Print(table.Render(r, 1, 4))
	fmt.Printf("\n● = active (white in the figure), × = passive (black), g = p.guest\n")
	fmt.Printf("\nPhase mechanics: in phase i the value LLabels(p)[i] of every still-active\n")
	fmt.Printf("process circulates; holders of a non-minimal value turn passive; PHASE_SHIFT\n")
	fmt.Printf("messages then shift every guest one process clockwise for phase i+1.\n\n")

	fmt.Printf("elected: p%d after %d phases (X = 9: the shortest prefix of LLabels(p0)\n", res.LeaderIndex, table.Phases())
	fmt.Printf("containing k+1 = 4 copies of p0's label)\n")
	fmt.Printf("cost: %d synchronous steps, %d messages, peak space %d bits/process\n\n",
		res.Steps, res.Messages, res.PeakSpaceBits)

	if bad := experiments.CheckFigure1(table, res.LeaderIndex); len(bad) > 0 {
		for _, b := range bad {
			fmt.Println("MISMATCH:", b)
		}
		log.Fatal("Figure 1 did not reproduce")
	}
	fmt.Println("Figure 1 reproduced exactly.")
}
