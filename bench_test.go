// Benchmarks regenerating the paper's artifacts, one per experiment table
// or figure (see DESIGN.md §4), plus microbenchmarks of the word and ring
// substrates. Domain metrics (messages, abstract time units) are attached
// via ReportMetric so `go test -bench` output doubles as a measurement
// table.
package repro_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gorun"
	"repro/internal/lowerbound"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/words"
)

// mustProto adapts (Protocol, error) constructors for inline use:
// mustProto(b)(core.NewAProtocol(k, bits)).
func mustProto(b *testing.B) func(core.Protocol, error) core.Protocol {
	return func(p core.Protocol, err error) core.Protocol {
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
}

func runSync(b *testing.B, r *ring.Ring, p core.Protocol) *sim.Result {
	b.Helper()
	res, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func runUnit(b *testing.B, r *ring.Ring, p core.Protocol) *sim.Result {
	b.Helper()
	res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkLemma1Construction regenerates E1/E2: build R_{n,k}, verify
// property (*), and elicit the two-leader violation.
func BenchmarkLemma1Construction(b *testing.B) {
	base := ring.Distinct(6)
	proto := mustProto(b)(core.NewAProtocol(2, ring.Label(999).Bits()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.CheckIndistinguishability(base, 4, 999, proto, sim.Options{}); err != nil {
			b.Fatal(err)
		}
		res, err := lowerbound.DemonstrateTwoLeaders(base, proto, 999, sim.Options{})
		if err != nil || res.Violation == nil {
			b.Fatalf("expected violation, got %v / %+v", err, res)
		}
	}
}

// BenchmarkLowerBoundSweep regenerates one point of E3: a synchronous run
// against the Ω(kn) bound.
func BenchmarkLowerBoundSweep(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		for _, k := range []int{2, 4} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				r := ring.Distinct(n)
				p := mustProto(b)(core.NewAProtocol(k, r.LabelBits()))
				b.ReportAllocs()
				var steps int
				for i := 0; i < b.N; i++ {
					steps = runSync(b, r, p).Steps
				}
				b.ReportMetric(float64(steps), "steps")
				b.ReportMetric(float64(lowerbound.MinStepsBound(n, k)), "bound")
			})
		}
	}
}

// BenchmarkAkTime regenerates E4 (Theorem 2): Ak on worst (M=1) and best
// (M=k) cases under unit delays.
func BenchmarkAkTime(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128} {
		for _, k := range []int{2, 4} {
			b.Run(fmt.Sprintf("worst/n=%d/k=%d", n, k), func(b *testing.B) {
				r := ring.Distinct(n)
				p := mustProto(b)(core.NewAProtocol(k, r.LabelBits()))
				b.ReportAllocs()
				var res *sim.Result
				for i := 0; i < b.N; i++ {
					res = runUnit(b, r, p)
				}
				b.ReportMetric(res.TimeUnits, "timeunits")
				b.ReportMetric(float64(res.Messages), "msgs")
			})
			if n%k == 0 && n/k >= 2 {
				b.Run(fmt.Sprintf("best/n=%d/k=%d", n, k), func(b *testing.B) {
					r, err := ring.BlockMultiplicity(n/k, k)
					if err != nil {
						b.Fatal(err)
					}
					p := mustProto(b)(core.NewAProtocol(k, r.LabelBits()))
					b.ReportAllocs()
					var res *sim.Result
					for i := 0; i < b.N; i++ {
						res = runUnit(b, r, p)
					}
					b.ReportMetric(res.TimeUnits, "timeunits")
					b.ReportMetric(float64(res.Messages), "msgs")
				})
			}
		}
	}
}

// BenchmarkBkTime regenerates E5 (Theorem 4): Bk under unit delays.
func BenchmarkBkTime(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		for _, k := range []int{2, 4} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				r := ring.Distinct(n)
				p := mustProto(b)(core.NewBProtocol(k, r.LabelBits()))
				var res *sim.Result
				for i := 0; i < b.N; i++ {
					res = runUnit(b, r, p)
				}
				b.ReportMetric(res.TimeUnits, "timeunits")
				b.ReportMetric(float64(res.Messages), "msgs")
				b.ReportMetric(float64(res.PeakSpaceBits), "spacebits")
			})
		}
	}
}

// BenchmarkAStarTime measures the extension variant at the (k+2)n point
// (part of E9's ablation).
func BenchmarkAStarTime(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128} {
		for _, k := range []int{2, 4} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				r := ring.Distinct(n)
				p := mustProto(b)(core.NewStarProtocol(k, r.LabelBits()))
				var res *sim.Result
				for i := 0; i < b.N; i++ {
					res = runUnit(b, r, p)
				}
				b.ReportMetric(res.TimeUnits, "timeunits")
				b.ReportMetric(float64(res.Messages), "msgs")
			})
		}
	}
}

// BenchmarkFigure1 regenerates E6: the traced Bk run plus the phase-table
// reconstruction.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, res, err := experiments.RunFigure1()
		if err != nil {
			b.Fatal(err)
		}
		if bad := experiments.CheckFigure1(table, res.LeaderIndex); len(bad) > 0 {
			b.Fatalf("figure mismatch: %v", bad)
		}
	}
}

// BenchmarkStateDiagram regenerates E7: a fully traced run with transition
// extraction and Figure 2 conformance checking.
func BenchmarkStateDiagram(b *testing.B) {
	r := ring.Figure1()
	p := mustProto(b)(core.NewBProtocol(3, r.LabelBits()))
	for i := 0; i < b.N; i++ {
		mem := &trace.Mem{}
		if _, err := sim.RunSync(r, p, sim.Options{Sink: mem}); err != nil {
			b.Fatal(err)
		}
		if bad := trace.CheckAgainstFigure2(trace.Transitions(mem.Events)); bad != nil {
			b.Fatalf("rogue transitions: %v", bad)
		}
	}
}

// BenchmarkActionAttribution regenerates E8: a run under an action-counting
// sink.
func BenchmarkActionAttribution(b *testing.B) {
	r := ring.Figure1()
	p := mustProto(b)(core.NewAProtocol(3, r.LabelBits()))
	for i := 0; i < b.N; i++ {
		counts := trace.ActionCount{}
		if _, err := sim.RunSync(r, p, sim.Options{Sink: counts}); err != nil {
			b.Fatal(err)
		}
		if counts["A3"] != 1 {
			b.Fatalf("attribution broken: %v", counts)
		}
	}
}

// BenchmarkTradeoff regenerates E9: all five algorithms on one
// representative point.
func BenchmarkTradeoff(b *testing.B) {
	r := ring.Distinct(32)
	bits := r.LabelBits()
	algs := []core.Protocol{
		mustProto(b)(core.NewAProtocol(3, bits)),
		mustProto(b)(core.NewStarProtocol(3, bits)),
		mustProto(b)(core.NewBProtocol(3, bits)),
		mustProto(b)(baseline.NewCRProtocol(bits)),
		mustProto(b)(baseline.NewPetersonProtocol(bits)),
	}
	for _, p := range algs {
		b.Run(p.Name(), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res = runUnit(b, r, p)
			}
			b.ReportMetric(res.TimeUnits, "timeunits")
			b.ReportMetric(float64(res.Messages), "msgs")
			b.ReportMetric(float64(res.PeakSpaceBits), "spacebits")
		})
	}
}

// BenchmarkEngines regenerates E10: the same election through the
// event-driven simulator and the goroutine runtime.
func BenchmarkEngines(b *testing.B) {
	r, err := ring.RandomAsymmetric(rand.New(rand.NewSource(1)), 64, 3, 30)
	if err != nil {
		b.Fatal(err)
	}
	p := mustProto(b)(core.NewAProtocol(3, r.LabelBits()))
	b.Run("simulator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runUnit(b, r, p)
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gorun.Run(r, p, time.Minute); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGorunScaling measures the goroutine engine's wall-clock cost as
// the ring grows (one goroutine per process plus one pump per link — the
// hpc-parallel angle: Θ(n) goroutines with Θ(messages) channel operations).
func BenchmarkGorunScaling(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r, err := ring.RandomAsymmetric(rand.New(rand.NewSource(9)), n, 4, n)
			if err != nil {
				b.Fatal(err)
			}
			p := mustProto(b)(core.NewAProtocol(4, r.LabelBits()))
			var msgs int
			for i := 0; i < b.N; i++ {
				res, err := gorun.Run(r, p, 5*time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Messages
			}
			b.ReportMetric(float64(msgs), "msgs")
			b.ReportMetric(float64(msgs)/float64(b.Elapsed().Seconds()/float64(b.N))/1e6, "Mmsgs/s")
		})
	}
}

// BenchmarkGorunParallelism measures how the goroutine engine responds to
// the number of OS threads.
func BenchmarkGorunParallelism(b *testing.B) {
	r, err := ring.RandomAsymmetric(rand.New(rand.NewSource(10)), 512, 4, 512)
	if err != nil {
		b.Fatal(err)
	}
	p := mustProto(b)(core.NewAProtocol(4, r.LabelBits()))
	for _, procs := range []int{1, 2, 4, 8} {
		if procs > runtime.NumCPU() {
			continue
		}
		b.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(b *testing.B) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			for i := 0; i < b.N; i++ {
				if _, err := gorun.Run(r, p, 5*time.Minute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExploreAll measures the exhaustive schedule model checker.
func BenchmarkExploreAll(b *testing.B) {
	r := ring.MustNew(2, 1, 2, 1, 3)
	p := mustProto(b)(core.NewAProtocol(2, r.LabelBits()))
	var states int
	for i := 0; i < b.N; i++ {
		res, err := sim.ExploreAll(r, p, 2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkExploreAllParallel measures the sharded-visited-set explorer at
// several pool widths over the same state space as BenchmarkExploreAll.
// workers=1 is the serial DFS baseline.
func BenchmarkExploreAllParallel(b *testing.B) {
	r := ring.MustNew(2, 1, 2, 1, 3)
	p := mustProto(b)(core.NewAProtocol(2, r.LabelBits()))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res, err := sim.ExploreAllParallel(r, p, 2_000_000, workers)
				if err != nil {
					b.Fatal(err)
				}
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkWordsBooth measures the least-rotation substrate on ring-sized
// sequences.
func BenchmarkWordsBooth(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := make([]ring.Label, 4096)
	for i := range s {
		s[i] = ring.Label(rng.Intn(8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		words.LeastRotationIndex(s)
	}
}

// BenchmarkWordsIncremental measures the online failure-function append
// used by Ak's string variable.
func BenchmarkWordsIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	labels := make([]ring.Label, 4096)
	for i := range labels {
		labels[i] = ring.Label(rng.Intn(8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var inc words.Incremental[ring.Label]
		for _, l := range labels {
			inc.Append(l)
		}
		if inc.SmallestPeriod() == 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkTrueLeader measures the Lyndon-based true-leader computation.
func BenchmarkTrueLeader(b *testing.B) {
	r, err := ring.RandomAsymmetric(rand.New(rand.NewSource(4)), 512, 4, 200)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.TrueLeader(); !ok {
			b.Fatal("asymmetric ring lost its leader")
		}
	}
}
