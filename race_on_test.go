//go:build race

package repro_test

// raceEnabled reports whether this test binary was built with -race;
// allocation-count assertions are skipped there (the race runtime inserts
// its own allocations).
const raceEnabled = true
