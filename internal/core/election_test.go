// Package core_test drives the algorithms through the engines (sim,
// gorun), which the in-package tests cannot import without a cycle.
package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
)

// electSync runs p's synchronous execution on r and fails the test on any
// engine or specification error.
func electSync(t *testing.T, r *ring.Ring, p core.Protocol) *sim.Result {
	t.Helper()
	res, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		t.Fatalf("%s on %s: %v", p.Name(), r, err)
	}
	return res
}

// checkTrueLeader asserts the run elected the ring's true leader and that
// every process learned its label.
func checkTrueLeader(t *testing.T, r *ring.Ring, p core.Protocol, res *sim.Result) {
	t.Helper()
	want, ok := r.TrueLeader()
	if !ok {
		t.Fatalf("ring %s has no true leader", r)
	}
	if res.LeaderIndex != want {
		t.Fatalf("%s on %s elected p%d, true leader is p%d", p.Name(), r, res.LeaderIndex, want)
	}
	for i, st := range res.Statuses {
		if !st.Done || !st.LeaderSet || st.Leader != r.Label(want) {
			t.Fatalf("%s on %s: process %d status %+v, want leader label %s", p.Name(), r, i, st, r.Label(want))
		}
	}
}

func protoFor(t *testing.T, alg string, k int, r *ring.Ring) core.Protocol {
	t.Helper()
	var p core.Protocol
	var err error
	switch alg {
	case "A":
		p, err = core.NewAProtocol(k, r.LabelBits())
	case "B":
		p, err = core.NewBProtocol(k, r.LabelBits())
	case "S":
		p, err = core.NewStarProtocol(k, r.LabelBits())
	default:
		t.Fatalf("unknown alg %q", alg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProtocolValidation(t *testing.T) {
	if _, err := core.NewAProtocol(0, 4); err == nil {
		t.Error("Ak with k=0 must fail")
	}
	if _, err := core.NewAProtocol(1, 0); err == nil {
		t.Error("Ak with labelBits=0 must fail")
	}
	if _, err := core.NewBProtocol(1, 4); err == nil {
		t.Error("Bk with k=1 must fail (paper defines Bk for k >= 2)")
	}
	if _, err := core.NewBProtocol(2, 0); err == nil {
		t.Error("Bk with labelBits=0 must fail")
	}
	if _, err := core.NewStarProtocol(0, 4); err == nil {
		t.Error("A* with k=0 must fail")
	}
	if _, err := core.NewStarProtocol(1, 0); err == nil {
		t.Error("A* with labelBits=0 must fail")
	}
	a, _ := core.NewAProtocol(3, 4)
	if a.Name() != "Ak(k=3)" {
		t.Errorf("Name = %q", a.Name())
	}
	b, _ := core.NewBProtocol(2, 4)
	if b.Name() != "Bk(k=2)" {
		t.Errorf("Name = %q", b.Name())
	}
	s, _ := core.NewStarProtocol(2, 4)
	if s.Name() != "A*(k=2)" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestElectKnownRings(t *testing.T) {
	cases := []struct {
		spec string
		k    int
	}{
		{"1 2", 1},
		{"2 1", 1},
		{"1 2 2", 2},
		{"2 1 2", 2},
		{"1 3 1 3 2 2 1 2", 3},
		{"5 4 3 2 1", 1},
		{"1 1 2 2 3 3", 2},
		{"7 3 7 3 7 5", 3},
	}
	for _, c := range cases {
		r, err := ring.Parse(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []string{"A", "S"} {
			p := protoFor(t, alg, c.k, r)
			checkTrueLeader(t, r, p, electSync(t, r, p))
		}
		kb := max(2, c.k)
		p := protoFor(t, "B", kb, r)
		checkTrueLeader(t, r, p, electSync(t, r, p))
	}
}

// TestElectExhaustiveSmallRings is the small-model check: every asymmetric
// labeling of rings with n ≤ 6 over a 3-label alphabet elects its true
// leader under all three algorithms, with k equal to the exact maximum
// multiplicity and with a slack bound k+1.
func TestElectExhaustiveSmallRings(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive model check skipped in -short mode")
	}
	// One representative per rotation class suffices: rotation
	// equivariance (TestRotationEquivariance) transfers the result to the
	// other n-1 rotations.
	checked := 0
	for n := 2; n <= 7; n++ {
		ring.AllAsymmetricNecklaces(n, 3, func(rr *ring.Ring) bool {
			r := ring.MustNew(rr.Labels()...) // the enumerator reuses its buffer
			m := r.MaxMultiplicity()
			for _, k := range []int{m, m + 1} {
				for _, alg := range []string{"A", "S"} {
					p := protoFor(t, alg, k, r)
					checkTrueLeader(t, r, p, electSync(t, r, p))
				}
				kb := max(2, k)
				p := protoFor(t, "B", kb, r)
				checkTrueLeader(t, r, p, electSync(t, r, p))
			}
			checked++
			return true
		})
	}
	if checked < 400 {
		t.Fatalf("only %d asymmetric rotation classes checked — enumerator broken?", checked)
	}
}

// TestElectRandomRings drives larger random rings from A ∩ Kk through all
// algorithms and schedulers.
func TestElectRandomRings(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(25)
		k := 2 + rng.Intn(3)
		alpha := max(3, (n+k-1)/k+1)
		r, err := ring.RandomAsymmetric(rng, n, k, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []string{"A", "S", "B"} {
			p := protoFor(t, alg, k, r)
			res := electSync(t, r, p)
			checkTrueLeader(t, r, p, res)

			// The same election under an asynchronous random schedule must
			// produce the same leader and message count (confluence on FIFO
			// rings).
			res2, err := sim.RunAsync(r, p, sim.NewUniformDelay(int64(trial), 0.01), sim.Options{})
			if err != nil {
				t.Fatalf("%s async on %s: %v", p.Name(), r, err)
			}
			if res2.LeaderIndex != res.LeaderIndex || res2.Messages != res.Messages {
				t.Fatalf("%s on %s: async disagreed with sync (p%d/%d vs p%d/%d)",
					p.Name(), r, res2.LeaderIndex, res2.Messages, res.LeaderIndex, res.Messages)
			}
		}
	}
}

// TestTheorem2Bounds property-checks Ak's proved bounds on random rings:
// time ≤ (2k+2)n, messages ≤ n²(2k+1)+n, per-process space ≤
// (2k+1)nb+2b+3.
func TestTheorem2Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(29)
		k := 1 + rng.Intn(4)
		alpha := max(2, (n+k-1)/k+1)
		r, err := ring.RandomAsymmetric(rng, n, k, alpha)
		if err != nil {
			t.Fatal(err)
		}
		p := protoFor(t, "A", k, r)
		res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b := r.LabelBits()
		if limit := float64((2*k + 2) * n); res.TimeUnits > limit {
			t.Errorf("Ak time %v > (2k+2)n = %v on %s (k=%d)", res.TimeUnits, limit, r, k)
		}
		if limit := n*n*(2*k+1) + n; res.Messages > limit {
			t.Errorf("Ak messages %d > n²(2k+1)+n = %d on %s (k=%d)", res.Messages, limit, r, k)
		}
		if limit := (2*k+1)*n*b + 2*b + 3; res.PeakSpaceBits > limit {
			t.Errorf("Ak space %d > (2k+1)nb+2b+3 = %d on %s (k=%d)", res.PeakSpaceBits, limit, r, k)
		}
	}
}

// TestTheorem4Bounds property-checks Bk: space is exactly 2⌈log k⌉+3b+5 on
// every ring, and time/messages stay within a small constant of k²n².
func TestTheorem4Bounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(21)
		k := 2 + rng.Intn(3)
		alpha := max(2, (n+k-1)/k+1)
		r, err := ring.RandomAsymmetric(rng, n, k, alpha)
		if err != nil {
			t.Fatal(err)
		}
		p := protoFor(t, "B", k, r)
		res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b := r.LabelBits()
		wantSpace := 2*ceilLog2(k) + 3*b + 5
		if res.PeakSpaceBits != wantSpace {
			t.Errorf("Bk space %d != 2⌈log k⌉+3b+5 = %d on %s", res.PeakSpaceBits, wantSpace, r)
		}
		// Theorem 4's O(k²n²) with the proof's constants: X ≤ (k+1)n phases
		// of ≤ (k+1)n+n time each, plus the ending lap.
		if limit := float64((k+1)*n*((k+1)*n+n) + 2*n); res.TimeUnits > limit {
			t.Errorf("Bk time %v exceeds envelope %v on %s (k=%d)", res.TimeUnits, limit, r, k)
		}
	}
}

func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	b := 0
	for p := 1; p < v; p <<= 1 {
		b++
	}
	return b
}

// TestAkEarlyVsStar verifies the extension claim: A* terminates no later
// than Ak and, on distinct-label rings, close to the (k+2)n point versus
// Ak's (2k+2)n.
func TestAkEarlyVsStar(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		for _, k := range []int{1, 2, 3, 4} {
			r := ring.Distinct(n)
			pa := protoFor(t, "A", k, r)
			ps := protoFor(t, "S", k, r)
			ra, err := sim.RunAsync(r, pa, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rs, err := sim.RunAsync(r, ps, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rs.TimeUnits > ra.TimeUnits {
				t.Errorf("n=%d k=%d: A* time %v > Ak time %v", n, k, rs.TimeUnits, ra.TimeUnits)
			}
			if limit := float64((k + 2) * n); rs.TimeUnits > limit {
				t.Errorf("n=%d k=%d: A* time %v > (k+2)n = %v", n, k, rs.TimeUnits, limit)
			}
			if rs.LeaderIndex != ra.LeaderIndex {
				t.Errorf("n=%d k=%d: A* and Ak disagree on the leader", n, k)
			}
		}
	}
}

// TestSymmetricRingNeverElects documents what happens outside the class A:
// on a symmetric ring the string-growth predicate can never hold for
// exactly one process. Ak's synchronous execution either runs forever
// (caught by the action budget) or elects two leaders (caught by the spec
// checker) — it must not terminate correctly.
func TestSymmetricRingNeverElects(t *testing.T) {
	r := ring.MustNew(1, 2, 1, 2)
	p := protoFor(t, "A", 2, r)
	_, err := sim.RunSync(r, p, sim.Options{MaxActions: 100000})
	if err == nil {
		t.Fatal("Ak terminated correctly on a symmetric ring — impossible")
	}
}

// TestMachineDirect exercises machine-level error paths without an engine.
func TestMachineDirect(t *testing.T) {
	p, _ := core.NewAProtocol(1, 2)
	m := p.NewMachine(1)
	var out core.Outbox
	if _, err := m.Receive(core.Token(2), &out); err == nil {
		t.Error("Ak must reject a message before Init")
	}
	if got := m.Init(&out); got != "A1" {
		t.Errorf("Init action = %q, want A1", got)
	}
	if out.Len() != 1 {
		t.Errorf("A1 must send exactly one token, sent %d", out.Len())
	}
	out.Drain()
	if _, err := m.Receive(core.PhaseShift(1), &out); err == nil {
		t.Error("Ak must reject PHASE_SHIFT messages")
	}

	pb, _ := core.NewBProtocol(2, 2)
	mb := pb.NewMachine(1)
	if got := mb.Init(&out); got != "B1" {
		t.Errorf("Bk Init action = %q, want B1", got)
	}
	out.Drain()
	if _, err := mb.Receive(core.Finish(), &out); err == nil {
		t.Error("Bk must reject bare FINISH messages")
	}
	// A COMPUTE-state process may not see PHASE_SHIFT (Lemma 11).
	if _, err := mb.Receive(core.PhaseShift(1), &out); err == nil {
		t.Error("Bk in COMPUTE must reject PHASE_SHIFT per Lemma 11")
	}
}

// TestFingerprints checks that fingerprints separate observably different
// states and are stable for identical machines.
func TestFingerprints(t *testing.T) {
	for _, alg := range []string{"A", "B", "S"} {
		p := protoFor(t, alg, 2, ring.Ring122())
		m1 := p.NewMachine(1)
		m2 := p.NewMachine(1)
		if m1.Fingerprint() != m2.Fingerprint() {
			t.Errorf("%s: identical fresh machines differ: %q vs %q", alg, m1.Fingerprint(), m2.Fingerprint())
		}
		m3 := p.NewMachine(2)
		var out core.Outbox
		m1.Init(&out)
		m3.Init(&out)
		if m1.Fingerprint() == m3.Fingerprint() {
			t.Errorf("%s: machines with different labels collide: %q", alg, m1.Fingerprint())
		}
		if m1.Fingerprint() == m2.Fingerprint() {
			t.Errorf("%s: init must change the fingerprint", alg)
		}
	}
}

// TestStateNames pins the diagnostic state names.
func TestStateNames(t *testing.T) {
	p := protoFor(t, "B", 2, ring.Ring122())
	m := p.NewMachine(1)
	if m.StateName() != "INIT" {
		t.Errorf("fresh Bk state = %q", m.StateName())
	}
	var out core.Outbox
	m.Init(&out)
	if m.StateName() != "COMPUTE" {
		t.Errorf("Bk state after B1 = %q", m.StateName())
	}
	pa := protoFor(t, "A", 2, ring.Ring122())
	ma := pa.NewMachine(1)
	if ma.StateName() != "INIT" {
		t.Errorf("fresh Ak state = %q", ma.StateName())
	}
	ma.Init(&out)
	if ma.StateName() != "GROW" {
		t.Errorf("Ak state after A1 = %q", ma.StateName())
	}
}

// TestBStateString covers the state enum rendering.
func TestBStateString(t *testing.T) {
	names := map[core.BState]string{
		core.BInit: "INIT", core.BCompute: "COMPUTE", core.BShift: "SHIFT",
		core.BPassive: "PASSIVE", core.BWin: "WIN", core.BHalt: "HALT",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("BState %d = %q, want %q", s, s.String(), want)
		}
	}
	if core.BState(99).String() == "" {
		t.Error("unknown state must render something")
	}
}

// TestGuestInvariant verifies HIi condition 1 (Lemma 8): in every phase i,
// p.guest equals LLabels(p)[i]. The trace layer reports guest values at
// each phase entry.
func TestGuestInvariant(t *testing.T) {
	rings := []*ring.Ring{ring.Figure1(), ring.Ring122(), ring.Distinct(7)}
	ks := []int{3, 2, 2}
	for i, r := range rings {
		p := protoFor(t, "B", ks[i], r)
		res, table := runWithPhases(t, r, p)
		_ = res
		for phase := 1; phase <= table.Phases(); phase++ {
			guests, entered := table.Guests(phase)
			for proc := 0; proc < r.N(); proc++ {
				if !entered[proc] {
					continue
				}
				want := r.LLabels(proc, phase)[phase-1]
				if guests[proc] != want {
					t.Fatalf("ring %s phase %d: p%d guest %s, want LLabels(p)[%d] = %s",
						r, phase, proc, guests[proc], phase, want)
				}
			}
		}
	}
}

func runWithPhases(t *testing.T, r *ring.Ring, p core.Protocol) (*sim.Result, *trace.PhaseTable) {
	t.Helper()
	mem := &trace.Mem{}
	res, err := sim.RunSync(r, p, sim.Options{Sink: mem})
	if err != nil {
		t.Fatalf("%s on %s: %v", p.Name(), r, err)
	}
	return res, trace.BuildPhaseTable(mem.Events, r.N())
}
