package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ring"
	"repro/internal/words"
)

// Snapshotter is implemented by machines whose full local state can be
// serialized and restored, the hook crash-recovery is built on: a durable
// engine (internal/netring) snapshots the machine after every atomic
// action and, after a crash, rebuilds the process by restoring the last
// snapshot into a fresh machine from the same Protocol.
//
// The contract mirrors Cloner, across a byte boundary: RestoreState on a
// machine freshly built by the same Protocol with the same label must
// yield a machine indistinguishable from the snapshotted one (equal
// Fingerprint, identical future behavior). Machines are deterministic, so
// a restored machine replays exactly — the property the netring RESUME
// handshake relies on to keep message counts equal across crashes.
//
// The paper's algorithms (Ak, Bk, A*) implement it; the baselines do not,
// so crash-recovery runs are restricted to the paper's protocols.
type Snapshotter interface {
	// SnapshotState serializes the machine's full dynamic state into a
	// self-describing, versioned byte blob.
	SnapshotState() ([]byte, error)
	// RestoreState replaces the machine's state with a snapshot taken from
	// a machine of the same protocol and label. It validates the blob
	// (magic, version, label) and fails on any mismatch or truncation
	// rather than restoring garbage.
	RestoreState(data []byte) error
}

// Snapshot blob layout: one machine-kind magic byte ('A', 'B', 'S'),
// one format-version byte, then varint-encoded fields. Integers use
// binary varint/uvarint; booleans are packed into flag bytes.
const snapshotVersion = 1

// snapReader decodes a snapshot blob with sticky-error semantics, so the
// field reads stay linear and the single error check happens at the end.
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *snapReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("core: snapshot truncated")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("core: snapshot truncated (varint)")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("core: snapshot truncated (uvarint)")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// done checks the blob was fully consumed.
func (r *snapReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("core: snapshot has %d trailing bytes", len(r.b))
	}
	return nil
}

// checkHeader validates magic, version, and label identity.
func (r *snapReader) checkHeader(magic byte, kind string, id ring.Label) {
	if got := r.byte(); got != magic && r.err == nil {
		r.fail("core: snapshot is not an %s state (magic %q, want %q)", kind, got, magic)
	}
	if v := r.byte(); v != snapshotVersion && r.err == nil {
		r.fail("core: %s snapshot version %d, want %d", kind, v, snapshotVersion)
	}
	if got := ring.Label(r.varint()); got != id && r.err == nil {
		r.fail("core: %s snapshot belongs to label %s, machine has label %s", kind, got, id)
	}
}

func packBits(bits ...bool) byte {
	var b byte
	for i, v := range bits {
		if v {
			b |= 1 << i
		}
	}
	return b
}

func bit(b byte, i int) bool { return b&(1<<i) != 0 }

// --- Ak ---

// SnapshotState implements Snapshotter for Ak: flags, leader, and the full
// p.string (counts, the failure table, and the memoized verdict are all
// deterministic functions of the string and are rebuilt on restore).
func (a *algA) SnapshotState() ([]byte, error) {
	b := make([]byte, 0, 16+2*a.str.Len())
	b = append(b, 'A', snapshotVersion)
	b = binary.AppendVarint(b, int64(a.id))
	b = append(b, packBits(a.init, a.isLeader, a.done, a.ledSet, a.halted, a.decided, a.candidate))
	b = binary.AppendVarint(b, int64(a.leader))
	b = binary.AppendUvarint(b, uint64(a.str.Len()))
	for _, l := range a.str.Seq() {
		b = binary.AppendVarint(b, int64(l))
	}
	return b, nil
}

// RestoreState implements Snapshotter for Ak.
func (a *algA) RestoreState(data []byte) error {
	r := &snapReader{b: data}
	r.checkHeader('A', "Ak", a.id)
	flags := r.byte()
	leader := ring.Label(r.varint())
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)) {
		// Each label costs ≥ 1 byte; an oversized count is corruption.
		r.fail("core: Ak snapshot claims %d labels with %d bytes left", n, len(r.b))
	}
	labels := make([]ring.Label, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		labels = append(labels, ring.Label(r.varint()))
	}
	if err := r.done(); err != nil {
		return err
	}
	// Reset and replay: appendLabel rebuilds counts, maxCount, and the
	// incremental failure table exactly as the original execution did.
	a.str = words.Incremental[ring.Label]{}
	a.counts = nil
	a.maxCount = 0
	for _, l := range labels {
		a.appendLabel(l)
	}
	a.init, a.isLeader, a.done, a.ledSet, a.halted = bit(flags, 0), bit(flags, 1), bit(flags, 2), bit(flags, 3), bit(flags, 4)
	a.decided, a.candidate = bit(flags, 5), bit(flags, 6)
	a.leader = leader
	return nil
}

// --- A* ---

// SnapshotState implements Snapshotter for A*. certP is persisted for
// verification even though the replay recomputes it.
func (s *algStar) SnapshotState() ([]byte, error) {
	b := make([]byte, 0, 16+2*s.str.Len())
	b = append(b, 'S', snapshotVersion)
	b = binary.AppendVarint(b, int64(s.id))
	b = append(b, packBits(s.init, s.isLeader, s.done, s.ledSet, s.halted, s.decided, s.candidate))
	b = binary.AppendVarint(b, int64(s.leader))
	b = binary.AppendVarint(b, int64(s.certP))
	b = binary.AppendUvarint(b, uint64(s.str.Len()))
	for _, l := range s.str.Seq() {
		b = binary.AppendVarint(b, int64(l))
	}
	return b, nil
}

// RestoreState implements Snapshotter for A*.
func (s *algStar) RestoreState(data []byte) error {
	r := &snapReader{b: data}
	r.checkHeader('S', "A*", s.id)
	flags := r.byte()
	leader := ring.Label(r.varint())
	certP := int(r.varint())
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("core: A* snapshot claims %d labels with %d bytes left", n, len(r.b))
	}
	labels := make([]ring.Label, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		labels = append(labels, ring.Label(r.varint()))
	}
	if err := r.done(); err != nil {
		return err
	}
	s.str = words.Incremental[ring.Label]{}
	s.counts = nil
	s.certP = -1
	for _, l := range labels {
		s.appendLabel(l)
	}
	if s.certP != certP {
		return fmt.Errorf("core: A* snapshot certP %d disagrees with replayed %d", certP, s.certP)
	}
	s.init, s.isLeader, s.done, s.ledSet, s.halted = bit(flags, 0), bit(flags, 1), bit(flags, 2), bit(flags, 3), bit(flags, 4)
	s.decided, s.candidate = bit(flags, 5), bit(flags, 6)
	s.leader = leader
	return nil
}

// --- Bk ---

// SnapshotState implements Snapshotter for Bk: the full Table 2 variable
// set plus the trace-layer phase counter.
func (b *algB) SnapshotState() ([]byte, error) {
	buf := make([]byte, 0, 24)
	buf = append(buf, 'B', snapshotVersion)
	buf = binary.AppendVarint(buf, int64(b.id))
	buf = append(buf, byte(b.state))
	buf = append(buf, packBits(b.isLeader, b.done, b.ledSet, b.halted))
	buf = binary.AppendVarint(buf, int64(b.guest))
	buf = binary.AppendVarint(buf, int64(b.leader))
	buf = binary.AppendUvarint(buf, uint64(b.inner))
	buf = binary.AppendUvarint(buf, uint64(b.outer))
	buf = binary.AppendUvarint(buf, uint64(b.phase))
	return buf, nil
}

// RestoreState implements Snapshotter for Bk.
func (b *algB) RestoreState(data []byte) error {
	r := &snapReader{b: data}
	r.checkHeader('B', "Bk", b.id)
	state := BState(r.byte())
	if r.err == nil && state > BHalt {
		r.fail("core: Bk snapshot has unknown state %d", state)
	}
	flags := r.byte()
	guest := ring.Label(r.varint())
	leader := ring.Label(r.varint())
	inner := int(r.uvarint())
	outer := int(r.uvarint())
	phase := int(r.uvarint())
	if r.err == nil && (inner < 0 || inner > b.k || outer < 0 || outer > b.winAt+1) {
		r.fail("core: Bk snapshot counters out of range: inner=%d outer=%d (k=%d)", inner, outer, b.k)
	}
	if err := r.done(); err != nil {
		return err
	}
	b.state = state
	b.isLeader, b.done, b.ledSet, b.halted = bit(flags, 0), bit(flags, 1), bit(flags, 2), bit(flags, 3)
	b.guest, b.leader = guest, leader
	b.inner, b.outer, b.phase = inner, outer, phase
	return nil
}
