package core

import (
	"fmt"

	"repro/internal/ring"
)

// BState is a control state of Algorithm Bk (Figure 2).
type BState uint8

const (
	BInit BState = iota
	BCompute
	BShift
	BPassive
	BWin
	BHalt
)

// String names the state as in the paper.
func (s BState) String() string {
	switch s {
	case BInit:
		return "INIT"
	case BCompute:
		return "COMPUTE"
	case BShift:
		return "SHIFT"
	case BPassive:
		return "PASSIVE"
	case BWin:
		return "WIN"
	case BHalt:
		return "HALT"
	default:
		return fmt.Sprintf("BSTATE(%d)", uint8(s))
	}
}

// BProtocol is Algorithm Bk (Table 2): process-terminating leader election
// for A ∩ Kk with k ≥ 2, trading time for space against Ak. The
// lexicographically least counter-clockwise label sequence is computed one
// position per phase: in phase i the value LLabels(p)[i] of every
// still-active process circulates; processes holding a non-minimal value
// turn passive; FIFO links realize a barrier between phases via
// ⟨PHASE_SHIFT⟩ messages that shift every guest one process to the right.
// An active process whose guest has taken its own label k+1 times knows at
// least n phases have elapsed, so it is the sole survivor: the true leader.
//
// Theorem 4: time O(k²n²), messages O(k²n²), space 2⌈log k⌉ + 3b + 5 bits
// per process.
type BProtocol struct {
	// K is the multiplicity bound k ≥ 2 known a priori by every process.
	K int
	// LabelBits is b, the per-label storage cost used by SpaceBits.
	LabelBits int
	// OuterThreshold overrides the number of times p.guest must take the
	// value p.id before the process declares victory (action B9). Zero
	// means the paper's k+1 occurrences (i.e. B9 fires at outer = k), the
	// smallest value guaranteeing at least n phases have elapsed. Any
	// smaller value is an ABLATION ONLY, used by the threshold-tightness
	// experiment (E13).
	OuterThreshold int
}

// NewBProtocol returns Algorithm Bk for the given multiplicity bound and
// label width. The paper defines Bk for k ≥ 2.
func NewBProtocol(k, labelBits int) (*BProtocol, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: Bk requires k >= 2, got %d", k)
	}
	if labelBits < 1 {
		return nil, fmt.Errorf("core: Bk requires labelBits >= 1, got %d", labelBits)
	}
	return &BProtocol{K: k, LabelBits: labelBits}, nil
}

// Name implements Protocol.
func (p *BProtocol) Name() string {
	if p.OuterThreshold > 0 && p.OuterThreshold != p.K {
		return fmt.Sprintf("Bk(k=%d,outer=%d)", p.K, p.OuterThreshold)
	}
	return fmt.Sprintf("Bk(k=%d)", p.K)
}

// outerThreshold returns the effective B9 trigger.
func (p *BProtocol) outerThreshold() int {
	if p.OuterThreshold > 0 {
		return p.OuterThreshold
	}
	return p.K
}

// NewMachine implements Protocol.
func (p *BProtocol) NewMachine(id ring.Label) Machine {
	return &algB{id: id, k: p.K, winAt: p.outerThreshold(), labelBits: p.LabelBits, state: BInit}
}

// algB is the per-process state of Bk.
type algB struct {
	id        ring.Label
	k         int
	winAt     int // B9 fires when outer reaches this (k unless ablated)
	labelBits int

	// Paper variables.
	state    BState
	guest    ring.Label
	inner    int // counts sightings of guest within the current phase
	outer    int // counts phases in which guest == id
	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool

	// phase counts assignments to guest (Appendix A numbering); used only
	// by the trace layer to reconstruct Figure 1, not by the algorithm.
	phase int
}

// Init executes action B1: enter COMPUTE, adopt own label as guest, start
// phase 1, send ⟨guest⟩.
func (b *algB) Init(out *Outbox) string {
	b.state = BCompute
	b.guest = b.id
	b.phase = 1
	b.inner = 1
	b.outer = 1
	out.Send(Token(b.guest))
	return "B1"
}

// Receive dispatches on the head message exactly as the guards of Table 2.
func (b *algB) Receive(m Message, out *Outbox) (string, error) {
	if b.halted {
		return "", fmt.Errorf("Bk: message %s delivered after halt", m)
	}
	switch m.Kind {
	case KindToken:
		x := m.Label
		switch b.state {
		case BCompute:
			switch {
			case x > b.guest:
				// B2: a larger value cannot be the minimum; discard.
				return "B2", nil
			case x == b.guest && b.inner < b.k:
				// B3: count a sighting of the guest and forward.
				b.inner++
				out.Send(Token(x))
				return "B3", nil
			case x < b.guest:
				// B4: some active process holds a smaller value; become
				// passive but forward the evidence.
				b.state = BPassive
				out.Send(Token(x))
				return "B4", nil
			default: // x == b.guest && b.inner == b.k
				// B5: the guest has been seen k+1 times in this phase —
				// every other active process has been considered. End the
				// phase.
				b.state = BShift
				out.Send(PhaseShift(b.guest))
				return "B5", nil
			}
		case BPassive:
			// B7: passive processes relay.
			out.Send(Token(x))
			return "B7", nil
		default:
			// Lemma 11: a process in SHIFT never has a ⟨x⟩ at the head of
			// its link.
			return "", fmt.Errorf("Bk: token %s in state %s violates Lemma 11", m, b.state)
		}

	case KindPhaseShift:
		x := m.Label
		switch b.state {
		case BShift:
			if x == b.id && b.outer == b.winAt {
				// B9: guest is about to take the value id for the (k+1)-th
				// time, so at least n phases have elapsed and p is the sole
				// active process: the true leader.
				b.state = BWin
				b.isLeader = true
				b.leader = b.id
				b.ledSet = true
				b.guest = b.id
				b.phase++
				out.Send(FinishLabel(b.id))
				return "B9", nil
			}
			// B6: enter the next phase with the shifted guest.
			b.state = BCompute
			if x == b.id {
				b.outer++
			}
			b.guest = x
			b.phase++
			b.inner = 1
			out.Send(Token(b.guest))
			return "B6", nil
		case BPassive:
			// B8: relay the phase shift, adopting the shifted guest.
			out.Send(PhaseShift(b.guest))
			b.guest = x
			b.phase++
			return "B8", nil
		default:
			return "", fmt.Errorf("Bk: %s in state %s violates Lemma 11", m, b.state)
		}

	case KindFinishLabel:
		x := m.Label
		switch b.state {
		case BPassive:
			// B10: learn the leader, relay, halt.
			b.state = BHalt
			out.Send(FinishLabel(x))
			b.leader = x
			b.ledSet = true
			b.done = true
			b.halted = true
			return "B10", nil
		case BWin:
			// B11: the announcement came back around; halt.
			b.state = BHalt
			b.done = true
			b.halted = true
			return "B11", nil
		default:
			return "", fmt.Errorf("Bk: %s in state %s has no enabled action", m, b.state)
		}

	default:
		return "", fmt.Errorf("Bk: unexpected message %s", m)
	}
}

// ResetFor implements Resetter: algB holds only value fields, so a reset
// is a plain re-initialization.
func (b *algB) ResetFor(p Protocol, _ int, id ring.Label) bool {
	bp, ok := p.(*BProtocol)
	if !ok {
		return false
	}
	*b = algB{id: id, k: bp.K, winAt: bp.outerThreshold(), labelBits: bp.LabelBits, state: BInit}
	return true
}

// Clone implements Cloner: algB holds only value fields.
func (b *algB) Clone() Machine {
	cp := *b
	return &cp
}

// Halted implements Machine.
func (b *algB) Halted() bool { return b.halted }

// Status implements Machine.
func (b *algB) Status() Status {
	return Status{IsLeader: b.isLeader, Done: b.done, Leader: b.leader, LeaderSet: b.ledSet}
}

// StateName implements Machine.
func (b *algB) StateName() string { return b.state.String() }

// SpaceBits implements Machine: the two counters (bounded by k), three
// labels (id, guest, leader) and 5 bits of control state — the exact
// 2⌈log k⌉ + 3b + 5 of Theorem 4.
func (b *algB) SpaceBits() int {
	return 2*ceilLog2(b.k) + 3*b.labelBits + 5
}

// Fingerprint implements Machine.
func (b *algB) Fingerprint() string {
	return fmt.Sprintf("Bk state=%s guest=%s inner=%d outer=%d phase=%d halted=%c %s",
		b.state, b.guest, b.inner, b.outer, b.phase, boolBit(b.halted), statusFingerprint(b.Status()))
}

// Phase implements PhaseReporter.
func (b *algB) Phase() int { return b.phase }

// Guest implements PhaseReporter.
func (b *algB) Guest() ring.Label { return b.guest }

// Active implements PhaseReporter: competing states per Figure 1's coloring
// (white = still a candidate at the start of its phase).
func (b *algB) Active() bool {
	switch b.state {
	case BInit, BCompute, BShift, BWin:
		return true
	default:
		return false
	}
}
