package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestObservation1 verifies the barrier property Lemmas 14–16 prove for
// Bk: every message sent in phase i is received in phase i. Send phases
// are attributed per the paper's statement order — B8 sends its relayed
// ⟨PHASE_SHIFT⟩ before adopting the new guest (old phase), while B6/B9
// send after entering the new phase — and receive phases are the
// receiver's phase before processing the message.
//
// The check runs on event-driven traces (where each action's sends follow
// it immediately) across unit, random and adversarial schedules.
func TestObservation1(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rings := []*ring.Ring{ring.Figure1(), ring.Ring122(), ring.Distinct(9)}
	for i := 0; i < 6; i++ {
		n := 6 + 2*i
		r, err := ring.RandomAsymmetric(rng, n, 3, max(6, n))
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	for _, r := range rings {
		k := max(2, r.MaxMultiplicity())
		p, err := core.NewBProtocol(k, r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		delays := []sim.DelayModel{
			sim.ConstantDelay(1),
			sim.NewUniformDelay(5, 0.01),
			sim.SlowLinkDelay{SlowFrom: 1, Fast: 0.05},
		}
		for di, d := range delays {
			mem := &trace.Mem{}
			if _, err := sim.RunAsync(r, p, d, sim.Options{Sink: mem}); err != nil {
				t.Fatalf("Bk on %s (delay %d): %v", r, di, err)
			}
			if err := trace.CheckPhaseAlignment(mem.Events, r.N()); err != nil {
				t.Fatalf("Bk on %s (delay %d): %v", r, di, err)
			}
		}
	}
}

// TestPerPhaseMessageBound checks the counting structure of Theorem 4's
// proof: the first phase exchanges O(kn²) messages (every process launches
// its label; a token travels until it meets a smaller guest), while every
// later phase exchanges only O(kn) (at most k active senders, k counting
// laps, one PHASE_SHIFT lap). We assert concrete constants:
// phase 1 ≤ n(n+1)/2 + 2kn + n, phases ≥ 2 ≤ (2k+3)n.
func TestPerPhaseMessageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	rings := []*ring.Ring{ring.Figure1(), ring.Distinct(12)}
	for i := 0; i < 6; i++ {
		n := 6 + 3*i
		r, err := ring.RandomAsymmetric(rng, n, 3, max(6, n))
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	for _, r := range rings {
		k := max(2, r.MaxMultiplicity())
		p, err := core.NewBProtocol(k, r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		mem := &trace.Mem{}
		if _, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{Sink: mem}); err != nil {
			t.Fatal(err)
		}
		perPhase := messagesPerPhase(mem.Events, r.N())
		n := r.N()
		firstLimit := n*(n+1)/2 + 2*k*n + n
		laterLimit := (2*k + 3) * n
		for phase, count := range perPhase {
			limit := laterLimit
			if phase == 1 {
				limit = firstLimit
			}
			if count > limit {
				t.Errorf("Bk on %s (k=%d): phase %d exchanged %d messages > limit %d",
					r, k, phase, count, limit)
			}
		}
		if len(perPhase) == 0 {
			t.Fatalf("no phases measured on %s", r)
		}
	}
}

// messagesPerPhase attributes each send to its phase using the same
// bookkeeping as checkObservation1 and returns phase → count.
func messagesPerPhase(events []trace.Event, n int) map[int]int {
	phase := make([]int, n)
	preAct := make([]int, n)
	lastAction := make([]string, n)
	out := map[int]int{}
	for _, e := range events {
		switch e.Op {
		case trace.OpInit, trace.OpDeliver:
			preAct[e.Proc] = phase[e.Proc]
			lastAction[e.Proc] = e.Action
		case trace.OpPhase:
			phase[e.Proc] = e.Phase
		case trace.OpSend:
			sp := phase[e.Proc]
			if lastAction[e.Proc] == "B8" {
				sp = preAct[e.Proc]
			}
			out[sp]++
		}
	}
	return out
}

// TestPhasesNeverOverlap is the other face of Observation 1: at any
// moment, the phases of any two processes differ by at most 1 (the
// PHASE_SHIFT barrier). Verified over the synchronous execution, probing
// machine phases step by step.
func TestPhasesNeverOverlap(t *testing.T) {
	rings := []*ring.Ring{ring.Figure1(), ring.Ring122(), ring.Distinct(8)}
	ks := []int{3, 2, 2}
	for ri, r := range rings {
		p, err := core.NewBProtocol(ks[ri], r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		mem := &trace.Mem{}
		if _, err := sim.RunAsync(r, p, sim.NewUniformDelay(3, 0.01), sim.Options{Sink: mem}); err != nil {
			t.Fatal(err)
		}
		phase := make([]int, r.N())
		for _, e := range mem.Events {
			if e.Op != trace.OpPhase {
				continue
			}
			phase[e.Proc] = e.Phase
			lo, hi := phase[0], phase[0]
			for _, ph := range phase {
				lo, hi = min(lo, ph), max(hi, ph)
			}
			// Processes that have not reached phase 1 yet (still 0) are
			// exempt: the spread check applies once everyone initialized.
			if lo >= 1 && hi-lo > 1 {
				t.Fatalf("Bk on %s: phase spread %d..%d — phases overlap", r, lo, hi)
			}
		}
	}
}
