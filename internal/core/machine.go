package core

import (
	"fmt"

	"repro/internal/ring"
)

// Status is the externally visible part of a process state: the variables
// the leader-election specification of §II constrains.
type Status struct {
	// IsLeader is p.isLeader: initially false, never reverts to false, true
	// for exactly one process in the terminal configuration.
	IsLeader bool
	// Done is p.done: initially false, monotone, true everywhere at
	// termination; once true, Leader is permanently set to the elected
	// leader's label.
	Done bool
	// Leader is p.leader; meaningful only when LeaderSet.
	Leader ring.Label
	// LeaderSet reports whether p.leader has been assigned.
	LeaderSet bool
}

// Outbox collects the sends of a single atomic action. The engine drains it
// after the action returns and appends the messages, in order, to the
// process's outgoing link (FIFO).
type Outbox struct {
	msgs []Message
}

// Send enqueues m for the right neighbor.
func (o *Outbox) Send(m Message) { o.msgs = append(o.msgs, m) }

// Drain returns and clears the queued messages, releasing the backing
// array to the caller (use when the messages are retained).
func (o *Outbox) Drain() []Message {
	m := o.msgs
	o.msgs = nil
	return m
}

// Messages returns a view of the queued messages without clearing them.
// Combined with Reset it lets hot-path engines reuse one Outbox per
// process instead of allocating per action; the view is invalidated by
// the next Send or Reset.
func (o *Outbox) Messages() []Message { return o.msgs }

// Reset clears the outbox, retaining its backing array for reuse.
func (o *Outbox) Reset() { o.msgs = o.msgs[:0] }

// Len returns the number of queued messages.
func (o *Outbox) Len() int { return len(o.msgs) }

// Machine is one process's local algorithm: a deterministic guarded-action
// automaton. Engines guarantee the model of §II — actions execute
// atomically, the initial action runs first, messages arrive FIFO from the
// left neighbor, and no message is delivered after Halted reports true.
type Machine interface {
	// Init executes the unique action triggerable without a message (A1 /
	// B1). It is called exactly once, before any Receive. It returns the
	// action's identifier for trace attribution.
	Init(out *Outbox) (action string)

	// Receive consumes the head message of the incoming link and executes
	// the single enabled action for it. It returns the fired action's
	// identifier, or an error when no guard matches (a model violation —
	// Lemma 11 proves this cannot happen for Bk; surfacing it keeps the
	// engines honest).
	Receive(m Message, out *Outbox) (action string, err error)

	// Halted reports whether the process has executed its halting
	// statement. A halted process is disabled forever.
	Halted() bool

	// Status returns the specification variables.
	Status() Status

	// StateName names the current control state for diagnostics (Bk: INIT,
	// COMPUTE, SHIFT, PASSIVE, WIN, HALT as in Figure 2).
	StateName() string

	// SpaceBits returns the current size of the process's variables in
	// bits, in the units of Theorems 2 and 4 (labels cost b bits, booleans
	// 1 bit, counters bounded by k cost ⌈log k⌉ bits).
	SpaceBits() int

	// Fingerprint serializes the full local state. Two processes are in
	// the same state exactly when their fingerprints are equal; the
	// Lemma 1 indistinguishability check (internal/lowerbound) relies on
	// this.
	Fingerprint() string
}

// Protocol constructs the identical local algorithm for each process — the
// paper's "distributed algorithm" whose local algorithms differ only in the
// label (§II).
type Protocol interface {
	// Name identifies the protocol, e.g. "Ak(k=3)".
	Name() string
	// NewMachine builds the local algorithm of a process labeled id.
	NewMachine(id ring.Label) Machine
}

// IndexedProtocol is implemented by protocols whose machines depend on
// their ring position as well as their label — the seeded randomized
// protocols (internal/rand), where the per-machine PRNG stream is derived
// from the position. Engines construct machines through NewMachineFor, so
// a single-process runtime (one OS node of a distributed ring) builds the
// exact machine the in-memory engines would.
type IndexedProtocol interface {
	Protocol
	// NewMachineAt builds the local algorithm of the process at ring index
	// `index` labeled id.
	NewMachineAt(index int, id ring.Label) Machine
}

// NewMachineFor builds process index's machine, routing through
// NewMachineAt when the protocol is position-dependent. Every engine in
// this repository constructs machines through it.
func NewMachineFor(p Protocol, index int, id ring.Label) Machine {
	if ip, ok := p.(IndexedProtocol); ok {
		return ip.NewMachineAt(index, id)
	}
	return p.NewMachine(id)
}

// Resetter is implemented by machines that can re-initialize themselves in
// place for a fresh execution, retaining their backing storage (grown
// slices, maps, failure tables). The serving miss path pools machines in
// per-worker scratch arenas (internal/sim.Scratch): electing on a pooled
// machine must be indistinguishable from electing on a machine freshly
// built by NewMachineFor, so ResetFor must restore EVERY field — including
// protocol parameters, which may differ between consecutive elections.
//
// ResetFor returns false when the machine cannot represent p (the concrete
// protocol type differs); the caller then falls back to NewMachineFor. It
// must not partially mutate the machine in that case.
type Resetter interface {
	// ResetFor re-initializes the machine as process `index` of a ring,
	// labeled id, running protocol p, exactly as NewMachineFor(p, index, id)
	// would have built it.
	ResetFor(p Protocol, index int, id ring.Label) bool
}

// ResetMachineFor re-initializes m in place for protocol p at ring index
// `index` labeled id when m supports it, and otherwise builds a fresh
// machine. The scratch-arena engines construct all pooled machines through
// it, so protocols without Resetter support remain correct (they just
// allocate).
func ResetMachineFor(m Machine, p Protocol, index int, id ring.Label) Machine {
	if r, ok := m.(Resetter); ok && r.ResetFor(p, index, id) {
		return m
	}
	return NewMachineFor(p, index, id)
}

// Cloner is implemented by machines that can deep-copy their state. The
// schedule-space explorer (internal/sim.ExploreAll) uses clones to branch
// configurations in O(state) instead of replaying move prefixes; machines
// without Clone are still explorable via replay. All production machines
// in this repository implement it.
type Cloner interface {
	// Clone returns an independent deep copy: mutating the clone (or the
	// original) must not affect the other.
	Clone() Machine
}

// PhaseReporter is implemented by machines with a phase structure (Bk).
// The trace layer uses it to reconstruct Figure 1.
type PhaseReporter interface {
	// Phase returns the process's current phase number i ≥ 1 (the number
	// of assignments to p.guest so far; Appendix A).
	Phase() int
	// Guest returns p.guest, valid once Phase ≥ 1.
	Guest() ring.Label
	// Active reports whether the process is still competing (not PASSIVE,
	// not halted-as-non-leader).
	Active() bool
}

// boolBit maps a boolean to its 1-bit space cost representation in
// fingerprints.
func boolBit(b bool) byte {
	if b {
		return '1'
	}
	return '0'
}

// statusFingerprint renders the spec variables for inclusion in machine
// fingerprints.
func statusFingerprint(st Status) string {
	leader := "-"
	if st.LeaderSet {
		leader = st.Leader.String()
	}
	return fmt.Sprintf("isLeader=%c done=%c leader=%s", boolBit(st.IsLeader), boolBit(st.Done), leader)
}

// ceilLog2 returns ⌈log2 v⌉ for v ≥ 1 (0 for v = 1), matching the paper's
// ⌈log k⌉ counter cost.
func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	bits := 0
	for p := 1; p < v; p <<= 1 {
		bits++
	}
	return bits
}
