package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
)

// driveWithSnapshots runs a full synchronous election on r with a minimal
// in-test FIFO driver. When snapshotEvery > 0, after every snapshotEvery-th
// delivery the receiving machine is snapshotted, restored into a FRESH
// machine from the same protocol, and the restored copy replaces the live
// one — the strongest form of the Snapshotter contract: the election must
// still terminate with the identical leader, message count, and final
// fingerprints.
func driveWithSnapshots(t *testing.T, r *ring.Ring, p core.Protocol, snapshotEvery int) (leader int, sent int, fps []string) {
	t.Helper()
	n := r.N()
	machines := make([]core.Machine, n)
	queues := make([][]core.Message, n) // queues[i] = link from i-1 to i
	var out core.Outbox
	deliveries := 0

	send := func(i int) {
		for _, m := range out.Drain() {
			queues[(i+1)%n] = append(queues[(i+1)%n], m)
			sent++
		}
	}
	for i := 0; i < n; i++ {
		machines[i] = p.NewMachine(r.Label(i))
		machines[i].Init(&out)
		send(i)
	}
	for steps := 0; ; steps++ {
		if steps > 10_000_000 {
			t.Fatalf("%s on %s: no termination after %d steps", p.Name(), r, steps)
		}
		progress := false
		for i := 0; i < n; i++ {
			if len(queues[i]) == 0 || machines[i].Halted() {
				continue
			}
			m := queues[i][0]
			queues[i] = queues[i][1:]
			if _, err := machines[i].Receive(m, &out); err != nil {
				t.Fatalf("%s on %s: p%d: %v", p.Name(), r, i, err)
			}
			send(i)
			progress = true
			deliveries++
			if snapshotEvery > 0 && deliveries%snapshotEvery == 0 {
				machines[i] = snapshotRoundTrip(t, p, r.Label(i), machines[i])
			}
		}
		allHalted := true
		for i := 0; i < n; i++ {
			if !machines[i].Halted() {
				allHalted = false
			}
		}
		if allHalted {
			break
		}
		if !progress {
			t.Fatalf("%s on %s: deadlock with unhalted machines", p.Name(), r)
		}
	}
	leader = -1
	for i, m := range machines {
		fps = append(fps, m.Fingerprint())
		if m.Status().IsLeader {
			if leader >= 0 {
				t.Fatalf("%s on %s: two leaders p%d and p%d", p.Name(), r, leader, i)
			}
			leader = i
		}
	}
	return leader, sent, fps
}

// snapshotRoundTrip snapshots m and restores the blob into a fresh machine,
// asserting the restored machine is state-identical.
func snapshotRoundTrip(t *testing.T, p core.Protocol, id ring.Label, m core.Machine) core.Machine {
	t.Helper()
	snap, ok := m.(core.Snapshotter)
	if !ok {
		t.Fatalf("%T does not implement Snapshotter", m)
	}
	blob, err := snap.SnapshotState()
	if err != nil {
		t.Fatalf("SnapshotState: %v", err)
	}
	fresh := p.NewMachine(id)
	if err := fresh.(core.Snapshotter).RestoreState(blob); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if got, want := fresh.Fingerprint(), m.Fingerprint(); got != want {
		t.Fatalf("restored fingerprint mismatch:\n got %s\nwant %s", got, want)
	}
	if got, want := fresh.StateName(), m.StateName(); got != want {
		t.Fatalf("restored StateName %q, want %q", got, want)
	}
	if fresh.Halted() != m.Halted() {
		t.Fatalf("restored Halted %v, want %v", fresh.Halted(), m.Halted())
	}
	if got, want := fresh.SpaceBits(), m.SpaceBits(); got != want {
		t.Fatalf("restored SpaceBits %d, want %d", got, want)
	}
	return fresh
}

// TestSnapshotRoundTripMidElection restores every machine from its own
// snapshot after every single delivery and checks the election is
// indistinguishable from an undisturbed run.
func TestSnapshotRoundTripMidElection(t *testing.T) {
	rings := []string{"1 3 1 3 2 2 1 2", "5 2 9 2 5 2", "1 2 3 4 5", "7 7 3 7 3"}
	for _, alg := range []string{"A", "B", "S"} {
		for _, spec := range rings {
			t.Run(alg+"/"+spec, func(t *testing.T) {
				r, err := ring.Parse(spec)
				if err != nil {
					t.Fatal(err)
				}
				p := protoFor(t, alg, 3, r)
				wantLeader, wantSent, wantFPs := driveWithSnapshots(t, r, p, 0)
				gotLeader, gotSent, gotFPs := driveWithSnapshots(t, r, p, 1)
				if gotLeader != wantLeader || gotSent != wantSent {
					t.Fatalf("snapshot-restored run elected p%d with %d messages; undisturbed run p%d with %d",
						gotLeader, gotSent, wantLeader, wantSent)
				}
				for i := range wantFPs {
					if gotFPs[i] != wantFPs[i] {
						t.Fatalf("final fingerprint of p%d diverged:\n got %s\nwant %s", i, gotFPs[i], wantFPs[i])
					}
				}
			})
		}
	}
}

// TestSnapshotRejectsCorruption pins the error paths: truncation, magic
// mismatch, version mismatch, wrong label, trailing garbage.
func TestSnapshotRejectsCorruption(t *testing.T) {
	r, err := ring.Parse("1 3 1 3 2 2 1 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"A", "B", "S"} {
		t.Run(alg, func(t *testing.T) {
			p := protoFor(t, alg, 3, r)
			m := p.NewMachine(r.Label(0))
			var out core.Outbox
			m.Init(&out)
			out.Reset()
			// Feed a few tokens so string-based machines have state.
			for _, l := range []ring.Label{3, 1, 3} {
				if _, err := m.Receive(core.Token(l), &out); err != nil {
					t.Fatal(err)
				}
				out.Reset()
			}
			blob, err := m.(core.Snapshotter).SnapshotState()
			if err != nil {
				t.Fatal(err)
			}

			restore := func(b []byte) error {
				fresh := p.NewMachine(r.Label(0))
				return fresh.(core.Snapshotter).RestoreState(b)
			}
			if err := restore(blob); err != nil {
				t.Fatalf("pristine blob rejected: %v", err)
			}
			for cut := 0; cut < len(blob); cut++ {
				if err := restore(blob[:cut]); err == nil {
					t.Fatalf("truncation to %d/%d bytes accepted", cut, len(blob))
				}
			}
			bad := append([]byte(nil), blob...)
			bad[0] = 'Z'
			if err := restore(bad); err == nil || !strings.Contains(err.Error(), "magic") {
				t.Fatalf("wrong magic accepted or mislabeled: %v", err)
			}
			bad = append([]byte(nil), blob...)
			bad[1] = 99
			if err := restore(bad); err == nil || !strings.Contains(err.Error(), "version") {
				t.Fatalf("wrong version accepted or mislabeled: %v", err)
			}
			if err := restore(append(append([]byte(nil), blob...), 0)); err == nil {
				t.Fatal("trailing byte accepted")
			}
			other := p.NewMachine(r.Label(1))
			if err := other.(core.Snapshotter).RestoreState(blob); err == nil {
				t.Fatal("snapshot restored into a machine with a different label")
			}
		})
	}
}

// TestSnapshotWrongKindRejected restores an Ak blob into Bk and A* machines
// (and vice versa): the magic byte must catch the mix-up.
func TestSnapshotWrongKindRejected(t *testing.T) {
	r, err := ring.Parse("1 3 1 3 2 2 1 2")
	if err != nil {
		t.Fatal(err)
	}
	algs := []string{"A", "B", "S"}
	blobs := make(map[string][]byte)
	for _, alg := range algs {
		p := protoFor(t, alg, 3, r)
		m := p.NewMachine(r.Label(0))
		var out core.Outbox
		m.Init(&out)
		blob, err := m.(core.Snapshotter).SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		blobs[alg] = blob
	}
	for _, from := range algs {
		for _, to := range algs {
			if from == to {
				continue
			}
			p := protoFor(t, to, 3, r)
			m := p.NewMachine(r.Label(0))
			if err := m.(core.Snapshotter).RestoreState(blobs[from]); err == nil {
				t.Errorf("%s blob restored into %s machine", from, to)
			}
		}
	}
}

// TestBaselinesAreNotSnapshotters documents that crash-recovery is scoped
// to the paper's protocols: if a baseline ever gains Snapshotter this test
// reminds the author to extend the chaos harness too.
func TestBaselinesAreNotSnapshotters(t *testing.T) {
	r, err := ring.Parse("1 2 3 4 5")
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"A", "B", "S"} {
		p := protoFor(t, alg, 3, r)
		if _, ok := p.NewMachine(r.Label(0)).(core.Snapshotter); !ok {
			t.Errorf("%s must implement Snapshotter", p.Name())
		}
	}
}
