package core

import (
	"strings"
	"testing"
)

func TestMessageConstructors(t *testing.T) {
	if m := Token(5); m.Kind != KindToken || m.Label != 5 {
		t.Errorf("Token(5) = %+v", m)
	}
	if m := Finish(); m.Kind != KindFinish {
		t.Errorf("Finish() = %+v", m)
	}
	if m := PhaseShift(7); m.Kind != KindPhaseShift || m.Label != 7 {
		t.Errorf("PhaseShift(7) = %+v", m)
	}
	if m := FinishLabel(9); m.Kind != KindFinishLabel || m.Label != 9 {
		t.Errorf("FinishLabel(9) = %+v", m)
	}
}

func TestMessageString(t *testing.T) {
	cases := map[string]string{
		Token(3).String():       "⟨3⟩",
		Finish().String():       "⟨FINISH⟩",
		PhaseShift(2).String():  "⟨PHASE_SHIFT,2⟩",
		FinishLabel(1).String(): "⟨FINISH_L,1⟩",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if !strings.Contains(Kind(250).String(), "250") {
		t.Error("unknown kind must render its number")
	}
}

func TestMessageBits(t *testing.T) {
	if got := Finish().Bits(8, 8); got != 3 {
		t.Errorf("Finish bits = %d, want 3 (tag only)", got)
	}
	if got := Token(1).Bits(8, 8); got != 11 {
		t.Errorf("Token bits = %d, want 3+8", got)
	}
	// Rand token on an 8-ring, round 2: 3 tag + 2 id + 3 hop + 2 round + 1 flag.
	if got := RandToken(3, 2, 1, true).Bits(8, 8); got != 11 {
		t.Errorf("RandToken bits = %d, want 11", got)
	}
	// Announcement on an 8-ring: 3 tag + 8 label + 3 hop.
	if got := RandLeader(5, 2, 1).Bits(8, 8); got != 14 {
		t.Errorf("RandLeader bits = %d, want 14", got)
	}
}

func TestKindNames(t *testing.T) {
	want := map[Kind]string{
		KindToken: "TOKEN", KindFinish: "FINISH", KindPhaseShift: "PHASE_SHIFT",
		KindFinishLabel: "FINISH_L", KindPeterson1: "PETERSON_1", KindPeterson2: "PETERSON_2",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d String = %q, want %q", k, k.String(), s)
		}
	}
}

func TestOutbox(t *testing.T) {
	var o Outbox
	if o.Len() != 0 {
		t.Error("fresh outbox not empty")
	}
	o.Send(Token(1))
	o.Send(Finish())
	if o.Len() != 2 {
		t.Errorf("Len = %d, want 2", o.Len())
	}
	msgs := o.Drain()
	if len(msgs) != 2 || msgs[0].Kind != KindToken || msgs[1].Kind != KindFinish {
		t.Errorf("Drain = %v", msgs)
	}
	if o.Len() != 0 || o.Drain() != nil {
		t.Error("Drain must clear the outbox")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for v, want := range cases {
		if got := ceilLog2(v); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", v, got, want)
		}
	}
}
