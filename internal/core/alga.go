package core

import (
	"fmt"
	"strings"

	"repro/internal/ring"
	"repro/internal/words"
)

// AProtocol is Algorithm Ak (Table 1): process-terminating leader election
// for A ∩ Kk. Each process broadcasts its label clockwise and accumulates
// the labels it receives into p.string, a growing prefix of LLabels(p).
// Once some label has been seen 2k+1 times, the string determines the ring
// completely (Lemma 6): its smallest repeating prefix is exactly the
// counter-clockwise label sequence, and the process whose sequence is a
// Lyndon word elects itself (the "true leader").
//
// Theorem 2: time ≤ (2k+2)n, messages ≤ n²(2k+1)+n, and space ≤
// (2k+1)nb + 2b + 3 bits per process.
type AProtocol struct {
	// K is the multiplicity bound k ≥ 1 known a priori by every process.
	K int
	// LabelBits is b, the per-label storage cost used by SpaceBits.
	LabelBits int
	// Threshold overrides the copies-of-a-label count that triggers the
	// Leader(σ) evaluation. Zero means the paper's 2k+1, the smallest
	// sound value (Lemma 6). Any smaller value is an ABLATION ONLY: the
	// threshold-tightness experiment (E13) shows rings where it elects
	// two leaders.
	Threshold int
}

// NewAProtocol returns Algorithm Ak for the given multiplicity bound and
// label width.
func NewAProtocol(k, labelBits int) (*AProtocol, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: Ak requires k >= 1, got %d", k)
	}
	if labelBits < 1 {
		return nil, fmt.Errorf("core: Ak requires labelBits >= 1, got %d", labelBits)
	}
	return &AProtocol{K: k, LabelBits: labelBits}, nil
}

// Name implements Protocol.
func (p *AProtocol) Name() string {
	if p.Threshold > 0 && p.Threshold != 2*p.K+1 {
		return fmt.Sprintf("Ak(k=%d,thr=%d)", p.K, p.Threshold)
	}
	return fmt.Sprintf("Ak(k=%d)", p.K)
}

// threshold returns the effective copies rule.
func (p *AProtocol) threshold() int {
	if p.Threshold > 0 {
		return p.Threshold
	}
	return 2*p.K + 1
}

// NewMachine implements Protocol.
func (p *AProtocol) NewMachine(id ring.Label) Machine {
	return &algA{id: id, k: p.K, threshold: p.threshold(), labelBits: p.LabelBits, init: true}
}

// algA is the per-process state of Ak.
type algA struct {
	id        ring.Label
	k         int
	threshold int // copies rule: 2k+1 unless ablated
	labelBits int

	// Paper variables.
	init     bool // p.INIT
	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool

	// p.string, kept with an online KMP failure table so srp is O(1).
	str words.Incremental[ring.Label]

	// Bookkeeping for the Leader(σ) predicate: label occurrence counts and
	// the highest count. Once maxCount reaches 2k+1 the string length
	// exceeds 2n, so srp(σ) is pinned to the ring's n-window forever
	// (Lemma 5/6); the Lyndon verdict is then computed once and cached.
	counts    map[ring.Label]int
	maxCount  int
	decided   bool // Leader(σ) verdict cached
	candidate bool // cached verdict

	// booth is scratch for the Lyndon tests (words.LyndonScratch); it
	// survives ResetFor so pooled machines stop allocating once grown.
	booth []int
}

// leaderPredicate evaluates Leader(p.string): true iff the string contains
// at least 2k+1 copies of some label and srp(σ) = LW(srp(σ)).
//
// With the paper's threshold the verdict is cached: once 2k+1 copies
// exist the string is longer than 2n, so srp is pinned to the ring window
// forever (Lemmas 5/6) and the Lyndon verdict cannot change. An ablated
// (smaller) threshold loses that guarantee, so it re-evaluates on every
// receive, exactly as Table 1 is written.
func (a *algA) leaderPredicate() bool {
	if a.decided {
		return a.candidate
	}
	if a.maxCount < a.threshold {
		return false
	}
	// Memoized on the smallest period: ablated thresholds re-evaluate on
	// every receive, and without the memo each test is a Θ(n) scan.
	verdict := a.str.CheckSRP(func(w []ring.Label) bool {
		a.booth = words.LyndonScratch(a.booth, len(w))
		return words.IsLyndonInto(w, a.booth)
	})
	if a.threshold >= 2*a.k+1 {
		a.decided = true
		a.candidate = verdict
	}
	return verdict
}

// appendLabel extends p.string with x, maintaining counts and the failure
// table.
func (a *algA) appendLabel(x ring.Label) {
	a.str.Append(x)
	if a.counts == nil {
		a.counts = make(map[ring.Label]int)
	}
	a.counts[x]++
	if a.counts[x] > a.maxCount {
		a.maxCount = a.counts[x]
	}
}

// Init executes action A1: INIT ← false, string ← id, send ⟨id⟩.
func (a *algA) Init(out *Outbox) string {
	a.init = false
	a.appendLabel(a.id)
	out.Send(Token(a.id))
	return "A1"
}

// Receive dispatches on the head message exactly as the guards of Table 1.
func (a *algA) Receive(m Message, out *Outbox) (string, error) {
	if a.init {
		return "", fmt.Errorf("Ak: message %s delivered before A1", m)
	}
	if a.halted {
		return "", fmt.Errorf("Ak: message %s delivered after halt", m)
	}
	switch m.Kind {
	case KindToken:
		if a.isLeader {
			// A5: the leader consumes remaining tokens.
			return "A5", nil
		}
		a.appendLabel(m.Label)
		if a.leaderPredicate() {
			// A3: elect self, start the finishing phase.
			a.isLeader = true
			a.leader = a.id
			a.ledSet = true
			a.done = true
			out.Send(Finish())
			return "A3", nil
		}
		// A2: grow the string, forward the token.
		out.Send(Token(m.Label))
		return "A2", nil

	case KindFinish:
		if a.isLeader {
			// A6: ⟨FINISH⟩ came back around; halt.
			a.halted = true
			return "A6", nil
		}
		// A4: learn the leader's label from the string, forward, halt.
		w := a.str.SRP()
		a.booth = words.LyndonScratch(a.booth, len(w))
		start, ok := words.LyndonRotationStart(w, a.booth)
		if !ok {
			return "", fmt.Errorf("Ak: srp %v not primitive at A4 (string too short, len=%d)", w, a.str.Len())
		}
		a.leader = w[start]
		a.ledSet = true
		a.done = true
		out.Send(Finish())
		a.halted = true
		return "A4", nil

	default:
		return "", fmt.Errorf("Ak: unexpected message %s", m)
	}
}

// ResetFor implements Resetter: re-initialize in place as NewMachine
// would, keeping the string's backing arrays and the counts map.
func (a *algA) ResetFor(p Protocol, _ int, id ring.Label) bool {
	ap, ok := p.(*AProtocol)
	if !ok {
		return false
	}
	a.id = id
	a.k = ap.K
	a.threshold = ap.threshold()
	a.labelBits = ap.LabelBits
	a.init = true
	a.isLeader, a.done, a.ledSet, a.halted = false, false, false, false
	a.leader = 0
	a.str.Reset()
	clear(a.counts)
	a.maxCount = 0
	a.decided, a.candidate = false, false
	return true
}

// Clone implements Cloner.
func (a *algA) Clone() Machine {
	cp := *a
	cp.booth = nil // scratch: never shared between machines
	cp.str = a.str.Clone()
	if a.counts != nil {
		cp.counts = make(map[ring.Label]int, len(a.counts))
		for l, c := range a.counts {
			cp.counts[l] = c
		}
	}
	return &cp
}

// Halted implements Machine.
func (a *algA) Halted() bool { return a.halted }

// Status implements Machine.
func (a *algA) Status() Status {
	return Status{IsLeader: a.isLeader, Done: a.done, Leader: a.leader, LeaderSet: a.ledSet}
}

// StateName implements Machine.
func (a *algA) StateName() string {
	switch {
	case a.init:
		return "INIT"
	case a.halted:
		return "HALT"
	case a.isLeader:
		return "LEADER"
	default:
		return "GROW"
	}
}

// SpaceBits implements Machine: |string|·b for the string, 2b for id and
// leader, 3 bits for the booleans INIT, isLeader, done — the unit system of
// Theorem 2.
func (a *algA) SpaceBits() int {
	return a.str.Len()*a.labelBits + 2*a.labelBits + 3
}

// Fingerprint implements Machine.
func (a *algA) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ak INIT=%c halted=%c %s str=", boolBit(a.init), boolBit(a.halted), statusFingerprint(a.Status()))
	for i, l := range a.str.Seq() {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(l.String())
	}
	return b.String()
}
