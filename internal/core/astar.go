package core

import (
	"fmt"
	"strings"

	"repro/internal/ring"
	"repro/internal/words"
)

// StarProtocol is A*: a string-growth election like Ak but with a sharper
// termination test based on the Fine–Wilf periodicity theorem, occupying
// the ≈(k+2)n-time / O(knb)-space trade-off point of the authors' SSS 2016
// algorithm for U* ∩ Kk (which this paper cites as its time-optimality
// anchor; see DESIGN.md §3). Unlike that algorithm, A* needs no unique
// label: it is correct on all of A ∩ Kk.
//
// Termination test. Let σ = p.string (a prefix of LLabels(p)), d the
// smallest period of σ, and suppose some label has k+1 occurrences in σ,
// the (k+1)-th at position q. Since every window of n consecutive labels
// holds at most k copies (class Kk), q ≥ n+1, so P := q-1 ≥ n. If
// |σ| ≥ d + P then |σ| ≥ d + n - gcd(d,n), so by Fine–Wilf gcd(d, n) is a
// period of σ; σ covers a full ring window (|σ| > n), hence gcd(d, n)
// would be a rotational symmetry of the ring — asymmetry forces
// gcd(d, n) = n, i.e. d = n. The process then knows the ring exactly and
// elects itself iff σ_d is a Lyndon word.
//
// On a ring of distinct labels this triggers at |σ| ≈ (k+1)n instead of
// Ak's 2kn+1, giving total time ≈ (k+2)n versus (2k+2)n.
type StarProtocol struct {
	// K is the multiplicity bound k ≥ 1 known a priori by every process.
	K int
	// LabelBits is b, the per-label storage cost used by SpaceBits.
	LabelBits int
}

// NewStarProtocol returns A* for the given multiplicity bound and label
// width.
func NewStarProtocol(k, labelBits int) (*StarProtocol, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: A* requires k >= 1, got %d", k)
	}
	if labelBits < 1 {
		return nil, fmt.Errorf("core: A* requires labelBits >= 1, got %d", labelBits)
	}
	return &StarProtocol{K: k, LabelBits: labelBits}, nil
}

// Name implements Protocol.
func (p *StarProtocol) Name() string { return fmt.Sprintf("A*(k=%d)", p.K) }

// NewMachine implements Protocol.
func (p *StarProtocol) NewMachine(id ring.Label) Machine {
	return &algStar{id: id, k: p.K, labelBits: p.LabelBits, init: true, certP: -1}
}

// algStar is the per-process state of A*.
type algStar struct {
	id        ring.Label
	k         int
	labelBits int

	init     bool
	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool

	str    words.Incremental[ring.Label]
	counts map[ring.Label]int
	// certP is P = q-1 where q is the position (1-based) at which some
	// label first reached k+1 occurrences; -1 until that happens. It
	// certifies n ≤ P.
	certP int

	decided   bool
	candidate bool

	// booth is scratch for the Lyndon tests (words.LyndonScratch); it
	// survives ResetFor so pooled machines stop allocating once grown.
	booth []int
}

// leaderPredicate evaluates the A* termination test on the current string.
func (s *algStar) leaderPredicate() bool {
	if s.decided {
		return s.candidate
	}
	if s.certP < 0 {
		return false
	}
	d := s.str.SmallestPeriod()
	if s.str.Len() < d+s.certP {
		return false
	}
	// d = n is now certain; the verdict is final either way.
	s.decided = true
	s.booth = words.LyndonScratch(s.booth, d)
	s.candidate = words.IsLyndonInto(s.str.Seq()[:d], s.booth)
	return s.candidate
}

// appendLabel extends p.string with x, maintaining counts and the k+1
// certificate.
func (s *algStar) appendLabel(x ring.Label) {
	s.str.Append(x)
	if s.counts == nil {
		s.counts = make(map[ring.Label]int)
	}
	s.counts[x]++
	if s.certP < 0 && s.counts[x] == s.k+1 {
		s.certP = s.str.Len() - 1
	}
}

// Init executes action S1 (the A1 analogue).
func (s *algStar) Init(out *Outbox) string {
	s.init = false
	s.appendLabel(s.id)
	out.Send(Token(s.id))
	return "S1"
}

// Receive mirrors Table 1's dispatch with the A* termination test.
func (s *algStar) Receive(m Message, out *Outbox) (string, error) {
	if s.init {
		return "", fmt.Errorf("A*: message %s delivered before S1", m)
	}
	if s.halted {
		return "", fmt.Errorf("A*: message %s delivered after halt", m)
	}
	switch m.Kind {
	case KindToken:
		if s.isLeader {
			return "S5", nil // consume, as A5
		}
		s.appendLabel(m.Label)
		if s.leaderPredicate() {
			s.isLeader = true
			s.leader = s.id
			s.ledSet = true
			s.done = true
			out.Send(Finish())
			return "S3", nil
		}
		out.Send(Token(m.Label))
		return "S2", nil

	case KindFinish:
		if s.isLeader {
			s.halted = true
			return "S6", nil
		}
		// As in A4: when ⟨FINISH⟩ arrives the string has length ≥ 2n-1 (the
		// leader decided at length d+P ≥ 2n and FIFO delivered all tokens it
		// forwarded first), so srp(σ) is the ring window by Fine–Wilf.
		w := s.str.SRP()
		s.booth = words.LyndonScratch(s.booth, len(w))
		start, ok := words.LyndonRotationStart(w, s.booth)
		if !ok {
			return "", fmt.Errorf("A*: srp %v not primitive at S4 (string too short, len=%d)", w, s.str.Len())
		}
		s.leader = w[start]
		s.ledSet = true
		s.done = true
		out.Send(Finish())
		s.halted = true
		return "S4", nil

	default:
		return "", fmt.Errorf("A*: unexpected message %s", m)
	}
}

// ResetFor implements Resetter: re-initialize in place as NewMachine
// would, keeping the string's backing arrays and the counts map.
func (s *algStar) ResetFor(p Protocol, _ int, id ring.Label) bool {
	sp, ok := p.(*StarProtocol)
	if !ok {
		return false
	}
	s.id = id
	s.k = sp.K
	s.labelBits = sp.LabelBits
	s.init = true
	s.isLeader, s.done, s.ledSet, s.halted = false, false, false, false
	s.leader = 0
	s.str.Reset()
	clear(s.counts)
	s.certP = -1
	s.decided, s.candidate = false, false
	return true
}

// Clone implements Cloner.
func (s *algStar) Clone() Machine {
	cp := *s
	cp.booth = nil // scratch: never shared between machines
	cp.str = s.str.Clone()
	if s.counts != nil {
		cp.counts = make(map[ring.Label]int, len(s.counts))
		for l, c := range s.counts {
			cp.counts[l] = c
		}
	}
	return &cp
}

// Halted implements Machine.
func (s *algStar) Halted() bool { return s.halted }

// Status implements Machine.
func (s *algStar) Status() Status {
	return Status{IsLeader: s.isLeader, Done: s.done, Leader: s.leader, LeaderSet: s.ledSet}
}

// StateName implements Machine.
func (s *algStar) StateName() string {
	switch {
	case s.init:
		return "INIT"
	case s.halted:
		return "HALT"
	case s.isLeader:
		return "LEADER"
	default:
		return "GROW"
	}
}

// SpaceBits implements Machine, with the same unit system as Ak plus the
// ⌈log(kn)⌉-ish certificate position, accounted as one machine word of
// log-scale state; we charge it at labelBits for comparability.
func (s *algStar) SpaceBits() int {
	return s.str.Len()*s.labelBits + 2*s.labelBits + 3 + s.labelBits
}

// Fingerprint implements Machine.
func (s *algStar) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A* INIT=%c halted=%c certP=%d %s str=", boolBit(s.init), boolBit(s.halted), s.certP, statusFingerprint(s.Status()))
	for i, l := range s.str.Seq() {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(l.String())
	}
	return b.String()
}
