package core_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
)

// TestRotationEquivariance: the harness numbering of processes is
// arbitrary — rotating the ring (renaming pi to p(i-d)) must elect the
// same *process*, i.e. the elected index shifts by exactly -d, and costs
// are unchanged.
func TestRotationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(10)
		r, err := ring.RandomAsymmetric(rng, n, 3, max(6, n))
		if err != nil {
			t.Fatal(err)
		}
		k := max(2, r.MaxMultiplicity())
		for _, alg := range []string{"A", "S", "B"} {
			p := protoFor(t, alg, k, r)
			base := electSync(t, r, p)
			for _, d := range []int{1, n / 2, n - 1} {
				rot := r.Rotate(d)
				pr := protoFor(t, alg, k, rot)
				res := electSync(t, rot, pr)
				want := ((base.LeaderIndex-d)%n + n) % n
				if res.LeaderIndex != want {
					t.Fatalf("%s on %s rotated by %d: leader p%d, want p%d",
						p.Name(), r, d, res.LeaderIndex, want)
				}
				if res.Messages != base.Messages || res.Steps != base.Steps {
					t.Fatalf("%s on %s rotated by %d: cost changed (%d/%d msgs, %d/%d steps)",
						p.Name(), r, d, res.Messages, base.Messages, res.Steps, base.Steps)
				}
			}
		}
	}
}

// TestLabelRemapInvariance: algorithms may only compare labels, so any
// strictly order-preserving relabeling must produce an identical execution
// — same leader index, messages and steps.
func TestLabelRemapInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(10)
		r, err := ring.RandomAsymmetric(rng, n, 3, max(6, n))
		if err != nil {
			t.Fatal(err)
		}
		// Build a strictly increasing random remapping of the label values.
		var values []ring.Label
		seen := map[ring.Label]bool{}
		for _, l := range r.Labels() {
			if !seen[l] {
				seen[l] = true
				values = append(values, l)
			}
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		remap := map[ring.Label]ring.Label{}
		next := ring.Label(1)
		for _, v := range values {
			next += ring.Label(1 + rng.Intn(40)) // strictly increasing, random gaps
			remap[v] = next
		}
		mapped := make([]ring.Label, n)
		for i, l := range r.Labels() {
			mapped[i] = remap[l]
		}
		r2 := ring.MustNew(mapped...)

		k := max(2, r.MaxMultiplicity())
		for _, alg := range []string{"A", "S", "B"} {
			p1 := protoFor(t, alg, k, r)
			p2 := protoFor(t, alg, k, r2)
			a := electSync(t, r, p1)
			b := electSync(t, r2, p2)
			if a.LeaderIndex != b.LeaderIndex {
				t.Fatalf("%s: remapping %s -> %s moved the leader p%d -> p%d",
					p1.Name(), r, r2, a.LeaderIndex, b.LeaderIndex)
			}
			if a.Messages != b.Messages || a.Steps != b.Steps {
				t.Fatalf("%s: remapping changed costs (%d/%d msgs, %d/%d steps)",
					p1.Name(), a.Messages, b.Messages, a.Steps, b.Steps)
			}
		}
	}
}

// TestSpaceAccountingMonotone: Ak's footprint grows monotonically during
// an execution (the string only grows) and the reported peak equals the
// final size for the leader's full string.
func TestSpaceAccountingMonotone(t *testing.T) {
	r := ring.Figure1()
	p, err := core.NewAProtocol(3, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(r.Label(0))
	var out core.Outbox
	prev := m.SpaceBits()
	m.Init(&out)
	out.Drain()
	if m.SpaceBits() <= prev {
		t.Fatal("A1 must grow the string")
	}
	prev = m.SpaceBits()
	for _, x := range []ring.Label{2, 1, 2, 2, 3} {
		if _, err := m.Receive(core.Token(x), &out); err != nil {
			t.Fatal(err)
		}
		out.Drain()
		if sp := m.SpaceBits(); sp < prev {
			t.Fatalf("space shrank from %d to %d", prev, sp)
		} else {
			prev = sp
		}
	}
}
