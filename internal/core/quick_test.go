package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
)

// ringInstance is a random problem instance for testing/quick: a ring from
// A ∩ Kk together with the bound k the processes are given.
type ringInstance struct {
	R *ring.Ring
	K int
}

// Generate implements quick.Generator, drawing rings of 2–20 processes
// with multiplicity bound 1–4 (enforcing k ≥ truth) and random alphabets.
func (ringInstance) Generate(rng *rand.Rand, size int) reflect.Value {
	for {
		n := 2 + rng.Intn(19)
		k := 1 + rng.Intn(4)
		alpha := max((n+k-1)/k+1, 2+rng.Intn(n+2))
		r, err := ring.RandomAsymmetric(rng, n, k, alpha)
		if err != nil {
			continue
		}
		// Give the processes either the exact max multiplicity or a looser
		// bound — both must work.
		bound := r.MaxMultiplicity() + rng.Intn(3)
		return reflect.ValueOf(ringInstance{R: r, K: max(1, bound)})
	}
}

// TestQuickAkProperties drives Ak on quick-generated instances: the true
// leader is elected, every Theorem 2 bound holds, and the synchronous and
// unit-delay runs agree.
func TestQuickAkProperties(t *testing.T) {
	prop := func(inst ringInstance) bool {
		r, k := inst.R, inst.K
		p, err := core.NewAProtocol(k, r.LabelBits())
		if err != nil {
			return false
		}
		res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			t.Logf("run failed on %s k=%d: %v", r, k, err)
			return false
		}
		want, _ := r.TrueLeader()
		n, b := r.N(), r.LabelBits()
		if res.LeaderIndex != want {
			t.Logf("wrong leader on %s k=%d", r, k)
			return false
		}
		if res.TimeUnits > float64((2*k+2)*n) ||
			res.Messages > n*n*(2*k+1)+n ||
			res.PeakSpaceBits > (2*k+1)*n*b+2*b+3 {
			t.Logf("bound violated on %s k=%d: %+v", r, k, res)
			return false
		}
		sres, err := sim.RunSync(r, p, sim.Options{})
		if err != nil || sres.LeaderIndex != res.LeaderIndex || sres.Messages != res.Messages {
			t.Logf("engines disagree on %s k=%d", r, k)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBkProperties drives Bk on quick-generated instances: correct
// leader, exact space formula, and schedule independence under a random
// delay model.
func TestQuickBkProperties(t *testing.T) {
	prop := func(inst ringInstance, seed int64) bool {
		r, k := inst.R, max(2, inst.K)
		p, err := core.NewBProtocol(k, r.LabelBits())
		if err != nil {
			return false
		}
		res, err := sim.RunSync(r, p, sim.Options{})
		if err != nil {
			t.Logf("run failed on %s k=%d: %v", r, k, err)
			return false
		}
		want, _ := r.TrueLeader()
		if res.LeaderIndex != want {
			return false
		}
		b := r.LabelBits()
		if res.PeakSpaceBits != 2*ceilLog2(k)+3*b+5 {
			t.Logf("space formula broken on %s k=%d: %d", r, k, res.PeakSpaceBits)
			return false
		}
		ares, err := sim.RunAsync(r, p, sim.NewUniformDelay(seed, 0), sim.Options{})
		if err != nil || ares.LeaderIndex != res.LeaderIndex || ares.Messages != res.Messages {
			t.Logf("schedule dependence on %s k=%d seed=%d", r, k, seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAStarNeverSlowerThanAk is the ablation property: on every
// instance, A* terminates no later than Ak in time units and uses no more
// messages, while electing the same process.
func TestQuickAStarNeverSlowerThanAk(t *testing.T) {
	prop := func(inst ringInstance) bool {
		r, k := inst.R, inst.K
		pa, err := core.NewAProtocol(k, r.LabelBits())
		if err != nil {
			return false
		}
		ps, err := core.NewStarProtocol(k, r.LabelBits())
		if err != nil {
			return false
		}
		ra, err := sim.RunAsync(r, pa, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			return false
		}
		rs, err := sim.RunAsync(r, ps, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			return false
		}
		if rs.LeaderIndex != ra.LeaderIndex {
			t.Logf("A* and Ak disagree on %s k=%d", r, k)
			return false
		}
		if rs.TimeUnits > ra.TimeUnits || rs.Messages > ra.Messages {
			t.Logf("A* slower than Ak on %s k=%d: %v/%d vs %v/%d",
				r, k, rs.TimeUnits, rs.Messages, ra.TimeUnits, ra.Messages)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
