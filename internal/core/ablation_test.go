package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/spec"
)

// TestAblatedThresholds pins the E13 counterexamples: the paper's
// thresholds elect correctly on the critical rings while the reduced ones
// produce duplicate leaders (Ak) or break the phase structure (Bk).
func TestAblatedThresholds(t *testing.T) {
	t.Run("Ak k+1 copies elects two leaders on [1 1 1 2]", func(t *testing.T) {
		r := ring.MustNew(1, 1, 1, 2)
		k := r.MaxMultiplicity() // 3
		p, err := core.NewAProtocol(k, r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		p.Threshold = k + 1
		_, err = sim.RunSync(r, p, sim.Options{MaxActions: 100000})
		var v *spec.Violation
		if !errors.As(err, &v) || v.Bullet != 1 {
			t.Fatalf("err = %v, want bullet 1 (two leaders)", err)
		}
	})

	t.Run("Ak k+2 copies elects two leaders on [1 1 1 1 2]", func(t *testing.T) {
		r := ring.MustNew(1, 1, 1, 1, 2)
		k := r.MaxMultiplicity() // 4
		p, err := core.NewAProtocol(k, r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		p.Threshold = k + 2
		_, err = sim.RunSync(r, p, sim.Options{MaxActions: 100000})
		var v *spec.Violation
		if !errors.As(err, &v) || v.Bullet != 1 {
			t.Fatalf("err = %v, want bullet 1 (two leaders)", err)
		}
	})

	t.Run("paper thresholds survive the same rings", func(t *testing.T) {
		for _, spec := range []string{"1 1 1 2", "1 1 1 1 2", "1 1 2"} {
			r, err := ring.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			k := r.MaxMultiplicity()
			pa, err := core.NewAProtocol(k, r.LabelBits())
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunSync(r, pa, sim.Options{})
			if err != nil {
				t.Fatalf("Ak on %s: %v", r, err)
			}
			if want, _ := r.TrueLeader(); res.LeaderIndex != want {
				t.Fatalf("Ak on %s elected p%d, want p%d", r, res.LeaderIndex, want)
			}
			pb, err := core.NewBProtocol(max(2, k), r.LabelBits())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sim.RunSync(r, pb, sim.Options{}); err != nil {
				t.Fatalf("Bk on %s: %v", r, err)
			}
		}
	})

	t.Run("Bk outer=k-1 breaks on [1 1 2]", func(t *testing.T) {
		r := ring.MustNew(1, 1, 2)
		p, err := core.NewBProtocol(2, r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		p.OuterThreshold = 1
		if _, err := sim.RunSync(r, p, sim.Options{MaxActions: 100000}); err == nil {
			t.Fatal("ablated Bk terminated correctly — threshold not tight?")
		}
	})

	t.Run("ablated names are distinguishable", func(t *testing.T) {
		pa, _ := core.NewAProtocol(3, 2)
		pa.Threshold = 4
		if pa.Name() == "Ak(k=3)" {
			t.Error("ablated Ak must advertise its threshold")
		}
		pb, _ := core.NewBProtocol(3, 2)
		pb.OuterThreshold = 2
		if pb.Name() == "Bk(k=3)" {
			t.Error("ablated Bk must advertise its threshold")
		}
	})
}
