// Package core implements the paper's primary contribution: the
// guarded-action process model of §II and the two process-terminating
// leader-election algorithms for the class A ∩ Kk of asymmetric labeled
// unidirectional rings with known multiplicity bound k —
//
//   - Algorithm Ak (Table 1): time ≤ (2k+2)n, messages ≤ n²(2k+1)+n,
//     space ≤ (2k+1)nb + 2b + 3 bits per process (Theorem 2);
//   - Algorithm Bk (Table 2, Figure 2): time and messages O(k²n²),
//     space 2⌈log k⌉ + 3b + 5 bits per process (Theorem 4);
//
// plus A* — an extension variant with Fine–Wilf-based early termination at
// the (k+2)n trade-off point of the authors' SSS 2016 algorithm (see
// DESIGN.md §3).
//
// Machines are engine-agnostic: both the deterministic simulator
// (internal/sim) and the goroutine runtime (internal/gorun) drive them.
package core

import (
	"fmt"

	"repro/internal/ring"
)

// Kind tags the message vocabulary shared by all protocols in this
// repository. Each protocol uses only its own subset; receiving a kind a
// protocol never handles is a model violation surfaced as an error.
type Kind uint8

const (
	// KindToken is ⟨x⟩: a circulating label (Ak actions A1–A3, A5; Bk
	// actions B1–B5, B7).
	KindToken Kind = iota
	// KindFinish is ⟨FINISH⟩ without payload (Ak actions A3, A4, A6).
	KindFinish
	// KindPhaseShift is ⟨PHASE_SHIFT, x⟩ (Bk actions B5, B6, B8, B9).
	KindPhaseShift
	// KindFinishLabel is ⟨FINISH, x⟩ (Bk actions B9–B11; also the baseline
	// algorithms' announcement message).
	KindFinishLabel
	// KindPeterson1 and KindPeterson2 carry the first and second candidate
	// values of a Peterson/Dolev–Klawe–Rodeh phase (internal/baseline).
	KindPeterson1
	KindPeterson2
	// KindRandToken is ⟨id, round, hop, uniq⟩ — the Itai–Rodeh candidacy
	// token (internal/rand). Label carries the drawn random id (not a ring
	// label), Round the election round, Hop the distance traveled, and
	// Flag the uniqueness bit (true while no same-round collision with the
	// originator's id has been observed).
	KindRandToken
	// KindRandLeader is ⟨LEADER, x, hop⟩ — the Itai–Rodeh announcement:
	// Label carries the elected process's ring label and Hop the distance
	// traveled; it circulates exactly one lap.
	KindRandLeader
)

// String names the kind as in the paper.
func (k Kind) String() string {
	switch k {
	case KindToken:
		return "TOKEN"
	case KindFinish:
		return "FINISH"
	case KindPhaseShift:
		return "PHASE_SHIFT"
	case KindFinishLabel:
		return "FINISH_L"
	case KindPeterson1:
		return "PETERSON_1"
	case KindPeterson2:
		return "PETERSON_2"
	case KindRandToken:
		return "RAND_TOKEN"
	case KindRandLeader:
		return "RAND_LEADER"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Message is the paper's tuple ⟨x1, …, xz⟩, restricted to the forms the
// implemented protocols use: a kind tag, at most one label payload, and —
// for the randomized kinds — a round number, a hop count, and one flag
// bit. The deterministic kinds leave Round, Hop, and Flag zero.
type Message struct {
	Kind  Kind
	Label ring.Label
	// Round is the election round the message belongs to (KindRandToken).
	Round uint32
	// Hop counts the links the message has crossed so far, starting at 1
	// on the originator's outgoing link (KindRandToken, KindRandLeader).
	Hop uint32
	// Flag is the Itai–Rodeh uniqueness bit (KindRandToken).
	Flag bool
}

// Token builds ⟨x⟩.
func Token(x ring.Label) Message { return Message{Kind: KindToken, Label: x} }

// Finish builds ⟨FINISH⟩.
func Finish() Message { return Message{Kind: KindFinish} }

// PhaseShift builds ⟨PHASE_SHIFT, x⟩.
func PhaseShift(x ring.Label) Message { return Message{Kind: KindPhaseShift, Label: x} }

// FinishLabel builds ⟨FINISH, x⟩.
func FinishLabel(x ring.Label) Message { return Message{Kind: KindFinishLabel, Label: x} }

// RandToken builds the Itai–Rodeh candidacy token ⟨id, round, hop, uniq⟩.
func RandToken(id ring.Label, round, hop uint32, uniq bool) Message {
	return Message{Kind: KindRandToken, Label: id, Round: round, Hop: hop, Flag: uniq}
}

// RandLeader builds the Itai–Rodeh announcement ⟨LEADER, x, hop⟩.
func RandLeader(x ring.Label, round, hop uint32) Message {
	return Message{Kind: KindRandLeader, Label: x, Round: round, Hop: hop}
}

// String renders the message as in the paper, e.g. "⟨3⟩" or
// "⟨PHASE_SHIFT,2⟩".
func (m Message) String() string {
	switch m.Kind {
	case KindToken:
		return fmt.Sprintf("⟨%s⟩", m.Label)
	case KindFinish:
		return "⟨FINISH⟩"
	case KindRandToken:
		return fmt.Sprintf("⟨%s,r%d,h%d,%c⟩", m.Label, m.Round, m.Hop, boolBit(m.Flag))
	case KindRandLeader:
		return fmt.Sprintf("⟨LEADER,%s,h%d⟩", m.Label, m.Hop)
	default:
		return fmt.Sprintf("⟨%s,%s⟩", m.Kind, m.Label)
	}
}

// Bits returns the message's size in bits for accounting on an n-process
// ring whose labels cost labelBits bits: a kind tag (3 bits here) plus the
// payload. The deterministic kinds carry at most one label. The randomized
// kinds additionally carry a hop counter (⌈log n⌉ bits), KindRandToken a
// 2-bit id (the K = 3 alphabet of internal/rand), a round number at its
// ⌈log(round+1)⌉ self-cost, and the 1-bit uniqueness flag. The result is a
// pure function of the message content, n, and labelBits, so every engine
// accounts identically.
func (m Message) Bits(labelBits, n int) int {
	switch m.Kind {
	case KindFinish:
		return 3
	case KindRandToken:
		return 3 + 2 + ceilLog2(n) + ceilLog2(int(m.Round)+1) + 1
	case KindRandLeader:
		return 3 + labelBits + ceilLog2(n)
	default:
		return 3 + labelBits
	}
}
