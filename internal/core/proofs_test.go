package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/words"
)

// TestActSetEvolution verifies the central invariant of Bk's proof
// (Lemmas 7 and 13): the set of processes still active at the beginning
// of phase i+1 is exactly
//
//	Act_i = { p : LLabels(p)^i = LLabels(L)^i },
//
// the processes whose first i counter-clockwise labels coincide with the
// true leader's.
func TestActSetEvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	rings := []*ring.Ring{ring.Figure1(), ring.Ring122(), ring.Distinct(7)}
	for i := 0; i < 10; i++ {
		n := 5 + rng.Intn(10)
		r, err := ring.RandomAsymmetric(rng, n, 3, max(5, n))
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	for _, r := range rings {
		k := max(2, r.MaxMultiplicity())
		p := protoFor(t, "B", k, r)
		_, table := runWithPhases(t, r, p)
		leader, _ := r.TrueLeader()
		n := r.N()
		for phase := 2; phase <= table.Phases(); phase++ {
			i := phase - 1 // the completed phase
			var want []int
			ref := r.LLabels(leader, i)
			for proc := 0; proc < n; proc++ {
				if words.Compare(r.LLabels(proc, i), ref) == 0 {
					want = append(want, proc)
				}
			}
			got := table.ActiveSet(phase)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("Bk on %s: active set entering phase %d is %v, Act_%d = %v",
					r, phase, got, i, want)
			}
		}
	}
}

// TestAkStringIsLLabelsPrefix verifies Ak's core data invariant: at every
// point of the execution, p.string is a prefix of LLabels(p). Checked via
// the per-step fingerprints of the synchronous probe.
func TestAkStringIsLLabelsPrefix(t *testing.T) {
	rings := []*ring.Ring{ring.Figure1(), ring.Ring122(), ring.Distinct(6)}
	ks := []int{3, 2, 1}
	for ri, r := range rings {
		p := protoFor(t, "A", ks[ri], r)
		n := r.N()
		// Fingerprints render the string as "str=a.b.c"; rebuild and compare.
		_, err := sim.SyncProbe(r, p, sim.Options{}, func(step int, fps []string) bool {
			for proc := 0; proc < n; proc++ {
				var got []ring.Label
				fp := fps[proc]
				idx := -1
				for i := 0; i+4 <= len(fp); i++ {
					if fp[i:i+4] == "str=" {
						idx = i + 4
						break
					}
				}
				if idx < 0 {
					t.Fatalf("fingerprint without string: %q", fp)
				}
				cur := int64(0)
				has := false
				for i := idx; i <= len(fp); i++ {
					if i == len(fp) || fp[i] == '.' {
						if has {
							got = append(got, ring.Label(cur))
						}
						cur, has = 0, false
						continue
					}
					cur = cur*10 + int64(fp[i]-'0')
					has = true
				}
				want := r.LLabels(proc, len(got))
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("step %d p%d: string %v is not a prefix of LLabels %v", step, proc, got, want)
					}
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestExactWorstCaseFormulas pins the exact (not just bounded) costs on
// distinct-label rings, derived from the algorithms' structure:
//
//   - Ak: the leader's label recurs every n tokens, so the (2k+1)-th copy
//     arrives with token 2kn; with the FINISH lap the total time is
//     (2k+1)n time units exactly.
//   - A*: the k+1 certificate lands at position kn+1 (P = kn) and the
//     length condition needs len ≥ n + kn, reached after kn+n-1 tokens;
//     plus the FINISH lap: (k+2)n - 1 exactly.
//   - KnownN: one collection lap (n-1) plus one announcement lap: 2n - 1
//     exactly, with exactly n² messages.
func TestExactWorstCaseFormulas(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		r := ring.Distinct(n)
		for _, k := range []int{1, 2, 3, 4} {
			pa := protoFor(t, "A", k, r)
			res, err := sim.RunAsync(r, pa, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if want := float64((2*k + 1) * n); res.TimeUnits != want {
				t.Errorf("Ak n=%d k=%d: time %v, exact formula %v", n, k, res.TimeUnits, want)
			}

			ps := protoFor(t, "S", k, r)
			res, err = sim.RunAsync(r, ps, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if want := float64((k+2)*n - 1); res.TimeUnits != want {
				t.Errorf("A* n=%d k=%d: time %v, exact formula %v", n, k, res.TimeUnits, want)
			}
		}
	}
}
