// Package ring models the labeled unidirectional ring networks of Altisen
// et al. (IPPS 2017): n ≥ 2 processes p0 … p(n-1), each holding a label
// that need not be unique (homonyms), where pi receives only from p(i-1)
// and sends only to p(i+1) (indices modulo n).
//
// It provides the ring-network classes of the paper — Kk (multiplicity at
// most k), A (asymmetric: no non-trivial rotational symmetry) and U*
// (at least one unique label) — the true-leader definition based on Lyndon
// words, and deterministic generators for every class.
package ring

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/words"
)

// Label is a process label. Homonym processes may share a label. Per the
// model, comparison (order and equality) is the only operation algorithms
// may perform on labels; all other methods here exist for harness purposes
// (parsing, printing, space accounting).
type Label int64

// Less reports whether l orders strictly before m.
func (l Label) Less(m Label) bool { return l < m }

// String renders the label as a decimal integer.
func (l Label) String() string { return strconv.FormatInt(int64(l), 10) }

// Bits returns the number of bits needed to store the label's value
// (at least 1). Negative labels are not used by the generators but are
// accounted for via their absolute value plus a sign bit.
func (l Label) Bits() int {
	v := int64(l)
	if v < 0 {
		return bits.Len64(uint64(-v)) + 1
	}
	return max(1, bits.Len64(uint64(v)))
}

// Ring is an immutable labeled unidirectional ring of n ≥ 2 processes.
// Process i sends to process (i+1) mod n.
type Ring struct {
	labels []Label
}

// New builds a ring from the clockwise label sequence: labels[i] is the
// label of process pi. It requires n ≥ 2.
func New(labels []Label) (*Ring, error) {
	if len(labels) < 2 {
		return nil, fmt.Errorf("ring: need at least 2 processes, got %d", len(labels))
	}
	cp := make([]Label, len(labels))
	copy(cp, labels)
	return &Ring{labels: cp}, nil
}

// MustNew is New, panicking on error. For tests and literals.
func MustNew(labels ...Label) *Ring {
	r, err := New(labels)
	if err != nil {
		panic(err)
	}
	return r
}

// Parse reads a whitespace- or comma-separated list of integer labels, e.g.
// "1 3 1 3 2 2 1 2" or "1,2,2". Error messages stay bounded: specs come
// from untrusted sources (CLI args, the ringd HTTP API), so a diagnostic
// clips what it echoes instead of reflecting multi-KB inputs.
func Parse(s string) (*Ring, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t' || r == '\n'
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("ring: empty spec %q", clip(s, 64))
	}
	labels := make([]Label, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			// Unwrap to the bare cause (ErrSyntax/ErrRange): NumError's
			// message would echo the full token a second time, unclipped.
			var ne *strconv.NumError
			if errors.As(err, &ne) {
				err = ne.Err
			}
			return nil, fmt.Errorf("ring: bad label %q in spec: %w", clip(f, 32), err)
		}
		labels = append(labels, Label(v))
	}
	return New(labels)
}

// clip bounds a user-controlled string to max bytes for error messages,
// noting the original length when it truncates.
func clip(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return fmt.Sprintf("%s… (%d bytes)", s[:max], len(s))
}

// N returns the number of processes.
func (r *Ring) N() int { return len(r.labels) }

// Label returns the label of process i; i is taken modulo n so callers can
// use pi±1 arithmetic directly.
func (r *Ring) Label(i int) Label {
	n := len(r.labels)
	return r.labels[((i%n)+n)%n]
}

// Labels returns a copy of the clockwise label sequence.
func (r *Ring) Labels() []Label {
	cp := make([]Label, len(r.labels))
	copy(cp, r.labels)
	return cp
}

// LabelsView returns the clockwise label sequence without copying. The
// slice is the ring's own storage: the caller must not modify it and must
// not retain it past the ring's lifetime. For read-only hot paths (e.g.
// cache canonicalization in internal/serve) where Labels' defensive copy
// is the only allocation.
func (r *Ring) LabelsView() []Label { return r.labels }

// LLabels returns the first m elements of LLabels(pi): the labels of
// processes starting at i and continuing counter-clockwise, i.e.
// labels[i], labels[i-1], labels[i-2], … (indices modulo n). m may exceed n,
// in which case the sequence wraps, matching the paper's infinite sequence.
func (r *Ring) LLabels(i, m int) []Label {
	n := len(r.labels)
	out := make([]Label, m)
	for j := 0; j < m; j++ {
		out[j] = r.labels[(((i-j)%n)+n)%n]
	}
	return out
}

// Multiplicity returns mlty[l]: the number of processes whose label is l.
func (r *Ring) Multiplicity(l Label) int {
	c := 0
	for _, x := range r.labels {
		if x == l {
			c++
		}
	}
	return c
}

// Multiplicities returns the full label→multiplicity map.
func (r *Ring) Multiplicities() map[Label]int {
	m := make(map[Label]int)
	for _, x := range r.labels {
		m[x]++
	}
	return m
}

// MaxMultiplicity returns M = max over labels of mlty[l].
func (r *Ring) MaxMultiplicity() int {
	best := 0
	for _, c := range r.Multiplicities() {
		if c > best {
			best = c
		}
	}
	return best
}

// InKk reports membership in the class Kk: no label occurs more than k
// times.
func (r *Ring) InKk(k int) bool { return r.MaxMultiplicity() <= k }

// IsAsymmetric reports membership in the class A: the ring has no
// non-trivial rotational symmetry, i.e. there is no 0 < d < n with
// label(i+d) = label(i) for all i. Equivalently, the smallest period of the
// label sequence that divides n is n itself.
func (r *Ring) IsAsymmetric() bool {
	n := len(r.labels)
	// d is a rotational symmetry iff d is a period of the sequence viewed
	// cyclically, i.e. iff d divides n and d is a period of the doubled
	// sequence restricted appropriately. Checking directly is O(n·divisors).
	for d := 1; d < n; d++ {
		if n%d != 0 {
			continue
		}
		sym := true
		for i := 0; i < n && sym; i++ {
			if r.labels[i] != r.labels[(i+d)%n] {
				sym = false
			}
		}
		if sym {
			return false
		}
	}
	return true
}

// HasUniqueLabel reports membership in the class U*: at least one label has
// multiplicity exactly 1.
func (r *Ring) HasUniqueLabel() bool {
	for _, c := range r.Multiplicities() {
		if c == 1 {
			return true
		}
	}
	return false
}

// LabelBits returns b: the number of bits required to store any label of
// this ring (at least 1). Used by the space-complexity accounting of
// Theorems 2 and 4.
func (r *Ring) LabelBits() int {
	b := 1
	for _, l := range r.labels {
		if lb := l.Bits(); lb > b {
			b = lb
		}
	}
	return b
}

// TrueLeader returns the index of the true leader: the process L such that
// LLabels(L)^n is a Lyndon word (the unique lexicographically-least
// counter-clockwise label sequence). ok is false when the ring is symmetric,
// in which case no process is distinguished and index is -1.
func (r *Ring) TrueLeader() (index int, ok bool) {
	if !r.IsAsymmetric() {
		return -1, false
	}
	n := len(r.labels)
	best := -1
	var bestSeq []Label
	for i := 0; i < n; i++ {
		seq := r.LLabels(i, n)
		if best == -1 || words.Compare(seq, bestSeq) < 0 {
			best, bestSeq = i, seq
		}
	}
	return best, true
}

// Rotate returns the ring relabeled so that old process d becomes new
// process 0. The network is the same; only the harness numbering shifts.
func (r *Ring) Rotate(d int) *Ring {
	n := len(r.labels)
	d = ((d % n) + n) % n
	out := make([]Label, n)
	for i := 0; i < n; i++ {
		out[i] = r.labels[(i+d)%n]
	}
	return &Ring{labels: out}
}

// String renders the clockwise label sequence, e.g. "[1 3 1 3 2 2 1 2]".
func (r *Ring) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, l := range r.labels {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(l.String())
	}
	b.WriteByte(']')
	return b.String()
}
