package ring

import (
	"math/rand"
	"testing"

	"repro/internal/words"
)

// TestLemma5 checks the paper's Lemma 5: for every process p of an
// asymmetric ring and every m ≥ 2n, the smallest repeating prefix of
// LLabels(p)^m has length exactly n. (The implementation relies on the
// slightly stronger m ≥ 2n-1, which Fine–Wilf also gives; both are
// verified, along with the existence of shorter prefixes where the period
// is still ambiguous.)
func TestLemma5(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rings := []*Ring{Figure1(), Ring122(), Distinct(7)}
	for i := 0; i < 20; i++ {
		n := 3 + rng.Intn(12)
		r, err := RandomAsymmetric(rng, n, 3, max(4, n))
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	for _, r := range rings {
		n := r.N()
		for p := 0; p < n; p++ {
			for _, m := range []int{2*n - 1, 2 * n, 2*n + 1, 3 * n, 3*n + n/2} {
				seq := r.LLabels(p, m)
				if got := words.SmallestPeriod(seq); got != n {
					t.Fatalf("Lemma 5 fails on %s: srp(LLabels(p%d)^%d) has length %d, want n=%d",
						r, p, m, got, n)
				}
			}
		}
	}
}

// TestLemma5NeedsTwoLaps exhibits why the 2n-1 threshold matters: there
// are asymmetric rings whose single-lap window has a shorter period, so a
// process stopping after n labels could misjudge the ring size.
func TestLemma5NeedsTwoLaps(t *testing.T) {
	r := MustNew(1, 2, 1, 2, 3) // asymmetric, but one lap from p3 reads 2 1 2 1 …
	found := false
	for p := 0; p < r.N(); p++ {
		for m := 2; m < 2*r.N()-1; m++ {
			if words.SmallestPeriod(r.LLabels(p, m)) < r.N() &&
				words.SmallestPeriod(r.LLabels(p, m)) < m {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("expected some short prefix with a misleading period on", r)
	}
}

// TestLemma6 checks Lemma 6: whenever LLabels(p)^m contains at least 2k+1
// copies of some label (k the ring's max multiplicity bound), the prefix
// fully determines the ring — its srp is exactly the n-window, from which
// n and the whole labeling are read off.
func TestLemma6(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(12)
		k := 1 + rng.Intn(3)
		r, err := RandomAsymmetric(rng, n, k, max(4, n))
		if err != nil {
			t.Fatal(err)
		}
		k = r.MaxMultiplicity() // use the exact multiplicity as the bound
		for p := 0; p < n; p++ {
			// Find the first m at which some label has 2k+1 copies.
			counts := map[Label]int{}
			m := 0
			for m < 10*n {
				m++
				counts[r.LLabels(p, m)[m-1]]++
				if counts[r.LLabels(p, m)[m-1]] == 2*k+1 {
					break
				}
			}
			seq := r.LLabels(p, m)
			if words.MaxCount(seq) < 2*k+1 {
				t.Fatalf("no label reached 2k+1 copies within 10n on %s", r)
			}
			if m <= 2*n {
				t.Fatalf("Lemma 6 precondition argument violated: m=%d ≤ 2n=%d on %s", m, 2*n, r)
			}
			srp := words.SmallestRepeatingPrefix(seq)
			if len(srp) != n {
				t.Fatalf("Lemma 6 fails on %s: srp length %d, want n=%d", r, len(srp), n)
			}
			// The srp must be the counter-clockwise window at p.
			want := r.LLabels(p, n)
			for i := range want {
				if srp[i] != want[i] {
					t.Fatalf("Lemma 6 fails on %s: srp %v != window %v", r, srp, want)
				}
			}
		}
	}
}

// TestTrueLeaderLyndonUniqueness backs the true-leader definition: on an
// asymmetric ring exactly one rotation of the label sequence is a Lyndon
// word.
func TestTrueLeaderLyndonUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(14)
		r, err := RandomAsymmetric(rng, n, 3, max(4, n))
		if err != nil {
			t.Fatal(err)
		}
		lyndons := 0
		for p := 0; p < n; p++ {
			if words.IsLyndon(r.LLabels(p, n)) {
				lyndons++
			}
		}
		if lyndons != 1 {
			t.Fatalf("%s: %d Lyndon rotations, want exactly 1", r, lyndons)
		}
	}
}
