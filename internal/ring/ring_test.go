package ring

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/words"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) must fail")
	}
	if _, err := New([]Label{1}); err == nil {
		t.Error("New with one process must fail")
	}
	r, err := New([]Label{1, 2})
	if err != nil || r.N() != 2 {
		t.Fatalf("New([1 2]) = %v, %v", r, err)
	}
}

func TestNewCopiesInput(t *testing.T) {
	labels := []Label{1, 2, 3}
	r, err := New(labels)
	if err != nil {
		t.Fatal(err)
	}
	labels[0] = 99
	if r.Label(0) != 1 {
		t.Error("New must copy its input slice")
	}
	got := r.Labels()
	got[1] = 99
	if r.Label(1) != 2 {
		t.Error("Labels must return a copy")
	}
	view := r.LabelsView()
	for i, l := range view {
		if l != r.Label(i) {
			t.Errorf("LabelsView[%d] = %v, want %v", i, l, r.Label(i))
		}
	}
	if n := testing.AllocsPerRun(100, func() { _ = r.LabelsView() }); n != 0 {
		t.Errorf("LabelsView allocates %v times per call, want 0", n)
	}
}

func TestParse(t *testing.T) {
	r, err := Parse("1 3 1 3 2 2 1 2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Labels(), Figure1().Labels()) {
		t.Errorf("Parse = %s, want %s", r, Figure1())
	}
	if r2, err := Parse("1,2,2"); err != nil || r2.String() != "[1 2 2]" {
		t.Errorf("Parse comma form = %v, %v", r2, err)
	}
	for _, bad := range []string{"", "1", "1 x 2", "  "} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) must fail", bad)
		}
	}
}

func TestLabelIndexingWraps(t *testing.T) {
	r := MustNew(10, 20, 30)
	cases := map[int]Label{0: 10, 1: 20, 2: 30, 3: 10, -1: 30, -4: 30, 5: 30}
	for i, want := range cases {
		if got := r.Label(i); got != want {
			t.Errorf("Label(%d) = %s, want %s", i, got, want)
		}
	}
}

func TestLLabels(t *testing.T) {
	r := Figure1() // [1 3 1 3 2 2 1 2]
	// LLabels(p0) = p0, p7, p6, p5, … = 1 2 1 2 2 3 1 3, then wraps.
	want := []Label{1, 2, 1, 2, 2, 3, 1, 3, 1, 2}
	if got := r.LLabels(0, 10); !reflect.DeepEqual(got, want) {
		t.Errorf("LLabels(0, 10) = %v, want %v", got, want)
	}
	if got := r.LLabels(2, 3); !reflect.DeepEqual(got, []Label{1, 3, 1}) {
		t.Errorf("LLabels(2, 3) = %v", got)
	}
}

func TestMultiplicity(t *testing.T) {
	r := Figure1()
	if got := r.Multiplicity(1); got != 3 {
		t.Errorf("mlty[1] = %d, want 3", got)
	}
	if got := r.Multiplicity(9); got != 0 {
		t.Errorf("mlty[9] = %d, want 0", got)
	}
	if got := r.MaxMultiplicity(); got != 3 {
		t.Errorf("MaxMultiplicity = %d, want 3", got)
	}
	if !r.InKk(3) || r.InKk(2) {
		t.Error("Figure1 ring is in K3 but not K2")
	}
	m := r.Multiplicities()
	if m[1] != 3 || m[2] != 3 || m[3] != 2 || len(m) != 3 {
		t.Errorf("Multiplicities = %v", m)
	}
}

// bruteAsymmetric checks all shifts d in 1..n-1, not only divisors — the
// raw definition from §II.
func bruteAsymmetric(labels []Label) bool {
	n := len(labels)
	for d := 1; d < n; d++ {
		sym := true
		for i := 0; i < n; i++ {
			if labels[i] != labels[(i+d)%n] {
				sym = false
				break
			}
		}
		if sym {
			return false
		}
	}
	return true
}

func TestIsAsymmetricExhaustive(t *testing.T) {
	for n := 2; n <= 7; n++ {
		AllLabelings(n, 3, func(r *Ring) bool {
			if got, want := r.IsAsymmetric(), bruteAsymmetric(r.labels); got != want {
				t.Fatalf("IsAsymmetric(%s) = %t, want %t", r, got, want)
			}
			return true
		})
	}
}

func TestHasUniqueLabel(t *testing.T) {
	if Figure1().HasUniqueLabel() {
		t.Error("Figure1 ring has no unique label (multiplicities 3,3,2)")
	}
	if !Ring122().HasUniqueLabel() {
		t.Error("ring [1 2 2] has unique label 1")
	}
	if !Distinct(5).HasUniqueLabel() {
		t.Error("distinct ring is in U*")
	}
}

func TestLabelBits(t *testing.T) {
	cases := []struct {
		labels []Label
		want   int
	}{
		{[]Label{0, 1}, 1},
		{[]Label{1, 2}, 2},
		{[]Label{1, 7}, 3},
		{[]Label{1, 255}, 8},
		{[]Label{-2, 1}, 3}, // |−2| needs 2 bits + sign
	}
	for _, c := range cases {
		r := MustNew(c.labels...)
		if got := r.LabelBits(); got != c.want {
			t.Errorf("LabelBits(%s) = %d, want %d", r, got, c.want)
		}
	}
}

// bruteTrueLeader finds the index whose n-length counter-clockwise label
// sequence is lexicographically least, then checks it is a Lyndon word.
func bruteTrueLeader(r *Ring) (int, bool) {
	n := r.N()
	best := 0
	for i := 1; i < n; i++ {
		if words.Compare(r.LLabels(i, n), r.LLabels(best, n)) < 0 {
			best = i
		}
	}
	if !words.IsLyndon(r.LLabels(best, n)) {
		return -1, false
	}
	return best, true
}

func TestTrueLeaderExhaustive(t *testing.T) {
	for n := 2; n <= 7; n++ {
		AllLabelings(n, 3, func(rr *Ring) bool {
			r := MustNew(rr.Labels()...) // AllLabelings reuses its buffer
			got, ok := r.TrueLeader()
			if !r.IsAsymmetric() {
				if ok {
					t.Fatalf("TrueLeader(%s) = %d on symmetric ring", r, got)
				}
				return true
			}
			want, wok := bruteTrueLeader(r)
			if !wok {
				t.Fatalf("asymmetric ring %s has no Lyndon rotation", r)
			}
			if !ok || got != want {
				t.Fatalf("TrueLeader(%s) = %d/%t, want %d", r, got, ok, want)
			}
			// The defining property: LLabels(L)^n is a Lyndon word and no
			// other process's sequence is.
			for i := 0; i < r.N(); i++ {
				isL := words.IsLyndon(r.LLabels(i, r.N()))
				if isL != (i == got) {
					t.Fatalf("ring %s: Lyndon at %d = %t, leader = %d", r, i, isL, got)
				}
			}
			return true
		})
	}
}

func TestTrueLeaderKnownRings(t *testing.T) {
	if l, ok := Figure1().TrueLeader(); !ok || l != 0 {
		t.Errorf("Figure1 true leader = %d/%t, want p0", l, ok)
	}
	if l, ok := Ring122().TrueLeader(); !ok || l != 0 {
		t.Errorf("[1 2 2] true leader = %d/%t, want p0", l, ok)
	}
	if l, ok := MustNew(3, 1, 2).TrueLeader(); !ok || l != 1 {
		t.Errorf("[3 1 2] true leader = %d/%t, want p1", l, ok)
	}
}

func TestRotate(t *testing.T) {
	r := Figure1()
	r2 := r.Rotate(3)
	if r2.String() != "[3 2 2 1 2 1 3 1]" {
		t.Errorf("Rotate(3) = %s", r2)
	}
	// Rotation renumbers but preserves the network: the true leader's label
	// sequence is unchanged.
	l1, _ := r.TrueLeader()
	l2, _ := r2.TrueLeader()
	if !reflect.DeepEqual(r.LLabels(l1, r.N()), r2.LLabels(l2, r2.N())) {
		t.Error("rotation changed the true leader's label sequence")
	}
	if r3 := r.Rotate(-8); r3.String() != r.String() {
		t.Errorf("Rotate(-n) = %s, want identity", r3)
	}
}

func TestStringer(t *testing.T) {
	if got := Ring122().String(); got != "[1 2 2]" {
		t.Errorf("String = %q", got)
	}
	if !strings.Contains(Label(42).String(), "42") {
		t.Error("Label String")
	}
}

func TestDistinct(t *testing.T) {
	r := Distinct(6)
	if r.N() != 6 || r.MaxMultiplicity() != 1 || !r.IsAsymmetric() || !r.HasUniqueLabel() {
		t.Errorf("Distinct(6) = %s: wrong class", r)
	}
	if l, ok := r.TrueLeader(); !ok || l != 0 {
		t.Errorf("Distinct true leader = %d, want 0 (min label first)", l)
	}
}

func TestDistinctShuffled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := DistinctShuffled(10, rng)
	if r.MaxMultiplicity() != 1 || r.N() != 10 {
		t.Errorf("DistinctShuffled = %s", r)
	}
	m := r.Multiplicities()
	for v := 1; v <= 10; v++ {
		if m[Label(v)] != 1 {
			t.Errorf("label %d multiplicity %d", v, m[Label(v)])
		}
	}
}

func TestBlockMultiplicity(t *testing.T) {
	r, err := BlockMultiplicity(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 12 || r.MaxMultiplicity() != 3 || !r.IsAsymmetric() {
		t.Errorf("BlockMultiplicity(4,3) = %s", r)
	}
	for _, c := range r.Multiplicities() {
		if c != 3 {
			t.Errorf("expected every multiplicity 3, got %v", r.Multiplicities())
		}
	}
	if _, err := BlockMultiplicity(1, 3); err == nil {
		t.Error("q=1 must fail (symmetric)")
	}
	if _, err := BlockMultiplicity(3, 0); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestOneHeavyLabel(t *testing.T) {
	r, err := OneHeavyLabel(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 10 || r.MaxMultiplicity() != 4 || !r.IsAsymmetric() || !r.HasUniqueLabel() {
		t.Errorf("OneHeavyLabel(10,4) = %s", r)
	}
	if _, err := OneHeavyLabel(4, 4); err == nil {
		t.Error("n = k must fail")
	}
	if _, err := OneHeavyLabel(4, 0); err == nil {
		t.Error("k = 0 must fail")
	}
}

func TestRandomAsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		r, err := RandomAsymmetric(rng, 12, 3, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !r.IsAsymmetric() || !r.InKk(3) || r.N() != 12 {
			t.Fatalf("RandomAsymmetric produced %s outside A ∩ K3", r)
		}
	}
	if _, err := RandomAsymmetric(rng, 10, 2, 4); err == nil {
		t.Error("alpha·k < n must fail")
	}
}

func TestRandomUniqueLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		r, err := RandomUniqueLabel(rng, 10, 3, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !r.HasUniqueLabel() || !r.IsAsymmetric() || !r.InKk(3) {
			t.Fatalf("RandomUniqueLabel produced %s outside U* ∩ K3", r)
		}
	}
}

func TestAllLabelings(t *testing.T) {
	count := 0
	AllLabelings(3, 2, func(r *Ring) bool {
		count++
		return true
	})
	if count != 8 {
		t.Errorf("AllLabelings(3,2) visited %d labelings, want 8", count)
	}
	// Early stop.
	count = 0
	AllLabelings(3, 2, func(r *Ring) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
}

func TestAllAsymmetricNecklaces(t *testing.T) {
	for n := 2; n <= 7; n++ {
		// Count asymmetric labelings directly…
		asym := 0
		AllLabelings(n, 3, func(r *Ring) bool {
			if r.IsAsymmetric() {
				asym++
			}
			return true
		})
		// …necklace representatives must be exactly 1/n of them (all n
		// rotations of an asymmetric labeling are distinct).
		reps := 0
		AllAsymmetricNecklaces(n, 3, func(r *Ring) bool {
			reps++
			if !r.IsAsymmetric() {
				t.Fatalf("representative %s is symmetric", r)
			}
			// Representative = least among its rotations.
			for d := 1; d < n; d++ {
				rot := r.Rotate(d)
				if rot.String() < r.String() && len(rot.String()) == len(r.String()) {
					t.Fatalf("%s is not the least rotation (%s is smaller)", r, rot)
				}
			}
			return true
		})
		if reps*n != asym {
			t.Fatalf("n=%d: %d representatives × n != %d asymmetric labelings", n, reps, asym)
		}
	}
}

func TestPaperExamples(t *testing.T) {
	if got := Figure1().String(); got != "[1 3 1 3 2 2 1 2]" {
		t.Errorf("Figure1 = %s", got)
	}
	if got := Ring122().String(); got != "[1 2 2]" {
		t.Errorf("Ring122 = %s", got)
	}
	if !Figure1().InKk(3) || !Figure1().IsAsymmetric() {
		t.Error("Figure1 must be in A ∩ K3")
	}
	if !Ring122().InKk(2) || !Ring122().IsAsymmetric() || !Ring122().HasUniqueLabel() {
		t.Error("[1 2 2] must be in U* ∩ K2")
	}
}
