package ring

import (
	"strings"
	"testing"
)

// FuzzParse hammers the spec parser — the one entry point that takes
// fully untrusted input (CLI args, the ringd HTTP API). Invariants: no
// panic; every error message stays bounded (no echoing multi-KB
// inputs); every accepted ring round-trips through its own label
// sequence.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1 3 1 3 2 2 1 2",
		"1,2,2",
		"",
		"   ,,,\t\n",
		"x",
		"1 x 2",
		"-5 7",
		"9223372036854775807 1",
		"99999999999999999999 1", // overflows int64
		"1  2\t3\n4,5",
		strings.Repeat("1 ", 300) + "2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			if n := len(err.Error()); n > 256 {
				t.Fatalf("error message is %d bytes — it echoes the input: %.80s…", n, err.Error())
			}
			return
		}
		if r.N() < 2 {
			t.Fatalf("accepted a ring of %d process(es)", r.N())
		}
		// Round-trip: re-joining the parsed labels must parse back to the
		// identical ring.
		labels := r.Labels()
		parts := make([]string, len(labels))
		for i, l := range labels {
			parts[i] = l.String()
		}
		r2, err := Parse(strings.Join(parts, " "))
		if err != nil {
			t.Fatalf("round-trip of %v failed: %v", labels, err)
		}
		if r2.N() != r.N() {
			t.Fatalf("round-trip changed n: %d != %d", r2.N(), r.N())
		}
		for i := range labels {
			if r2.Label(i) != r.Label(i) {
				t.Fatalf("round-trip changed label %d: %s != %s", i, r2.Label(i), r.Label(i))
			}
		}
	})
}

// TestParseErrorBounded pins the clipping behavior deterministically
// (the fuzz invariant, minus the fuzzer).
func TestParseErrorBounded(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"huge separator-only spec", strings.Repeat(", ", 8192)},
		{"huge single bad token", "1 2 " + strings.Repeat("z", 8192)},
		{"huge bad numeric token", strings.Repeat("9", 8192)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.spec)
			if err == nil {
				t.Fatal("expected an error")
			}
			msg := err.Error()
			if len(msg) > 256 {
				t.Errorf("error is %d bytes; must stay bounded: %.80s…", len(msg), msg)
			}
			if !strings.Contains(msg, "bytes)") {
				t.Errorf("clipped error should note the original length: %s", msg)
			}
		})
	}
	// Short bad tokens are still echoed verbatim — the diagnostic stays
	// actionable for a human-scale typo.
	_, err := Parse("1 x 2")
	if err == nil || !strings.Contains(err.Error(), `"x"`) {
		t.Errorf("short token not echoed: %v", err)
	}
}
