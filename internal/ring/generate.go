package ring

import (
	"fmt"
	"math/rand"
)

// Figure1 returns the 8-process ring of the paper's Figure 1, clockwise
// labels 1 3 1 3 2 2 1 2, on which Bk with k = 3 elects p0.
func Figure1() *Ring { return MustNew(1, 3, 1, 3, 2, 2, 1, 2) }

// Ring122 returns the 3-process ring with labels 1, 2, 2 from the paper's
// introduction: leader election is solvable on it within A ∩ K2, although
// not in the models of Dobrev–Pelc [4] or Delporte et al. [9].
func Ring122() *Ring { return MustNew(1, 2, 2) }

// Distinct returns the n-process ring with labels 1 … n in clockwise order:
// a member of K1 ⊆ U* ∩ Kk for every k, and the worst case of Theorem 2
// (max multiplicity M = 1).
func Distinct(n int) *Ring {
	labels := make([]Label, n)
	for i := range labels {
		labels[i] = Label(i + 1)
	}
	return MustNew(labels...)
}

// DistinctShuffled returns an n-process ring with labels 1 … n in an order
// drawn from rng. Still K1, but without the sorted-structure artifact.
func DistinctShuffled(n int, rng *rand.Rand) *Ring {
	labels := make([]Label, n)
	for i := range labels {
		labels[i] = Label(i + 1)
	}
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return MustNew(labels...)
}

// BlockMultiplicity returns an asymmetric ring of n = q·k processes where
// every label has multiplicity exactly k, arranged as blocks
// 1^k 2^k … q^k. This is the best case of Theorem 2 (M = k). It requires
// q ≥ 2 (with q = 1 all labels coincide and the ring is symmetric).
func BlockMultiplicity(q, k int) (*Ring, error) {
	if q < 2 {
		return nil, fmt.Errorf("ring: BlockMultiplicity needs q >= 2 distinct labels, got %d", q)
	}
	if k < 1 {
		return nil, fmt.Errorf("ring: BlockMultiplicity needs k >= 1, got %d", k)
	}
	labels := make([]Label, 0, q*k)
	for v := 1; v <= q; v++ {
		for j := 0; j < k; j++ {
			labels = append(labels, Label(v))
		}
	}
	return New(labels)
}

// OneHeavyLabel returns an asymmetric n-process ring whose maximum
// multiplicity is exactly k: k copies of label 0 followed by distinct labels
// 1 … n-k. Requires n > k ≥ 1.
func OneHeavyLabel(n, k int) (*Ring, error) {
	if k < 1 || n <= k {
		return nil, fmt.Errorf("ring: OneHeavyLabel needs n > k >= 1, got n=%d k=%d", n, k)
	}
	labels := make([]Label, 0, n)
	for j := 0; j < k; j++ {
		labels = append(labels, 0)
	}
	for v := 1; v <= n-k; v++ {
		labels = append(labels, Label(v))
	}
	return New(labels)
}

// RandomAsymmetric draws a labeling of n processes over the alphabet
// {1 … alpha} from A ∩ Kk: it samples each position uniformly among the
// labels still below the multiplicity cap k, shuffles, and rejects the
// (rare) symmetric outcomes. alpha·k must be at least n for Kk to be
// satisfiable.
func RandomAsymmetric(rng *rand.Rand, n, k, alpha int) (*Ring, error) {
	if alpha*k < n {
		return nil, fmt.Errorf("ring: alphabet %d with multiplicity %d cannot label %d processes", alpha, k, n)
	}
	const maxTries = 10000
	for try := 0; try < maxTries; try++ {
		counts := make([]int, alpha) // counts[v-1] = occurrences of label v
		labels := make([]Label, n)
		for i := range labels {
			// Uniform among labels below the cap.
			v := rng.Intn(alpha) + 1
			for counts[v-1] >= k {
				v = v%alpha + 1
			}
			counts[v-1]++
			labels[i] = Label(v)
		}
		rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
		r, err := New(labels)
		if err != nil {
			return nil, err
		}
		if r.InKk(k) && r.IsAsymmetric() {
			return r, nil
		}
	}
	return nil, fmt.Errorf("ring: no asymmetric K%d labeling of n=%d over alphabet %d after %d tries", k, n, alpha, maxTries)
}

// RandomUniqueLabel draws rings from U* ∩ Kk: asymmetric, at most
// multiplicity k, and with at least one unique label.
func RandomUniqueLabel(rng *rand.Rand, n, k, alpha int) (*Ring, error) {
	const maxTries = 10000
	for try := 0; try < maxTries; try++ {
		r, err := RandomAsymmetric(rng, n, k, alpha)
		if err != nil {
			return nil, err
		}
		if r.HasUniqueLabel() {
			return r, nil
		}
	}
	return nil, fmt.Errorf("ring: no U* ∩ K%d labeling of n=%d over alphabet %d after %d tries", k, n, alpha, maxTries)
}

// AllAsymmetricNecklaces calls fn with one representative per rotation
// class of the asymmetric labelings of n processes over {1 … alpha}: the
// representative is the labeling that is lexicographically least among its
// rotations. Together with rotation equivariance of the algorithms this
// covers every asymmetric ring while doing 1/n of AllLabelings' work. The
// *Ring passed to fn is reused across calls — fn must not retain it.
// Iteration stops early if fn returns false.
func AllAsymmetricNecklaces(n, alpha int, fn func(*Ring) bool) {
	AllLabelings(n, alpha, func(r *Ring) bool {
		if !r.IsAsymmetric() {
			return true
		}
		// Least rotation check: representative iff no rotation is smaller.
		for d := 1; d < n; d++ {
			smaller := false
			for i := 0; i < n; i++ {
				a, b := r.labels[(i+d)%n], r.labels[i]
				if a != b {
					smaller = a < b
					break
				}
			}
			if smaller {
				return true // not the representative
			}
		}
		return fn(r)
	})
}

// AllLabelings calls fn with every labeling of n processes over the
// alphabet {1 … alpha} (alpha^n rings; use only for small n). The *Ring
// passed to fn is reused across calls — fn must not retain it. Iteration
// stops early if fn returns false.
func AllLabelings(n, alpha int, fn func(*Ring) bool) {
	labels := make([]Label, n)
	r := &Ring{labels: labels}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return fn(r)
		}
		for v := 1; v <= alpha; v++ {
			labels[i] = Label(v)
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}
