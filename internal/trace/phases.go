package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ring"
)

// PhaseRow is the situation of one process in one phase of a Bk execution:
// the value of p.guest during that phase and whether the process was still
// active when the phase began — exactly the information Figure 1 renders
// (gray guest labels; white/black coloring).
type PhaseRow struct {
	Guest   ring.Label
	Active  bool
	Entered bool // the process reached this phase at all
}

// PhaseTable is the per-phase, per-process reconstruction of a Bk
// execution: Rows[i-1][p] describes process p in phase i.
type PhaseTable struct {
	N    int
	Rows [][]PhaseRow
}

// BuildPhaseTable reconstructs the phase table from a recorded event
// stream containing OpPhase events (as emitted by the engines for
// PhaseReporter machines).
func BuildPhaseTable(events []Event, n int) *PhaseTable {
	t := &PhaseTable{N: n}
	for _, e := range events {
		if e.Op != OpPhase {
			continue
		}
		for len(t.Rows) < e.Phase {
			t.Rows = append(t.Rows, make([]PhaseRow, n))
		}
		t.Rows[e.Phase-1][e.Proc] = PhaseRow{Guest: e.Guest, Active: e.Active, Entered: true}
	}
	return t
}

// Phases returns the number of phases any process entered.
func (t *PhaseTable) Phases() int { return len(t.Rows) }

// ActiveSet returns the indices of processes active at the beginning of
// phase i (1-based), sorted.
func (t *PhaseTable) ActiveSet(i int) []int {
	var out []int
	for p, row := range t.Rows[i-1] {
		if row.Entered && row.Active {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}

// Guests returns the guest value of every process in phase i (1-based);
// ok[p] is false for processes that never entered the phase.
func (t *PhaseTable) Guests(i int) (guests []ring.Label, ok []bool) {
	guests = make([]ring.Label, t.N)
	ok = make([]bool, t.N)
	for p, row := range t.Rows[i-1] {
		guests[p] = row.Guest
		ok[p] = row.Entered
	}
	return guests, ok
}

// Render prints phases first…last of the table in the layout of Figure 1:
// one line per process with its label, then per-phase guest and
// active/passive marker.
func (t *PhaseTable) Render(r *ring.Ring, first, last int) string {
	var b strings.Builder
	last = min(last, t.Phases())
	fmt.Fprintf(&b, "%-5s %-6s", "proc", "label")
	for i := first; i <= last; i++ {
		fmt.Fprintf(&b, " | phase %-2d", i)
	}
	b.WriteByte('\n')
	for p := 0; p < t.N; p++ {
		fmt.Fprintf(&b, "p%-4d %-6s", p, r.Label(p))
		for i := first; i <= last; i++ {
			row := t.Rows[i-1][p]
			cell := "-"
			if row.Entered {
				mark := "×" // passive (black in the figure)
				if row.Active {
					mark = "●" // active (white in the figure)
				}
				cell = fmt.Sprintf("%s g=%s", mark, row.Guest)
			}
			fmt.Fprintf(&b, " | %-8s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
