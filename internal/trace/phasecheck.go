package trace

import "fmt"

// CheckPhaseAlignment verifies Observation 1 of the paper (Lemmas 14–16)
// on a recorded Bk execution: every message sent in phase i is received in
// phase i, and all sends are eventually received.
//
// Send phases are attributed per the statement order of Table 2 — action
// B8 emits its relayed ⟨PHASE_SHIFT⟩ before adopting the new guest, so
// that send belongs to the phase being left, while B6/B9 send after
// entering the new phase. Receive phases are the receiver's phase before
// processing the message.
//
// The events must come from a stream where each action's sends directly
// follow the action (the event-driven simulator and the traced goroutine
// engine both guarantee this; the synchronous engine batches sends at the
// end of a step and is not suitable).
func CheckPhaseAlignment(events []Event, n int) error {
	phase := make([]int, n)  // current phase per process (0 before B1)
	preAct := make([]int, n) // phase before the process's latest action
	lastAction := make([]string, n)
	linkQ := make([][]int, n) // FIFO of send phases per link (indexed by sender)

	for _, e := range events {
		switch e.Op {
		case OpInit, OpDeliver:
			preAct[e.Proc] = phase[e.Proc]
			lastAction[e.Proc] = e.Action
			if e.Op == OpDeliver {
				from := (e.Proc - 1 + n) % n
				if len(linkQ[from]) == 0 {
					return fmt.Errorf("trace: delivery at p%d with no recorded send", e.Proc)
				}
				sent := linkQ[from][0]
				linkQ[from] = linkQ[from][1:]
				if sent != preAct[e.Proc] {
					return fmt.Errorf("trace: Observation 1 violated: %s sent in phase %d, received by p%d in phase %d (action %s)",
						e.Msg, sent, e.Proc, preAct[e.Proc], e.Action)
				}
			}
		case OpPhase:
			phase[e.Proc] = e.Phase
		case OpSend:
			sp := phase[e.Proc]
			if lastAction[e.Proc] == "B8" {
				sp = preAct[e.Proc]
			}
			linkQ[e.Proc] = append(linkQ[e.Proc], sp)
		}
	}
	for i, q := range linkQ {
		if len(q) != 0 {
			return fmt.Errorf("trace: link %d ends with %d unreceived sends", i, len(q))
		}
	}
	return nil
}
