package trace

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ring"
)

// SVGOptions tunes RenderSVG.
type SVGOptions struct {
	// Phases selects which phases to draw, in order (defaults to 1..4, the
	// panels of the paper's Figure 1).
	Phases []int
	// Radius is the ring radius per panel in pixels (default 90).
	Radius int
}

// RenderSVG draws a Bk phase table in the visual language of the paper's
// Figure 1: one panel per phase, processes as circles on a ring — white
// while active, black once passive — each labeled with its process id and
// label, and its current guest shown in gray beside it. Pure SVG 1.1,
// no external assets.
func (t *PhaseTable) RenderSVG(r *ring.Ring, opt SVGOptions) string {
	phases := opt.Phases
	if len(phases) == 0 {
		for i := 1; i <= min(4, t.Phases()); i++ {
			phases = append(phases, i)
		}
	}
	radius := opt.Radius
	if radius <= 0 {
		radius = 90
	}
	panel := 2*radius + 110 // margin for guest labels and captions
	width := panel * len(phases)
	height := panel + 30

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`  <style>text{font-family:serif;font-size:13px} .cap{font-size:15px} .guest{fill:#888} .lbl{font-weight:bold}</style>` + "\n")

	n := t.N
	for pi, phase := range phases {
		cx := float64(pi*panel + panel/2)
		cy := float64(panel / 2)
		fmt.Fprintf(&b, `  <g id="phase%d">`+"\n", phase)
		// Ring outline with direction arrows between consecutive processes.
		fmt.Fprintf(&b, `    <circle cx="%.1f" cy="%.1f" r="%d" fill="none" stroke="#ccc"/>`+"\n", cx, cy, radius)
		for p := 0; p < n; p++ {
			// p0 at the top, clockwise.
			ang := -math.Pi/2 + 2*math.Pi*float64(p)/float64(n)
			x := cx + float64(radius)*math.Cos(ang)
			y := cy + float64(radius)*math.Sin(ang)
			row := PhaseRow{}
			if phase <= t.Phases() {
				row = t.Rows[phase-1][p]
			}
			fill := "white"
			text := "black"
			if row.Entered && !row.Active {
				fill, text = "black", "white"
			}
			fmt.Fprintf(&b, `    <circle cx="%.1f" cy="%.1f" r="16" fill="%s" stroke="black"/>`+"\n", x, y, fill)
			fmt.Fprintf(&b, `    <text class="lbl" x="%.1f" y="%.1f" text-anchor="middle" fill="%s">%s</text>`+"\n",
				x, y+4, text, r.Label(p))
			// Process name outside the ring.
			nx := cx + (float64(radius)+34)*math.Cos(ang)
			ny := cy + (float64(radius)+34)*math.Sin(ang)
			fmt.Fprintf(&b, `    <text x="%.1f" y="%.1f" text-anchor="middle">p%d</text>`+"\n", nx, ny+4, p)
			// Guest label in gray, offset inward, as in the figure.
			if row.Entered {
				gx := cx + (float64(radius)-32)*math.Cos(ang)
				gy := cy + (float64(radius)-32)*math.Sin(ang)
				fmt.Fprintf(&b, `    <text class="guest" x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
					gx, gy+4, row.Guest)
			}
		}
		caption := fmt.Sprintf("(%c) phase %d", 'a'+pi, phase)
		fmt.Fprintf(&b, `    <text class="cap" x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			cx, panel+18, caption)
		b.WriteString("  </g>\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}
