package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func sampleEvents() []Event {
	return []Event{
		{Op: OpInit, Step: 1, Proc: 0, Action: "B1", State: "COMPUTE"},
		{Op: OpSend, Step: 1, Proc: 0, Msg: core.Token(3)},
		{Op: OpDeliver, Step: 2, Time: 1, Proc: 1, Action: "B2", Msg: core.Token(3), State: "COMPUTE"},
		{Op: OpPhase, Step: 2, Proc: 1, Phase: 2, Guest: 3, Active: true},
		{Op: OpHalt, Step: 3, Proc: 1, State: "HALT"},
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	events := sampleEvents()
	data, err := Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(events, back); d != "" {
		t.Fatalf("round trip diverged: %s", d)
	}
}

func TestDiffDetectsChanges(t *testing.T) {
	events := sampleEvents()
	if d := Diff(events, events); d != "" {
		t.Errorf("identical traces diff: %s", d)
	}
	changed := sampleEvents()
	changed[2].Action = "B4"
	d := Diff(events, changed)
	if !strings.Contains(d, "event 2 diverges") || !strings.Contains(d, "B4") {
		t.Errorf("diff = %q", d)
	}
	if d := Diff(events, events[:3]); !strings.Contains(d, "length diverges") {
		t.Errorf("length diff = %q", d)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Error("garbage must fail")
	}
}
