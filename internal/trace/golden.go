package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Golden traces: a recorded event stream serialized to JSON, used as a
// regression oracle. Because FIFO unidirectional executions are
// outcome-deterministic and the engines themselves are deterministic for a
// fixed scheduler and seed, a re-run must reproduce a golden trace
// event-for-event; any divergence pinpoints the first behavioral change.

// Marshal serializes events as indented JSON.
func Marshal(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(events); err != nil {
		return nil, fmt.Errorf("trace: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a golden trace produced by Marshal.
func Unmarshal(data []byte) ([]Event, error) {
	var events []Event
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("trace: unmarshal: %w", err)
	}
	return events, nil
}

// Diff compares a fresh event stream against a golden one and returns a
// description of the first divergence, or "" when they are identical.
func Diff(golden, fresh []Event) string {
	n := min(len(golden), len(fresh))
	for i := 0; i < n; i++ {
		if golden[i] != fresh[i] {
			return fmt.Sprintf("event %d diverges:\n  golden: %s\n  fresh:  %s", i, describe(golden[i]), describe(fresh[i]))
		}
	}
	if len(golden) != len(fresh) {
		return fmt.Sprintf("length diverges: golden has %d events, fresh has %d", len(golden), len(fresh))
	}
	return ""
}

// describe renders an event for diff messages.
func describe(e Event) string {
	return fmt.Sprintf("{%s step=%d t=%.3f p%d action=%q msg=%s bits=%d state=%q phase=%d guest=%s active=%t}",
		e.Op, e.Step, e.Time, e.Proc, e.Action, e.Msg, e.Bits, e.State, e.Phase, e.Guest, e.Active)
}
