package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
)

func TestOpString(t *testing.T) {
	names := map[Op]string{OpInit: "init", OpDeliver: "deliver", OpSend: "send", OpPhase: "phase", OpHalt: "halt"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("Op %d = %q, want %q", op, op.String(), want)
		}
	}
	if Op(200).String() != "op?" {
		t.Error("unknown op must render op?")
	}
}

func TestMemAndMulti(t *testing.T) {
	var a, b Mem
	m := Multi{&a, &b}
	m.Record(Event{Op: OpInit, Proc: 1})
	m.Record(Event{Op: OpSend, Proc: 2})
	if len(a.Events) != 2 || len(b.Events) != 2 {
		t.Errorf("Multi fan-out: %d, %d events", len(a.Events), len(b.Events))
	}
	Nop{}.Record(Event{}) // must not panic
}

func TestActionCount(t *testing.T) {
	c := ActionCount{}
	c.Record(Event{Op: OpInit, Action: "B1"})
	c.Record(Event{Op: OpDeliver, Action: "B7"})
	c.Record(Event{Op: OpDeliver, Action: "B7"})
	c.Record(Event{Op: OpSend, Action: "ignored"}) // sends are not actions
	c.Record(Event{Op: OpDeliver})                 // empty action ignored
	if c["B1"] != 1 || c["B7"] != 2 || len(c) != 2 {
		t.Errorf("ActionCount = %v", c)
	}
}

func TestTransitions(t *testing.T) {
	events := []Event{
		{Op: OpInit, Proc: 0, Action: "B1", State: "COMPUTE"},
		{Op: OpInit, Proc: 1, Action: "B1", State: "COMPUTE"},
		{Op: OpDeliver, Proc: 0, Action: "B4", State: "PASSIVE"},
		{Op: OpDeliver, Proc: 0, Action: "B7", State: "PASSIVE"},
		{Op: OpDeliver, Proc: 1, Action: "B4", State: "PASSIVE"}, // duplicate edge
		{Op: OpSend, Proc: 0, State: "IGNORED"},
	}
	got := Transitions(events)
	want := []Transition{
		{"COMPUTE", "B4", "PASSIVE"},
		{"INIT", "B1", "COMPUTE"},
		{"PASSIVE", "B7", "PASSIVE"},
	}
	if len(got) != len(want) {
		t.Fatalf("Transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Transitions[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCheckAgainstFigure2(t *testing.T) {
	if bad := CheckAgainstFigure2(Figure2Edges); bad != nil {
		t.Errorf("figure edges flagged: %v", bad)
	}
	rogue := []Transition{{From: "WIN", Action: "B7", To: "PASSIVE"}}
	if bad := CheckAgainstFigure2(rogue); len(bad) != 1 {
		t.Errorf("rogue transition not flagged: %v", bad)
	}
}

func TestDOT(t *testing.T) {
	out := DOT("Bk", Figure2Edges)
	for _, frag := range []string{"digraph Bk", "INIT -> COMPUTE", "label=\"B1\"", "COMPUTE -> COMPUTE [label=\"B2, B3\"]", "WIN -> HALT"} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, out)
		}
	}
}

func TestPhaseTable(t *testing.T) {
	events := []Event{
		{Op: OpPhase, Proc: 0, Phase: 1, Guest: 5, Active: true},
		{Op: OpPhase, Proc: 1, Phase: 1, Guest: 7, Active: true},
		{Op: OpPhase, Proc: 0, Phase: 2, Guest: 7, Active: true},
		{Op: OpPhase, Proc: 1, Phase: 2, Guest: 5, Active: false},
		{Op: OpDeliver, Proc: 0}, // non-phase events ignored
	}
	table := BuildPhaseTable(events, 2)
	if table.Phases() != 2 {
		t.Fatalf("Phases = %d, want 2", table.Phases())
	}
	if got := table.ActiveSet(1); len(got) != 2 {
		t.Errorf("ActiveSet(1) = %v", got)
	}
	if got := table.ActiveSet(2); len(got) != 1 || got[0] != 0 {
		t.Errorf("ActiveSet(2) = %v", got)
	}
	guests, ok := table.Guests(2)
	if !ok[0] || !ok[1] || guests[0] != 7 || guests[1] != 5 {
		t.Errorf("Guests(2) = %v, %v", guests, ok)
	}
	r := ring.MustNew(5, 7)
	rendered := table.Render(r, 1, 2)
	for _, frag := range []string{"p0", "phase 1", "g=7", "×"} {
		if !strings.Contains(rendered, frag) {
			t.Errorf("Render missing %q:\n%s", frag, rendered)
		}
	}
}

func TestPhaseTableSkippedPhases(t *testing.T) {
	// A process can jump several phases in one action burst; the builder
	// must allocate the intermediate rows.
	events := []Event{{Op: OpPhase, Proc: 0, Phase: 3, Guest: 1, Active: true}}
	table := BuildPhaseTable(events, 1)
	if table.Phases() != 3 {
		t.Fatalf("Phases = %d, want 3", table.Phases())
	}
	if _, ok := table.Guests(1); ok[0] {
		t.Error("phase 1 must be marked not-entered")
	}
}

var _ = core.KindToken // the trace package's Event embeds core.Message
