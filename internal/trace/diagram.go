package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Transition is one observed control-flow edge: a process in state From
// fired Action and ended in state To.
type Transition struct {
	From, Action, To string
}

// String renders "FROM --action--> TO".
func (t Transition) String() string {
	return fmt.Sprintf("%s --%s--> %s", t.From, t.Action, t.To)
}

// Transitions extracts the set of distinct state transitions from a
// recorded event stream. The engines record each machine's StateName after
// every action; the pre-state is reconstructed per process (initial state
// "INIT").
func Transitions(events []Event) []Transition {
	last := map[int]string{}
	seen := map[Transition]bool{}
	var out []Transition
	for _, e := range events {
		if e.Op != OpInit && e.Op != OpDeliver {
			continue
		}
		from, ok := last[e.Proc]
		if !ok {
			from = "INIT"
		}
		tr := Transition{From: from, Action: e.Action, To: e.State}
		if !seen[tr] {
			seen[tr] = true
			out = append(out, tr)
		}
		last[e.Proc] = e.State
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Action != b.Action {
			return a.Action < b.Action
		}
		return a.To < b.To
	})
	return out
}

// Figure2Edges is the state diagram of Bk exactly as drawn in Figure 2:
// every edge any execution of Bk may take, labeled by action.
var Figure2Edges = []Transition{
	{From: "INIT", Action: "B1", To: "COMPUTE"},
	{From: "COMPUTE", Action: "B2", To: "COMPUTE"},
	{From: "COMPUTE", Action: "B3", To: "COMPUTE"},
	{From: "COMPUTE", Action: "B4", To: "PASSIVE"},
	{From: "COMPUTE", Action: "B5", To: "SHIFT"},
	{From: "SHIFT", Action: "B6", To: "COMPUTE"},
	{From: "SHIFT", Action: "B9", To: "WIN"},
	{From: "PASSIVE", Action: "B7", To: "PASSIVE"},
	{From: "PASSIVE", Action: "B8", To: "PASSIVE"},
	{From: "PASSIVE", Action: "B10", To: "HALT"},
	{From: "WIN", Action: "B11", To: "HALT"},
}

// CheckAgainstFigure2 verifies that every observed transition is an edge of
// Figure 2, returning the offending transitions (nil when conformant).
func CheckAgainstFigure2(observed []Transition) []Transition {
	allowed := map[Transition]bool{}
	for _, e := range Figure2Edges {
		allowed[e] = true
	}
	var bad []Transition
	for _, tr := range observed {
		if !allowed[tr] {
			bad = append(bad, tr)
		}
	}
	return bad
}

// DOT renders a set of transitions as a Graphviz digraph, merging parallel
// edges between the same states into one label.
func DOT(name string, edges []Transition) string {
	type key struct{ from, to string }
	labels := map[key][]string{}
	var order []key
	for _, e := range edges {
		k := key{e.From, e.To}
		if _, ok := labels[k]; !ok {
			order = append(order, k)
		}
		labels[k] = append(labels[k], e.Action)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse];\n")
	for _, k := range order {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%s\"];\n", k.from, k.to, strings.Join(labels[k], ", "))
	}
	b.WriteString("}\n")
	return b.String()
}
