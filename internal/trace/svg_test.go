package trace

import (
	"strings"
	"testing"

	"repro/internal/ring"
)

func figure1Table() *PhaseTable {
	// Phases 1-2 of the Figure 1 execution, hand-encoded.
	events := []Event{
		{Op: OpPhase, Proc: 0, Phase: 1, Guest: 1, Active: true},
		{Op: OpPhase, Proc: 1, Phase: 1, Guest: 3, Active: true},
		{Op: OpPhase, Proc: 2, Phase: 1, Guest: 1, Active: true},
		{Op: OpPhase, Proc: 0, Phase: 2, Guest: 2, Active: true},
		{Op: OpPhase, Proc: 1, Phase: 2, Guest: 1, Active: false},
		{Op: OpPhase, Proc: 2, Phase: 2, Guest: 3, Active: true},
	}
	return BuildPhaseTable(events, 3)
}

func TestRenderSVGStructure(t *testing.T) {
	table := figure1Table()
	r := ring.MustNew(1, 3, 1)
	svg := table.RenderSVG(r, SVGOptions{Phases: []int{1, 2}})

	for _, frag := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg"`,
		`id="phase1"`, `id="phase2"`,
		`(a) phase 1`, `(b) phase 2`,
		`fill="white"`, // active processes
		`fill="black"`, // p1 passive in phase 2
		`class="guest"`,
		`>p0<`, `>p2<`,
		"</svg>",
	} {
		if !strings.Contains(svg, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// One circle per process per panel plus one ring outline per panel.
	if got, want := strings.Count(svg, "<circle"), 2*(3+1); got != want {
		t.Errorf("circle count = %d, want %d", got, want)
	}
}

func TestRenderSVGDefaults(t *testing.T) {
	table := figure1Table()
	r := ring.MustNew(1, 3, 1)
	svg := table.RenderSVG(r, SVGOptions{})
	// Defaults draw up to 4 phases; only 2 exist here.
	if !strings.Contains(svg, `id="phase2"`) || strings.Contains(svg, `id="phase3"`) {
		t.Errorf("default phase selection wrong")
	}
}
