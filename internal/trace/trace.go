// Package trace records structured execution events from the engines and
// reconstructs the paper's visual artifacts from them: Figure 1 (the
// phase-by-phase execution of Bk) and Figure 2 (Bk's state diagram).
package trace

import (
	"repro/internal/core"
	"repro/internal/ring"
)

// Op is the kind of a trace event.
type Op uint8

const (
	// OpInit is the execution of a process's initial action.
	OpInit Op = iota
	// OpDeliver is the receipt (and processing) of a message.
	OpDeliver
	// OpSend is the emission of a message.
	OpSend
	// OpPhase marks a Bk process entering a new phase (an assignment to
	// p.guest; Appendix A numbering).
	OpPhase
	// OpHalt marks a process halting.
	OpHalt
	// OpLink marks a transport-level link event (internal/netring):
	// Action carries the event name — "connect", "drop", "reconnect" —
	// and Proc the sending endpoint of the link.
	OpLink
	// OpRecover marks a process resuming from a durable state snapshot
	// after a crash (internal/netring durable mode): Action carries the
	// recovery detail — "restore" for a successful snapshot load,
	// "state-corrupt" for a rejected snapshot (the node falls back to a
	// clean start) — and State the machine's control state after restore.
	OpRecover
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpInit:
		return "init"
	case OpDeliver:
		return "deliver"
	case OpSend:
		return "send"
	case OpPhase:
		return "phase"
	case OpHalt:
		return "halt"
	case OpLink:
		return "link"
	case OpRecover:
		return "recover"
	default:
		return "op?"
	}
}

// Event is one observation. Fields beyond Op/Proc are populated when
// meaningful for the op.
type Event struct {
	Op     Op
	Step   int     // synchronous step number, or delivery sequence number
	Time   float64 // asynchronous time units (0 in synchronous runs)
	Proc   int
	Action string       // fired action id (OpInit, OpDeliver)
	Msg    core.Message // OpDeliver, OpSend
	Bits   int          // OpSend: the message's payload cost (core.Message.Bits)
	State  string       // machine StateName after the action
	Phase  int          // OpPhase: the phase being entered
	Guest  ring.Label   // OpPhase: the guest adopted for that phase
	Active bool         // OpPhase: still competing when entering the phase
}

// Sink consumes events. Implementations must be cheap; engines call Record
// on the hot path.
type Sink interface {
	Record(Event)
}

// Nop discards all events.
type Nop struct{}

// Record implements Sink.
func (Nop) Record(Event) {}

// Mem retains every event in order.
type Mem struct {
	Events []Event
}

// Record implements Sink.
func (m *Mem) Record(e Event) { m.Events = append(m.Events, e) }

// ActionCount tallies fired actions by identifier (A1…A6, B1…B11, …).
type ActionCount map[string]int

// Record implements Sink.
func (c ActionCount) Record(e Event) {
	if (e.Op == OpInit || e.Op == OpDeliver) && e.Action != "" {
		c[e.Action]++
	}
}

// Multi fans events out to several sinks.
type Multi []Sink

// Record implements Sink.
func (m Multi) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}
