// Package spec is the process-terminating leader-election specification of
// §II as an executable checker. An execution satisfies the spec when it is
// finite and:
//
//  1. p.isLeader is initially false, never reverts from true to false, and
//     is true for exactly one process L in the terminal configuration — in
//     particular at most one leader exists in every configuration;
//  2. p.leader = L.id in the terminal configuration;
//  3. p.done is initially false, monotone, true everywhere at termination,
//     and once true, p.leader is permanently L.id and L.isLeader holds;
//  4. every process eventually halts after p.done becomes true.
//
// The engines feed every post-action Status to Observe and call Finalize on
// the terminal configuration; any violation is reported as an error naming
// the bullet it breaks.
package spec

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
)

// Checker validates one execution online. The zero value is unusable; use
// New.
type Checker struct {
	n        int
	last     []core.Status
	leaderAt int // index of the unique leader seen so far, or -1
}

// New returns a checker for an n-process execution. All processes start
// with the specified initial variable values (isLeader = done = false).
func New(n int) *Checker {
	return &Checker{n: n, last: make([]core.Status, n), leaderAt: -1}
}

// Violation is a specification violation, naming the spec bullet broken.
type Violation struct {
	Bullet  int
	Process int
	Detail  string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("spec bullet %d violated at process %d: %s", v.Bullet, v.Process, v.Detail)
}

// LinkViolation reports a broken link-model assumption. The model of §II
// takes reliable FIFO links as given: every message sent from p(i) to
// p(i+1) is delivered exactly once, in sending order, and never after the
// receiver halts. The in-memory engines satisfy this by construction; a
// transport engine (internal/netring) must implement it and reports any
// observed breach — a sequence gap, a duplicate, a reordering, a delivery
// after halt — as a LinkViolation rather than a plain transport error, so
// callers can distinguish "the link axioms were violated" from "the
// algorithm violated the election spec" (Violation).
type LinkViolation struct {
	// From and To are the link's endpoints: the sending process From and
	// the receiving process To = From+1 mod n.
	From, To int
	// Detail describes the breach, e.g. "sequence gap: got 7, want 5".
	Detail string
}

// Error implements error.
func (v *LinkViolation) Error() string {
	return fmt.Sprintf("link (p%d -> p%d) violated reliable-FIFO assumption: %s", v.From, v.To, v.Detail)
}

// Reset re-initializes the checker for a fresh n-process execution,
// retaining the status slice's backing array when it is large enough —
// the scratch-arena engines (internal/sim.Scratch) reset one checker per
// election instead of allocating one.
func (c *Checker) Reset(n int) {
	if cap(c.last) >= n {
		c.last = c.last[:n]
		clear(c.last)
	} else {
		c.last = make([]core.Status, n)
	}
	c.n = n
	c.leaderAt = -1
}

// Clone returns an independent copy of the checker's progress, for
// branching explorations of the configuration space.
func (c *Checker) Clone() *Checker {
	cp := &Checker{n: c.n, last: make([]core.Status, c.n), leaderAt: c.leaderAt}
	copy(cp.last, c.last)
	return cp
}

// Seed installs a previously observed status as process i's baseline
// without checking it, for executions resumed from a durable snapshot
// (internal/netring crash recovery): the restored machine's status becomes
// the reference point, so monotonicity violations spanning the crash —
// isLeader or done reverting relative to the persisted state — are still
// caught by the next Observe.
func (c *Checker) Seed(i int, st core.Status) {
	c.last[i] = st
	if st.IsLeader && c.leaderAt < 0 {
		c.leaderAt = i
	}
}

// Observe records the status of process i after one of its actions and
// checks the safety part of the specification. It must be called with the
// process's status after every action it executes.
func (c *Checker) Observe(i int, st core.Status) error {
	prev := c.last[i]
	if prev.IsLeader && !st.IsLeader {
		return &Violation{Bullet: 1, Process: i, Detail: "isLeader reverted from true to false"}
	}
	if prev.Done && !st.Done {
		return &Violation{Bullet: 3, Process: i, Detail: "done reverted from true to false"}
	}
	if prev.Done && st.Done && prev.LeaderSet && st.LeaderSet && prev.Leader != st.Leader {
		return &Violation{Bullet: 3, Process: i, Detail: fmt.Sprintf("leader changed from %s to %s after done", prev.Leader, st.Leader)}
	}
	if st.Done && !st.LeaderSet {
		return &Violation{Bullet: 3, Process: i, Detail: "done set but leader unset"}
	}
	if st.IsLeader {
		if c.leaderAt >= 0 && c.leaderAt != i {
			return &Violation{Bullet: 1, Process: i, Detail: fmt.Sprintf("second leader (process %d already leads)", c.leaderAt)}
		}
		c.leaderAt = i
	}
	c.last[i] = st
	return nil
}

// LeaderIndex returns the index of the unique process that has declared
// itself leader, or -1 if none has.
func (c *Checker) LeaderIndex() int { return c.leaderAt }

// Finalize checks the liveness/terminal part against the terminal
// configuration: ids[i] is each process's label and halted[i] its halt
// flag. It returns the leader index on success.
func (c *Checker) Finalize(ids []ring.Label, halted []bool) (int, error) {
	if len(ids) != c.n || len(halted) != c.n {
		return -1, fmt.Errorf("spec: finalize arity mismatch")
	}
	if c.leaderAt < 0 {
		return -1, &Violation{Bullet: 1, Process: -1, Detail: "terminal configuration has no leader"}
	}
	leaderID := ids[c.leaderAt]
	for i := 0; i < c.n; i++ {
		st := c.last[i]
		if i == c.leaderAt && !st.IsLeader {
			return -1, &Violation{Bullet: 1, Process: i, Detail: "leader lost isLeader"}
		}
		if i != c.leaderAt && st.IsLeader {
			return -1, &Violation{Bullet: 1, Process: i, Detail: "non-unique leader in terminal configuration"}
		}
		if !st.Done {
			return -1, &Violation{Bullet: 3, Process: i, Detail: "done false in terminal configuration"}
		}
		if !st.LeaderSet || st.Leader != leaderID {
			got := "unset"
			if st.LeaderSet {
				got = st.Leader.String()
			}
			return -1, &Violation{Bullet: 2, Process: i, Detail: fmt.Sprintf("leader = %s, want L.id = %s", got, leaderID)}
		}
		if !halted[i] {
			return -1, &Violation{Bullet: 4, Process: i, Detail: "process did not halt"}
		}
	}
	return c.leaderAt, nil
}
