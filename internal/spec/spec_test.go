package spec

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
)

func status(isLeader, done bool, leader ring.Label, set bool) core.Status {
	return core.Status{IsLeader: isLeader, Done: done, Leader: leader, LeaderSet: set}
}

func TestHappyPath(t *testing.T) {
	c := New(3)
	ids := []ring.Label{5, 7, 9}
	// Process 1 declares leadership; everyone converges on its label.
	steps := []struct {
		proc int
		st   core.Status
	}{
		{0, status(false, false, 0, false)},
		{1, status(true, true, 7, true)},
		{2, status(false, true, 7, true)},
		{0, status(false, true, 7, true)},
		{1, status(true, true, 7, true)},
	}
	for _, s := range steps {
		if err := c.Observe(s.proc, s.st); err != nil {
			t.Fatalf("Observe(%d, %+v): %v", s.proc, s.st, err)
		}
	}
	if c.LeaderIndex() != 1 {
		t.Errorf("LeaderIndex = %d, want 1", c.LeaderIndex())
	}
	leader, err := c.Finalize(ids, []bool{true, true, true})
	if err != nil || leader != 1 {
		t.Errorf("Finalize = %d, %v", leader, err)
	}
}

func TestBullet1SecondLeader(t *testing.T) {
	c := New(2)
	if err := c.Observe(0, status(true, true, 1, true)); err != nil {
		t.Fatal(err)
	}
	err := c.Observe(1, status(true, true, 2, true))
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 1 {
		t.Fatalf("second leader: err = %v, want bullet 1", err)
	}
	if !strings.Contains(err.Error(), "bullet 1") {
		t.Errorf("error text %q should name the bullet", err)
	}
}

func TestBullet1Revocation(t *testing.T) {
	c := New(1)
	if err := c.Observe(0, status(true, false, 1, true)); err != nil {
		t.Fatal(err)
	}
	err := c.Observe(0, status(false, false, 1, true))
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 1 {
		t.Fatalf("isLeader revocation: err = %v, want bullet 1", err)
	}
}

func TestBullet3DoneRevocation(t *testing.T) {
	c := New(1)
	if err := c.Observe(0, status(false, true, 1, true)); err != nil {
		t.Fatal(err)
	}
	err := c.Observe(0, status(false, false, 1, true))
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 3 {
		t.Fatalf("done revocation: err = %v, want bullet 3", err)
	}
}

func TestBullet3LeaderChangeAfterDone(t *testing.T) {
	c := New(1)
	if err := c.Observe(0, status(false, true, 1, true)); err != nil {
		t.Fatal(err)
	}
	err := c.Observe(0, status(false, true, 2, true))
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 3 {
		t.Fatalf("leader change after done: err = %v, want bullet 3", err)
	}
}

func TestBullet3DoneWithoutLeader(t *testing.T) {
	c := New(1)
	err := c.Observe(0, status(false, true, 0, false))
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 3 {
		t.Fatalf("done without leader: err = %v, want bullet 3", err)
	}
}

func TestFinalizeNoLeader(t *testing.T) {
	c := New(2)
	_, err := c.Finalize([]ring.Label{1, 2}, []bool{true, true})
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 1 {
		t.Fatalf("no leader: err = %v, want bullet 1", err)
	}
}

func TestFinalizeWrongLeaderVariable(t *testing.T) {
	c := New(2)
	if err := c.Observe(0, status(true, true, 1, true)); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(1, status(false, true, 9, true)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Finalize([]ring.Label{1, 2}, []bool{true, true})
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 2 {
		t.Fatalf("wrong leader variable: err = %v, want bullet 2", err)
	}
}

func TestFinalizeNotDone(t *testing.T) {
	c := New(2)
	if err := c.Observe(0, status(true, true, 1, true)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Finalize([]ring.Label{1, 2}, []bool{true, true})
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 3 {
		t.Fatalf("process never done: err = %v, want bullet 3", err)
	}
}

func TestFinalizeNotHalted(t *testing.T) {
	c := New(2)
	if err := c.Observe(0, status(true, true, 1, true)); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(1, status(false, true, 1, true)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Finalize([]ring.Label{1, 2}, []bool{true, false})
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 4 {
		t.Fatalf("process never halted: err = %v, want bullet 4", err)
	}
}

func TestFinalizeArityMismatch(t *testing.T) {
	c := New(2)
	if _, err := c.Finalize([]ring.Label{1}, []bool{true}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

// TestLinkViolation pins the transport-layer error type: engines that
// implement (rather than assume) reliable FIFO links report broken link
// axioms as *LinkViolation, distinguishable via errors.As from algorithm
// spec violations.
func TestLinkViolation(t *testing.T) {
	var err error = &LinkViolation{From: 2, To: 0, Detail: "got seq 7, want 5"}
	msg := err.Error()
	for _, frag := range []string{"p2", "p0", "reliable-FIFO", "got seq 7, want 5"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("Error() missing %q: %s", frag, msg)
		}
	}
	wrapped := fmt.Errorf("netring: p0: %w", err)
	var lv *LinkViolation
	if !errors.As(wrapped, &lv) || lv.From != 2 || lv.To != 0 {
		t.Fatalf("errors.As failed on %v", wrapped)
	}
	var v *Violation
	if errors.As(wrapped, &v) {
		t.Error("a LinkViolation must not satisfy *Violation")
	}
}

// TestSeedCarriesBaselineAcrossRestart pins the crash-recovery hook: a
// checker seeded with a restored process's status still catches
// monotonicity violations relative to the pre-crash state, and seeding a
// leader registers it for the uniqueness check.
func TestSeedCarriesBaselineAcrossRestart(t *testing.T) {
	c := New(3)
	c.Seed(1, core.Status{IsLeader: true, Done: true, Leader: 7, LeaderSet: true})
	if c.LeaderIndex() != 1 {
		t.Fatalf("LeaderIndex = %d after seeding a leader, want 1", c.LeaderIndex())
	}
	// Reverting done relative to the seeded baseline is a bullet-3 breach.
	err := c.Observe(1, core.Status{IsLeader: true})
	var v *Violation
	if !errors.As(err, &v) || v.Bullet != 3 {
		t.Fatalf("done reversion after Seed: got %v, want bullet-3 violation", err)
	}
	// A second process declaring leadership after the seed is non-unique.
	c2 := New(2)
	c2.Seed(0, core.Status{IsLeader: true, Done: true, Leader: 4, LeaderSet: true})
	err = c2.Observe(1, core.Status{IsLeader: true, Done: true, Leader: 9, LeaderSet: true})
	if !errors.As(err, &v) || v.Bullet != 1 {
		t.Fatalf("second leader after Seed: got %v, want bullet-1 violation", err)
	}
	// Seeding a non-leader status leaves the leader slot open.
	c3 := New(2)
	c3.Seed(0, core.Status{Done: true, Leader: 4, LeaderSet: true})
	if c3.LeaderIndex() != -1 {
		t.Fatalf("LeaderIndex = %d after non-leader seed, want -1", c3.LeaderIndex())
	}
}
