// Package rand implements Itai–Rodeh randomized leader election for
// labeled unidirectional rings of known size n — the engine that serves
// the rings the paper's Ak/Bk cannot: symmetric (and in particular
// anonymous-equivalent all-equal-label) rings, where no deterministic
// algorithm can break the tie.
//
// The formulation is Fokkink–Pang's round-based variant. Every process
// starts active in round 1 and draws a random id from {1..k}; the token
// ⟨id, round, hop, uniq⟩ circulates, actives with lexicographically
// smaller (round, id) turn passive, same-id collisions clear the token's
// uniqueness bit, and a token returning to its still-active originator
// after n hops either crowns it (uniq still set) or starts the next round
// (redraw). The winner announces its ring label for one lap; everyone
// adopts it and halts. Election terminates with probability 1; for k = 3
// the expected number of draws is ≈ 1.5n, i.e. ≈ 2.38n bits of drawn
// randomness — within 3% of Lavault–Louchard's L·n ≃ 2.4417n expected
// bit-communication constant (arXiv:cs/0607032; EXPERIMENTS.md E14).
//
// Determinism: randomness comes from per-machine splitmix64 streams
// derived from one protocol seed, so a fixed (ring, seed) pair yields one
// execution — the simulator, the goroutine engine, the TCP engine, and a
// crash-recovered chaos run all elect the same leader with identical
// message and bit counts. Machines at ring index i use stream
// (i - rot) mod n, where rot is the ring's Booth least-rotation offset;
// executions on rotations of one canonical ring are therefore isomorphic,
// which is what lets the serving cache answer every rotation from one
// canonical entry.
package rand

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
)

// Alphabet is the id-alphabet size the registry uses: the smallest k
// whose expected drawn-randomness cost (≈ 1.5n·log₂3 ≈ 2.38n bits) sits
// within a few percent of the Lavault–Louchard 2.4417n constant (k = 2
// costs exactly 2n bits, 18% under).
const Alphabet = 3

// Protocol is the Itai–Rodeh election as a core.Protocol. It is
// position-dependent (core.IndexedProtocol): every engine must construct
// machines through core.NewMachineFor.
type Protocol struct {
	n, k, labelBits, rot int
	seed                 uint64
}

// New returns the protocol for an n-process ring whose labels fit in
// labelBits bits, drawing ids from {1..k}, seeded by seed. rot is the
// ring's least-rotation offset (canonical[j] = labels[(rot+j) mod n]):
// the machine at ring index i uses PRNG stream (i-rot) mod n, so rotated
// copies of one ring run isomorphic executions. Pass rot = 0 when the
// ring is already canonical (or rotation invariance is irrelevant, as in
// seeded ensembles).
func New(n, k, labelBits, rot int, seed uint64) (*Protocol, error) {
	if n < 2 {
		return nil, fmt.Errorf("rand: ring size %d < 2", n)
	}
	if k < 2 {
		return nil, fmt.Errorf("rand: id alphabet size %d < 2 (a 1-letter alphabet collides forever)", k)
	}
	if labelBits < 1 {
		return nil, fmt.Errorf("rand: labelBits %d < 1", labelBits)
	}
	if rot < 0 || rot >= n {
		return nil, fmt.Errorf("rand: rotation offset %d outside [0, %d)", rot, n)
	}
	return &Protocol{n: n, k: k, labelBits: labelBits, rot: rot, seed: seed}, nil
}

// Name identifies the protocol. The seed is part of the name: two runs
// agree on every count exactly when they agree on (n, k, seed, rot), and
// the netring durable-state layer compares names to reject a snapshot
// taken under a different seed.
func (p *Protocol) Name() string {
	return fmt.Sprintf("IR(n=%d,k=%d,seed=%#x,rot=%d)", p.n, p.k, p.seed, p.rot)
}

// NewMachine builds the machine of stream 0; engines must prefer
// NewMachineAt (via core.NewMachineFor) so each process gets its own
// stream.
func (p *Protocol) NewMachine(id ring.Label) core.Machine { return p.NewMachineAt(0, id) }

// NewMachineAt builds the machine of the process at ring index `index`
// labeled id, implementing core.IndexedProtocol.
func (p *Protocol) NewMachineAt(index int, id ring.Label) core.Machine {
	stream := ((index-p.rot)%p.n + p.n) % p.n
	return &machine{p: p, id: id, rng: prng{s: streamSeed(p.seed, stream)}}
}

// machine is one process's Itai–Rodeh automaton.
type machine struct {
	p  *Protocol
	id ring.Label // own ring label

	rng    prng
	active bool
	round  uint32
	myid   uint32 // current drawn id in {1..k}; 0 before Init
	draws  int

	isLeader, done, ledSet, halted bool
	leader                         ring.Label
}

// draw replaces myid with a fresh uniform draw from {1..k}.
func (m *machine) draw() {
	m.myid = 1 + uint32(m.rng.next()%uint64(m.p.k))
	m.draws++
}

// Init starts round 1: draw an id, emit the candidacy token (action R1).
func (m *machine) Init(out *core.Outbox) string {
	m.active = true
	m.round = 1
	m.draw()
	out.Send(core.RandToken(ring.Label(m.myid), m.round, 1, true))
	return "R1"
}

// cmp orders (round, id) pairs lexicographically against the machine's
// own (round, myid): -1 below, 0 equal, +1 above.
func (m *machine) cmp(round, id uint32) int {
	switch {
	case round != m.round:
		if round > m.round {
			return 1
		}
		return -1
	case id != m.myid:
		if id > m.myid {
			return 1
		}
		return -1
	default:
		return 0
	}
}

// Receive executes the single enabled action for the head message.
func (m *machine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	switch msg.Kind {
	case core.KindRandToken:
		return m.receiveToken(msg, out)
	case core.KindRandLeader:
		return m.receiveLeader(msg, out)
	default:
		return "", fmt.Errorf("rand: no action enabled for %s", msg)
	}
}

func (m *machine) receiveToken(msg core.Message, out *core.Outbox) (string, error) {
	n := uint32(m.p.n)
	if msg.Hop < 1 || msg.Hop > n {
		return "", fmt.Errorf("rand: token %s has hop outside [1, %d]", msg, n)
	}
	if !m.active {
		// R5/R6: a passive process relays foreign tokens and purges the
		// one that completed its lap (its own stale candidacy, or the
		// stale candidacy of a process that turned passive after us —
		// hop = n only ever happens at the originator).
		if msg.Hop == n {
			return "R6", nil
		}
		out.Send(core.Message{Kind: core.KindRandToken, Label: msg.Label, Round: msg.Round, Hop: msg.Hop + 1, Flag: msg.Flag})
		return "R5", nil
	}
	switch m.cmp(msg.Round, uint32(msg.Label)) {
	case 1:
		// R4: a lexicographically larger candidacy — yield and relay.
		m.active = false
		out.Send(core.Message{Kind: core.KindRandToken, Label: msg.Label, Round: msg.Round, Hop: msg.Hop + 1, Flag: msg.Flag})
		return "R4", nil
	case -1:
		// R3: a smaller candidacy — purge it.
		return "R3", nil
	}
	if msg.Hop < n {
		// R2c: someone else drew our exact (round, id) — relay with the
		// uniqueness bit cleared so neither of us wins this round.
		out.Send(core.Message{Kind: core.KindRandToken, Label: msg.Label, Round: msg.Round, Hop: msg.Hop + 1, Flag: false})
		return "R2c", nil
	}
	// Our own token is back (hop = n ⇔ originator).
	if msg.Flag {
		// R2w: unique across the lap — we win. Announce our ring label
		// and stay active (not halted) to purge the stale tokens still in
		// flight ahead of the announcement; we halt when it returns.
		m.isLeader, m.done, m.ledSet = true, true, true
		m.leader = m.id
		out.Send(core.RandLeader(m.id, m.round, 1))
		return "R2w", nil
	}
	// R2r: collided — next round, fresh draw.
	m.round++
	m.draw()
	out.Send(core.RandToken(ring.Label(m.myid), m.round, 1, true))
	return "R2r", nil
}

func (m *machine) receiveLeader(msg core.Message, out *core.Outbox) (string, error) {
	n := uint32(m.p.n)
	if m.active {
		// R7: our announcement completed its lap; nothing can follow it
		// on the incoming link (no process sends after relaying it), so
		// halting is safe.
		if !m.isLeader || msg.Hop != n || msg.Label != m.id {
			return "", fmt.Errorf("rand: active process received foreign announcement %s", msg)
		}
		m.halted = true
		return "R7", nil
	}
	if msg.Hop >= n {
		return "", fmt.Errorf("rand: announcement %s overran its lap", msg)
	}
	// R8: adopt the leader, relay the announcement, halt.
	m.leader, m.ledSet, m.done = msg.Label, true, true
	out.Send(core.RandLeader(msg.Label, msg.Round, msg.Hop+1))
	m.halted = true
	return "R8", nil
}

// Halted reports whether the process executed its halting statement.
func (m *machine) Halted() bool { return m.halted }

// Status returns the specification variables.
func (m *machine) Status() core.Status {
	return core.Status{IsLeader: m.isLeader, Done: m.done, Leader: m.leader, LeaderSet: m.ledSet}
}

// StateName names the control state for diagnostics.
func (m *machine) StateName() string {
	switch {
	case m.halted:
		return "HALT"
	case m.isLeader:
		return "LEADER"
	case m.active:
		return fmt.Sprintf("ACTIVE(r%d)", m.round)
	default:
		return "PASSIVE"
	}
}

// SpaceBits returns the current variable size in the units of the paper's
// space theorems: 64 bits of PRNG state, one label (leader), the current
// id (⌈log k⌉), the round counter at its current self-cost, and four
// booleans (active, isLeader, done, leaderSet).
func (m *machine) SpaceBits() int {
	return 64 + m.p.labelBits + ceilLog2(m.p.k) + ceilLog2(int(m.round)+1) + 4
}

// Draws returns how many random ids this process has drawn so far — the
// quantity whose expectation Lavault–Louchard's constant bounds.
func (m *machine) Draws() int { return m.draws }

// Fingerprint serializes the full local state.
func (m *machine) Fingerprint() string {
	leader := "-"
	if m.ledSet {
		leader = m.leader.String()
	}
	return fmt.Sprintf("IR[id=%s active=%t round=%d myid=%d rng=%#x isLeader=%t done=%t leader=%s halted=%t]",
		m.id, m.active, m.round, m.myid, m.rng.s, m.isLeader, m.done, leader, m.halted)
}

// Clone implements core.Cloner.
func (m *machine) Clone() core.Machine {
	c := *m
	return &c
}

// ResetFor implements core.Resetter. The PRNG stream is re-derived from
// the (possibly different) protocol's seed and the machine's new ring
// position, exactly as NewMachineAt does — a pooled machine's next
// election draws the identical random sequence a fresh machine would, so
// the seeded determinism contract (one execution per (ring, seed) pair,
// across every engine) survives pooling.
func (m *machine) ResetFor(p core.Protocol, index int, id ring.Label) bool {
	rp, ok := p.(*Protocol)
	if !ok {
		return false
	}
	stream := ((index-rp.rot)%rp.n + rp.n) % rp.n
	*m = machine{p: rp, id: id, rng: prng{s: streamSeed(rp.seed, stream)}}
	return true
}

// ceilLog2 returns ⌈log2 v⌉ for v ≥ 1 (0 for v ≤ 1).
func ceilLog2(v int) int {
	bits := 0
	for p := 1; p < v; p <<= 1 {
		bits++
	}
	return bits
}
