package rand

// prng is a splitmix64 generator: one uint64 of state, full period 2^64,
// and — the property everything downstream leans on — trivially
// serializable. A machine snapshot (core.Snapshotter) persists the single
// state word, so a crash-recovered process replays the exact draw
// sequence the in-memory engines produce.
type prng struct{ s uint64 }

// next advances the state and returns the next 64-bit output.
func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// streamSeed derives the initial PRNG state of machine stream i from the
// protocol seed. One scrambling step decorrelates adjacent streams, so
// neighboring processes do not draw correlated ids even under seeds that
// differ in a single bit.
func streamSeed(seed uint64, stream int) uint64 {
	p := prng{s: seed ^ (0x9e3779b97f4a7c15 * uint64(stream+1))}
	return p.next()
}
