package rand

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ring"
)

// Snapshot blob layout (core.Snapshotter, netring crash recovery): magic
// 'R', a format version, then varint fields. The PRNG state word is part
// of the snapshot — a restored machine continues the exact draw sequence,
// which is what keeps chaos-run message counts equal to the simulator's
// across SIGKILLs.
const snapshotVersion = 1

// SnapshotState implements core.Snapshotter.
func (m *machine) SnapshotState() ([]byte, error) {
	b := make([]byte, 0, 32)
	b = append(b, 'R', snapshotVersion)
	b = binary.AppendVarint(b, int64(m.id))
	b = append(b, packBits(m.active, m.isLeader, m.done, m.ledSet, m.halted))
	b = binary.AppendUvarint(b, uint64(m.round))
	b = binary.AppendUvarint(b, uint64(m.myid))
	b = binary.AppendUvarint(b, uint64(m.draws))
	b = binary.AppendUvarint(b, m.rng.s)
	b = binary.AppendVarint(b, int64(m.leader))
	return b, nil
}

// RestoreState implements core.Snapshotter.
func (m *machine) RestoreState(data []byte) error {
	r := &snapReader{b: data}
	if got := r.byte(); got != 'R' && r.err == nil {
		r.fail("rand: snapshot is not an IR state (magic %q, want 'R')", got)
	}
	if v := r.byte(); v != snapshotVersion && r.err == nil {
		r.fail("rand: snapshot version %d, want %d", v, snapshotVersion)
	}
	if got := ring.Label(r.varint()); got != m.id && r.err == nil {
		r.fail("rand: snapshot belongs to label %s, machine has label %s", got, m.id)
	}
	flags := r.byte()
	round := r.uvarint()
	myid := r.uvarint()
	draws := r.uvarint()
	rng := r.uvarint()
	leader := ring.Label(r.varint())
	if r.err == nil && myid > uint64(m.p.k) {
		r.fail("rand: snapshot id %d outside alphabet {1..%d}", myid, m.p.k)
	}
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("rand: snapshot has %d trailing bytes", len(r.b))
	}
	m.active, m.isLeader, m.done, m.ledSet, m.halted =
		bit(flags, 0), bit(flags, 1), bit(flags, 2), bit(flags, 3), bit(flags, 4)
	m.round, m.myid, m.draws = uint32(round), uint32(myid), int(draws)
	m.rng.s = rng
	m.leader = leader
	return nil
}

// snapReader decodes with sticky-error semantics (the internal/core
// snapshot idiom; that reader is unexported).
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *snapReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("rand: snapshot truncated")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *snapReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("rand: snapshot truncated (varint)")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("rand: snapshot truncated (uvarint)")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func packBits(bits ...bool) byte {
	var b byte
	for i, v := range bits {
		if v {
			b |= 1 << i
		}
	}
	return b
}

func bit(b byte, i int) bool { return b&(1<<i) != 0 }
