package rand_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/netring"
	randalg "repro/internal/rand"
	"repro/internal/ring"
	"repro/internal/sim"
)

// mustRing parses a ring spec or fails the test.
func mustRing(t *testing.T, spec string) *ring.Ring {
	t.Helper()
	r, err := ring.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// newIR builds an Itai–Rodeh protocol for r with the canonical rotation 0.
func newIR(t *testing.T, r *ring.Ring, seed uint64) *randalg.Protocol {
	t.Helper()
	p, err := randalg.New(r.N(), randalg.Alphabet, r.LabelBits(), 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testRings covers the shapes the deterministic algorithms split on: fully
// symmetric (unsolvable for them), partially symmetric, asymmetric, and
// unique-label.
var testRings = []string{
	"1 1 1 1",
	"1 2 1 2",
	"7 7 7 7 7 7",
	"1 3 1 3 2 2 1 2",
	"1 2 3 4 5",
}

// TestNewValidation checks the constructor's parameter contract.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		n, k, labelBits, rot int
		wantErr              string
	}{
		{1, 3, 8, 0, "ring size 1"},
		{4, 1, 8, 0, "alphabet size 1"},
		{4, 3, 0, 0, "labelBits 0"},
		{4, 3, 8, -1, "rotation offset -1"},
		{4, 3, 8, 4, "rotation offset 4"},
		{4, 3, 8, 3, ""},
	}
	for _, c := range cases {
		_, err := randalg.New(c.n, c.k, c.labelBits, c.rot, 1)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("New(%d,%d,%d,%d): unexpected error %v", c.n, c.k, c.labelBits, c.rot, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("New(%d,%d,%d,%d): error %v, want substring %q", c.n, c.k, c.labelBits, c.rot, err, c.wantErr)
		}
	}
}

// TestDeterministicReplay checks that a fixed seed fully determines the
// execution: two independent simulator runs are outcome-identical, and a
// different seed (usually) produces a different draw sequence.
func TestDeterministicReplay(t *testing.T) {
	for _, spec := range testRings {
		r := mustRing(t, spec)
		a, err := sim.RunSync(r, newIR(t, r, 42), sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		b, err := sim.RunSync(r, newIR(t, r, 42), sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if a.LeaderIndex != b.LeaderIndex || a.Messages != b.Messages || a.TotalBits != b.TotalBits || a.RandDraws != b.RandDraws {
			t.Errorf("%s: same seed diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", spec,
				a.LeaderIndex, a.Messages, a.TotalBits, a.RandDraws,
				b.LeaderIndex, b.Messages, b.TotalBits, b.RandDraws)
		}
	}
}

// TestThreeWayAgreement runs the same seeded protocol through all three
// engines — deterministic simulator, goroutine runtime, real TCP — and
// requires exact agreement on the leader, the message count, and the bit
// total. The FIFO ring makes the execution a Kahn network: the per-link
// message sequences are schedule-independent, so real concurrency and
// real sockets cannot change the outcome.
func TestThreeWayAgreement(t *testing.T) {
	for _, spec := range testRings {
		for _, seed := range []uint64{1, 0xdeadbeef} {
			r := mustRing(t, spec)
			simRes, err := sim.RunAsync(r, newIR(t, r, seed), sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				t.Fatalf("%s/%#x sim: %v", spec, seed, err)
			}
			goRes, err := gorun.Run(r, newIR(t, r, seed), 30*time.Second)
			if err != nil {
				t.Fatalf("%s/%#x gorun: %v", spec, seed, err)
			}
			tcpRes, err := netring.RunLocal(r, newIR(t, r, seed), netring.Options{})
			if err != nil {
				t.Fatalf("%s/%#x netring: %v", spec, seed, err)
			}
			if simRes.LeaderIndex != goRes.LeaderIndex || simRes.LeaderIndex != tcpRes.LeaderIndex {
				t.Errorf("%s/%#x: leaders disagree: sim=%d gorun=%d tcp=%d", spec, seed,
					simRes.LeaderIndex, goRes.LeaderIndex, tcpRes.LeaderIndex)
			}
			if simRes.Messages != goRes.Messages || simRes.Messages != tcpRes.Messages {
				t.Errorf("%s/%#x: message counts disagree: sim=%d gorun=%d tcp=%d", spec, seed,
					simRes.Messages, goRes.Messages, tcpRes.Messages)
			}
			if simRes.TotalBits != goRes.TotalBits || simRes.TotalBits != tcpRes.TotalBits {
				t.Errorf("%s/%#x: bit totals disagree: sim=%d gorun=%d tcp=%d", spec, seed,
					simRes.TotalBits, goRes.TotalBits, tcpRes.TotalBits)
			}
		}
	}
}

// TestExploreAllConfluence model-checks every asynchronous schedule of a
// seeded run on a small fully-symmetric ring: all interleavings must reach
// one terminal configuration with one leader and one message count. This
// is the schedule-independence claim behind the cross-engine agreement,
// verified exhaustively rather than by sampling.
func TestExploreAllConfluence(t *testing.T) {
	r := mustRing(t, "1 1 1")
	res, err := sim.ExploreAll(r, newIR(t, r, 7), 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminals != 1 {
		t.Errorf("terminals = %d, want 1", res.Terminals)
	}
	if res.LeaderIndex < 0 || res.LeaderIndex >= r.N() {
		t.Errorf("leader index %d out of range", res.LeaderIndex)
	}
	if !res.Cloned {
		t.Error("machines should implement core.Cloner")
	}
	t.Logf("explored %d states, leader=%d, msgs=%d", res.States, res.LeaderIndex, res.Messages)
}

// TestRotationEquivariance checks the property the serving layer's cache
// depends on: running the protocol on a rotated ring with the matching rot
// offset produces the SAME execution up to index relabeling — the leader
// maps through the rotation, and messages and bits are identical.
func TestRotationEquivariance(t *testing.T) {
	const seed = 0xfeedface
	for _, spec := range []string{"1 2 1 2", "1 3 1 3 2 2 1 2", "2 2 2 2 2"} {
		canon := mustRing(t, spec)
		n := canon.N()
		base, err := sim.RunSync(canon, newIR(t, canon, seed), sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		for d := 1; d < n; d++ {
			// rotated.Label(i) == canon.Label((i+d) mod n), so the offset
			// with canonical[i] == rotated[(i+rot) mod n] is rot = n-d —
			// the convention ProtocolFor derives via Booth's algorithm.
			rotated := canon.Rotate(d)
			rot := (n - d) % n
			p, err := randalg.New(n, randalg.Alphabet, rotated.LabelBits(), rot, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunSync(rotated, p, sim.Options{})
			if err != nil {
				t.Fatalf("%s rot %d: %v", spec, d, err)
			}
			// Canonical leader L sits at rotated index (L-d) mod n (same
			// label, same PRNG stream).
			wantLeader := ((base.LeaderIndex-d)%n + n) % n
			if res.LeaderIndex != wantLeader {
				t.Errorf("%s rot %d: leader %d, want %d", spec, d, res.LeaderIndex, wantLeader)
			}
			if res.Messages != base.Messages || res.TotalBits != base.TotalBits {
				t.Errorf("%s rot %d: (msgs,bits)=(%d,%d), want (%d,%d)", spec, d,
					res.Messages, res.TotalBits, base.Messages, base.TotalBits)
			}
		}
	}
}

// TestCloneIndependence advances machines mid-election, clones one, steps
// the original further, and checks the clone's fingerprint is unaffected —
// the contract ExploreAll's branching relies on.
func TestCloneIndependence(t *testing.T) {
	p, err := randalg.New(4, 3, 8, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachineAt(0, 1)
	var out core.Outbox
	m.Init(&out)
	sent := out.Drain()
	if len(sent) != 1 {
		t.Fatalf("init sent %d messages, want 1", len(sent))
	}
	clone := m.(core.Cloner).Clone()
	before := clone.Fingerprint()
	// Deliver a round-2 token to the original: a higher round always beats
	// a round-1 active, so the original must go passive; the clone must
	// not move.
	if _, err := m.Receive(core.RandToken(1, 2, 1, true), &out); err != nil {
		t.Fatal(err)
	}
	out.Drain()
	if clone.Fingerprint() != before {
		t.Error("clone fingerprint changed when original advanced")
	}
	if m.Fingerprint() == before {
		t.Error("original fingerprint unchanged after a delivery")
	}
}

// TestSnapshotRoundTrip serializes a mid-election machine and restores it
// into a fresh one: fingerprints must match, and the restored machine must
// behave identically from there (the crash-recovery path in netring).
func TestSnapshotRoundTrip(t *testing.T) {
	p, err := randalg.New(4, 3, 8, 0, 1234)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachineAt(2, 5)
	var out core.Outbox
	m.Init(&out)
	out.Drain()
	if _, err := m.Receive(core.RandToken(2, 1, 1, true), &out); err != nil {
		t.Fatal(err)
	}
	out.Drain()

	blob, err := m.(core.Snapshotter).SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := p.NewMachineAt(2, 5)
	if err := fresh.(core.Snapshotter).RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if fresh.Fingerprint() != m.Fingerprint() {
		t.Errorf("restored fingerprint %q != original %q", fresh.Fingerprint(), m.Fingerprint())
	}

	// Corrupt inputs must error, not panic.
	if err := fresh.(core.Snapshotter).RestoreState(nil); err == nil {
		t.Error("RestoreState(nil) succeeded")
	}
	if err := fresh.(core.Snapshotter).RestoreState([]byte{'X', 1}); err == nil {
		t.Error("RestoreState with bad magic succeeded")
	}
	if err := fresh.(core.Snapshotter).RestoreState(blob[:len(blob)-1]); err == nil {
		t.Error("RestoreState with truncated blob succeeded")
	}
}

// TestCrashRecoveryAgreement kills the netring engine's determinism the
// hard way: a run with an injected link drop must still produce the same
// leader, message count, and bit total as the fault-free simulator run —
// retransmissions are transport frames, not protocol messages or bits.
func TestCrashRecoveryAgreement(t *testing.T) {
	r := mustRing(t, "2 2 2 2")
	want, err := sim.RunSync(r, newIR(t, r, 77), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := netring.RunLocal(r, newIR(t, r, 77), netring.Options{
		Faults: netring.Faults{1: {DropAfter: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.LeaderIndex != want.LeaderIndex || got.Messages != want.Messages || got.TotalBits != want.TotalBits {
		t.Errorf("faulted run (leader=%d msgs=%d bits=%d) != sim (leader=%d msgs=%d bits=%d)",
			got.LeaderIndex, got.Messages, got.TotalBits, want.LeaderIndex, want.Messages, want.TotalBits)
	}
	if got.Reconnects == 0 {
		t.Error("fault injection produced no reconnects — the test exercised nothing")
	}
}

// TestEnsembleElects runs a seeded ensemble on a symmetric ring and checks
// every run terminates with a valid leader — the probability-1 claim,
// sampled. Draw counts land in a loose sanity band around the 1.5n mean
// (the tight bound is asserted by experiment E14).
func TestEnsembleElects(t *testing.T) {
	r := mustRing(t, "3 3 3 3 3 3 3 3")
	n := r.N()
	totalDraws := 0
	const runs = 200
	for seed := uint64(0); seed < runs; seed++ {
		res, err := sim.RunSync(r, newIR(t, r, seed), sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.LeaderIndex < 0 || res.LeaderIndex >= n {
			t.Fatalf("seed %d: leader index %d out of range", seed, res.LeaderIndex)
		}
		totalDraws += res.RandDraws
	}
	mean := float64(totalDraws) / runs
	if mean < float64(n) || mean > 2.5*float64(n) {
		t.Errorf("mean draws %.2f outside sanity band [n, 2.5n] = [%d, %.1f]", mean, n, 2.5*float64(n))
	}
}
