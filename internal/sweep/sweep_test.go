package sweep_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func TestMapOrdering(t *testing.T) {
	// Jobs finish intentionally out of order; results must not.
	for _, workers := range []int{1, 2, 3, 8, 33} {
		out, err := sweep.Map(workers, 100, func(i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Duration(i%3) * time.Millisecond)
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := sweep.Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("got %v, %v; want nil, nil", out, err)
	}
}

// TestMapErrorDeterminism checks the serial-equivalence guarantee for
// failures: with several failing jobs, every worker count reports the
// error of the lowest failing index — the one a serial loop would stop at.
func TestMapErrorDeterminism(t *testing.T) {
	failing := map[int]bool{13: true, 41: true, 77: true}
	for _, workers := range []int{1, 2, 4, 16} {
		for trial := 0; trial < 20; trial++ {
			_, err := sweep.Map(workers, 100, func(i int) (int, error) {
				if failing[i] {
					return 0, fmt.Errorf("job %d failed", i)
				}
				return i, nil
			})
			if err == nil || err.Error() != "job 13 failed" {
				t.Fatalf("workers=%d: got error %v, want job 13's", workers, err)
			}
		}
	}
}

func TestMapRunsEveryJobBelowFailure(t *testing.T) {
	var ran atomic.Int64
	_, err := sweep.Map(8, 50, func(i int) (int, error) {
		if i == 49 {
			return 0, errors.New("tail failure")
		}
		ran.Add(1)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 49 {
		t.Fatalf("ran %d jobs below the failing index, want 49", got)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := sweep.ForEach(4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

// runSummary is the full observable outcome of one simulator execution.
type runSummary struct {
	Name      string
	Leader    int
	Messages  int
	Steps     int
	TimeUnits float64
	PeakBits  int
	Err       string
}

// TestSweepDeterminism is the load-bearing guarantee of the package: a
// grid of real simulator executions run through Map produces *identical*
// results — same leaders, same message counts, same step counts, same
// ordering — at every worker count, including the degenerate serial pool.
func TestSweepDeterminism(t *testing.T) {
	type job struct {
		r    *ring.Ring
		k    int
		sync bool
	}
	var jobs []job
	for _, spec := range []string{"1 2 2", "1 3 1 3 2 2 1 2", "5 1 4 2 3"} {
		r, err := ring.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		k := 2
		if m := r.MaxMultiplicity(); m > k {
			k = m
		}
		jobs = append(jobs, job{r, k, false}, job{r, k, true})
	}
	for n := 6; n <= 18; n += 4 {
		jobs = append(jobs, job{ring.Distinct(n), 2, false}, job{ring.Distinct(n), 3, true})
	}

	exec := func(j job) runSummary {
		p, err := core.NewAProtocol(j.k, j.r.LabelBits())
		if err != nil {
			return runSummary{Err: err.Error()}
		}
		var res *sim.Result
		if j.sync {
			res, err = sim.RunSync(j.r, p, sim.Options{})
		} else {
			res, err = sim.RunAsync(j.r, p, sim.ConstantDelay(1), sim.Options{})
		}
		s := runSummary{Name: fmt.Sprintf("%s/k=%d/sync=%v", j.r, j.k, j.sync)}
		if err != nil {
			s.Err = err.Error()
			return s
		}
		s.Leader, s.Messages, s.Steps, s.TimeUnits, s.PeakBits =
			res.LeaderIndex, res.Messages, res.Steps, res.TimeUnits, res.PeakSpaceBits
		return s
	}

	var baseline []runSummary
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := sweep.Map(workers, len(jobs), func(i int) (runSummary, error) {
			return exec(jobs[i]), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			baseline = got
			for _, s := range baseline {
				if s.Err != "" {
					t.Fatalf("serial run failed: %s: %s", s.Name, s.Err)
				}
			}
			continue
		}
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("workers=%d results diverge from serial:\n got %+v\nwant %+v", workers, got, baseline)
		}
	}
}
