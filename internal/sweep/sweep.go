// Package sweep is the deterministic parallel fan-out engine for the
// repository's embarrassingly-parallel workloads: the experiment grids of
// internal/experiments run thousands of independent (ring, protocol, k, n,
// delay-model, seed) simulator executions, and internal/sim's schedule
// explorer expands independent configurations.
//
// The contract is strict determinism: Map runs jobs concurrently but
// returns their results in submission order, and on failure reports the
// error of the lowest-indexed failing job — so the output of a parallel
// sweep is byte-identical to the output of the same sweep run serially,
// regardless of worker count or scheduling. Callers may therefore flip
// between -par 1 and -par N freely; golden files and experiment tables do
// not change.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker-count request: values ≤ 0 mean "one
// worker per CPU" (runtime.NumCPU).
func DefaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// Map runs job(0), …, job(n-1) across at most workers goroutines and
// returns the results in index order. workers ≤ 0 selects
// runtime.NumCPU(); workers == 1 degenerates to a plain serial loop with
// no goroutines at all.
//
// Error semantics are deterministic: if any jobs fail, Map returns nil
// results and the error of the lowest failing index — exactly the error a
// serial loop stopping at the first failure would return. Jobs with
// indices above an already-observed failure may be skipped (never
// started), but every job below the failing index runs to completion, so
// the chosen error cannot depend on scheduling.
func Map[T any](workers, n int, job func(int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := job(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	out := make([]T, n)
	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Int64 // lowest failing index + 1; 0 = none
		wg     sync.WaitGroup
	)
	recordFailure := func(i int) {
		for {
			cur := failed.Load()
			if cur != 0 && cur <= int64(i)+1 {
				return
			}
			if failed.CompareAndSwap(cur, int64(i)+1) {
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Skip work that cannot affect the outcome: a lower
				// index has already failed, and its error wins.
				if f := failed.Load(); f != 0 && int64(i) > f-1 {
					continue
				}
				v, err := job(i)
				if err != nil {
					errs[i] = err
					recordFailure(i)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if f := failed.Load(); f != 0 {
		return nil, errs[f-1]
	}
	return out, nil
}

// ForEach is Map for jobs with no result value.
func ForEach(workers, n int, job func(int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, job(i)
	})
	return err
}

// ForEachWorker is ForEach with the executing goroutine's worker index
// passed to each job, for callers that bind per-worker resources — the
// serving layer hands each admission worker its own election scratch
// arena. Worker indices are in [0, effective-workers); which worker runs
// which item is scheduling-dependent, so jobs must treat the index as a
// resource slot, never as data. The serial path (workers == 1, or n == 1)
// always reports worker 0. Error semantics match Map: the lowest failing
// index wins.
func ForEachWorker(workers, n int, job func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := job(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Int64 // lowest failing index + 1; 0 = none
		wg     sync.WaitGroup
	)
	recordFailure := func(i int) {
		for {
			cur := failed.Load()
			if cur != 0 && cur <= int64(i)+1 {
				return
			}
			if failed.CompareAndSwap(cur, int64(i)+1) {
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if f := failed.Load(); f != 0 && int64(i) > f-1 {
					continue
				}
				if err := job(worker, i); err != nil {
					errs[i] = err
					recordFailure(i)
				}
			}
		}(w)
	}
	wg.Wait()
	if f := failed.Load(); f != 0 {
		return errs[f-1]
	}
	return nil
}
