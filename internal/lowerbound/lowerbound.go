// Package lowerbound makes the paper's negative results executable:
//
//   - Lemma 1's construction — from a distinct-label ring R_n build
//     R_{n,k}: the label sequence of R_n repeated k times followed by one
//     fresh label X, a member of U* ∩ Kk;
//   - the indistinguishability property (*) — for t ≤ j, process q_j of
//     R_{n,k} is in the same state as p_{j mod n} of R_n after t
//     synchronous steps, because no information from q_{kn} can have
//     reached q_j yet;
//   - Theorem 1's contradiction — an algorithm that terminates too fast on
//     R_n (T ≤ (k-2)n steps) must elect two leaders on R_{n,k}, a
//     violation of the specification caught by internal/spec;
//   - Corollary 2/4's bound — any correct algorithm for U* ∩ Kk (or
//     A ∩ Kk) spends at least 1+(k-2)n synchronous steps on every
//     distinct-label ring.
package lowerbound

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/spec"
)

// BuildRnk returns the Lemma 1 ring R_{n,k}: the labels of base repeated k
// times, followed by the single fresh label x. x must not occur in base,
// and base must have distinct labels for the lemma's argument (both are
// checked).
func BuildRnk(base *ring.Ring, k int, x ring.Label) (*ring.Ring, error) {
	if k < 1 {
		return nil, fmt.Errorf("lowerbound: k must be >= 1, got %d", k)
	}
	if base.MaxMultiplicity() != 1 {
		return nil, fmt.Errorf("lowerbound: base ring %s is not in K1", base)
	}
	if base.Multiplicity(x) != 0 {
		return nil, fmt.Errorf("lowerbound: fresh label %s occurs in base ring %s", x, base)
	}
	n := base.N()
	labels := make([]ring.Label, 0, k*n+1)
	for rep := 0; rep < k; rep++ {
		labels = append(labels, base.Labels()...)
	}
	labels = append(labels, x)
	return ring.New(labels)
}

// IndistinguishabilityReport is the outcome of CheckIndistinguishability.
type IndistinguishabilityReport struct {
	// StepsChecked is the number of synchronous steps compared (bounded by
	// the shorter execution and by kn-1, the largest j the property covers).
	StepsChecked int
	// PairsChecked counts the (j, t) state comparisons performed.
	PairsChecked int
	// BaseSteps is T: the length of the synchronous execution on the base
	// ring.
	BaseSteps int
}

// CheckIndistinguishability runs the synchronous executions of proto on
// base (R_n) and on R_{n,k}, and verifies property (*): for every
// j ∈ {0,…,kn-1} and every step t ≤ j, the state of q_j equals the state
// of p_{j mod n}. Machine fingerprints stand in for states. An error is
// returned on the first mismatch.
//
// proto must be correct on the base ring for its synchronous execution to
// be finite; the R_{n,k} run is truncated at the same horizon, so proto
// need not be correct there.
func CheckIndistinguishability(base *ring.Ring, k int, x ring.Label, proto core.Protocol, opts sim.Options) (*IndistinguishabilityReport, error) {
	big, err := BuildRnk(base, k, x)
	if err != nil {
		return nil, err
	}
	n := base.N()
	kn := k * n

	var baseStates [][]string // baseStates[t][i] = fingerprint of p_i after step t
	if _, err := sim.SyncProbe(base, proto, opts, func(step int, fps []string) bool {
		baseStates = append(baseStates, fps)
		return true
	}); err != nil {
		return nil, fmt.Errorf("lowerbound: base run failed: %w", err)
	}
	T := len(baseStates) - 1

	rep := &IndistinguishabilityReport{BaseSteps: T}
	horizon := min(T, kn-1)
	var mismatch error
	_, err = sim.SyncProbe(big, proto, opts, func(step int, fps []string) bool {
		if step > horizon {
			return false
		}
		rep.StepsChecked = step
		for j := step; j < kn; j++ { // property (*) holds for t ≤ j
			rep.PairsChecked++
			if fps[j] != baseStates[step][j%n] {
				mismatch = fmt.Errorf("lowerbound: property (*) fails at step %d: q_%d=%q vs p_%d=%q",
					step, j, fps[j], j%n, baseStates[step][j%n])
				return false
			}
		}
		return true
	})
	if err != nil && !errors.Is(err, sim.ErrMaxActions) {
		// A spec violation on R_{n,k} is expected when proto is incorrect
		// there (that is Theorem 1's point); only engine-level failures and
		// (*) mismatches are errors for this check.
		var v *spec.Violation
		if !errors.As(err, &v) {
			return rep, fmt.Errorf("lowerbound: R_{n,k} run failed: %w", err)
		}
	}
	if mismatch != nil {
		return rep, mismatch
	}
	return rep, nil
}

// TwoLeadersResult reports the Theorem 1 demonstration.
type TwoLeadersResult struct {
	// BaseSteps is T, the synchronous step count of proto on the base ring.
	BaseSteps int
	// K is the chosen repetition count with 1+(k-2)n > T.
	K int
	// RingSize is kn+1.
	RingSize int
	// Violation is the spec violation produced on R_{n,k} (nil if the
	// algorithm, unexpectedly, survived — e.g. because it genuinely knows a
	// large enough multiplicity bound).
	Violation *spec.Violation
}

// DemonstrateTwoLeaders plays out the proof of Theorem 1 for a concrete
// algorithm: measure T on the distinct-label base ring, pick
// k = ⌈T/n⌉ + 3 so that T ≤ (k-2)n, build R_{n,k}, and run the same
// algorithm there. If the algorithm's termination on the base ring did not
// genuinely depend on a correct multiplicity bound for R_{n,k}, two
// processes elect themselves and the specification checker reports the
// bullet 1 violation.
func DemonstrateTwoLeaders(base *ring.Ring, proto core.Protocol, fresh ring.Label, opts sim.Options) (*TwoLeadersResult, error) {
	baseRes, err := sim.RunSync(base, proto, opts)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: algorithm incorrect on base ring: %w", err)
	}
	n := base.N()
	T := baseRes.Steps
	k := (T+n-1)/n + 3 // 1+(k-2)n > T with margin
	out := &TwoLeadersResult{BaseSteps: T, K: k, RingSize: k*n + 1}

	big, err := BuildRnk(base, k, fresh)
	if err != nil {
		return nil, err
	}
	_, err = sim.RunSync(big, proto, opts)
	if err == nil {
		return out, nil // survived: no violation to report
	}
	var v *spec.Violation
	if errors.As(err, &v) {
		out.Violation = v
		return out, nil
	}
	return out, fmt.Errorf("lowerbound: R_{n,k} run failed for a non-spec reason: %w", err)
}

// MinStepsBound returns Lemma 1's lower bound on the synchronous step count
// of any leader-election algorithm for U* ∩ Kk when run on a distinct-label
// ring of n processes: 1 + (k-2)·n.
func MinStepsBound(n, k int) int { return 1 + (k-2)*n }
