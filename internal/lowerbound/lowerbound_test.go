package lowerbound_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/ring"
	"repro/internal/sim"
)

func TestBuildRnk(t *testing.T) {
	base := ring.Distinct(4) // [1 2 3 4]
	r, err := lowerbound.BuildRnk(base, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "[1 2 3 4 1 2 3 4 9]" {
		t.Errorf("R_{4,2} = %s", r)
	}
	if r.N() != 2*4+1 {
		t.Errorf("N = %d, want kn+1 = 9", r.N())
	}
	if !r.HasUniqueLabel() || !r.InKk(2) || !r.IsAsymmetric() {
		t.Errorf("R_{n,k} %s must be in U* ∩ K2 ∩ A", r)
	}
}

func TestBuildRnkValidation(t *testing.T) {
	base := ring.Distinct(4)
	if _, err := lowerbound.BuildRnk(base, 0, 9); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := lowerbound.BuildRnk(base, 2, 3); err == nil {
		t.Error("fresh label occurring in base must fail")
	}
	homonym := ring.MustNew(1, 1, 2)
	if _, err := lowerbound.BuildRnk(homonym, 2, 9); err == nil {
		t.Error("non-K1 base must fail")
	}
}

func TestIndistinguishabilityHoldsForAllAlgorithms(t *testing.T) {
	base := ring.Distinct(5)
	bits := ring.Label(99).Bits()
	mks := []func() (core.Protocol, error){
		func() (core.Protocol, error) { return core.NewAProtocol(3, bits) },
		func() (core.Protocol, error) { return core.NewStarProtocol(3, bits) },
		func() (core.Protocol, error) { return core.NewBProtocol(3, bits) },
	}
	for _, mk := range mks {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := lowerbound.CheckIndistinguishability(base, 3, 99, p, sim.Options{})
		if err != nil {
			t.Fatalf("%s: property (*) violated: %v", p.Name(), err)
		}
		if rep.PairsChecked == 0 || rep.StepsChecked == 0 {
			t.Fatalf("%s: nothing compared: %+v", p.Name(), rep)
		}
	}
}

func TestDemonstrateTwoLeaders(t *testing.T) {
	base := ring.Distinct(5)
	bits := ring.Label(999).Bits()
	for _, mk := range []func() (core.Protocol, error){
		func() (core.Protocol, error) { return core.NewAProtocol(2, bits) },
		func() (core.Protocol, error) { return core.NewStarProtocol(2, bits) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := lowerbound.DemonstrateTwoLeaders(base, p, 999, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation == nil {
			t.Fatalf("%s survived R_{n,%d} — Lemma 1 says it must elect two leaders", p.Name(), res.K)
		}
		if res.Violation.Bullet != 1 {
			t.Fatalf("%s: violation of bullet %d, want bullet 1 (two leaders)", p.Name(), res.Violation.Bullet)
		}
		if res.BaseSteps > (res.K-2)*base.N() {
			t.Fatalf("chosen k=%d does not satisfy T=%d ≤ (k-2)n", res.K, res.BaseSteps)
		}
	}
}

// TestLowerBoundHolds is Corollary 2 measured: algorithms that are correct
// for U* ∩ Kk (with the right k) spend ≥ 1+(k-2)n synchronous steps on
// distinct-label rings.
func TestLowerBoundHolds(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		r := ring.Distinct(n)
		for _, k := range []int{2, 3, 4, 5} {
			bound := lowerbound.MinStepsBound(n, k)
			for _, mk := range []func(int, int) (core.Protocol, error){
				func(k, b int) (core.Protocol, error) { return core.NewAProtocol(k, b) },
				func(k, b int) (core.Protocol, error) { return core.NewStarProtocol(k, b) },
				func(k, b int) (core.Protocol, error) { return core.NewBProtocol(k, b) },
			} {
				p, err := mk(k, r.LabelBits())
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.RunSync(r, p, sim.Options{})
				if err != nil {
					t.Fatalf("%s on %s: %v", p.Name(), r, err)
				}
				if res.Steps < bound {
					t.Errorf("%s on n=%d k=%d: %d steps < lower bound %d — contradicts Lemma 1",
						p.Name(), n, k, res.Steps, bound)
				}
			}
		}
	}
}

func TestMinStepsBound(t *testing.T) {
	if got := lowerbound.MinStepsBound(10, 2); got != 1 {
		t.Errorf("bound(10,2) = %d, want 1", got)
	}
	if got := lowerbound.MinStepsBound(10, 5); got != 31 {
		t.Errorf("bound(10,5) = %d, want 31", got)
	}
}
