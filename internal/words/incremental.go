package words

// Incremental maintains a sequence under appends together with its KMP
// failure table, so the smallest period (and hence srp) is available in
// O(1) after each append, with amortized O(1) append cost.
//
// Algorithm Ak appends one label per received token and re-evaluates its
// Leader(σ) predicate each time; recomputing the failure table from scratch
// would make the whole execution Θ(k²n³). Incremental keeps it Θ(kn²).
type Incremental[T comparable] struct {
	s    []T
	fail []int

	// CheckSRP memo: the smallest period at the last evaluation and the
	// verdict computed for it. Derived from s alone, so cloning copies it
	// and fingerprints may ignore it.
	memoPer int
	memoVal bool
}

// Append extends the sequence by x, updating the failure table online.
func (in *Incremental[T]) Append(x T) {
	i := len(in.s)
	in.s = append(in.s, x)
	if i == 0 {
		in.fail = append(in.fail, 0)
		return
	}
	j := in.fail[i-1]
	for j > 0 && x != in.s[j] {
		j = in.fail[j-1]
	}
	if x == in.s[j] {
		j++
	}
	in.fail = append(in.fail, j)
}

// Len returns the current sequence length.
func (in *Incremental[T]) Len() int { return len(in.s) }

// Seq returns the current sequence. The slice aliases internal storage and
// must not be mutated.
func (in *Incremental[T]) Seq() []T { return in.s }

// SmallestPeriod returns the smallest period of the current sequence (0 when
// empty), in O(1).
func (in *Incremental[T]) SmallestPeriod() int {
	n := len(in.s)
	if n == 0 {
		return 0
	}
	return n - in.fail[n-1]
}

// SRP returns the smallest repeating prefix of the current sequence. The
// slice aliases internal storage.
func (in *Incremental[T]) SRP() []T { return in.s[:in.SmallestPeriod()] }

// CheckSRP returns eval(SRP()), memoized on the smallest period. The
// sequence is append-only, so its smallest period is non-decreasing and
// srp is a function of the period alone; the previous verdict stays valid
// until the period moves. Algorithm Ak re-evaluates its Leader(σ) Lyndon
// test on every receive — recomputing IsLyndon(srp) each time is Θ(n) per
// message, while the memo makes the growing-prefix test amortized O(1):
// eval runs only when the period changes, at most once per distinct
// period. On an empty sequence CheckSRP returns false without invoking
// eval.
//
// eval must be a pure function of its argument; passing differently-
// behaving evaluators to the same Incremental invalidates the memo.
func (in *Incremental[T]) CheckSRP(eval func([]T) bool) bool {
	per := in.SmallestPeriod()
	if per != in.memoPer {
		in.memoPer = per
		in.memoVal = eval(in.s[:per])
	}
	return in.memoVal
}

// Reset empties the sequence while retaining the backing arrays of the
// sequence and its failure table, so a pooled machine's next execution
// appends without reallocating (internal/sim.Scratch).
func (in *Incremental[T]) Reset() {
	in.s = in.s[:0]
	in.fail = in.fail[:0]
	in.memoPer = 0
	in.memoVal = false
}

// Clone returns an independent copy: appends to either side do not affect
// the other.
func (in *Incremental[T]) Clone() Incremental[T] {
	cp := *in
	cp.s = make([]T, len(in.s))
	cp.fail = make([]int, len(in.fail))
	copy(cp.s, in.s)
	copy(cp.fail, in.fail)
	return cp
}
