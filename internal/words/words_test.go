package words

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// bruteSmallestPeriod is the definition: the least p ≥ 1 with
// s[i] == s[i%p] for all i.
func bruteSmallestPeriod(s []byte) int {
	if len(s) == 0 {
		return 0
	}
	for p := 1; p <= len(s); p++ {
		ok := true
		for i := range s {
			if s[i] != s[i%p] {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return len(s)
}

// bruteLeastRotationIndex compares all rotations pairwise.
func bruteLeastRotationIndex(s []byte) int {
	best := 0
	for d := 1; d < len(s); d++ {
		if Compare(Rotate(s, d), Rotate(s, best)) < 0 {
			best = d
		}
	}
	return best
}

// bruteIsLyndon is the definition: strictly smaller than every non-trivial
// rotation.
func bruteIsLyndon(s []byte) bool {
	if len(s) == 0 {
		return false
	}
	for d := 1; d < len(s); d++ {
		if Compare(s, Rotate(s, d)) >= 0 {
			return false
		}
	}
	return true
}

func TestSmallestPeriodTable(t *testing.T) {
	cases := []struct {
		s    string
		want int
	}{
		{"", 0},
		{"a", 1},
		{"aa", 1},
		{"ab", 2},
		{"aba", 2},
		{"abab", 2},
		{"ababa", 2},
		// Note the paper's truncation semantics: "abaab" is a truncation of
		// "aba·aba", so its smallest repeating prefix is "aba".
		{"abaab", 3},
		{"abcabcab", 3},
		{"aabaabaa", 3},
		{"abba", 3},
		{"abcde", 5},
	}
	for _, c := range cases {
		if got := SmallestPeriod([]byte(c.s)); got != c.want {
			t.Errorf("SmallestPeriod(%q) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestSmallestPeriodExhaustive(t *testing.T) {
	// Every binary string up to length 14.
	for n := 1; n <= 14; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte('a' + (mask>>i)&1)
			}
			if got, want := SmallestPeriod(s), bruteSmallestPeriod(s); got != want {
				t.Fatalf("SmallestPeriod(%q) = %d, want %d", s, got, want)
			}
		}
	}
}

func TestSmallestPeriodQuick(t *testing.T) {
	f := func(s []byte) bool {
		return SmallestPeriod(s) == bruteSmallestPeriod(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSmallestRepeatingPrefixReconstructs(t *testing.T) {
	f := func(s []byte) bool {
		p := SmallestRepeatingPrefix(s)
		if len(s) == 0 {
			return len(p) == 0
		}
		for i := range s {
			if s[i] != p[i%len(p)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsPeriod(t *testing.T) {
	s := []byte("abcabcab")
	for p, want := range map[int]bool{-1: false, 0: false, 1: false, 2: false, 3: true, 6: true, 7: false, 8: true, 9: true} {
		if got := IsPeriod(s, p); got != want {
			t.Errorf("IsPeriod(%q, %d) = %t, want %t", s, p, got, want)
		}
	}
}

func TestPeriodsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(30)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte('a' + rng.Intn(3))
		}
		var want []int
		for p := 1; p <= n; p++ {
			if IsPeriod(s, p) {
				want = append(want, p)
			}
		}
		if got := Periods(s); !reflect.DeepEqual(got, want) {
			t.Fatalf("Periods(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestRotate(t *testing.T) {
	s := []byte("abcde")
	if got := string(Rotate(s, 2)); got != "cdeab" {
		t.Errorf("Rotate(abcde, 2) = %q, want cdeab", got)
	}
	if got := string(Rotate(s, -1)); got != "eabcd" {
		t.Errorf("Rotate(abcde, -1) = %q, want eabcd", got)
	}
	if got := string(Rotate(s, 5)); got != "abcde" {
		t.Errorf("Rotate(abcde, 5) = %q, want abcde", got)
	}
	if Rotate([]byte(nil), 3) != nil {
		t.Error("Rotate(nil) should be nil")
	}
}

func TestRotateComposition(t *testing.T) {
	f := func(s []byte, a, b int8) bool {
		if len(s) == 0 {
			return true
		}
		lhs := Rotate(Rotate(s, int(a)), int(b))
		rhs := Rotate(s, int(a)+int(b))
		return reflect.DeepEqual(lhs, rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "a", -1},
		{"abc", "abc", 0}, {"abc", "abd", -1}, {"abd", "abc", 1},
		{"ab", "abc", -1}, {"abc", "ab", 1},
	}
	for _, c := range cases {
		if got := Compare([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("Compare(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLeastRotationIndexExhaustive(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte('a' + (mask>>i)&1)
			}
			got, want := LeastRotationIndex(s), bruteLeastRotationIndex(s)
			if got != want {
				// Both must at least denote the same (equal-least) rotation,
				// and Booth returns the smallest such index.
				t.Fatalf("LeastRotationIndex(%q) = %d, want %d", s, got, want)
			}
		}
	}
}

// TestLeastRotationIndexInto pins the scratch-reuse variant: identical
// answers to the allocating form whether the scratch is absent, short, or
// dirty from a previous (larger) call, and zero allocations once the
// scratch is big enough — the contract the ringd cache-hit path relies on.
func TestLeastRotationIndexInto(t *testing.T) {
	scratch := make([]int, 64) // deliberately dirty between uses
	for n := 1; n <= 10; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte('a' + (mask>>i)&1)
			}
			want := LeastRotationIndex(s)
			if got := LeastRotationIndexInto(s, scratch); got != want {
				t.Fatalf("LeastRotationIndexInto(%q, big scratch) = %d, want %d", s, got, want)
			}
			if got := LeastRotationIndexInto(s, scratch[:0:1]); got != want {
				t.Fatalf("LeastRotationIndexInto(%q, short scratch) = %d, want %d", s, got, want)
			}
			if got := LeastRotationIndexInto(s, nil); got != want {
				t.Fatalf("LeastRotationIndexInto(%q, nil) = %d, want %d", s, got, want)
			}
		}
	}
	s := []byte("cabbacabba")
	allocs := testing.AllocsPerRun(100, func() {
		LeastRotationIndexInto(s, scratch)
	})
	if allocs != 0 {
		t.Errorf("LeastRotationIndexInto with sufficient scratch allocates %v per run, want 0", allocs)
	}
}

func TestLeastRotationIndexQuick(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return LeastRotationIndex(raw) == 0
		}
		// Shrink the alphabet to make ties common.
		s := make([]byte, len(raw))
		for i, b := range raw {
			s[i] = 'a' + b%3
		}
		return LeastRotationIndex(s) == bruteLeastRotationIndex(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIsPrimitive(t *testing.T) {
	cases := map[string]bool{
		"a": true, "ab": true, "aa": false, "abab": false,
		"aba": true, "abcabc": false, "abcab": true, "aab": true,
	}
	for s, want := range cases {
		if got := IsPrimitive([]byte(s)); got != want {
			t.Errorf("IsPrimitive(%q) = %t, want %t", s, got, want)
		}
	}
	if IsPrimitive([]byte{}) {
		t.Error("empty sequence must not be primitive")
	}
}

func TestIsLyndonTable(t *testing.T) {
	lyndon := []string{"a", "ab", "aab", "abb", "aabb", "aabab", "abc", "aabac"}
	notLyndon := []string{"", "aa", "ba", "aba", "abab", "bab", "abaab"}
	for _, s := range lyndon {
		if !IsLyndon([]byte(s)) {
			t.Errorf("IsLyndon(%q) = false, want true", s)
		}
	}
	for _, s := range notLyndon {
		if IsLyndon([]byte(s)) {
			t.Errorf("IsLyndon(%q) = true, want false", s)
		}
	}
}

func TestIsLyndonExhaustive(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte('a' + (mask>>i)&1)
			}
			if got, want := IsLyndon(s), bruteIsLyndon(s); got != want {
				t.Fatalf("IsLyndon(%q) = %t, want %t", s, got, want)
			}
		}
	}
}

func TestLyndonRotation(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			_, ok := LyndonRotation(raw)
			return !ok
		}
		s := make([]byte, len(raw))
		for i, b := range raw {
			s[i] = 'a' + b%3
		}
		lw, ok := LyndonRotation(s)
		if !IsPrimitive(s) {
			return !ok
		}
		if !ok || !IsLyndon(lw) {
			return false
		}
		// lw must be a rotation of s.
		for d := 0; d < len(s); d++ {
			if reflect.DeepEqual(Rotate(s, d), lw) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCounts(t *testing.T) {
	s := []byte("abracadabra")
	if got := CountOf(s, byte('a')); got != 5 {
		t.Errorf("CountOf = %d, want 5", got)
	}
	if got := CountOf(s, byte('z')); got != 0 {
		t.Errorf("CountOf(z) = %d, want 0", got)
	}
	if got := MaxCount(s); got != 5 {
		t.Errorf("MaxCount = %d, want 5", got)
	}
	if got := MaxCount([]byte{}); got != 0 {
		t.Errorf("MaxCount(empty) = %d, want 0", got)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {7, 13, 1}, {9, 9, 9},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestFineWilfTheorem verifies the theorem itself on random instances:
// whenever FineWilf(n, p, q) reports applicability and a string of length n
// has periods p and q, it has period gcd(p, q).
func TestFineWilfTheorem(t *testing.T) {
	if !FineWilf(10, 4, 6) || FineWilf(7, 4, 6) {
		t.Fatal("FineWilf threshold wrong: want n >= p+q-gcd")
	}
	if FineWilf(10, 0, 5) || FineWilf(10, 5, -1) {
		t.Fatal("FineWilf must reject non-positive periods")
	}
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 20000 && checked < 300; trial++ {
		n := 2 + rng.Intn(16)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte('a' + rng.Intn(2))
		}
		ps := Periods(s)
		for _, p := range ps {
			for _, q := range ps {
				if p >= n || q >= n || !FineWilf(n, p, q) {
					continue
				}
				checked++
				if !IsPeriod(s, GCD(p, q)) {
					t.Fatalf("Fine–Wilf fails on %q with periods %d, %d", s, p, q)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no Fine–Wilf instances exercised")
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var inc Incremental[byte]
		var s []byte
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			c := byte('a' + rng.Intn(3))
			inc.Append(c)
			s = append(s, c)
			if inc.Len() != len(s) {
				t.Fatalf("Len = %d, want %d", inc.Len(), len(s))
			}
			if got, want := inc.SmallestPeriod(), SmallestPeriod(s); got != want {
				t.Fatalf("incremental period %d != batch %d on %q", got, want, s)
			}
			if got, want := string(inc.SRP()), string(SmallestRepeatingPrefix(s)); got != want {
				t.Fatalf("incremental srp %q != batch %q", got, want)
			}
		}
	}
}

func TestIncrementalEmpty(t *testing.T) {
	var inc Incremental[int]
	if inc.Len() != 0 || inc.SmallestPeriod() != 0 || len(inc.SRP()) != 0 {
		t.Fatal("zero-value Incremental must behave as empty sequence")
	}
}
