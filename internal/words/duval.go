package words

import "cmp"

// LyndonFactorization returns the Chen–Fox–Lyndon factorization of s —
// the unique decomposition s = w1 w2 … wm into Lyndon words with
// w1 ≥ w2 ≥ … ≥ wm — computed with Duval's algorithm in O(len(s)) time.
// The returned slices alias s.
//
// It provides an independent oracle for the Lyndon-word machinery the
// election algorithms rely on: s is a Lyndon word exactly when its
// factorization is the single factor s, and the least rotation of a
// primitive s starts the factorization of ss at the appropriate point —
// both cross-checked in the tests against Booth's algorithm.
func LyndonFactorization[T cmp.Ordered](s []T) [][]T {
	var out [][]T
	n := len(s)
	i := 0
	for i < n {
		j, k := i+1, i
		for j < n && s[k] <= s[j] {
			if s[k] < s[j] {
				k = i // still extending one long pre-Lyndon run
			} else {
				k++
			}
			j++
		}
		for i <= k {
			out = append(out, s[i:i+j-k])
			i += j - k
		}
	}
	return out
}

// IsLyndonDuval reports whether s is a Lyndon word using the
// factorization route (a second implementation, used to cross-check
// IsLyndon in tests).
func IsLyndonDuval[T cmp.Ordered](s []T) bool {
	if len(s) == 0 {
		return false
	}
	f := LyndonFactorization(s)
	return len(f) == 1
}
