package words_test

import (
	"fmt"

	"repro/internal/words"
)

// A Lyndon word is strictly smaller than all of its rotations; the true
// leader of an asymmetric ring is the process whose label window is one.
func ExampleIsLyndon() {
	fmt.Println(words.IsLyndon([]byte("aab")))
	fmt.Println(words.IsLyndon([]byte("aba")))  // rotation of aab, not minimal
	fmt.Println(words.IsLyndon([]byte("abab"))) // not primitive
	// Output:
	// true
	// false
	// false
}

// srp(σ) is the shortest prefix whose infinite repetition, truncated,
// yields σ — the quantity algorithm Ak extracts the ring from.
func ExampleSmallestRepeatingPrefix() {
	seq := []byte("abbabbabba") // LLabels prefix of the ring a-b-b, wrapped
	fmt.Printf("%s\n", words.SmallestRepeatingPrefix(seq))
	// Output:
	// abb
}

// LeastRotation is Booth's algorithm; combined with primitivity it decides
// leadership.
func ExampleLeastRotation() {
	fmt.Printf("%s\n", words.LeastRotation([]byte("bcab")))
	// Output:
	// abbc
}

// The Chen–Fox–Lyndon factorization decomposes any word into a
// non-increasing sequence of Lyndon words.
func ExampleLyndonFactorization() {
	for _, f := range words.LyndonFactorization([]byte("banana")) {
		fmt.Printf("%s ", f)
	}
	fmt.Println()
	// Output:
	// b an an a
}
