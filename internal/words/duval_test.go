package words

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLyndonFactorizationTable(t *testing.T) {
	cases := []struct {
		s    string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"aaa", []string{"a", "a", "a"}},
		{"ab", []string{"ab"}},
		{"ba", []string{"b", "a"}},
		{"aab", []string{"aab"}},
		{"aba", []string{"ab", "a"}},
		{"bbaaab", []string{"b", "b", "aaab"}},
		{"abab", []string{"ab", "ab"}},
		{"cba", []string{"c", "b", "a"}},
		{"banana", []string{"b", "an", "an", "a"}},
	}
	for _, c := range cases {
		got := LyndonFactorization([]byte(c.s))
		var gotStr []string
		for _, f := range got {
			gotStr = append(gotStr, string(f))
		}
		if !reflect.DeepEqual(gotStr, c.want) {
			t.Errorf("LyndonFactorization(%q) = %v, want %v", c.s, gotStr, c.want)
		}
	}
}

// TestFactorizationInvariants checks the defining properties on random
// inputs: factors concatenate to the input, every factor is a Lyndon word
// (per the brute-force definition), and factors are non-increasing.
func TestFactorizationInvariants(t *testing.T) {
	f := func(raw []byte) bool {
		s := make([]byte, len(raw))
		for i, b := range raw {
			s[i] = 'a' + b%3
		}
		factors := LyndonFactorization(s)
		var rebuilt []byte
		for _, w := range factors {
			rebuilt = append(rebuilt, w...)
			if !bruteIsLyndon(w) {
				return false
			}
		}
		if !reflect.DeepEqual(rebuilt, s) && !(len(s) == 0 && len(rebuilt) == 0) {
			return false
		}
		for i := 1; i < len(factors); i++ {
			if Compare(factors[i-1], factors[i]) < 0 {
				return false // must be non-increasing
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestIsLyndonImplementationsAgree cross-checks Duval against the
// Booth/primitivity implementation exhaustively and randomly.
func TestIsLyndonImplementationsAgree(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			s := make([]byte, n)
			for i := range s {
				s[i] = byte('a' + (mask>>i)&1)
			}
			if IsLyndon(s) != IsLyndonDuval(s) {
				t.Fatalf("implementations disagree on %q", s)
			}
		}
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(40)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte('a' + rng.Intn(4))
		}
		if IsLyndon(s) != IsLyndonDuval(s) {
			t.Fatalf("implementations disagree on %q", s)
		}
	}
	if IsLyndonDuval([]byte{}) {
		t.Error("empty sequence is not Lyndon")
	}
}
