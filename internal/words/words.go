// Package words implements the combinatorics-on-words substrate used by the
// leader-election algorithms of Altisen et al. (IPPS 2017): smallest
// repeating prefixes (srp), Lyndon words, least rotations (Booth's
// algorithm), and periodicity reasoning based on the Fine–Wilf theorem.
//
// A sequence σ of length λ has "repeating prefix" π = σ_m (the prefix of
// length m) when σ[i] = π[1 + (i-1) mod m] for all 1 ≤ i ≤ λ (paper §IV,
// one-based). Equivalently, m is a period of σ in the classical sense:
// σ[i] = σ[i+m] for every i with i+m ≤ λ. srp(σ) is the repeating prefix of
// minimum length.
package words

import "cmp"

// SmallestPeriod returns the length of the smallest repeating prefix of s,
// i.e. the smallest p ≥ 1 such that s[i] == s[i%p] for all i. For an empty
// sequence it returns 0.
//
// It runs in O(len(s)) time using the Knuth–Morris–Pratt failure function.
func SmallestPeriod[T comparable](s []T) int {
	if len(s) == 0 {
		return 0
	}
	fail := FailureFunction(s)
	return len(s) - fail[len(s)-1]
}

// SmallestRepeatingPrefix returns srp(s): the shortest prefix π of s such
// that s is a truncation of πππ…. The result aliases s's backing array.
func SmallestRepeatingPrefix[T comparable](s []T) []T {
	return s[:SmallestPeriod(s)]
}

// FailureFunction returns the KMP failure (border) table for s: fail[i] is
// the length of the longest proper prefix of s[:i+1] that is also a suffix
// of s[:i+1].
func FailureFunction[T comparable](s []T) []int {
	fail := make([]int, len(s))
	for i := 1; i < len(s); i++ {
		j := fail[i-1]
		for j > 0 && s[i] != s[j] {
			j = fail[j-1]
		}
		if s[i] == s[j] {
			j++
		}
		fail[i] = j
	}
	return fail
}

// IsPeriod reports whether p is a period of s: s[i] == s[i+p] for every
// valid i. By convention any p ≥ len(s) (and p ≥ 1) is a period, and p ≤ 0
// is not.
func IsPeriod[T comparable](s []T, p int) bool {
	if p <= 0 {
		return false
	}
	for i := 0; i+p < len(s); i++ {
		if s[i] != s[i+p] {
			return false
		}
	}
	return true
}

// Periods returns every period of s in increasing order, including len(s)
// itself (the trivial period) when s is non-empty. Runs in O(len(s)) via the
// border chain.
func Periods[T comparable](s []T) []int {
	n := len(s)
	if n == 0 {
		return nil
	}
	fail := FailureFunction(s)
	// Borders of s are fail[n-1], fail[fail[n-1]-1], …; each border of
	// length b yields the period n-b.
	// Borders come out longest-first, so periods n-b come out ascending.
	var periods []int
	for b := fail[n-1]; b > 0; b = fail[b-1] {
		periods = append(periods, n-b)
	}
	return append(periods, n)
}

// Rotate returns the rotation of s starting at index d, i.e.
// s[d], s[d+1], …, s[d-1]. d is taken modulo len(s). The result is a fresh
// slice.
func Rotate[T any](s []T, d int) []T {
	n := len(s)
	if n == 0 {
		return nil
	}
	d = ((d % n) + n) % n
	out := make([]T, n)
	copy(out, s[d:])
	copy(out[n-d:], s[:d])
	return out
}

// Compare lexicographically compares a and b element-wise; shorter prefixes
// order first on ties, matching the usual word order.
func Compare[T cmp.Ordered](a, b []T) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := cmp.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmp.Compare(len(a), len(b))
}

// LeastRotationIndex returns the start index of the lexicographically least
// rotation of s using Booth's algorithm in O(len(s)) time. For the empty
// sequence it returns 0. When several rotations are equal-least (s is a
// power of a shorter word) the smallest such index is returned.
func LeastRotationIndex[T cmp.Ordered](s []T) int {
	return LeastRotationIndexInto[T](s, nil)
}

// LeastRotationIndexInto is LeastRotationIndex with caller-supplied scratch
// for Booth's failure table: when cap(scratch) ≥ 2·len(s) the computation
// performs no allocation, which is what the ringd cache-hit path relies on.
// A short (or nil) scratch falls back to allocating internally; the contents
// of scratch are overwritten either way.
func LeastRotationIndexInto[T cmp.Ordered](s []T, scratch []int) int {
	n := len(s)
	if n == 0 {
		return 0
	}
	// Booth's algorithm over the doubled sequence, without materializing it.
	at := func(i int) T { return s[i%n] }
	var f []int // failure table of the least rotation candidate
	if cap(scratch) >= 2*n {
		f = scratch[:2*n]
	} else {
		f = make([]int, 2*n)
	}
	for i := range f {
		f[i] = -1
	}
	k := 0
	for j := 1; j < 2*n; j++ {
		sj := at(j)
		i := f[j-k-1]
		for i != -1 && sj != at(k+i+1) {
			if sj < at(k+i+1) {
				k = j - i - 1
			}
			i = f[i]
		}
		if sj != at(k+i+1) { // i == -1 here
			if sj < at(k) { // k+i+1 == k
				k = j
			}
			f[j-k] = -1
		} else {
			f[j-k] = i + 1
		}
	}
	return k
}

// LeastRotation returns the lexicographically least rotation of s as a fresh
// slice.
func LeastRotation[T cmp.Ordered](s []T) []T {
	return Rotate(s, LeastRotationIndex(s))
}

// IsPrimitive reports whether s is primitive: not expressible as u^j for any
// shorter word u and j ≥ 2. Equivalently, no divisor of len(s) smaller than
// len(s) is a period.
func IsPrimitive[T comparable](s []T) bool {
	n := len(s)
	if n == 0 {
		return false
	}
	p := SmallestPeriod(s)
	return p == n || n%p != 0
}

// IsLyndon reports whether s is a Lyndon word: non-empty and strictly
// smaller, in lexicographic order, than all of its non-trivial rotations
// (Lyndon 1954, as used by the paper's true-leader definition).
func IsLyndon[T cmp.Ordered](s []T) bool {
	if len(s) == 0 {
		return false
	}
	return IsPrimitive(s) && LeastRotationIndex(s) == 0
}

// LyndonRotation returns LW(s): the rotation of s that is a Lyndon word,
// and true on success. When s is not primitive no rotation is Lyndon and it
// returns (nil, false).
func LyndonRotation[T cmp.Ordered](s []T) ([]T, bool) {
	if !IsPrimitive(s) {
		return nil, false
	}
	return LeastRotation(s), true
}

// LyndonScratch returns a scratch slice large enough for the *Into Lyndon
// tests on length-n sequences (2n ints, Booth's doubled-sequence table),
// reusing scratch's backing array when it already is. The election kernel's
// machines hold one such slice each and grow it across pooled runs.
func LyndonScratch(scratch []int, n int) []int {
	if cap(scratch) < 2*n {
		return make([]int, 2*n)
	}
	return scratch[:2*n]
}

// failureInto computes the KMP failure table of s into scratch when
// cap(scratch) ≥ len(s), allocating otherwise. Unlike FailureFunction the
// scratch contents are arbitrary on entry, so every cell is written.
func failureInto[T comparable](s []T, scratch []int) []int {
	n := len(s)
	var fail []int
	if cap(scratch) >= n {
		fail = scratch[:n]
	} else {
		fail = make([]int, n)
	}
	fail[0] = 0
	for i := 1; i < n; i++ {
		j := fail[i-1]
		for j > 0 && s[i] != s[j] {
			j = fail[j-1]
		}
		if s[i] == s[j] {
			j++
		}
		fail[i] = j
	}
	return fail
}

// IsLyndonInto is IsLyndon with caller-supplied scratch (LyndonScratch
// sizes it): when cap(scratch) ≥ 2·len(s) the test performs no allocation.
// The scratch contents are overwritten.
func IsLyndonInto[T cmp.Ordered](s []T, scratch []int) bool {
	n := len(s)
	if n == 0 {
		return false
	}
	fail := failureInto(s, scratch)
	if p := n - fail[n-1]; p != n && n%p == 0 {
		return false // not primitive
	}
	return LeastRotationIndexInto(s, scratch) == 0
}

// LyndonRotationStart is the index form of LyndonRotation with
// caller-supplied scratch: it returns the start index of LW(s) within s and
// true, or (0, false) when s is not primitive. Allocation-free when
// cap(scratch) ≥ 2·len(s).
func LyndonRotationStart[T cmp.Ordered](s []T, scratch []int) (int, bool) {
	n := len(s)
	if n == 0 {
		return 0, false
	}
	fail := failureInto(s, scratch)
	if p := n - fail[n-1]; p != n && n%p == 0 {
		return 0, false
	}
	return LeastRotationIndexInto(s, scratch), true
}

// CountOf returns the number of occurrences of v in s.
func CountOf[T comparable](s []T, v T) int {
	c := 0
	for _, x := range s {
		if x == v {
			c++
		}
	}
	return c
}

// MaxCount returns the highest occurrence count of any value in s (0 for an
// empty sequence).
func MaxCount[T comparable](s []T) int {
	counts := make(map[T]int, len(s))
	best := 0
	for _, x := range s {
		counts[x]++
		if counts[x] > best {
			best = counts[x]
		}
	}
	return best
}

// GCD returns the greatest common divisor of a and b (non-negative inputs;
// GCD(0, b) = b).
func GCD(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// FineWilf reports whether the Fine–Wilf theorem applies to periods p and q
// over a sequence of length n: when n ≥ p + q - gcd(p, q), any sequence with
// periods p and q also has period gcd(p, q).
func FineWilf(n, p, q int) bool {
	if p <= 0 || q <= 0 {
		return false
	}
	return n >= p+q-GCD(p, q)
}
