// Package netring executes a core.Protocol as N OS-level nodes connected
// in a unidirectional ring by real TCP links — the third engine, after the
// deterministic simulator (internal/sim) and the goroutine runtime
// (internal/gorun). Where those engines *assume* the model's reliable FIFO
// links, this one *implements* them: a length-prefixed versioned wire
// protocol frames every core.Message, per-frame sequence numbers enforce
// exactly-once in-order delivery (any gap is a hard spec.LinkViolation),
// and a retransmitting sender with exponential backoff plus jitter
// survives dial failures and transient connection drops without breaking
// FIFO order.
//
// RunLocal launches all nodes in-process on loopback sockets and checks
// the full election specification (internal/spec), exactly like the other
// engines — E10 cross-validates all three. RunNode runs a single node, the
// building block of cmd/ringnode for genuinely multi-process rings.
package netring

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/secure"
)

// wireVersion is the protocol version carried in every frame header.
// Nodes reject frames from any other version. Version 2 extended HELLO
// with the sender's resume base sequence number (crash recovery) and
// added GOODBYE_ACK. Version 3 widened DATA with the randomized-election
// message fields (round, hop, flags).
const wireVersion = 3

// maxFrameBody bounds the body length a receiver accepts; every frame the
// protocol defines is far smaller, so anything larger is a corrupt or
// hostile stream.
//
// This is a *plaintext* budget. On an encrypted link the frame stream is
// carried inside secure-layer records, which add AEAD expansion
// (secure.Overhead tag bytes per record; the nonce is an implicit
// counter and costs nothing on the wire). The two budgets are
// deliberately distinct: readFrameInto and the pooled
// [4+maxFrameBody]byte scratch keep sizing against the plaintext bound,
// while the record layer sizes its receive scratch and rejection
// threshold against maxPlainRecord+secure.Overhead — so a maximally
// batched sealed record is never rejected as oversized, and a sealed
// record beyond the budget is rejected before it is buffered.
const maxFrameBody = 64

// maxPlainRecord is the largest plaintext one secure-layer record may
// carry on a ring link: a full sender batch of maximum-size frames,
// each with its 4-byte length prefix. A sealed record on the wire is at
// most maxPlainRecord+secure.Overhead bytes.
const maxPlainRecord = maxWriteBatch * (4 + maxFrameBody)

// frameType tags the wire vocabulary.
type frameType uint8

const (
	// frameHello opens a connection: the dialing predecessor identifies
	// itself and the ring it believes it is part of.
	frameHello frameType = 1
	// frameHelloAck completes the handshake: the listener tells the sender
	// the next sequence number it expects, which doubles as the resume
	// point after a reconnect.
	frameHelloAck frameType = 2
	// frameData carries one core.Message with its link sequence number.
	frameData frameType = 3
	// frameGoodbye announces a clean shutdown: the sender has halted and
	// Seq frames were sent in total, so the receiver can distinguish
	// termination from a transient drop.
	frameGoodbye frameType = 4
	// frameGoodbyeAck confirms a GOODBYE: the receiver has accepted the
	// sender's total and — in durable mode — persisted the fact, so the
	// sender may safely record its outgoing link as finished. Senders
	// without durable state ignore it.
	frameGoodbyeAck frameType = 5
)

// String names the frame type for diagnostics.
func (t frameType) String() string {
	switch t {
	case frameHello:
		return "HELLO"
	case frameHelloAck:
		return "HELLO_ACK"
	case frameData:
		return "DATA"
	case frameGoodbye:
		return "GOODBYE"
	case frameGoodbyeAck:
		return "GOODBYE_ACK"
	default:
		return fmt.Sprintf("FRAME(%d)", uint8(t))
	}
}

// frame is the decoded form of one wire frame. Fields beyond Type are
// populated according to the type, mirroring the encoding below.
type frame struct {
	Type frameType

	// frameHello
	Sender   int    // ring index of the dialing node
	Target   int    // ring index the dialer believes it is connecting to
	N        int    // ring size
	RingHash uint64 // fingerprint of the full label sequence
	BaseSeq  uint64 // lowest sequence number the dialer can still retransmit

	// frameHelloAck, frameGoodbye, and frameGoodbyeAck
	NextSeq uint64 // next expected (ack) / total sent (goodbye)

	// frameData
	Seq uint64
	Msg core.Message
}

// Body layouts (after the 4-byte big-endian length prefix). Every body
// starts with version and type; the rest is type-specific:
//
//	HELLO:       ver(1) type(1) sender(4) target(4) n(4) ringHash(8) baseSeq(8)       = 30
//	HELLO_ACK:   ver(1) type(1) nextSeq(8)                                            = 10
//	DATA:        ver(1) type(1) seq(8) kind(1) label(8) round(4) hop(4) flags(1)      = 28
//	GOODBYE:     ver(1) type(1) totalSent(8)                                          = 10
//	GOODBYE_ACK: ver(1) type(1) nextSeq(8)                                            = 10
//
// HELLO's baseSeq is the RESUME extension: a freshly started sender says
// 0 (it holds everything); a crash-recovered sender says the persisted
// base of its retransmit queue, so the receiver can detect — rather than
// hang on — a predecessor that can no longer supply the frames it needs.
// DATA's round/hop/flags carry the randomized-election message fields
// (internal/rand); the deterministic protocols send them as zero.
const (
	helloLen      = 30
	helloAckLen   = 10
	dataLen       = 28
	goodbyeLen    = 10
	goodbyeAckLen = 10
)

// appendFrame appends the length-prefixed encoding of f to dst.
func appendFrame(dst []byte, f frame) []byte {
	var body [maxFrameBody]byte
	body[0] = wireVersion
	body[1] = byte(f.Type)
	var n int
	switch f.Type {
	case frameHello:
		binary.BigEndian.PutUint32(body[2:], uint32(f.Sender))
		binary.BigEndian.PutUint32(body[6:], uint32(f.Target))
		binary.BigEndian.PutUint32(body[10:], uint32(f.N))
		binary.BigEndian.PutUint64(body[14:], f.RingHash)
		binary.BigEndian.PutUint64(body[22:], f.BaseSeq)
		n = helloLen
	case frameHelloAck:
		binary.BigEndian.PutUint64(body[2:], f.NextSeq)
		n = helloAckLen
	case frameData:
		binary.BigEndian.PutUint64(body[2:], f.Seq)
		body[10] = byte(f.Msg.Kind)
		binary.BigEndian.PutUint64(body[11:], uint64(int64(f.Msg.Label)))
		binary.BigEndian.PutUint32(body[19:], f.Msg.Round)
		binary.BigEndian.PutUint32(body[23:], f.Msg.Hop)
		if f.Msg.Flag {
			body[27] = 1
		} else {
			body[27] = 0
		}
		n = dataLen
	case frameGoodbye:
		binary.BigEndian.PutUint64(body[2:], f.NextSeq)
		n = goodbyeLen
	case frameGoodbyeAck:
		binary.BigEndian.PutUint64(body[2:], f.NextSeq)
		n = goodbyeAckLen
	default:
		panic(fmt.Sprintf("netring: encoding unknown frame type %d", f.Type))
	}
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], uint32(n))
	dst = append(dst, pfx[:]...)
	return append(dst, body[:n]...)
}

// decodeFrame parses one frame body (the bytes after the length prefix).
// It never panics: malformed input — wrong version, unknown type or kind,
// wrong length for the type — is an error.
func decodeFrame(body []byte) (frame, error) {
	if len(body) < 2 {
		return frame{}, fmt.Errorf("netring: frame body too short (%d bytes)", len(body))
	}
	if body[0] != wireVersion {
		return frame{}, fmt.Errorf("netring: wire version %d, want %d", body[0], wireVersion)
	}
	f := frame{Type: frameType(body[1])}
	switch f.Type {
	case frameHello:
		if len(body) != helloLen {
			return frame{}, fmt.Errorf("netring: HELLO body %d bytes, want %d", len(body), helloLen)
		}
		f.Sender = int(int32(binary.BigEndian.Uint32(body[2:])))
		f.Target = int(int32(binary.BigEndian.Uint32(body[6:])))
		f.N = int(int32(binary.BigEndian.Uint32(body[10:])))
		f.RingHash = binary.BigEndian.Uint64(body[14:])
		f.BaseSeq = binary.BigEndian.Uint64(body[22:])
		if f.N < 2 || f.Sender < 0 || f.Sender >= f.N || f.Target < 0 || f.Target >= f.N {
			return frame{}, fmt.Errorf("netring: HELLO with invalid indices sender=%d target=%d n=%d", f.Sender, f.Target, f.N)
		}
	case frameHelloAck:
		if len(body) != helloAckLen {
			return frame{}, fmt.Errorf("netring: HELLO_ACK body %d bytes, want %d", len(body), helloAckLen)
		}
		f.NextSeq = binary.BigEndian.Uint64(body[2:])
	case frameData:
		if len(body) != dataLen {
			return frame{}, fmt.Errorf("netring: DATA body %d bytes, want %d", len(body), dataLen)
		}
		f.Seq = binary.BigEndian.Uint64(body[2:])
		kind := core.Kind(body[10])
		if kind > core.KindRandLeader {
			return frame{}, fmt.Errorf("netring: DATA with unknown message kind %d", body[10])
		}
		if flags := body[27]; flags > 1 {
			return frame{}, fmt.Errorf("netring: DATA with unknown flag bits %#x", flags)
		}
		f.Msg = core.Message{
			Kind:  kind,
			Label: ring.Label(int64(binary.BigEndian.Uint64(body[11:]))),
			Round: binary.BigEndian.Uint32(body[19:]),
			Hop:   binary.BigEndian.Uint32(body[23:]),
			Flag:  body[27] == 1,
		}
	case frameGoodbye:
		if len(body) != goodbyeLen {
			return frame{}, fmt.Errorf("netring: GOODBYE body %d bytes, want %d", len(body), goodbyeLen)
		}
		f.NextSeq = binary.BigEndian.Uint64(body[2:])
	case frameGoodbyeAck:
		if len(body) != goodbyeAckLen {
			return frame{}, fmt.Errorf("netring: GOODBYE_ACK body %d bytes, want %d", len(body), goodbyeAckLen)
		}
		f.NextSeq = binary.BigEndian.Uint64(body[2:])
	default:
		return frame{}, fmt.Errorf("netring: unknown frame type %d", body[1])
	}
	return f, nil
}

// frameBufPool recycles encode buffers across writeFrame calls so
// control-plane writes (handshakes, acks, goodbyes) do not allocate per
// frame. Data frames go through the sender's batched write path, which
// has its own reusable buffer.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4+maxFrameBody)
	return &b
}}

// writeFrame writes one frame to w using a pooled encode buffer.
func writeFrame(w io.Writer, f frame) error {
	bp := frameBufPool.Get().(*[]byte)
	buf := appendFrame((*bp)[:0], f)
	_, err := w.Write(buf)
	*bp = buf[:0]
	frameBufPool.Put(bp)
	return err
}

// readFrameInto reads one length-prefixed frame from r, using *scratch as
// the body buffer (grown as needed and left in place for the next call).
// Decoding copies everything it keeps out of the body, so reusing the
// scratch across frames is safe; a receiver looping with one scratch
// reads its whole stream without per-frame allocation.
func readFrameInto(r io.Reader, scratch *[]byte) (frame, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(pfx[:])
	if n < 2 || n > maxFrameBody {
		return frame{}, fmt.Errorf("netring: frame length %d outside [2, %d]", n, maxFrameBody)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	body := (*scratch)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, fmt.Errorf("netring: truncated frame: %w", err)
	}
	return decodeFrame(body)
}

// readFrame reads one length-prefixed frame from r. One-shot form of
// readFrameInto for handshake-time reads.
func readFrame(r io.Reader) (frame, error) {
	var scratch []byte
	return readFrameInto(r, &scratch)
}

// ringHash fingerprints the full clockwise label sequence (FNV-1a over n
// and every label). Two nodes configured with different -ring specs fail
// the handshake instead of running a silently inconsistent election.
func ringHash(r *ring.Ring) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(r.N()))
	h.Write(b[:])
	for i := 0; i < r.N(); i++ {
		binary.BigEndian.PutUint64(b[:], uint64(int64(r.Label(i))))
		h.Write(b[:])
	}
	return h.Sum64()
}

// ringHashWithKeys extends ringHash with every node's static public key
// in ring order. Secure nodes exchange this in HELLO, so a roster
// disagreement about *any* node's key — not just a neighbor's — fails
// the handshake as fast as a wrong -ring. (A wrong key for a direct
// neighbor fails even earlier, inside the secure handshake itself.)
func ringHashWithKeys(r *ring.Ring, keys []secure.PublicKey) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], ringHash(r))
	h.Write(b[:])
	for _, k := range keys {
		h.Write(k.Bytes())
	}
	return h.Sum64()
}
