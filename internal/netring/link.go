package netring

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/spec"
)

// Backoff paces dial and reconnect retries: attempt i sleeps
// Base·Factor^(i-1), capped at Max, with a uniform ±Jitter fraction so
// simultaneous dialers do not stampede. The zero value means defaults.
type Backoff struct {
	// Base is the delay before the second attempt (the first is
	// immediate). Default 5ms.
	Base time.Duration
	// Max caps the delay between attempts. Default 500ms.
	Max time.Duration
	// Factor is the exponential growth per attempt. Default 2.
	Factor float64
	// Jitter is the uniform random fraction (±) applied to each delay.
	// Default 0.2.
	Jitter float64
	// Attempts bounds the dial attempts per (re)connect before the node
	// gives up and fails the run. Default 25 (≈ 10s with defaults).
	Attempts int
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 5 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 500 * time.Millisecond
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 {
		b.Jitter = 0.2
	}
	if b.Attempts <= 0 {
		b.Attempts = 25
	}
	return b
}

// delay computes the sleep before attempt (attempt ≥ 1 is the first
// retry), jittered by rng.
func (b Backoff) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	d *= 1 + b.Jitter*(2*rng.Float64()-1)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// LinkFault injects faults into a node's outgoing link, to demonstrate
// that elections still satisfy the specification when the transport
// misbehaves beneath the retry layer.
type LinkFault struct {
	// Delay is added before every link write (a slow link). The sender
	// batches contiguous queued frames into one write, so the delay is
	// paid per write, not per frame.
	Delay time.Duration
	// DropAfter, when > 0, hard-closes the connection once after that many
	// data frames have been written on it, forcing a reconnect with resume.
	DropAfter int
}

// Faults maps a sending node's ring index to the fault plan for its
// outgoing link.
type Faults map[int]LinkFault

// isConnError classifies read/write failures that mean "the connection
// died" (and a reconnect may follow), as opposed to a malformed stream.
func isConnError(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// sender owns a node's outgoing link: an unbounded FIFO queue of data
// frames (which doubles as the retransmit buffer — sequence numbers are
// queue positions), a writer goroutine that dials the successor with
// backoff, resumes from the receiver's acknowledged sequence number after
// any drop, and announces clean shutdown with a GOODBYE frame.
type sender struct {
	self, target int
	addr         string
	hello        frame
	backoff      Backoff
	fault        LinkFault
	rng          *rand.Rand
	onLink       func(event string)

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []frame // every data frame ever enqueued; Seq == index
	goodbye    bool    // machine halted: flush, send GOODBYE, exit
	stopped    bool    // abandon immediately (failure elsewhere)
	stopCh     chan struct{}
	stopOnce   sync.Once
	reconnects int

	wbuf []byte // run-goroutine-only: reusable encode buffer for batched writes
}

// maxWriteBatch bounds how many queued data frames one connection write
// coalesces. Large enough that a burst of protocol sends (an election
// round's worth of envelopes) goes out as one syscall; small enough that
// the encode buffer stays a few KiB.
const maxWriteBatch = 64

func newSender(self, target int, addr string, hello frame, b Backoff, fault LinkFault, rng *rand.Rand, onLink func(string)) *sender {
	s := &sender{
		self: self, target: target, addr: addr, hello: hello,
		backoff: b.withDefaults(), fault: fault, rng: rng, onLink: onLink,
		stopCh: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue appends the machine's sends, in order, to the outgoing link.
// It never blocks: the model's links hold arbitrarily many messages.
func (s *sender) enqueue(msgs []core.Message) {
	if len(msgs) == 0 {
		return
	}
	s.mu.Lock()
	for _, m := range msgs {
		s.queue = append(s.queue, frame{Type: frameData, Seq: uint64(len(s.queue)), Msg: m})
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// sent returns how many data frames were enqueued (retransmits excluded).
func (s *sender) sent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

func (s *sender) sentU() uint64 { return uint64(s.sent()) }

// reconnectCount returns how many times the link dropped and re-dialed.
func (s *sender) reconnectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// finish tells the writer the machine has halted: flush the queue, send
// GOODBYE, exit.
func (s *sender) finish() {
	s.mu.Lock()
	s.goodbye = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// stop aborts the writer without a goodbye (the node failed). It also
// interrupts any backoff or fault-delay sleep in progress.
func (s *sender) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cond.Broadcast()
}

// sleep pauses for d unless the sender is stopped first. It reports
// whether the full pause elapsed.
func (s *sender) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stopCh:
		return false
	}
}

// connect dials the successor with backoff, performs the handshake, and
// returns the connection plus the receiver's next expected sequence
// number (the resume point).
func (s *sender) connect(event string) (net.Conn, uint64, error) {
	var lastErr error
	for attempt := 0; attempt < s.backoff.Attempts; attempt++ {
		if attempt > 0 && !s.sleep(s.backoff.delay(attempt, s.rng)) {
			return nil, 0, errSenderStopped
		}
		if s.isStopped() {
			return nil, 0, errSenderStopped
		}
		conn, err := net.DialTimeout("tcp", s.addr, 2*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		if err := s.handshake(conn); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		ack, err := readFrame(conn)
		conn.SetReadDeadline(time.Time{})
		if err != nil || ack.Type != frameHelloAck {
			conn.Close()
			if err == nil {
				err = fmt.Errorf("netring: handshake got %s, want HELLO_ACK", ack.Type)
			}
			lastErr = err
			continue
		}
		if s.onLink != nil {
			s.onLink(event)
		}
		return conn, ack.NextSeq, nil
	}
	return nil, 0, fmt.Errorf("netring: p%d cannot reach successor p%d at %s after %d attempts: %w",
		s.self, s.target, s.addr, s.backoff.Attempts, lastErr)
}

func (s *sender) handshake(conn net.Conn) error {
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	err := writeFrame(conn, s.hello)
	conn.SetWriteDeadline(time.Time{})
	return err
}

var errSenderStopped = errors.New("netring: sender stopped")

func (s *sender) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// run is the writer loop. It returns nil after a clean goodbye or stop,
// and an error when the successor stays unreachable.
func (s *sender) run() error {
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	var cursor uint64 // next queue index to write on the current connection
	written := 0      // frames written since the last (re)connect
	connected := false
	event := "connect"
	for {
		s.mu.Lock()
		for !s.stopped && !s.goodbye && uint64(len(s.queue)) <= cursor {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return nil
		}
		// Snapshot the contiguous run of unsent frames. The queue is
		// append-only and its entries immutable, so the slice stays valid
		// after the lock is released.
		var batch []frame
		if end := uint64(len(s.queue)); end > cursor {
			if end > cursor+maxWriteBatch {
				end = cursor + maxWriteBatch
			}
			batch = s.queue[cursor:end]
		}
		goodbye := s.goodbye
		s.mu.Unlock()

		if len(batch) == 0 && goodbye {
			// Queue flushed: announce clean termination. Best-effort — the
			// successor may already have halted and closed its side.
			if !connected {
				c, resume, err := s.connect(event)
				if err != nil {
					return nil
				}
				conn, connected, cursor, written = c, true, resume, 0
				event = "reconnect"
				if cursor < uint64(s.sentU()) {
					continue // receiver is missing frames after all
				}
			}
			writeFrame(conn, frame{Type: frameGoodbye, NextSeq: cursor})
			return nil
		}

		if !connected {
			c, resume, err := s.connect(event)
			if err != nil {
				if errors.Is(err, errSenderStopped) {
					return nil
				}
				return err
			}
			conn, connected, cursor, written = c, true, resume, 0
			event = "reconnect"
			continue // re-evaluate the queue against the resume point
		}

		if s.fault.Delay > 0 && !s.sleep(s.fault.Delay) {
			return nil
		}
		if s.fault.DropAfter > 0 {
			if written >= s.fault.DropAfter {
				s.fault.DropAfter = 0 // fire once
				conn.Close()
				connected = false
				s.noteDrop()
				continue
			}
			// Cap the batch so the drop fires at exactly DropAfter frames,
			// batching or not.
			if room := s.fault.DropAfter - written; len(batch) > room {
				batch = batch[:room]
			}
		}
		// One write per batch: every frame queued at the time of the
		// snapshot goes out in a single syscall instead of one per message.
		s.wbuf = s.wbuf[:0]
		for _, f := range batch {
			s.wbuf = appendFrame(s.wbuf, f)
		}
		if _, err := conn.Write(s.wbuf); err != nil {
			conn.Close()
			connected = false
			s.noteDrop()
			continue // redial and resume from the receiver's ack
		}
		written += len(batch)
		cursor += uint64(len(batch))
	}
}

func (s *sender) noteDrop() {
	s.mu.Lock()
	s.reconnects++
	s.mu.Unlock()
	if s.onLink != nil {
		s.onLink("drop")
	}
}

// receiver owns a node's incoming link: it accepts connections on the
// node's listener, admits exactly the ring predecessor (HELLO must carry
// the right indices, size, and ring hash), acknowledges the next expected
// sequence number, and delivers data frames in strict FIFO order — any
// gap, duplicate, or reordering is a hard spec.LinkViolation. An EOF
// without a GOODBYE is treated as a transient drop: the receiver keeps
// listening for the sender's reconnect.
type receiver struct {
	self, pred, n int
	hash          uint64
	ln            net.Listener
	onLink        func(event string)

	mu      sync.Mutex
	conn    net.Conn
	stopped bool
}

func newReceiver(self, n int, hash uint64, ln net.Listener, onLink func(string)) *receiver {
	return &receiver{self: self, pred: (self - 1 + n) % n, n: n, hash: hash, ln: ln, onLink: onLink}
}

// stop closes the listener and any live connection, unblocking run.
func (r *receiver) stop() {
	r.mu.Lock()
	r.stopped = true
	conn := r.conn
	r.mu.Unlock()
	r.ln.Close()
	if conn != nil {
		conn.Close()
	}
}

func (r *receiver) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// run accepts from the predecessor and calls deliver for every message,
// in sending order, exactly once. It returns nil on a clean GOODBYE or
// after stop; any link-model breach is a *spec.LinkViolation.
func (r *receiver) run(deliver func(core.Message) error) error {
	var expected uint64 // next sequence number to deliver
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			if r.isStopped() {
				return nil
			}
			return fmt.Errorf("netring: p%d accept: %w", r.self, err)
		}
		r.mu.Lock()
		r.conn = conn
		r.mu.Unlock()

		clean, err := r.serve(conn, &expected, deliver)
		conn.Close()
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		if err != nil {
			return err
		}
		if clean || r.isStopped() {
			return nil
		}
		// Transient drop: keep listening for the reconnect.
	}
}

// serve handles one accepted connection. clean reports a GOODBYE-closed
// stream; a nil error with clean == false means the connection dropped
// and a reconnect should be awaited.
func (r *receiver) serve(conn net.Conn, expected *uint64, deliver func(core.Message) error) (clean bool, err error) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hello, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		if isConnError(err) {
			return false, nil // dialer vanished before the handshake
		}
		return false, fmt.Errorf("netring: p%d handshake: %w", r.self, err)
	}
	if hello.Type != frameHello {
		return false, fmt.Errorf("netring: p%d handshake got %s, want HELLO", r.self, hello.Type)
	}
	if hello.N != r.n || hello.RingHash != r.hash {
		return false, fmt.Errorf("netring: p%d handshake ring mismatch: peer has n=%d hash=%x, local n=%d hash=%x (check -ring across nodes)",
			r.self, hello.N, hello.RingHash, r.n, r.hash)
	}
	if hello.Sender != r.pred || hello.Target != r.self {
		return false, fmt.Errorf("netring: p%d accepts only its predecessor p%d, got HELLO from p%d targeting p%d",
			r.self, r.pred, hello.Sender, hello.Target)
	}
	if err := writeFrame(conn, frame{Type: frameHelloAck, NextSeq: *expected}); err != nil {
		return false, nil // connection died mid-handshake; await reconnect
	}
	var scratch []byte // reused for every frame body on this connection
	for {
		f, err := readFrameInto(conn, &scratch)
		if err != nil {
			if isConnError(err) {
				return false, nil
			}
			return false, &spec.LinkViolation{From: r.pred, To: r.self,
				Detail: fmt.Sprintf("malformed frame: %v", err)}
		}
		switch f.Type {
		case frameData:
			if f.Seq != *expected {
				return false, &spec.LinkViolation{From: r.pred, To: r.self,
					Detail: fmt.Sprintf("out-of-order delivery: got seq %d, want %d", f.Seq, *expected)}
			}
			*expected++
			if err := deliver(f.Msg); err != nil {
				return false, err
			}
		case frameGoodbye:
			if f.NextSeq != *expected {
				return false, &spec.LinkViolation{From: r.pred, To: r.self,
					Detail: fmt.Sprintf("goodbye after %d frames but only %d delivered", f.NextSeq, *expected)}
			}
			return true, nil
		default:
			return false, &spec.LinkViolation{From: r.pred, To: r.self,
				Detail: fmt.Sprintf("unexpected %s frame mid-stream", f.Type)}
		}
	}
}
