package netring

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/secure"
	"repro/internal/spec"
)

// Backoff paces dial and reconnect retries: attempt i sleeps
// Base·Factor^(i-1), capped at Max, with a uniform ±Jitter fraction so
// simultaneous dialers do not stampede. The zero value means defaults.
type Backoff struct {
	// Base is the delay before the second attempt (the first is
	// immediate). Default 5ms.
	Base time.Duration
	// Max caps the delay between attempts. Default 500ms.
	Max time.Duration
	// Factor is the exponential growth per attempt. Default 2.
	Factor float64
	// Jitter is the uniform random fraction (±) applied to each delay.
	// Default 0.2.
	Jitter float64
	// Attempts bounds the dial attempts per (re)connect before the node
	// gives up and fails the run. Default 25 (≈ 10s with defaults).
	Attempts int
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 5 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 500 * time.Millisecond
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 {
		b.Jitter = 0.2
	}
	if b.Attempts <= 0 {
		b.Attempts = 25
	}
	return b
}

// delay computes the sleep before attempt (attempt ≥ 1 is the first
// retry), jittered by rng.
func (b Backoff) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	d *= 1 + b.Jitter*(2*rng.Float64()-1)
	// Clamp after jitter too: Max is a hard cap on the inter-attempt gap,
	// not a pre-jitter target that jitter may exceed.
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// WithDefaults returns b with every zero field replaced by its default —
// the same filling the transport applies internally. Exported so other
// subsystems pacing retries with a Backoff (the serve wire client's
// broken-connection redial, the cluster router's pool) can read the
// effective attempt budget without duplicating the defaults.
func (b Backoff) WithDefaults() Backoff { return b.withDefaults() }

// Delay reports the jittered sleep before retry attempt (attempt >= 1 is
// the first retry), with zero fields defaulted first. Deterministic for a
// given rng state, which is what the pacing tests pin.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	return b.withDefaults().delay(attempt, rng)
}

// Sleep blocks for Delay(attempt, rng), or until cancel closes. It
// reports whether the full delay elapsed; false means the caller is being
// torn down and must stop retrying.
func (b Backoff) Sleep(cancel <-chan struct{}, attempt int, rng *rand.Rand) bool {
	d := b.Delay(attempt, rng)
	if d <= 0 {
		select {
		case <-cancel:
			return false
		default:
			return true
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// DialError is the sender's give-up error: the successor stayed
// unreachable through the whole retry budget. It carries the address, the
// attempt count, and the last underlying dial error, and unwraps to the
// latter — cmd/ringnode maps it to a distinct exit code.
type DialError struct {
	// Self and Target are the link's ring endpoints.
	Self, Target int
	// Addr is the successor address that could not be reached.
	Addr string
	// Attempts is how many dials were made before giving up.
	Attempts int
	// Last is the final dial or handshake error.
	Last error
}

// Error implements error.
func (e *DialError) Error() string {
	return fmt.Sprintf("netring: p%d cannot reach successor p%d at %s after %d attempts: %v",
		e.Self, e.Target, e.Addr, e.Attempts, e.Last)
}

// Unwrap exposes the last dial error.
func (e *DialError) Unwrap() error { return e.Last }

// LinkFault injects faults into a node's outgoing link, to demonstrate
// that elections still satisfy the specification when the transport
// misbehaves beneath the retry layer.
type LinkFault struct {
	// Delay is added before every link write (a slow link). The sender
	// batches contiguous queued frames into one write, so the delay is
	// paid per write, not per frame.
	Delay time.Duration
	// DropAfter, when > 0, hard-closes the connection once after that many
	// data frames have been written on it, forcing a reconnect with resume.
	DropAfter int
}

// Faults maps a sending node's ring index to the fault plan for its
// outgoing link.
type Faults map[int]LinkFault

// isConnError classifies read/write failures that mean "the connection
// died" (and a reconnect may follow), as opposed to a malformed stream.
// Secure-layer failures — a record that fails authentication, or a
// handshake that does not complete — are in the "died" class: an
// on-path adversary can force either at will by injecting or garbling
// ciphertext, and the healing path (reconnect with a fresh handshake,
// resume from the last ack) is identical to a severed TCP connection.
// Only a *plaintext* stream that decodes to a protocol breach is a
// LinkViolation; an unauthenticated byte stream proves nothing about
// the peer.
func isConnError(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	if secure.IsTransportError(err) || secure.IsHandshakeError(err) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// sender owns a node's outgoing link: an unbounded FIFO queue of data
// frames (which doubles as the retransmit buffer — a frame's Seq is base
// plus its queue position), a writer goroutine that dials the successor
// with backoff, resumes from the receiver's acknowledged sequence number
// after any drop, and announces clean shutdown with a GOODBYE frame.
// Handshake acks advance base and discard the acknowledged queue prefix,
// which both bounds memory and keeps the durable snapshot's retransmit
// tail small.
type sender struct {
	self, target int
	addr         string
	hello        frame
	backoff      Backoff
	fault        LinkFault
	rng          *rand.Rand
	onLink       func(event string)

	// Durable mode: wait for GOODBYE_ACK (retrying) before reporting the
	// outgoing link finished; onGoodbyeAcked persists the fact.
	reliableGoodbye bool
	onGoodbyeAcked  func() error
	finished        bool // restored OutFinished: nothing left to do

	// msgBits prices one message for bit accounting (core.Message.Bits
	// with the ring's labelBits and n bound in).
	msgBits func(core.Message) int

	// sec, when set, wraps every dialed connection in an authenticated
	// encrypted session keyed to the successor's static key. Each
	// reconnect runs a fresh handshake (rekey-on-reconnect).
	sec *secure.ClientConfig

	mu          sync.Mutex
	cond        *sync.Cond
	base        uint64  // Seq of queue[0]; frames below it are acked and discarded
	queue       []frame // retained data frames; queue[i].Seq == base+i
	bits        uint64  // payload bits of all distinct frames ever enqueued
	goodbye     bool    // machine halted: flush, send GOODBYE, exit
	stopped     bool    // abandon immediately (failure elsewhere)
	stopCh      chan struct{}
	stopOnce    sync.Once
	reconnects  int
	highWater   uint64 // highest seq ever written + 1
	retransmits int    // frames re-written below the high-water mark
	gen         uint64 // connection generation, guards stale watch goroutines
	connLost    bool   // the watch goroutine saw the current connection die
	aheadAck    uint64 // durable: successor ack beyond what this incarnation produced

	// goodbyeAcks carries GOODBYE_ACK frames from the watch goroutine (the
	// sole reader of a live connection) to sendGoodbye. Buffered so a late
	// ack never blocks the watcher.
	goodbyeAcks chan frame

	wbuf []byte // run-goroutine-only: reusable encode buffer for batched writes
}

// maxWriteBatch bounds how many queued data frames one connection write
// coalesces. Large enough that a burst of protocol sends (an election
// round's worth of envelopes) goes out as one syscall; small enough that
// the encode buffer stays a few KiB.
const maxWriteBatch = 64

func newSender(self, target int, addr string, hello frame, b Backoff, fault LinkFault, rng *rand.Rand, onLink func(string), msgBits func(core.Message) int) *sender {
	s := &sender{
		self: self, target: target, addr: addr, hello: hello,
		backoff: b.withDefaults(), fault: fault, rng: rng, onLink: onLink,
		msgBits: msgBits,
		stopCh:  make(chan struct{}), goodbyeAcks: make(chan frame, 1),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// preload restores the retransmit queue from a durable snapshot: frames
// [base, base+len(tail)) regenerated from the persisted tail. finished
// marks an outgoing link whose GOODBYE was already acknowledged.
func (s *sender) preload(base uint64, tail []core.Message, finished bool, bits uint64) {
	s.base = base
	s.bits = bits
	s.queue = s.queue[:0]
	for i, m := range tail {
		s.queue = append(s.queue, frame{Type: frameData, Seq: base + uint64(i), Msg: m})
	}
	s.highWater = base + uint64(len(tail))
	s.finished = finished
}

// enqueue appends the machine's sends, in order, to the outgoing link.
// It never blocks: the model's links hold arbitrarily many messages.
func (s *sender) enqueue(msgs []core.Message) {
	if len(msgs) == 0 {
		return
	}
	s.mu.Lock()
	for _, m := range msgs {
		// Bits count every message the machine produces exactly once per
		// counting timeline: a snapshot restore resumes the persisted
		// total instead of replaying, a clean-start fallback replays the
		// machine (and so re-counts) from zero — either way the terminal
		// total equals the canonical execution's.
		s.bits += uint64(s.msgBits(m))
		seq := s.base + uint64(len(s.queue))
		if seq < s.aheadAck {
			// A regenerated frame the successor already has (see the
			// ack-ahead branch of noteAck). It counts as produced and
			// acked at its original sequence number; the queue is empty
			// here, so advancing base is the whole bookkeeping.
			s.base++
			continue
		}
		s.queue = append(s.queue, frame{Type: frameData, Seq: seq, Msg: m})
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// sent returns how many data frames were enqueued, ever (retransmits
// excluded: a frame counts once at its sequence number no matter how many
// times it crosses the wire or how many times a crash-recovered machine
// regenerates it).
func (s *sender) sent() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.base) + len(s.queue)
}

func (s *sender) sentU() uint64 { return uint64(s.sent()) }

// sentBits returns the payload-bit total of all distinct frames enqueued,
// in the same retransmit-excluded sense as sent().
func (s *sender) sentBits() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bits
}

// snapshotOut returns the durable view of the outgoing link: total frames
// produced, the retransmit base, a copy of the retained tail, and the
// payload-bit total.
func (s *sender) snapshotOut() (sent, base uint64, tail []core.Message, bits uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tail = make([]core.Message, len(s.queue))
	for i, f := range s.queue {
		tail[i] = f.Msg
	}
	return s.base + uint64(len(s.queue)), s.base, tail, s.bits
}

// noteAck records a successor handshake ack: everything below ack needs no
// retransmission, so the queue prefix is discarded and base advances. An
// ack below base is impossible with an honest successor (acks only ever
// cover what was delivered, and base only advances to acked positions), so
// it is reported as a broken link axiom.
func (s *sender) noteAck(ack uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ack < s.base {
		return &spec.LinkViolation{From: s.self, To: s.target,
			Detail: fmt.Sprintf("resume gap: successor acknowledged seq %d below retransmit base %d (lost acked state)", ack, s.base)}
	}
	drop := ack - s.base
	if drop > uint64(len(s.queue)) {
		if !s.reliableGoodbye {
			return &spec.LinkViolation{From: s.self, To: s.target,
				Detail: fmt.Sprintf("successor acknowledged seq %d but only %d frames were ever sent", ack, s.base+uint64(len(s.queue)))}
		}
		// Durable mode: the successor persisted frames beyond anything this
		// incarnation knows it produced. That is the crash window between a
		// wire write and the snapshot recording it — the action that
		// produced those frames was rolled back, the predecessor will
		// re-deliver its input, and the deterministic machine will re-emit
		// byte-identical frames. Absorb: everything queued is acked, and
		// enqueue treats regenerated frames below aheadAck as already
		// delivered instead of re-writing them at stale sequence numbers.
		s.base += uint64(len(s.queue))
		s.queue = s.queue[:0]
		if ack > s.aheadAck {
			s.aheadAck = ack
		}
		return nil
	}
	if drop > 0 {
		s.queue = s.queue[drop:]
		s.base = ack
	}
	return nil
}

// noteWritten tracks retransmissions: frames re-written at sequence
// numbers below the high-water mark were already on the wire once.
func (s *sender) noteWritten(firstSeq uint64, count int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := firstSeq + uint64(count)
	if firstSeq < s.highWater {
		redone := s.highWater - firstSeq
		if redone > uint64(count) {
			redone = uint64(count)
		}
		s.retransmits += int(redone)
	}
	if end > s.highWater {
		s.highWater = end
	}
}

// reconnectCount returns how many times the link dropped and re-dialed.
func (s *sender) reconnectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// retransmitCount returns how many data frames were written more than
// once (excluded from sent()).
func (s *sender) retransmitCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retransmits
}

// finish tells the writer the machine has halted: flush the queue, send
// GOODBYE, exit.
func (s *sender) finish() {
	s.mu.Lock()
	s.goodbye = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// stop aborts the writer without a goodbye (the node failed). It also
// interrupts any backoff or fault-delay sleep in progress.
func (s *sender) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cond.Broadcast()
}

// sleep pauses for d unless the sender is stopped first. It reports
// whether the full pause elapsed.
func (s *sender) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stopCh:
		return false
	}
}

// connect dials the successor with backoff, performs the handshake, and
// returns the connection plus the receiver's next expected sequence
// number (the resume point).
func (s *sender) connect(event string) (net.Conn, uint64, error) {
	var lastErr error
	for attempt := 0; attempt < s.backoff.Attempts; attempt++ {
		if attempt > 0 && !s.sleep(s.backoff.delay(attempt, s.rng)) {
			return nil, 0, errSenderStopped
		}
		if s.isStopped() {
			return nil, 0, errSenderStopped
		}
		rawConn, err := net.DialTimeout("tcp", s.addr, 2*time.Second)
		if err != nil {
			lastErr = err
			continue
		}
		conn := rawConn
		if s.sec != nil {
			enc, err := secure.Client(rawConn, s.sec)
			if err != nil {
				// Wrong key, a garbled handshake, or an adversary in
				// the path: same retry treatment as a refused dial.
				rawConn.Close()
				lastErr = err
				continue
			}
			conn = enc
		}
		if err := s.handshake(conn); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		ack, err := readFrame(conn)
		conn.SetReadDeadline(time.Time{})
		if err != nil || ack.Type != frameHelloAck {
			conn.Close()
			if err == nil {
				err = fmt.Errorf("netring: handshake got %s, want HELLO_ACK", ack.Type)
			}
			lastErr = err
			continue
		}
		if err := s.noteAck(ack.NextSeq); err != nil {
			conn.Close()
			return nil, 0, err
		}
		if s.onLink != nil {
			s.onLink(event)
		}
		return conn, ack.NextSeq, nil
	}
	return nil, 0, &DialError{Self: s.self, Target: s.target, Addr: s.addr, Attempts: s.backoff.Attempts, Last: lastErr}
}

// adopt registers a freshly connected conn as the current generation and
// starts its watch goroutine. Any connLost flag from a previous
// generation is cleared: it described a connection that no longer exists.
//
// Only durable senders watch their connections. In the in-memory engines
// goodbyes are best-effort and a successor may legitimately exit (closing
// the conn) before its predecessor halts — reacting to that close with a
// redial would be a dial storm at a gone listener. A durable successor,
// by contrast, stays up until it has our GOODBYE, so a dying connection
// there means a crash that may have lost unacked frames.
func (s *sender) adopt(conn net.Conn) {
	if !s.reliableGoodbye {
		return
	}
	s.mu.Lock()
	s.gen++
	gen := s.gen
	s.connLost = false
	s.mu.Unlock()
	go s.watch(conn, gen)
}

// watch owns all reads on a live sender connection. The successor writes
// nothing unsolicited after the handshake, so a returning read is either
// a GOODBYE_ACK (forwarded to sendGoodbye) or proof the connection died.
// On death it closes the conn, flags the loss, and broadcasts — this is
// what lets a sender that is idle in cond.Wait (queue flushed, nothing
// new to say) notice that its successor crashed and redial, so the
// resume handshake can retransmit the unacked tail. Without it, a ring
// stalled by one crash never heals: the restarted node's predecessor has
// no traffic of its own to trip a write error on.
func (s *sender) watch(conn net.Conn, gen uint64) {
	for {
		f, err := readFrame(conn)
		if err == nil {
			if f.Type == frameGoodbyeAck {
				select {
				case s.goodbyeAcks <- f:
				default:
				}
			}
			continue
		}
		conn.Close()
		s.mu.Lock()
		if s.gen == gen {
			s.connLost = true
		}
		s.mu.Unlock()
		s.cond.Broadcast()
		return
	}
}

func (s *sender) handshake(conn net.Conn) error {
	hello := s.hello
	s.mu.Lock()
	hello.BaseSeq = s.base // RESUME: the lowest seq still retransmittable
	s.mu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	err := writeFrame(conn, hello)
	conn.SetWriteDeadline(time.Time{})
	return err
}

var errSenderStopped = errors.New("netring: sender stopped")

func (s *sender) isStopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped
}

// maxGoodbyeTries bounds how many full reconnect-and-retry cycles a
// durable sender spends getting its GOODBYE acknowledged before assuming
// the successor has already exited. Each cycle burns a whole connect
// retry budget, so this is minutes of cover for a successor restarting
// mid-termination.
const maxGoodbyeTries = 5

// sendGoodbye announces termination on a live connection. In durable mode
// it also waits for the GOODBYE_ACK — routed through the watch goroutine,
// which owns all reads on the conn — and persists the outcome.
func (s *sender) sendGoodbye(conn net.Conn, total uint64) error {
	if s.reliableGoodbye {
		// Discard any ack left over from a previous goodbye attempt.
		select {
		case <-s.goodbyeAcks:
		default:
		}
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	err := writeFrame(conn, frame{Type: frameGoodbye, NextSeq: total})
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		return err
	}
	if !s.reliableGoodbye {
		return nil
	}
	t := time.NewTimer(5 * time.Second)
	defer t.Stop()
	select {
	case ack := <-s.goodbyeAcks:
		if ack.NextSeq != total {
			return fmt.Errorf("netring: goodbye ack covers seq %d, want %d", ack.NextSeq, total)
		}
		if s.onGoodbyeAcked != nil {
			return s.onGoodbyeAcked()
		}
		return nil
	case <-t.C:
		return errors.New("netring: timed out waiting for GOODBYE_ACK")
	case <-s.stopCh:
		return errSenderStopped
	}
}

// run is the writer loop. It returns nil after a clean goodbye or stop,
// and an error when the successor stays unreachable.
func (s *sender) run() error {
	if s.finished {
		// Restored with the GOODBYE already acknowledged: the successor has
		// everything it will ever need from us.
		return nil
	}
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	var cursor uint64 // next absolute sequence number to write on the current connection
	written := 0      // frames written since the last (re)connect
	goodbyeTries := 0
	connected := false
	event := "connect"
	for {
		s.mu.Lock()
		for !s.stopped && !s.goodbye && !s.connLost && s.base+uint64(len(s.queue)) <= cursor {
			s.cond.Wait()
		}
		if s.stopped {
			s.mu.Unlock()
			return nil
		}
		if s.connLost {
			// The watch goroutine saw the connection die. Rewind the cursor
			// to the retransmit base: whatever the restarted successor did
			// not persist must be written again, and a non-empty queue now
			// forces a redial even though everything was already written once.
			s.connLost = false
			cursor = s.base
			s.mu.Unlock()
			if connected {
				conn, connected = nil, false
				s.noteDrop()
			}
			continue
		}
		// Snapshot the contiguous run of unsent frames. Entries are
		// immutable and acks only trim the prefix below cursor (and only
		// from this goroutine, via connect), so the slice stays valid after
		// the lock is released.
		var batch []frame
		total := s.base + uint64(len(s.queue))
		if connected && total > cursor {
			end := total
			if end > cursor+maxWriteBatch {
				end = cursor + maxWriteBatch
			}
			batch = s.queue[cursor-s.base : end-s.base]
		}
		goodbye := s.goodbye
		// Every frame ever produced is covered by a successor ack exactly
		// when the retained queue is empty — the condition under which a
		// dead successor means "already exited" rather than "missing data".
		ackedAll := len(s.queue) == 0
		s.mu.Unlock()

		if connected && goodbye && cursor >= total {
			// Queue flushed on a live connection: announce termination.
			err := s.sendGoodbye(conn, cursor)
			if err == nil {
				return nil
			}
			if !s.reliableGoodbye {
				// Best-effort — the successor may already have halted and
				// closed its side.
				return nil
			}
			conn.Close()
			conn, connected = nil, false
			s.noteDrop()
			if goodbyeTries++; goodbyeTries >= maxGoodbyeTries {
				if s.onLink != nil {
					s.onLink("goodbye-giveup")
				}
				return nil
			}
			continue
		}

		if !connected {
			c, resume, err := s.connect(event)
			if err != nil {
				if errors.Is(err, errSenderStopped) {
					return nil
				}
				if goodbye && (ackedAll || s.reliableGoodbye) {
					// Could not reach the successor just to say goodbye. With
					// ackedAll it has simply exited: it had acknowledged every
					// frame. In durable mode an unacknowledged tail does not
					// change the conclusion — the dial budget outlasts any
					// crash-recovery restart, so a successor unreachable for
					// the whole window has exited for good, and a durable node
					// only exits cleanly after consuming its entire incoming
					// stream, GOODBYE included. (The lost frame here is the
					// GOODBYE_ACK back to us, not data.) Failing instead would
					// strand a supervisor in hopeless retries against a peer
					// that is never coming back.
					if s.reliableGoodbye && s.onLink != nil {
						s.onLink("goodbye-giveup")
					}
					return nil
				}
				return err
			}
			s.adopt(c)
			conn, connected, cursor, written = c, true, resume, 0
			event = "reconnect"
			continue // re-evaluate the queue against the resume point
		}

		if s.fault.Delay > 0 && !s.sleep(s.fault.Delay) {
			return nil
		}
		if s.fault.DropAfter > 0 {
			if written >= s.fault.DropAfter {
				s.fault.DropAfter = 0 // fire once
				conn.Close()
				connected = false
				s.noteDrop()
				continue
			}
			// Cap the batch so the drop fires at exactly DropAfter frames,
			// batching or not.
			if room := s.fault.DropAfter - written; len(batch) > room {
				batch = batch[:room]
			}
		}
		// One write per batch: every frame queued at the time of the
		// snapshot goes out in a single syscall instead of one per message.
		s.wbuf = s.wbuf[:0]
		for _, f := range batch {
			s.wbuf = appendFrame(s.wbuf, f)
		}
		if _, err := conn.Write(s.wbuf); err != nil {
			conn.Close()
			connected = false
			s.noteDrop()
			continue // redial and resume from the receiver's ack
		}
		if len(batch) > 0 {
			s.noteWritten(batch[0].Seq, len(batch))
		}
		written += len(batch)
		cursor += uint64(len(batch))
	}
}

func (s *sender) noteDrop() {
	s.mu.Lock()
	s.reconnects++
	s.mu.Unlock()
	if s.onLink != nil {
		s.onLink("drop")
	}
}

// receiver owns a node's incoming link: it accepts connections on the
// node's listener, admits exactly the ring predecessor (HELLO must carry
// the right indices, size, and ring hash), acknowledges the next expected
// sequence number, and delivers data frames in strict FIFO order — any
// gap, duplicate, or reordering is a hard spec.LinkViolation. An EOF
// without a GOODBYE is treated as a transient drop: the receiver keeps
// listening for the sender's reconnect.
type receiver struct {
	self, pred, n int
	hash          uint64
	ln            net.Listener
	onLink        func(event string)

	// expected is the next sequence number to deliver. It starts at 0 on a
	// clean start and at the persisted InExpected on a crash recovery; the
	// handshake acknowledges it, which is what makes the predecessor resume
	// (and the sender's queue truncation safe). Owned by the run goroutine.
	expected uint64
	// onGoodbye, when set (durable mode), persists the incoming link's
	// completion before the GOODBYE_ACK is written, so a crash after the
	// ack cannot forget the predecessor is done.
	onGoodbye func() error

	// sec, when set, requires every accepted connection to complete an
	// authenticated handshake (allowlisted to the predecessor's static
	// key) before any frame is read. A failed handshake is treated like
	// a dialer that vanished: drop the conn, keep listening.
	sec *secure.ServerConfig

	mu      sync.Mutex
	conn    net.Conn
	stopped bool
}

func newReceiver(self, n int, hash uint64, ln net.Listener, onLink func(string)) *receiver {
	return &receiver{self: self, pred: (self - 1 + n) % n, n: n, hash: hash, ln: ln, onLink: onLink}
}

// stop closes the listener and any live connection, unblocking run.
func (r *receiver) stop() {
	r.mu.Lock()
	r.stopped = true
	conn := r.conn
	r.mu.Unlock()
	r.ln.Close()
	if conn != nil {
		conn.Close()
	}
}

func (r *receiver) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// run accepts from the predecessor and calls deliver for every message,
// in sending order, exactly once. It returns nil on a clean GOODBYE or
// after stop; any link-model breach is a *spec.LinkViolation.
func (r *receiver) run(deliver func(core.Message) error) error {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			if r.isStopped() {
				return nil
			}
			return fmt.Errorf("netring: p%d accept: %w", r.self, err)
		}
		// Publish the raw conn first so stop() can sever a connection
		// stuck mid-handshake, then upgrade to the encrypted session.
		r.mu.Lock()
		r.conn = conn
		r.mu.Unlock()
		if r.sec != nil {
			enc, err := secure.Server(conn, r.sec)
			if err != nil {
				// Garbage, a plaintext dialer, or a peer without the
				// predecessor's key. Nothing it sent is authenticated,
				// so it proves nothing about the real predecessor:
				// drop it and keep listening for the genuine reconnect.
				conn.Close()
				r.mu.Lock()
				r.conn = nil
				stopped := r.stopped
				r.mu.Unlock()
				if stopped {
					return nil
				}
				continue
			}
			conn = enc
		}

		clean, err := r.serve(conn, deliver)
		conn.Close()
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		if err != nil {
			return err
		}
		if clean || r.isStopped() {
			return nil
		}
		// Transient drop: keep listening for the reconnect.
	}
}

// serve handles one accepted connection. clean reports a GOODBYE-closed
// stream; a nil error with clean == false means the connection dropped
// and a reconnect should be awaited.
func (r *receiver) serve(conn net.Conn, deliver func(core.Message) error) (clean bool, err error) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hello, err := readFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		if isConnError(err) {
			return false, nil // dialer vanished before the handshake
		}
		return false, fmt.Errorf("netring: p%d handshake: %w", r.self, err)
	}
	if hello.Type != frameHello {
		return false, fmt.Errorf("netring: p%d handshake got %s, want HELLO", r.self, hello.Type)
	}
	if hello.N != r.n || hello.RingHash != r.hash {
		return false, fmt.Errorf("netring: p%d handshake ring mismatch: peer has n=%d hash=%x, local n=%d hash=%x (check -ring across nodes)",
			r.self, hello.N, hello.RingHash, r.n, r.hash)
	}
	if hello.Sender != r.pred || hello.Target != r.self {
		return false, fmt.Errorf("netring: p%d accepts only its predecessor p%d, got HELLO from p%d targeting p%d",
			r.self, r.pred, hello.Sender, hello.Target)
	}
	if hello.BaseSeq > r.expected {
		// RESUME gap: the predecessor's retransmit buffer starts beyond
		// what we have — frames [expected, BaseSeq) are gone for good. A
		// correct predecessor never truncates past an ack we gave it, so
		// this is a broken link axiom, not a transient.
		return false, &spec.LinkViolation{From: r.pred, To: r.self,
			Detail: fmt.Sprintf("resume gap: predecessor retains only seq >= %d but %d is expected next", hello.BaseSeq, r.expected)}
	}
	if err := writeFrame(conn, frame{Type: frameHelloAck, NextSeq: r.expected}); err != nil {
		return false, nil // connection died mid-handshake; await reconnect
	}
	var scratch []byte // reused for every frame body on this connection
	for {
		f, err := readFrameInto(conn, &scratch)
		if err != nil {
			if isConnError(err) {
				return false, nil
			}
			return false, &spec.LinkViolation{From: r.pred, To: r.self,
				Detail: fmt.Sprintf("malformed frame: %v", err)}
		}
		switch f.Type {
		case frameData:
			if f.Seq != r.expected {
				return false, &spec.LinkViolation{From: r.pred, To: r.self,
					Detail: fmt.Sprintf("out-of-order delivery: got seq %d, want %d", f.Seq, r.expected)}
			}
			// Deliver before advancing: in durable mode deliver returns
			// only after the message's effects are persisted, so the
			// handshake ack (and thus the predecessor's queue truncation)
			// never runs ahead of what a restart can reconstruct.
			if err := deliver(f.Msg); err != nil {
				return false, err
			}
			r.expected++
		case frameGoodbye:
			if f.NextSeq != r.expected {
				return false, &spec.LinkViolation{From: r.pred, To: r.self,
					Detail: fmt.Sprintf("goodbye after %d frames but only %d delivered", f.NextSeq, r.expected)}
			}
			if r.onGoodbye != nil {
				if err := r.onGoodbye(); err != nil {
					return false, err
				}
			}
			// Acknowledge, best-effort: a durable sender retries the whole
			// goodbye if this ack is lost, and re-GOODBYEs are idempotent.
			writeFrame(conn, frame{Type: frameGoodbyeAck, NextSeq: r.expected})
			return true, nil
		default:
			return false, &spec.LinkViolation{From: r.pred, To: r.self,
				Detail: fmt.Sprintf("unexpected %s frame mid-stream", f.Type)}
		}
	}
}
