package netring

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/secure"
)

// FuzzDecodeFrame throws arbitrary bodies at the decoder: it must never
// panic, and every body it accepts must re-encode to a frame that decodes
// back to the same value (the decoder and encoder agree on the format).
func FuzzDecodeFrame(f *testing.F) {
	seeds := []frame{
		{Type: frameHello, Sender: 0, Target: 1, N: 3, RingHash: 0x1234, BaseSeq: 11},
		{Type: frameHelloAck, NextSeq: 7},
		{Type: frameData, Seq: 42, Msg: core.Token(3)},
		{Type: frameData, Seq: 0, Msg: core.Finish()},
		{Type: frameData, Seq: 1, Msg: core.PhaseShift(-9)},
		{Type: frameGoodbye, NextSeq: 99},
		{Type: frameGoodbyeAck, NextSeq: 99},
	}
	for _, s := range seeds {
		f.Add(appendFrame(nil, s)[4:]) // body without the length prefix
	}
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add([]byte{99, 3})
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := decodeFrame(body)
		if err != nil {
			return // rejected without panicking: fine
		}
		re := appendFrame(nil, fr)
		got, err := decodeFrame(re[4:])
		if err != nil {
			t.Fatalf("re-encoding of accepted frame %+v rejected: %v", fr, err)
		}
		if got != fr {
			t.Fatalf("decode(encode(f)) = %+v, want %+v", got, fr)
		}
	})
}

// FuzzSealedStream is the encrypted-framing extension of the wire
// corpus: arbitrary bytes arrive on an *encrypted* ring link — below
// the frame decoder, at the secure record layer — and the receiving
// side must classify whatever happens as a transient connection error
// (the reconnect-and-resume path), never a panic and never a
// LinkViolation, because an unauthenticated stream proves nothing
// about the peer. Seeds cover bit-flipped ciphertext, a replayed
// (reused-nonce) record, truncated records, and plaintext frames sent
// to an encrypted link.
func FuzzSealedStream(f *testing.F) {
	// Plaintext HELLO aimed at an encrypted link.
	hello := appendFrame(nil, frame{Type: frameHello, Sender: 0, Target: 1, N: 3, RingHash: 0x1234})
	f.Add(hello)
	// Plaintext DATA burst.
	burst := appendFrame(nil, frame{Type: frameData, Seq: 0, Msg: core.Token(3)})
	burst = appendFrame(burst, frame{Type: frameData, Seq: 1, Msg: core.Token(1)})
	f.Add(burst)
	// Sealed-record shaped garbage: plausible length header, random tag.
	fake := []byte{0, 0, 0, 20}
	fake = append(fake, bytes.Repeat([]byte{0xa5}, 20)...)
	f.Add(fake)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	key, err := secure.GenerateKey()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go func() {
			a.Write(data)
			a.Close()
		}()
		sc, err := secure.Server(b, &secure.ServerConfig{
			Config: secure.Config{Identity: key, MaxRecord: maxPlainRecord, HandshakeTimeout: 2 * time.Second},
		})
		if err != nil {
			if !isConnError(err) {
				t.Fatalf("handshake failure not classified transient: %v", err)
			}
			return
		}
		// Fuzz data that somehow completes a handshake is impossible
		// without the key; from here any frame-read failure must still
		// be transient.
		var scratch []byte
		for {
			if _, err := readFrameInto(sc, &scratch); err != nil {
				if !isConnError(err) {
					t.Fatalf("sealed-stream failure not classified transient: %v", err)
				}
				return
			}
		}
	})
}

// FuzzDataRoundTrip exercises the core.Message path end to end: every
// representable message must survive encode → decode bit for bit.
func FuzzDataRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(0), int64(1))
	f.Add(uint64(1<<40), uint8(1), int64(0))
	f.Add(uint64(3), uint8(3), int64(-1))
	f.Add(uint64(17), uint8(5), int64(1<<62))
	f.Fuzz(func(t *testing.T, seq uint64, kind uint8, label int64) {
		if core.Kind(kind) > core.KindPeterson2 {
			// Unknown kinds are not part of the vocabulary; the decoder
			// must reject them rather than round-trip them.
			bad := frame{Type: frameData, Seq: seq, Msg: core.Message{Kind: core.Kind(kind), Label: ring.Label(label)}}
			if _, err := decodeFrame(appendFrame(nil, bad)[4:]); err == nil {
				t.Fatalf("unknown kind %d accepted", kind)
			}
			return
		}
		want := frame{Type: frameData, Seq: seq, Msg: core.Message{Kind: core.Kind(kind), Label: ring.Label(label)}}
		buf := appendFrame(nil, want)
		got, err := readFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	})
}
