package netring

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/spec"
	"repro/internal/trace"
)

// ActionObserver is called synchronously after every atomic action of a
// node's machine, with the machine itself (safe to inspect for the
// duration of the call: the node blocks until the observer returns).
// RunLocal installs one that feeds the shared spec.Checker and trace sink
// under a single lock, so the observed stream is a valid linearization
// exactly as in internal/gorun; cmd/ringnode installs a node-local one.
// Returning an error aborts the node.
type ActionObserver func(proc int, op trace.Op, action string, msg core.Message, sent []core.Message, m core.Machine) error

// NodeConfig configures one TCP ring node.
type NodeConfig struct {
	// Ring is the full labeled ring; every node knows it only for sizing,
	// its own label, and the handshake fingerprint — algorithms still see
	// nothing but their label.
	Ring *ring.Ring
	// Index is this node's position in the ring.
	Index int
	// Protocol is the election algorithm to run.
	Protocol core.Protocol
	// Listener, when non-nil, is the pre-bound listener for the incoming
	// link (RunLocal uses this). Otherwise the node binds ListenAddr.
	Listener net.Listener
	// ListenAddr is the TCP address to listen on when Listener is nil,
	// e.g. ":7001".
	ListenAddr string
	// NextAddr is the successor's listen address, e.g. "host:7002".
	NextAddr string
	// Timeout aborts a run that does not terminate. Default 30s.
	Timeout time.Duration
	// Backoff paces dial and reconnect retries (zero value: defaults).
	Backoff Backoff
	// Fault injects faults into the outgoing link (zero value: none).
	Fault LinkFault
	// OnAction observes every machine action (may be nil).
	OnAction ActionObserver
	// OnLink observes link lifecycle events — "connect", "drop",
	// "reconnect" — on the outgoing link (may be nil).
	OnLink func(proc int, event string)
}

// NodeResult is the outcome of one node's run.
type NodeResult struct {
	// Index is the node's ring position.
	Index int
	// Status is the machine's terminal status.
	Status core.Status
	// Halted reports whether the machine executed its halting statement.
	Halted bool
	// Sent counts data frames enqueued on the outgoing link (retransmits
	// after a reconnect are not counted — they carry old sequence numbers).
	Sent int
	// Reconnects counts outgoing-link drops that were re-dialed.
	Reconnects int
	// PeakSpaceBits is the machine's peak SpaceBits.
	PeakSpaceBits int
}

// ErrTimeout reports that a node's election did not terminate in time.
var ErrTimeout = errors.New("netring: execution timed out")

// RunNode executes one ring node to completion: it listens for its
// predecessor, dials its successor, runs the machine over the two links,
// and returns once the machine halts and the outgoing link is flushed.
func RunNode(cfg NodeConfig) (*NodeResult, error) {
	n := cfg.Ring.N()
	if cfg.Index < 0 || cfg.Index >= n {
		return nil, fmt.Errorf("netring: index %d outside ring of %d processes", cfg.Index, n)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("netring: p%d listen %s: %w", cfg.Index, cfg.ListenAddr, err)
		}
	}

	hash := ringHash(cfg.Ring)
	succ := (cfg.Index + 1) % n
	onLink := func(event string) {
		if cfg.OnLink != nil {
			cfg.OnLink(cfg.Index, event)
		}
	}
	// The jitter source is per-node and seeded deterministically; it only
	// perturbs retry pacing, never delivery order.
	rng := rand.New(rand.NewSource(int64(cfg.Index) + 1))
	hello := frame{Type: frameHello, Sender: cfg.Index, Target: succ, N: n, RingHash: hash}
	snd := newSender(cfg.Index, succ, cfg.NextAddr, hello, cfg.Backoff, cfg.Fault, rng, onLink)
	rcv := newReceiver(cfg.Index, n, hash, ln, onLink)

	inbox := make(chan core.Message, 64)
	done := make(chan struct{})
	fail := make(chan error, 2)
	deliver := func(m core.Message) error {
		select {
		case inbox <- m:
			return nil
		case <-done:
			return errSenderStopped
		}
	}
	go func() {
		if err := rcv.run(deliver); err != nil {
			fail <- err
		}
	}()
	senderDone := make(chan error, 1)
	go func() { senderDone <- snd.run() }()
	// The sender goroutine sends exactly one value; joinSender receives it
	// at most once so every shutdown path (including abort after a path
	// that already drained senderDone) can join without blocking forever.
	// All callers run on the RunNode goroutine, so no lock is needed.
	var (
		senderJoined bool
		senderErr    error
	)
	joinSender := func() error {
		if !senderJoined {
			senderErr = <-senderDone
			senderJoined = true
		}
		return senderErr
	}
	var doneOnce sync.Once
	closeDone := func() { doneOnce.Do(func() { close(done) }) }

	m := cfg.Protocol.NewMachine(cfg.Ring.Label(cfg.Index))
	res := &NodeResult{Index: cfg.Index}
	observe := func(op trace.Op, action string, msg core.Message, sent []core.Message) error {
		if sp := m.SpaceBits(); sp > res.PeakSpaceBits {
			res.PeakSpaceBits = sp
		}
		if cfg.OnAction == nil {
			return nil
		}
		return cfg.OnAction(cfg.Index, op, action, msg, sent, m)
	}

	abort := func(err error) (*NodeResult, error) {
		closeDone()
		snd.stop()
		rcv.stop()
		joinSender()
		res.Status = m.Status()
		res.Halted = m.Halted()
		res.Sent = snd.sent()
		res.Reconnects = snd.reconnectCount()
		return res, fmt.Errorf("netring: p%d: %w", cfg.Index, err)
	}

	timer := time.NewTimer(cfg.Timeout)
	defer timer.Stop()

	var out core.Outbox
	action := m.Init(&out)
	sent := out.Drain()
	if err := observe(trace.OpInit, action, core.Message{}, sent); err != nil {
		return abort(err)
	}
	snd.enqueue(sent)
	for !m.Halted() {
		var msg core.Message
		select {
		case msg = <-inbox:
		case err := <-fail:
			return abort(err)
		case err := <-senderDone:
			senderJoined, senderErr = true, err
			if err == nil {
				// run() returns nil only after stop() or a goodbye flush,
				// neither of which can precede halt.
				err = errors.New("sender exited before halt")
			}
			return abort(err)
		case <-timer.C:
			return abort(ErrTimeout)
		}
		action, err := m.Receive(msg, &out)
		if err != nil {
			return abort(err)
		}
		sent := out.Drain()
		if err := observe(trace.OpDeliver, action, msg, sent); err != nil {
			return abort(err)
		}
		snd.enqueue(sent)
	}

	// Clean termination: flush and close the outgoing link, then stop
	// accepting — by the model no message may be delivered after halt.
	snd.finish()
	select {
	case err := <-senderDone:
		senderJoined, senderErr = true, err
		if err != nil {
			return abort(err)
		}
	case err := <-fail:
		return abort(err)
	case <-timer.C:
		return abort(ErrTimeout)
	}
	rcv.stop()
	closeDone()
	select {
	case msg := <-inbox:
		return abort(&spec.LinkViolation{From: (cfg.Index - 1 + n) % n, To: cfg.Index,
			Detail: fmt.Sprintf("message %s delivered after halt", msg)})
	default:
	}

	res.Status = m.Status()
	res.Halted = m.Halted()
	res.Sent = snd.sent()
	res.Reconnects = snd.reconnectCount()
	return res, nil
}
