package netring

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/secure"
	"repro/internal/spec"
	"repro/internal/trace"
)

// ActionObserver is called synchronously after every atomic action of a
// node's machine, with the machine itself (safe to inspect for the
// duration of the call: the node blocks until the observer returns).
// RunLocal installs one that feeds the shared spec.Checker and trace sink
// under a single lock, so the observed stream is a valid linearization
// exactly as in internal/gorun; cmd/ringnode installs a node-local one.
// Returning an error aborts the node.
type ActionObserver func(proc int, op trace.Op, action string, msg core.Message, sent []core.Message, m core.Machine) error

// NodeConfig configures one TCP ring node.
type NodeConfig struct {
	// Ring is the full labeled ring; every node knows it only for sizing,
	// its own label, and the handshake fingerprint — algorithms still see
	// nothing but their label.
	Ring *ring.Ring
	// Index is this node's position in the ring.
	Index int
	// Protocol is the election algorithm to run.
	Protocol core.Protocol
	// Listener, when non-nil, is the pre-bound listener for the incoming
	// link (RunLocal uses this). Otherwise the node binds ListenAddr.
	Listener net.Listener
	// ListenAddr is the TCP address to listen on when Listener is nil,
	// e.g. ":7001".
	ListenAddr string
	// NextAddr is the successor's listen address, e.g. "host:7002".
	NextAddr string
	// Timeout aborts a run that does not terminate. Default 30s.
	Timeout time.Duration
	// Backoff paces dial and reconnect retries (zero value: defaults).
	Backoff Backoff
	// Fault injects faults into the outgoing link (zero value: none).
	Fault LinkFault
	// OnAction observes every machine action (may be nil).
	OnAction ActionObserver
	// OnLink observes link lifecycle events — "connect", "drop",
	// "reconnect", "goodbye-giveup", plus the durable-mode recovery events
	// "restore" and "state-corrupt" — on the outgoing link (may be nil).
	OnLink func(proc int, event string)

	// StatePath enables durable mode: the node persists a checksummed
	// NodeState snapshot here after every atomic action (atomic rename)
	// and, on startup, resumes from it — the crash-recovery tentpole. The
	// protocol's machines must implement core.Snapshotter.
	StatePath string
	// Fsync forces an fsync before each snapshot rename. Off by default:
	// the chaos model kills processes, not the kernel, and rename-only is
	// an order of magnitude cheaper.
	Fsync bool
	// OnRecover is called after a successful state restore, before any
	// action runs, with the restored machine (durable mode only; may be
	// nil). cmd/ringnode uses it to seed its spec checker with the
	// pre-crash status baseline.
	OnRecover func(proc int, m core.Machine)
	// Kill, when non-nil, aborts the node the moment it is closed — the
	// in-process analogue of SIGKILL, used by crash-recovery tests. No
	// final snapshot is written: whatever the last per-action persist
	// captured is what a restart sees.
	Kill <-chan struct{}
	// Linger keeps the listener serving handshake and GOODBYE re-acks for
	// this long after the node has otherwise finished, covering a
	// predecessor that crashed before reading our GOODBYE_ACK and redials
	// on restart. Durable mode only; default 500ms; negative disables.
	Linger time.Duration

	// Identity, when set, encrypts both ring links with the secure
	// layer: the outgoing dial runs an authenticated X25519 handshake
	// against the successor's static key and the listener only accepts
	// the predecessor's. Requires PeerKeys. Every reconnect rekeys; the
	// RESUME/ack machinery above the record layer is unchanged.
	Identity *secure.PrivateKey
	// PeerKeys holds every node's static public key in ring-index
	// order. All peers' keys (not just the two neighbors') are folded
	// into the handshake ring hash, so two nodes configured with
	// different key rosters refuse each other exactly like a wrong
	// -ring.
	PeerKeys []secure.PublicKey
}

// NodeResult is the outcome of one node's run.
type NodeResult struct {
	// Index is the node's ring position.
	Index int
	// Status is the machine's terminal status.
	Status core.Status
	// Halted reports whether the machine executed its halting statement.
	Halted bool
	// Sent counts data frames enqueued on the outgoing link across all
	// incarnations (retransmits after a reconnect or restart are not
	// counted — each sequence number counts once).
	Sent int
	// SentBits is the payload cost of those frames in bits
	// (core.Message.Bits), with the same each-frame-counts-once rule.
	SentBits int
	// Reconnects counts outgoing-link drops that were re-dialed.
	Reconnects int
	// Retransmits counts data frames written to the wire more than once
	// (this incarnation).
	Retransmits int
	// Recovered reports the node resumed from a durable state snapshot.
	Recovered bool
	// PeakSpaceBits is the machine's peak SpaceBits.
	PeakSpaceBits int
}

// ErrTimeout reports that a node's election did not terminate in time.
var ErrTimeout = errors.New("netring: execution timed out")

// ErrKilled reports the node was aborted through NodeConfig.Kill.
var ErrKilled = errors.New("netring: node killed")

// persister serializes durable snapshot writes. Data-path persists come
// from the node's main loop, but InFinished is persisted from the receiver
// goroutine and OutFinished from the sender goroutine, so the current
// state template lives behind a mutex.
type persister struct {
	path  string
	fsync bool

	mu sync.Mutex
	st NodeState
}

// save mutates the state template under the lock and writes the snapshot.
func (p *persister) save(mutate func(st *NodeState)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	mutate(&p.st)
	return SaveNodeState(p.path, &p.st, p.fsync)
}

// RunNode executes one ring node to completion: it listens for its
// predecessor, dials its successor, runs the machine over the two links,
// and returns once the machine halts and the outgoing link is flushed.
// With StatePath set it additionally persists its state after every action
// and resumes from the snapshot on restart (see NodeConfig.StatePath).
func RunNode(cfg NodeConfig) (*NodeResult, error) {
	n := cfg.Ring.N()
	if cfg.Index < 0 || cfg.Index >= n {
		return nil, fmt.Errorf("netring: index %d outside ring of %d processes", cfg.Index, n)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	durable := cfg.StatePath != ""
	if durable && cfg.Linger == 0 {
		cfg.Linger = 500 * time.Millisecond
	}

	if cfg.Identity != nil && len(cfg.PeerKeys) != n {
		return nil, fmt.Errorf("netring: secure mode needs %d peer keys, got %d", n, len(cfg.PeerKeys))
	}
	hash := ringHash(cfg.Ring)
	if cfg.Identity != nil {
		hash = ringHashWithKeys(cfg.Ring, cfg.PeerKeys)
	}
	succ := (cfg.Index + 1) % n
	onLink := func(event string) {
		if cfg.OnLink != nil {
			cfg.OnLink(cfg.Index, event)
		}
	}

	m := core.NewMachineFor(cfg.Protocol, cfg.Index, cfg.Ring.Label(cfg.Index))
	res := &NodeResult{Index: cfg.Index}

	// Durable mode: restore the previous incarnation's snapshot, if any.
	var per *persister
	var snap core.Snapshotter
	var st *NodeState
	if durable {
		var ok bool
		snap, ok = m.(core.Snapshotter)
		if !ok {
			return nil, fmt.Errorf("netring: p%d: protocol %s does not support durable state (no core.Snapshotter)", cfg.Index, cfg.Protocol.Name())
		}
		var err error
		st, err = LoadNodeState(cfg.StatePath)
		switch {
		case err == nil:
			if st.RingHash != hash || st.Index != cfg.Index || st.Protocol != cfg.Protocol.Name() {
				return nil, fmt.Errorf("netring: p%d: state file %s belongs to a different run (ring/index/protocol mismatch)", cfg.Index, cfg.StatePath)
			}
			if err := snap.RestoreState(st.Machine); err != nil {
				// The file passed its checksum but the machine blob does not
				// fit this machine: same treatment as corruption.
				onLink("state-corrupt")
				st = nil
				m = core.NewMachineFor(cfg.Protocol, cfg.Index, cfg.Ring.Label(cfg.Index))
				snap = m.(core.Snapshotter)
			}
		case errors.Is(err, os.ErrNotExist):
			st = nil // clean first start
		case errors.Is(err, ErrCorruptState):
			// Detected, not trusted: fall back to a clean start. The
			// predecessor retransmits everything from seq 0.
			onLink("state-corrupt")
			st = nil
		default:
			return nil, fmt.Errorf("netring: p%d: reading state %s: %w", cfg.Index, cfg.StatePath, err)
		}
		per = &persister{path: cfg.StatePath, fsync: cfg.Fsync,
			st: NodeState{RingHash: hash, Index: cfg.Index, Protocol: cfg.Protocol.Name()}}
		if st != nil {
			per.st = *st
			res.Recovered = true
			onLink("restore")
			if cfg.OnRecover != nil {
				cfg.OnRecover(cfg.Index, m)
			}
		}
	}

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("netring: p%d listen %s: %w", cfg.Index, cfg.ListenAddr, err)
		}
	}

	// The jitter source is per-node and seeded deterministically; it only
	// perturbs retry pacing, never delivery order.
	rng := rand.New(rand.NewSource(int64(cfg.Index) + 1))
	hello := frame{Type: frameHello, Sender: cfg.Index, Target: succ, N: n, RingHash: hash}
	labelBits := cfg.Ring.LabelBits()
	msgBits := func(m core.Message) int { return m.Bits(labelBits, n) }
	snd := newSender(cfg.Index, succ, cfg.NextAddr, hello, cfg.Backoff, cfg.Fault, rng, onLink, msgBits)
	rcv := newReceiver(cfg.Index, n, hash, ln, onLink)
	if cfg.Identity != nil {
		pred := (cfg.Index - 1 + n) % n
		snd.sec = &secure.ClientConfig{
			Config:    secure.Config{Identity: cfg.Identity, MaxRecord: maxPlainRecord},
			ServerKey: cfg.PeerKeys[succ],
		}
		rcv.sec = &secure.ServerConfig{
			Config:  secure.Config{Identity: cfg.Identity, MaxRecord: maxPlainRecord},
			Allowed: []secure.PublicKey{cfg.PeerKeys[pred]},
		}
	}

	inFinished := st != nil && st.InFinished
	delivered := uint64(0)
	if st != nil {
		snd.preload(st.OutAcked, st.Tail, st.OutFinished, st.SentBits)
		rcv.expected = st.InExpected
		delivered = st.InExpected
	}
	// halted flags deliveries that arrive after the main loop stopped
	// consuming — by the model, a message delivered after halt is a broken
	// link axiom, and the synchronous durable path must not block on it.
	var haltedFlag atomic.Bool
	if durable {
		snd.reliableGoodbye = true
		snd.onGoodbyeAcked = func() error {
			return per.save(func(s *NodeState) { s.OutFinished = true })
		}
		rcv.onGoodbye = func() error {
			return per.save(func(s *NodeState) { s.InFinished = true })
		}
	}

	inboxCap := 64
	if durable {
		// Synchronous delivery: the receiver hands over one message and
		// waits for it to be processed and persisted, so the acknowledged
		// sequence number never runs ahead of the snapshot.
		inboxCap = 0
	}
	inbox := make(chan core.Message, inboxCap)
	processed := make(chan error)
	done := make(chan struct{})
	fail := make(chan error, 2)
	deliver := func(msg core.Message) error {
		if haltedFlag.Load() {
			return &spec.LinkViolation{From: (cfg.Index - 1 + n) % n, To: cfg.Index,
				Detail: fmt.Sprintf("message %s delivered after halt", msg)}
		}
		select {
		case inbox <- msg:
		case <-done:
			return errSenderStopped
		}
		if !durable {
			return nil
		}
		select {
		case err := <-processed:
			return err
		case <-done:
			return errSenderStopped
		}
	}
	// rcvDone observes the receiver's FIRST completion (clean goodbye or
	// error). In durable mode the goroutine then keeps serving — handshake
	// re-acks and idempotent GOODBYE retries from a predecessor that
	// crashed before reading our GOODBYE_ACK — until rcv.stop().
	rcvDone := make(chan error, 1)
	go func() {
		for {
			err := rcv.run(deliver)
			select {
			case rcvDone <- err:
			default:
			}
			if err != nil {
				fail <- err
				return
			}
			if !durable || rcv.isStopped() {
				return
			}
		}
	}()
	senderDone := make(chan error, 1)
	go func() { senderDone <- snd.run() }()
	// The sender goroutine sends exactly one value; joinSender receives it
	// at most once so every shutdown path (including abort after a path
	// that already drained senderDone) can join without blocking forever.
	// All callers run on the RunNode goroutine, so no lock is needed.
	var (
		senderJoined bool
		senderErr    error
	)
	joinSender := func() error {
		if !senderJoined {
			senderErr = <-senderDone
			senderJoined = true
		}
		return senderErr
	}
	var doneOnce sync.Once
	closeDone := func() { doneOnce.Do(func() { close(done) }) }

	observe := func(op trace.Op, action string, msg core.Message, sent []core.Message) error {
		if sp := m.SpaceBits(); sp > res.PeakSpaceBits {
			res.PeakSpaceBits = sp
		}
		if cfg.OnAction == nil {
			return nil
		}
		return cfg.OnAction(cfg.Index, op, action, msg, sent, m)
	}
	// persist writes the post-action snapshot: machine state, the incoming
	// cursor, and the outgoing queue — one atomic file, so a crash lands
	// either wholly before the action or wholly after it. Ordering matters:
	// the action's sends are enqueued first, so the snapshot that claims
	// the message was consumed also carries the frames it produced.
	persist := func() error {
		if !durable {
			return nil
		}
		blob, err := snap.SnapshotState()
		if err != nil {
			return err
		}
		sent, base, tail, bits := snd.snapshotOut()
		return per.save(func(s *NodeState) {
			s.Inited = true
			s.InExpected = delivered
			s.OutSent = sent
			s.OutAcked = base
			s.SentBits = bits
			s.Tail = tail
			s.Machine = blob
		})
	}

	finish := func() {
		if sp := m.SpaceBits(); sp > res.PeakSpaceBits {
			res.PeakSpaceBits = sp
		}
		res.Status = m.Status()
		res.Halted = m.Halted()
		res.Sent = snd.sent()
		res.SentBits = int(snd.sentBits())
		res.Reconnects = snd.reconnectCount()
		res.Retransmits = snd.retransmitCount()
	}
	abort := func(err error) (*NodeResult, error) {
		haltedFlag.Store(true)
		closeDone()
		snd.stop()
		rcv.stop()
		joinSender()
		finish()
		return res, fmt.Errorf("netring: p%d: %w", cfg.Index, err)
	}

	timer := time.NewTimer(cfg.Timeout)
	defer timer.Stop()

	var out core.Outbox
	if st == nil || !st.Inited {
		action := m.Init(&out)
		sent := out.Drain()
		if err := observe(trace.OpInit, action, core.Message{}, sent); err != nil {
			return abort(err)
		}
		snd.enqueue(sent)
		if err := persist(); err != nil {
			return abort(err)
		}
	}
	for !m.Halted() {
		var msg core.Message
		select {
		case msg = <-inbox:
		case err := <-fail:
			return abort(err)
		case err := <-senderDone:
			senderJoined, senderErr = true, err
			if err == nil {
				// run() returns nil only after stop() or a goodbye flush,
				// neither of which can precede halt.
				err = errors.New("sender exited before halt")
			}
			return abort(err)
		case <-timer.C:
			return abort(ErrTimeout)
		case <-cfg.Kill:
			return abort(ErrKilled)
		}
		action, err := m.Receive(msg, &out)
		if err != nil {
			return abort(err)
		}
		sent := out.Drain()
		if err := observe(trace.OpDeliver, action, msg, sent); err != nil {
			return abort(err)
		}
		snd.enqueue(sent)
		delivered++
		perr := persist()
		if durable {
			processed <- perr // release the receiver; it aborts on error
		}
		if perr != nil {
			return abort(perr)
		}
	}
	haltedFlag.Store(true)

	// Clean termination: flush and close the outgoing link. In durable
	// mode the GOODBYE is acknowledged and both ends of the handshake are
	// persisted; the incoming side then waits for the predecessor's
	// GOODBYE so InFinished survives restarts, and lingers briefly for
	// stragglers. Without durable state, stop accepting immediately — by
	// the model no message may be delivered after halt.
	snd.finish()
	select {
	case err := <-senderDone:
		senderJoined, senderErr = true, err
		if err != nil {
			return abort(err)
		}
	case err := <-fail:
		return abort(err)
	case <-timer.C:
		return abort(ErrTimeout)
	case <-cfg.Kill:
		return abort(ErrKilled)
	}
	if durable {
		if !inFinished {
			// Wait for the predecessor's GOODBYE (or a receiver error), so
			// InFinished is persisted before we exit: a restart then knows
			// the incoming stream is complete.
			select {
			case err := <-rcvDone:
				if err != nil {
					return abort(err)
				}
			case err := <-fail:
				return abort(err)
			case <-timer.C:
				return abort(ErrTimeout)
			case <-cfg.Kill:
				return abort(ErrKilled)
			}
		}
		if cfg.Linger > 0 {
			// The receiver goroutine is still accepting; give a predecessor
			// that crashed mid-termination a window to redial and collect its
			// GOODBYE_ACK before the listener closes.
			lingerTimer := time.NewTimer(cfg.Linger)
			select {
			case <-lingerTimer.C:
			case err := <-fail:
				lingerTimer.Stop()
				return abort(err)
			case <-cfg.Kill:
				lingerTimer.Stop()
				return abort(ErrKilled)
			}
		}
	}
	rcv.stop()
	closeDone()
	select {
	case msg := <-inbox:
		return abort(&spec.LinkViolation{From: (cfg.Index - 1 + n) % n, To: cfg.Index,
			Detail: fmt.Sprintf("message %s delivered after halt", msg)})
	case err := <-fail:
		return abort(err)
	default:
	}

	finish()
	return res, nil
}
