package netring

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{Type: frameHello, Sender: 0, Target: 1, N: 2, RingHash: 0xdeadbeef},
		{Type: frameHello, Sender: 7, Target: 0, N: 8, RingHash: 1, BaseSeq: 93},
		{Type: frameHelloAck, NextSeq: 0},
		{Type: frameHelloAck, NextSeq: 1<<63 + 17},
		{Type: frameData, Seq: 42, Msg: core.Token(3)},
		{Type: frameData, Seq: 0, Msg: core.Finish()},
		{Type: frameData, Seq: 9, Msg: core.PhaseShift(-5)},
		{Type: frameData, Seq: 10, Msg: core.FinishLabel(1 << 40)},
		{Type: frameData, Seq: 11, Msg: core.Message{Kind: core.KindPeterson2, Label: 99}},
		{Type: frameGoodbye, NextSeq: 1234},
		{Type: frameGoodbyeAck, NextSeq: 1234},
	}
	for _, f := range cases {
		buf := appendFrame(nil, f)
		got, err := readFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%+v: %v", f, err)
		}
		if got != f {
			t.Errorf("round trip: got %+v, want %+v", got, f)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := appendFrame(nil, frame{Type: frameData, Seq: 1, Msg: core.Token(2)})
	cases := map[string][]byte{
		"empty body":       {},
		"one byte":         {wireVersion},
		"bad version":      {99, byte(frameData), 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 2},
		"unknown type":     {wireVersion, 200},
		"short data":       valid[4 : len(valid)-1],
		"long data":        append(append([]byte{}, valid[4:]...), 0),
		"unknown kind":     {wireVersion, byte(frameData), 0, 0, 0, 0, 0, 0, 0, 1, 200, 0, 0, 0, 0, 0, 0, 0, 2},
		"hello bad index":  {wireVersion, byte(frameHello), 0, 0, 0, 9, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"hello v1 length":  {wireVersion, byte(frameHello), 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0},
		"hello wrong size": {wireVersion, byte(frameHello), 0},
	}
	for name, body := range cases {
		if _, err := decodeFrame(body); err == nil {
			t.Errorf("%s: decode accepted malformed body % x", name, body)
		}
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	var buf bytes.Buffer
	var pfx [4]byte
	binary.BigEndian.PutUint32(pfx[:], 1<<20)
	buf.Write(pfx[:])
	buf.WriteString(strings.Repeat("x", 100))
	if _, err := readFrame(&buf); err == nil || !strings.Contains(err.Error(), "frame length") {
		t.Fatalf("oversized length not rejected: %v", err)
	}
}

func TestRingHashDistinguishesRings(t *testing.T) {
	a := ringHash(ring.MustNew(1, 2, 2))
	b := ringHash(ring.MustNew(1, 2, 3))
	c := ringHash(ring.MustNew(2, 1, 2))
	if a == b || a == c {
		t.Errorf("ring hashes collide: %x %x %x", a, b, c)
	}
	if a != ringHash(ring.MustNew(1, 2, 2)) {
		t.Error("ring hash not deterministic")
	}
}

// TestReceiverRejectsWrongPeer feeds the receiver handshakes that must be
// refused: a stranger's index, a mismatched ring, a non-HELLO opener, and
// a garbage stream after a valid handshake.
func TestReceiverRejectsWrongPeer(t *testing.T) {
	r := ring.MustNew(1, 2, 2)
	hash := ringHash(r)
	open := func() (*receiver, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return newReceiver(1, 3, hash, ln, nil), ln.Addr().String()
	}
	dial := func(t *testing.T, addr string, frames ...frame) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for _, f := range frames {
			if err := writeFrame(conn, f); err != nil {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	hello := frame{Type: frameHello, Sender: 0, Target: 1, N: 3, RingHash: hash}

	cases := []struct {
		name   string
		frames []frame
		want   string
	}{
		{"wrong sender", []frame{{Type: frameHello, Sender: 2, Target: 1, N: 3, RingHash: hash}}, "predecessor"},
		{"wrong ring hash", []frame{{Type: frameHello, Sender: 0, Target: 1, N: 3, RingHash: hash + 1}}, "ring mismatch"},
		{"not a hello", []frame{{Type: frameGoodbye, NextSeq: 0}}, "want HELLO"},
		{"hello then mid-stream hello", []frame{hello, hello}, "reliable-FIFO"},
		{"sequence gap", []frame{hello, {Type: frameData, Seq: 5, Msg: core.Token(1)}}, "out-of-order"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rcv, addr := open()
			errc := make(chan error, 1)
			go func() {
				errc <- rcv.run(func(core.Message) error { return nil })
			}()
			dial(t, addr, c.frames...)
			select {
			case err := <-errc:
				if err == nil || !strings.Contains(err.Error(), c.want) {
					t.Fatalf("got %v, want error containing %q", err, c.want)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("receiver did not reject")
			}
			rcv.stop()
		})
	}
}
