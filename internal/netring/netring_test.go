package netring

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

func protocols(t *testing.T, r *ring.Ring) []core.Protocol {
	t.Helper()
	k := max(2, r.MaxMultiplicity())
	b := r.LabelBits()
	var ps []core.Protocol
	for _, mk := range []func() (core.Protocol, error){
		func() (core.Protocol, error) { return core.NewAProtocol(k, b) },
		func() (core.Protocol, error) { return core.NewStarProtocol(k, b) },
		func() (core.Protocol, error) { return core.NewBProtocol(k, b) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

// TestRunLocalElects runs every paper algorithm on canonical rings over
// loopback TCP and checks the leader against the Lyndon ground truth.
func TestRunLocalElects(t *testing.T) {
	rings := []*ring.Ring{
		ring.MustNew(1, 2),
		ring.Ring122(),
		ring.MustNew(2, 1, 3),
		ring.Figure1(),
	}
	for _, r := range rings {
		trueLeader, ok := r.TrueLeader()
		if !ok {
			t.Fatalf("ring %s symmetric", r)
		}
		for _, p := range protocols(t, r) {
			res, err := RunLocal(r, p, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), r, err)
			}
			if res.LeaderIndex != trueLeader {
				t.Errorf("%s on %s: elected p%d, true leader p%d", p.Name(), r, res.LeaderIndex, trueLeader)
			}
			if res.Reconnects != 0 {
				t.Errorf("%s on %s: %d unexpected reconnects", p.Name(), r, res.Reconnects)
			}
		}
	}
}

// TestThreeWayEngineAgreement is the transport half of E10: on every test
// ring, the simulator, the goroutine runtime, and the TCP engine must
// elect the same leader with the identical message count.
func TestThreeWayEngineAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rings := []*ring.Ring{ring.Ring122(), ring.Figure1()}
	for _, n := range []int{6, 9, 12} {
		r, err := ring.RandomAsymmetric(rng, n, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	for _, r := range rings {
		for _, p := range protocols(t, r) {
			simRes, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				t.Fatalf("sim %s on %s: %v", p.Name(), r, err)
			}
			goRes, err := gorun.Run(r, p, time.Minute)
			if err != nil {
				t.Fatalf("gorun %s on %s: %v", p.Name(), r, err)
			}
			tcpRes, err := RunLocal(r, p, Options{})
			if err != nil {
				t.Fatalf("tcp %s on %s: %v", p.Name(), r, err)
			}
			if simRes.LeaderIndex != tcpRes.LeaderIndex || goRes.LeaderIndex != tcpRes.LeaderIndex {
				t.Errorf("%s on %s: leaders sim=p%d gorun=p%d tcp=p%d", p.Name(), r,
					simRes.LeaderIndex, goRes.LeaderIndex, tcpRes.LeaderIndex)
			}
			if simRes.Messages != tcpRes.Messages || goRes.Messages != tcpRes.Messages {
				t.Errorf("%s on %s: messages sim=%d gorun=%d tcp=%d", p.Name(), r,
					simRes.Messages, goRes.Messages, tcpRes.Messages)
			}
		}
	}
}

// TestBaselineOverTCP runs a K1 baseline through the transport, covering
// the Peterson message kinds on the wire.
func TestBaselineOverTCP(t *testing.T) {
	r := ring.Distinct(6)
	p, err := baseline.NewPetersonProtocol(r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLocal(r, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := gorun.Run(r, p, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages {
		t.Errorf("tcp p%d/%d msgs, goroutines p%d/%d", res.LeaderIndex, res.Messages, ref.LeaderIndex, ref.Messages)
	}
}

// TestFaultTransientDrop injects a mid-election connection drop on two
// links: the senders must reconnect via backoff, resume from the
// receiver's acknowledged sequence number, and the election must still
// pass the full internal/spec checker with the exact message count of the
// fault-free engines.
func TestFaultTransientDrop(t *testing.T) {
	r := ring.Figure1()
	for _, p := range protocols(t, r) {
		ref, err := sim.RunSync(r, p, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mem := &trace.Mem{}
		res, err := RunLocal(r, p, Options{
			Faults: Faults{
				0: {DropAfter: 3},
				4: {DropAfter: 1, Delay: 200 * time.Microsecond},
			},
			Sink: mem,
		})
		if err != nil {
			t.Fatalf("%s with faults: %v", p.Name(), err)
		}
		if res.Reconnects < 2 {
			t.Errorf("%s: %d reconnects, want ≥ 2 (both faults must fire)", p.Name(), res.Reconnects)
		}
		if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages {
			t.Errorf("%s: faulty run p%d/%d msgs, fault-free p%d/%d", p.Name(),
				res.LeaderIndex, res.Messages, ref.LeaderIndex, ref.Messages)
		}
		drops, reconnects := 0, 0
		for _, e := range mem.Events {
			if e.Op == trace.OpLink {
				switch e.Action {
				case "drop":
					drops++
				case "reconnect":
					reconnects++
				}
			}
		}
		if drops < 2 || reconnects < 2 {
			t.Errorf("%s: trace has %d drops / %d reconnects, want ≥ 2 each", p.Name(), drops, reconnects)
		}
	}
}

// TestFaultSlowLink delays every frame on one link; the election result
// must be unaffected (asynchronous model: arbitrary finite delays).
func TestFaultSlowLink(t *testing.T) {
	r := ring.Ring122()
	p := protocols(t, r)[0]
	ref, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLocal(r, p, Options{Faults: Faults{1: {Delay: time.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderIndex != ref.LeaderIndex || res.Messages != ref.Messages {
		t.Errorf("slow link changed outcome: p%d/%d vs p%d/%d",
			res.LeaderIndex, res.Messages, ref.LeaderIndex, ref.Messages)
	}
}

// TestDialBackoffWaitsForListener starts a node whose successor's
// listener appears only after a delay: the dial retry loop must carry the
// election over the gap.
func TestDialBackoffWaitsForListener(t *testing.T) {
	r := ring.Ring122()
	p := protocols(t, r)[0]
	n := r.N()

	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		if i == 1 {
			// Free the port and re-bind it late: p0's dialer must retry.
			ln.Close()
		} else {
			listeners[i] = ln
		}
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		ln, err := net.Listen("tcp", addrs[1])
		if err != nil {
			return
		}
		cfgRun(t, r, p, 1, ln, addrs)
	}()

	var wg sync.WaitGroup
	results := make([]*NodeResult, n)
	errs := make([]error, n)
	for _, i := range []int{0, 2} {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunNode(NodeConfig{
				Ring: r, Index: i, Protocol: p,
				Listener: listeners[i], NextAddr: addrs[(i+1)%n],
				Timeout: 20 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		if !results[i].Halted {
			t.Errorf("node %d did not halt", i)
		}
	}
}

// cfgRun runs one node inline (helper for the delayed-listener test).
func cfgRun(t *testing.T, r *ring.Ring, p core.Protocol, i int, ln net.Listener, addrs []string) {
	if _, err := RunNode(NodeConfig{
		Ring: r, Index: i, Protocol: p,
		Listener: ln, NextAddr: addrs[(i+1)%r.N()],
		Timeout: 20 * time.Second,
	}); err != nil {
		t.Errorf("node %d: %v", i, err)
	}
}

// TestUnreachableSuccessorFails exhausts the dial budget: the run must
// fail with a meaningful error instead of hanging.
func TestUnreachableSuccessorFails(t *testing.T) {
	r := ring.MustNew(1, 2)
	p := protocols(t, r)[0]
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Successor address: a port nothing listens on.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	start := time.Now()
	_, err = RunNode(NodeConfig{
		Ring: r, Index: 0, Protocol: p,
		Listener: ln, NextAddr: deadAddr,
		Timeout: 30 * time.Second,
		Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 3},
	})
	if err == nil {
		t.Fatal("dialing a dead successor must fail")
	}
	// The main loop must surface the sender's dial failure as soon as the
	// retry budget is exhausted — not sit out the full run timeout.
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("got ErrTimeout, want the underlying dial failure: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("dial failure surfaced only after %v", elapsed)
	}
}

// stubProtocol builds machines from a constructor; used by the shutdown
// regression tests below to drive RunNode into exact failure paths.
type stubProtocol struct{ mk func() core.Machine }

func (p stubProtocol) Name() string                       { return "stub" }
func (p stubProtocol) NewMachine(ring.Label) core.Machine { return p.mk() }

// haltStub is a minimal machine: it sends sendOnInit tokens at Init and
// halts after haltAfter deliveries (0 = halted from the start), sleeping
// receiveDelay per delivery so that a concurrently delivered straggler
// can land in the inbox before the halt.
type haltStub struct {
	sendOnInit   int
	haltAfter    int
	receiveDelay time.Duration
	received     int
}

func (s *haltStub) Init(out *core.Outbox) string {
	for i := 0; i < s.sendOnInit; i++ {
		out.Send(core.Token(1))
	}
	return "stub-init"
}

func (s *haltStub) Receive(core.Message, *core.Outbox) (string, error) {
	if s.receiveDelay > 0 {
		time.Sleep(s.receiveDelay)
	}
	s.received++
	return "stub-recv", nil
}

func (s *haltStub) Halted() bool        { return s.received >= s.haltAfter }
func (s *haltStub) Status() core.Status { return core.Status{} }
func (s *haltStub) StateName() string   { return "STUB" }
func (s *haltStub) SpaceBits() int      { return 0 }
func (s *haltStub) Fingerprint() string { return "stub" }

// TestFlushFailureAfterHaltReturns pins the regression where a sender
// failure after halt deadlocked RunNode: the machine halts at Init with a
// frame still queued, the successor is unreachable, so the post-halt
// flush exhausts the dial budget and hands abort an already-drained
// senderDone. RunNode must return the dial error, not hang.
func TestFlushFailureAfterHaltReturns(t *testing.T) {
	r := ring.MustNew(1, 2)
	p := stubProtocol{mk: func() core.Machine { return &haltStub{sendOnInit: 1, haltAfter: 0} }}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := RunNode(NodeConfig{
			Ring: r, Index: 0, Protocol: p,
			Listener: ln, NextAddr: deadAddr,
			Timeout: 30 * time.Second,
			Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 3},
		})
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("flushing to a dead successor must fail")
		}
		if errors.Is(err, ErrTimeout) {
			t.Fatalf("got ErrTimeout, want the underlying dial failure: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("RunNode hung on the post-halt flush failure")
	}
}

// TestDeliveryAfterHaltViolation pins the regression where a straggler
// message found in the inbox after a clean halt crashed the node with a
// double close(done): the fake predecessor sends two frames but the
// machine halts after one, so the second must surface as a
// *spec.LinkViolation error, not a panic.
func TestDeliveryAfterHaltViolation(t *testing.T) {
	r := ring.MustNew(1, 2)
	hash := ringHash(r)
	// The receive delay keeps the machine busy long enough for the
	// receiver goroutine to buffer the second frame before halt.
	p := stubProtocol{mk: func() core.Machine { return &haltStub{haltAfter: 1, receiveDelay: 100 * time.Millisecond} }}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	succLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer succLn.Close()

	// Fake node 1, successor side: accept node 0's link and ack it so the
	// post-halt GOODBYE flush completes cleanly.
	go func() {
		conn, err := succLn.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if f, err := readFrame(conn); err != nil || f.Type != frameHello {
			return
		}
		writeFrame(conn, frame{Type: frameHelloAck, NextSeq: 0})
		for {
			if _, err := readFrame(conn); err != nil {
				return
			}
		}
	}()
	// Fake node 1, predecessor side: handshake, then two data frames and a
	// matching GOODBYE — one more delivery than the machine consumes.
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		writeFrame(conn, frame{Type: frameHello, Sender: 1, Target: 0, N: 2, RingHash: hash})
		if f, err := readFrame(conn); err != nil || f.Type != frameHelloAck {
			return
		}
		writeFrame(conn, frame{Type: frameData, Seq: 0, Msg: core.Token(1)})
		writeFrame(conn, frame{Type: frameData, Seq: 1, Msg: core.Token(2)})
		writeFrame(conn, frame{Type: frameGoodbye, NextSeq: 2})
	}()

	errc := make(chan error, 1)
	go func() {
		_, err := RunNode(NodeConfig{
			Ring: r, Index: 0, Protocol: p,
			Listener: ln, NextAddr: succLn.Addr().String(),
			Timeout: 10 * time.Second,
		})
		errc <- err
	}()
	select {
	case err := <-errc:
		var lv *spec.LinkViolation
		if !errors.As(err, &lv) {
			t.Fatalf("got %T (%v), want *spec.LinkViolation for delivery after halt", err, err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("RunNode hung on the delivery-after-halt path")
	}
}

// TestSpecViolationSurfaced checks that a transport-level FIFO breach is
// reported as a *spec.LinkViolation, not a generic error.
func TestSpecViolationSurfaced(t *testing.T) {
	hashR := ring.Ring122()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcv := newReceiver(1, 3, ringHash(hashR), ln, nil)
	errc := make(chan error, 1)
	go func() { errc <- rcv.run(func(core.Message) error { return nil }) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeFrame(conn, frame{Type: frameHello, Sender: 0, Target: 1, N: 3, RingHash: ringHash(hashR)})
	writeFrame(conn, frame{Type: frameData, Seq: 3, Msg: core.Token(1)}) // gap: expected 0
	select {
	case err := <-errc:
		var lv *spec.LinkViolation
		if !errors.As(err, &lv) {
			t.Fatalf("got %T (%v), want *spec.LinkViolation", err, err)
		}
		if lv.From != 0 || lv.To != 1 {
			t.Errorf("violation endpoints p%d->p%d, want p0->p1", lv.From, lv.To)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sequence gap not detected")
	}
	rcv.stop()
}

// TestTraceLinearization records a TCP run and checks the stream is a
// valid linearization: per-link FIFO order means the delivery sequence of
// every process matches its predecessor's send sequence.
func TestTraceLinearization(t *testing.T) {
	r := ring.Ring122()
	p := protocols(t, r)[2] // Bk: also exercises phase events
	mem := &trace.Mem{}
	if _, err := RunLocal(r, p, Options{Sink: mem}); err != nil {
		t.Fatal(err)
	}
	n := r.N()
	sends := make([][]core.Message, n)
	delivers := make([][]core.Message, n)
	phases := 0
	for _, e := range mem.Events {
		switch e.Op {
		case trace.OpSend:
			sends[e.Proc] = append(sends[e.Proc], e.Msg)
		case trace.OpDeliver:
			delivers[e.Proc] = append(delivers[e.Proc], e.Msg)
		case trace.OpPhase:
			phases++
		}
	}
	for i := 0; i < n; i++ {
		to := (i + 1) % n
		if len(delivers[to]) > len(sends[i]) {
			t.Fatalf("p%d delivered %d messages but p%d sent %d", to, len(delivers[to]), i, len(sends[i]))
		}
		for j, m := range delivers[to] {
			if sends[i][j] != m {
				t.Errorf("link p%d->p%d: delivery %d is %s, send was %s", i, to, j, m, sends[i][j])
			}
		}
	}
	if phases == 0 {
		t.Error("Bk run recorded no phase events")
	}
}

// TestRunLocalTimeout aborts cleanly on a protocol that cannot finish:
// a single fault delay so large the timeout fires first.
func TestRunLocalTimeout(t *testing.T) {
	r := ring.Figure1()
	p := protocols(t, r)[2]
	start := time.Now()
	_, err := RunLocal(r, p, Options{
		Timeout: 300 * time.Millisecond,
		Faults:  Faults{0: {Delay: 10 * time.Second}},
	})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("timeout did not abort promptly")
	}
}
