package netring

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/secure"
)

func genKeys(t testing.TB, n int) []*secure.PrivateKey {
	t.Helper()
	keys := make([]*secure.PrivateKey, n)
	for i := range keys {
		k, err := secure.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	return keys
}

// TestSecureRunMatchesPlaintext is the transport-equivalence pin: the
// same election through encrypted links produces the same leader and
// the exact same message count as the plaintext run. Encryption is a
// conn wrapper below the frame layer, so nothing the spec checker sees
// may change.
func TestSecureRunMatchesPlaintext(t *testing.T) {
	rings := []*ring.Ring{ring.Ring122(), ring.Figure1()}
	for _, r := range rings {
		for _, p := range protocols(t, r) {
			plain, err := RunLocal(r, p, Options{})
			if err != nil {
				t.Fatalf("plaintext %s on %s: %v", p.Name(), r, err)
			}
			enc, err := RunLocal(r, p, Options{Keys: genKeys(t, r.N())})
			if err != nil {
				t.Fatalf("encrypted %s on %s: %v", p.Name(), r, err)
			}
			if enc.LeaderIndex != plain.LeaderIndex {
				t.Errorf("%s on %s: encrypted leader p%d, plaintext p%d",
					p.Name(), r, enc.LeaderIndex, plain.LeaderIndex)
			}
			if enc.Messages != plain.Messages {
				t.Errorf("%s on %s: encrypted sent %d messages, plaintext %d",
					p.Name(), r, enc.Messages, plain.Messages)
			}
			if enc.TotalBits != plain.TotalBits {
				t.Errorf("%s on %s: encrypted %d bits, plaintext %d",
					p.Name(), r, enc.TotalBits, plain.TotalBits)
			}
		}
	}
}

// TestSecureRunWithFaults exercises rekey-on-reconnect: a link that
// drops mid-election forces a fresh handshake on redial, and the resume
// machinery above the record layer must still deliver exactly once.
func TestSecureRunWithFaults(t *testing.T) {
	r := ring.Figure1()
	p := protocols(t, r)[2] // algorithm B
	plain, err := RunLocal(r, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLocal(r, p, Options{
		Keys:   genKeys(t, r.N()),
		Faults: Faults{0: {DropAfter: 2}, 2: {DropAfter: 3}},
	})
	if err != nil {
		t.Fatalf("encrypted faulty run: %v", err)
	}
	if res.LeaderIndex != plain.LeaderIndex || res.Messages != plain.Messages {
		t.Fatalf("encrypted faulty run diverged: leader p%d msgs %d, want p%d msgs %d",
			res.LeaderIndex, res.Messages, plain.LeaderIndex, plain.Messages)
	}
	if res.Reconnects == 0 {
		t.Fatal("fault plan produced no reconnects; rekey path not exercised")
	}
}

// TestSecureKeyRosterMismatchFailsFast: two nodes agreeing on -ring but
// disagreeing about some node's public key must refuse each other. A
// wrong key for a *neighbor* fails inside the secure handshake; this
// test pins the harder case — a consistent neighborhood but a diverging
// roster entry elsewhere — which the HELLO ring hash catches.
func TestSecureKeyRosterMismatchFailsFast(t *testing.T) {
	r := ring.Ring122()
	n := r.N()
	keys := genKeys(t, n)
	goodRoster := make([]secure.PublicKey, n)
	for i, k := range keys {
		goodRoster[i] = k.Public()
	}
	badRoster := append([]secure.PublicKey(nil), goodRoster...)
	rogue, _ := secure.GenerateKey()
	badRoster[2] = rogue.Public() // disagreement about node 2's key

	// Node 0 dials node 1 directly: handshake succeeds (the
	// neighborhood keys agree) but the HELLO ring hash differs.
	lns, addrs := testListeners(t, 2)
	p := protocols(t, r)[0]
	errc := make(chan error, 2)
	go func() {
		_, err := RunNode(NodeConfig{
			Ring: r, Index: 1, Protocol: p,
			Listener: lns[1], NextAddr: addrs[0],
			Timeout: 5 * time.Second, Identity: keys[1], PeerKeys: goodRoster,
			Backoff: Backoff{Attempts: 3},
		})
		errc <- err
	}()
	go func() {
		_, err := RunNode(NodeConfig{
			Ring: r, Index: 0, Protocol: p,
			Listener: lns[0], NextAddr: addrs[1],
			Timeout: 5 * time.Second, Identity: keys[0], PeerKeys: badRoster,
			Backoff: Backoff{Attempts: 3},
		})
		errc <- err
	}()
	sawMismatch := false
	for i := 0; i < 2; i++ {
		err := <-errc
		if err != nil && strings.Contains(err.Error(), "ring mismatch") {
			sawMismatch = true
		}
	}
	if !sawMismatch {
		t.Fatal("diverging key roster did not surface as a handshake ring mismatch")
	}
}

// TestSecureNeighborKeyMismatchFailsFast: a node dialing a successor
// that holds a different static key than configured exhausts its dial
// attempts inside the secure handshake and gives up with a DialError —
// as fast as dialing a dead address, never delivering anything.
func TestSecureNeighborKeyMismatchFailsFast(t *testing.T) {
	r := ring.Ring122()
	n := r.N()
	keys := genKeys(t, n)
	roster := make([]secure.PublicKey, n)
	for i, k := range keys {
		roster[i] = k.Public()
	}
	rogue, _ := secure.GenerateKey()
	wrongRoster := append([]secure.PublicKey(nil), roster...)
	wrongRoster[1] = rogue.Public() // node 0 will encrypt to the wrong key

	lns, addrs := testListeners(t, 2)
	// A stand-in successor with node 1's *real* identity: every
	// handshake from node 0 must fail authentication against it.
	go func() {
		for {
			conn, err := lns[1].Accept()
			if err != nil {
				return
			}
			go func() {
				if sc, err := secure.Server(conn, &secure.ServerConfig{
					Config: secure.Config{Identity: keys[1]},
				}); err == nil {
					sc.Close()
				}
				conn.Close()
			}()
		}
	}()
	defer lns[1].Close()

	p := protocols(t, r)[0]
	_, err := RunNode(NodeConfig{
		Ring: r, Index: 0, Protocol: p,
		Listener: lns[0], NextAddr: addrs[1],
		Timeout: 20 * time.Second, Identity: keys[0], PeerKeys: wrongRoster,
		Backoff: Backoff{Attempts: 3, Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	var de *DialError
	if !errors.As(err, &de) {
		t.Fatalf("want DialError from key mismatch, got %v", err)
	}
	if de.Last == nil || !secure.IsHandshakeError(de.Last) {
		t.Fatalf("DialError should carry the handshake failure, got %v", de.Last)
	}
}

// testListeners binds n loopback listeners and returns them with their
// addresses.
func testListeners(t testing.TB, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}
