package netring

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/secure"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Options configures a RunLocal execution.
type Options struct {
	// Timeout aborts a run that does not terminate. Default 30s.
	Timeout time.Duration
	// Faults injects per-link faults, keyed by the sending node's index.
	Faults Faults
	// Backoff paces dial and reconnect retries (zero value: defaults).
	Backoff Backoff
	// Sink receives trace events, including OpLink transport events. The
	// engine serializes Record calls; may be nil.
	Sink trace.Sink
	// Keys, when it holds one private key per node, runs every ring
	// link through the authenticated encryption layer (internal/secure)
	// — each node dials its successor with the successor's public key
	// and accepts only its predecessor's. Leaders, message counts, and
	// spec results are identical to a plaintext run.
	Keys []*secure.PrivateKey
}

// Result is the outcome of one TCP execution.
type Result struct {
	// Protocol is the protocol's display name.
	Protocol string
	// N is the ring size.
	N int
	// LeaderIndex is the elected process's index.
	LeaderIndex int
	// Messages is the total number of protocol messages sent (transport
	// retransmissions after a reconnect are not protocol messages and are
	// not counted).
	Messages int
	// TotalBits is the total payload cost of those messages in bits
	// (core.Message.Bits) — identical to the simulator's for the same
	// (ring, protocol), since it is a pure function of the message
	// sequence.
	TotalBits int
	// Reconnects is the total number of link drops that were re-dialed.
	Reconnects int
	// Statuses is the terminal status of every process.
	Statuses []core.Status
	// PeakSpacePerProc is each process's peak SpaceBits.
	PeakSpacePerProc []int
	// Wall is the elapsed wall-clock time of the run.
	Wall time.Duration
}

// RunLocal executes the protocol on r as N in-process nodes connected by
// real TCP sockets on loopback — one listener, one dialer, and one
// machine per node, with no shared state beyond the wire and the spec
// checker. The full process-terminating leader-election specification is
// verified online exactly as in the other engines; FIFO is enforced by
// the transport's sequence numbers rather than assumed.
func RunLocal(r *ring.Ring, p core.Protocol, opts Options) (*Result, error) {
	n := r.N()
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}

	// Bind every listener before any node dials, so the initial connect
	// normally succeeds on the first attempt; the backoff path still
	// covers slow starts and injected drops.
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				listeners[j].Close()
			}
			return nil, fmt.Errorf("netring: listen: %w", err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	res := &Result{
		Protocol:         p.Name(),
		N:                n,
		LeaderIndex:      -1,
		Statuses:         make([]core.Status, n),
		PeakSpacePerProc: make([]int, n),
	}

	// Shared observation state: spec checking and trace recording happen
	// under one lock so the recorded stream is a valid linearization (per
	// -process program order, per-link FIFO order, sends before their
	// deliveries), as in internal/gorun.
	labelBits := r.LabelBits()
	checker := spec.New(n)
	var mu sync.Mutex
	lastPhase := make([]int, n)
	onAction := func(proc int, op trace.Op, action string, msg core.Message, sent []core.Message, m core.Machine) error {
		mu.Lock()
		defer mu.Unlock()
		if opts.Sink != nil {
			opts.Sink.Record(trace.Event{Op: op, Proc: proc, Action: action, Msg: msg, State: m.StateName()})
			if pr, ok := m.(core.PhaseReporter); ok {
				if ph := pr.Phase(); ph > lastPhase[proc] {
					for q := lastPhase[proc] + 1; q <= ph; q++ {
						opts.Sink.Record(trace.Event{Op: trace.OpPhase, Proc: proc, Phase: q, Guest: pr.Guest(), Active: pr.Active()})
					}
					lastPhase[proc] = ph
				}
			}
			for _, sm := range sent {
				opts.Sink.Record(trace.Event{Op: trace.OpSend, Proc: proc, Msg: sm, Bits: sm.Bits(labelBits, n)})
			}
			if m.Halted() {
				opts.Sink.Record(trace.Event{Op: trace.OpHalt, Proc: proc, State: m.StateName()})
			}
		}
		return checker.Observe(proc, m.Status())
	}
	onLink := func(proc int, event string) {
		if opts.Sink == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		op := trace.OpLink
		if event == "restore" || event == "state-corrupt" {
			op = trace.OpRecover
		}
		opts.Sink.Record(trace.Event{Op: op, Proc: proc, Action: event})
	}

	var peerKeys []secure.PublicKey
	if len(opts.Keys) > 0 {
		if len(opts.Keys) != n {
			return res, fmt.Errorf("netring: got %d keys for %d nodes", len(opts.Keys), n)
		}
		peerKeys = make([]secure.PublicKey, n)
		for i, k := range opts.Keys {
			peerKeys[i] = k.Public()
		}
	}

	start := time.Now()
	results := make([]*NodeResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := NodeConfig{
				Ring:     r,
				Index:    i,
				Protocol: p,
				Listener: listeners[i],
				NextAddr: addrs[(i+1)%n],
				Timeout:  opts.Timeout,
				Backoff:  opts.Backoff,
				Fault:    opts.Faults[i],
				OnAction: onAction,
				OnLink:   onLink,
			}
			if peerKeys != nil {
				cfg.Identity = opts.Keys[i]
				cfg.PeerKeys = peerKeys
			}
			results[i], errs[i] = RunNode(cfg)
		}(i)
	}
	wg.Wait()
	res.Wall = time.Since(start)

	ids := make([]ring.Label, n)
	halted := make([]bool, n)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return res, errs[i]
		}
		nr := results[i]
		res.Messages += nr.Sent
		res.TotalBits += nr.SentBits
		res.Reconnects += nr.Reconnects
		res.Statuses[i] = nr.Status
		res.PeakSpacePerProc[i] = nr.PeakSpaceBits
		ids[i] = r.Label(i)
		halted[i] = nr.Halted
	}
	leader, err := checker.Finalize(ids, halted)
	if err != nil {
		return res, err
	}
	res.LeaderIndex = leader
	return res, nil
}
