package netring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/ring"
)

// NodeState is the durable snapshot of one ring node, written after every
// atomic action so a SIGKILLed process can resume the election where it
// left off. One file holds the machine snapshot and both link cursors,
// written atomically — so machine state, the incoming-link position, and
// the outgoing retransmit tail are always mutually consistent: a crash
// either sees the configuration before an action or after it, never a
// half-applied one.
type NodeState struct {
	// RingHash fingerprints the ring the state belongs to; a node started
	// with a different -ring refuses the file.
	RingHash uint64
	// Index is the node's ring position.
	Index int
	// Protocol is the protocol display name, as a second identity check.
	Protocol string
	// Inited reports the machine's initial action has run.
	Inited bool
	// InFinished reports the predecessor's GOODBYE was received (its
	// stream is complete).
	InFinished bool
	// OutFinished reports our GOODBYE was acknowledged by the successor.
	OutFinished bool
	// InExpected is the incoming link's next expected sequence number —
	// equivalently, how many messages the machine has consumed. It is the
	// resume point the restarted receiver acknowledges to the predecessor.
	InExpected uint64
	// OutSent is how many data frames the machine has produced in total:
	// the sequence number the next new frame will carry.
	OutSent uint64
	// OutAcked is the outgoing retransmit queue's base: every frame below
	// it was covered by a successor handshake ack and discarded.
	OutAcked uint64
	// SentBits is the total payload cost, in bits (core.Message.Bits), of
	// every frame produced on the outgoing link — the bit-accounting
	// counterpart of OutSent, restored instead of recomputed because a
	// snapshot-restored machine does not replay the sends it already made.
	SentBits uint64
	// Tail is the retained outgoing frames [OutAcked, OutSent), replayed
	// into the sender's queue on restore.
	Tail []core.Message
	// Machine is the core.Snapshotter blob of the protocol machine.
	Machine []byte
}

// ErrCorruptState reports a state file that failed validation — truncated,
// bit-flipped (checksum mismatch), or structurally malformed. Callers fall
// back to a clean start rather than trusting it.
var ErrCorruptState = errors.New("netring: corrupt node state file")

// State file layout: magic "RNS2", then the fields below in fixed-width
// big-endian encoding, then a CRC-32 (IEEE) of everything before it.
// RNS2 widened the retransmit-tail entries with the randomized-election
// message fields (round, hop, flag) and added the SentBits counter; RNS1
// files fail the magic check and fall back to a clean start, like any
// other unreadable snapshot.
var stateMagic = [4]byte{'R', 'N', 'S', '2'}

// tailEntryLen is the encoded size of one retransmit-tail message:
// kind(1) label(8) round(4) hop(4) flag(1).
const tailEntryLen = 18

const stateFlagInited, stateFlagInFinished, stateFlagOutFinished = 1, 2, 4

// encode serializes the state, checksum included.
func (st *NodeState) encode() []byte {
	b := make([]byte, 0, 64+len(st.Protocol)+tailEntryLen*len(st.Tail)+len(st.Machine))
	b = append(b, stateMagic[:]...)
	b = binary.BigEndian.AppendUint64(b, st.RingHash)
	b = binary.BigEndian.AppendUint32(b, uint32(st.Index))
	var flags byte
	if st.Inited {
		flags |= stateFlagInited
	}
	if st.InFinished {
		flags |= stateFlagInFinished
	}
	if st.OutFinished {
		flags |= stateFlagOutFinished
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, st.InExpected)
	b = binary.BigEndian.AppendUint64(b, st.OutSent)
	b = binary.BigEndian.AppendUint64(b, st.OutAcked)
	b = binary.BigEndian.AppendUint64(b, st.SentBits)
	b = binary.BigEndian.AppendUint32(b, uint32(len(st.Protocol)))
	b = append(b, st.Protocol...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(st.Tail)))
	for _, m := range st.Tail {
		b = append(b, byte(m.Kind))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(m.Label)))
		b = binary.BigEndian.AppendUint32(b, m.Round)
		b = binary.BigEndian.AppendUint32(b, m.Hop)
		var flag byte
		if m.Flag {
			flag = 1
		}
		b = append(b, flag)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(st.Machine)))
	b = append(b, st.Machine...)
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeNodeState parses and validates an encoded state file. Every
// failure wraps ErrCorruptState.
func decodeNodeState(b []byte) (*NodeState, error) {
	corrupt := func(detail string) (*NodeState, error) {
		return nil, fmt.Errorf("%w: %s", ErrCorruptState, detail)
	}
	if len(b) < len(stateMagic)+4 {
		return corrupt(fmt.Sprintf("only %d bytes", len(b)))
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return corrupt("checksum mismatch")
	}
	if [4]byte(body[:4]) != stateMagic {
		return corrupt(fmt.Sprintf("bad magic %q", body[:4]))
	}
	p := body[4:]
	need := func(n int) bool { return len(p) >= n }
	if !need(8 + 4 + 1 + 8 + 8 + 8 + 8 + 4) {
		return corrupt("truncated header")
	}
	st := &NodeState{}
	st.RingHash = binary.BigEndian.Uint64(p)
	st.Index = int(int32(binary.BigEndian.Uint32(p[8:])))
	flags := p[12]
	st.Inited = flags&stateFlagInited != 0
	st.InFinished = flags&stateFlagInFinished != 0
	st.OutFinished = flags&stateFlagOutFinished != 0
	st.InExpected = binary.BigEndian.Uint64(p[13:])
	st.OutSent = binary.BigEndian.Uint64(p[21:])
	st.OutAcked = binary.BigEndian.Uint64(p[29:])
	st.SentBits = binary.BigEndian.Uint64(p[37:])
	protoLen := int(binary.BigEndian.Uint32(p[45:]))
	p = p[49:]
	if protoLen < 0 || !need(protoLen+4) {
		return corrupt("truncated protocol name")
	}
	st.Protocol = string(p[:protoLen])
	tailLen := int(binary.BigEndian.Uint32(p[protoLen:]))
	p = p[protoLen+4:]
	if tailLen < 0 || !need(tailEntryLen*tailLen+4) {
		return corrupt("truncated frame tail")
	}
	if tailLen > 0 {
		st.Tail = make([]core.Message, tailLen)
		for i := range st.Tail {
			if p[17] > 1 {
				return corrupt(fmt.Sprintf("tail entry %d has unknown flag bits %#x", i, p[17]))
			}
			st.Tail[i] = core.Message{
				Kind:  core.Kind(p[0]),
				Label: ring.Label(int64(binary.BigEndian.Uint64(p[1:]))),
				Round: binary.BigEndian.Uint32(p[9:]),
				Hop:   binary.BigEndian.Uint32(p[13:]),
				Flag:  p[17] == 1,
			}
			p = p[tailEntryLen:]
		}
	}
	machineLen := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if machineLen < 0 || len(p) != machineLen {
		return corrupt(fmt.Sprintf("machine blob length %d with %d bytes left", machineLen, len(p)))
	}
	if machineLen > 0 {
		st.Machine = append([]byte(nil), p...)
	}
	if st.OutAcked > st.OutSent || st.OutSent-st.OutAcked != uint64(tailLen) {
		return corrupt(fmt.Sprintf("cursor mismatch: sent=%d acked=%d tail=%d", st.OutSent, st.OutAcked, tailLen))
	}
	return st, nil
}

// SaveNodeState atomically writes st to path: encode to a temp file in the
// same directory, optionally fsync, then rename over the target — a crash
// mid-write leaves the previous snapshot intact, never a torn file.
func SaveNodeState(path string, st *NodeState, fsync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("netring: state temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(st.encode()); err != nil {
		tmp.Close()
		return fmt.Errorf("netring: state write: %w", err)
	}
	if fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("netring: state fsync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("netring: state close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("netring: state rename: %w", err)
	}
	return nil
}

// LoadNodeState reads and validates the snapshot at path. It returns
// os.ErrNotExist (wrapped) when no snapshot exists — a clean first start —
// and ErrCorruptState (wrapped) when the file fails validation.
func LoadNodeState(path string) (*NodeState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeNodeState(b)
}
