package netring

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trace"
)

func sampleNodeState() *NodeState {
	return &NodeState{
		RingHash:   0xfeedface,
		Index:      3,
		Protocol:   "A3",
		Inited:     true,
		InFinished: false,
		InExpected: 17,
		OutSent:    9,
		OutAcked:   7,
		Tail:       []core.Message{core.Token(5), core.PhaseShift(-2)},
		Machine:    []byte{1, 2, 3, 4},
	}
}

func TestNodeStateRoundTrip(t *testing.T) {
	st := sampleNodeState()
	got, err := decodeNodeState(st.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, st)
	}
	// Empty tail and machine must round-trip too (clean pre-init state).
	empty := &NodeState{RingHash: 1, Index: 0, Protocol: "B3"}
	got, err = decodeNodeState(empty.encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, empty) {
		t.Fatalf("empty round trip: got %+v", got)
	}
}

// TestNodeStateRejectsCorruption flips every byte and tries every
// truncation of a valid snapshot: each must fail with ErrCorruptState,
// never a garbage decode.
func TestNodeStateRejectsCorruption(t *testing.T) {
	blob := sampleNodeState().encode()
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, err := decodeNodeState(bad); !errors.Is(err, ErrCorruptState) {
			t.Fatalf("flip at %d: got %v, want ErrCorruptState", i, err)
		}
	}
	for n := 0; n < len(blob); n++ {
		if _, err := decodeNodeState(blob[:n]); !errors.Is(err, ErrCorruptState) {
			t.Fatalf("truncation to %d: got %v, want ErrCorruptState", n, err)
		}
	}
	if _, err := decodeNodeState(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrCorruptState) {
		t.Fatal("trailing byte accepted")
	}
	// A consistency breach behind a valid checksum must also be caught.
	st := sampleNodeState()
	st.OutAcked = st.OutSent + 1
	if _, err := decodeNodeState(st.encode()); !errors.Is(err, ErrCorruptState) {
		t.Fatal("cursor mismatch accepted")
	}
}

func TestSaveLoadNodeState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.state")
	if _, err := LoadNodeState(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: got %v, want os.ErrNotExist", err)
	}
	st := sampleNodeState()
	for _, fsync := range []bool{false, true} {
		if err := SaveNodeState(path, st, fsync); err != nil {
			t.Fatal(err)
		}
		got, err := LoadNodeState(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, st) {
			t.Fatalf("fsync=%v: load mismatch", fsync)
		}
		st.InExpected++ // second save must atomically replace the first
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

// TestResumeGapRejected feeds a recovered-looking HELLO whose retransmit
// base is beyond the receiver's expected sequence number: frames in
// between are unrecoverable, which must surface as a LinkViolation.
func TestResumeGapRejected(t *testing.T) {
	r := ring.Ring122()
	hash := ringHash(r)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcv := newReceiver(1, 3, hash, ln, nil)
	rcv.expected = 2
	errc := make(chan error, 1)
	go func() { errc <- rcv.run(func(core.Message) error { return nil }) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frame{Type: frameHello, Sender: 0, Target: 1, N: 3, RingHash: hash, BaseSeq: 5}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		var lv *spec.LinkViolation
		if !errors.As(err, &lv) || !strings.Contains(err.Error(), "resume gap") {
			t.Fatalf("got %v, want resume-gap LinkViolation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("resume gap not rejected")
	}
	rcv.stop()
}

// durableHarness runs a full ring of durable RunNode instances with fixed
// listen addresses and per-node state files, optionally SIGKILL-ing (via
// the Kill channel) and restarting one node mid-election. It mirrors what
// cmd/ringnode + internal/chaos do across process boundaries, in-process
// so the race detector sees it.
type durableHarness struct {
	t      *testing.T
	r      *ring.Ring
	p      core.Protocol
	dir    string
	addrs  []string
	ln     []net.Listener // initial listeners (restarts rebind by address)
	check  *spec.Checker
	mu     sync.Mutex
	events []string
}

func newDurableHarness(t *testing.T, r *ring.Ring, p core.Protocol) *durableHarness {
	t.Helper()
	n := r.N()
	h := &durableHarness{t: t, r: r, p: p, dir: t.TempDir(),
		addrs: make([]string, n), ln: make([]net.Listener, n), check: spec.New(n)}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		h.ln[i] = ln
		h.addrs[i] = ln.Addr().String()
	}
	return h
}

func (h *durableHarness) statePath(i int) string {
	return filepath.Join(h.dir, "node-"+string(rune('0'+i))+".state")
}

func (h *durableHarness) config(i int, ln net.Listener, kill <-chan struct{}) NodeConfig {
	n := h.r.N()
	return NodeConfig{
		Ring: h.r, Index: i, Protocol: h.p,
		Listener: ln, ListenAddr: h.addrs[i], NextAddr: h.addrs[(i+1)%n],
		Timeout: 30 * time.Second,
		Backoff: Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
		OnAction: func(proc int, op trace.Op, action string, msg core.Message, sent []core.Message, m core.Machine) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			return h.check.Observe(proc, m.Status())
		},
		OnLink: func(proc int, event string) {
			h.mu.Lock()
			h.events = append(h.events, event)
			h.mu.Unlock()
		},
		OnRecover: func(proc int, m core.Machine) {
			h.mu.Lock()
			h.check.Seed(proc, m.Status())
			h.mu.Unlock()
		},
		StatePath: h.statePath(i),
		Kill:      kill,
		Linger:    100 * time.Millisecond,
	}
}

func (h *durableHarness) linkEvents(want string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := 0
	for _, e := range h.events {
		if e == want {
			c++
		}
	}
	return c
}

// TestCrashRecoveryResumesElection SIGKILLs one node mid-election (at
// several different points), restarts it from its state file, and demands
// the exact outcome of an undisturbed run: same leader, same message
// count (retransmits excluded), full spec compliance.
func TestCrashRecoveryResumesElection(t *testing.T) {
	r := ring.Figure1()
	for _, p := range protocols(t, r) {
		ref, err := sim.RunSync(r, p, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, killAfter := range []int{1, 3, 6} {
			t.Run(p.Name()+"/kill-after-"+string(rune('0'+killAfter)), func(t *testing.T) {
				h := newDurableHarness(t, r, p)
				n := r.N()
				victim := 2
				kill := make(chan struct{})
				var killOnce sync.Once
				delivered := 0

				results := make([]*NodeResult, n)
				errs := make([]error, n)
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						cfg := h.config(i, h.ln[i], nil)
						if i == victim {
							cfg.Kill = kill
							// Count the victim's deliveries and pull the
							// trigger at the chosen point.
							inner := cfg.OnAction
							cfg.OnAction = func(proc int, op trace.Op, action string, msg core.Message, sent []core.Message, m core.Machine) error {
								if op == trace.OpDeliver {
									delivered++
									if delivered == killAfter {
										killOnce.Do(func() { close(kill) })
									}
								}
								return inner(proc, op, action, msg, sent, m)
							}
						}
						res, err := RunNode(cfg)
						if i == victim && errors.Is(err, ErrKilled) {
							// Crash observed: relaunch from the state file,
							// as the chaos supervisor does across processes.
							cfg = h.config(i, nil, nil)
							res, err = RunNode(cfg)
						}
						results[i], errs[i] = res, err
					}(i)
				}
				wg.Wait()

				total := 0
				halted := make([]bool, n)
				ids := make([]ring.Label, n)
				for i := 0; i < n; i++ {
					if errs[i] != nil {
						t.Fatalf("node %d: %v", i, errs[i])
					}
					total += results[i].Sent
					halted[i] = results[i].Halted
					ids[i] = r.Label(i)
				}
				leader, err := h.check.Finalize(ids, halted)
				if err != nil {
					t.Fatalf("spec: %v", err)
				}
				if leader != ref.LeaderIndex {
					t.Errorf("leader p%d, want p%d", leader, ref.LeaderIndex)
				}
				if total != ref.Messages {
					t.Errorf("messages %d, want %d (retransmits must not count)", total, ref.Messages)
				}
				if !results[victim].Recovered {
					t.Error("victim did not report Recovered")
				}
				if h.linkEvents("restore") != 1 {
					t.Errorf("restore events = %d, want 1", h.linkEvents("restore"))
				}
			})
		}
	}
}

// TestCorruptStateFallsBackToCleanStart plants garbage (and separately, a
// bit-flipped valid snapshot) in one node's state file: the node must
// report state-corrupt, start clean, and the election must still succeed
// with the reference outcome.
func TestCorruptStateFallsBackToCleanStart(t *testing.T) {
	r := ring.Ring122()
	p := protocols(t, r)[0]
	ref, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flipped := sampleNodeState().encode()
	flipped[len(flipped)/2] ^= 1
	for name, junk := range map[string][]byte{
		"garbage":  []byte("not a snapshot at all"),
		"bitflip":  flipped,
		"tooShort": {0x52, 0x4e},
	} {
		t.Run(name, func(t *testing.T) {
			h := newDurableHarness(t, r, p)
			if err := os.WriteFile(h.statePath(0), junk, 0o644); err != nil {
				t.Fatal(err)
			}
			n := r.N()
			results := make([]*NodeResult, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = RunNode(h.config(i, h.ln[i], nil))
				}(i)
			}
			wg.Wait()
			total := 0
			halted := make([]bool, n)
			ids := make([]ring.Label, n)
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("node %d: %v", i, errs[i])
				}
				total += results[i].Sent
				halted[i] = results[i].Halted
				ids[i] = r.Label(i)
			}
			leader, err := h.check.Finalize(ids, halted)
			if err != nil {
				t.Fatalf("spec: %v", err)
			}
			if leader != ref.LeaderIndex || total != ref.Messages {
				t.Errorf("got p%d/%d msgs, want p%d/%d", leader, total, ref.LeaderIndex, ref.Messages)
			}
			if h.linkEvents("state-corrupt") != 1 {
				t.Errorf("state-corrupt events = %d, want 1", h.linkEvents("state-corrupt"))
			}
			if results[0].Recovered {
				t.Error("corrupt state must not count as a recovery")
			}
		})
	}
}

// TestRestartAfterCompletionIsIdempotent re-runs every node from its
// post-election state file: each must come back Recovered, already halted,
// send nothing new, and agree on the leader.
func TestRestartAfterCompletionIsIdempotent(t *testing.T) {
	r := ring.Ring122()
	p := protocols(t, r)[1] // A*: exercises the certP verification path
	h := newDurableHarness(t, r, p)
	n := r.N()
	run := func(useInitialListeners bool) []*NodeResult {
		results := make([]*NodeResult, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var ln net.Listener
				if useInitialListeners {
					ln = h.ln[i]
				}
				results[i], errs[i] = RunNode(h.config(i, ln, nil))
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
		return results
	}
	first := run(true)
	second := run(false)
	for i := 0; i < n; i++ {
		if !second[i].Recovered || !second[i].Halted {
			t.Errorf("node %d restart: recovered=%v halted=%v", i, second[i].Recovered, second[i].Halted)
		}
		if second[i].Sent != first[i].Sent {
			t.Errorf("node %d restart sent %d, first run sent %d", i, second[i].Sent, first[i].Sent)
		}
		if second[i].Status.IsLeader != first[i].Status.IsLeader {
			t.Errorf("node %d restart changed leader bit", i)
		}
	}
}

// TestStateFileIdentityChecks pins the operator-error paths: a state file
// from a different ring, index, or protocol must be refused outright (not
// silently re-elected over).
func TestStateFileIdentityChecks(t *testing.T) {
	r := ring.Ring122()
	p := protocols(t, r)[0]
	dir := t.TempDir()
	path := filepath.Join(dir, "node.state")
	st := &NodeState{RingHash: ringHash(r) + 1, Index: 0, Protocol: p.Name()}
	if err := SaveNodeState(path, st, false); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = RunNode(NodeConfig{
		Ring: r, Index: 0, Protocol: p, Listener: ln, NextAddr: "127.0.0.1:1",
		StatePath: path, Timeout: 5 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("mismatched state accepted: %v", err)
	}
}

// TestDurableRequiresSnapshotter pins the upfront error for a protocol
// without snapshot support.
func TestDurableRequiresSnapshotter(t *testing.T) {
	r := ring.Distinct(3)
	p := nonSnapshotProtocol{}
	_, err := RunNode(NodeConfig{
		Ring: r, Index: 0, Protocol: p, ListenAddr: "127.0.0.1:0", NextAddr: "127.0.0.1:1",
		StatePath: filepath.Join(t.TempDir(), "s"), Timeout: time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "Snapshotter") {
		t.Fatalf("got %v, want snapshotter error", err)
	}
}

type nonSnapshotProtocol struct{}

func (nonSnapshotProtocol) Name() string { return "nosnap" }
func (nonSnapshotProtocol) NewMachine(l ring.Label) core.Machine {
	return nonSnapshotMachine{}
}

type nonSnapshotMachine struct{}

func (nonSnapshotMachine) Init(*core.Outbox) string { return "init" }
func (nonSnapshotMachine) Receive(core.Message, *core.Outbox) (string, error) {
	return "", nil
}
func (nonSnapshotMachine) Halted() bool        { return true }
func (nonSnapshotMachine) Status() core.Status { return core.Status{} }
func (nonSnapshotMachine) StateName() string   { return "x" }
func (nonSnapshotMachine) SpaceBits() int      { return 0 }
func (nonSnapshotMachine) Fingerprint() string { return "" }

// TestAckAheadAbsorbed pins the crash window between a wire write and the
// snapshot recording it: the restarted sender learns at the resume
// handshake that its successor holds frames beyond anything the restored
// state produced. In durable mode that is rollback, not corruption — the
// machine will regenerate those frames byte-identically, so the sender
// absorbs the ack and swallows the regenerated frames instead of
// re-writing them at stale sequence numbers (or failing the link).
func TestAckAheadAbsorbed(t *testing.T) {
	s := newSender(3, 4, "127.0.0.1:1", frame{}, Backoff{}, LinkFault{}, nil, nil, func(core.Message) int { return 0 })
	s.reliableGoodbye = true // durable mode
	// Restored state: 11 frames produced over the node's history, the
	// last two not yet covered by a persisted ack.
	s.preload(9, []core.Message{core.Token(1), core.Token(2)}, false, 0)

	// The successor's HELLO_ACK says it expects seq 12: it persisted a
	// 12th frame whose producing action our crash rolled back.
	if err := s.noteAck(12); err != nil {
		t.Fatalf("ack-ahead treated as violation: %v", err)
	}
	if s.base != 11 || len(s.queue) != 0 || s.aheadAck != 12 {
		t.Fatalf("after ack-ahead: base=%d queue=%d aheadAck=%d, want 11/0/12", s.base, len(s.queue), s.aheadAck)
	}
	// A repeat handshake at the same ack must be idempotent.
	if err := s.noteAck(12); err != nil {
		t.Fatalf("repeat ack-ahead: %v", err)
	}

	// The machine re-runs the rolled-back action: its first regenerated
	// frame (seq 11) is already delivered and must be swallowed; the next
	// one (seq 12) is genuinely new and must queue for the wire.
	s.enqueue([]core.Message{core.Token(3), core.Token(4)})
	if s.base != 12 || len(s.queue) != 1 || s.queue[0].Seq != 12 {
		t.Fatalf("after regeneration: base=%d queue=%d, want base 12 and one queued frame at seq 12", s.base, len(s.queue))
	}
	if got := s.sent(); got != 13 {
		t.Fatalf("sent() = %d, want 13 (absorbed frame counts once)", got)
	}

	// Without durable state nothing can roll back, so the same ack stays
	// a link violation.
	nd := newSender(3, 4, "127.0.0.1:1", frame{}, Backoff{}, LinkFault{}, nil, nil, func(core.Message) int { return 0 })
	nd.preload(9, []core.Message{core.Token(1), core.Token(2)}, false, 0)
	if err := nd.noteAck(12); err == nil {
		t.Fatal("non-durable ack beyond produced count accepted")
	}
}
