package netring

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
)

// TestBackoffDelayBounds checks the jittered delay stays inside its
// contract for every attempt number: never negative, and never above Max
// even when jitter would push the capped base delay over it.
func TestBackoffDelayBounds(t *testing.T) {
	configs := []Backoff{
		{}, // defaults
		{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 3, Jitter: 0.9},
		{Base: 50 * time.Millisecond, Max: 60 * time.Millisecond, Factor: 1.1, Jitter: 0.5},
	}
	rng := rand.New(rand.NewSource(7))
	for _, cfg := range configs {
		b := cfg.withDefaults()
		for attempt := 1; attempt <= 60; attempt++ {
			for trial := 0; trial < 50; trial++ {
				d := b.delay(attempt, rng)
				if d < 0 {
					t.Fatalf("%+v attempt %d: negative delay %v", b, attempt, d)
				}
				if d > b.Max {
					t.Fatalf("%+v attempt %d: delay %v exceeds cap %v", b, attempt, d, b.Max)
				}
			}
		}
	}
}

// TestBackoffDelayDeterministic pins that the delay sequence is a pure
// function of the rng seed — the property the chaos harness's replay
// guarantee leans on.
func TestBackoffDelayDeterministic(t *testing.T) {
	b := Backoff{}.withDefaults()
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 30; attempt++ {
		d1, d2 := b.delay(attempt, r1), b.delay(attempt, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed gave %v and %v", attempt, d1, d2)
		}
	}
}

// TestBackoffSleepCancelled stops a sender mid-backoff-sleep: the sleep
// must return promptly (reporting interruption), not run out the clock.
func TestBackoffSleepCancelled(t *testing.T) {
	s := newSender(0, 1, "127.0.0.1:1", frame{}, Backoff{}, LinkFault{}, rand.New(rand.NewSource(1)), nil, func(core.Message) int { return 0 })
	done := make(chan bool, 1)
	start := time.Now()
	go func() { done <- s.sleep(time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	s.stop()
	select {
	case full := <-done:
		if full {
			t.Fatal("cancelled sleep reported a full elapse")
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("cancellation took %v", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stop() did not interrupt the backoff sleep")
	}
}

// TestBackoffExportedDelayMatches pins that the exported Delay is the
// defaults-filled twin of the internal pacing — the serve wire client's
// redial path must see exactly the schedule the transport uses.
func TestBackoffExportedDelayMatches(t *testing.T) {
	cfgs := []Backoff{
		{},
		{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 3, Jitter: 0.9},
	}
	for _, cfg := range cfgs {
		r1 := rand.New(rand.NewSource(11))
		r2 := rand.New(rand.NewSource(11))
		filled := cfg.withDefaults()
		for attempt := 1; attempt <= 20; attempt++ {
			if got, want := cfg.Delay(attempt, r1), filled.delay(attempt, r2); got != want {
				t.Fatalf("%+v attempt %d: Delay = %v, internal delay = %v", cfg, attempt, got, want)
			}
		}
	}
	if got := (Backoff{}).WithDefaults(); got.Attempts != 25 || got.Base != 5*time.Millisecond {
		t.Fatalf("WithDefaults() = %+v, want the documented defaults", got)
	}
}

// TestBackoffExportedSleepCancelled closes the cancel channel mid-sleep:
// Sleep must return false promptly instead of running out the delay.
func TestBackoffExportedSleepCancelled(t *testing.T) {
	b := Backoff{Base: time.Minute, Max: time.Minute}
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	start := time.Now()
	go func() { done <- b.Sleep(cancel, 1, rand.New(rand.NewSource(1))) }()
	time.Sleep(5 * time.Millisecond)
	close(cancel)
	select {
	case full := <-done:
		if full {
			t.Fatal("cancelled Sleep reported a full elapse")
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("cancellation took %v", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("closing cancel did not interrupt Sleep")
	}
}

// TestDialErrorSurfacesAddress runs a node whose successor address never
// answers: the give-up error must be a *DialError carrying the address and
// attempt count, and unwrap to the underlying dial failure.
func TestDialErrorSurfacesAddress(t *testing.T) {
	r := ring.Ring122()
	p := protocols(t, r)[0]
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A bound-then-closed port: connection refused on every attempt.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	_, err = RunNode(NodeConfig{
		Ring: r, Index: 0, Protocol: p,
		Listener: ln, NextAddr: deadAddr,
		Timeout: 30 * time.Second,
		Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Attempts: 3},
	})
	var de *DialError
	if !errors.As(err, &de) {
		t.Fatalf("got %v, want a *DialError", err)
	}
	if de.Addr != deadAddr || de.Attempts != 3 || de.Self != 0 || de.Target != 1 {
		t.Errorf("DialError fields = %+v, want addr %s, 3 attempts, link 0→1", de, deadAddr)
	}
	if de.Last == nil || errors.Unwrap(de) != de.Last {
		t.Errorf("DialError must unwrap to the last dial error, got %v", de.Last)
	}
}
