package boundedn

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/words"
)

// Result is the validated outcome of a bounded-n run.
type Result struct {
	// Verdict is the unanimous decision.
	Verdict Verdict
	// LeaderIndex is the elected process (VerdictElected only; -1
	// otherwise).
	LeaderIndex int
	// Messages and TimeUnits are the run costs (unit-delay measure).
	Messages  int
	TimeUnits float64
}

// Expected computes the ground-truth verdict for r under bounds (m, M)
// directly from the ring: election is possible iff the smallest cyclic
// period d of the labeling is the only multiple of d in [m, M] (which
// forces n = d and asymmetry). It errors when n violates the bounds,
// which would make the processes' knowledge false.
func Expected(r *ring.Ring, m, M int) (Verdict, error) {
	n := r.N()
	if n < m || n > M {
		return VerdictUndecided, fmt.Errorf("boundedn: n=%d outside claimed bounds [%d, %d]", n, m, M)
	}
	labels := r.Labels()
	// Smallest cyclic period: smallest divisor-like shift; equivalently the
	// smallest period of the doubled sequence.
	doubled := append(append([]ring.Label{}, labels...), labels...)
	d := words.SmallestPeriod(doubled)
	first := ((m + d - 1) / d) * d
	if first == d && first+d > M {
		return VerdictElected, nil
	}
	return VerdictImpossible, nil
}

// Run executes the bounded-n protocol on r under unit delays and validates
// the decision problem's specification: every process halts, all verdicts
// agree, and in the elected case exactly one process leads — the true
// leader — with every process holding its label.
func Run(r *ring.Ring, m, M int) (*Result, error) {
	p, err := NewProtocol(m, M, r.LabelBits())
	if err != nil {
		return nil, err
	}
	n := r.N()
	machines := make([]core.Machine, 0, n)
	capture := &capturingProtocol{inner: p, machines: &machines}
	res, err := sim.RunAsync(r, capture, sim.ConstantDelay(1), sim.Options{DisableSpec: true})
	if err != nil {
		return nil, err
	}
	out := &Result{LeaderIndex: -1, Messages: res.Messages, TimeUnits: res.TimeUnits}

	if len(machines) != n {
		return nil, fmt.Errorf("boundedn: %d machines created, want %d", len(machines), n)
	}
	verdict := VerdictUndecided
	leaders := 0
	for i, mach := range machines {
		d, ok := mach.(Decider)
		if !ok {
			return nil, fmt.Errorf("boundedn: machine %d is not a Decider", i)
		}
		v := d.Verdict()
		if v == VerdictUndecided {
			return nil, fmt.Errorf("boundedn: process %d halted undecided", i)
		}
		if verdict == VerdictUndecided {
			verdict = v
		} else if v != verdict {
			return nil, fmt.Errorf("boundedn: verdicts disagree: process %d says %s, earlier %s", i, v, verdict)
		}
		if mach.Status().IsLeader {
			leaders++
			out.LeaderIndex = i
		}
	}
	out.Verdict = verdict
	switch verdict {
	case VerdictElected:
		if leaders != 1 {
			return nil, fmt.Errorf("boundedn: elected verdict with %d leaders", leaders)
		}
		want, ok := r.TrueLeader()
		if !ok || out.LeaderIndex != want {
			return nil, fmt.Errorf("boundedn: elected p%d, true leader p%d", out.LeaderIndex, want)
		}
		leaderLabel := r.Label(want)
		for i, mach := range machines {
			st := mach.Status()
			if !st.Done || !st.LeaderSet || st.Leader != leaderLabel {
				return nil, fmt.Errorf("boundedn: process %d did not learn the leader: %+v", i, st)
			}
		}
	case VerdictImpossible:
		if leaders != 0 {
			return nil, fmt.Errorf("boundedn: impossible verdict with %d leaders", leaders)
		}
	}
	return out, nil
}

// capturingProtocol wraps a protocol to retain the machines it creates, so
// the runner can read their verdicts after the engine finishes.
type capturingProtocol struct {
	inner    core.Protocol
	machines *[]core.Machine
}

// Name implements core.Protocol.
func (c *capturingProtocol) Name() string { return c.inner.Name() }

// NewMachine implements core.Protocol.
func (c *capturingProtocol) NewMachine(id ring.Label) core.Machine {
	m := c.inner.NewMachine(id)
	*c.machines = append(*c.machines, m)
	return m
}
