package boundedn_test

import (
	"math/rand"
	"testing"

	"repro/internal/boundedn"
	"repro/internal/core"
	"repro/internal/ring"
)

func TestValidation(t *testing.T) {
	if _, err := boundedn.NewProtocol(1, 5, 4); err == nil {
		t.Error("m=1 must fail")
	}
	if _, err := boundedn.NewProtocol(5, 4, 4); err == nil {
		t.Error("m > M must fail")
	}
	if _, err := boundedn.NewProtocol(2, 5, 0); err == nil {
		t.Error("labelBits=0 must fail")
	}
	if _, err := boundedn.Expected(ring.Ring122(), 4, 8); err == nil {
		t.Error("n outside bounds must fail")
	}
}

func TestPaperClaimRing122(t *testing.T) {
	r := ring.Ring122()
	// Loose bounds: 1 2 2 1 2 2 (size 6, symmetric) cannot be excluded.
	res, err := boundedn.Run(r, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != boundedn.VerdictImpossible {
		t.Fatalf("m=2 M=8 on %s: verdict %s, want impossible (paper's claim about [4]'s model)", r, res.Verdict)
	}
	// Tight bounds M < 2n: the symmetric double is excluded; election works.
	res, err = boundedn.Run(r, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != boundedn.VerdictElected || res.LeaderIndex != 0 {
		t.Fatalf("m=2 M=5 on %s: verdict %s leader p%d, want elected p0", r, res.Verdict, res.LeaderIndex)
	}
}

func TestDistinctLabelsStillAmbiguousWithWideBounds(t *testing.T) {
	// Even a fully distinct labeling is impossible in this model when M
	// admits the doubled ring: 1 2 3 4 vs 1 2 3 4 1 2 3 4.
	r := ring.Distinct(4)
	res, err := boundedn.Run(r, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != boundedn.VerdictImpossible {
		t.Fatalf("verdict %s, want impossible", res.Verdict)
	}
	res, err = boundedn.Run(r, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != boundedn.VerdictElected || res.LeaderIndex != 0 {
		t.Fatalf("M=7: verdict %s leader p%d, want elected p0", res.Verdict, res.LeaderIndex)
	}
}

func TestSymmetricRingAlwaysImpossible(t *testing.T) {
	r := ring.MustNew(1, 2, 1, 2)
	res, err := boundedn.Run(r, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != boundedn.VerdictImpossible {
		t.Fatalf("symmetric ring: verdict %s, want impossible", res.Verdict)
	}
}

// TestMatchesGroundTruth cross-checks the distributed decision against the
// direct computation on random rings and random valid bounds.
func TestMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	elected, impossible := 0, 0
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(10)
		var r *ring.Ring
		var err error
		if trial%3 == 0 {
			r = ring.Distinct(n)
		} else {
			r, err = ring.RandomAsymmetric(rng, n, 3, max(4, n))
			if err != nil {
				t.Fatal(err)
			}
		}
		m := 2 + rng.Intn(n-1) // 2 ≤ m ≤ n
		M := n + rng.Intn(n+4) // n ≤ M
		want, err := boundedn.Expected(r, m, M)
		if err != nil {
			t.Fatal(err)
		}
		res, err := boundedn.Run(r, m, M)
		if err != nil {
			t.Fatalf("ring %s m=%d M=%d: %v", r, m, M, err)
		}
		if res.Verdict != want {
			t.Fatalf("ring %s m=%d M=%d: verdict %s, ground truth %s", r, m, M, res.Verdict, want)
		}
		switch res.Verdict {
		case boundedn.VerdictElected:
			elected++
		case boundedn.VerdictImpossible:
			impossible++
		}
	}
	if elected == 0 || impossible == 0 {
		t.Fatalf("weak test: %d elected, %d impossible — both verdicts must be exercised", elected, impossible)
	}
}

// TestExactCost pins the message count: n tokens each traveling 2M-1 hops.
func TestExactCost(t *testing.T) {
	r := ring.Distinct(5)
	res, err := boundedn.Run(r, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * (2*7 - 1); res.Messages != want {
		t.Errorf("messages = %d, want n(2M-1) = %d", res.Messages, want)
	}
	if res.TimeUnits > float64(2*7) {
		t.Errorf("time %v > 2M", res.TimeUnits)
	}
}

func TestMachineSurface(t *testing.T) {
	p, err := boundedn.NewProtocol(2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "BoundedN(m=2,M=4)" {
		t.Errorf("Name = %q", p.Name())
	}
	m := p.NewMachine(7)
	fp1 := m.Fingerprint()
	var out core.Outbox
	if m.Init(&out) != "D1" {
		t.Error("Init must be action D1")
	}
	if m.Fingerprint() == fp1 {
		t.Error("Init must change the fingerprint")
	}
	if m.StateName() != "COLLECT" {
		t.Errorf("state = %q", m.StateName())
	}
	if m.SpaceBits() <= 0 {
		t.Error("SpaceBits must be positive")
	}
	out.Drain()
	if _, err := m.Receive(core.Finish(), &out); err == nil {
		t.Error("BoundedN must reject non-token messages")
	}
}

func TestVerdictString(t *testing.T) {
	names := map[boundedn.Verdict]string{
		boundedn.VerdictUndecided:  "undecided",
		boundedn.VerdictElected:    "elected",
		boundedn.VerdictImpossible: "impossible",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d = %q, want %q", v, v.String(), want)
		}
	}
}
