// Package boundedn reproduces the knowledge model of Dobrev and Pelc
// ("Leader election in rings with nonunique labels", reference [4] of the
// paper): processes know a lower bound m and an upper bound M on the
// unknown ring size n, and must *decide whether leader election is
// possible* for their knowledge — electing when it is, unanimously
// reporting impossibility when it is not.
//
// The decision structure: after collecting a window of 2M consecutive
// counter-clockwise labels (which always covers the ring at least twice),
// every process knows the cyclic label sequence up to rotation and its
// smallest cyclic period d. The true size n is some multiple of d in
// [m, M]; any two such multiples are observationally indistinguishable,
// and every multiple jd with j ≥ 2 names a ring with a non-trivial
// rotational symmetry, on which election is impossible (Angluin). Hence
// election is possible exactly when d is the *only* multiple of d in
// [m, M]; then n = d, the ring is asymmetric, and each process decides
// locally — no announcement lap is needed, because the complete window
// already identifies the Lyndon position and label.
//
// This makes the paper's comparison claim executable (experiment E12):
// the ring 1 2 2 with m=2, M=8 is *impossible* in this model — the
// observer cannot exclude 1 2 2 1 2 2 — while the paper's algorithms,
// knowing the multiplicity bound k=2 instead, elect on it.
package boundedn

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/words"
)

// Verdict is a process's terminal decision.
type Verdict uint8

const (
	// VerdictUndecided means the window is still growing.
	VerdictUndecided Verdict = iota
	// VerdictElected means election was possible and completed.
	VerdictElected
	// VerdictImpossible means the knowledge (m, M) cannot exclude a
	// symmetric interpretation: no algorithm can elect.
	VerdictImpossible
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictUndecided:
		return "undecided"
	case VerdictElected:
		return "elected"
	case VerdictImpossible:
		return "impossible"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Decider exposes the decision of a bounded-n machine.
type Decider interface {
	Verdict() Verdict
}

// Protocol is the bounded-n decision protocol.
type Protocol struct {
	// M and Mlow are the known bounds: Mlow ≤ n ≤ M.
	M, Mlow int
	// LabelBits is b, for SpaceBits accounting.
	LabelBits int
}

// NewProtocol returns the bounded-n protocol for 2 ≤ m ≤ M.
func NewProtocol(m, M, labelBits int) (*Protocol, error) {
	if m < 2 || M < m {
		return nil, fmt.Errorf("boundedn: need 2 <= m <= M, got m=%d M=%d", m, M)
	}
	if labelBits < 1 {
		return nil, fmt.Errorf("boundedn: need labelBits >= 1, got %d", labelBits)
	}
	return &Protocol{M: M, Mlow: m, LabelBits: labelBits}, nil
}

// Name implements core.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("BoundedN(m=%d,M=%d)", p.Mlow, p.M) }

// NewMachine implements core.Protocol.
func (p *Protocol) NewMachine(id ring.Label) core.Machine {
	return &machine{id: id, m: p.Mlow, bigM: p.M, labelBits: p.LabelBits}
}

type machine struct {
	id        ring.Label
	m, bigM   int
	labelBits int

	str      []ring.Label
	verdict  Verdict
	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool
}

// windowLen is the collection target: 2M labels always cover the ring at
// least twice, pinning the cyclic period.
func (mc *machine) windowLen() int { return 2 * mc.bigM }

// Init launches the process's own label (action D1).
func (mc *machine) Init(out *core.Outbox) string {
	mc.str = append(mc.str, mc.id)
	out.Send(core.Token(mc.id))
	return "D1"
}

// decide runs once the window is complete.
func (mc *machine) decide() string {
	d := words.SmallestPeriod(mc.str)
	// Candidate sizes: multiples of d within [m, M]. The observed window is
	// identical under every candidate, so election is possible only when
	// the candidate is unique and equals d itself (asymmetric ring of
	// size d); a candidate jd, j ≥ 2, names a ring with rotational
	// symmetry d.
	first := ((mc.m + d - 1) / d) * d // smallest multiple of d ≥ m
	unique := first <= mc.bigM && first+d > mc.bigM
	if !unique || first != d {
		mc.verdict = VerdictImpossible
		mc.halted = true
		return "D3"
	}
	window := mc.str[:d]
	lw, _ := words.LyndonRotation(window) // window is primitive: smallest period d = len
	mc.leader = lw[0]
	mc.ledSet = true
	mc.done = true
	mc.isLeader = words.IsLyndon(window)
	mc.verdict = VerdictElected
	mc.halted = true
	if mc.isLeader {
		return "D4"
	}
	return "D5"
}

// Receive collects the window, forwarding tokens that have not yet
// traveled their 2M-1 hops.
func (mc *machine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	if mc.halted {
		return "", fmt.Errorf("BoundedN: message %s delivered after halt", msg)
	}
	if msg.Kind != core.KindToken {
		return "", fmt.Errorf("BoundedN: unexpected message %s", msg)
	}
	if len(mc.str) >= mc.windowLen() {
		return "", fmt.Errorf("BoundedN: token after window completed")
	}
	mc.str = append(mc.str, msg.Label)
	if len(mc.str) < mc.windowLen() {
		out.Send(core.Token(msg.Label))
		return "D2", nil
	}
	return mc.decide(), nil
}

// Verdict implements Decider.
func (mc *machine) Verdict() Verdict { return mc.verdict }

// Clone implements core.Cloner.
func (mc *machine) Clone() core.Machine {
	cp := *mc
	cp.str = make([]ring.Label, len(mc.str))
	copy(cp.str, mc.str)
	return &cp
}

// Halted implements core.Machine.
func (mc *machine) Halted() bool { return mc.halted }

// Status implements core.Machine.
func (mc *machine) Status() core.Status {
	return core.Status{IsLeader: mc.isLeader, Done: mc.done, Leader: mc.leader, LeaderSet: mc.ledSet}
}

// StateName implements core.Machine.
func (mc *machine) StateName() string {
	switch {
	case mc.halted && mc.verdict == VerdictImpossible:
		return "IMPOSSIBLE"
	case mc.halted:
		return "HALT"
	default:
		return "COLLECT"
	}
}

// SpaceBits implements core.Machine.
func (mc *machine) SpaceBits() int {
	return len(mc.str)*mc.labelBits + 2*mc.labelBits + 3
}

// Fingerprint implements core.Machine.
func (mc *machine) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BoundedN verdict=%s halted=%t str=", mc.verdict, mc.halted)
	for i, l := range mc.str {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(l.String())
	}
	return b.String()
}
