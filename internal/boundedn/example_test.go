package boundedn_test

import (
	"fmt"

	"repro/internal/boundedn"
	"repro/internal/ring"
)

// The paper's comparison ring: with size bounds instead of a multiplicity
// bound, [1 2 2] cannot be told apart from [1 2 2 1 2 2] once M ≥ 6, so
// the Dobrev–Pelc-model protocol must report impossibility — while the
// paper's Ak elects on the same ring knowing only k = 2.
func ExampleRun() {
	r := ring.Ring122()
	loose, err := boundedn.Run(r, 2, 8)
	if err != nil {
		panic(err)
	}
	tight, err := boundedn.Run(r, 2, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bounds [2,8]: %s\n", loose.Verdict)
	fmt.Printf("bounds [2,5]: %s (p%d)\n", tight.Verdict, tight.LeaderIndex)
	// Output:
	// bounds [2,8]: impossible
	// bounds [2,5]: elected (p0)
}
