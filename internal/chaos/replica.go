package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os/exec"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/load"
	"repro/internal/netring"
)

// This file extends the chaos harness one level up the stack: where
// engine.go SIGKILLs individual ringnode processes inside one election,
// RunReplicas SIGKILLs entire ringd serving replicas behind a cluster
// gateway while a seeded crosschecking load mix keeps arriving. The
// contract under test is the gateway's: rendezvous routing fails over,
// health probing steers traffic off the corpse, hedging covers the
// detection gap, and the client sees correct answers throughout — zero
// crosscheck divergences, errors inside a bounded budget.

// ReplicaEvent is one scheduled replica fault: SIGKILL the replica's
// ringd process at AtMS, relaunch it on the same ports RestartAfterMS
// later.
type ReplicaEvent struct {
	AtMS           int64 `json:"at_ms"`
	Replica        int   `json:"replica"`
	RestartAfterMS int64 `json:"restart_after_ms"`
}

// ReplicaSchedule is a deterministic replica-kill plan: the same seed
// always yields the same kills, so a failing soak is replayable.
type ReplicaSchedule struct {
	Seed     int64          `json:"seed"`
	Replicas int            `json:"replicas"`
	Events   []ReplicaEvent `json:"events"`
}

// Validate rejects schedules the runner cannot execute.
func (s *ReplicaSchedule) Validate() error {
	if s.Replicas < 2 {
		return fmt.Errorf("chaos: replica schedule needs >= 2 replicas (a 1-replica fleet has nothing to fail over to), got %d", s.Replicas)
	}
	for i, e := range s.Events {
		if e.Replica < 0 || e.Replica >= s.Replicas {
			return fmt.Errorf("chaos: event %d targets replica %d of %d", i, e.Replica, s.Replicas)
		}
		if e.AtMS < 0 || e.RestartAfterMS < 0 {
			return fmt.Errorf("chaos: event %d has negative timing", i)
		}
	}
	return nil
}

// GenerateReplicaSchedule derives a kill plan from the seed: 2–4 kills
// spread across the fleet round-robin — never two pending outages of the
// same replica at once — each with a 200–600ms outage. Timings are
// schedule-relative; the runner keeps load flowing until every event has
// fired and every relaunch has reported ready.
func GenerateReplicaSchedule(seed int64, replicas int) ReplicaSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := ReplicaSchedule{Seed: seed, Replicas: replicas}
	kills := 2 + rng.Intn(3)
	at := int64(150 + rng.Intn(200))
	for i := 0; i < kills; i++ {
		restart := int64(200 + rng.Intn(400))
		s.Events = append(s.Events, ReplicaEvent{
			AtMS:           at,
			Replica:        (int(seed) + i) % replicas,
			RestartAfterMS: restart,
		})
		// Next kill lands after this outage ends, so at most one replica
		// is down at a time and the fleet always has a live majority.
		at += restart + int64(100+rng.Intn(300))
	}
	sort.Slice(s.Events, func(i, j int) bool { return s.Events[i].AtMS < s.Events[j].AtMS })
	return s
}

// ReplicaOptions configures one replica-kill soak.
type ReplicaOptions struct {
	// RingdBin is the path to the ringd binary (required).
	RingdBin string
	// RequestsPerWave sizes each load wave (default 400). Waves repeat
	// until the schedule has fully executed, so total traffic scales
	// with how long the faults take, not with a guessed request count.
	RequestsPerWave int
	// Workers is the load client concurrency (default 8).
	Workers int
	// Seed feeds both the load mix and nothing else — the kill plan has
	// its own seed in the schedule (default 1).
	Seed int64
	// Alg and K shape the election requests (defaults "B", 3).
	Alg string
	K   int
	// Crosscheck is the fraction of responses re-verified against the
	// local simulator (default 0.25).
	Crosscheck float64
	// ErrorBudget is the tolerated client-visible failure fraction —
	// transport errors, 5xx, sheds — across the whole soak (default
	// 0.2). Kills are real: some in-flight requests die with the
	// replica, and the budget bounds how many.
	ErrorBudget float64
	// Timeout bounds the whole soak (default 120s).
	Timeout time.Duration
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.RequestsPerWave <= 0 {
		o.RequestsPerWave = 400
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Alg == "" {
		o.Alg = "B"
	}
	if o.K <= 0 {
		o.K = 3
	}
	if o.Crosscheck <= 0 {
		o.Crosscheck = 0.25
	}
	if o.ErrorBudget <= 0 {
		o.ErrorBudget = 0.2
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	return o
}

// ReplicaReport is the outcome of one replica-kill soak, after all
// assertions passed.
type ReplicaReport struct {
	Seed        int64   `json:"seed"`
	Replicas    int     `json:"replicas"`
	Kills       int     `json:"kills"`
	Relaunches  int     `json:"relaunches"`
	Waves       int     `json:"waves"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Failed      int     `json:"failed"`
	FailedFrac  float64 `json:"failed_frac"`
	Crosschecks int     `json:"crosschecks"`
	Divergences int     `json:"divergences"`
	WallMS      int64   `json:"wall_ms"`
}

// replicaProc supervises one ringd subprocess pinned to a fixed
// HTTP/wire address pair, so a relaunch rejoins the roster in place.
type replicaProc struct {
	name     string
	bin      string
	httpAddr string
	wireAddr string

	mu  sync.Mutex
	cmd *exec.Cmd
}

// start launches ringd and waits until /readyz answers 200. The bind is
// retried: right after a SIGKILL the old socket can linger for a moment,
// and a relaunch losing that race should try again, not fail the soak.
func (p *replicaProc) start(deadline time.Time) error {
	var lastErr error
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		cmd := exec.Command(p.bin,
			"-listen", p.httpAddr,
			"-wire-addr", p.wireAddr,
			"-workers", "1",
			"-log-every", "0",
		)
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("chaos: replica %s: start: %w", p.name, err)
		}
		p.mu.Lock()
		p.cmd = cmd
		p.mu.Unlock()
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		url := "http://" + p.httpAddr + "/readyz"
		for time.Now().Before(deadline) {
			resp, err := http.Get(url)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == 200 {
					return nil
				}
			}
			select {
			case err := <-exited:
				// Died before becoming ready — almost always a lost bind
				// race; back off and relaunch.
				lastErr = fmt.Errorf("chaos: replica %s exited during startup: %v", p.name, err)
				goto respawn
			case <-time.After(20 * time.Millisecond):
			}
		}
		return fmt.Errorf("chaos: replica %s never became ready", p.name)
	respawn:
		time.Sleep(50 * time.Millisecond)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("chaos: replica %s never became ready", p.name)
	}
	return lastErr
}

// kill SIGKILLs the current incarnation, if any. Reaping is left to the
// Wait goroutine start launched — a second concurrent Wait here would
// race with it.
func (p *replicaProc) kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd != nil && p.cmd.Process != nil {
		p.cmd.Process.Kill()
		p.cmd = nil
	}
}

// RunReplicas executes one replica-kill soak: boot the fleet of real
// ringd subprocesses, front it with an in-process gateway (health
// probing, rendezvous routing, hedging), keep waves of the seeded
// crosschecking load mix flowing while the schedule SIGKILLs and
// relaunches whole replicas, then assert the gateway's availability
// contract — zero divergences, client-visible failures within the error
// budget. The returned report carries the observed numbers even
// alongside an assertion error.
func RunReplicas(s *ReplicaSchedule, opts ReplicaOptions) (*ReplicaReport, error) {
	if opts.RingdBin == "" {
		return nil, errors.New("chaos: ReplicaOptions.RingdBin is required")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	start := time.Now()
	deadline := start.Add(opts.Timeout)

	var logMu sync.Mutex
	logf := func(format string, args ...any) {
		if opts.Log == nil {
			return
		}
		logMu.Lock()
		defer logMu.Unlock()
		opts.Log(format, args...)
	}

	// Fixed ports per replica: a relaunched replica must rejoin the
	// roster in place, exactly like a process manager restarting a unit.
	httpAddrs, err := reserveAddrs(s.Replicas)
	if err != nil {
		return nil, err
	}
	wireAddrs, err := reserveAddrs(s.Replicas)
	if err != nil {
		return nil, err
	}
	procs := make([]*replicaProc, s.Replicas)
	roster := make(cluster.Roster, s.Replicas)
	for i := range procs {
		procs[i] = &replicaProc{
			name:     fmt.Sprintf("r%d", i),
			bin:      opts.RingdBin,
			httpAddr: httpAddrs[i],
			wireAddr: wireAddrs[i],
		}
		roster[i] = cluster.Replica{
			Name:     procs[i].name,
			WireAddr: wireAddrs[i],
			BaseURL:  "http://" + httpAddrs[i],
		}
	}
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()
	for _, p := range procs {
		if err := p.start(deadline); err != nil {
			return nil, err
		}
	}
	logf("fleet of %d ringd replicas ready", s.Replicas)

	// The gateway stack mirrors cmd/ringgw, tuned for fast failure
	// detection: 50ms probes, one good probe readmits (the relaunch
	// already waited for /readyz), and a short per-attempt budget so a
	// request caught on a dying socket retries quickly.
	health := cluster.StartHealth(roster, cluster.HealthConfig{
		Interval:     50 * time.Millisecond,
		FailAfter:    2,
		RecoverAfter: 1,
		Logf:         logf,
	})
	defer health.Stop()
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Roster:     roster,
		Health:     health,
		Timeout:    2 * time.Second,
		Backoff:    netring.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Attempts: 50},
		HedgeAfter: 25 * time.Millisecond,
		Logf:       logf,
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()
	gw := cluster.NewGateway(cluster.GatewayConfig{Router: router, Logf: logf})
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: gw.Handler()}
	go hs.Serve(gwLn)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	// The fault executor replays the schedule on its own clock; done
	// closes only after the last relaunch reported ready, so the load
	// loop always drives traffic through at least one full
	// kill→detect→reroute→relaunch→readmit cycle per event. RunReplicas
	// never returns while the executor is live: a straggling event
	// touching procs or opts.Log after the caller moved on would be a
	// use-after-return.
	execDone := make(chan struct{})
	execQuit := make(chan struct{})
	var quitOnce sync.Once
	joinExec := func() { quitOnce.Do(func() { close(execQuit) }); <-execDone }
	defer joinExec()
	var execErr error
	var kills, relaunches int
	go func() {
		defer close(execDone)
		for _, e := range s.Events {
			if wait := time.Duration(e.AtMS)*time.Millisecond - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-execQuit:
					return
				}
			}
			logf("t=%v SIGKILL replica r%d (relaunch after %dms)",
				time.Since(start).Round(time.Millisecond), e.Replica, e.RestartAfterMS)
			procs[e.Replica].kill()
			kills++
			select {
			case <-time.After(time.Duration(e.RestartAfterMS) * time.Millisecond):
			case <-execQuit:
				return
			}
			if err := procs[e.Replica].start(deadline); err != nil {
				execErr = err
				return
			}
			relaunches++
			logf("t=%v replica r%d relaunched and ready",
				time.Since(start).Round(time.Millisecond), e.Replica)
		}
	}()

	rep := &ReplicaReport{Seed: s.Seed, Replicas: s.Replicas}
	loadCfg := load.Config{
		BaseURL:    "http://" + gwLn.Addr().String(),
		Requests:   opts.RequestsPerWave,
		Workers:    opts.Workers,
		Alg:        opts.Alg,
		K:          opts.K,
		Crosscheck: opts.Crosscheck,
		Timeout:    5 * time.Second,
	}
	scheduleDone := false
	for !scheduleDone {
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("chaos: replica soak exceeded the %v deadline with the schedule unfinished (seed %d)", opts.Timeout, s.Seed)
		}
		// A fresh mix seed per wave keeps cold traffic flowing so every
		// wave exercises routing, not just one warmed cache line.
		loadCfg.Seed = opts.Seed + int64(rep.Waves)
		wave, err := load.Run(loadCfg)
		if err != nil {
			return rep, fmt.Errorf("chaos: load wave %d: %w", rep.Waves, err)
		}
		rep.Waves++
		rep.Requests += wave.Requests
		rep.OK += wave.OK
		rep.Failed += wave.TransportErrors + wave.ServerErrors + wave.Shed + wave.BadRequests
		rep.Crosschecks += wave.Crosschecks
		rep.Divergences += wave.Divergences
		select {
		case <-execDone:
			scheduleDone = true
		default:
		}
	}
	rep.Kills, rep.Relaunches = kills, relaunches
	rep.WallMS = time.Since(start).Milliseconds()
	if execErr != nil {
		return rep, execErr
	}
	if rep.Requests > 0 {
		rep.FailedFrac = float64(rep.Failed) / float64(rep.Requests)
	}
	logf("soak done: %d waves, %d requests, %d failed (%.3f), %d crosschecks, %d divergences",
		rep.Waves, rep.Requests, rep.Failed, rep.FailedFrac, rep.Crosschecks, rep.Divergences)
	if rep.Divergences > 0 {
		return rep, fmt.Errorf("chaos: %d crosscheck divergences during replica kills (seed %d) — the gateway served a wrong answer", rep.Divergences, s.Seed)
	}
	if rep.Crosschecks == 0 {
		return rep, fmt.Errorf("chaos: no crosschecks ran (seed %d)", s.Seed)
	}
	if rep.FailedFrac > opts.ErrorBudget {
		return rep, fmt.Errorf("chaos: %.3f of requests failed, budget %.3f (seed %d)", rep.FailedFrac, opts.ErrorBudget, s.Seed)
	}
	return rep, nil
}
