package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/secure"
	"repro/internal/sim"

	repro "repro"
)

// Options configures one chaos run.
type Options struct {
	// RingnodeBin is the path to the ringnode binary (required).
	RingnodeBin string
	// StateDir holds the nodes' durable snapshots; a fresh temp dir is
	// created (and removed) when empty.
	StateDir string
	// Timeout is the overall run deadline. Default 90s.
	Timeout time.Duration
	// BaseDelay is the proxies' per-chunk pacing delay, stretching the
	// election so faults land mid-run. Default 3ms.
	BaseDelay time.Duration
	// Secure runs the ring over authenticated encrypted links: the
	// harness generates a fresh keypair per node, writes the key files
	// and the peer roster into StateDir, and passes -keyfile/-peer-keys
	// to every process. Required for adversary schedules — the
	// ciphertext attacks are only survivable (and only meaningful)
	// against the hardened transport.
	Secure bool
	// Log, when set, receives progress lines (fault firings, restarts).
	// Calls are serialized by Run, so the callback may write to a plain
	// io.Writer without its own locking.
	Log func(format string, args ...any)
}

// Report is the outcome of one chaos run, after all assertions passed.
type Report struct {
	// Seed, Ring, Alg, K echo the schedule.
	Seed int64  `json:"seed"`
	Ring string `json:"ring"`
	Alg  string `json:"alg"`
	K    int    `json:"k"`
	// LeaderIndex and LeaderLabel identify the winner — always equal to
	// the simulator's on a passing run.
	LeaderIndex int    `json:"leader_index"`
	LeaderLabel string `json:"leader_label"`
	// Messages is the ring-wide protocol message total (retransmits
	// excluded) — always equal to the simulator's on a passing run.
	Messages int `json:"messages"`
	// Retransmits counts frames that crossed a link more than once while
	// the transport healed drops and restarts.
	Retransmits int `json:"retransmits"`
	// Recoveries counts node incarnations that resumed from a snapshot.
	Recoveries int `json:"recoveries"`
	// SurvivedFaults tallies the executed fault events by kind.
	SurvivedFaults map[string]int `json:"survived_faults"`
	// WallMS is the run's wall-clock duration.
	WallMS int64 `json:"wall_ms"`
}

// nodeReport mirrors cmd/ringnode's -json output line.
type nodeReport struct {
	Index       int    `json:"index"`
	Leader      bool   `json:"leader"`
	LeaderLabel string `json:"leader_label"`
	Sent        int    `json:"sent"`
	Reconnects  int    `json:"reconnects"`
	Retransmits int    `json:"retransmits"`
	Recovered   bool   `json:"recovered"`
	Halted      bool   `json:"halted"`
}

// supervisor owns one ringnode's process lifecycle: it launches the
// binary, relaunches it after a scheduled SIGKILL (the crash-recovery
// path under test), retries a bounded number of transient infrastructure
// failures (exit 3/4: neighbors still down), and fails hard on anything
// else — in particular exit 5, a specification violation.
type supervisor struct {
	idx  int
	bin  string
	args []string
	log  func(format string, args ...any)

	mu          sync.Mutex
	cmd         *exec.Cmd
	killedThis  bool          // current incarnation was killed by the schedule
	restartWait time.Duration // outage before the relaunch
	recoveries  int           // incarnations that reported Recovered
	aborted     bool          // deadline cleanup: no more relaunches

	report nodeReport
}

// maxTransientRetries bounds relaunches after exit 3/4 — a node can time
// out or exhaust its dial budget while a neighbor's outage overlaps its
// own run, and a relaunch from the snapshot is exactly what a process
// manager would do.
const maxTransientRetries = 3

// errAborted marks a supervisor stopped by the harness (deadline, or a
// fail-fast after another node's hard failure) rather than by its own
// node's behavior; these are filtered out of failure reports so the root
// cause stays visible.
var errAborted = errors.New("aborted by the harness")

func (sv *supervisor) run() error {
	retries := 0
	for {
		var out, errOut bytes.Buffer
		cmd := exec.Command(sv.bin, sv.args...)
		cmd.Stdout = &out
		cmd.Stderr = &errOut
		// Start under the lock: kill/abort read cmd.Process through the same
		// mutex, and Start is what populates it.
		sv.mu.Lock()
		if sv.aborted {
			sv.mu.Unlock()
			return fmt.Errorf("node %d: %w", sv.idx, errAborted)
		}
		sv.cmd = cmd
		sv.killedThis = false
		startErr := cmd.Start()
		sv.mu.Unlock()
		if startErr != nil {
			return fmt.Errorf("node %d: start: %w", sv.idx, startErr)
		}
		err := cmd.Wait()
		sv.mu.Lock()
		killed, wait, aborted := sv.killedThis, sv.restartWait, sv.aborted
		sv.cmd = nil
		sv.mu.Unlock()

		if aborted {
			return fmt.Errorf("node %d: %w", sv.idx, errAborted)
		}
		if killed {
			sv.logf("node %d killed, relaunching after %v", sv.idx, wait)
			time.Sleep(wait)
			continue
		}
		code := 0
		if err != nil {
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				return fmt.Errorf("node %d: wait: %w", sv.idx, err)
			}
			code = ee.ExitCode()
		}
		sv.logf("node %d exited with code %d", sv.idx, code)
		switch code {
		case 0:
			if jerr := json.Unmarshal(lastLine(out.Bytes()), &sv.report); jerr != nil {
				return fmt.Errorf("node %d: bad -json output %q: %w", sv.idx, out.String(), jerr)
			}
			if sv.report.Recovered {
				sv.mu.Lock()
				sv.recoveries++
				sv.mu.Unlock()
			}
			return nil
		case 3, 4:
			if retries++; retries > maxTransientRetries {
				return fmt.Errorf("node %d: gave up after %d transient failures (last exit %d): %s",
					sv.idx, retries-1, code, errOut.String())
			}
			sv.logf("node %d exit %d (transient), retry %d", sv.idx, code, retries)
			time.Sleep(200 * time.Millisecond)
			continue
		default:
			return fmt.Errorf("node %d: exit %d: %s", sv.idx, code, errOut.String())
		}
	}
}

// kill SIGKILLs the current incarnation, marking it for relaunch after
// wait. A node that already finished is left alone (the fault landed
// after the election; the schedule still counts it as survived).
func (sv *supervisor) kill(wait time.Duration) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.cmd == nil || sv.cmd.Process == nil {
		return
	}
	sv.killedThis = true
	sv.restartWait = wait
	sv.cmd.Process.Kill()
}

// abort hard-kills whatever is running without scheduling a relaunch
// (deadline cleanup).
func (sv *supervisor) abort() {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.aborted = true
	if sv.cmd != nil && sv.cmd.Process != nil {
		sv.cmd.Process.Kill()
	}
}

func (sv *supervisor) logf(format string, args ...any) {
	if sv.log != nil {
		sv.log(format, args...)
	}
}

// lastLine returns the final non-empty line of b (the -json report; a
// recovered node may have logged nothing else).
func lastLine(b []byte) []byte {
	lines := bytes.Split(bytes.TrimSpace(b), []byte("\n"))
	if len(lines) == 0 {
		return nil
	}
	return bytes.TrimSpace(lines[len(lines)-1])
}

// Run executes one chaos schedule against a real multi-process TCP ring
// and asserts the recovery guarantees: the election terminates, elects
// the simulator's leader, sends exactly the simulator's message count
// (retransmits excluded), and no process dies with a specification
// violation. The returned error, if any, embeds the seed and the full
// schedule — a complete reproduction recipe.
func Run(s *Schedule, opts Options) (*Report, error) {
	if opts.RingnodeBin == "" {
		return nil, errors.New("chaos: Options.RingnodeBin is required")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 90 * time.Second
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 3 * time.Millisecond
	}
	r, err := repro.ParseRing(s.Ring)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	n := r.N()
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	if s.HasAdversary() && !opts.Secure {
		return nil, errors.New("chaos: adversary events require Options.Secure — on a plaintext ring injected ciphertext is a frame-protocol violation, not a survivable fault")
	}
	alg, err := repro.ParseAlgorithm(s.Alg)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p, err := repro.ProtocolFor(r, alg, s.K)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	// The in-memory simulator is the oracle the TCP run must match.
	ref, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("chaos: simulator oracle failed: %w", err)
	}

	stateDir := opts.StateDir
	if stateDir == "" {
		dir, err := os.MkdirTemp("", "ringchaos-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		stateDir = dir
	}

	nodeAddrs, err := reserveAddrs(n)
	if err != nil {
		return nil, err
	}
	proxyAddrs, err := reserveAddrs(n)
	if err != nil {
		return nil, err
	}
	// proxies[i] carries the link i → i+1: node i dials it, it forwards
	// to node i+1's real listener.
	proxies := make([]*linkProxy, n)
	for i := 0; i < n; i++ {
		proxies[i], err = newLinkProxy(proxyAddrs[i], nodeAddrs[(i+1)%n], opts.BaseDelay)
		if err != nil {
			for j := 0; j < i; j++ {
				proxies[j].close()
			}
			return nil, fmt.Errorf("chaos: proxy %d: %w", i, err)
		}
	}
	defer func() {
		for _, px := range proxies {
			px.close()
		}
	}()

	// Progress lines fire from every supervisor goroutine and the fault
	// executor; serialize them here so the callback can write to a plain
	// io.Writer (as Options.Log promises).
	var logf func(format string, args ...any)
	if opts.Log != nil {
		var logMu sync.Mutex
		raw := opts.Log
		logf = func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			raw(format, args...)
		}
	}

	// Secure mode: a keypair per node, key files plus the shared peer
	// roster in stateDir. A relaunched incarnation reloads the same key
	// file, so recovery and rekey-on-reconnect compose.
	var keyFiles []string
	var peersFile string
	if opts.Secure {
		keyFiles = make([]string, n)
		var roster bytes.Buffer
		for i := 0; i < n; i++ {
			key, err := secure.GenerateKey()
			if err != nil {
				return nil, fmt.Errorf("chaos: generating node %d key: %w", i, err)
			}
			keyFiles[i] = filepath.Join(stateDir, fmt.Sprintf("node-%d.key", i))
			if err := secure.WriteKeyFile(keyFiles[i], key); err != nil {
				return nil, fmt.Errorf("chaos: %w", err)
			}
			fmt.Fprintln(&roster, key.Public().String())
		}
		peersFile = filepath.Join(stateDir, "peers.keys")
		if err := os.WriteFile(peersFile, roster.Bytes(), 0o644); err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
	}

	sups := make([]*supervisor, n)
	for i := 0; i < n; i++ {
		args := []string{
			"-listen", nodeAddrs[i],
			"-next", proxyAddrs[i],
			"-ring", s.Ring,
			"-index", fmt.Sprint(i),
			"-algo", s.Alg,
			"-k", fmt.Sprint(s.K),
			"-state-dir", stateDir,
			"-timeout", opts.Timeout.String(),
			"-json",
		}
		if opts.Secure {
			args = append(args, "-keyfile", keyFiles[i], "-peer-keys", peersFile)
		}
		sups[i] = &supervisor{idx: i, bin: opts.RingnodeBin, log: logf, args: args}
	}

	start := time.Now()
	errs := make([]error, n)
	// failed closes on the first supervisor giving up: the run cannot
	// recover once any node is permanently down, so the others are aborted
	// instead of burning their retry budgets against a hole in the ring.
	failed := make(chan struct{})
	var failOnce sync.Once
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if errs[i] = sups[i].run(); errs[i] != nil {
				failOnce.Do(func() { close(failed) })
			}
		}(i)
	}

	// The fault executor replays the schedule on the shared clock. Run
	// never returns while it is live: a straggling event calling opts.Log
	// after the caller moved on (or a test finished) would be a
	// use-after-return.
	execDone := make(chan struct{})
	execQuit := make(chan struct{})
	joinExec := func() { close(execQuit); <-execDone }
	var timers []*time.Timer
	var timersMu sync.Mutex
	after := func(d time.Duration, f func()) {
		timersMu.Lock()
		timers = append(timers, time.AfterFunc(d, f))
		timersMu.Unlock()
	}
	go func() {
		defer close(execDone)
		// Junk bytes for garbage events; seeded so a replayed schedule
		// injects the identical junk. Used only from this goroutine.
		advRng := rand.New(rand.NewSource(s.Seed ^ 0x61647665727361))
		for _, e := range s.Events {
			e := e
			if wait := time.Duration(e.AtMS)*time.Millisecond - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-execQuit:
					return
				}
			}
			switch e.Kind {
			case KindKill, KindSlowRestart:
				if logf != nil {
					logf("t=%v %s node %d (restart after %dms)", time.Since(start).Round(time.Millisecond), e.Kind, e.Node, e.RestartAfterMS)
				}
				sups[e.Node].kill(time.Duration(e.RestartAfterMS) * time.Millisecond)
			case KindPartition:
				if logf != nil {
					logf("t=%v partition node %d for %dms", time.Since(start).Round(time.Millisecond), e.Node, e.DurationMS)
				}
				out := proxies[e.Node]        // link node → successor
				in := proxies[(e.Node-1+n)%n] // link predecessor → node
				out.block()
				in.block()
				after(time.Duration(e.DurationMS)*time.Millisecond, func() {
					out.unblock()
					in.unblock()
				})
			case KindDelay:
				d := time.Duration(e.DelayMS) * time.Millisecond
				px := proxies[e.Node]
				px.addExtraDelay(d)
				after(time.Duration(e.DurationMS)*time.Millisecond, func() { px.addExtraDelay(-d) })
			case KindGarbage:
				hit := proxies[e.Node].injectGarbage(advRng, e.Bytes)
				if logf != nil {
					logf("t=%v garbage %dB into link %d→%d (live conn: %t)", time.Since(start).Round(time.Millisecond), e.Bytes, e.Node, (e.Node+1)%n, hit)
				}
			case KindReplay:
				hit := proxies[e.Node].injectReplay()
				if logf != nil {
					logf("t=%v replay last chunk on link %d→%d (captured: %t)", time.Since(start).Round(time.Millisecond), e.Node, (e.Node+1)%n, hit)
				}
			case KindTruncate:
				hit := proxies[e.Node].injectTruncate()
				if logf != nil {
					logf("t=%v truncate+sever link %d→%d (captured: %t)", time.Since(start).Round(time.Millisecond), e.Node, (e.Node+1)%n, hit)
				}
			case KindHandshakeCut:
				proxies[e.Node].injectHandshakeCut()
				if logf != nil {
					logf("t=%v handshake cut on link %d→%d", time.Since(start).Round(time.Millisecond), e.Node, (e.Node+1)%n)
				}
			}
		}
	}()
	defer func() {
		timersMu.Lock()
		for _, t := range timers {
			t.Stop()
		}
		timersMu.Unlock()
	}()

	// Wait for every node, bounded by the deadline and cut short by the
	// first hard failure.
	allDone := make(chan struct{})
	go func() { wg.Wait(); close(allDone) }()
	deadlineHit := false
	select {
	case <-allDone:
	case <-failed:
		for _, sv := range sups {
			sv.abort()
		}
		<-allDone
	case <-time.After(opts.Timeout):
		deadlineHit = true
		for _, sv := range sups {
			sv.abort()
		}
		<-allDone
	}
	joinExec()
	// Report every node's own failure; harness aborts are fallout, not
	// causes, and are only surfaced when there is nothing better.
	var hard []error
	for _, e := range errs {
		if e != nil && !errors.Is(e, errAborted) {
			hard = append(hard, e)
		}
	}
	switch {
	case deadlineHit:
		if len(hard) > 0 {
			return nil, runFailure(s, "run exceeded the %v deadline; earlier failures:\n%v", opts.Timeout, errors.Join(hard...))
		}
		return nil, runFailure(s, "run exceeded the %v deadline", opts.Timeout)
	case len(hard) > 0:
		return nil, runFailure(s, "%v", errors.Join(hard...))
	}
	wall := time.Since(start)

	rep := &Report{
		Seed: s.Seed, Ring: s.Ring, Alg: s.Alg, K: s.K,
		LeaderIndex: -1, SurvivedFaults: s.Counts(), WallMS: wall.Milliseconds(),
	}
	for i := 0; i < n; i++ {
		nr := sups[i].report
		if !nr.Halted {
			return nil, runFailure(s, "node %d exited without halting", i)
		}
		rep.Messages += nr.Sent
		rep.Retransmits += nr.Retransmits
		rep.Recoveries += sups[i].recoveries
		if nr.Leader {
			if rep.LeaderIndex >= 0 {
				return nil, runFailure(s, "two leaders: p%d and p%d", rep.LeaderIndex, i)
			}
			rep.LeaderIndex = i
			rep.LeaderLabel = nr.LeaderLabel
		}
	}
	if rep.LeaderIndex < 0 {
		return nil, runFailure(s, "no node became leader")
	}
	if rep.LeaderIndex != ref.LeaderIndex {
		return nil, runFailure(s, "elected p%d, simulator elects p%d", rep.LeaderIndex, ref.LeaderIndex)
	}
	for i := 0; i < n; i++ {
		if got := sups[i].report.LeaderLabel; got != rep.LeaderLabel {
			return nil, runFailure(s, "node %d announces leader label %s, leader is %s", i, got, rep.LeaderLabel)
		}
	}
	if rep.Messages != ref.Messages {
		return nil, runFailure(s, "sent %d protocol messages, simulator sends %d (retransmits must not count)", rep.Messages, ref.Messages)
	}
	return rep, nil
}

// runFailure formats an assertion failure with the full reproduction
// recipe: the seed and the exact schedule.
func runFailure(s *Schedule, format string, args ...any) error {
	return fmt.Errorf("chaos: seed %d: %s\nreplay with -seed %d, schedule:\n%s",
		s.Seed, fmt.Sprintf(format, args...), s.Seed, s)
}

// reserveAddrs grabs n distinct loopback ports and frees them for the
// processes to re-bind; the dial backoff absorbs the startup race.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}
