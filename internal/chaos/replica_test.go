package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestReplicaScheduleDeterministic pins the replay guarantee for the
// replica-kill plans: same seed, same schedule; every schedule has at
// least two kills, round-robin targets, and non-overlapping outages.
func TestReplicaScheduleDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := GenerateReplicaSchedule(seed, 3)
		b := GenerateReplicaSchedule(seed, 3)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%+v\nvs\n%+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		if len(a.Events) < 2 {
			t.Fatalf("seed %d: only %d kills", seed, len(a.Events))
		}
		for i := 1; i < len(a.Events); i++ {
			prev, cur := a.Events[i-1], a.Events[i]
			if cur.AtMS < prev.AtMS+prev.RestartAfterMS {
				t.Fatalf("seed %d: event %d overlaps the previous outage: %+v", seed, i, a.Events)
			}
		}
	}
	if reflect.DeepEqual(GenerateReplicaSchedule(1, 3), GenerateReplicaSchedule(2, 3)) {
		t.Error("seeds 1 and 2 generated the same schedule")
	}
}

func TestReplicaScheduleValidate(t *testing.T) {
	cases := []ReplicaSchedule{
		{Replicas: 1, Events: []ReplicaEvent{{Replica: 0}}},
		{Replicas: 3, Events: []ReplicaEvent{{Replica: 3}}},
		{Replicas: 3, Events: []ReplicaEvent{{Replica: -1}}},
		{Replicas: 3, Events: []ReplicaEvent{{Replica: 0, AtMS: -5}}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

// TestReplicaKillSoak is the cluster availability acceptance run: three
// real ringd subprocesses behind the gateway stack, whole replicas
// SIGKILLed and relaunched mid-traffic, and the client must see zero
// crosscheck divergences with failures inside the error budget. The
// Makefile's test-cluster target runs this under -race.
func TestReplicaKillSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess replica soak")
	}
	for _, seed := range []int64{3, 11} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			s := GenerateReplicaSchedule(seed, 3)
			rep, err := RunReplicas(&s, ReplicaOptions{
				RingdBin: ringdBin,
				Seed:     seed,
				Timeout:  90 * time.Second,
				Log:      t.Logf,
			})
			if err != nil {
				t.Fatalf("seed %d: %v (report: %+v)", seed, err, rep)
			}
			if rep.Kills != len(s.Events) || rep.Relaunches != rep.Kills {
				t.Errorf("seed %d: %d kills / %d relaunches, schedule has %d events",
					seed, rep.Kills, rep.Relaunches, len(s.Events))
			}
			if rep.OK == 0 || rep.Waves < 2 {
				t.Errorf("seed %d: degenerate soak: %+v", seed, rep)
			}
			t.Logf("seed %d: %d waves, %d requests, %d failed (%.3f), %d crosschecks, %dms",
				seed, rep.Waves, rep.Requests, rep.Failed, rep.FailedFrac, rep.Crosschecks, rep.WallMS)
		})
	}
}
