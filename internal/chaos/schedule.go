// Package chaos is a deterministic fault-injection harness for TCP ring
// elections: it derives a reproducible fault schedule from a seed —
// process SIGKILLs with relaunch-from-snapshot, transient link
// partitions, and link delay spikes — executes it against a ring of real
// ringnode processes behind pacing proxies, and asserts the full
// leader-election specification still holds: the election terminates,
// elects the same leader as the in-memory simulator, sends exactly the
// simulator's message count (retransmits excluded), and never breaks a
// link axiom. A failing run prints its seed and exact schedule; replaying
// the seed reproduces the identical schedule.
package chaos

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
)

// Event kinds. A kill SIGKILLs the node and relaunches it from its state
// file after RestartAfterMS; slow_restart is a kill with a long outage; a
// partition blocks both of the node's adjacent links for DurationMS; a
// delay adds DelayMS of extra latency per chunk on the node's outgoing
// link for DurationMS.
const (
	KindKill        = "kill"
	KindSlowRestart = "slow_restart"
	KindPartition   = "partition"
	KindDelay       = "delay"
)

// Adversary event kinds, valid only against an encrypted ring (the
// engine's Secure option): garbage writes Bytes of random junk into a
// live link's ciphertext stream; replay re-sends a previously forwarded
// ciphertext chunk; truncate forwards a prefix of a captured chunk and
// severs the link mid-record; handshake_cut severs the node's outgoing
// link and then cuts the redialed connection again mid-handshake. A
// hardened transport classifies every one of these as a transient
// connection failure — reconnect, rekey, resume — so the election still
// matches the simulator exactly. On a plaintext ring the same bytes
// would reach the frame decoder as a protocol violation, which is why
// the engine refuses adversary schedules without Secure.
const (
	KindGarbage      = "garbage"
	KindReplay       = "replay"
	KindTruncate     = "truncate"
	KindHandshakeCut = "handshake_cut"
)

// Event is one scheduled fault.
type Event struct {
	// AtMS is when the fault fires, in milliseconds after the run starts.
	AtMS int `json:"at_ms"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Node is the fault's target ring index.
	Node int `json:"node"`
	// DurationMS is the fault window for partition and delay events.
	DurationMS int `json:"duration_ms,omitempty"`
	// RestartAfterMS is the outage before a killed node is relaunched.
	RestartAfterMS int `json:"restart_after_ms,omitempty"`
	// DelayMS is the extra per-chunk latency for delay events.
	DelayMS int `json:"delay_ms,omitempty"`
	// Bytes is the junk size for garbage events.
	Bytes int `json:"bytes,omitempty"`
}

// isAdversary reports whether the event kind needs an encrypted ring.
func (e Event) isAdversary() bool {
	switch e.Kind {
	case KindGarbage, KindReplay, KindTruncate, KindHandshakeCut:
		return true
	}
	return false
}

// HasAdversary reports whether any event needs an encrypted ring.
func (s *Schedule) HasAdversary() bool {
	for _, e := range s.Events {
		if e.isAdversary() {
			return true
		}
	}
	return false
}

// Schedule is a complete, reproducible chaos run description: the ring,
// the algorithm, and the ordered fault list. The same seed always
// generates the same schedule, so a failure report's seed is a full
// reproduction recipe.
type Schedule struct {
	// Seed is the generator seed the events were derived from (0 when the
	// schedule was loaded from JSON rather than generated).
	Seed int64 `json:"seed"`
	// Ring is the clockwise label sequence, e.g. "1 3 1 3 2 2 1 2".
	Ring string `json:"ring"`
	// Alg is the algorithm name as cmd/ringnode's -algo accepts it.
	Alg string `json:"alg"`
	// K is the multiplicity bound passed to the processes.
	K int `json:"k"`
	// Events are the faults, sorted by AtMS.
	Events []Event `json:"events"`
}

// Generation bounds. Restart outages and partition windows are kept well
// below the dial retry budget (~10s with default backoff), so a correct
// implementation always survives a generated schedule; only genuine bugs
// fail it.
const (
	genMinEvents       = 2
	genMaxEvents       = 5
	genHorizonMS       = 900 // faults land in the stretched election's first second
	genMinRestartMS    = 100
	genMaxRestartMS    = 600
	genSlowRestartMS   = 2200 // slow_restart outage, fixed + jittered below
	genMinPartitionMS  = 150
	genMaxPartitionMS  = 900
	genMinDelaySpikeMS = 2
	genMaxDelaySpikeMS = 8
	// Adversary injections land in the election's busiest window so most
	// of them hit live ciphertext rather than an idle link.
	genAdversaryHorizonMS = 500
)

// Generate derives the fault schedule for seed on an n-process ring.
// Every schedule contains at least one kill and one partition — the two
// faults the recovery guarantees are about — plus a random tail of
// further faults. Deterministic: same arguments, same schedule.
func Generate(seed int64, ringSpec, alg string, k, n int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, Ring: ringSpec, Alg: alg, K: k}
	count := genMinEvents + rng.Intn(genMaxEvents-genMinEvents+1)
	at := func() int { return 40 + rng.Intn(genHorizonMS) }
	node := func() int { return rng.Intn(n) }
	span := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

	// The two guaranteed faults.
	s.Events = append(s.Events, Event{
		AtMS: at(), Kind: KindKill, Node: node(),
		RestartAfterMS: span(genMinRestartMS, genMaxRestartMS),
	})
	s.Events = append(s.Events, Event{
		AtMS: at(), Kind: KindPartition, Node: node(),
		DurationMS: span(genMinPartitionMS, genMaxPartitionMS),
	})
	for len(s.Events) < count {
		e := Event{AtMS: at(), Node: node()}
		switch rng.Intn(4) {
		case 0:
			e.Kind = KindKill
			e.RestartAfterMS = span(genMinRestartMS, genMaxRestartMS)
		case 1:
			e.Kind = KindSlowRestart
			e.RestartAfterMS = genSlowRestartMS + rng.Intn(400)
		case 2:
			e.Kind = KindPartition
			e.DurationMS = span(genMinPartitionMS, genMaxPartitionMS)
		default:
			e.Kind = KindDelay
			e.DurationMS = span(200, 800)
			e.DelayMS = span(genMinDelaySpikeMS, genMaxDelaySpikeMS)
		}
		s.Events = append(s.Events, e)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].AtMS < s.Events[j].AtMS })
	return s
}

// GenerateAdversary derives an adversarial schedule for seed: at least
// one of each ciphertext attack — garbage, replay, truncate, and a
// mid-handshake cut — plus a random tail drawn from the attacks and the
// crash/partition faults, so the rekey-on-reconnect path is exercised
// under the same pressure as a crash schedule. Deterministic: same
// arguments, same schedule. Only runnable with Options.Secure.
func GenerateAdversary(seed int64, ringSpec, alg string, k, n int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, Ring: ringSpec, Alg: alg, K: k}
	at := func() int { return 40 + rng.Intn(genHorizonMS) }
	// Attacks are front-loaded: a paced election is busiest in its first
	// half-second, and an injection only bites while ciphertext is in
	// flight on the target link.
	atkAt := func() int { return 40 + rng.Intn(genAdversaryHorizonMS) }
	node := func() int { return rng.Intn(n) }
	span := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

	// One of each attack, guaranteed.
	s.Events = append(s.Events,
		Event{AtMS: atkAt(), Kind: KindGarbage, Node: node(), Bytes: span(8, 256)},
		Event{AtMS: atkAt(), Kind: KindReplay, Node: node()},
		Event{AtMS: atkAt(), Kind: KindTruncate, Node: node()},
		Event{AtMS: atkAt(), Kind: KindHandshakeCut, Node: node()},
	)
	count := len(s.Events) + rng.Intn(4)
	for len(s.Events) < count {
		e := Event{AtMS: at(), Node: node()}
		switch rng.Intn(6) {
		case 0:
			e.Kind = KindGarbage
			e.Bytes = span(8, 256)
			e.AtMS = atkAt()
		case 1:
			e.Kind = KindReplay
			e.AtMS = atkAt()
		case 2:
			e.Kind = KindTruncate
			e.AtMS = atkAt()
		case 3:
			e.Kind = KindHandshakeCut
			e.AtMS = atkAt()
		case 4:
			e.Kind = KindKill
			e.RestartAfterMS = span(genMinRestartMS, genMaxRestartMS)
		default:
			e.Kind = KindDelay
			e.DurationMS = span(200, 800)
			e.DelayMS = span(genMinDelaySpikeMS, genMaxDelaySpikeMS)
		}
		s.Events = append(s.Events, e)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].AtMS < s.Events[j].AtMS })
	return s
}

// Validate rejects schedules that reference nodes outside the ring or
// carry unknown kinds (loaded JSON is untrusted input).
func (s *Schedule) Validate(n int) error {
	for i, e := range s.Events {
		if e.Node < 0 || e.Node >= n {
			return fmt.Errorf("chaos: event %d targets node %d outside ring of %d", i, e.Node, n)
		}
		switch e.Kind {
		case KindKill, KindSlowRestart, KindPartition, KindDelay:
		case KindGarbage, KindReplay, KindTruncate, KindHandshakeCut:
		default:
			return fmt.Errorf("chaos: event %d has unknown kind %q", i, e.Kind)
		}
		if e.AtMS < 0 || e.DurationMS < 0 || e.RestartAfterMS < 0 || e.DelayMS < 0 || e.Bytes < 0 {
			return fmt.Errorf("chaos: event %d has a negative time field", i)
		}
	}
	return nil
}

// Counts tallies events by kind.
func (s *Schedule) Counts() map[string]int {
	c := make(map[string]int)
	for _, e := range s.Events {
		c[e.Kind]++
	}
	return c
}

// String renders the schedule as indented JSON — the format failure
// messages embed and -schedule-json files use.
func (s *Schedule) String() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Sprintf("chaos: unprintable schedule: %v", err)
	}
	return string(b)
}

// WriteFile dumps the schedule as JSON.
func (s *Schedule) WriteFile(path string) error {
	return os.WriteFile(path, []byte(s.String()+"\n"), 0o644)
}

// LoadSchedule reads a -schedule-json file.
func LoadSchedule(path string) (*Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("chaos: parsing %s: %w", path, err)
	}
	return &s, nil
}
