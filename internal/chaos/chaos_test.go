package chaos

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// chaosSeeds raises the soak's seed count; the Makefile's test-chaos
// target runs the full acceptance soak with -chaos.seeds=20.
var chaosSeeds = flag.Int("chaos.seeds", 4, "distinct seeds for the chaos soak")

// ringnodeBin and ringdBin are built once per test binary by TestMain:
// ringnode for the single-election fault runs, ringd for the
// replica-kill soak.
var ringnodeBin, ringdBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "chaosbin-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ringnodeBin = filepath.Join(dir, "ringnode")
	ringdBin = filepath.Join(dir, "ringd")
	for pkg, bin := range map[string]string{
		"repro/cmd/ringnode": ringnodeBin,
		"repro/cmd/ringd":    ringdBin,
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "building", pkg, ":", err)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// TestGenerateDeterministic pins the replay guarantee: the same seed
// yields the identical schedule, different seeds yield different ones,
// and every schedule carries the two guaranteed fault kinds.
func TestGenerateDeterministic(t *testing.T) {
	const ringSpec = "1 3 1 3 2 2 1 2"
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(seed, ringSpec, "ak", 3, 8)
		b := Generate(seed, ringSpec, "ak", 3, 8)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, &a, &b)
		}
		if err := a.Validate(8); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		counts := a.Counts()
		if counts[KindKill]+counts[KindSlowRestart] < 1 {
			t.Fatalf("seed %d: no kill in schedule:\n%s", seed, &a)
		}
		if counts[KindPartition] < 1 {
			t.Fatalf("seed %d: no partition in schedule:\n%s", seed, &a)
		}
		for i := 1; i < len(a.Events); i++ {
			if a.Events[i].AtMS < a.Events[i-1].AtMS {
				t.Fatalf("seed %d: events not sorted", seed)
			}
		}
	}
	if reflect.DeepEqual(Generate(1, ringSpec, "ak", 3, 8), Generate(2, ringSpec, "ak", 3, 8)) {
		t.Error("seeds 1 and 2 generated the same schedule")
	}
}

// TestScheduleJSONRoundTrip dumps a schedule with -schedule-json
// semantics and loads it back unchanged.
func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Generate(7, "1 2 2", "bk", 2, 3)
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, s) {
		t.Fatalf("round trip:\n%s\nvs\n%s", got, &s)
	}
	if _, err := LoadSchedule(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing schedule file not reported")
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []Schedule{
		{Events: []Event{{Kind: "meteor", Node: 0}}},
		{Events: []Event{{Kind: KindKill, Node: 9}}},
		{Events: []Event{{Kind: KindKill, Node: -1}}},
		{Events: []Event{{Kind: KindDelay, Node: 0, DurationMS: -5}}},
		{Events: []Event{{Kind: KindGarbage, Node: 0, Bytes: -1}}},
	}
	for i, s := range cases {
		if err := s.Validate(3); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

// TestGenerateAdversaryDeterministic pins the adversary generator's
// replay guarantee and its coverage floor: every schedule carries at
// least one of each ciphertext attack.
func TestGenerateAdversaryDeterministic(t *testing.T) {
	const ringSpec = "1 3 1 3 2 2 1 2"
	for seed := int64(0); seed < 50; seed++ {
		a := GenerateAdversary(seed, ringSpec, "ak", 3, 8)
		b := GenerateAdversary(seed, ringSpec, "ak", 3, 8)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, &a, &b)
		}
		if err := a.Validate(8); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", seed, err)
		}
		if !a.HasAdversary() {
			t.Fatalf("seed %d: adversary schedule without adversary events:\n%s", seed, &a)
		}
		counts := a.Counts()
		for _, kind := range []string{KindGarbage, KindReplay, KindTruncate, KindHandshakeCut} {
			if counts[kind] < 1 {
				t.Fatalf("seed %d: no %s event in schedule:\n%s", seed, kind, &a)
			}
		}
	}
}

// TestAdversaryRequiresSecure pins the downgrade guard: an adversary
// schedule on a plaintext ring is refused before any process spawns,
// because injected ciphertext would surface as a frame-protocol
// violation rather than a survivable transient fault.
func TestAdversaryRequiresSecure(t *testing.T) {
	s := GenerateAdversary(1, "1 3 1 3 2 2 1 2", "ak", 3, 8)
	if _, err := Run(&s, Options{RingnodeBin: ringnodeBin}); err == nil {
		t.Fatal("adversary schedule accepted without Options.Secure")
	}
}

// runSchedule executes one schedule and fails the test with the full
// reproduction recipe on any assertion breach.
func runSchedule(t *testing.T, s Schedule, secure bool) *Report {
	t.Helper()
	rep, err := Run(&s, Options{
		RingnodeBin: ringnodeBin,
		Timeout:     60 * time.Second,
		Secure:      secure,
		Log:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeaderIndex < 0 || rep.Messages <= 0 {
		t.Fatalf("seed %d: degenerate report %+v", s.Seed, rep)
	}
	return rep
}

// runSeed executes one generated crash schedule.
func runSeed(t *testing.T, seed int64, ringSpec, alg string, k, n int) *Report {
	t.Helper()
	return runSchedule(t, Generate(seed, ringSpec, alg, k, n), false)
}

// TestChaosSurvivesKillAndPartition is the acceptance core on the Figure 1
// ring: a schedule with a SIGKILL+restart and a partition, and the
// election still terminates with the simulator's leader and exact message
// count. Seed 3's schedule puts a kill and partition well inside the
// stretched election.
func TestChaosSurvivesKillAndPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess chaos run")
	}
	rep := runSeed(t, 3, "1 3 1 3 2 2 1 2", "ak", 3, 8)
	if rep.SurvivedFaults[KindKill]+rep.SurvivedFaults[KindSlowRestart] < 1 ||
		rep.SurvivedFaults[KindPartition] < 1 {
		t.Fatalf("schedule missing required faults: %+v", rep.SurvivedFaults)
	}
}

// TestChaosRandomizedSymmetric runs the randomized Itai–Rodeh engine on
// a fully symmetric ring through the chaos harness: SIGKILLed and
// partitioned nodes must recover from their snapshots (machine state
// plus the PRNG cursor) and still reproduce the simulator oracle's
// leader and exact message count — the strongest replay claim the
// engine makes, on the input no deterministic algorithm can serve.
func TestChaosRandomizedSymmetric(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess chaos run")
	}
	rep := runSeed(t, 3, "1 2 1 2 1 2", "ir", 3, 6)
	if rep.SurvivedFaults[KindKill]+rep.SurvivedFaults[KindSlowRestart] < 1 ||
		rep.SurvivedFaults[KindPartition] < 1 {
		t.Fatalf("schedule missing required faults: %+v", rep.SurvivedFaults)
	}
}

// TestChaosSoak sweeps -chaos.seeds distinct seeds across the paper's
// three algorithms plus the randomized engine on the Figure 1 ring
// (8 nodes, k = 3). The Makefile's
// test-chaos target runs this with -race and -chaos.seeds=20.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping chaos soak")
	}
	algs := []string{"ak", "bk", "astar", "ir"}
	recoveries := 0
	for seed := int64(0); seed < int64(*chaosSeeds); seed++ {
		alg := algs[seed%int64(len(algs))]
		t.Run(fmt.Sprintf("seed-%d-%s", seed, alg), func(t *testing.T) {
			rep := runSeed(t, seed, "1 3 1 3 2 2 1 2", alg, 3, 8)
			recoveries += rep.Recoveries
			t.Logf("seed %d %s: leader p%d, %d msgs, %d retransmits, %d recoveries, %dms",
				seed, alg, rep.LeaderIndex, rep.Messages, rep.Retransmits, rep.Recoveries, rep.WallMS)
		})
	}
	if recoveries == 0 {
		t.Error("no run recovered from a snapshot: kills all landed after termination (pacing too fast?)")
	}
}

// TestChaosSecureKillAndPartition reruns the acceptance core over
// authenticated encrypted links: the crash schedule's guarantees — the
// simulator's leader, the exact message count — must survive key-file
// reloads and rekey-on-reconnect after every kill and partition.
func TestChaosSecureKillAndPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping subprocess chaos run")
	}
	rep := runSchedule(t, Generate(3, "1 3 1 3 2 2 1 2", "ak", 3, 8), true)
	if rep.SurvivedFaults[KindKill]+rep.SurvivedFaults[KindSlowRestart] < 1 ||
		rep.SurvivedFaults[KindPartition] < 1 {
		t.Fatalf("schedule missing required faults: %+v", rep.SurvivedFaults)
	}
}

// TestAdversarySoak sweeps -chaos.seeds adversarial schedules — garbage
// ciphertext, replayed records, mid-record truncations, mid-handshake
// severs, plus crash faults — across the algorithms on the Figure 1
// ring. Every run must still elect the simulator's leader with the
// simulator's exact message count and no process may die with a
// violation: the ciphertext attacks have to be indistinguishable from
// transient link failures. The Makefile's test-chaos target runs this
// with -race and -chaos.seeds=20.
func TestAdversarySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping adversary soak")
	}
	algs := []string{"ak", "bk", "astar", "ir"}
	for seed := int64(0); seed < int64(*chaosSeeds); seed++ {
		alg := algs[seed%int64(len(algs))]
		t.Run(fmt.Sprintf("seed-%d-%s", seed, alg), func(t *testing.T) {
			s := GenerateAdversary(seed, "1 3 1 3 2 2 1 2", alg, 3, 8)
			rep := runSchedule(t, s, true)
			t.Logf("seed %d %s: leader p%d, %d msgs, %d retransmits, %d recoveries, faults %v, %dms",
				seed, alg, rep.LeaderIndex, rep.Messages, rep.Retransmits, rep.Recoveries, rep.SurvivedFaults, rep.WallMS)
		})
	}
}
