package chaos

import (
	"io"
	"net"
	"sync"
	"time"
)

// linkProxy sits on one ring link: the sending node dials the proxy, the
// proxy dials the real successor and shuttles bytes both ways. It gives
// the harness three handles the raw TCP link does not: a base pacing
// delay that stretches the election so faults land mid-run, a transient
// partition switch (refuse new connections and sever live ones), and
// injectable delay spikes. Pacing is applied per small read chunk, so one
// batched write from the sender still crosses the link gradually.
type linkProxy struct {
	ln     net.Listener
	target string
	base   time.Duration

	mu       sync.Mutex
	blockers int // partitions currently covering this link (they may overlap)
	extra    time.Duration
	conns    map[net.Conn]struct{} // live upstream+downstream conns, for severing
	closed   bool
}

// proxyChunk is the pacing granularity in bytes: smaller than most frame
// batches, so multi-frame writes pay the delay several times.
const proxyChunk = 48

// newLinkProxy starts a proxy listening on addr, forwarding to target.
func newLinkProxy(addr, target string, base time.Duration) (*linkProxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &linkProxy{ln: ln, target: target, base: base, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

func (p *linkProxy) addr() string { return p.ln.Addr().String() }

func (p *linkProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.blockers > 0 || p.closed {
			p.mu.Unlock()
			conn.Close() // partitioned: the dialer sees an immediate drop
			continue
		}
		p.mu.Unlock()
		go p.serve(conn)
	}
}

// serve connects one accepted sender connection through to the target.
func (p *linkProxy) serve(down net.Conn) {
	up, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		down.Close() // successor down (e.g. killed): sender retries
		return
	}
	p.track(down, up)
	// Either direction failing severs the whole link at once: a TCP link
	// has no half-dead state the ring protocol could use, and leaving the
	// other side open would make the successor read a dead connection
	// forever instead of accepting the sender's reconnect.
	sever := func() { down.Close(); up.Close() }
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); defer sever(); p.pump(up, down) }() // sender → successor, paced
	go func() { defer wg.Done(); defer sever(); p.pump(down, up) }() // acks/goodbyes back, paced
	wg.Wait()
	p.untrack(down, up)
}

// pump copies src→dst in proxyChunk-sized reads, sleeping the current
// link delay before each forwarded chunk.
func (p *linkProxy) pump(dst io.Writer, src net.Conn) {
	buf := make([]byte, proxyChunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			d := p.base + p.extra
			p.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func (p *linkProxy) track(cs ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range cs {
		p.conns[c] = struct{}{}
	}
}

func (p *linkProxy) untrack(cs ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range cs {
		delete(p.conns, c)
		c.Close()
	}
}

// block starts one partition window on the link: live connections are
// severed and new dials refused until the matching unblock. Windows may
// overlap; the link reopens when the last one ends.
func (p *linkProxy) block() {
	p.mu.Lock()
	p.blockers++
	var sever []net.Conn
	for c := range p.conns {
		sever = append(sever, c)
	}
	p.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// unblock ends one partition window.
func (p *linkProxy) unblock() {
	p.mu.Lock()
	if p.blockers > 0 {
		p.blockers--
	}
	p.mu.Unlock()
}

// addExtraDelay adds d to the injected per-chunk delay (negative to end a
// spike); spikes compose additively so overlapping windows stay balanced.
func (p *linkProxy) addExtraDelay(d time.Duration) {
	p.mu.Lock()
	p.extra += d
	if p.extra < 0 {
		p.extra = 0
	}
	p.mu.Unlock()
}

// close shuts the proxy down and severs everything.
func (p *linkProxy) close() {
	p.mu.Lock()
	p.closed = true
	var sever []net.Conn
	for c := range p.conns {
		sever = append(sever, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range sever {
		c.Close()
	}
}
