package chaos

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// linkProxy sits on one ring link: the sending node dials the proxy, the
// proxy dials the real successor and shuttles bytes both ways. It gives
// the harness three handles the raw TCP link does not: a base pacing
// delay that stretches the election so faults land mid-run, a transient
// partition switch (refuse new connections and sever live ones), and
// injectable delay spikes. Pacing is applied per small read chunk, so one
// batched write from the sender still crosses the link gradually.
type linkProxy struct {
	ln     net.Listener
	target string
	base   time.Duration

	mu       sync.Mutex
	blockers int // partitions currently covering this link (they may overlap)
	extra    time.Duration
	conns    map[net.Conn]struct{} // live upstream+downstream conns, for severing
	fwd      map[net.Conn]struct{} // the upstream (toward-successor) side of each live pair
	closed   bool

	// Adversary state: the last ciphertext chunk forwarded toward the
	// successor (and which conn carried it) for replay/truncate attacks,
	// and a count of fresh connections whose first forwarded chunk should
	// be followed by an immediate sever (a mid-handshake cut — the
	// ringsec msg1 is 96 bytes, two pacing chunks, so cutting after the
	// first chunk lands inside the handshake).
	lastChunk  []byte
	lastUp     net.Conn
	cutPending int
}

// proxyChunk is the pacing granularity in bytes: smaller than most frame
// batches, so multi-frame writes pay the delay several times.
const proxyChunk = 48

// newLinkProxy starts a proxy listening on addr, forwarding to target.
func newLinkProxy(addr, target string, base time.Duration) (*linkProxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &linkProxy{
		ln: ln, target: target, base: base,
		conns: make(map[net.Conn]struct{}),
		fwd:   make(map[net.Conn]struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

func (p *linkProxy) addr() string { return p.ln.Addr().String() }

func (p *linkProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.blockers > 0 || p.closed {
			p.mu.Unlock()
			conn.Close() // partitioned: the dialer sees an immediate drop
			continue
		}
		p.mu.Unlock()
		go p.serve(conn)
	}
}

// serve connects one accepted sender connection through to the target.
func (p *linkProxy) serve(down net.Conn) {
	up, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		down.Close() // successor down (e.g. killed): sender retries
		return
	}
	p.track(down, up)
	// Either direction failing severs the whole link at once: a TCP link
	// has no half-dead state the ring protocol could use, and leaving the
	// other side open would make the successor read a dead connection
	// forever instead of accepting the sender's reconnect.
	sever := func() { down.Close(); up.Close() }
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); defer sever(); p.pump(up, down, true) }()  // sender → successor, paced
	go func() { defer wg.Done(); defer sever(); p.pump(down, up, false) }() // acks/goodbyes back, paced
	wg.Wait()
	p.untrack(down, up)
}

// pump copies src→dst in proxyChunk-sized reads, sleeping the current
// link delay before each forwarded chunk. On the forward (sender →
// successor) direction it also records the last forwarded chunk for
// replay/truncate injection and honors pending mid-handshake cuts.
func (p *linkProxy) pump(dst io.Writer, src net.Conn, forward bool) {
	buf := make([]byte, proxyChunk)
	firstChunk := true
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			d := p.base + p.extra
			cut := false
			if forward {
				p.lastChunk = append(p.lastChunk[:0], buf[:n]...)
				if up, ok := dst.(net.Conn); ok {
					p.lastUp = up
				}
				if firstChunk && p.cutPending > 0 {
					p.cutPending--
					cut = true
				}
			}
			p.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			if cut {
				return // sever mid-handshake: the defer in serve closes both sides
			}
			firstChunk = false
		}
		if err != nil {
			return
		}
	}
}

// track registers a live down/up pair; the up side is also remembered as
// a forward-direction injection target.
func (p *linkProxy) track(down, up net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns[down] = struct{}{}
	p.conns[up] = struct{}{}
	p.fwd[up] = struct{}{}
}

func (p *linkProxy) untrack(cs ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range cs {
		delete(p.conns, c)
		delete(p.fwd, c)
		if p.lastUp == c {
			p.lastUp = nil
		}
		c.Close()
	}
}

// injectGarbage writes n random bytes into the forward ciphertext stream
// of a live connection, concurrently with whatever the pump is
// forwarding. Under ringsec the receiver's record MAC fails and the link
// severs as a transient error; reconnect + resume heals it. Reports
// whether a live connection existed to attack.
func (p *linkProxy) injectGarbage(rng *rand.Rand, n int) bool {
	junk := make([]byte, n)
	rng.Read(junk)
	p.mu.Lock()
	var up net.Conn
	for c := range p.fwd {
		up = c
		break
	}
	p.mu.Unlock()
	if up == nil {
		return false
	}
	up.Write(junk)
	return true
}

// injectReplay re-sends the most recently forwarded ciphertext chunk on
// the connection that carried it. The receiver's strict nonce counter
// rejects the duplicate record, so no message is ever double-delivered.
func (p *linkProxy) injectReplay() bool {
	p.mu.Lock()
	up := p.lastUp
	chunk := append([]byte(nil), p.lastChunk...)
	p.mu.Unlock()
	if up == nil || len(chunk) == 0 {
		return false
	}
	up.Write(chunk)
	return true
}

// injectTruncate re-sends a prefix of the last forwarded chunk and then
// severs every live connection: the receiver is left holding a
// mid-record truncation, which must surface as a clean transient
// connection error, never a panic or a protocol violation.
func (p *linkProxy) injectTruncate() bool {
	p.mu.Lock()
	up := p.lastUp
	chunk := append([]byte(nil), p.lastChunk...)
	var sever []net.Conn
	for c := range p.conns {
		sever = append(sever, c)
	}
	p.mu.Unlock()
	ok := up != nil && len(chunk) > 1
	if ok {
		up.Write(chunk[:len(chunk)/2])
	}
	for _, c := range sever {
		c.Close()
	}
	return ok
}

// injectHandshakeCut severs every live connection — forcing the sender
// to redial and rekey — and arms a cut on the next fresh connection
// after its first forwarded chunk, landing inside the new handshake.
func (p *linkProxy) injectHandshakeCut() {
	p.mu.Lock()
	p.cutPending++
	var sever []net.Conn
	for c := range p.conns {
		sever = append(sever, c)
	}
	p.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// block starts one partition window on the link: live connections are
// severed and new dials refused until the matching unblock. Windows may
// overlap; the link reopens when the last one ends.
func (p *linkProxy) block() {
	p.mu.Lock()
	p.blockers++
	var sever []net.Conn
	for c := range p.conns {
		sever = append(sever, c)
	}
	p.mu.Unlock()
	for _, c := range sever {
		c.Close()
	}
}

// unblock ends one partition window.
func (p *linkProxy) unblock() {
	p.mu.Lock()
	if p.blockers > 0 {
		p.blockers--
	}
	p.mu.Unlock()
}

// addExtraDelay adds d to the injected per-chunk delay (negative to end a
// spike); spikes compose additively so overlapping windows stay balanced.
func (p *linkProxy) addExtraDelay(d time.Duration) {
	p.mu.Lock()
	p.extra += d
	if p.extra < 0 {
		p.extra = 0
	}
	p.mu.Unlock()
}

// close shuts the proxy down and severs everything.
func (p *linkProxy) close() {
	p.mu.Lock()
	p.closed = true
	var sever []net.Conn
	for c := range p.conns {
		sever = append(sever, c)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range sever {
		c.Close()
	}
}
