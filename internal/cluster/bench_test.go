package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/serve"

	repro "repro"
)

// benchRings builds a fixed pool of distinct ring classes large enough
// that, against deliberately tiny replica caches, most requests are
// misses — so the benchmark measures the fleet's election throughput,
// not one cache's hit path, and adding replicas adds compute.
func benchRings(b *testing.B, count int) []*ring.Ring {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	rings := make([]*ring.Ring, 0, count)
	for len(rings) < count {
		rg, err := ring.RandomAsymmetric(rng, 16, 3, 6)
		if err != nil {
			continue
		}
		rings = append(rings, rg)
	}
	return rings
}

// BenchmarkClusterElect measures routed election throughput at fleet
// sizes 1, 2, and 4 — the ladder benchdiff's -cluster-scale check reads.
// On a multi-core host the 2-replica rung should beat the 1-replica rung
// by the configured floor; on a single-core host the numbers still
// record, and the scale check skips on the report's gomaxprocs.
func BenchmarkClusterElect(b *testing.B) {
	rings := benchRings(b, 512)
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			f, err := StartLocalFleet(n, serve.Config{CacheEntries: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Stop()
			r, err := NewRouter(RouterConfig{
				Roster:     f.Roster,
				Timeout:    30 * time.Second,
				HedgeAfter: 10 * time.Second, // no hedging: measure one attempt per request
			})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			var idx atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					rg := rings[int(idx.Add(1))%len(rings)]
					if _, err := r.Elect(context.Background(), rg.LabelsView(), repro.AlgorithmB, 3); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
