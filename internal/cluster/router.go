package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/secure"
	"repro/internal/serve"
	"repro/internal/stats"

	repro "repro"
)

// RouterConfig tunes a Router. Roster is required; everything else has
// defaults.
type RouterConfig struct {
	Roster Roster
	// Health supplies the liveness view. Nil means all replicas are
	// presumed alive (useful for tests and single-replica rosters).
	Health *Health
	// PoolConns is the pooled wire connections per replica (default 2).
	PoolConns int
	// Timeout bounds one replica attempt end to end (default 5s).
	Timeout time.Duration
	// Backoff paces broken-connection redials inside each pooled client.
	Backoff netring.Backoff
	// HedgeAfter is the floor of the hedge budget (default 10ms): before
	// any latency history exists, a hedge fires after this long.
	HedgeAfter time.Duration
	// HedgeMultiplier scales the observed EWMA latency into the hedge
	// budget (default 4): a request is hedged once it has taken this
	// many times the typical request, i.e. once it is likelier stuck
	// than slow.
	HedgeMultiplier float64
	// MaxAttempts bounds how many distinct replicas one request may try,
	// hedges included (default: the whole roster).
	MaxAttempts int
	// Identity is the gateway's ringsec private key, required to dial
	// any replica whose roster entry carries a PubKey.
	Identity *secure.PrivateKey
	// Logf receives routing diagnostics (nil = silent).
	Logf func(format string, args ...any)
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.PoolConns <= 0 {
		c.PoolConns = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 10 * time.Millisecond
	}
	if c.HedgeMultiplier <= 0 {
		c.HedgeMultiplier = 4
	}
	if c.MaxAttempts <= 0 || c.MaxAttempts > len(c.Roster) {
		c.MaxAttempts = len(c.Roster)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// replicaCounters is one replica's routing ledger, all lock-free.
type replicaCounters struct {
	routed    atomic.Int64 // attempts launched at this replica
	hedged    atomic.Int64 // of those, launched as hedges
	hedgeWins atomic.Int64 // hedge attempts whose answer was used
	failed    atomic.Int64 // attempts that errored (typed or transport)
	latency   *stats.Striped
}

// ReplicaStats is a snapshot of one replica's routing ledger for
// /metrics and operational logs.
type ReplicaStats struct {
	Name      string
	Up        bool
	Routed    int64
	Hedged    int64
	HedgeWins int64
	Failed    int64
	// P50 and P99 are attempt latencies in seconds (0 with no samples).
	P50 float64
	P99 float64
}

// Router routes elections to the replica fleet. For each request it
// canonicalizes the ring to its class key, ranks replicas by rendezvous
// score, and sends to the highest-ranked live replica — the one whose
// cache owns the class. A request that outlives its hedge budget (an
// EWMA of observed latency times HedgeMultiplier, floored at HedgeAfter)
// is hedged to the next-ranked replica and the first answer wins; the
// loser is abandoned, not awaited. Retryable failures — transport
// errors, a draining replica's typed 503 — fail over to the next rank
// immediately. Deterministic outcomes (400), backpressure (429), and
// engine failures (500) are relayed to the caller as-is: retrying those
// elsewhere would either waste work or defeat the replicas' load
// shedding.
//
// Router implements serve.WireBackend; its Elect returns the leader in
// the caller's frame (the replicas' wire protocol already guarantees
// that).
type Router struct {
	cfg      RouterConfig
	rv       *Rendezvous
	pool     *pool
	counters []replicaCounters

	// ewmaNs holds the float64 bits of the exponentially weighted moving
	// average of successful attempt latency, in nanoseconds. CAS-updated.
	ewmaNs atomic.Uint64

	scratch sync.Pool // *routeScratch
}

// routeScratch recycles the per-request key and ranking buffers: the
// routing decision for a cached class costs no allocation.
type routeScratch struct {
	key  []byte
	rank []int
}

// NewRouter builds a Router over cfg.Roster. Call Close when done.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if err := cfg.Roster.Validate(); err != nil {
		return nil, err
	}
	// A secure roster without a client identity can never dial; fail at
	// construction rather than on the first request to rank there.
	if cfg.Identity == nil {
		for _, rep := range cfg.Roster {
			if rep.PubKey != "" {
				return nil, fmt.Errorf("cluster: replica %q has a public key but the gateway has no identity (set -keyfile)", rep.Name)
			}
		}
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:      cfg,
		rv:       NewRendezvous(cfg.Roster.Names()),
		pool:     newPool(cfg.Roster, cfg.PoolConns, cfg.Timeout, cfg.Backoff, cfg.Identity),
		counters: make([]replicaCounters, len(cfg.Roster)),
	}
	for i := range r.counters {
		r.counters[i].latency = stats.MustStriped(0, stats.DefaultLatencyBuckets)
	}
	r.scratch.New = func() any { return &routeScratch{} }
	return r, nil
}

// Close releases every pooled connection. In-flight calls fail.
func (r *Router) Close() { r.pool.close() }

// Alive reports the router's liveness view of replica i.
func (r *Router) alive(i int) bool {
	return r.cfg.Health == nil || r.cfg.Health.Alive(i)
}

// Stats snapshots every replica's routing ledger, in roster order.
func (r *Router) Stats() []ReplicaStats {
	out := make([]ReplicaStats, len(r.cfg.Roster))
	for i := range out {
		c := &r.counters[i]
		h := c.latency.Snapshot()
		out[i] = ReplicaStats{
			Name:      r.cfg.Roster[i].Name,
			Up:        r.alive(i),
			Routed:    c.routed.Load(),
			Hedged:    c.hedged.Load(),
			HedgeWins: c.hedgeWins.Load(),
			Failed:    c.failed.Load(),
		}
		if h.Count() > 0 {
			out[i].P50 = h.Quantile(0.5)
			out[i].P99 = h.Quantile(0.99)
		}
	}
	return out
}

// Owner returns the roster index that currently owns the canonical
// class of (labels, alg, k) under the router's liveness view, or -1
// when every replica is down. Diagnostic; Elect does its own ranking.
func (r *Router) Owner(labels []ring.Label, alg repro.Algorithm, k int) int {
	sc := r.scratch.Get().(*routeScratch)
	sc.key, _ = serve.AppendCanonicalKey(sc.key, labels, alg, k)
	owner := r.rv.Owner(sc.key, r.alive)
	r.scratch.Put(sc)
	return owner
}

// attemptResult carries one replica attempt's outcome back to Elect.
type attemptResult struct {
	replica int
	hedge   bool
	out     serve.WireOutcome
	err     error
}

// retryable reports whether an attempt failure may legitimately be
// answered by a different replica: transport-level errors (the replica
// or its connection died) and a typed 503 (the replica is draining —
// the rest of the fleet is exactly where that traffic should go).
func retryable(err error) bool {
	var we *serve.WireError
	if errors.As(err, &we) {
		return we.Status == 503
	}
	return true
}

// Elect routes one election. labels must not be mutated until Elect
// returns (the attempt goroutines read it concurrently).
func (r *Router) Elect(ctx context.Context, labels []ring.Label, alg repro.Algorithm, k int) (serve.WireOutcome, error) {
	sc := r.scratch.Get().(*routeScratch)
	sc.key, _ = serve.AppendCanonicalKey(sc.key, labels, alg, k)
	sc.rank = r.rv.Rank(sc.key, sc.rank)

	// Candidate order: live replicas by rank — the first is the class
	// owner — then dead ones by rank as a last resort, because the
	// liveness view is hysteretic and may lag a recovery by a probe
	// round or two. Trying a "dead" replica beats refusing the request.
	cands := make([]int, 0, len(sc.rank))
	for _, i := range sc.rank {
		if r.alive(i) {
			cands = append(cands, i)
		}
	}
	for _, i := range sc.rank {
		if !r.alive(i) {
			cands = append(cands, i)
		}
	}
	r.scratch.Put(sc)
	if len(cands) > r.cfg.MaxAttempts {
		cands = cands[:r.cfg.MaxAttempts]
	}

	results := make(chan attemptResult, len(cands))
	launched, pending := 0, 0
	launch := func(hedge bool) {
		idx := cands[launched]
		launched++
		pending++
		c := &r.counters[idx]
		c.routed.Add(1)
		if hedge {
			c.hedged.Add(1)
		}
		go r.attempt(idx, hedge, labels, alg, k, results)
	}
	launch(false)

	hedgeTimer := time.NewTimer(r.hedgeBudget())
	defer hedgeTimer.Stop()

	var lastErr error
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			if res.err == nil {
				if res.hedge {
					r.counters[res.replica].hedgeWins.Add(1)
				}
				return res.out, nil
			}
			lastErr = res.err
			if !retryable(res.err) {
				// Deterministic or backpressure failure: relay it now.
				// A still-outstanding hedge resolves into the buffered
				// channel and is dropped — never awaited.
				return serve.WireOutcome{}, res.err
			}
			if launched < len(cands) {
				launch(false)
			}
		case <-hedgeTimer.C:
			if launched < len(cands) {
				launch(true)
			}
		case <-ctx.Done():
			return serve.WireOutcome{}, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no replica available")
	}
	return serve.WireOutcome{}, fmt.Errorf("cluster: all %d attempts failed: %w", launched, lastErr)
}

// attempt runs one election against one replica and reports into the
// buffered results channel (never blocking, so abandoned attempts leak
// nothing).
func (r *Router) attempt(idx int, hedge bool, labels []ring.Label, alg repro.Algorithm, k int, results chan<- attemptResult) {
	c := &r.counters[idx]
	client, err := r.pool.client(idx)
	if err != nil {
		c.failed.Add(1)
		results <- attemptResult{replica: idx, hedge: hedge, err: err}
		return
	}
	start := time.Now()
	out, err := client.Elect(labels, alg, k)
	d := time.Since(start)
	if err != nil {
		c.failed.Add(1)
		results <- attemptResult{replica: idx, hedge: hedge, err: err}
		return
	}
	c.latency.Observe(d.Seconds())
	r.observeLatency(d)
	results <- attemptResult{replica: idx, hedge: hedge, out: out}
}

// ewmaAlpha is the smoothing factor of the latency estimate: each new
// sample contributes 20%, so the hedge budget tracks shifts in load
// within a few tens of requests without chasing single outliers.
const ewmaAlpha = 0.2

// observeLatency folds one successful attempt into the EWMA with a CAS
// loop — contended updates retry rather than lock.
func (r *Router) observeLatency(d time.Duration) {
	ns := float64(d.Nanoseconds())
	for {
		old := r.ewmaNs.Load()
		cur := math.Float64frombits(old)
		var next float64
		if old == 0 {
			next = ns
		} else {
			next = cur + ewmaAlpha*(ns-cur)
		}
		if r.ewmaNs.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// hedgeBudget derives how long to wait before hedging: the EWMA scaled
// by the multiplier, floored at HedgeAfter (covering the cold start)
// and capped at half the attempt timeout (a hedge that cannot finish
// before the primary's timeout is pointless).
func (r *Router) hedgeBudget() time.Duration {
	b := r.cfg.HedgeAfter
	if bits := r.ewmaNs.Load(); bits != 0 {
		est := time.Duration(r.cfg.HedgeMultiplier * math.Float64frombits(bits))
		if est > b {
			b = est
		}
	}
	if max := r.cfg.Timeout / 2; b > max {
		b = max
	}
	return b
}
