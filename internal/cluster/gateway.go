package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ring"
	"repro/internal/serve"
	"repro/internal/words"

	repro "repro"
)

// GatewayConfig tunes a Gateway. Router is required.
type GatewayConfig struct {
	Router *Router
	// MaxRingSize rejects larger rings with 400 at the edge, before any
	// replica sees them (default 4096).
	MaxRingSize int
	// Metrics receives request accounting; a fresh registry is built
	// when nil. The same registry should back the wire frontend so
	// /metrics tells one story for both protocols.
	Metrics *serve.Metrics
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// Gateway is the cluster's front door: one process that speaks the same
// two protocols as a single ringd — the HTTP/JSON API and RGV1 — and
// answers by routing each election to the replica that owns its
// canonical class. Validation happens at the edge (bad requests never
// cost a replica round trip), classification is answered locally (it is
// pure ring arithmetic), and /metrics merges the request registry with
// the router's per-replica ledger.
//
// Gateway implements serve.WireBackend, so a serve.WireFrontend can
// terminate wire traffic onto it directly.
type Gateway struct {
	cfg      GatewayConfig
	router   *Router
	metrics  *serve.Metrics
	draining atomic.Bool
}

// NewGateway builds a Gateway over cfg.Router.
func NewGateway(cfg GatewayConfig) *Gateway {
	if cfg.MaxRingSize <= 0 {
		cfg.MaxRingSize = 4096
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	g := &Gateway{cfg: cfg, router: cfg.Router}
	g.metrics = cfg.Metrics
	if g.metrics == nil {
		g.metrics = serve.NewMetrics(nil)
	}
	return g
}

// Metrics exposes the gateway's request registry (shared with the wire
// frontend when the caller wired it that way).
func (g *Gateway) Metrics() *serve.Metrics { return g.metrics }

// BeginDrain flips /readyz to 503 and fails new elections with a typed
// draining error, without touching requests already in flight — the
// same contract as serve.Server.BeginDrain, one level up.
func (g *Gateway) BeginDrain() { g.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Elect implements serve.WireBackend: wire traffic terminated by a
// WireFrontend lands here and is routed like HTTP traffic.
func (g *Gateway) Elect(ctx context.Context, labels []ring.Label, alg repro.Algorithm, k int) (serve.WireOutcome, error) {
	if g.draining.Load() {
		return serve.WireOutcome{}, &serve.WireError{Status: 503, Msg: "gateway shutting down"}
	}
	return g.router.Elect(ctx, labels, alg, k)
}

// Handler returns the gateway's HTTP API — the same five routes as a
// single ringd, so clients and load balancers cannot tell the
// difference:
//
//	POST /v1/elect    → routed to the owning replica
//	POST /v1/classify → answered locally
//	GET  /healthz     → gateway process liveness
//	GET  /readyz      → 503 once draining
//	GET  /metrics     → request registry + per-replica routing ledger
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/elect", g.instrument("/v1/elect", g.handleElect))
	mux.Handle("POST /v1/classify", g.instrument("/v1/classify", g.handleClassify))
	mux.Handle("GET /healthz", g.instrument("/healthz", g.handleHealthz))
	mux.Handle("GET /readyz", g.instrument("/readyz", g.handleReadyz))
	mux.Handle("GET /metrics", g.instrument("/metrics", g.handleMetrics))
	return mux
}

// statusRecorder mirrors serve's: capture the status for the registry.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (g *Gateway) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.metrics.IncInFlight()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			g.metrics.DecInFlight()
			g.metrics.ObserveRequest(endpoint, rec.status, time.Since(start))
		}()
		h(rec, r)
	})
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// labelSpec renders labels in the API's ring-spec form ("1 3 1 3 ...").
func labelSpec(labels []ring.Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(l.String())
	}
	return b.String()
}

func labelSpecRotated(labels []ring.Label, rot int) string {
	n := len(labels)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(labels[(rot+i)%n].String())
	}
	return b.String()
}

func (g *Gateway) handleElect(w http.ResponseWriter, r *http.Request) {
	var req serve.ElectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Alg == "" {
		req.Alg = "A"
	}
	if req.K == 0 {
		req.K = 2
	}
	if req.K < 1 || req.K > 1024 {
		writeError(w, http.StatusBadRequest, "k must be in [1, 1024], got %d", req.K)
		return
	}
	// The cluster path always computes on the replicas' deterministic
	// simulator; an explicit engine other than the default is a request
	// the gateway cannot honor and must not silently reinterpret.
	if req.Engine != "" && req.Engine != "sim" {
		writeError(w, http.StatusBadRequest, "cluster gateway serves engine \"sim\" only, got %q", req.Engine)
		return
	}
	alg, err := repro.ParseAlgorithm(req.Alg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rg, err := ring.Parse(req.Ring)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if rg.N() > g.cfg.MaxRingSize {
		writeError(w, http.StatusBadRequest, "ring has %d processes, limit is %d", rg.N(), g.cfg.MaxRingSize)
		return
	}
	// Full class validation at the edge: an unservable ring costs no
	// replica round trip and no routing-ledger noise.
	if _, err := repro.ProtocolFor(rg, alg, req.K); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	labels := rg.LabelsView()
	out, err := g.Elect(r.Context(), labels, alg, req.K)
	if err != nil {
		g.writeElectError(w, err)
		return
	}
	rot := words.LeastRotationIndex(labels)
	writeJSON(w, http.StatusOK, serve.ElectResponse{
		Ring:              labelSpec(labels),
		N:                 rg.N(),
		Alg:               alg.String(),
		K:                 req.K,
		Engine:            "sim",
		Leader:            out.Leader,
		LeaderLabel:       out.LeaderLabel.String(),
		Messages:          out.Messages,
		TimeUnits:         out.TimeUnits,
		PeakSpaceBits:     out.PeakSpaceBits,
		Cached:            out.Cached,
		Canonical:         labelSpecRotated(labels, rot),
		CanonicalRotation: rot,
	})
}

// writeElectError maps a routing failure onto HTTP: typed replica
// errors keep their status (with Retry-After on sheds), the gateway's
// own draining error is a 503, and transport-level failure to reach any
// replica is a 502 — the honest "the fleet is unreachable" answer.
func (g *Gateway) writeElectError(w http.ResponseWriter, err error) {
	var we *serve.WireError
	if errors.As(err, &we) {
		if we.Status == 429 && we.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(we.RetryAfter))
		}
		writeError(w, we.Status, "%s", we.Msg)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeError(w, http.StatusServiceUnavailable, "timed out: %v", err)
		return
	}
	writeError(w, http.StatusBadGateway, "no replica could answer: %v", err)
}

func (g *Gateway) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req serve.ClassifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rg, err := ring.Parse(req.Ring)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if rg.N() > g.cfg.MaxRingSize {
		writeError(w, http.StatusBadRequest, "ring has %d processes, limit is %d", rg.N(), g.cfg.MaxRingSize)
		return
	}
	labels := rg.Labels()
	rot := words.LeastRotationIndex(labels)
	tl, ok := rg.TrueLeader()
	if !ok {
		tl = -1
	}
	writeJSON(w, http.StatusOK, serve.ClassifyResponse{
		Ring:              labelSpec(labels),
		N:                 rg.N(),
		Asymmetric:        rg.IsAsymmetric(),
		MaxMultiplicity:   rg.MaxMultiplicity(),
		UniqueLabel:       rg.HasUniqueLabel(),
		LabelBits:         rg.LabelBits(),
		Electable:         ok,
		TrueLeader:        tl,
		Canonical:         labelSpec(rg.Rotate(rot).Labels()),
		CanonicalRotation: rot,
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// handleMetrics merges the request registry with the routing ledger:
// per-replica routed/hedged/failed counters, hedge wins, an up gauge,
// and attempt-latency quantiles, all labeled by replica name.
func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.metrics.WritePrometheus(w)
	fmt.Fprintf(w, "# HELP ringgw_replica_up 1 while the health prober considers the replica live.\n")
	fmt.Fprintf(w, "# TYPE ringgw_replica_up gauge\n")
	stats := g.router.Stats()
	for _, s := range stats {
		up := 0
		if s.Up {
			up = 1
		}
		fmt.Fprintf(w, "ringgw_replica_up{replica=%q} %d\n", s.Name, up)
	}
	fmt.Fprintf(w, "# HELP ringgw_replica_routed_total Election attempts launched at the replica.\n")
	fmt.Fprintf(w, "# TYPE ringgw_replica_routed_total counter\n")
	for _, s := range stats {
		fmt.Fprintf(w, "ringgw_replica_routed_total{replica=%q} %d\n", s.Name, s.Routed)
	}
	fmt.Fprintf(w, "# HELP ringgw_replica_hedged_total Attempts launched as hedges.\n")
	fmt.Fprintf(w, "# TYPE ringgw_replica_hedged_total counter\n")
	for _, s := range stats {
		fmt.Fprintf(w, "ringgw_replica_hedged_total{replica=%q} %d\n", s.Name, s.Hedged)
	}
	fmt.Fprintf(w, "# HELP ringgw_replica_hedge_wins_total Hedge attempts whose answer was used.\n")
	fmt.Fprintf(w, "# TYPE ringgw_replica_hedge_wins_total counter\n")
	for _, s := range stats {
		fmt.Fprintf(w, "ringgw_replica_hedge_wins_total{replica=%q} %d\n", s.Name, s.HedgeWins)
	}
	fmt.Fprintf(w, "# HELP ringgw_replica_failed_total Attempts that errored.\n")
	fmt.Fprintf(w, "# TYPE ringgw_replica_failed_total counter\n")
	for _, s := range stats {
		fmt.Fprintf(w, "ringgw_replica_failed_total{replica=%q} %d\n", s.Name, s.Failed)
	}
	fmt.Fprintf(w, "# HELP ringgw_replica_latency_seconds Attempt latency quantiles.\n")
	fmt.Fprintf(w, "# TYPE ringgw_replica_latency_seconds gauge\n")
	for _, s := range stats {
		fmt.Fprintf(w, "ringgw_replica_latency_seconds{replica=%q,quantile=\"0.5\"} %g\n", s.Name, s.P50)
		fmt.Fprintf(w, "ringgw_replica_latency_seconds{replica=%q,quantile=\"0.99\"} %g\n", s.Name, s.P99)
	}
}
