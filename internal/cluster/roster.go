// Package cluster scales the election-serving subsystem horizontally: a
// roster of ringd replicas, health-probed liveness with hysteresis,
// rendezvous (highest-random-weight) routing over the canonical election
// key, pooled RGV1 connections per replica, and latency-budget request
// hedging — composed into a Gateway that terminates both the HTTP/JSON
// API and the binary wire protocol and proxies to whichever replica owns
// each canonical ring class.
//
// The routing invariant is the paper's rotation equivalence made
// operational: every rotation of a labeled ring canonicalizes to one
// byte key (serve.CanonicalKey), rendezvous hashing assigns that key to
// exactly one live replica, so each canonical class is cached on one
// machine and the fleet's aggregate cache is the sum of its parts rather
// than N copies of the same hot set. When a replica dies, only its own
// 1/N-th of the keyspace moves; the survivors' cache entries stay warm.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/secure"
)

// Replica is one ringd instance a gateway can route to: its stable name
// (the rendezvous identity — renaming a replica reassigns its keyspace),
// its RGV1 wire address, and the base URL of its HTTP API (used for
// health probes).
type Replica struct {
	Name     string `json:"name"`
	WireAddr string `json:"wire_addr"`
	BaseURL  string `json:"base_url"`
	// PubKey is the replica's base64 ringsec public key. When set (and
	// the gateway holds an identity), pooled wire connections to this
	// replica run the authenticated encrypted transport.
	PubKey string `json:"pub_key,omitempty"`
}

// Roster is an ordered replica set. Order is presentation only — routing
// depends on names, not positions — but indexes into a Roster are the
// working currency of the health monitor, pool, and router.
type Roster []Replica

// Validate rejects rosters the router cannot serve from: empty, missing
// fields, or duplicate names (two replicas with one name would collapse
// into one rendezvous identity and shadow each other).
func (r Roster) Validate() error {
	if len(r) == 0 {
		return fmt.Errorf("cluster: empty roster")
	}
	seen := make(map[string]struct{}, len(r))
	for i, rep := range r {
		if rep.Name == "" {
			return fmt.Errorf("cluster: replica %d has no name", i)
		}
		if rep.WireAddr == "" {
			return fmt.Errorf("cluster: replica %q has no wire address", rep.Name)
		}
		if rep.BaseURL == "" {
			return fmt.Errorf("cluster: replica %q has no base URL", rep.Name)
		}
		if _, dup := seen[rep.Name]; dup {
			return fmt.Errorf("cluster: duplicate replica name %q", rep.Name)
		}
		if rep.PubKey != "" {
			if _, err := secure.ParsePublicKey(rep.PubKey); err != nil {
				return fmt.Errorf("cluster: replica %q: %v", rep.Name, err)
			}
		}
		seen[rep.Name] = struct{}{}
	}
	return nil
}

// Names returns the replica names in roster order.
func (r Roster) Names() []string {
	names := make([]string, len(r))
	for i, rep := range r {
		names[i] = rep.Name
	}
	return names
}

// ParseRoster parses the flag form: comma-separated
// "name=wireAddr=baseURL" triples, e.g.
//
//	r0=127.0.0.1:7001=http://127.0.0.1:8001,r1=127.0.0.1:7002=http://127.0.0.1:8002
func ParseRoster(spec string) (Roster, error) {
	var r Roster
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, "=", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("cluster: replica spec %q: want name=wireAddr=baseURL", part)
		}
		r = append(r, Replica{Name: fields[0], WireAddr: fields[1], BaseURL: fields[2]})
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// LoadRoster reads a JSON roster file: an array of {name, wire_addr,
// base_url} objects.
func LoadRoster(path string) (Roster, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read roster: %w", err)
	}
	var r Roster
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("cluster: parse roster %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}
