package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"

	"repro/internal/secure"
	"repro/internal/serve"
)

// LocalFleet runs N complete ringd replicas — serve.Server, RGV1 wire
// listener, HTTP listener — inside one process, on loopback ports. It
// exists for the cluster's own tests, benchmarks, and ringload's
// -cluster mode: everything above the sockets is exactly the production
// stack, so a router pointed at a LocalFleet exercises the real wire
// protocol, the real health endpoints, and the real drain behavior
// without spawning processes. Kill and Restart tear one replica down
// abruptly and bring it back on the same addresses, for
// failover-under-churn tests.
type LocalFleet struct {
	Roster Roster
	cfg    serve.Config
	keys   []*secure.PrivateKey // per-replica identities; nil for a plaintext fleet

	mu       sync.Mutex
	replicas []*localReplica
}

type localReplica struct {
	server *serve.Server
	ws     *serve.WireServer
	hs     *http.Server
	wireLn net.Listener
	httpLn net.Listener
	done   chan struct{} // closed when both serve loops have exited
}

// StartLocalFleet boots n replicas with the given per-replica serving
// config (zero value defaulted by serve.New). Replica names are
// "r0".."r<n-1>".
func StartLocalFleet(n int, cfg serve.Config) (*LocalFleet, error) {
	return startFleet(n, cfg, false)
}

// StartSecureLocalFleet is StartLocalFleet with a fresh ringsec keypair
// per replica: each wire port requires the handshake, and the roster
// entries carry the matching pub_key so a pool with an identity dials
// every replica encrypted.
func StartSecureLocalFleet(n int, cfg serve.Config) (*LocalFleet, error) {
	return startFleet(n, cfg, true)
}

func startFleet(n int, cfg serve.Config, sec bool) (*LocalFleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: fleet size %d", n)
	}
	f := &LocalFleet{cfg: cfg, replicas: make([]*localReplica, n)}
	if sec {
		f.keys = make([]*secure.PrivateKey, n)
	}
	for i := 0; i < n; i++ {
		wireLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Stop()
			return nil, err
		}
		httpLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			wireLn.Close()
			f.Stop()
			return nil, err
		}
		r := Replica{
			Name:     fmt.Sprintf("r%d", i),
			WireAddr: wireLn.Addr().String(),
			BaseURL:  "http://" + httpLn.Addr().String(),
		}
		if sec {
			key, err := secure.GenerateKey()
			if err != nil {
				wireLn.Close()
				httpLn.Close()
				f.Stop()
				return nil, err
			}
			f.keys[i] = key
			r.PubKey = key.Public().String()
		}
		f.Roster = append(f.Roster, r)
		f.replicas[i] = startLocalReplica(cfg, f.key(i), wireLn, httpLn)
	}
	return f, nil
}

// key returns replica i's identity, nil on a plaintext fleet.
func (f *LocalFleet) key(i int) *secure.PrivateKey {
	if f.keys == nil {
		return nil
	}
	return f.keys[i]
}

func startLocalReplica(cfg serve.Config, key *secure.PrivateKey, wireLn, httpLn net.Listener) *localReplica {
	s := serve.New(cfg)
	var opts serve.WireServerOptions
	if key != nil {
		opts.Secure = &secure.ServerConfig{Config: secure.Config{Identity: key}}
	}
	ws := serve.NewWireServerWith(s, opts)
	r := &localReplica{
		server: s,
		ws:     ws,
		hs:     &http.Server{Handler: s.Handler()},
		wireLn: wireLn,
		httpLn: httpLn,
		done:   make(chan struct{}),
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ws.Serve(wireLn) }()
	go func() { defer wg.Done(); r.hs.Serve(httpLn) }()
	go func() { wg.Wait(); close(r.done) }()
	return r
}

// stop tears one replica down. Abrupt (expired context) models a crash:
// connections reset, nothing drains. Graceful models a rolling restart.
func (r *localReplica) stop(graceful bool) {
	ctx := context.Background()
	if graceful {
		r.server.BeginDrain()
	} else {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		cancel() // already expired: hard teardown
	}
	r.hs.Shutdown(ctx)
	if !graceful {
		r.hs.Close()
	}
	r.ws.Shutdown(ctx)
	r.server.Close()
	<-r.done
}

// Kill crashes replica i: listeners close, live connections reset, no
// drain. The addresses stay reserved in the roster for Restart.
func (f *LocalFleet) Kill(i int) {
	f.mu.Lock()
	r := f.replicas[i]
	f.replicas[i] = nil
	f.mu.Unlock()
	if r != nil {
		r.stop(false)
	}
}

// Restart brings a killed replica back on its original addresses with a
// cold cache — exactly what a supervisor restart does to a real ringd.
func (f *LocalFleet) Restart(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.replicas[i] != nil {
		return fmt.Errorf("cluster: replica %d is running", i)
	}
	wireLn, err := net.Listen("tcp", f.Roster[i].WireAddr)
	if err != nil {
		return fmt.Errorf("cluster: rebind wire %s: %w", f.Roster[i].WireAddr, err)
	}
	httpAddr := f.Roster[i].BaseURL[len("http://"):]
	httpLn, err := net.Listen("tcp", httpAddr)
	if err != nil {
		wireLn.Close()
		return fmt.Errorf("cluster: rebind http %s: %w", httpAddr, err)
	}
	f.replicas[i] = startLocalReplica(f.cfg, f.key(i), wireLn, httpLn)
	return nil
}

// Server returns replica i's serve.Server (nil while killed), for tests
// asserting on cache metrics.
func (f *LocalFleet) Server(i int) *serve.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.replicas[i] == nil {
		return nil
	}
	return f.replicas[i].server
}

// Stop gracefully drains every running replica.
func (f *LocalFleet) Stop() {
	f.mu.Lock()
	replicas := f.replicas
	f.replicas = make([]*localReplica, len(replicas))
	f.mu.Unlock()
	var wg sync.WaitGroup
	for _, r := range replicas {
		if r == nil {
			continue
		}
		wg.Add(1)
		go func(r *localReplica) { defer wg.Done(); r.stop(true) }(r)
	}
	wg.Wait()
}
