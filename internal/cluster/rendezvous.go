package cluster

// Rendezvous implements highest-random-weight (rendezvous) hashing over
// replica names: every key gets an independent pseudo-random score per
// replica, and the key's owner is the highest-scoring live replica.
// The properties the cluster design rests on:
//
//   - Determinism: every gateway with the same roster computes the same
//     owner for a key, with no coordination — so all gateways route one
//     canonical ring class to one replica's cache.
//   - Minimal disruption: when a replica dies, exactly the keys it owned
//     move (each to its second-ranked replica); the other replicas' key
//     sets — and therefore their warm caches — are untouched. Restoring
//     the replica moves exactly those keys back.
//   - No ring topology or virtual nodes to configure: the score function
//     is stateless in the key.
//
// Scores are FNV-1a over the key bytes, seeded per replica by hashing
// the replica name first, then finished with a splitmix64-style
// avalanche so single-bit key differences decorrelate the per-replica
// rankings. (FNV alone is too linear: without the finisher, nearby keys
// produce correlated score *orderings*, which skews ownership.)
type Rendezvous struct {
	seeds []uint64
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// NewRendezvous builds the score table for a replica name set. The
// names, not their order, determine scores.
func NewRendezvous(names []string) *Rendezvous {
	rv := &Rendezvous{seeds: make([]uint64, len(names))}
	for i, name := range names {
		h := fnvOffset
		for j := 0; j < len(name); j++ {
			h ^= uint64(name[j])
			h *= fnvPrime
		}
		rv.seeds[i] = h
	}
	return rv
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Score is replica i's weight for key. Exported for tests; routing goes
// through Rank and Owner.
func (rv *Rendezvous) Score(i int, key []byte) uint64 {
	h := rv.seeds[i]
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return mix64(h)
}

// Rank writes the replica indexes in descending score order for key into
// dst (grown as needed from length zero) and returns it. Ties — a
// 2^-64 event — break toward the lower index, keeping the order total
// and identical on every gateway. The sort is insertion sort: rosters
// are small (a handful of replicas), and dst is caller-recycled so the
// hot path allocates nothing.
func (rv *Rendezvous) Rank(key []byte, dst []int) []int {
	dst = dst[:0]
	n := len(rv.seeds)
	var sbuf [16]uint64 // stack space for the common small-roster case
	var scores []uint64
	if n <= len(sbuf) {
		scores = sbuf[:n]
	} else {
		scores = make([]uint64, n)
	}
	for i := 0; i < n; i++ {
		scores[i] = rv.Score(i, key)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, i)
		for j := len(dst) - 1; j > 0; j-- {
			a, b := dst[j-1], dst[j]
			if scores[a] > scores[b] || (scores[a] == scores[b] && a < b) {
				break
			}
			dst[j-1], dst[j] = b, a
		}
	}
	return dst
}

// Owner returns the highest-ranked replica for key that alive reports
// true, or -1 when none is. A nil alive means every replica counts.
func (rv *Rendezvous) Owner(key []byte, alive func(int) bool) int {
	best, bestScore := -1, uint64(0)
	for i := range rv.seeds {
		if alive != nil && !alive(i) {
			continue
		}
		s := rv.Score(i, key)
		if best == -1 || s > bestScore || (s == bestScore && i < best) {
			best, bestScore = i, s
		}
	}
	return best
}
