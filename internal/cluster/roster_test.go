package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseRoster(t *testing.T) {
	r, err := ParseRoster("r0=127.0.0.1:7001=http://127.0.0.1:8001, r1=127.0.0.1:7002=http://127.0.0.1:8002")
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0].Name != "r0" || r[1].WireAddr != "127.0.0.1:7002" || r[1].BaseURL != "http://127.0.0.1:8002" {
		t.Errorf("parsed %+v", r)
	}
	for _, bad := range []string{
		"",                            // empty roster
		"r0=127.0.0.1:7001",           // missing base URL
		"r0=a=http://b,r0=c=http://d", // duplicate name
		"=a=http://b",                 // empty name
	} {
		if _, err := ParseRoster(bad); err == nil {
			t.Errorf("ParseRoster(%q) accepted", bad)
		}
	}
}

func TestLoadRoster(t *testing.T) {
	path := filepath.Join(t.TempDir(), "roster.json")
	data := `[{"name":"a","wire_addr":"127.0.0.1:1","base_url":"http://127.0.0.1:2"},
	          {"name":"b","wire_addr":"127.0.0.1:3","base_url":"http://127.0.0.1:4"}]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRoster(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[1].Name != "b" || r[1].WireAddr != "127.0.0.1:3" {
		t.Errorf("loaded %+v", r)
	}
	if _, err := LoadRoster(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
