package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ring"
	"repro/internal/serve"

	repro "repro"
)

func testNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%d", i)
	}
	return names
}

// testKeys derives ≥count distinct canonical election keys from random
// asymmetric rings — the real key distribution the router hashes, not
// synthetic byte strings.
func testKeys(t testing.TB, count int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(20260808))
	keys := make([][]byte, 0, count)
	seen := make(map[string]struct{}, count)
	for len(keys) < count {
		n := 4 + rng.Intn(29)
		r, err := ring.RandomAsymmetric(rng, n, 3, 8)
		if err != nil {
			continue
		}
		key, _ := serve.CanonicalKey(r.LabelsView(), repro.AlgorithmB, 3)
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		keys = append(keys, key)
	}
	return keys
}

// TestRendezvousDeterministicAndStable pins that ownership is a pure
// function of (names, key): two independently built Rendezvous agree on
// every owner and every full ranking — the property that lets any number
// of gateways route without coordinating.
func TestRendezvousDeterministicAndStable(t *testing.T) {
	names := testNames(5)
	a, b := NewRendezvous(names), NewRendezvous(names)
	var rankA, rankB []int
	for _, key := range testKeys(t, 500) {
		if oa, ob := a.Owner(key, nil), b.Owner(key, nil); oa != ob {
			t.Fatalf("key % x: owners %d vs %d from identical rosters", key, oa, ob)
		}
		rankA, rankB = a.Rank(key, rankA), b.Rank(key, rankB)
		for j := range rankA {
			if rankA[j] != rankB[j] {
				t.Fatalf("key % x: rankings diverge at position %d", key, j)
			}
		}
		if rankA[0] != a.Owner(key, nil) {
			t.Fatalf("key % x: Rank[0]=%d but Owner=%d", key, rankA[0], a.Owner(key, nil))
		}
	}
}

// TestRendezvousBalance checks no replica owns a grossly outsized share:
// over 10k real election keys and 4 replicas, every share must be within
// a factor of 1.35 of fair. (Rendezvous hashing balances to within
// sampling noise when the score function avalanches properly; a failure
// here means the mixing broke.)
func TestRendezvousBalance(t *testing.T) {
	const replicas, keys = 4, 10000
	rv := NewRendezvous(testNames(replicas))
	counts := make([]int, replicas)
	for _, key := range testKeys(t, keys) {
		counts[rv.Owner(key, nil)]++
	}
	fair := float64(keys) / replicas
	for i, c := range counts {
		if float64(c) > 1.35*fair || float64(c) < fair/1.35 {
			t.Errorf("replica %d owns %d of %d keys (fair share %.0f): %v", i, c, keys, fair, counts)
		}
	}
}

// TestRendezvousMinimalMovement is the property the cluster's cache
// economics rest on: killing one of N replicas moves exactly the keys it
// owned — about 1/N of the keyspace, and certainly no more than
// (1/N + ε) — and every surviving replica keeps every key it had.
// Restoring the replica moves exactly those keys back.
func TestRendezvousMinimalMovement(t *testing.T) {
	const replicas, keyCount = 4, 10000
	rv := NewRendezvous(testNames(replicas))
	keys := testKeys(t, keyCount)

	before := make([]int, keyCount)
	for i, key := range keys {
		before[i] = rv.Owner(key, nil)
	}
	const dead = 2
	alive := func(i int) bool { return i != dead }
	moved := 0
	for i, key := range keys {
		after := rv.Owner(key, alive)
		if after == dead {
			t.Fatalf("key % x still owned by the dead replica", key)
		}
		if before[i] == dead {
			moved++
			continue
		}
		if after != before[i] {
			t.Fatalf("key % x moved from healthy replica %d to %d when replica %d died",
				key, before[i], after, dead)
		}
	}
	// The dead replica's whole share moved — and nothing else did (the
	// loop above already proved the survivors' keys stayed). The share
	// itself must be about 1/N: at most (1/N + ε) with ε = 5 points.
	frac := float64(moved) / keyCount
	if max := 1.0/replicas + 0.05; frac > max {
		t.Errorf("%.1f%% of the keyspace moved on one death, want <= %.1f%%", 100*frac, 100*max)
	}
	if frac == 0 {
		t.Error("no keys moved: the dead replica owned nothing, which balance forbids")
	}

	// Recovery: the original assignment is restored exactly.
	for i, key := range keys {
		if got := rv.Owner(key, nil); got != before[i] {
			t.Fatalf("key % x owner %d after recovery, want %d", key, got, before[i])
		}
	}
}

// TestRendezvousRotationInvariantRouting glues the two layers together:
// every rotation of one ring produces one key and therefore one owner —
// the invariant that makes the fleet's caches partition by class.
func TestRendezvousRotationInvariantRouting(t *testing.T) {
	rv := NewRendezvous(testNames(3))
	base := ring.Figure1()
	key0, _ := serve.CanonicalKey(base.LabelsView(), repro.AlgorithmB, 3)
	want := rv.Owner(key0, nil)
	for d := 1; d < base.N(); d++ {
		key, _ := serve.CanonicalKey(base.Rotate(d).LabelsView(), repro.AlgorithmB, 3)
		if got := rv.Owner(key, nil); got != want {
			t.Fatalf("rotation %d routed to %d, rotation 0 to %d", d, got, want)
		}
	}
}
