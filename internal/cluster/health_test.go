package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestHealthHysteresis drives a replica through ready → not-ready →
// ready and checks both transition thresholds: down only after FailAfter
// consecutive failures, up again only after RecoverAfter consecutive
// successes, starting from the optimistic presumed-alive state.
func TestHealthHysteresis(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probed %s, want /readyz", r.URL.Path)
		}
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	roster := Roster{{Name: "r0", WireAddr: "unused:0", BaseURL: ts.URL}}
	h := StartHealth(roster, HealthConfig{Interval: 10 * time.Millisecond, FailAfter: 2, RecoverAfter: 3})
	defer h.Stop()

	if !h.Alive(0) {
		t.Fatal("replica must start presumed alive")
	}
	waitFor(t, 2*time.Second, func() bool { return h.Alive(0) }, "healthy replica marked down")

	ready.Store(false)
	waitFor(t, 2*time.Second, func() bool { return !h.Alive(0) }, "failing replica never marked down")

	ready.Store(true)
	waitFor(t, 2*time.Second, func() bool { return h.Alive(0) }, "recovered replica never marked up")
	if up := h.Up(); len(up) != 1 || !up[0] {
		t.Errorf("Up() = %v", up)
	}
}

// TestHealthUnreachable probes an address nothing listens on: the
// replica must go down within a few intervals (connection errors count
// as failed probes, subject to the same threshold).
func TestHealthUnreachable(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // bound then released: refused connections
	h := StartHealth(Roster{{Name: "r0", WireAddr: "unused:0", BaseURL: url}},
		HealthConfig{Interval: 10 * time.Millisecond, FailAfter: 2})
	defer h.Stop()
	waitFor(t, 2*time.Second, func() bool { return !h.Alive(0) }, "unreachable replica never marked down")
}
