package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netring"
	"repro/internal/secure"
	"repro/internal/serve"
)

// pool holds one lazily dialed serve.WireClient per replica. The client
// itself repairs broken pooled connections (redialing under its
// netring.Backoff), so once a replica's client exists it stays in the
// slot for the pool's lifetime; only the initial dial — a replica that
// was down the first time traffic ranked to it — is retried here, on
// the next request that needs it.
type pool struct {
	roster   Roster
	conns    int
	timeout  time.Duration
	backoff  netring.Backoff
	identity *secure.PrivateKey // gateway's client key for keyed replicas

	mu      sync.Mutex
	clients []*serve.WireClient
	closed  bool
}

func newPool(roster Roster, conns int, timeout time.Duration, b netring.Backoff, identity *secure.PrivateKey) *pool {
	if conns <= 0 {
		conns = 2
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &pool{
		roster:   roster,
		conns:    conns,
		timeout:  timeout,
		backoff:  b,
		identity: identity,
		clients:  make([]*serve.WireClient, len(roster)),
	}
}

// client returns replica i's wire client, dialing it on first use. The
// dial happens outside the pool lock so a slow dial to one replica never
// blocks requests to the others; if two requests race the first dial,
// the loser's client is closed and the winner's kept.
func (p *pool) client(i int) (*serve.WireClient, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, serve.ErrWireClientClosed
	}
	if c := p.clients[i]; c != nil {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	var sec *secure.ClientConfig
	if pk := p.roster[i].PubKey; pk != "" {
		if p.identity == nil {
			return nil, fmt.Errorf("cluster: replica %q has a public key but the gateway has no identity (set -keyfile)", p.roster[i].Name)
		}
		serverKey, err := secure.ParsePublicKey(pk)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %q: %w", p.roster[i].Name, err)
		}
		sec = &secure.ClientConfig{Config: secure.Config{Identity: p.identity}, ServerKey: serverKey}
	}
	c, err := serve.DialWireSecure(p.roster[i].WireAddr, p.conns, p.timeout, p.backoff, sec)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, serve.ErrWireClientClosed
	}
	if existing := p.clients[i]; existing != nil {
		p.mu.Unlock()
		c.Close()
		return existing, nil
	}
	p.clients[i] = c
	p.mu.Unlock()
	return c, nil
}

// close tears down every dialed client. In-flight calls fail with
// serve.ErrWireClientClosed.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	clients := p.clients
	p.clients = make([]*serve.WireClient, len(p.roster))
	p.mu.Unlock()
	for _, c := range clients {
		if c != nil {
			c.Close()
		}
	}
}
