package cluster

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HealthConfig tunes the liveness prober. The zero value is usable.
type HealthConfig struct {
	// Interval between probes of one replica (default 500ms).
	Interval time.Duration
	// Timeout bounds one probe; it must not exceed Interval or probes
	// would stack up (default: Interval).
	Timeout time.Duration
	// FailAfter is the consecutive-failure threshold before a replica is
	// marked down (default 2). One lost probe — a GC pause, a dropped
	// SYN — must not dump a replica's whole keyspace onto its neighbor.
	FailAfter int
	// RecoverAfter is the consecutive-success threshold before a down
	// replica is marked up again (default 2): the recovery half of the
	// hysteresis, so a flapping replica does not slosh its keyspace back
	// and forth on every heartbeat.
	RecoverAfter int
	// Logf receives up/down transition lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 || c.Timeout > c.Interval {
		c.Timeout = c.Interval
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Health probes every replica's GET /readyz on a fixed interval — one
// goroutine per replica, so one dead replica's probe timeouts never
// delay the others' — and maintains a lock-free liveness view with
// failure/recovery hysteresis. Replicas start presumed-alive: a gateway
// that boots faster than its first probe round should route optimistically
// (and hedge) rather than refuse everything.
//
// A draining replica answers /readyz with 503 by design (serve's
// BeginDrain contract), so the prober marks it down and the router
// steers new traffic away while its in-flight work finishes — the
// cluster-level half of graceful shutdown.
type Health struct {
	roster Roster
	cfg    HealthConfig
	client *http.Client
	up     []atomic.Bool
	stop   chan struct{}
	wg     sync.WaitGroup
}

// StartHealth launches the prober for roster.
func StartHealth(roster Roster, cfg HealthConfig) *Health {
	cfg = cfg.withDefaults()
	h := &Health{
		roster: roster,
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		up:     make([]atomic.Bool, len(roster)),
		stop:   make(chan struct{}),
	}
	for i := range h.up {
		h.up[i].Store(true)
	}
	for i := range roster {
		h.wg.Add(1)
		go h.probeLoop(i)
	}
	return h
}

// Alive reports the current liveness view of replica i.
func (h *Health) Alive(i int) bool { return h.up[i].Load() }

// Up snapshots the liveness view across the roster.
func (h *Health) Up() []bool {
	out := make([]bool, len(h.up))
	for i := range h.up {
		out[i] = h.up[i].Load()
	}
	return out
}

// Stop halts all probing. The liveness view freezes at its last state.
func (h *Health) Stop() {
	close(h.stop)
	h.wg.Wait()
}

func (h *Health) probeLoop(i int) {
	defer h.wg.Done()
	url := h.roster[i].BaseURL + "/readyz"
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	fails, oks := 0, 0
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
		}
		if h.probe(url) {
			fails = 0
			oks++
			if !h.up[i].Load() && oks >= h.cfg.RecoverAfter {
				h.up[i].Store(true)
				h.cfg.Logf("cluster: replica %s up after %d healthy probes", h.roster[i].Name, oks)
			}
		} else {
			oks = 0
			fails++
			if h.up[i].Load() && fails >= h.cfg.FailAfter {
				h.up[i].Store(false)
				h.cfg.Logf("cluster: replica %s down after %d failed probes", h.roster[i].Name, fails)
			}
		}
	}
}

func (h *Health) probe(url string) bool {
	resp, err := h.client.Get(url)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
