package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/secure"
	"repro/internal/serve"

	repro "repro"
)

// fastBackoff keeps pooled-client redials snappy in tests.
var fastBackoff = netring.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Attempts: 50}

func newTestRouter(t *testing.T, f *LocalFleet, h *Health) *Router {
	t.Helper()
	r, err := NewRouter(RouterConfig{
		Roster:  f.Roster,
		Health:  h,
		Timeout: 5 * time.Second,
		Backoff: fastBackoff,
		// A cold-miss election can exceed the default hedge budget, and a
		// hedge would warm a second replica's cache — these tests assert
		// exact per-replica traffic, so keep hedging out of the way.
		HedgeAfter: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// ringOwnedBy searches random asymmetric rings for one whose canonical
// class the router currently assigns to replica want.
func ringOwnedBy(t *testing.T, r *Router, want int) *ring.Ring {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for tries := 0; tries < 10000; tries++ {
		rg, err := ring.RandomAsymmetric(rng, 6+rng.Intn(10), 3, 6)
		if err != nil {
			continue
		}
		if r.Owner(rg.LabelsView(), repro.AlgorithmB, 3) == want {
			return rg
		}
	}
	t.Fatal("no ring found for the target owner")
	return nil
}

// TestRouterCacheAffinity pins the tentpole's economic claim: the
// router sends every rotation of a ring to one replica, so the class is
// computed once fleet-wide and every later request — rotated or not —
// is that replica's cache hit. The other replicas never see the class.
func TestRouterCacheAffinity(t *testing.T) {
	f, err := StartLocalFleet(3, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	r := newTestRouter(t, f, nil)

	base := ringOwnedBy(t, r, 1)
	owner := 1
	var first serve.WireOutcome
	for d := 0; d < base.N(); d++ {
		out, err := r.Elect(context.Background(), base.Rotate(d).LabelsView(), repro.AlgorithmB, 3)
		if err != nil {
			t.Fatalf("rotation %d: %v", d, err)
		}
		if d == 0 {
			first = out
			if out.Cached {
				t.Error("first request of a class reported cached")
			}
			continue
		}
		if !out.Cached {
			t.Errorf("rotation %d missed the cache", d)
		}
		// Map both leaders into canonical frame to compare across rotations.
		want := base.Rotate(d).Labels()[out.Leader]
		if want != first.LeaderLabel || out.LeaderLabel != first.LeaderLabel {
			t.Errorf("rotation %d: leader label %v, want %v", d, out.LeaderLabel, first.LeaderLabel)
		}
	}
	for i := 0; i < 3; i++ {
		snap := f.Server(i).Metrics().Snapshot()
		if i == owner {
			if snap.Misses != 1 || snap.Hits != int64(base.N()-1) {
				t.Errorf("owner: %d misses / %d hits, want 1 / %d", snap.Misses, snap.Hits, base.N()-1)
			}
		} else if snap.Misses+snap.Hits != 0 {
			t.Errorf("replica %d saw %d requests for a class it does not own", i, snap.Misses+snap.Hits)
		}
	}
}

// TestRouterAgreesWithEngine routes a batch of random rings through a
// 4-replica fleet and crosschecks every answer against a direct run of
// the deterministic engine — the cluster-level analogue of serve's
// crosscheck, with zero tolerance.
func TestRouterAgreesWithEngine(t *testing.T) {
	f, err := StartLocalFleet(4, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	r := newTestRouter(t, f, nil)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		rg, err := ring.RandomAsymmetric(rng, 4+rng.Intn(20), 3, 6)
		if err != nil {
			continue
		}
		out, err := r.Elect(context.Background(), rg.LabelsView(), repro.AlgorithmB, 3)
		if err != nil {
			t.Fatalf("ring %d: %v", i, err)
		}
		direct, err := repro.Elect(rg, repro.AlgorithmB, 3)
		if err != nil {
			t.Fatalf("direct elect %d: %v", i, err)
		}
		if out.Leader != direct.Leader || out.LeaderLabel != direct.LeaderLabel || out.Messages != direct.Messages {
			t.Fatalf("ring %d %v: routed (%d,%v,%d) != direct (%d,%v,%d)", i, rg,
				out.Leader, out.LeaderLabel, out.Messages,
				direct.Leader, direct.LeaderLabel, direct.Messages)
		}
	}
}

// TestRouterFailsOverOnCrash kills the replica that owns a class and
// checks the next request still succeeds — transport failure to the
// owner fails over to the next-ranked replica immediately, with no
// health prober required — and that after a Restart the class moves
// home again.
func TestRouterFailsOverOnCrash(t *testing.T) {
	f, err := StartLocalFleet(3, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	r := newTestRouter(t, f, nil)

	const victim = 2
	rg := ringOwnedBy(t, r, victim)
	labels := rg.LabelsView()
	if _, err := r.Elect(context.Background(), labels, repro.AlgorithmB, 3); err != nil {
		t.Fatalf("before crash: %v", err)
	}
	f.Kill(victim)
	out, err := r.Elect(context.Background(), labels, repro.AlgorithmB, 3)
	if err != nil {
		t.Fatalf("after crash: %v", err)
	}
	if out.Cached {
		t.Error("failover answer claimed cached: the fallback replica had a cold cache")
	}
	if fails := r.Stats()[victim].Failed; fails == 0 {
		t.Error("no failed attempt recorded against the crashed owner")
	}

	if err := f.Restart(victim); err != nil {
		t.Fatal(err)
	}
	// The pooled client redials the restarted replica; the class is home
	// again (cold cache, so this one is a miss served by the owner).
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, err = r.Elect(context.Background(), labels, repro.AlgorithmB, 3)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after restart: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap := f.Server(victim).Metrics().Snapshot()
	if snap.Misses+snap.Hits == 0 {
		t.Error("restarted owner saw no traffic for its class")
	}
}

// TestRouterHealthSteersAroundDown marks the owner down via the health
// view and checks requests go straight to the second-ranked replica —
// no failed attempt against the downed owner at all.
func TestRouterHealthSteersAroundDown(t *testing.T) {
	f, err := StartLocalFleet(3, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	h := StartHealth(f.Roster, HealthConfig{Interval: 10 * time.Millisecond, FailAfter: 2, RecoverAfter: 1})
	defer h.Stop()
	r := newTestRouter(t, f, h)

	const victim = 0
	rg := ringOwnedBy(t, r, victim)
	f.Kill(victim)
	waitFor(t, 5*time.Second, func() bool { return !h.Alive(victim) }, "prober never marked the killed replica down")

	before := r.Stats()[victim].Routed
	if _, err := r.Elect(context.Background(), rg.LabelsView(), repro.AlgorithmB, 3); err != nil {
		t.Fatalf("elect with owner down: %v", err)
	}
	if after := r.Stats()[victim].Routed; after != before {
		t.Errorf("router sent %d attempts to a replica it knew was down", after-before)
	}
}

// blackHole accepts wire connections, swallows the handshake and all
// frames, and never answers — the shape of a stuck replica (live TCP,
// dead service) that only hedging can route around.
func blackHole(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(io.Discard, c) }() // read forever, answer never
		}
	}()
	return ln.Addr().String()
}

// TestRouterHedgesStuckReplica points a class's owner at a black hole:
// the primary attempt hangs, the hedge fires after the budget, and the
// second-ranked (real) replica answers. The ledger must show the hedge
// and its win.
func TestRouterHedgesStuckReplica(t *testing.T) {
	f, err := StartLocalFleet(1, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	roster := Roster{
		{Name: "stuck", WireAddr: blackHole(t), BaseURL: "http://127.0.0.1:0"},
		{Name: "live", WireAddr: f.Roster[0].WireAddr, BaseURL: f.Roster[0].BaseURL},
	}
	r, err := NewRouter(RouterConfig{
		Roster:     roster,
		Timeout:    10 * time.Second, // primary would hang this long without the hedge
		Backoff:    fastBackoff,
		HedgeAfter: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Find a ring owned by the black hole.
	rng := rand.New(rand.NewSource(5))
	var rg *ring.Ring
	for {
		cand, err := ring.RandomAsymmetric(rng, 8, 3, 6)
		if err != nil {
			continue
		}
		if r.Owner(cand.LabelsView(), repro.AlgorithmB, 3) == 0 {
			rg = cand
			break
		}
	}

	start := time.Now()
	out, err := r.Elect(context.Background(), rg.LabelsView(), repro.AlgorithmB, 3)
	if err != nil {
		t.Fatalf("hedged elect: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedge took %v: the primary's hang leaked into the request", elapsed)
	}
	direct, err := repro.Elect(rg, repro.AlgorithmB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Leader != direct.Leader {
		t.Errorf("hedged answer leader %d, want %d", out.Leader, direct.Leader)
	}
	stats := r.Stats()
	if stats[1].Hedged == 0 || stats[1].HedgeWins == 0 {
		t.Errorf("ledger shows no hedge win on the live replica: %+v", stats)
	}
}

// TestRouterRelaysTypedErrors pins the no-retry statuses: a 400 from
// the owner comes back as a 400 from the router, not a second replica's
// opinion. (The ring is valid at the gateway edge in production; here we
// send a symmetric ring straight through the router to force the
// replica-side 400.)
func TestRouterRelaysTypedErrors(t *testing.T) {
	f, err := StartLocalFleet(2, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	r := newTestRouter(t, f, nil)

	_, err = r.Elect(context.Background(), []ring.Label{1, 1, 1, 1}, repro.AlgorithmB, 3)
	var we *serve.WireError
	if !errors.As(err, &we) || we.Status != 400 {
		t.Fatalf("symmetric ring: got %v, want WireError 400", err)
	}
	total := r.Stats()[0].Routed + r.Stats()[1].Routed
	if total != 1 {
		t.Errorf("deterministic 400 consumed %d attempts, want 1", total)
	}
}

// startGateway wires fleet → health → router → gateway and returns the
// gateway plus an httptest server over its Handler.
func startGateway(t *testing.T, f *LocalFleet) (*Gateway, *httptest.Server) {
	t.Helper()
	h := StartHealth(f.Roster, HealthConfig{Interval: 20 * time.Millisecond, FailAfter: 2, RecoverAfter: 1})
	t.Cleanup(h.Stop)
	r, err := NewRouter(RouterConfig{Roster: f.Roster, Health: h, Backoff: fastBackoff})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	g := NewGateway(GatewayConfig{Router: r})
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestGatewaySymmetricRandomized is the cluster leg of the randomized
// engine's acceptance: a symmetric ring — a 400 at the edge under every
// deterministic algorithm — served through a 2-replica gateway under
// ItaiRodeh, with every rotation landing on the one owning replica as a
// rotation-canonical cache hit and electing the same canonical process.
func TestGatewaySymmetricRandomized(t *testing.T) {
	f, err := StartLocalFleet(2, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	_, ts := startGateway(t, f)

	base, err := ring.Parse("1 2 1 2 1 2")
	if err != nil {
		t.Fatal(err)
	}
	n := base.N()

	// Deterministic algorithms stay a 400 at the edge.
	resp, _ := postJSON(t, ts.URL+"/v1/elect", serve.ElectRequest{Ring: labelSpec(base.LabelsView()), Alg: "B", K: 3})
	if resp.StatusCode != 400 {
		t.Fatalf("alg B on symmetric ring: status %d, want 400", resp.StatusCode)
	}

	canonLeader := -1
	var firstMsgs int
	for d := 0; d < n; d++ {
		rot := base.Rotate(d)
		resp, body := postJSON(t, ts.URL+"/v1/elect", serve.ElectRequest{Ring: labelSpec(rot.LabelsView()), Alg: "IR", K: 3})
		if resp.StatusCode != 200 {
			t.Fatalf("rotation %d: status %d: %s", d, resp.StatusCode, body)
		}
		var er serve.ElectResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.LeaderLabel != rot.Label(er.Leader).String() {
			t.Errorf("rotation %d: leader_label %q at index %d, want %q", d, er.LeaderLabel, er.Leader, rot.Label(er.Leader))
		}
		canon := (er.Leader - er.CanonicalRotation + n) % n
		switch d {
		case 0:
			canonLeader, firstMsgs = canon, er.Messages
			if er.Cached {
				t.Error("first request of the class reported cached")
			}
		default:
			if !er.Cached {
				t.Errorf("rotation %d: not cached", d)
			}
			if canon != canonLeader || er.Messages != firstMsgs {
				t.Errorf("rotation %d: canonical leader %d / %d messages, want %d / %d",
					d, canon, er.Messages, canonLeader, firstMsgs)
			}
		}
	}

	// Rendezvous routing computed the class exactly once fleet-wide.
	var misses, hits int64
	for i := 0; i < 2; i++ {
		snap := f.Server(i).Metrics().Snapshot()
		misses += snap.Misses
		hits += snap.Hits
	}
	if misses != 1 || hits != int64(n-1) {
		t.Errorf("fleet saw %d misses / %d hits, want 1 / %d", misses, hits, n-1)
	}
}

// TestGatewayHTTP drives the full HTTP surface of a 3-replica cluster:
// elections with correct leaders across rotations, local classification,
// per-replica metrics, and the drain flip.
func TestGatewayHTTP(t *testing.T) {
	f, err := StartLocalFleet(3, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	g, ts := startGateway(t, f)

	base := ring.Figure1()
	want, _ := base.TrueLeader()
	for d := 0; d < base.N(); d++ {
		rot := base.Rotate(d)
		resp, body := postJSON(t, ts.URL+"/v1/elect", serve.ElectRequest{Ring: labelSpec(rot.LabelsView()), Alg: "B", K: 3})
		if resp.StatusCode != 200 {
			t.Fatalf("rotation %d: status %d: %s", d, resp.StatusCode, body)
		}
		var er serve.ElectResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if wantIdx := (want - d + base.N()) % base.N(); er.Leader != wantIdx {
			t.Errorf("rotation %d: leader %d, want %d", d, er.Leader, wantIdx)
		}
		if d > 0 && !er.Cached {
			t.Errorf("rotation %d: not cached", d)
		}
		if er.CanonicalRotation < 0 || er.N != base.N() || er.Alg != repro.AlgorithmB.String() {
			t.Errorf("rotation %d: response %+v", d, er)
		}
	}

	// Edge validation: bad rings never reach a replica.
	for _, bad := range []serve.ElectRequest{
		{Ring: "1 1 1 1", Alg: "B", K: 3},     // symmetric
		{Ring: "1 2 3", Alg: "Q"},             // unknown alg
		{Ring: ""},                            // empty
		{Ring: "1 2 3", Engine: "goroutines"}, // engine the cluster cannot honor
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/elect", bad)
		if resp.StatusCode != 400 {
			t.Errorf("bad request %+v: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Classification is answered locally.
	resp, body := postJSON(t, ts.URL+"/v1/classify", serve.ClassifyRequest{Ring: "1 3 1 3 2 2 1 2"})
	if resp.StatusCode != 200 {
		t.Fatalf("classify: %d: %s", resp.StatusCode, body)
	}
	var cr serve.ClassifyResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Asymmetric || !cr.Electable || cr.N != 8 {
		t.Errorf("classify: %+v", cr)
	}

	// Metrics carry the routing ledger.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"ringgw_replica_up{", "ringgw_replica_routed_total{", "ringgw_replica_hedged_total{"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Drain: readyz flips to 503, elections refuse with 503, classify
	// (local, harmless) keeps answering.
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz before drain: %v %v", resp, err)
	}
	g.BeginDrain()
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil || resp.StatusCode != 503 {
		t.Fatalf("readyz after drain: %v %v", resp, err)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/elect", serve.ElectRequest{Ring: "1 2 2", Alg: "A", K: 2}); resp.StatusCode != 503 {
		t.Errorf("elect while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestGatewayWireTermination runs the cluster's binary front: a
// serve.WireFrontend terminating RGV1 onto the Gateway, so a wire
// client cannot tell the gateway from a single ringd.
func TestGatewayWireTermination(t *testing.T) {
	f, err := StartLocalFleet(2, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	g, _ := startGateway(t, f)

	fe := serve.NewWireFrontend(g, serve.WireFrontendConfig{Metrics: g.Metrics()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	}()

	c, err := serve.DialWire(ln.Addr().String(), 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rg := ring.Figure1()
	direct, err := repro.Elect(rg, repro.AlgorithmB, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Elect(rg.LabelsView(), repro.AlgorithmB, 3)
	if err != nil {
		t.Fatalf("wire elect through gateway: %v", err)
	}
	if out.Leader != direct.Leader || out.LeaderLabel != direct.LeaderLabel {
		t.Errorf("wire answer (%d,%v), direct (%d,%v)", out.Leader, out.LeaderLabel, direct.Leader, direct.LeaderLabel)
	}

	g.BeginDrain()
	_, err = c.Elect(rg.LabelsView(), repro.AlgorithmB, 3)
	var we *serve.WireError
	if !errors.As(err, &we) || we.Status != 503 {
		t.Errorf("wire elect while draining: %v, want WireError 503", err)
	}
}

// TestGatewayStatsString smoke-checks fmt interactions that only fire
// at runtime (Stats on an idle router, every field zero).
func TestGatewayStatsString(t *testing.T) {
	r, err := NewRouter(RouterConfig{Roster: Roster{{Name: "x", WireAddr: "a:1", BaseURL: "http://b"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	s := r.Stats()
	if len(s) != 1 || s[0].Name != "x" || !s[0].Up {
		t.Errorf("Stats() = %+v", s)
	}
	_ = fmt.Sprintf("%+v", s)
}

// TestRouterSecureFleet proxies elections over authenticated encrypted
// pool connections: a fleet whose roster entries carry pub_key, a
// router with its own identity, answers crosschecked against the
// engine, and a kill/restart in the middle to prove redials rekey.
func TestRouterSecureFleet(t *testing.T) {
	f, err := StartSecureLocalFleet(2, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	for i, rep := range f.Roster {
		if rep.PubKey == "" {
			t.Fatalf("secure fleet replica %d has no pub_key", i)
		}
	}
	identity, err := secure.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{
		Roster:     f.Roster,
		Timeout:    5 * time.Second,
		Backoff:    fastBackoff,
		HedgeAfter: 2 * time.Second,
		Identity:   identity,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	check := func(rg *ring.Ring) {
		t.Helper()
		out, err := r.Elect(context.Background(), rg.LabelsView(), repro.AlgorithmB, 3)
		if err != nil {
			t.Fatalf("secure elect: %v", err)
		}
		direct, err := repro.Elect(rg, repro.AlgorithmB, 3)
		if err != nil {
			t.Fatal(err)
		}
		if out.Leader != direct.Leader || out.Messages != direct.Messages {
			t.Fatalf("secure answer (%d,%d) != direct (%d,%d)",
				out.Leader, out.Messages, direct.Leader, direct.Messages)
		}
	}
	check(ring.Figure1())

	// A crash and restart: the replica comes back with the same key, and
	// the pool's redial handshakes afresh.
	f.Kill(0)
	if err := f.Restart(0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		rg, err := ring.RandomAsymmetric(rng, 5+rng.Intn(8), 3, 6)
		if err != nil {
			continue
		}
		check(rg)
	}
}

// TestRouterSecureFleetNeedsIdentity pins the configuration guard: a
// roster with pub_key entries and no gateway identity is a setup error,
// caught at construction rather than at the first failed dial.
func TestRouterSecureFleetNeedsIdentity(t *testing.T) {
	f, err := StartSecureLocalFleet(1, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	r, err := NewRouter(RouterConfig{Roster: f.Roster, Timeout: time.Second, Backoff: fastBackoff})
	if err == nil {
		r.Close()
		t.Fatal("router built against a secure roster without an identity")
	}
	if !strings.Contains(err.Error(), "keyfile") {
		t.Errorf("error %q does not point at the missing identity", err)
	}
}
