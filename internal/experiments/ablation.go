package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/spec"
)

// E13 is the threshold-tightness ablation. Ak's Leader(σ) predicate waits
// for 2k+1 copies of some label (Lemma 6); Bk's winner waits until its
// guest has taken its own label k+1 times. How tight are these constants?
// The experiment runs a ladder of reduced thresholds over every asymmetric
// labeling (one representative per rotation class) of small rings:
//
//   - Ak with k+1 or k+2 copies BREAKS: those counts only certify m > n,
//     not m > 2n, so the smallest repeating prefix can still be a
//     misleading period and two processes elect. The smallest
//     counterexamples are maximal-multiplicity rings ([1 1 1 2] for k+1,
//     [1 1 1 1 2] for k+2).
//   - Ak with 2k-1 copies SURVIVES every search (exhaustive to n = 8 over
//     alphabets ≤ 3, plus millions of random rings): an empirical
//     sharpening of Lemma 6 worth two detections (≈ 2n time units). We
//     report it as verified empirically, not proved.
//   - Bk with the win threshold lowered to k-1 guest-sightings BREAKS
//     immediately (fewer than n phases may have elapsed).
//
// The paper's own constants survive the same search, as they must.
func (s *Suite) E13() (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "Ablation: tightness of the detection thresholds",
		Header: []string{"variant", "rings searched", "first counterexample", "failure mode", "total broken", "expected"},
	}
	akMaxN, bkMaxN := 8, 6
	if s.Quick {
		akMaxN, bkMaxN = 7, 5
	}

	type variant struct {
		name       string
		maxN       int
		wantBroken bool
		mk         func(k, bits int) (core.Protocol, error)
	}
	variants := []variant{
		{"Ak thr=2k+1 (paper)", akMaxN, false, func(k, bits int) (core.Protocol, error) {
			return core.NewAProtocol(k, bits)
		}},
		{"Ak thr=2k-1 (empirically sharp)", akMaxN, false, func(k, bits int) (core.Protocol, error) {
			p, err := core.NewAProtocol(k, bits)
			if err != nil {
				return nil, err
			}
			p.Threshold = max(2, 2*k-1)
			return p, nil
		}},
		{"Ak thr=k+2 (broken for k>=4)", akMaxN, true, func(k, bits int) (core.Protocol, error) {
			p, err := core.NewAProtocol(k, bits)
			if err != nil {
				return nil, err
			}
			p.Threshold = k + 2
			return p, nil
		}},
		{"Ak thr=k+1 (broken)", akMaxN, true, func(k, bits int) (core.Protocol, error) {
			p, err := core.NewAProtocol(k, bits)
			if err != nil {
				return nil, err
			}
			p.Threshold = k + 1
			return p, nil
		}},
		{"Bk outer=k (paper)", bkMaxN, false, func(k, bits int) (core.Protocol, error) {
			return core.NewBProtocol(max(2, k), bits)
		}},
		{"Bk outer=k-1 (broken)", bkMaxN, true, func(k, bits int) (core.Protocol, error) {
			kk := max(2, k)
			p, err := core.NewBProtocol(kk, bits)
			if err != nil {
				return nil, err
			}
			p.OuterThreshold = kk - 1
			return p, nil
		}},
	}

	type out struct {
		row   []any
		notes []string
	}
	outs, err := grid(s, len(variants), func(vi int) (out, error) {
		v := variants[vi]
		searched, broken := 0, 0
		firstBad, firstMode := "-", "-"
		for n := 2; n <= v.maxN; n++ {
			ring.AllAsymmetricNecklaces(n, 3, func(rr *ring.Ring) bool {
				r := ring.MustNew(rr.Labels()...)
				searched++
				k := r.MaxMultiplicity()
				p, err := v.mk(k, r.LabelBits())
				if err != nil {
					return true
				}
				res, err := sim.RunSync(r, p, sim.Options{MaxActions: 500_000})
				mode := ""
				switch {
				case err != nil:
					var viol *spec.Violation
					if errors.As(err, &viol) {
						mode = fmt.Sprintf("spec bullet %d", viol.Bullet)
					} else if errors.Is(err, sim.ErrMaxActions) {
						mode = "non-termination"
					} else {
						mode = "model violation"
					}
				default:
					if want, _ := r.TrueLeader(); res.LeaderIndex != want {
						mode = fmt.Sprintf("wrong leader p%d (true p%d)", res.LeaderIndex, want)
					}
				}
				if mode != "" {
					broken++
					if firstBad == "-" {
						firstBad = fmt.Sprintf("%s (k=%d)", r, k)
						firstMode = mode
					}
				}
				return true
			})
		}
		expected := "0 broken"
		if v.wantBroken {
			expected = ">0 broken"
		}
		o := out{row: []any{v.name, searched, firstBad, firstMode, broken, expected}}
		if v.wantBroken && broken == 0 {
			o.notes = append(o.notes, fmt.Sprintf("FAIL: %q survived the search — expected counterexamples", v.name))
		}
		if !v.wantBroken && broken > 0 {
			o.notes = append(o.notes, fmt.Sprintf("FAIL: %q broke on %s (%s)", v.name, firstBad, firstMode))
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		t.AddRow(o.row...)
		for _, note := range o.notes {
			t.Note("%s", note)
		}
	}
	t.Note("Detection ladder for Ak: k+1 and k+2 copies break (misleading repeating prefixes on")
	t.Note("maximal-multiplicity rings); 2k-1 survives every search; 2k+1 is the paper's proven value.")
	t.Note("Bk's k+1 own-label sightings are exactly tight: k sightings break immediately.")
	return t, nil
}
