package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/ring"
	"repro/internal/sim"
)

// E1 reproduces Lemma 1's construction: for distinct-label base rings R_n
// and repetition counts k, it builds R_{n,k} and verifies property (*) —
// after t ≤ j synchronous steps, process q_j of R_{n,k} is in exactly the
// state of p_{j mod n} of R_n — by comparing full machine fingerprints.
func (s *Suite) E1() (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Lemma 1 construction and indistinguishability property (*)",
		Header: []string{"n", "k", "ring size kn+1", "base steps T", "steps compared", "state pairs compared", "property (*)"},
	}
	ns := []int{4, 6, 8}
	ks := []int{2, 3, 4}
	if s.Quick {
		ns, ks = []int{4, 6}, []int{2, 3}
	}
	type cell struct{ n, k int }
	var cells []cell
	for _, n := range ns {
		for _, k := range ks {
			cells = append(cells, cell{n, k})
		}
	}
	type out struct {
		row  []any
		note string
	}
	outs, err := grid(s, len(cells), func(i int) (out, error) {
		n, k := cells[i].n, cells[i].k
		base := ring.Distinct(n)
		big, err := lowerbound.BuildRnk(base, k, ring.Label(n+1))
		if err != nil {
			return out{}, err
		}
		if !big.HasUniqueLabel() || !big.InKk(k) {
			return out{}, fmt.Errorf("E1: R_{%d,%d} not in U* ∩ K%d", n, k, k)
		}
		// Use the genuine algorithm Ak with the construction's k; the
		// property is algorithm-independent, so any deterministic
		// protocol would do.
		proto, err := protoA(k, big)
		if err != nil {
			return out{}, err
		}
		rep, err := lowerbound.CheckIndistinguishability(base, k, ring.Label(n+1), proto, sim.Options{})
		o := out{}
		verdict := "holds"
		if err != nil {
			verdict = "VIOLATED"
			o.note = fmt.Sprintf("FAIL n=%d k=%d: %v", n, k, err)
		}
		o.row = []any{n, k, big.N(), rep.BaseSteps, rep.StepsChecked, rep.PairsChecked, verdict}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		if o.note != "" {
			t.Note("%s", o.note)
		}
		t.AddRow(o.row...)
	}
	t.Note("Property (*): no information from q_kn has reached q_j within j steps, so q_j mirrors p_{j mod n}.")
	return t, nil
}

// E2 plays out Theorem 1's proof on concrete algorithms: Ak (and A*) with
// a fixed bound k0 is a correct terminating algorithm on every base ring
// R_n ∈ K1, yet is defeated by R_{n,k} for k large enough that
// T ≤ (k-2)n — two processes declare themselves leader and the
// specification checker reports the bullet 1 violation. This is why no
// algorithm solves leader election for all of U* (Theorem 1).
func (s *Suite) E2() (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 1: a fixed algorithm elects two leaders on R_{n,k}",
		Header: []string{"algorithm", "n", "T on R_n", "chosen k", "ring size", "outcome"},
	}
	ns := []int{4, 6, 8}
	if s.Quick {
		ns = []int{4, 6}
	}
	// Label bits wide enough for the fresh label used below.
	bits := ring.Label(999).Bits()
	type cell struct {
		n    int
		star bool
	}
	var cells []cell
	for _, n := range ns {
		cells = append(cells, cell{n, false}, cell{n, true})
	}
	rows, err := grid(s, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		var p core.Protocol
		var err error
		if c.star {
			p, err = core.NewStarProtocol(2, bits)
		} else {
			p, err = core.NewAProtocol(2, bits)
		}
		if err != nil {
			return nil, err
		}
		res, err := lowerbound.DemonstrateTwoLeaders(ring.Distinct(c.n), p, ring.Label(999), sim.Options{})
		if err != nil {
			return nil, err
		}
		outcome := "no violation (unexpected)"
		if res.Violation != nil {
			outcome = res.Violation.Error()
		}
		return []any{p.Name(), c.n, res.BaseSteps, res.K, res.RingSize, outcome}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("Every run must end in a 'spec bullet 1' violation: the construction defeats any fixed algorithm (Theorem 1).")
	return t, nil
}

// E3 measures the Ω(kn) lower bound of Corollaries 2 and 4: on every
// distinct-label ring, a correct algorithm for U* ∩ Kk (here Ak and Bk,
// correct on the larger A ∩ Kk) must spend at least 1+(k-2)n synchronous
// steps; the table reports measured steps against that bound.
func (s *Suite) E3() (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Ω(kn) synchronous-step lower bound on distinct-label rings",
		Header: []string{"n", "k", "bound 1+(k-2)n", "Ak steps", "Ak/bound", "A* steps", "A*/bound", "Bk steps", "Bk/bound"},
	}
	ns := []int{8, 16, 24, 32}
	ks := []int{2, 3, 4, 5}
	if s.Quick {
		ns, ks = []int{8, 16}, []int{2, 3}
	}
	type cell struct{ n, k int }
	var cells []cell
	for _, n := range ns {
		for _, k := range ks {
			cells = append(cells, cell{n, k})
		}
	}
	type out struct {
		row   []any
		notes []string
	}
	outs, err := grid(s, len(cells), func(i int) (out, error) {
		n, k := cells[i].n, cells[i].k
		r := ring.Distinct(n)
		bound := lowerbound.MinStepsBound(n, k)
		o := out{row: []any{n, k, bound}}
		for _, mk := range []func(int, *ring.Ring) (core.Protocol, error){protoA, protoStar, protoB} {
			p, err := mk(k, r)
			if err != nil {
				return out{}, err
			}
			res, err := sim.RunSync(r, p, sim.Options{})
			if err != nil {
				return out{}, fmt.Errorf("E3 n=%d k=%d %s: %w", n, k, p.Name(), err)
			}
			if res.Steps < bound {
				o.notes = append(o.notes, fmt.Sprintf("FAIL: %s n=%d k=%d took %d < bound %d", p.Name(), n, k, res.Steps, bound))
			}
			o.row = append(o.row, res.Steps, float64(res.Steps)/float64(bound))
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		for _, note := range o.notes {
			t.Note("%s", note)
		}
		t.AddRow(o.row...)
	}
	t.Note("All ratios must be ≥ 1 (Lemma 1). Ak steps grow as (2k+1)n+Θ(n) against the (k-2)n bound —")
	t.Note("a constant factor as k grows, confirming Ak is asymptotically time-optimal (Θ(kn), Corollary 2);")
	t.Note("Bk's ratio grows with kn (its time is Θ(k²n²), Theorem 4).")
	return t, nil
}
