package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/ring"
	"repro/internal/sim"
)

// E9 is the headline comparison the paper's contribution section promises:
// Ak and Bk "achieve the classical trade-off between time and space", with
// A* at the (k+2)n intermediate point and the K1 baselines (Chang–Roberts,
// Peterson) anchoring the identified case. All runs use unit message
// delays, the paper's time-unit measure, on distinct-label rings (Ak's
// worst case).
func (s *Suite) E9() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Time/space trade-off on distinct-label rings (unit delays)",
		Header: []string{"algorithm", "n", "k", "time units", "messages", "peak space bits"},
	}
	ns := []int{16, 32, 64}
	ks := []int{2, 4}
	if s.Quick {
		ns, ks = []int{16, 32}, []int{2}
	}
	for _, n := range ns {
		r := ring.Distinct(n)
		b := r.LabelBits()
		for _, k := range ks {
			type entry struct {
				p   core.Protocol
				err error
			}
			cr, errCR := baseline.NewCRProtocol(b)
			pet, errPet := baseline.NewPetersonProtocol(b)
			ak, errA := core.NewAProtocol(k, b)
			star, errS := core.NewStarProtocol(k, b)
			bk, errB := core.NewBProtocol(k, b)
			for _, e := range []entry{{ak, errA}, {star, errS}, {bk, errB}, {cr, errCR}, {pet, errPet}} {
				if e.err != nil {
					return nil, e.err
				}
				res, err := sim.RunAsync(r, e.p, sim.ConstantDelay(1), sim.Options{})
				if err != nil {
					return nil, fmt.Errorf("E9 %s n=%d k=%d: %w", e.p.Name(), n, k, err)
				}
				t.AddRow(e.p.Name(), n, k, res.TimeUnits, res.Messages, res.PeakSpaceBits)
			}
		}
	}
	t.Note("Expected shape: time A* ≈ (k+2)n < Ak ≈ (2k+2)n ≪ Bk = Θ(k²n²);")
	t.Note("space Bk = 2⌈log k⌉+3b+5 ≪ A*/Ak = Θ(knb). The K1 baselines are faster/leaner but need unique labels.")
	return t, nil
}

// E10 first checks the introduction's example: the ring [1 2 2] admits
// process-terminating election within A ∩ K2 (it is solvable here although
// not in the models of [4], [9]). It then cross-validates the execution
// engines: because links are FIFO and machines deterministic, every
// schedule — synchronous, unit-delay, random-delay, adversarial, and the
// real goroutine runtime — must elect the same leader with the same
// message count.
func (s *Suite) E10() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Ring [1 2 2] + engine cross-validation (schedule-independence)",
		Header: []string{"ring", "algorithm", "engine", "leader", "messages", "agrees"},
	}
	type run struct {
		engine   string
		leader   int
		messages int
	}
	rings := []*ring.Ring{ring.Ring122(), ring.Figure1()}
	if !s.Quick {
		rng := newRand(s.Seed)
		for i := 0; i < 3; i++ {
			r, err := ring.RandomAsymmetric(rng, 10+2*i, 3, 5)
			if err != nil {
				return nil, err
			}
			rings = append(rings, r)
		}
	}
	for _, r := range rings {
		k := max(2, r.MaxMultiplicity())
		for _, mk := range []func(int, *ring.Ring) (core.Protocol, error){protoA, protoStar, protoB} {
			p, err := mk(k, r)
			if err != nil {
				return nil, err
			}
			var runs []run
			if res, err := sim.RunSync(r, p, sim.Options{}); err != nil {
				return nil, fmt.Errorf("E10 sync %s on %s: %w", p.Name(), r, err)
			} else {
				runs = append(runs, run{"sim/sync", res.LeaderIndex, res.Messages})
			}
			if res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{}); err != nil {
				return nil, fmt.Errorf("E10 unit %s on %s: %w", p.Name(), r, err)
			} else {
				runs = append(runs, run{"sim/unit", res.LeaderIndex, res.Messages})
			}
			if res, err := sim.RunAsync(r, p, sim.NewUniformDelay(s.Seed, 0.01), sim.Options{}); err != nil {
				return nil, fmt.Errorf("E10 random %s on %s: %w", p.Name(), r, err)
			} else {
				runs = append(runs, run{"sim/random", res.LeaderIndex, res.Messages})
			}
			if res, err := gorun.Run(r, p, 30*time.Second); err != nil {
				return nil, fmt.Errorf("E10 gorun %s on %s: %w", p.Name(), r, err)
			} else {
				runs = append(runs, run{"goroutines", res.LeaderIndex, res.Messages})
			}
			trueLeader, _ := r.TrueLeader()
			for _, rr := range runs {
				agrees := "yes"
				if rr.leader != runs[0].leader || rr.messages != runs[0].messages {
					agrees = "NO"
					t.Note("FAIL: %s on %s disagrees across engines", p.Name(), r)
				}
				if rr.leader != trueLeader {
					agrees = "NO (not true leader)"
					t.Note("FAIL: %s on %s elected p%d, true leader is p%d", p.Name(), r, rr.leader, trueLeader)
				}
				t.AddRow(r.String(), p.Name(), rr.engine, fmt.Sprintf("p%d", rr.leader), rr.messages, agrees)
			}
		}
	}
	t.Note("FIFO links + deterministic machines make per-process receive sequences schedule-independent,")
	t.Note("so every engine must agree on both the leader and the exact message count.")
	return t, nil
}
