package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/sim"
)

// E9 is the headline comparison the paper's contribution section promises:
// Ak and Bk "achieve the classical trade-off between time and space", with
// A* at the (k+2)n intermediate point and the K1 baselines (Chang–Roberts,
// Peterson) anchoring the identified case. All runs use unit message
// delays, the paper's time-unit measure, on distinct-label rings (Ak's
// worst case).
func (s *Suite) E9() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Time/space trade-off on distinct-label rings (unit delays)",
		Header: []string{"algorithm", "n", "k", "time units", "messages", "peak space bits"},
	}
	ns := []int{16, 32, 64}
	ks := []int{2, 4}
	if s.Quick {
		ns, ks = []int{16, 32}, []int{2}
	}
	type cell struct{ n, k, alg int }
	var cells []cell
	for ni := range ns {
		for ki := range ks {
			for alg := 0; alg < 5; alg++ {
				cells = append(cells, cell{ns[ni], ks[ki], alg})
			}
		}
	}
	rows, err := grid(s, len(cells), func(i int) ([]any, error) {
		c := cells[i]
		r := ring.Distinct(c.n)
		b := r.LabelBits()
		var p core.Protocol
		var err error
		switch c.alg {
		case 0:
			p, err = core.NewAProtocol(c.k, b)
		case 1:
			p, err = core.NewStarProtocol(c.k, b)
		case 2:
			p, err = core.NewBProtocol(c.k, b)
		case 3:
			p, err = baseline.NewCRProtocol(b)
		default:
			p, err = baseline.NewPetersonProtocol(b)
		}
		if err != nil {
			return nil, err
		}
		res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			return nil, fmt.Errorf("E9 %s n=%d k=%d: %w", p.Name(), c.n, c.k, err)
		}
		return []any{p.Name(), c.n, c.k, res.TimeUnits, res.Messages, res.PeakSpaceBits}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("Expected shape: time A* ≈ (k+2)n < Ak ≈ (2k+2)n ≪ Bk = Θ(k²n²);")
	t.Note("space Bk = 2⌈log k⌉+3b+5 ≪ A*/Ak = Θ(knb). The K1 baselines are faster/leaner but need unique labels.")
	return t, nil
}

// E10 first checks the introduction's example: the ring [1 2 2] admits
// process-terminating election within A ∩ K2 (it is solvable here although
// not in the models of [4], [9]). It then cross-validates THREE execution
// engines: because links are FIFO and machines deterministic, every
// schedule — synchronous, unit-delay, random-delay simulation, the real
// goroutine runtime, and the TCP transport engine (internal/netring, one
// OS-level node per process over loopback sockets) — must elect the same
// leader with the same message count.
func (s *Suite) E10() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "Ring [1 2 2] + three-way engine cross-validation (schedule-independence)",
		Header: []string{"ring", "algorithm", "engine", "leader", "messages", "agrees"},
	}
	type run struct {
		engine   string
		leader   int
		messages int
	}
	rings := []*ring.Ring{ring.Ring122(), ring.Figure1()}
	if !s.Quick {
		rng := newRand(s.Seed)
		for i := 0; i < 3; i++ {
			r, err := ring.RandomAsymmetric(rng, 10+2*i, 3, 5)
			if err != nil {
				return nil, err
			}
			rings = append(rings, r)
		}
	}
	makers := []func(int, *ring.Ring) (core.Protocol, error){protoA, protoStar, protoB}
	type cell struct {
		r   *ring.Ring
		alg int
	}
	var cells []cell
	for _, r := range rings {
		for alg := range makers {
			cells = append(cells, cell{r, alg})
		}
	}
	type out struct {
		rows  [][]any
		notes []string
	}
	outs, err := grid(s, len(cells), func(i int) (out, error) {
		r := cells[i].r
		k := max(2, r.MaxMultiplicity())
		p, err := makers[cells[i].alg](k, r)
		if err != nil {
			return out{}, err
		}
		var runs []run
		if res, err := sim.RunSync(r, p, sim.Options{}); err != nil {
			return out{}, fmt.Errorf("E10 sync %s on %s: %w", p.Name(), r, err)
		} else {
			runs = append(runs, run{"sim/sync", res.LeaderIndex, res.Messages})
		}
		if res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{}); err != nil {
			return out{}, fmt.Errorf("E10 unit %s on %s: %w", p.Name(), r, err)
		} else {
			runs = append(runs, run{"sim/unit", res.LeaderIndex, res.Messages})
		}
		if res, err := sim.RunAsync(r, p, sim.NewUniformDelay(s.Seed, 0.01), sim.Options{}); err != nil {
			return out{}, fmt.Errorf("E10 random %s on %s: %w", p.Name(), r, err)
		} else {
			runs = append(runs, run{"sim/random", res.LeaderIndex, res.Messages})
		}
		if res, err := gorun.Run(r, p, 30*time.Second); err != nil {
			return out{}, fmt.Errorf("E10 gorun %s on %s: %w", p.Name(), r, err)
		} else {
			runs = append(runs, run{"goroutines", res.LeaderIndex, res.Messages})
		}
		if res, err := netring.RunLocal(r, p, netring.Options{Timeout: 30 * time.Second}); err != nil {
			return out{}, fmt.Errorf("E10 tcp %s on %s: %w", p.Name(), r, err)
		} else {
			runs = append(runs, run{"tcp", res.LeaderIndex, res.Messages})
		}
		trueLeader, _ := r.TrueLeader()
		var o out
		for _, rr := range runs {
			agrees := "yes"
			if rr.leader != runs[0].leader || rr.messages != runs[0].messages {
				agrees = "NO"
				o.notes = append(o.notes, fmt.Sprintf("FAIL: %s on %s disagrees across engines", p.Name(), r))
			}
			if rr.leader != trueLeader {
				agrees = "NO (not true leader)"
				o.notes = append(o.notes, fmt.Sprintf("FAIL: %s on %s elected p%d, true leader is p%d", p.Name(), r, rr.leader, trueLeader))
			}
			o.rows = append(o.rows, []any{r.String(), p.Name(), rr.engine, fmt.Sprintf("p%d", rr.leader), rr.messages, agrees})
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		for _, row := range o.rows {
			t.AddRow(row...)
		}
		for _, note := range o.notes {
			t.Note("%s", note)
		}
	}
	t.Note("FIFO links + deterministic machines make per-process receive sequences schedule-independent,")
	t.Note("so every engine — simulator schedules, goroutines, and real TCP sockets — must agree on")
	t.Note("both the leader and the exact message count.")
	return t, nil
}
