package experiments

import (
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/spec"
)

// E11 makes the paper's closing observation executable: "the knowledge of
// k and of a common orientation is more helpful to solve
// process-terminating leader election in a ring than the knowledge of n or
// bounds on n." It compares three knowledge regimes on the same rings —
// know-k (Ak, Bk, A*), know-n (the KnownN single-lap baseline), and
// unique-labels (Chang–Roberts) — and then shows each regime failing
// outside its assumption: KnownN with a wrong n elects duplicate leaders
// (the mirror image of E2), while the know-k algorithms run correctly on
// rings whose size no process could know.
func (s *Suite) E11() (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Knowledge trade-off: know-k vs know-n vs unique labels",
		Header: []string{"ring", "knowledge", "algorithm", "time units", "messages", "peak bits", "outcome"},
	}
	rings := []*ring.Ring{ring.Ring122(), ring.Figure1()}
	if !s.Quick {
		rng := newRand(s.Seed + 11)
		for _, n := range []int{12, 24} {
			r, err := ring.RandomAsymmetric(rng, n, 3, max(8, n))
			if err != nil {
				return nil, err
			}
			rings = append(rings, r)
		}
	}
	ringRows, err := grid(s, len(rings), func(i int) ([][]any, error) {
		r := rings[i]
		k := max(2, r.MaxMultiplicity())
		b := r.LabelBits()
		type entry struct {
			knowledge string
			p         core.Protocol
			err       error
		}
		ak, errA := core.NewAProtocol(k, b)
		star, errS := core.NewStarProtocol(k, b)
		bk, errB := core.NewBProtocol(k, b)
		kn, errN := baseline.NewKnownNProtocol(r.N(), b)
		entries := []entry{
			{fmt.Sprintf("k=%d", k), ak, errA},
			{fmt.Sprintf("k=%d", k), star, errS},
			{fmt.Sprintf("k=%d", k), bk, errB},
			{fmt.Sprintf("n=%d", r.N()), kn, errN},
		}
		if r.InKk(1) {
			cr, errCR := baseline.NewCRProtocol(b)
			entries = append(entries, entry{"unique ids", cr, errCR})
		}
		trueLeader, _ := r.TrueLeader()
		var rows [][]any
		for _, e := range entries {
			if e.err != nil {
				return nil, e.err
			}
			res, err := sim.RunAsync(r, e.p, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				return nil, fmt.Errorf("E11 %s on %s: %w", e.p.Name(), r, err)
			}
			outcome := fmt.Sprintf("elected p%d", res.LeaderIndex)
			if res.LeaderIndex != trueLeader {
				outcome += fmt.Sprintf(" (true leader p%d)", trueLeader)
			}
			rows = append(rows, []any{r.String(), e.knowledge, e.p.Name(), res.TimeUnits, res.Messages, res.PeakSpaceBits, outcome})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range ringRows {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}

	// Outside-the-assumption rows: each regime breaks when its knowledge
	// is wrong, and the breakage is *detected*, never silent.
	misN, err := baseline.NewKnownNProtocol(2, ring.Label(3).Bits())
	if err != nil {
		return nil, err
	}
	wrong := ring.MustNew(1, 2, 1, 2, 1, 3)
	_, err = sim.RunSync(wrong, misN, sim.Options{MaxActions: 100000})
	var v *spec.Violation
	switch {
	case errors.As(err, &v) && v.Bullet == 1:
		t.AddRow(wrong.String(), "n=2 (wrong)", misN.Name(), "-", "-", "-", "duplicate leaders caught: "+v.Error())
	case err == nil:
		t.Note("FAIL: KnownN with wrong n elected cleanly — the assumption was not load-bearing")
		t.AddRow(wrong.String(), "n=2 (wrong)", misN.Name(), "-", "-", "-", "no violation (unexpected)")
	default:
		t.AddRow(wrong.String(), "n=2 (wrong)", misN.Name(), "-", "-", "-", "failed: "+err.Error())
	}
	t.Note("Know-k handles rings of unknown and unbounded size; know-n is ≈k× faster (one lap) but")
	t.Note("unusable without exact size; unique-id baselines are fastest but reject any homonym ring.")
	t.Note("Rings like [1 2 2] are solvable with k=2 yet unsolvable in the bounds-on-n models of [4], [9].")
	return t, nil
}
