package experiments

import (
	"fmt"

	"repro/internal/boundedn"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
)

// E12 reproduces the paper's model-comparison claim (§I, Contribution):
// "there are labeled rings (e.g., a ring of three processes with labels 1,
// 2, and 2) for which we can solve process-terminating leader election,
// whereas it cannot be solved in the model of [4], [9]". The bounded-n
// decision protocol (internal/boundedn) stands in for the Dobrev–Pelc
// model: processes know m ≤ n ≤ M instead of the multiplicity bound k.
// Whenever M admits a symmetric multiple of the ring's cyclic period the
// verdict is "impossible", while Ak with the multiplicity bound elects on
// the very same ring.
func (s *Suite) E12() (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "Model comparison: multiplicity bound k vs size bounds [m, M] (Dobrev–Pelc)",
		Header: []string{"ring", "know k: outcome", "know m≤n≤M", "bounded-n verdict", "bounded-n cost (time/msgs)"},
	}
	type cse struct {
		r    *ring.Ring
		k    int
		m, M int
	}
	cases := []cse{
		{ring.Ring122(), 2, 2, 8},           // the paper's example: impossible in [4]'s model
		{ring.Ring122(), 2, 2, 5},           // tight bounds exclude the double: solvable
		{ring.Distinct(4), 2, 2, 8},         // even unique labels don't help when M ≥ 2n
		{ring.Distinct(4), 2, 3, 7},         // M < 2n: solvable
		{ring.Figure1(), 3, 2, 16},          // Figure 1 ring, ambiguous bounds
		{ring.Figure1(), 3, 5, 15},          // Figure 1 ring, tight bounds
		{ring.MustNew(1, 2, 1, 2), 2, 2, 4}, // genuinely symmetric: impossible everywhere
	}
	type out struct {
		row  []any
		note string
	}
	outs, err := grid(s, len(cases), func(i int) (out, error) {
		c := cases[i]
		// Know-k column: Ak with the multiplicity bound (no size knowledge
		// at all). On symmetric rings it cannot terminate correctly.
		knowK := "elects"
		if !c.r.IsAsymmetric() {
			knowK = "unsolvable (symmetric)"
		} else {
			p, err := core.NewAProtocol(c.k, c.r.LabelBits())
			if err != nil {
				return out{}, err
			}
			res, err := sim.RunAsync(c.r, p, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				return out{}, fmt.Errorf("E12 Ak on %s: %w", c.r, err)
			}
			knowK = fmt.Sprintf("elects p%d (k=%d)", res.LeaderIndex, c.k)
		}

		res, err := boundedn.Run(c.r, c.m, c.M)
		if err != nil {
			return out{}, fmt.Errorf("E12 bounded-n on %s: %w", c.r, err)
		}
		want, err := boundedn.Expected(c.r, c.m, c.M)
		if err != nil {
			return out{}, err
		}
		var o out
		if res.Verdict != want {
			o.note = fmt.Sprintf("FAIL: %s with [%d,%d]: verdict %s, ground truth %s", c.r, c.m, c.M, res.Verdict, want)
		}
		verdict := res.Verdict.String()
		if res.Verdict == boundedn.VerdictElected {
			verdict = fmt.Sprintf("elects p%d", res.LeaderIndex)
		}
		o.row = []any{c.r.String(), knowK, fmt.Sprintf("[%d, %d]", c.m, c.M), verdict,
			fmt.Sprintf("%.0f / %d", res.TimeUnits, res.Messages)}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		if o.note != "" {
			t.Note("%s", o.note)
		}
		t.AddRow(o.row...)
	}
	t.Note("Bounded-n is solvable iff the smallest cyclic period d is the only multiple of d in [m, M]:")
	t.Note("with M ≥ 2n the doubled (symmetric) ring is observationally indistinguishable, so even [1 2 2]")
	t.Note("and fully-distinct rings become impossible — exactly the paper's argument for preferring k.")
	return t, nil
}
