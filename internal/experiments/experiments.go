// Package experiments regenerates every table and figure artifact of the
// paper as an executable experiment (the E1…E10 index of DESIGN.md §4).
// Each runner returns a Table whose rows are the series the paper's claim
// corresponds to; cmd/ringbench prints them and EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sweep"
)

// Table is one experiment's output: a titled grid plus free-form notes
// (bound checks, fit qualities, pass/fail summaries).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// RenderMarkdown writes the table as a GitHub-flavored Markdown table with
// the notes as a trailing list — the format EXPERIMENTS.md embeds.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	fmt.Fprint(w, "|")
	for _, h := range t.Header {
		fmt.Fprintf(w, " %s |", esc(h))
	}
	fmt.Fprint(w, "\n|")
	for range t.Header {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		fmt.Fprint(w, "|")
		for _, c := range row {
			fmt.Fprintf(w, " %s |", esc(c))
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n\n")
	return err
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  # %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// Suite runs experiments with a fixed random seed so every table is
// reproducible.
type Suite struct {
	// Seed drives all randomized ring generation and schedules.
	Seed int64
	// Quick shrinks parameter sweeps for fast test runs.
	Quick bool
	// Workers is the worker-pool width for the experiment grids (0 means
	// one worker per CPU). Tables are byte-identical at every width: the
	// sweep engine merges results in submission order, and each grid cell
	// is an independent deterministic simulation.
	Workers int
}

// workers resolves the effective pool width.
func (s *Suite) workers() int { return sweep.DefaultWorkers(s.Workers) }

// grid fans the n independent grid cells of an experiment across the
// suite's worker pool and returns the per-cell results in submission
// order (see internal/sweep for the determinism contract). Experiments
// compute rows and notes inside the job and append them to the table
// serially afterwards, so parallel tables render byte-identically to
// serial ones.
func grid[T any](s *Suite, n int, job func(i int) (T, error)) ([]T, error) {
	return sweep.Map(s.workers(), n, job)
}

// Runner produces one experiment table.
type Runner struct {
	ID    string
	Title string
	Run   func(*Suite) (*Table, error)
}

// Runners lists every experiment in index order.
func Runners() []Runner {
	return []Runner{
		{"E1", "Lemma 1: R_{n,k} construction and indistinguishability property (*)", (*Suite).E1},
		{"E2", "Theorem 1: a fixed algorithm elects two leaders on R_{n,k}", (*Suite).E2},
		{"E3", "Corollaries 2 & 4: Ω(kn) synchronous-step lower bound", (*Suite).E3},
		{"E4", "Theorem 2: Ak time/message/space bounds", (*Suite).E4},
		{"E5", "Theorem 4: Bk time/message/space bounds", (*Suite).E5},
		{"E6", "Figure 1: phase-by-phase execution of Bk (k=3) on [1 3 1 3 2 2 1 2]", (*Suite).E6},
		{"E7", "Figure 2: observed Bk state-diagram coverage", (*Suite).E7},
		{"E8", "Tables 1-2: action-level attribution and firing counts", (*Suite).E8},
		{"E9", "Headline trade-off: Ak vs A* vs Bk (and K1 baselines)", (*Suite).E9},
		{"E10", "Intro ring [1 2 2]; three-way simulator/goroutine/TCP engine agreement", (*Suite).E10},
		{"E11", "Knowledge trade-off: know-k vs know-n vs unique labels", (*Suite).E11},
		{"E12", "Model comparison: multiplicity bound k vs size bounds [m, M]", (*Suite).E12},
		{"E13", "Ablation: tightness of the 2k+1 and k+1 detection thresholds", (*Suite).E13},
		{"E14", "Itai–Rodeh randomness: drawn bits vs the 2.4417·n expectation", (*Suite).E14},
	}
}

// Find returns the runner with the given id (case-insensitive).
func Find(id string) (Runner, bool) {
	for _, r := range Runners() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// protoA builds Ak sized for r.
func protoA(k int, r *ring.Ring) (core.Protocol, error) {
	return core.NewAProtocol(k, r.LabelBits())
}

// protoB builds Bk sized for r.
func protoB(k int, r *ring.Ring) (core.Protocol, error) {
	return core.NewBProtocol(k, r.LabelBits())
}

// protoStar builds A* sized for r.
func protoStar(k int, r *ring.Ring) (core.Protocol, error) {
	return core.NewStarProtocol(k, r.LabelBits())
}

// newRand returns a deterministic rand.Rand for ring generation.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// sortedKeys returns the map's keys in sorted order, for deterministic
// tables.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
