package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every experiment in quick mode and fails on
// any FAIL/MISMATCH note — this is the one-stop "does the reproduction
// hold" test.
func TestAllExperimentsPass(t *testing.T) {
	suite := &Suite{Seed: 1, Quick: testing.Short()}
	for _, r := range Runners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table, err := r.Run(suite)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			for _, n := range table.Notes {
				if strings.HasPrefix(n, "FAIL") || strings.HasPrefix(n, "MISMATCH") {
					t.Errorf("%s: %s", r.ID, n)
				}
			}
			var buf bytes.Buffer
			if err := table.Render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if !strings.Contains(buf.String(), r.ID) {
				t.Errorf("rendered table missing its id header")
			}
		})
	}
}

// TestTableShape checks structural consistency of every produced table:
// each row has exactly one cell per header column, ids match the runner,
// and markdown rendering is well-formed.
func TestTableShape(t *testing.T) {
	suite := &Suite{Seed: 2, Quick: true}
	for _, r := range Runners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			table, err := r.Run(suite)
			if err != nil {
				t.Fatal(err)
			}
			if table.ID != r.ID {
				t.Errorf("table id %q != runner id %q", table.ID, r.ID)
			}
			if len(table.Header) == 0 {
				t.Fatal("empty header")
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(table.Header))
				}
			}
			var md bytes.Buffer
			if err := table.RenderMarkdown(&md); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(md.String(), "\n")
			if !strings.HasPrefix(lines[0], "## "+r.ID) {
				t.Errorf("markdown header line %q", lines[0])
			}
			wantCols := strings.Count(lines[2], "|")
			for j := 3; j < 3+len(table.Rows); j++ {
				if strings.Count(lines[j], "|") != wantCols {
					t.Errorf("markdown row %d column mismatch: %q", j, lines[j])
				}
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("e6"); !ok {
		t.Error("Find must be case-insensitive")
	}
	if _, ok := Find("E99"); ok {
		t.Error("Find must reject unknown ids")
	}
	if len(Runners()) != 14 {
		t.Errorf("Runners = %d, want 14 (E1..E14)", len(Runners()))
	}
}

func TestTableHelpers(t *testing.T) {
	tb := &Table{ID: "T", Title: "test", Header: []string{"a", "b"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 3.0)
	tb.Note("note %d", 7)
	if tb.Rows[0][1] != "2.5" || tb.Rows[1][1] != "3" {
		t.Errorf("float trimming: %v", tb.Rows)
	}
	if tb.Notes[0] != "note 7" {
		t.Errorf("Notes = %v", tb.Notes)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"== T: test ==", "a", "2.5", "# note 7"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q in:\n%s", frag, out)
		}
	}
}

// TestFigure1Reproduction is the standalone golden test for E6 (kept
// separate so a Figure 1 regression is named directly in test output).
func TestFigure1Reproduction(t *testing.T) {
	table, res, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if bad := CheckFigure1(table, res.LeaderIndex); len(bad) > 0 {
		for _, b := range bad {
			t.Error(b)
		}
	}
	if table.Phases() != 9 {
		t.Errorf("total phases = %d, want X = 9", table.Phases())
	}
}
