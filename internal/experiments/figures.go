package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Figure1Phase is the expected situation of the 8 processes in one phase of
// the paper's Figure 1 execution (Bk, k=3, ring [1 3 1 3 2 2 1 2]).
type Figure1Phase struct {
	Phase  int
	Guests []ring.Label // gray labels next to each process (nil = not shown)
	Active []int        // white processes at the beginning of the phase
}

// Figure1Expected transcribes Figure 1(a)–(d) exactly.
var Figure1Expected = []Figure1Phase{
	{Phase: 1, Guests: []ring.Label{1, 3, 1, 3, 2, 2, 1, 2}, Active: []int{0, 1, 2, 3, 4, 5, 6, 7}},
	{Phase: 2, Guests: []ring.Label{2, 1, 3, 1, 3, 2, 2, 1}, Active: []int{0, 2, 6}},
	{Phase: 3, Guests: []ring.Label{1, 2, 1, 3, 1, 3, 2, 2}, Active: []int{0, 6}},
	{Phase: 4, Guests: nil, Active: []int{0}},
}

// Figure1Leader is the process Figure 1's caption says is elected.
const Figure1Leader = 0

// Figure1K is the multiplicity bound of the Figure 1 execution.
const Figure1K = 3

// RunFigure1 executes Bk (k=3) on the Figure 1 ring under the synchronous
// scheduler and returns the reconstructed phase table plus the run result.
func RunFigure1() (*trace.PhaseTable, *sim.Result, error) {
	r := ring.Figure1()
	p, err := core.NewBProtocol(Figure1K, r.LabelBits())
	if err != nil {
		return nil, nil, err
	}
	mem := &trace.Mem{}
	res, err := sim.RunSync(r, p, sim.Options{Sink: mem})
	if err != nil {
		return nil, nil, err
	}
	return trace.BuildPhaseTable(mem.Events, r.N()), res, nil
}

// CheckFigure1 verifies a reconstructed phase table against
// Figure1Expected, returning a list of discrepancies (empty when the
// reproduction is exact).
func CheckFigure1(t *trace.PhaseTable, leaderIndex int) []string {
	var bad []string
	if leaderIndex != Figure1Leader {
		bad = append(bad, fmt.Sprintf("leader = p%d, figure says p%d", leaderIndex, Figure1Leader))
	}
	for _, exp := range Figure1Expected {
		if t.Phases() < exp.Phase {
			bad = append(bad, fmt.Sprintf("phase %d never reached", exp.Phase))
			continue
		}
		got := t.ActiveSet(exp.Phase)
		if fmt.Sprint(got) != fmt.Sprint(exp.Active) {
			bad = append(bad, fmt.Sprintf("phase %d active set %v, figure says %v", exp.Phase, got, exp.Active))
		}
		if exp.Guests == nil {
			continue
		}
		guests, entered := t.Guests(exp.Phase)
		for p := range exp.Guests {
			if !entered[p] {
				bad = append(bad, fmt.Sprintf("phase %d: p%d never entered", exp.Phase, p))
				continue
			}
			if guests[p] != exp.Guests[p] {
				bad = append(bad, fmt.Sprintf("phase %d: p%d guest %s, figure says %s", exp.Phase, p, guests[p], exp.Guests[p]))
			}
		}
	}
	return bad
}

// E6 reproduces Figure 1 and diffs it against the paper.
func (s *Suite) E6() (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Figure 1: Bk (k=3) on [1 3 1 3 2 2 1 2]",
		Header: []string{"phase", "active (white)", "guests p0..p7", "matches figure"},
	}
	table, res, err := RunFigure1()
	if err != nil {
		return nil, err
	}
	bad := CheckFigure1(table, res.LeaderIndex)
	for _, exp := range Figure1Expected {
		guests := "-"
		if exp.Phase <= table.Phases() {
			gs, entered := table.Guests(exp.Phase)
			parts := make([]string, len(gs))
			for i := range gs {
				if entered[i] {
					parts[i] = gs[i].String()
				} else {
					parts[i] = "-"
				}
			}
			guests = strings.Join(parts, " ")
		}
		match := "yes"
		for _, b := range bad {
			if strings.Contains(b, fmt.Sprintf("phase %d", exp.Phase)) {
				match = "NO"
			}
		}
		t.AddRow(exp.Phase, fmt.Sprint(table.ActiveSet(exp.Phase)), guests, match)
	}
	t.Note("elected leader: p%d (figure: p%d); total phases: %d (X = min prefix with k+1 = 4 copies of label 1 in LLabels(p0) = 9)",
		res.LeaderIndex, Figure1Leader, table.Phases())
	for _, b := range bad {
		t.Note("MISMATCH: %s", b)
	}
	if len(bad) == 0 {
		t.Note("Figure 1 reproduced exactly.")
	}
	return t, nil
}

// E7 checks Figure 2: across synchronous, unit-delay, random and
// adversarial schedules on several rings, every observed Bk transition is
// an edge of the figure's state diagram, and collectively the executions
// cover all 11 edges.
func (s *Suite) E7() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Figure 2: Bk state-diagram conformance and coverage",
		Header: []string{"edge", "covered"},
	}
	rings := []*ring.Ring{ring.Figure1(), ring.Ring122(), ring.Distinct(6)}
	ks := []int{3, 2, 2}
	// Each ring's four schedules run as one parallel job returning its
	// transitions in run order; the dedup merge below is serial and
	// order-preserving, so coverage rows match the serial sweep exactly.
	perRing, err := grid(s, len(rings), func(i int) ([]trace.Transition, error) {
		r := rings[i]
		p, err := core.NewBProtocol(ks[i], r.LabelBits())
		if err != nil {
			return nil, err
		}
		var all []trace.Transition
		collect := func(mem *trace.Mem) { all = append(all, trace.Transitions(mem.Events)...) }
		// Each run gets a fresh sink: transitions are per-execution.
		mem := &trace.Mem{}
		if _, err := sim.RunSync(r, p, sim.Options{Sink: mem}); err != nil {
			return nil, fmt.Errorf("E7 sync %s: %w", r, err)
		}
		collect(mem)
		mem = &trace.Mem{}
		if _, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{Sink: mem}); err != nil {
			return nil, fmt.Errorf("E7 unit %s: %w", r, err)
		}
		collect(mem)
		mem = &trace.Mem{}
		if _, err := sim.RunAsync(r, p, sim.NewUniformDelay(s.Seed+int64(i), 0.05), sim.Options{Sink: mem}); err != nil {
			return nil, fmt.Errorf("E7 random %s: %w", r, err)
		}
		collect(mem)
		mem = &trace.Mem{}
		if _, err := sim.RunAsync(r, p, sim.SlowLinkDelay{SlowFrom: 0, Fast: 0.01}, sim.Options{Sink: mem}); err != nil {
			return nil, fmt.Errorf("E7 slow-link %s: %w", r, err)
		}
		collect(mem)
		return all, nil
	})
	if err != nil {
		return nil, err
	}
	seenTr := map[trace.Transition]bool{}
	var observed []trace.Transition
	for _, trs := range perRing {
		for _, tr := range trs {
			if !seenTr[tr] {
				seenTr[tr] = true
				observed = append(observed, tr)
			}
		}
	}
	if bad := trace.CheckAgainstFigure2(observed); len(bad) > 0 {
		for _, tr := range bad {
			t.Note("FAIL: observed transition outside Figure 2: %s", tr)
		}
	}
	covered := map[trace.Transition]bool{}
	for _, tr := range observed {
		covered[tr] = true
	}
	missing := 0
	for _, e := range trace.Figure2Edges {
		c := "yes"
		if !covered[e] {
			c, missing = "NO", missing+1
		}
		t.AddRow(e.String(), c)
	}
	if missing == 0 {
		t.Note("All %d edges of Figure 2 observed; no extra transitions.", len(trace.Figure2Edges))
	} else {
		t.Note("FAIL: %d edges of Figure 2 never observed", missing)
	}
	return t, nil
}

// E8 attributes every executed action to its Table 1 / Table 2 identifier
// and reports firing counts, checking conservation: receives = messages,
// and per-algorithm structural identities.
func (s *Suite) E8() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "Tables 1-2: action attribution on [1 3 1 3 2 2 1 2]",
		Header: []string{"algorithm", "action", "firings"},
	}
	r := ring.Figure1()
	for _, mk := range []struct {
		name string
		k    int
		mkP  func(int, *ring.Ring) (core.Protocol, error)
	}{{"Ak", 3, protoA}, {"A*", 3, protoStar}, {"Bk", 3, protoB}} {
		p, err := mk.mkP(mk.k, r)
		if err != nil {
			return nil, err
		}
		counts := trace.ActionCount{}
		res, err := sim.RunSync(r, p, sim.Options{Sink: counts})
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", p.Name(), err)
		}
		total := 0
		for _, action := range sortedKeys(counts) {
			t.AddRow(p.Name(), action, counts[action])
			total += counts[action]
		}
		receives := total - r.N() // all non-init actions consume one message
		if receives != res.Messages {
			t.Note("FAIL %s: %d receives but %d sends — undelivered messages", p.Name(), receives, res.Messages)
		} else {
			t.Note("%s: %d actions = %d inits + %d receives = inits + sends (conservation holds)",
				p.Name(), total, r.N(), receives)
		}
	}
	return t, nil
}
