package experiments

import (
	"fmt"
	"math"

	randalg "repro/internal/rand"
	"repro/internal/ring"
	"repro/internal/sim"
)

// irExpectedBitsPerN is the asymptotic expected number of random bits an
// Itai–Rodeh election consumes per process (Lavault & Louchard's
// constant for the known-n, uniform-draw variant): total expected
// randomness ≈ 2.441716·n bits.
const irExpectedBitsPerN = 2.441716

// E14 validates the randomized engine's bit accounting against the
// ~2.44·n expected-randomness bound on fully symmetric rings — the
// inputs every deterministic algorithm in the registry provably cannot
// serve (Theorem 1 territory: zero asymmetry to break). For each n a
// seeded ensemble runs ItaiRodeh to termination and measures the drawn
// randomness: RandDraws fresh id draws, each worth log2(3) bits with
// the registry's 3-letter alphabet. The ensemble mean must land within
// 15% of 2.441716·n. Wire-level payload bits (what internal/sim's
// TotalBits meters and ringd bills) are reported alongside: the wire
// cost of shipping tokens is a constant factor over the entropy the
// protocol consumes, not part of the bound.
func (s *Suite) E14() (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Itai–Rodeh randomness: mean drawn bits vs the 2.4417·n expectation (symmetric rings)",
		Header: []string{"n", "seeds", "mean draws", "draws/n", "entropy bits", "bits/n",
			"2.4417n", "ratio", "mean wire bits", "mean msgs", "mean rounds"},
	}
	ns := []int{8, 16, 32}
	seeds := 400
	if s.Quick {
		ns, seeds = []int{8, 16}, 60
	}
	bitsPerDraw := math.Log2(float64(randalg.Alphabet))
	type out struct {
		draws, wireBits, msgs, rounds float64
	}
	outs, err := grid(s, len(ns), func(i int) (out, error) {
		n := ns[i]
		// The all-equal ring: every rotation is an automorphism, so only
		// randomness can break the tie.
		labels := make([]ring.Label, n)
		for j := range labels {
			labels[j] = 3
		}
		r, err := ring.New(labels)
		if err != nil {
			return out{}, err
		}
		var o out
		for sd := 0; sd < seeds; sd++ {
			// Seeds derived from the suite seed so the table is reproducible.
			seed := uint64(s.Seed)<<32 ^ uint64(n)<<16 ^ uint64(sd)
			p, err := randalg.New(n, randalg.Alphabet, r.LabelBits(), 0, seed)
			if err != nil {
				return out{}, err
			}
			res, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
			if err != nil {
				return out{}, fmt.Errorf("E14 n=%d seed=%#x: %w", n, seed, err)
			}
			o.draws += float64(res.RandDraws)
			o.wireBits += float64(res.TotalBits)
			o.msgs += float64(res.Messages)
			o.rounds += float64(len(res.BitsByRound))
		}
		inv := 1 / float64(seeds)
		o.draws *= inv
		o.wireBits *= inv
		o.msgs *= inv
		o.rounds *= inv
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	worst := 0.0
	for i, o := range outs {
		n := ns[i]
		entropy := o.draws * bitsPerDraw
		bound := irExpectedBitsPerN * float64(n)
		ratio := entropy / bound
		if dev := math.Abs(ratio - 1); dev > worst {
			worst = dev
		}
		t.AddRow(n, seeds, o.draws, o.draws/float64(n), entropy, entropy/float64(n),
			bound, ratio, o.wireBits, o.msgs, o.rounds)
	}
	t.Note("ensemble mean drawn bits within 15%% of 2.441716·n at every n: %v (worst deviation %.1f%%)",
		worst <= 0.15, worst*100)
	t.Note("each draw is one uniform pick from the %d-letter id alphabet = log2(%d) ≈ %.3f bits",
		randalg.Alphabet, randalg.Alphabet, bitsPerDraw)
	if worst > 0.15 {
		return t, fmt.Errorf("E14: drawn randomness deviates %.1f%% from 2.4417·n, tolerance 15%%", worst*100)
	}
	return t, nil
}
