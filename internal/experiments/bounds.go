package experiments

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
)

// E4 measures Algorithm Ak against every bound of Theorem 2 — time
// ≤ (2k+2)n, messages ≤ n²(2k+1)+n, space ≤ (2k+1)nb+2b+3 bits — on the
// worst case (all labels distinct, M = 1) and the best case (every label
// at maximum multiplicity M = k). Time is measured by the event-driven
// engine with unit delays, the paper's time-unit normalization.
func (s *Suite) E4() (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Theorem 2: Ak bounds (time ≤ (2k+2)n, msgs ≤ n²(2k+1)+n, space ≤ (2k+1)nb+2b+3)",
		Header: []string{"case", "n", "k", "time", "time bound", "t/bound",
			"msgs", "msg bound", "m/bound", "space bits", "space bound", "s/bound"},
	}
	type cse struct {
		name string
		r    *ring.Ring
		k    int
	}
	var cases []cse
	ns := []int{8, 16, 32, 48}
	ks := []int{2, 3, 4}
	if s.Quick {
		ns, ks = []int{8, 16}, []int{2, 3}
	}
	for _, n := range ns {
		for _, k := range ks {
			cases = append(cases, cse{"worst M=1", ring.Distinct(n), k})
			if n%k == 0 && n/k >= 2 {
				r, err := ring.BlockMultiplicity(n/k, k)
				if err != nil {
					return nil, err
				}
				cases = append(cases, cse{"best M=k", r, k})
			}
		}
	}
	type out struct {
		res        *sim.Result
		tr, mr, sr float64
	}
	outs, err := grid(s, len(cases), func(i int) (out, error) {
		c := cases[i]
		p, err := protoA(c.k, c.r)
		if err != nil {
			return out{}, err
		}
		res, err := sim.RunAsync(c.r, p, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			return out{}, fmt.Errorf("E4 %s n=%d k=%d: %w", c.name, c.r.N(), c.k, err)
		}
		n, k, b := c.r.N(), c.k, c.r.LabelBits()
		return out{
			res: res,
			tr:  res.TimeUnits / float64((2*k+2)*n),
			mr:  float64(res.Messages) / float64(n*n*(2*k+1)+n),
			sr:  float64(res.PeakSpaceBits) / float64((2*k+1)*n*b+2*b+3),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var timeRatio, msgRatio, spaceRatio []float64
	for i, o := range outs {
		c := cases[i]
		n, k, b := c.r.N(), c.k, c.r.LabelBits()
		timeBound := float64((2*k + 2) * n)
		msgBound := float64(n*n*(2*k+1) + n)
		spaceBound := float64((2*k+1)*n*b + 2*b + 3)
		timeRatio = append(timeRatio, o.tr)
		msgRatio = append(msgRatio, o.mr)
		spaceRatio = append(spaceRatio, o.sr)
		t.AddRow(c.name, n, k, o.res.TimeUnits, timeBound, o.tr,
			o.res.Messages, int(msgBound), o.mr, o.res.PeakSpaceBits, int(spaceBound), o.sr)
		if o.tr > 1 || o.mr > 1 || o.sr > 1 {
			t.Note("FAIL: bound exceeded for %s n=%d k=%d", c.name, n, k)
		}
	}
	t.Note("max ratios: time %.3f, messages %.3f, space %.3f (all must be ≤ 1)",
		stats.Max(timeRatio), stats.Max(msgRatio), stats.Max(spaceRatio))
	t.Note("Best case M=k finishes in ≈(1/k) of the worst-case string-growth time (m = ⌈(2k+1)/M⌉n).")
	return t, nil
}

// E5 measures Algorithm Bk against Theorem 4: time and messages O(k²n²)
// (shape checked by fitting c·k²n² and c·kn·X where X ≤ (k+1)n is the
// phase count), and space exactly 2⌈log k⌉ + 3b + 5 bits per process.
func (s *Suite) E5() (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Theorem 4: Bk time/messages O(k²n²), space = 2⌈log k⌉+3b+5",
		Header: []string{"case", "n", "k", "time", "k²n²", "t/k²n²",
			"msgs", "m/k²n²", "space bits", "space formula", "exact?"},
	}
	type cse struct {
		name string
		r    *ring.Ring
		k    int
	}
	var cases []cse
	ns := []int{8, 16, 24, 32}
	ks := []int{2, 3, 4}
	if s.Quick {
		ns, ks = []int{8, 16}, []int{2, 3}
	}
	for _, n := range ns {
		for _, k := range ks {
			cases = append(cases, cse{"worst M=1", ring.Distinct(n), k})
			if n%k == 0 && n/k >= 2 {
				r, err := ring.BlockMultiplicity(n/k, k)
				if err != nil {
					return nil, err
				}
				cases = append(cases, cse{"best M=k", r, k})
			}
		}
	}
	results, err := grid(s, len(cases), func(i int) (*sim.Result, error) {
		c := cases[i]
		p, err := protoB(c.k, c.r)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunAsync(c.r, p, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			return nil, fmt.Errorf("E5 %s n=%d k=%d: %w", c.name, c.r.N(), c.k, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, times, msgs []float64 // worst-case (M=1) series only: one constant
	for i, res := range results {
		c := cases[i]
		n, k, b := c.r.N(), c.k, c.r.LabelBits()
		k2n2 := float64(k * k * n * n)
		spaceFormula := 2*ceilLog2(k) + 3*b + 5
		exact := "yes"
		if res.PeakSpaceBits != spaceFormula {
			exact = fmt.Sprintf("NO (%d)", res.PeakSpaceBits)
			t.Note("FAIL: space %d != formula %d for n=%d k=%d", res.PeakSpaceBits, spaceFormula, n, k)
		}
		if c.name == "worst M=1" {
			xs = append(xs, k2n2)
			times = append(times, res.TimeUnits)
			msgs = append(msgs, float64(res.Messages))
		}
		t.AddRow(c.name, n, k, res.TimeUnits, int(k2n2), res.TimeUnits/k2n2,
			res.Messages, float64(res.Messages)/k2n2, res.PeakSpaceBits, spaceFormula, exact)
	}
	if c, r2, err := stats.FitProportional(xs, times); err == nil {
		t.Note("worst-case time ≈ %.4f · k²n² (R²=%.3f): within the O(k²n²) envelope", c, r2)
		if r2 < 0.95 {
			t.Note("FAIL: worst-case time does not follow k²n² (R²=%.3f)", r2)
		}
	}
	if c, r2, err := stats.FitProportional(xs, msgs); err == nil {
		t.Note("worst-case messages ≈ %.4f · k²n² (R²=%.3f)", c, r2)
	}
	t.Note("best-case (M=k) rows sit below the worst-case constant, as the phase count X shrinks.")
	t.Note("Space is input-independent: exactly the Theorem 4 formula on every ring.")
	return t, nil
}

// ceilLog2 mirrors core's counter cost: ⌈log2 v⌉ with ceilLog2(1) = 0.
func ceilLog2(v int) int {
	if v <= 1 {
		return 0
	}
	bitsN := 0
	for p := 1; p < v; p <<= 1 {
		bitsN++
	}
	return bitsN
}
