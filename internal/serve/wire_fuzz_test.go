package serve

import (
	"bytes"
	"testing"

	"repro/internal/ring"

	repro "repro"
)

// FuzzWireRequest throws arbitrary frame bodies at the RGV1 decoders —
// the exact bytes a wireConn hands to decodeWireHeader after stripping
// the length prefix, plus the response decoders the client runs on
// whatever a server sends back. Nothing here may panic; every body a
// decoder accepts must re-encode to a frame that decodes back to the
// same value. Truncations, bad versions, unknown types, and garbage
// must all come back as errors (the connection-close and ERROR-frame
// behavior built on these decoders is pinned by
// TestWireGarbageClosesConnection and
// TestWireBadRequestKeepsConnection).
func FuzzWireRequest(f *testing.F) {
	// Well-formed seeds, one per frame type, plus boundary garbage.
	f.Add(appendWireElect(nil, 1, repro.AlgorithmB, 3, []ring.Label{1, 3, 1, 3, 2, 2, 1, 2})[4:])
	f.Add(appendWireElect(nil, 0, repro.AlgorithmA, 2, []ring.Label{1, 2, 2})[4:])
	// The randomized engine's alg byte on a symmetric ring — a payload
	// that was unservable before ItaiRodeh joined the registry.
	f.Add(appendWireElect(nil, 2, repro.AlgorithmItaiRodeh, 3, []ring.Label{1, 2, 1, 2, 1, 2})[4:])
	// First alg byte past the registry: must decode to a typed error,
	// never a panic or a silently-accepted request.
	f.Add(appendWireElect(nil, 3, repro.AlgorithmItaiRodeh+1, 2, []ring.Label{1, 2, 2})[4:])
	f.Add(appendWireResult(nil, 7, true, 5, &canonOutcome{LeaderLabel: 1, Messages: 276, TimeUnits: 19.5, PeakSpaceBits: 88})[4:])
	f.Add(appendWireError(nil, 9, wireErrShed, 4, "overloaded")[4:])
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add([]byte{wireVersion, byte(wireFrameElect), 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{99, byte(wireFrameElect), 0, 0, 0, 0, 0, 0, 0, 1, 0, 4})
	f.Add(bytes.Repeat([]byte{0x80}, 32)) // unterminated varints

	f.Fuzz(func(t *testing.T, body []byte) {
		typ, id, payload, err := decodeWireHeader(body)
		if err != nil {
			return // header rejected without panicking: the conn would close
		}
		switch typ {
		case wireFrameElect:
			req, _, err := decodeWireElect(id, payload, nil, 4096)
			if err != nil {
				return // answered with a typed ERROR frame, never a panic
			}
			// Varints admit non-minimal encodings, so the bytes need not
			// round-trip — the decoded values must.
			re := appendWireElect(nil, req.id, req.alg, req.k, req.labels)
			typ2, id2, payload2, err := decodeWireHeader(re[4:])
			if err != nil || typ2 != wireFrameElect || id2 != req.id {
				t.Fatalf("re-encoding of accepted ELECT rejected: typ=%v id=%d err=%v", typ2, id2, err)
			}
			got, _, err := decodeWireElect(id2, payload2, nil, 4096)
			if err != nil {
				t.Fatalf("re-encoding of accepted ELECT rejected: %v", err)
			}
			if got.alg != req.alg || got.k != req.k || len(got.labels) != len(req.labels) {
				t.Fatalf("ELECT round trip: %+v, want %+v", got, req)
			}
			for i := range req.labels {
				if got.labels[i] != req.labels[i] {
					t.Fatalf("ELECT label %d: %v, want %v", i, got.labels[i], req.labels[i])
				}
			}
		case wireFrameResult:
			res, err := decodeWireResult(payload)
			if err != nil {
				return
			}
			re := appendWireResult(nil, id, res.cached, res.leader, &canonOutcome{
				LeaderLabel:   res.leaderLabel,
				Messages:      res.messages,
				TimeUnits:     res.timeUnits,
				PeakSpaceBits: res.peakSpaceBits,
			})
			got, err := decodeWireResult(re[4+wireHeaderLen:])
			if err != nil {
				t.Fatalf("re-encoding of accepted RESULT rejected: %v", err)
			}
			// NaN time fields do not compare equal; compare the re-decode
			// against the re-encode instead of the raw input.
			if got.cached != res.cached || got.leader != res.leader ||
				got.leaderLabel != res.leaderLabel || got.messages != res.messages ||
				got.peakSpaceBits != res.peakSpaceBits {
				t.Fatalf("RESULT round trip: %+v, want %+v", got, res)
			}
		case wireFrameError:
			ef, err := decodeWireError(payload)
			if err != nil {
				return
			}
			re := appendWireError(nil, id, ef.code, ef.retryAfter, ef.msg)
			got, err := decodeWireError(re[4+wireHeaderLen:])
			if err != nil {
				t.Fatalf("re-encoding of accepted ERROR rejected: %v", err)
			}
			if got != ef {
				t.Fatalf("ERROR round trip: %+v, want %+v", got, ef)
			}
		}
	})
}
