package serve

import (
	"container/list"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ring"
	"repro/internal/words"

	repro "repro"
)

// The serving hot-path benchmarks. BenchmarkServeHit is the PR's headline
// number: one cache hit through the modern path (pooled Booth
// canonicalization + byte-key sharded lookup) must run allocation-free
// and beat BenchmarkServeHitGlobalMutex — a faithful replica of the
// pre-shard hit path (allocating canonicalization, string-struct keys,
// one global mutex) — by the margin recorded in BENCH_PR4.json.

// benchRings builds count distinct random rings of n processes. Distinct
// by construction: process 0 of ring i carries the unique label 1000+i,
// so no two rings are rotation-equivalent.
func benchRings(count, n int) []*ring.Ring {
	rng := rand.New(rand.NewSource(1))
	rings := make([]*ring.Ring, count)
	for i := range rings {
		labels := make([]ring.Label, n)
		labels[0] = ring.Label(1000 + i)
		for j := 1; j < n; j++ {
			labels[j] = ring.Label(1 + rng.Intn(8))
		}
		rings[i] = ring.MustNew(labels...)
	}
	return rings
}

// rotations expands each ring into rots rotated variants, the shape of
// real traffic against a rotation-canonical cache: different request
// frames, one cache entry.
func rotations(rings []*ring.Ring, rots int) []*ring.Ring {
	out := make([]*ring.Ring, 0, len(rings)*rots)
	for _, rg := range rings {
		for d := 0; d < rots; d++ {
			out = append(out, rg.Rotate(d*rg.N()/rots))
		}
	}
	return out
}

// BenchmarkServeHit: the contention-free, allocation-free hit path.
// Pre-warms one entry per ring, then hammers lookups of rotated variants
// from parallel goroutines. Expect 0 allocs/op.
func BenchmarkServeHit(b *testing.B) {
	const nRings, nRots = 128, 4
	base := benchRings(nRings, 32)
	c := newResultCache(4096, 0)
	for _, rg := range base {
		key, _, sc := canonicalKey(rg.LabelsView(), repro.AlgorithmB, 3)
		e, owner := c.lookup(key, hashKey(key))
		sc.release()
		if !owner {
			b.Fatal("benchmark rings must be distinct")
		}
		c.finish(e, &canonOutcome{Leader: 0}, nil)
	}
	variants := rotations(base, nRots)
	labelSets := make([][]ring.Label, len(variants))
	for i, rg := range variants {
		labelSets[i] = rg.LabelsView()
	}

	var misses atomic.Int64
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(gid.Add(1)) * 131 // spread goroutines across the key space
		for pb.Next() {
			labels := labelSets[i%len(labelSets)]
			i++
			key, _, sc := canonicalKey(labels, repro.AlgorithmB, 3)
			_, owner := c.lookup(key, hashKey(key))
			sc.release()
			if owner {
				misses.Add(1)
			}
		}
	})
	b.StopTimer()
	if misses.Load() != 0 {
		b.Fatalf("%d unexpected misses on a pre-warmed cache", misses.Load())
	}
}

// legacyCache replicates the pre-PR result cache — one global mutex, a
// struct key holding the space-joined canonical string — so the two hit
// paths can be compared under identical load. Kept in the test binary
// only; the living implementation is cache.go.
type legacyCache struct {
	mu      sync.Mutex
	cap     int
	entries map[legacyKey]*legacyEntry
	lru     *list.List
}

type legacyKey struct {
	canon string
	alg   string
	k     int
}

type legacyItem struct {
	key legacyKey
	e   *legacyEntry
}

type legacyEntry struct {
	ready chan struct{}
	out   *canonOutcome
	err   error
	elem  *list.Element
}

func newLegacyCache(capacity int) *legacyCache {
	return &legacyCache{cap: capacity, entries: make(map[legacyKey]*legacyEntry), lru: list.New()}
}

func (c *legacyCache) lookup(key legacyKey) (*legacyEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		return e, false
	}
	e := &legacyEntry{ready: make(chan struct{})}
	e.elem = c.lru.PushFront(&legacyItem{key: key, e: e})
	c.entries[key] = e
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.cap; {
		prev := el.Prev()
		it := el.Value.(*legacyItem)
		select {
		case <-it.e.ready:
			delete(c.entries, it.key)
			c.lru.Remove(el)
		default:
		}
		el = prev
	}
	return e, true
}

func (c *legacyCache) finish(e *legacyEntry, out *canonOutcome) {
	c.mu.Lock()
	e.out = out
	c.mu.Unlock()
	close(e.ready)
}

// BenchmarkServeHitGlobalMutex: the pre-PR hit path, measured for the
// before/after record — per-request Booth table, rotated ring copy,
// string key build, and every lookup through one shared mutex.
func BenchmarkServeHitGlobalMutex(b *testing.B) {
	const nRings, nRots = 128, 4
	base := benchRings(nRings, 32)
	c := newLegacyCache(4096)
	for _, rg := range base {
		labels := rg.Labels()
		rot := words.LeastRotationIndex(labels)
		canon := rg.Rotate(rot)
		e, owner := c.lookup(legacyKey{canon: canonSpec(canon.Labels()), alg: repro.AlgorithmB.String(), k: 3})
		if !owner {
			b.Fatal("benchmark rings must be distinct")
		}
		c.finish(e, &canonOutcome{Leader: 0})
	}
	variants := rotations(base, nRots)

	var misses atomic.Int64
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(gid.Add(1)) * 131
		for pb.Next() {
			rg := variants[i%len(variants)]
			i++
			labels := rg.Labels()
			rot := words.LeastRotationIndex(labels)
			canon := rg.Rotate(rot)
			_, owner := c.lookup(legacyKey{canon: canonSpec(canon.Labels()), alg: repro.AlgorithmB.String(), k: 3})
			if owner {
				misses.Add(1)
			}
		}
	})
	b.StopTimer()
	if misses.Load() != 0 {
		b.Fatalf("%d unexpected misses on a pre-warmed cache", misses.Load())
	}
}

// BenchmarkServeMiss: the insert/evict path — every lookup interns a key,
// allocates an entry, and (past capacity) evicts from its shard's LRU.
func BenchmarkServeMiss(b *testing.B) {
	const keys = 8192
	sets := make([][]ring.Label, keys)
	rng := rand.New(rand.NewSource(2))
	for i := range sets {
		labels := make([]ring.Label, 32)
		labels[0] = ring.Label(10000 + i) // unique per set: never a hit until wrap
		for j := 1; j < len(labels); j++ {
			labels[j] = ring.Label(1 + rng.Intn(8))
		}
		sets[i] = labels
	}
	c := newResultCache(512, 0)
	var idx atomic.Int64
	out := &canonOutcome{Leader: 0}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			labels := sets[int(idx.Add(1))%keys]
			key, _, sc := canonicalKey(labels, repro.AlgorithmA, 2)
			e, owner := c.lookup(key, hashKey(key))
			sc.release()
			if owner {
				c.finish(e, out, nil)
			}
		}
	})
}

// BenchmarkServeSingleflight: the dedup path — lookups landing on an
// entry that is still in flight. This is what every concurrent duplicate
// of a miss pays while the one owner runs the election.
func BenchmarkServeSingleflight(b *testing.B) {
	rg := benchRings(1, 32)[0]
	c := newResultCache(64, 0)
	key, _, sc := canonicalKey(rg.LabelsView(), repro.AlgorithmB, 3)
	e, owner := c.lookup(key, hashKey(key))
	sc.release()
	if !owner {
		b.Fatal("first lookup must own the entry")
	}
	labels := rg.LabelsView()
	var owners atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			key, _, sc := canonicalKey(labels, repro.AlgorithmB, 3)
			_, owner := c.lookup(key, hashKey(key))
			sc.release()
			if owner {
				owners.Add(1)
			}
		}
	})
	b.StopTimer()
	c.finish(e, &canonOutcome{Leader: 0}, nil)
	if owners.Load() != 0 {
		b.Fatalf("%d lookups became owner of an already in-flight entry", owners.Load())
	}
}

// TestBenchRingsDistinct guards the benchmark's own assumption: the
// generated rings canonicalize to distinct keys.
func TestBenchRingsDistinct(t *testing.T) {
	rings := benchRings(64, 16)
	seen := map[string]bool{}
	for _, rg := range rings {
		key, _, sc := canonicalKey(rg.LabelsView(), repro.AlgorithmB, 3)
		ks := string(key)
		sc.release()
		if seen[ks] {
			t.Fatalf("duplicate canonical key for ring %s", canonSpec(rg.LabelsView()))
		}
		seen[ks] = true
	}
	// And rotations of one ring must all produce the same key.
	rg := rings[0]
	base, _, bsc := canonicalKey(rg.LabelsView(), repro.AlgorithmB, 3)
	want := string(base)
	bsc.release()
	for d := 1; d < rg.N(); d++ {
		key, _, sc := canonicalKey(rg.Rotate(d).LabelsView(), repro.AlgorithmB, 3)
		got := string(key)
		sc.release()
		if got != want {
			t.Fatalf("rotation %d produced key %x, want %x", d, got, want)
		}
	}
}

// TestHitPathAllocationFree pins the tentpole claim outside the
// benchmark harness: a cache hit (canonicalize + lookup + release)
// performs zero heap allocations.
func TestHitPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime bypasses sync.Pool; allocation counts are distorted")
	}
	rg := benchRings(1, 32)[0]
	c := newResultCache(64, 0)
	key, _, sc := canonicalKey(rg.LabelsView(), repro.AlgorithmB, 3)
	e, owner := c.lookup(key, hashKey(key))
	sc.release()
	if !owner {
		t.Fatal("first lookup must own the entry")
	}
	c.finish(e, &canonOutcome{Leader: 0}, nil)
	labels := rg.Rotate(5).LabelsView()
	n := testing.AllocsPerRun(200, func() {
		key, _, sc := canonicalKey(labels, repro.AlgorithmB, 3)
		if _, owner := c.lookup(key, hashKey(key)); owner {
			t.Fatal("warm key missed")
		}
		sc.release()
	})
	if n != 0 {
		t.Errorf("hit path allocates %v times per op, want 0", n)
	}
}
