package serve

import (
	"math"
	"sync"
	"time"
)

// RateLimitConfig configures the per-peer token-bucket rate limiter on
// the serving edge. A peer is the authenticated static-key fingerprint
// on an encrypted port, falling back to the remote address when the
// transport is plaintext — so on a secured deployment a flooding tenant
// cannot dodge its bucket by cycling source ports.
type RateLimitConfig struct {
	// Rate is the sustained request budget per peer, in requests per
	// second (the bucket refill rate). Required (> 0).
	Rate float64
	// Burst is the bucket capacity: how many requests a peer may issue
	// back to back after idling. Default: ceil(Rate), at least 1.
	Burst int
	// MaxPeers bounds the tracked-peer table; the least recently seen
	// peer is evicted at the bound. Default 4096.
	MaxPeers int
}

func (c RateLimitConfig) withDefaults() RateLimitConfig {
	if c.Burst <= 0 {
		c.Burst = int(math.Ceil(c.Rate))
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxPeers <= 0 {
		c.MaxPeers = 4096
	}
	return c
}

// tokenBucket is one peer's budget: a continuously refilling counter
// clamped at Burst.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is the shared table of per-peer buckets. One mutex guards
// the table; the critical section is a map lookup and a few float ops,
// which is noise next to even a cached election, and sidesteps the
// eviction races a striped design would invite.
type rateLimiter struct {
	cfg RateLimitConfig

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newRateLimiter(cfg RateLimitConfig) *rateLimiter {
	return &rateLimiter{cfg: cfg.withDefaults(), buckets: make(map[string]*tokenBucket)}
}

// allow spends one token from peer's bucket. When the bucket is empty
// it reports false with the whole-seconds Retry-After estimate until a
// token refills (at least 1, matching the admission layer's hint
// semantics).
func (rl *rateLimiter) allow(peer string, now time.Time) (ok bool, retryAfter int) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[peer]
	if b == nil {
		if len(rl.buckets) >= rl.cfg.MaxPeers {
			rl.evictOldestLocked()
		}
		b = &tokenBucket{tokens: float64(rl.cfg.Burst), last: now}
		rl.buckets[peer] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(float64(rl.cfg.Burst), b.tokens+elapsed*rl.cfg.Rate)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / rl.cfg.Rate
	retryAfter = int(math.Ceil(wait))
	if retryAfter < 1 {
		retryAfter = 1
	}
	return false, retryAfter
}

// evictOldestLocked drops the least recently seen peer. Linear scan at
// the bound only; with the default 4096-peer table this runs rarely and
// costs microseconds.
func (rl *rateLimiter) evictOldestLocked() {
	var oldestKey string
	var oldest time.Time
	first := true
	for k, b := range rl.buckets {
		if first || b.last.Before(oldest) {
			oldestKey, oldest, first = k, b.last, false
		}
	}
	if !first {
		delete(rl.buckets, oldestKey)
	}
}
