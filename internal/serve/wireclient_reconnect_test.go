package serve

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/netring"
	"repro/internal/ring"

	repro "repro"
)

// reconnectBackoff keeps the redial loop fast enough for a test but with
// enough attempt budget to ride out a deliberate server outage.
var reconnectBackoff = netring.Backoff{
	Base:     2 * time.Millisecond,
	Max:      20 * time.Millisecond,
	Attempts: 200,
}

// bootWire starts a fresh Server+WireServer pair on ln and returns a
// shutdown func that tears both down (abandoning ln to the caller).
func bootWire(t *testing.T, ln net.Listener) func() {
	t.Helper()
	s := New(Config{QueueDepth: 64})
	ws := NewWireServer(s)
	served := make(chan error, 1)
	go func() { served <- ws.Serve(ln) }()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		if err := <-served; !errors.Is(err, ErrWireServerClosed) {
			t.Errorf("Serve returned %v, want ErrWireServerClosed", err)
		}
		s.Close()
	}
}

// relisten rebinds the exact address a closed listener vacated, retrying
// briefly in case the kernel has not released it yet.
func relisten(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWireClientReconnects kills the server out from under a pooled
// connection and checks the client recovers on its own: the next request
// through the dead slot redials (paced by netring.Backoff) and succeeds
// against the restarted server — including when the request arrives
// while the server is still down and the redial loop has to wait it out.
func TestWireClientReconnects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	shutdown := bootWire(t, ln)

	c, err := DialWireBackoff(addr, 1, 5*time.Second, reconnectBackoff)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r := ring.Figure1()
	first, err := c.Elect(r.LabelsView(), repro.AlgorithmB, 3)
	if err != nil {
		t.Fatalf("elect before kill: %v", err)
	}

	// Kill the server: the pooled connection's reader sees the close and
	// marks the slot dead. A restarted server on the same address must be
	// reachable through the same client with no intervention.
	shutdown()
	shutdown = bootWire(t, relisten(t, addr))
	second, err := c.Elect(r.LabelsView(), repro.AlgorithmB, 3)
	if err != nil {
		t.Fatalf("elect after restart: %v", err)
	}
	if second.Leader != first.Leader || second.LeaderLabel != first.LeaderLabel {
		t.Errorf("restart changed the outcome: %+v vs %+v", second, first)
	}

	// Kill it again and issue the request while nothing is listening:
	// the redial loop must absorb the outage and complete once the
	// server returns.
	shutdown()
	done := make(chan error, 1)
	go func() {
		out, err := c.Elect(r.LabelsView(), repro.AlgorithmB, 3)
		if err == nil && out.Leader != first.Leader {
			err = errors.New("outage-spanning elect disagreed on the leader")
		}
		done <- err
	}()
	time.Sleep(25 * time.Millisecond) // let the redial loop hit refused dials
	shutdown = bootWire(t, relisten(t, addr))
	defer shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("elect spanning the outage: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("elect never recovered after the server came back")
	}
}

// TestWireClientCloseCancelsRedial closes the client while a call is
// parked in the redial backoff loop against a dead address: the call
// must fail promptly with ErrWireClientClosed, not run out the attempt
// budget.
func TestWireClientCloseCancelsRedial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	shutdown := bootWire(t, ln)

	b := netring.Backoff{Base: 50 * time.Millisecond, Max: 50 * time.Millisecond, Attempts: 1000}
	c, err := DialWireBackoff(addr, 1, 5*time.Second, b)
	if err != nil {
		t.Fatal(err)
	}
	shutdown() // strand the client against a dead address

	done := make(chan error, 1)
	go func() {
		_, err := c.Elect(ring.Figure1().LabelsView(), repro.AlgorithmB, 3)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it enter the redial loop
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWireClientClosed) {
			t.Fatalf("got %v, want ErrWireClientClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel the redial loop")
	}
}
