package serve

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ring"

	repro "repro"
)

// missBenchRing is the n=16 miss-path benchmark ring: the doubled
// analogue of the paper's Figure 1 instance (doubling Figure 1's n=8
// ring literally would make it symmetric), drawn with multiplicity
// bound 3 so AlgorithmA with k=3 serves it.
func missBenchRing(tb testing.TB) *ring.Ring {
	tb.Helper()
	r, err := repro.RandomRing(1, 16, 3, 8)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// BenchmarkServeMissKernel is the after side of the miss-path pair: one
// cold election per iteration through runElectionInto against a warmed
// per-worker scratch arena — the path every admission worker takes on a
// cache miss. Compare against BenchmarkServeMissLegacy; cmd/benchdiff's
// miss_bench section enforces the allocs/op and ns/op floors between
// the two.
func BenchmarkServeMissKernel(b *testing.B) {
	s := New(Config{Workers: 1})
	defer s.Close()
	canon := missBenchRing(b)
	sc := repro.NewElectScratch()
	if _, err := s.runElectionInto(canon, repro.AlgorithmA, 3, "sim", sc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.runElectionInto(canon, repro.AlgorithmA, 3, "sim", sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeMissLegacy is the before side: the same election through
// the allocating runElection path (ProtocolFor + RunAsync + fresh
// Outcome) that the miss path used before the scratch arenas.
func BenchmarkServeMissLegacy(b *testing.B) {
	s := New(Config{Workers: 1})
	defer s.Close()
	canon := missBenchRing(b)
	if _, err := s.runElection(canon, repro.AlgorithmA, 3, "sim"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.runElection(canon, repro.AlgorithmA, 3, "sim"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMissPathAllocationBudget pins the warmed miss path's allocation
// budget, the miss-side sibling of TestHitPathAllocationFree: after
// warm-up, a cold election through runElectionInto may allocate only the
// result it hands to the cache — the canonOutcome (which outlives the
// arena) and the Outcome staging value that escapes into it. Everything
// the election itself touches is arena storage.
func TestMissPathAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	s := New(Config{Workers: 1})
	defer s.Close()
	canon := missBenchRing(t)
	sc := repro.NewElectScratch()
	run := func() {
		if _, err := s.runElectionInto(canon, repro.AlgorithmA, 3, "sim", sc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm the arena: machines, queue, protocol cache
	}
	const budget = 2 // canonOutcome + escaping Outcome
	if avg := testing.AllocsPerRun(200, run); avg > budget {
		t.Errorf("warmed miss path allocates %.1f objects per election, budget %d", avg, budget)
	}
}

// soakRings draws count distinct rings of size n with unique labels —
// unique labels make a ring servable by every registered algorithm
// (multiplicity 1 is within any k, unique implies asymmetric).
func soakRings(tb testing.TB, count, n int) []*ring.Ring {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	rings := make([]*ring.Ring, count)
	for i := range rings {
		labels := make([]ring.Label, n)
		for j, p := range rng.Perm(n) {
			// Offset by i so every ring's label set is distinct and no
			// two rings share a canonical form.
			labels[j] = ring.Label(1 + p + i*n)
		}
		rings[i] = ring.MustNew(labels...)
	}
	return rings
}

// TestServeMissConcurrentSoak hammers one Server with concurrent cold
// misses across every registered algorithm, with Crosscheck=1 so each
// cache hit is re-verified through the deterministic simulator. Every
// response is also checked against a locally computed repro.Elect
// outcome. Zero divergences tolerated. Run under -race this doubles as
// the data-race soak over the per-worker scratch arenas.
func TestServeMissConcurrentSoak(t *testing.T) {
	var mu sync.Mutex
	var diverged []string
	s := New(Config{
		Workers:    4,
		Crosscheck: 1,
		OnDivergence: func(d string) {
			mu.Lock()
			diverged = append(diverged, d)
			mu.Unlock()
		},
	})
	defer s.Close()
	h := s.Handler()

	const k = 3
	type job struct {
		alg  repro.Algorithm
		spec string
		want *repro.Outcome
	}
	var jobs []job
	for _, alg := range repro.Algorithms() {
		for _, r := range soakRings(t, 12, 9) {
			want, err := repro.Elect(r, alg, k)
			if err != nil {
				t.Fatalf("%s on %v: %v", alg, r.Labels(), err)
			}
			jobs = append(jobs, job{alg: alg, spec: canonSpec(r.Labels()), want: want})
		}
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		// Two replicas per job: the first is a cold miss through the
		// arena, the replica either dedups in singleflight or hits the
		// cache and is crosschecked.
		for rep := 0; rep < 2; rep++ {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				var resp ElectResponse
				code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: j.spec, Alg: j.alg.String(), K: k}, &resp)
				if code != 200 {
					t.Errorf("%s on %s: status %d", j.alg, j.spec, code)
					return
				}
				if resp.Leader != j.want.Leader || resp.LeaderLabel != j.want.LeaderLabel.String() ||
					resp.Messages != j.want.Messages || resp.TotalBits != j.want.TotalBits {
					t.Errorf("%s on %s: served (leader %d %s, %d msgs, %d bits), local Elect (leader %d %s, %d msgs, %d bits)",
						j.alg, j.spec, resp.Leader, resp.LeaderLabel, resp.Messages, resp.TotalBits,
						j.want.Leader, j.want.LeaderLabel, j.want.Messages, j.want.TotalBits)
				}
			}(j)
		}
	}
	wg.Wait()
	if len(diverged) != 0 {
		t.Fatalf("%d crosscheck divergences, first: %s", len(diverged), diverged[0])
	}
}

// TestMissPathAllocFlatOver10k drives 10k cold elections through the
// real admission path — submit, dispatcher batch, pprof labels, worker
// arena — and asserts the per-election allocation count stays within a
// flat pinned budget: no per-batch or cumulative growth. The budget
// covers only the per-request constants (task, done channel, closures,
// pprof label set and contexts, canonOutcome); the election itself is
// arena storage.
func TestMissPathAllocFlatOver10k(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	if testing.Short() {
		t.Skip("10k-election soak skipped in -short mode")
	}
	// BatchSize 1 keeps the dispatcher from waiting batchWait for
	// companions that never come — submissions here are sequential.
	s := New(Config{Workers: 1, BatchSize: 1})
	defer s.Close()
	canon := missBenchRing(t)
	run := func() {
		err := s.adm.submit(t.Context(), "A", "sim", func(sc *repro.ElectScratch) {
			if _, err := s.runElectionInto(canon, repro.AlgorithmA, 3, "sim", sc); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < 5; i++ {
		run() // warm arena and dispatcher
	}
	const budget = 30 // per-request constants; not a per-election heap
	half := func() float64 { return testing.AllocsPerRun(5000, run) }
	first, second := half(), half()
	for i, avg := range []float64{first, second} {
		if avg > budget {
			t.Errorf("half %d: %.1f allocs per election through admission, budget %d", i+1, avg, budget)
		}
	}
	// Flatness: the second 5k must not allocate more than the first —
	// growth would mean the arenas or the dispatcher leak per election.
	if second > first+2 {
		t.Errorf("allocation count grew across 10k elections: first half %.1f, second half %.1f", first, second)
	}
}
