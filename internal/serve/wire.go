// RGV1, the binary wire protocol of the ringd v2 serving path. The
// HTTP/JSON surface (serve.go) is the compatibility layer; this is the
// hot one: after PR 4 drove a cached election hit to under a
// microsecond, HTTP parsing and JSON marshaling dominated end-to-end
// cost, so the v2 path replaces both with length-prefixed binary frames
// over a persistent, multiplexed connection — the same framing
// discipline as internal/netring's ring links, applied to the serving
// port.
//
// Connection layout: the client opens with the 4-byte magic "RGV1",
// then both directions exchange length-prefixed frames:
//
//	[u32 length | body]
//	body: ver(1) type(1) id(8, big-endian) payload…
//
// Frame vocabulary (payload after the 10-byte header):
//
//	ELECT  (1): alg(1) varint(k) varint(label)…      client → server
//	RESULT (2): flags(1) varint(leader) varint(leaderLabel)
//	            varint(messages) varint(peakSpaceBits)
//	            timeUnits(8, float64 bits)           server → client
//	ERROR  (3): code(1) varint(retryAfterSeconds) message…
//
// The ELECT payload after the algorithm byte is deliberately the same
// varint encoding as the sharded cache's compact key (cache.go
// appendCacheKey) — a request is decoded into pooled scratch, Booth-
// canonicalized, and looked up without ever materializing a ring.Ring on
// the hit path. Requests are pipelined: a client may have any number of
// ELECTs in flight on one connection, and RESULT/ERROR frames complete
// out of order, matched by the 64-bit request id. Shedding is a typed
// ERROR frame carrying the same Retry-After estimate the HTTP path puts
// in its 429 header.
//
// Malformed input never panics: a frame with a bad version, unknown
// type, or undecodable header kills the connection (the stream can no
// longer be trusted), while a well-framed request with a bad payload —
// out-of-range k, too many labels, an unservable ring — is answered
// with an ERROR frame and the connection stays usable.
package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ring"

	repro "repro"
)

// wireMagic opens every RGV1 connection; a listener that reads anything
// else hangs up before parsing a single frame, so an HTTP client pointed
// at the wire port fails fast instead of confusing the framer.
const wireMagic = "RGV1"

// wireVersion is carried in every frame body; frames from any other
// version are rejected.
const wireVersion = 1

// wireFrameType tags the frame vocabulary.
type wireFrameType uint8

const (
	// wireFrameElect is a pipelined election request.
	wireFrameElect wireFrameType = 1
	// wireFrameResult answers one ELECT by request id.
	wireFrameResult wireFrameType = 2
	// wireFrameError answers one ELECT with a typed failure.
	wireFrameError wireFrameType = 3
)

// String names the frame type for diagnostics.
func (t wireFrameType) String() string {
	switch t {
	case wireFrameElect:
		return "ELECT"
	case wireFrameResult:
		return "RESULT"
	case wireFrameError:
		return "ERROR"
	default:
		return fmt.Sprintf("FRAME(%d)", uint8(t))
	}
}

// wireErrCode types an ERROR frame. The codes mirror the HTTP statuses
// the compatibility path answers, so one client-side mapping covers both
// protocols.
type wireErrCode uint8

const (
	// wireErrBadRequest: the request was well-framed but unservable
	// (bad algorithm, k out of range, oversized or symmetric ring). HTTP
	// twin: 400.
	wireErrBadRequest wireErrCode = 1
	// wireErrShed: the admission layer refused the election; the frame's
	// retry-after field carries the backoff estimate. HTTP twin: 429 +
	// Retry-After.
	wireErrShed wireErrCode = 2
	// wireErrDraining: the server is shutting down. HTTP twin: 503.
	wireErrDraining wireErrCode = 3
	// wireErrInternal: the election failed. HTTP twin: 500.
	wireErrInternal wireErrCode = 4
)

// httpStatus maps an error code onto the equivalent HTTP status, the
// currency of the shared metrics registry and of ringload's accounting.
func (c wireErrCode) httpStatus() int {
	switch c {
	case wireErrBadRequest:
		return 400
	case wireErrShed:
		return 429
	case wireErrDraining:
		return 503
	default:
		return 500
	}
}

const (
	// wireHeaderLen is ver + type + id, present in every frame body.
	wireHeaderLen = 1 + 1 + 8
	// wireMaxVarint bounds one varint's encoded size.
	wireMaxVarint = binary.MaxVarintLen64
	// wireMaxErrMsg clips the human-readable text of an ERROR frame;
	// diagnostics never balloon a frame.
	wireMaxErrMsg = 256
	// wireMaxK mirrors the HTTP handler's bound on the multiplicity
	// parameter.
	wireMaxK = 1024
	// wireMaxWriteBatch caps the frames coalesced into one Write: the
	// batched sender flushes at the latest after 64 responses, the same
	// per-syscall bound as internal/netring's link sender.
	wireMaxWriteBatch = 64
)

// wireMaxRequestBody is the largest ELECT body a server accepting rings
// of up to maxRing processes will read: header + alg byte + k varint +
// maxRing label varints.
func wireMaxRequestBody(maxRing int) int {
	return wireHeaderLen + 1 + wireMaxVarint + maxRing*wireMaxVarint
}

// wireMaxResponseBody is the largest RESULT/ERROR body a client needs to
// accept: header + flags/code + four varints + the float64 time field,
// or header + code + retry varint + clipped message.
const wireMaxResponseBody = wireHeaderLen + 1 + 4*wireMaxVarint + 8 + wireMaxErrMsg

// beginWireFrame appends a zeroed length prefix plus the frame header
// and returns the prefix offset for finishWireFrame.
func beginWireFrame(dst []byte, typ wireFrameType, id uint64) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, wireVersion, byte(typ))
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], id)
	dst = append(dst, idb[:]...)
	return dst, start
}

// finishWireFrame backfills the length prefix begun by beginWireFrame.
func finishWireFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// appendWireElect appends one length-prefixed ELECT frame. The payload
// past the algorithm byte uses the exact varint encoding of the result
// cache's compact key, so the server can canonicalize and hash a request
// without re-encoding it.
func appendWireElect(dst []byte, id uint64, alg repro.Algorithm, k int, labels []ring.Label) []byte {
	dst, start := beginWireFrame(dst, wireFrameElect, id)
	dst = append(dst, byte(alg))
	dst = binary.AppendVarint(dst, int64(k))
	for _, l := range labels {
		dst = binary.AppendVarint(dst, int64(l))
	}
	return finishWireFrame(dst, start)
}

// appendWireResult appends one length-prefixed RESULT frame. leader is
// already mapped into the requester's frame; out stays in the canonical
// frame and is never mutated.
func appendWireResult(dst []byte, id uint64, cached bool, leader int, out *canonOutcome) []byte {
	dst, start := beginWireFrame(dst, wireFrameResult, id)
	var flags byte
	if cached {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, int64(leader))
	dst = binary.AppendVarint(dst, int64(out.LeaderLabel))
	dst = binary.AppendVarint(dst, int64(out.Messages))
	dst = binary.AppendVarint(dst, int64(out.PeakSpaceBits))
	var tu [8]byte
	binary.BigEndian.PutUint64(tu[:], math.Float64bits(out.TimeUnits))
	dst = append(dst, tu[:]...)
	return finishWireFrame(dst, start)
}

// appendWireError appends one length-prefixed ERROR frame; msg is
// clipped to wireMaxErrMsg bytes.
func appendWireError(dst []byte, id uint64, code wireErrCode, retryAfter int, msg string) []byte {
	dst, start := beginWireFrame(dst, wireFrameError, id)
	dst = append(dst, byte(code))
	dst = binary.AppendVarint(dst, int64(retryAfter))
	if len(msg) > wireMaxErrMsg {
		msg = msg[:wireMaxErrMsg]
	}
	dst = append(dst, msg...)
	return finishWireFrame(dst, start)
}

// decodeWireHeader splits a frame body into its common header. It is the
// only part of a frame a peer must parse before deciding whether the
// stream is still trustworthy: a header-level error is fatal to the
// connection.
func decodeWireHeader(body []byte) (typ wireFrameType, id uint64, payload []byte, err error) {
	if len(body) < wireHeaderLen {
		return 0, 0, nil, fmt.Errorf("serve: wire frame body %d bytes, want >= %d", len(body), wireHeaderLen)
	}
	if body[0] != wireVersion {
		return 0, 0, nil, fmt.Errorf("serve: wire version %d, want %d", body[0], wireVersion)
	}
	typ = wireFrameType(body[1])
	if typ < wireFrameElect || typ > wireFrameError {
		return 0, 0, nil, fmt.Errorf("serve: unknown wire frame type %d", body[1])
	}
	return typ, binary.BigEndian.Uint64(body[2:]), body[wireHeaderLen:], nil
}

// wireElect is one decoded ELECT request. Labels alias the scratch slice
// passed to decodeWireElect and are only valid until its next reuse.
type wireElect struct {
	id     uint64
	alg    repro.Algorithm
	k      int
	labels []ring.Label
}

// decodeWireElect parses an ELECT payload into scratch (grown as needed,
// returned for reuse). It validates everything checkable without ring
// analysis — algorithm byte, k range, label count — so garbage never
// reaches the cache or an engine; deeper validation (multiplicity,
// asymmetry) happens on the miss path where the ring is materialized
// anyway. It never panics on arbitrary input.
func decodeWireElect(id uint64, payload []byte, scratch []ring.Label, maxLabels int) (wireElect, []ring.Label, error) {
	req := wireElect{id: id}
	if len(payload) < 2 {
		return req, scratch, fmt.Errorf("serve: ELECT payload %d bytes, want >= 2", len(payload))
	}
	alg := repro.Algorithm(payload[0])
	if !repro.ValidAlgorithm(alg) {
		return req, scratch, fmt.Errorf("serve: ELECT with unknown algorithm byte %d", payload[0])
	}
	req.alg = alg
	rest := payload[1:]
	k, n := binary.Varint(rest)
	if n <= 0 {
		return req, scratch, fmt.Errorf("serve: ELECT with undecodable k varint")
	}
	if k < 1 || k > wireMaxK {
		return req, scratch, fmt.Errorf("serve: k must be in [1, %d], got %d", wireMaxK, k)
	}
	req.k = int(k)
	rest = rest[n:]
	scratch = scratch[:0]
	for len(rest) > 0 {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return req, scratch, fmt.Errorf("serve: ELECT with undecodable label varint at byte %d", len(payload)-len(rest))
		}
		if len(scratch) >= maxLabels {
			return req, scratch, fmt.Errorf("serve: ELECT with more than %d labels", maxLabels)
		}
		scratch = append(scratch, ring.Label(v))
		rest = rest[n:]
	}
	if len(scratch) < 2 {
		return req, scratch, fmt.Errorf("serve: ELECT with %d labels, want >= 2", len(scratch))
	}
	req.labels = scratch
	return req, scratch, nil
}

// wireResult is one decoded RESULT payload.
type wireResult struct {
	cached        bool
	leader        int
	leaderLabel   ring.Label
	messages      int
	peakSpaceBits int
	timeUnits     float64
}

// decodeWireResult parses a RESULT payload.
func decodeWireResult(payload []byte) (wireResult, error) {
	var res wireResult
	if len(payload) < 1 {
		return res, fmt.Errorf("serve: RESULT payload empty")
	}
	res.cached = payload[0]&1 != 0
	rest := payload[1:]
	fields := [4]int64{}
	for i := range fields {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return res, fmt.Errorf("serve: RESULT with undecodable varint (field %d)", i)
		}
		fields[i] = v
		rest = rest[n:]
	}
	res.leader = int(fields[0])
	res.leaderLabel = ring.Label(fields[1])
	res.messages = int(fields[2])
	res.peakSpaceBits = int(fields[3])
	if len(rest) != 8 {
		return res, fmt.Errorf("serve: RESULT tail %d bytes, want 8", len(rest))
	}
	res.timeUnits = math.Float64frombits(binary.BigEndian.Uint64(rest))
	return res, nil
}

// wireErrFrame is one decoded ERROR payload.
type wireErrFrame struct {
	code       wireErrCode
	retryAfter int
	msg        string
}

// decodeWireError parses an ERROR payload.
func decodeWireError(payload []byte) (wireErrFrame, error) {
	var e wireErrFrame
	if len(payload) < 1 {
		return e, fmt.Errorf("serve: ERROR payload empty")
	}
	e.code = wireErrCode(payload[0])
	if e.code < wireErrBadRequest || e.code > wireErrInternal {
		return e, fmt.Errorf("serve: ERROR with unknown code %d", payload[0])
	}
	rest := payload[1:]
	ra, n := binary.Varint(rest)
	if n <= 0 {
		return e, fmt.Errorf("serve: ERROR with undecodable retry-after varint")
	}
	if ra < 0 {
		return e, fmt.Errorf("serve: ERROR with negative retry-after %d", ra)
	}
	e.retryAfter = int(ra)
	rest = rest[n:]
	if len(rest) > wireMaxErrMsg {
		return e, fmt.Errorf("serve: ERROR message %d bytes, limit %d", len(rest), wireMaxErrMsg)
	}
	e.msg = string(rest)
	return e, nil
}
