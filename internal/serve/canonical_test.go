package serve

import (
	"bytes"
	"testing"

	"repro/internal/ring"

	repro "repro"
)

// TestCanonicalKeyGoldenBytes pins the exported key's exact byte layout.
// Anything that changes these bytes silently re-keys every deployed
// cache and re-routes every canonical class in a cluster — it must be a
// deliberate, versioned decision, so the expected values are spelled out
// literally rather than derived from the encoder under test.
func TestCanonicalKeyGoldenBytes(t *testing.T) {
	cases := []struct {
		name   string
		labels []ring.Label
		alg    repro.Algorithm
		k      int
		want   []byte
		rot    int
	}{
		{
			// Figure 1's ring "1 3 1 3 2 2 1 2": the least rotation starts
			// at index 0 (1 2 ... sorts below every other start? no: the
			// canonical form is "1 2 1 3 1 3 2 2", starting at index 6).
			// Zigzag varints: 1→0x02, 2→0x04, 3→0x06; k=3→0x06.
			name:   "figure1",
			labels: []ring.Label{1, 3, 1, 3, 2, 2, 1, 2},
			alg:    repro.AlgorithmB, // algorithm byte 1
			k:      3,
			want:   []byte{1, 0x06, 0x02, 0x04, 0x02, 0x06, 0x02, 0x06, 0x04, 0x04},
			rot:    6,
		},
		{
			// Already canonical: rotation 0, algorithm A (byte 0), k=2.
			name:   "already-canonical",
			labels: []ring.Label{1, 2, 2},
			alg:    repro.AlgorithmA,
			k:      2,
			want:   []byte{0, 0x04, 0x02, 0x04, 0x04},
			rot:    0,
		},
		{
			// A label and k large enough to need two varint bytes:
			// 64 zigzags to 128 = 0x80 0x01; k=200 zigzags to 400 = 0x90 0x03.
			name:   "multi-byte-varints",
			labels: []ring.Label{64, 1},
			alg:    repro.AlgorithmKnownN, // algorithm byte 5
			k:      200,
			want:   []byte{5, 0x90, 0x03, 0x02, 0x80, 0x01},
			rot:    1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			key, rot := CanonicalKey(tc.labels, tc.alg, tc.k)
			if !bytes.Equal(key, tc.want) {
				t.Errorf("CanonicalKey(%v, %v, %d) = % x, want % x", tc.labels, tc.alg, tc.k, key, tc.want)
			}
			if rot != tc.rot {
				t.Errorf("rotation = %d, want %d", rot, tc.rot)
			}
		})
	}
}

// TestCanonicalKeyMatchesCacheAndWire pins the three-way byte agreement
// the cluster's routing correctness rests on: the exported key, the
// internal cache key, and the RGV1 ELECT payload (after the algorithm
// byte) are the same bytes for every rotation of a ring.
func TestCanonicalKeyMatchesCacheAndWire(t *testing.T) {
	base := ring.Figure1()
	alg, k := repro.AlgorithmB, 3
	canonical, _ := CanonicalKey(base.LabelsView(), alg, k)
	for d := 0; d < base.N(); d++ {
		rotated := base.Rotate(d)
		labels := rotated.LabelsView()

		got, _ := CanonicalKey(labels, alg, k)
		if !bytes.Equal(got, canonical) {
			t.Fatalf("rotation %d: exported key % x != % x", d, got, canonical)
		}

		key, _, sc := canonicalKey(labels, alg, k)
		if !bytes.Equal(key, canonical) {
			t.Fatalf("rotation %d: internal cache key % x != exported % x", d, key, canonical)
		}
		sc.release()

		// The wire ELECT payload is [alg byte | varint k | caller-frame
		// labels]: canonicalizing the ELECT encoding of the *canonical*
		// rotation must reproduce the key byte for byte.
		frame := appendWireElect(nil, 7, alg, k, base.Rotate(6).LabelsView())
		payload := frame[4+wireHeaderLen:]
		if !bytes.Equal(payload, canonical) {
			t.Fatalf("canonical ELECT payload % x != key % x", payload, canonical)
		}
	}
}

// TestAppendCanonicalKeyReusesBuffer pins the amortization contract: a
// warm destination buffer is overwritten in place, not grown or leaked.
func TestAppendCanonicalKeyReusesBuffer(t *testing.T) {
	labels := []ring.Label{2, 1, 2}
	buf := make([]byte, 0, 64)
	key1, rot1 := AppendCanonicalKey(buf, labels, repro.AlgorithmA, 2)
	key2, rot2 := AppendCanonicalKey(key1, labels, repro.AlgorithmA, 2)
	if &key1[0] != &key2[0] {
		t.Error("second append reallocated a warm buffer")
	}
	if !bytes.Equal(key1, key2) || rot1 != rot2 {
		t.Errorf("unstable encoding: % x rot %d vs % x rot %d", key1, rot1, key2, rot2)
	}
	want, _ := CanonicalKey(labels, repro.AlgorithmA, 2)
	if !bytes.Equal(key1, want) {
		t.Errorf("append form % x, fresh form % x", key1, want)
	}
}
