package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
	"repro/internal/secure"

	repro "repro"
)

// ErrWireServerClosed is returned by WireServer.Serve after Shutdown,
// mirroring http.ErrServerClosed so cmd/ringd can tell a graceful stop
// from a listener failure.
var ErrWireServerClosed = errors.New("serve: wire server closed")

// errWireWriterClosed fails appends that race the final flush; by
// construction (inflight.Wait before close) it should not be observed.
var errWireWriterClosed = errors.New("serve: wire writer closed")

// WireServer serves the RGV1 binary protocol on behalf of a Server. It
// is a second front end over the same machinery the HTTP handlers use —
// one result cache, one admission queue, one metrics registry, one
// crosscheck policy — so the two protocols can never disagree about an
// election. Build with NewWireServer, run Serve on a dedicated
// listener, and Shutdown before Server.Close (the same
// stop-accepting-then-drain ordering as http.Server.Shutdown).
//
// Per connection, a reader goroutine decodes pipelined ELECT frames and
// answers cache hits inline; misses and singleflight waiters detach
// onto goroutines and complete out of order, matched by request id. All
// responses funnel through a per-connection batching writer that
// coalesces up to wireMaxWriteBatch frames per Write syscall.
type WireServer struct {
	s       *Server
	ep      *endpointStats
	opts    WireServerOptions
	limiter *rateLimiter

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*wireConn]struct{}
	closed bool
	wg     sync.WaitGroup // one per live connection handler
}

// WireServerOptions hardens a WireServer's edge. The zero value serves
// plaintext RGV1 with no per-peer limits — exactly NewWireServer.
type WireServerOptions struct {
	// Secure, when set, requires every connection to complete the
	// authenticated ringsec handshake before the RGV1 magic. Plaintext
	// clients, unknown keys, and garbage are counted in
	// ringd_handshake_failures_total and dropped without a frame.
	Secure *secure.ServerConfig
	// RateLimit, when set, applies a per-peer token bucket to ELECT
	// requests. Peers are keyed by authenticated key fingerprint on a
	// secure port, remote host otherwise; over-budget requests get the
	// SHED error frame with a Retry-After hint.
	RateLimit *RateLimitConfig
	// MaxInflightBytes bounds, per connection, the response bytes that
	// detached responders (miss owners, singleflight waiters) may hold
	// in flight; each reserves the worst-case response size. Excess
	// requests are shed instead of buffered. Default 1 MiB; negative
	// disables the budget.
	MaxInflightBytes int
}

// NewWireServer builds the wire front end of s. One Server can carry at
// most one WireServer per listener; sharing s between HTTP and wire is
// the intended deployment.
func NewWireServer(s *Server) *WireServer {
	return NewWireServerWith(s, WireServerOptions{})
}

// NewWireServerWith builds a wire front end with hardening options.
func NewWireServerWith(s *Server, opts WireServerOptions) *WireServer {
	if opts.MaxInflightBytes == 0 {
		opts.MaxInflightBytes = 1 << 20
	}
	ws := &WireServer{
		s:     s,
		ep:    s.metrics.Endpoint("wire/elect"),
		opts:  opts,
		conns: make(map[*wireConn]struct{}),
	}
	if opts.RateLimit != nil {
		ws.limiter = newRateLimiter(*opts.RateLimit)
	}
	return ws
}

// Serve accepts RGV1 connections on ln until Shutdown. It returns
// ErrWireServerClosed after a graceful stop, or the accept error that
// ended the loop.
func (ws *WireServer) Serve(ln net.Listener) error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		ln.Close()
		return ErrWireServerClosed
	}
	ws.ln = ln
	ws.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed {
				return ErrWireServerClosed
			}
			return err
		}
		wc := newWireConn(ws, c)
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			c.Close()
			return ErrWireServerClosed
		}
		ws.conns[wc] = struct{}{}
		ws.wg.Add(1)
		ws.mu.Unlock()
		go wc.serve()
	}
}

// Shutdown drains the wire path: the listener stops accepting, every
// connection stops reading new requests, all in-flight elections are
// answered, each connection's writer flushes completely, and only then
// are the sockets closed — a client never observes a truncated frame,
// only a clean EOF between frames. If ctx expires first the remaining
// connections are torn down hard and ctx.Err is returned.
func (ws *WireServer) Shutdown(ctx context.Context) error {
	ws.mu.Lock()
	ws.closed = true
	ln := ws.ln
	conns := make([]*wireConn, 0, len(ws.conns))
	for wc := range ws.conns {
		conns = append(conns, wc)
	}
	ws.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, wc := range conns {
		wc.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		ws.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		ws.mu.Lock()
		for wc := range ws.conns {
			wc.conn.Close()
		}
		ws.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// wireConn is one persistent client connection: the reader-side scratch
// buffers (reused across frames so the hit path allocates nothing), the
// batching writer, and the in-flight accounting the drain relies on.
type wireConn struct {
	ws       *WireServer
	conn     net.Conn // the accepted socket: deadlines and hard teardown
	rw       net.Conn // the framing stream: conn, or its secure wrapper
	w        *wireWriter
	peer     string        // rate-limit identity: key fingerprint or remote host
	draining chan struct{} // closed by beginDrain
	drainOne sync.Once

	// inflightBytes tracks response bytes reserved by this connection's
	// detached responders, bounded by MaxInflightBytes.
	inflightBytes atomic.Int64

	// Reader-goroutine-only scratch.
	body   []byte
	labels []ring.Label
}

func newWireConn(ws *WireServer, c net.Conn) *wireConn {
	return &wireConn{
		ws:       ws,
		conn:     c,
		rw:       c,
		w:        newWireWriter(c),
		draining: make(chan struct{}),
	}
}

// reserveInflight claims worst-case response room for one detached
// responder; it reports false when the connection's bytes-in-flight
// budget is exhausted and the request should be shed instead.
func (wc *wireConn) reserveInflight() bool {
	max := wc.ws.opts.MaxInflightBytes
	if max < 0 {
		return true
	}
	if wc.inflightBytes.Add(wireMaxResponseBody) > int64(max) {
		wc.inflightBytes.Add(-wireMaxResponseBody)
		return false
	}
	return true
}

func (wc *wireConn) releaseInflight() { wc.inflightBytes.Add(-wireMaxResponseBody) }

// beginDrain stops this connection's reader: the blocked Read is
// interrupted via an immediate deadline, after which the reader loop
// sees the draining signal and falls into the graceful teardown.
func (wc *wireConn) beginDrain() {
	wc.drainOne.Do(func() {
		close(wc.draining)
		wc.conn.SetReadDeadline(time.Now())
	})
}

func (wc *wireConn) isDraining() bool {
	select {
	case <-wc.draining:
		return true
	default:
		return false
	}
}

// wireLingerTimeout bounds the post-flush half-close linger: after the
// final flush the server sends FIN and absorbs inbound bytes for at most
// this long, so a straggling client reads every response then a clean
// EOF instead of the RST a close-with-unread-data would provoke.
const wireLingerTimeout = 500 * time.Millisecond

// serve is the connection's reader loop. On exit — client hangup,
// protocol violation, or drain — it waits for every detached responder,
// flushes the writer, half-closes (FIN, then drain the inbound side),
// and only then closes the socket, so no response is ever cut mid-frame
// and no buffered response is destroyed by a reset.
func (wc *wireConn) serve() {
	defer wc.ws.wg.Done()
	defer func() {
		wc.w.inflight.Wait()
		wc.w.close()
		if hc, ok := wc.rw.(interface{ CloseWrite() error }); ok {
			if hc.CloseWrite() == nil {
				// Closing with unread data in the receive queue sends RST,
				// which discards responses still in flight to the client.
				// Absorb what the client already pipelined until its EOF
				// (or the linger bound) so the close is a clean FIN.
				wc.conn.SetReadDeadline(time.Now().Add(wireLingerTimeout))
				io.Copy(io.Discard, wc.conn)
			}
		}
		wc.conn.Close()
		wc.ws.mu.Lock()
		delete(wc.ws.conns, wc)
		wc.ws.mu.Unlock()
	}()

	if sec := wc.ws.opts.Secure; sec != nil {
		// Authenticate before the first protocol byte. A client that
		// cannot complete the handshake — plaintext RGV1, a wrong or
		// unlisted key, injected garbage — never reaches the frame
		// decoder; it is counted and hung up on, frameless, exactly like
		// a non-RGV1 client on a plaintext port.
		sconn, err := secure.Server(wc.conn, sec)
		if err != nil {
			wc.ws.s.metrics.HandshakeFailure()
			return
		}
		if wc.isDraining() {
			// The handshake cleared the drain's wakeup deadline; don't
			// start reading frames a shutdown will never answer.
			return
		}
		wc.rw = sconn
		wc.peer = sconn.Peer().Fingerprint()
		wc.w.setOut(sconn)
	} else if host, _, err := net.SplitHostPort(wc.conn.RemoteAddr().String()); err == nil {
		wc.peer = host
	} else {
		wc.peer = wc.conn.RemoteAddr().String()
	}

	var magic [4]byte
	if _, err := io.ReadFull(wc.rw, magic[:]); err != nil || string(magic[:]) != wireMagic {
		return // not an RGV1 client; hang up without a frame
	}
	maxBody := wireMaxRequestBody(wc.ws.s.cfg.MaxRingSize)
	var pfx [4]byte
	for {
		if _, err := io.ReadFull(wc.rw, pfx[:]); err != nil {
			return // EOF, hangup, or the drain deadline
		}
		n := binary.BigEndian.Uint32(pfx[:])
		if int(n) < wireHeaderLen || int(n) > maxBody {
			return // unframeable stream: close
		}
		if cap(wc.body) < int(n) {
			wc.body = make([]byte, n)
		}
		body := wc.body[:n]
		if _, err := io.ReadFull(wc.rw, body); err != nil {
			return
		}
		if !wc.processFrame(body) {
			return
		}
	}
}

// processFrame handles one received frame body. It returns false when
// the connection can no longer be trusted and must close; a payload
// error on a well-framed ELECT answers an ERROR frame and keeps the
// connection. This is the v2 hot path: on a warm cache it runs
// allocation-free end to end (scratch decode, pooled canonicalization,
// sharded lookup, batched response append).
func (wc *wireConn) processFrame(body []byte) bool {
	start := time.Now()
	s := wc.ws.s
	typ, id, payload, err := decodeWireHeader(body)
	if err != nil || typ != wireFrameElect {
		// Header-level garbage, or a frame type only servers send:
		// protocol confusion, not a recoverable request.
		return false
	}
	var req wireElect
	req, wc.labels, err = decodeWireElect(id, payload, wc.labels, s.cfg.MaxRingSize)
	if err != nil {
		wc.respondError(start, id, wireErrBadRequest, 0, err.Error())
		return true
	}
	if wc.isDraining() {
		wc.respondError(start, id, wireErrDraining, 0, "shutting down")
		return true
	}
	if rl := wc.ws.limiter; rl != nil {
		if ok, retry := rl.allow(wc.peer, time.Now()); !ok {
			s.metrics.RateLimited()
			wc.respondError(start, id, wireErrShed, retry, "rate limited")
			return true
		}
	}

	// Canonicalize and look up straight from the decoded label scratch —
	// no ring.Ring exists on this path.
	n := len(req.labels)
	key, rot, sc := canonicalKey(req.labels, req.alg, req.k)
	e, owner := s.cache.lookup(key, hashKey(key))
	sc.release()

	if owner {
		s.metrics.CacheMiss()
		wc.runMiss(start, req, e, rot)
		return true
	}
	s.metrics.CacheHit()
	select {
	case <-e.ready:
		// Completed entry: answer inline, in the reader goroutine.
		if e.err != nil {
			wc.respondEntryError(start, id, e.err)
			return true
		}
		wc.respondResult(start, id, true, (e.out.Leader+rot)%n, e.out)
		if s.shouldCrosscheck() {
			wc.crosscheckHit(req, rot, e.out)
		}
	default:
		// Deduplicated into another requester's flight: wait off the
		// reader loop so pipelined requests behind this one keep flowing.
		if !wc.reserveInflight() {
			s.metrics.RateLimited()
			wc.respondError(start, id, wireErrShed, s.adm.retryAfterSeconds(), "connection response budget exhausted")
			return true
		}
		wc.w.inflight.Add(1)
		go func() {
			defer wc.w.inflight.Done()
			defer wc.releaseInflight()
			t := time.NewTimer(s.cfg.RequestTimeout)
			defer t.Stop()
			select {
			case <-e.ready:
			case <-t.C:
				wc.respondError(start, id, wireErrInternal, 0, "timed out waiting for result")
				return
			}
			if e.err != nil {
				wc.respondEntryError(start, id, e.err)
				return
			}
			wc.respondResult(start, id, true, (e.out.Leader+rot)%n, e.out)
		}()
	}
	return true
}

// runMiss owns a fresh cache entry: it materializes the canonical ring
// (the one place the wire path builds a ring.Ring), finishes validation
// the decoder could not do, and runs the election through the shared
// admission layer on a detached goroutine so the reader keeps draining
// pipelined requests meanwhile.
func (wc *wireConn) runMiss(start time.Time, req wireElect, e *entry, rot int) {
	s := wc.ws.s
	n := len(req.labels)
	canonLabels := make([]ring.Label, n)
	for i := range canonLabels {
		canonLabels[i] = req.labels[(rot+i)%n]
	}
	canon, err := ring.New(canonLabels)
	if err == nil {
		// Class validation (multiplicity, asymmetry) — the HTTP path does
		// this pre-lookup via ProtocolFor; here the ring only exists now.
		_, err = repro.ProtocolFor(canon, req.alg, req.k)
	}
	if err != nil {
		s.cache.abandon(e, fmt.Errorf("%w: %v", errBadRequest, err))
		wc.respondError(start, req.id, wireErrBadRequest, 0, err.Error())
		return
	}
	id := req.id
	if !wc.reserveInflight() {
		s.metrics.RateLimited()
		s.cache.abandon(e, errSaturated)
		wc.respondError(start, id, wireErrShed, s.adm.retryAfterSeconds(), "connection response budget exhausted")
		return
	}
	wc.w.inflight.Add(1)
	go func() {
		defer wc.w.inflight.Done()
		defer wc.releaseInflight()
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
		defer cancel()
		if err := s.adm.submit(ctx, req.alg.String(), "sim", func(sc *repro.ElectScratch) {
			out, rerr := s.runElectionInto(canon, req.alg, req.k, "sim", sc)
			s.cache.finish(e, out, rerr)
		}); err != nil {
			s.cache.abandon(e, err)
			wc.respondEntryError(start, id, err)
			return
		}
		<-e.ready
		if e.err != nil {
			wc.respondEntryError(start, id, e.err)
			return
		}
		wc.respondResult(start, id, false, (e.out.Leader+rot)%n, e.out)
	}()
}

// crosscheckHit re-runs a sampled wire cache hit through the simulator,
// sharing the Server's divergence policy. Only the inline hit path
// samples: it still holds the decoded labels the canonical ring is
// rebuilt from (the same synchronous cost profile as the HTTP path).
func (wc *wireConn) crosscheckHit(req wireElect, rot int, out *canonOutcome) {
	n := len(req.labels)
	canonLabels := make([]ring.Label, n)
	for i := range canonLabels {
		canonLabels[i] = req.labels[(rot+i)%n]
	}
	canon, err := ring.New(canonLabels)
	if err != nil {
		return // unreachable: the cached entry implies a valid ring
	}
	wc.ws.s.crosscheck(canon, req.alg, req.k, out)
}

// respondResult appends one RESULT frame and records the request in the
// shared metrics (endpoint "wire/elect", status 200).
func (wc *wireConn) respondResult(start time.Time, id uint64, cached bool, leader int, out *canonOutcome) {
	wc.w.appendResult(id, cached, leader, out)
	wc.ws.s.metrics.observe(wc.ws.ep, 200, time.Since(start))
}

// respondError appends one typed ERROR frame, recording it under the
// equivalent HTTP status so /metrics tells one story for both protocols.
func (wc *wireConn) respondError(start time.Time, id uint64, code wireErrCode, retryAfter int, msg string) {
	wc.w.appendError(id, code, retryAfter, msg)
	wc.ws.s.metrics.observe(wc.ws.ep, code.httpStatus(), time.Since(start))
}

// respondEntryError maps a cache-entry error (shed, drain, bad request,
// engine failure) onto the typed ERROR frame vocabulary — the wire twin
// of handleElect's status mapping. Sheds carry the admission layer's
// Retry-After estimate, exactly like the HTTP 429 header.
func (wc *wireConn) respondEntryError(start time.Time, id uint64, err error) {
	s := wc.ws.s
	switch {
	case errors.Is(err, errSaturated) || errors.Is(err, errExpired):
		wc.respondError(start, id, wireErrShed, s.adm.retryAfterSeconds(), err.Error())
	case errors.Is(err, errClosed):
		wc.respondError(start, id, wireErrDraining, 0, "shutting down")
	case errors.Is(err, errBadRequest):
		wc.respondError(start, id, wireErrBadRequest, 0, err.Error())
	default:
		wc.respondError(start, id, wireErrInternal, 0, "election failed: "+err.Error())
	}
}

// wireWriter is the per-connection batching sender. Responders append
// encoded frames into a shared pending buffer under a mutex; a single
// flusher goroutine swaps the buffer out and writes it with one syscall.
// Appenders block once wireMaxWriteBatch frames are pending — the same
// ≤64-frames-per-Write bound as internal/netring's link sender, providing
// backpressure instead of unbounded buffering. Both buffers are recycled,
// so a steady-state response costs no allocation.
type wireWriter struct {
	mu      sync.Mutex
	out     io.Writer  // guarded by mu; swapped once by setOut post-handshake
	avail   *sync.Cond // signaled when frames become pending (or close)
	room    *sync.Cond // signaled when the flusher drains the batch
	pending []byte
	spare   []byte
	frames  int
	closed  bool
	err     error
	done    chan struct{}

	// inflight counts detached responders (miss owners, singleflight
	// waiters); the connection teardown waits for it before the final
	// flush so every accepted request is answered or the conn stays open.
	inflight sync.WaitGroup
}

func newWireWriter(out io.Writer) *wireWriter {
	w := &wireWriter{out: out, done: make(chan struct{})}
	w.avail = sync.NewCond(&w.mu)
	w.room = sync.NewCond(&w.mu)
	go w.flushLoop()
	return w
}

// setOut redirects the flusher to a new stream — the post-handshake swap
// from the raw socket to its secure wrapper. Safe only while nothing has
// been appended on this connection, which the handshake-before-magic
// ordering guarantees.
func (w *wireWriter) setOut(out io.Writer) {
	w.mu.Lock()
	w.out = out
	w.mu.Unlock()
}

// waitRoomLocked blocks while the pending batch is full. Returns the
// writer's terminal error, if any.
func (w *wireWriter) waitRoomLocked() error {
	for w.frames >= wireMaxWriteBatch && w.err == nil && !w.closed {
		w.room.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errWireWriterClosed
	}
	return nil
}

// appendResult enqueues one RESULT frame. Encoding happens directly into
// the recycled pending buffer — no intermediate allocation, no closure.
func (w *wireWriter) appendResult(id uint64, cached bool, leader int, out *canonOutcome) error {
	w.mu.Lock()
	if err := w.waitRoomLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	w.pending = appendWireResult(w.pending, id, cached, leader, out)
	w.frames++
	w.avail.Signal()
	w.mu.Unlock()
	return nil
}

// appendError enqueues one ERROR frame.
func (w *wireWriter) appendError(id uint64, code wireErrCode, retryAfter int, msg string) error {
	w.mu.Lock()
	if err := w.waitRoomLocked(); err != nil {
		w.mu.Unlock()
		return err
	}
	w.pending = appendWireError(w.pending, id, code, retryAfter, msg)
	w.frames++
	w.avail.Signal()
	w.mu.Unlock()
	return nil
}

// flushLoop is the single writer goroutine: swap the pending buffer for
// the spare, write it in one syscall, recycle. It exits after close()
// once everything pending has been flushed.
func (w *wireWriter) flushLoop() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for w.frames == 0 && !w.closed {
			w.avail.Wait()
		}
		if w.frames == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		buf := w.pending
		w.pending = w.spare[:0]
		w.spare = nil
		w.frames = 0
		broken := w.err != nil
		out := w.out
		w.room.Broadcast()
		w.mu.Unlock()

		var werr error
		if !broken {
			_, werr = out.Write(buf)
		}
		w.mu.Lock()
		w.spare = buf[:0]
		if werr != nil && w.err == nil {
			w.err = werr
			w.room.Broadcast()
		}
		w.mu.Unlock()
	}
}

// close flushes whatever is pending and stops the flusher. It returns
// the writer's terminal error (nil on a clean flush).
func (w *wireWriter) close() error {
	w.mu.Lock()
	w.closed = true
	w.avail.Signal()
	w.room.Broadcast()
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
