package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ring"

	repro "repro"
)

// startWire brings up a Server with its wire front end on a loopback
// listener and returns the dial address. Cleanup shuts the wire path
// down before the Server, the required order.
func startWire(t *testing.T, cfg Config) (*Server, *WireServer, string) {
	t.Helper()
	s := New(cfg)
	ws := NewWireServer(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- ws.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		if err := <-served; !errors.Is(err, ErrWireServerClosed) {
			t.Errorf("Serve returned %v, want ErrWireServerClosed", err)
		}
		s.Close()
	})
	return s, ws, ln.Addr().String()
}

// TestWireFrameRoundTrip pins the frame encodings: every frame the
// encoder emits must decode back to the same value through the same
// header/payload split the server and client use.
func TestWireFrameRoundTrip(t *testing.T) {
	labels := []ring.Label{1, 3, 1, 3, 2, 2, 1, 2}
	buf := appendWireElect(nil, 7, repro.AlgorithmB, 3, labels)
	typ, id, payload, err := decodeWireHeader(buf[4:])
	if err != nil || typ != wireFrameElect || id != 7 {
		t.Fatalf("ELECT header: typ=%v id=%d err=%v", typ, id, err)
	}
	req, _, err := decodeWireElect(id, payload, nil, 4096)
	if err != nil {
		t.Fatalf("decode ELECT: %v", err)
	}
	if req.alg != repro.AlgorithmB || req.k != 3 {
		t.Errorf("ELECT decoded alg=%v k=%d", req.alg, req.k)
	}
	if len(req.labels) != len(labels) {
		t.Fatalf("ELECT decoded %d labels, want %d", len(req.labels), len(labels))
	}
	for i := range labels {
		if req.labels[i] != labels[i] {
			t.Errorf("label %d: %v, want %v", i, req.labels[i], labels[i])
		}
	}

	out := &canonOutcome{LeaderLabel: 1, Messages: 276, TimeUnits: 19.5, PeakSpaceBits: 88}
	buf = appendWireResult(nil, 9, true, 5, out)
	typ, id, payload, err = decodeWireHeader(buf[4:])
	if err != nil || typ != wireFrameResult || id != 9 {
		t.Fatalf("RESULT header: typ=%v id=%d err=%v", typ, id, err)
	}
	res, err := decodeWireResult(payload)
	if err != nil {
		t.Fatalf("decode RESULT: %v", err)
	}
	want := wireResult{cached: true, leader: 5, leaderLabel: 1, messages: 276, peakSpaceBits: 88, timeUnits: 19.5}
	if res != want {
		t.Errorf("RESULT round trip: %+v, want %+v", res, want)
	}

	buf = appendWireError(nil, 11, wireErrShed, 4, "overloaded")
	typ, id, payload, err = decodeWireHeader(buf[4:])
	if err != nil || typ != wireFrameError || id != 11 {
		t.Fatalf("ERROR header: typ=%v id=%d err=%v", typ, id, err)
	}
	ef, err := decodeWireError(payload)
	if err != nil {
		t.Fatalf("decode ERROR: %v", err)
	}
	if ef.code != wireErrShed || ef.retryAfter != 4 || ef.msg != "overloaded" {
		t.Errorf("ERROR round trip: %+v", ef)
	}
	if ef.code.httpStatus() != 429 {
		t.Errorf("shed code maps to %d, want 429", ef.code.httpStatus())
	}
}

// TestWireElectPayloadIsCacheKey pins the tentpole's framing trick: the
// ELECT payload after the request-id header is byte-identical to the
// result cache's compact key for the same (alg, k, labels) — so the
// server can canonicalize and hash a request without re-encoding it.
func TestWireElectPayloadIsCacheKey(t *testing.T) {
	labels := ring.Figure1().LabelsView()
	frame := appendWireElect(nil, 1, repro.AlgorithmB, 3, labels)
	payload := frame[4+wireHeaderLen:]
	key := appendCacheKey(nil, repro.AlgorithmB, 3, labels, 0)
	if !bytes.Equal(payload, key) {
		t.Errorf("ELECT payload %x != cache key %x", payload, key)
	}
}

// TestWireRotationsShareHTTPCacheEntry is the cross-protocol
// consistency contract, extending TestRotationCanonicalCache: rotation 0
// of the Figure 1 ring is warmed through the HTTP handler, then every
// rotation is requested over the wire. All of them must land on the one
// HTTP-created cache entry (n wire hits, zero wire misses) and map the
// cached canonical leader back into each rotation's frame.
func TestWireRotationsShareHTTPCacheEntry(t *testing.T) {
	s, _, addr := startWire(t, Config{Workers: 2})
	h := s.Handler()

	base := ring.Figure1()
	n := base.N()
	var warm ElectResponse
	if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: canonSpec(base.Labels()), Alg: "B", K: 3}, &warm); code != 200 {
		t.Fatalf("HTTP warmup: status %d", code)
	}

	c, err := DialWire(addr, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for d := 0; d < n; d++ {
		rotated := base.Rotate(d)
		out, err := c.Elect(rotated.LabelsView(), repro.AlgorithmB, 3)
		if err != nil {
			t.Fatalf("rotation %d: %v", d, err)
		}
		if want := (n - d) % n; out.Leader != want {
			t.Errorf("rotation %d: leader %d, want %d", d, out.Leader, want)
		}
		if out.LeaderLabel != 1 {
			t.Errorf("rotation %d: leader label %v, want 1", d, out.LeaderLabel)
		}
		if out.Messages != 276 {
			t.Errorf("rotation %d: messages %d, want 276", d, out.Messages)
		}
		if !out.Cached {
			t.Errorf("rotation %d: not served from the HTTP-warmed cache entry", d)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Misses != 1 {
		t.Errorf("misses = %d, want 1: wire requests must share the HTTP entry", snap.Misses)
	}
	if snap.Hits != int64(n) {
		t.Errorf("hits = %d, want %d", snap.Hits, n)
	}
	if got := s.cache.len(); got != 1 {
		t.Errorf("cache has %d entries, want 1", got)
	}
}

// TestWirePipelinedMatchesHTTP pipelines many distinct elections over
// one wire connection from concurrent callers and requires every
// response — completed out of order, matched by request id — to agree
// with the HTTP answer for the same ring.
func TestWirePipelinedMatchesHTTP(t *testing.T) {
	s, _, addr := startWire(t, Config{Workers: 2})
	h := s.Handler()

	const rings = 24
	want := make([]ElectResponse, rings)
	specs := make([]*ring.Ring, rings)
	for i := range specs {
		specs[i] = ring.MustNew(ring.Label(100+i), 2, 1, 2, 1)
		if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: canonSpec(specs[i].Labels()), Alg: "A", K: 2}, &want[i]); code != 200 {
			t.Fatalf("HTTP ring %d: status %d", i, code)
		}
	}

	c, err := DialWire(addr, 1, 5*time.Second) // one conn: true pipelining
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make([]error, rings)
	for i := 0; i < rings; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := c.Elect(specs[i].LabelsView(), repro.AlgorithmA, 2)
			if err != nil {
				errs[i] = err
				return
			}
			if out.Leader != want[i].Leader || out.Messages != want[i].Messages {
				errs[i] = fmt.Errorf("wire leader=%d messages=%d, HTTP leader=%d messages=%d",
					out.Leader, out.Messages, want[i].Leader, want[i].Messages)
			}
			if !out.Cached {
				errs[i] = fmt.Errorf("ring %d not cached after HTTP warmup", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("ring %d: %v", i, err)
		}
	}
}

// TestWireShedsTyped saturates the admission layer and requires the
// wire surface of shedding: a typed ERROR frame with the shed code and a
// sane Retry-After, delivered without blocking, on a connection that
// stays usable for the retry once capacity frees up.
func TestWireShedsTyped(t *testing.T) {
	s, _, addr := startWire(t, Config{Workers: 1, QueueDepth: 1, BatchSize: 1, BatchWait: time.Millisecond})

	release := make(chan struct{})
	var running, occupied sync.WaitGroup
	running.Add(1)
	for i := 0; i < 2; i++ {
		first := i == 0
		occupied.Add(1)
		go func() {
			defer occupied.Done()
			_ = s.adm.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) {
				if first {
					running.Done()
				}
				<-release
			})
		}()
		if first {
			running.Wait()
		} else {
			deadline := time.After(2 * time.Second)
			for len(s.adm.queue) < 1 {
				select {
				case <-deadline:
					t.Fatal("queue never filled")
				default:
					time.Sleep(time.Millisecond)
				}
			}
		}
	}

	c, err := DialWire(addr, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	labels := []ring.Label{1, 2, 2}
	start := time.Now()
	_, err = c.Elect(labels, repro.AlgorithmA, 2)
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("saturated elect returned %v, want *WireError", err)
	}
	if we.Status != 429 {
		t.Fatalf("shed status %d, want 429; msg %q", we.Status, we.Msg)
	}
	if we.RetryAfter < 1 || we.RetryAfter > 30 {
		t.Errorf("Retry-After %d, want [1, 30]", we.RetryAfter)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("shed took %v; must not block", d)
	}
	if got := s.cache.len(); got != 0 {
		t.Errorf("cache holds %d entries after a shed, want 0", got)
	}

	close(release)
	occupied.Wait()

	// Same connection, same ring: must now succeed.
	out, err := c.Elect(labels, repro.AlgorithmA, 2)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	if out.Cached {
		t.Error("after a shed the entry must have been abandoned, not cached")
	}
}

// TestWireBadRequestKeepsConnection: a well-framed but unservable
// request (symmetric ring, bad k) answers a typed 400 ERROR frame and
// the connection keeps serving; the invalid ring must not leave a cache
// entry behind.
func TestWireBadRequestKeepsConnection(t *testing.T) {
	s, _, addr := startWire(t, Config{Workers: 1})
	c, err := DialWire(addr, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Symmetric ring: shallow-valid, rejected by ProtocolFor on the miss
	// path.
	_, err = c.Elect([]ring.Label{5, 5, 5, 5}, repro.AlgorithmA, 2)
	var we *WireError
	if !errors.As(err, &we) || we.Status != 400 {
		t.Fatalf("symmetric ring returned %v, want *WireError 400", err)
	}
	if got := s.cache.len(); got != 0 {
		t.Errorf("invalid request left %d cache entries", got)
	}

	// k out of range: rejected at decode, before the cache.
	_, err = c.Elect([]ring.Label{1, 2, 2}, repro.AlgorithmA, wireMaxK+1)
	if !errors.As(err, &we) || we.Status != 400 {
		t.Fatalf("k=%d returned %v, want *WireError 400", wireMaxK+1, err)
	}

	// The connection must still serve valid requests.
	out, err := c.Elect([]ring.Label{1, 2, 2}, repro.AlgorithmA, 2)
	if err != nil {
		t.Fatalf("valid request after rejections: %v", err)
	}
	if out.LeaderLabel != 1 {
		t.Errorf("leader label %v, want 1", out.LeaderLabel)
	}
}

// TestWireUnknownAlgTypedError: an alg byte past the registry — the
// exact frame an old server would see from a newer client — answers a
// typed 400 ERROR naming the algorithm, the connection keeps serving,
// and the very next request may ride the randomized engine on a
// symmetric ring the deterministic algorithms refuse.
func TestWireUnknownAlgTypedError(t *testing.T) {
	s, _, addr := startWire(t, Config{Workers: 1})
	c, err := DialWire(addr, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sym := []ring.Label{1, 2, 1, 2, 1, 2}
	var we *WireError
	for _, alg := range []repro.Algorithm{repro.AlgorithmItaiRodeh + 1, 99} {
		_, err := c.Elect(sym, alg, 3)
		if !errors.As(err, &we) || we.Status != 400 {
			t.Fatalf("alg byte %d returned %v, want *WireError 400", alg, err)
		}
	}
	if got := s.cache.len(); got != 0 {
		t.Errorf("unknown alg left %d cache entries", got)
	}

	out, err := c.Elect(sym, repro.AlgorithmItaiRodeh, 3)
	if err != nil {
		t.Fatalf("IR elect after unknown-alg rejections: %v", err)
	}
	if out.Leader < 0 || out.Leader >= len(sym) {
		t.Errorf("leader %d outside the ring", out.Leader)
	}
	if out.LeaderLabel != sym[out.Leader] {
		t.Errorf("leader label %v at index %d, want %v", out.LeaderLabel, out.Leader, sym[out.Leader])
	}
}

// TestWireGarbageClosesConnection: streams the framer cannot trust —
// wrong magic, bad frame version, an unknown frame type, an oversized
// length prefix — must close the connection (no panic, no reply loop).
func TestWireGarbageClosesConnection(t *testing.T) {
	_, _, addr := startWire(t, Config{Workers: 1})

	expectClose := func(name string, payload []byte) {
		t.Helper()
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := nc.Write(payload); err != nil {
			return // server already hung up: fine
		}
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 64)
		for {
			n, err := nc.Read(buf)
			if err != nil {
				return // closed, as required
			}
			if n > 0 {
				t.Fatalf("%s: server replied %x to garbage, want connection close", name, buf[:n])
			}
		}
	}

	expectClose("bad magic", []byte("HTTP GET / HTTP/1.1\r\n"))
	// Good magic, frame body shorter than the header.
	expectClose("short body", append([]byte(wireMagic), 0, 0, 0, 2, wireVersion, byte(wireFrameElect)))
	// Good magic, bad version.
	bad := appendWireElect([]byte(wireMagic), 1, repro.AlgorithmA, 2, []ring.Label{1, 2, 2})
	bad[len(wireMagic)+4] = 99
	expectClose("bad version", bad)
	// Good magic, server-only frame type from a client.
	res := appendWireResult([]byte(wireMagic), 1, false, 0, &canonOutcome{})
	expectClose("result from client", res)
	// Good magic, length prefix beyond the request bound.
	expectClose("oversized frame", append([]byte(wireMagic), 0xff, 0xff, 0xff, 0xff))
}

// TestWireGracefulDrain pipelines traffic while the wire server shuts
// down. Every call must end in exactly one of: a complete, correct
// RESULT; a typed draining ERROR; or a clean connection close
// (ErrWireClientClosed from the frame boundary) — never a truncated
// frame, which would surface as a decode error.
func TestWireGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 2})
	ws := NewWireServer(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- ws.Serve(ln) }()

	c, err := DialWire(ln.Addr().String(), 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	labels := ring.Figure1().LabelsView()
	if _, err := c.Elect(labels, repro.AlgorithmB, 3); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	begun := make(chan struct{})
	var once sync.Once
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				out, err := c.Elect(labels, repro.AlgorithmB, 3)
				if err != nil {
					errs[i] = err
					return
				}
				if out.Leader != 0 || out.Messages != 276 {
					errs[i] = fmt.Errorf("corrupt result mid-drain: %+v", out)
					return
				}
				once.Do(func() { close(begun) })
			}
		}(i)
	}
	<-begun
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ws.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; !errors.Is(err, ErrWireServerClosed) {
		t.Errorf("Serve returned %v, want ErrWireServerClosed", err)
	}
	wg.Wait()
	s.Close()

	for i, err := range errs {
		var we *WireError
		switch {
		case errors.Is(err, ErrWireClientClosed):
			// Clean close at a frame boundary.
		case errors.As(err, &we):
			if we.Status != 503 {
				t.Errorf("caller %d: wire error %d mid-drain, want 503", i, we.Status)
			}
		default:
			t.Errorf("caller %d: drain surfaced %v — a truncated or corrupt frame", i, err)
		}
	}
}

// TestWireCrosscheckRuns: sampled wire cache hits must flow through the
// shared crosscheck machinery (and agree with the cache).
func TestWireCrosscheckRuns(t *testing.T) {
	diverged := make(chan string, 1)
	s, _, addr := startWire(t, Config{
		Workers:    2,
		Crosscheck: 1,
		OnDivergence: func(detail string) {
			select {
			case diverged <- detail:
			default:
			}
		},
	})
	c, err := DialWire(addr, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	labels := ring.Figure1().LabelsView()
	for i := 0; i < 4; i++ {
		if _, err := c.Elect(labels, repro.AlgorithmB, 3); err != nil {
			t.Fatalf("elect %d: %v", i, err)
		}
	}
	select {
	case d := <-diverged:
		t.Fatalf("crosscheck diverged: %s", d)
	default:
	}
	snap := s.Metrics().Snapshot()
	if snap.Crosschecks != 3 {
		t.Errorf("crosschecks = %d, want 3 (every wire hit at fraction 1)", snap.Crosschecks)
	}
	if snap.Divergences != 0 {
		t.Errorf("divergences = %d, want 0", snap.Divergences)
	}
}

// discardConn satisfies net.Conn for server-side paths that only write;
// the allocation test and the wire benchmarks use it to isolate frame
// processing from real sockets.
type discardConn struct{ net.Conn }

func (discardConn) Write(b []byte) (int, error)     { return len(b), nil }
func (discardConn) Close() error                    { return nil }
func (discardConn) SetReadDeadline(time.Time) error { return nil }

// TestWireHitAllocationFree pins the acceptance criterion directly: one
// served wire cache hit — header decode, label decode into scratch,
// Booth canonicalization, sharded lookup, RESULT append through the
// batched writer, metrics — performs zero heap allocations.
func TestWireHitAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime bypasses sync.Pool; allocation counts are distorted")
	}
	s := New(Config{Workers: 1})
	defer s.Close()
	ws := NewWireServer(s)
	wc := newWireConn(ws, discardConn{})
	defer wc.w.close()

	rg := ring.Figure1()
	key, _, sc := canonicalKey(rg.LabelsView(), repro.AlgorithmB, 3)
	e, owner := s.cache.lookup(key, hashKey(key))
	sc.release()
	if !owner {
		t.Fatal("first lookup must own the entry")
	}
	s.cache.finish(e, &canonOutcome{LeaderLabel: 1, Messages: 276}, nil)

	frame := appendWireElect(nil, 42, repro.AlgorithmB, 3, rg.Rotate(3).LabelsView())
	body := frame[4:]
	// Warm the connection scratch and the writer's recycled buffers past
	// their steady-state size before counting.
	for i := 0; i < 256; i++ {
		if !wc.processFrame(body) {
			t.Fatal("warmup frame rejected")
		}
	}
	n := testing.AllocsPerRun(500, func() {
		if !wc.processFrame(body) {
			t.Fatal("frame rejected")
		}
	})
	if n != 0 {
		t.Errorf("wire hit path allocates %v times per op, want 0", n)
	}
}
