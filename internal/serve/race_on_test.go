//go:build race

package serve

// raceEnabled reports whether this test binary was built with -race.
// The race runtime bypasses sync.Pool caching, so allocation-count
// assertions are meaningless under it.
const raceEnabled = true
