package serve

import (
	"container/list"
	"encoding/binary"
	"math/bits"
	"runtime"
	"strings"
	"sync"

	"repro/internal/ring"
	"repro/internal/words"

	repro "repro"
)

// resultCache is the rotation-canonical result cache. Election outcomes
// are rotation-invariant properties of the labeled ring (the paper's
// Theorems 2 and 4 hold for the network, not for any particular harness
// numbering), so the cache keys on the lexicographically least rotation
// of the clockwise label sequence — Booth's algorithm from internal/words,
// applied by the server before lookup — plus the algorithm and the
// multiplicity bound k. All n rotations of a ring therefore share one
// entry; the server maps the cached canonical-frame leader index back to
// the caller's frame on the way out.
//
// The cache is sharded: a hash of the compact byte-encoded key selects
// one of a power-of-two number of shards, each with its own mutex, map,
// and LRU list, so concurrent hits on different rings never contend on a
// shared lock. Capacity is divided across the shards and eviction is
// per-shard LRU (an approximation of a global LRU that trades exact
// recency ordering for lock independence); small caches collapse to a
// single shard, which preserves the exact global-LRU semantics the
// eviction tests pin.
//
// The cache also deduplicates concurrent identical work (singleflight):
// the first requester of a key becomes the entry's owner and runs the
// election; every other requester arriving before it finishes waits on
// the same entry and is counted as a hit. In-flight entries are never
// evicted (their waiters would be stranded); failed or shed computations
// are removed so later requests retry.
type resultCache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one independently locked slice of the cache. The padding
// keeps neighboring shards' mutexes on different cache lines so that
// lock traffic on one shard does not false-share with another.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	lru     *list.List // front = most recent; values are *entry
	_       [24]byte
}

// entry is one cached (or in-flight) election result. ready is closed by
// the owner when out/err are set; waiters block on it. key is the compact
// byte-encoded cache key (interned once, at insertion) and shard is the
// shard that owns the entry, so finish/abandon need no key re-hash.
type entry struct {
	shard *cacheShard
	key   string
	ready chan struct{}
	out   *canonOutcome // leader index in the canonical frame
	err   error
	elem  *list.Element
}

// canonOutcome is an election outcome in the canonical rotation frame.
type canonOutcome struct {
	Leader        int // index in the canonical rotation
	LeaderLabel   ring.Label
	Messages      int
	TotalBits     int
	TimeUnits     float64
	PeakSpaceBits int
	Engine        string // engine that computed the entry
}

// minEntriesPerShard keeps shards from becoming so small that the
// per-shard LRU degenerates; auto-sharding never splits below this.
const minEntriesPerShard = 64

// shardsFor picks the shard count: an explicit request is rounded up to a
// power of two and clamped so every shard holds at least one entry; auto
// (requested <= 0) scales with GOMAXPROCS but never splits a small cache
// (capacity/minEntriesPerShard bounds it), so the exact global-LRU
// behavior of tiny caches — which the eviction tests pin — is preserved.
func shardsFor(capacity, requested int) int {
	limit := capacity
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
		if limit > capacity/minEntriesPerShard {
			limit = capacity / minEntriesPerShard
		}
	}
	n := nextPow2(requested)
	for n > 1 && n > limit {
		n >>= 1
	}
	return n
}

func nextPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(v-1))
}

func newResultCache(capacity, shards int) *resultCache {
	ns := shardsFor(capacity, shards)
	c := &resultCache{shards: make([]cacheShard, ns), mask: uint64(ns - 1)}
	// Distribute the capacity so the shard capacities sum exactly to the
	// configured total.
	base, rem := capacity/ns, capacity%ns
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = base
		if i < rem {
			sh.cap++
		}
		sh.entries = make(map[string]*entry)
		sh.lru = list.New()
	}
	return c
}

// hashKey is FNV-1a over the encoded key bytes; its low bits select the
// shard. Inlined by hand so the hot path does not allocate a hash.Hash.
func hashKey(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// appendCacheKey encodes (alg, k, labels rotated by rot) into dst as the
// compact cache key: one algorithm byte, then varints for k and for each
// label in canonical order. Varints are self-delimiting, so distinct
// canonical (alg, k, sequence) triples encode to distinct keys. The
// rotation is applied during encoding — the rotated sequence is never
// materialized.
func appendCacheKey(dst []byte, alg repro.Algorithm, k int, labels []ring.Label, rot int) []byte {
	dst = append(dst[:0], byte(alg))
	dst = binary.AppendVarint(dst, int64(k))
	n := len(labels)
	for i := 0; i < n; i++ {
		dst = binary.AppendVarint(dst, int64(labels[(rot+i)%n]))
	}
	return dst
}

// canonScratch is the pooled per-request scratch of the hot path: Booth's
// failure table and the encoded key are computed into recycled buffers so
// a cache hit allocates nothing.
type canonScratch struct {
	booth []int
	key   []byte
}

var canonScratchPool = sync.Pool{New: func() any { return new(canonScratch) }}

// release recycles the scratch. A method rather than a returned closure:
// closures allocate, and the whole point of the scratch is that a hit
// allocates nothing.
func (sc *canonScratch) release() { canonScratchPool.Put(sc) }

// canonicalKey computes the least-rotation index of labels and the
// encoded cache key for (alg, k, that rotation) using pooled scratch.
// key is only valid until sc.release() is called.
func canonicalKey(labels []ring.Label, alg repro.Algorithm, k int) (key []byte, rot int, sc *canonScratch) {
	sc = canonScratchPool.Get().(*canonScratch)
	if need := 2 * len(labels); cap(sc.booth) < need {
		sc.booth = make([]int, need)
	}
	rot = words.LeastRotationIndexInto(labels, sc.booth)
	sc.key = appendCacheKey(sc.key, alg, k, labels, rot)
	return sc.key, rot, sc
}

// canonSpec renders a label sequence as the human-readable space-joined
// form used in responses and diagnostics.
func canonSpec(labels []ring.Label) string {
	return canonSpecRotated(labels, 0)
}

// canonSpecRotated renders labels rotated by rot without materializing
// the rotated sequence.
func canonSpecRotated(labels []ring.Label, rot int) string {
	var b strings.Builder
	n := len(labels)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(labels[(rot+i)%n].String())
	}
	return b.String()
}

// lookup returns the entry for the encoded key, creating an in-flight one
// when absent. owner is true for the caller that must compute the result
// and finish (or abandon) the entry; all other callers wait on
// entry.ready. The key bytes are only retained on insertion (interned as
// a string); a hit performs no allocation.
func (c *resultCache) lookup(key []byte, hash uint64) (e *entry, owner bool) {
	sh := &c.shards[hash&c.mask]
	sh.mu.Lock()
	if e, ok := sh.entries[string(key)]; ok { // compiler-optimized: no alloc
		sh.lru.MoveToFront(e.elem)
		sh.mu.Unlock()
		return e, false
	}
	ks := string(key)
	e = &entry{shard: sh, key: ks, ready: make(chan struct{})}
	e.elem = sh.lru.PushFront(e)
	sh.entries[ks] = e
	sh.evictLocked()
	sh.mu.Unlock()
	return e, true
}

// finish publishes the owner's result. Errored computations are removed
// from the cache so the next request retries instead of serving the error
// forever.
func (c *resultCache) finish(e *entry, out *canonOutcome, err error) {
	sh := e.shard
	sh.mu.Lock()
	e.out, e.err = out, err
	if err != nil {
		sh.removeLocked(e)
	}
	sh.mu.Unlock()
	close(e.ready)
}

// abandon withdraws an in-flight entry whose computation never ran (shed
// or rejected by admission), failing any waiters with err.
func (c *resultCache) abandon(e *entry, err error) {
	c.finish(e, nil, err)
}

// removeLocked unlinks e if it is still the entry stored under its key.
func (sh *cacheShard) removeLocked(e *entry) {
	if cur, ok := sh.entries[e.key]; ok && cur == e {
		delete(sh.entries, e.key)
		sh.lru.Remove(e.elem)
	}
}

// evictLocked trims completed entries from the LRU tail down to the shard
// capacity. In-flight entries (ready still open) are skipped: they have
// waiters, and evicting them would strand every request deduplicated into
// the flight.
func (sh *cacheShard) evictLocked() {
	for el := sh.lru.Back(); el != nil && sh.lru.Len() > sh.cap; {
		prev := el.Prev()
		e := el.Value.(*entry)
		select {
		case <-e.ready:
			delete(sh.entries, e.key)
			sh.lru.Remove(el)
		default: // in flight; keep
		}
		el = prev
	}
}

// len reports the number of cached (including in-flight) entries.
func (c *resultCache) len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		total += len(sh.entries)
		sh.mu.Unlock()
	}
	return total
}

// shardCount reports the number of shards (for tests and the metrics
// gauge).
func (c *resultCache) shardCount() int { return len(c.shards) }
