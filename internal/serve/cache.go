package serve

import (
	"container/list"
	"strings"
	"sync"

	"repro/internal/ring"
)

// resultCache is the rotation-canonical LRU result cache. Election
// outcomes are rotation-invariant properties of the labeled ring (the
// paper's Theorems 2 and 4 hold for the network, not for any particular
// harness numbering), so the cache keys on the lexicographically least
// rotation of the clockwise label sequence — Booth's algorithm from
// internal/words, applied by the server before lookup — plus the
// algorithm and the multiplicity bound k. All n rotations of a ring
// therefore share one entry; the server maps the cached canonical-frame
// leader index back to the caller's frame on the way out.
//
// The cache also deduplicates concurrent identical work (singleflight):
// the first requester of a key becomes the entry's owner and runs the
// election; every other requester arriving before it finishes waits on
// the same entry and is counted as a hit. Failed or shed computations are
// removed so later requests retry.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*entry
	lru     *list.List // front = most recent; values are *lruItem
}

type cacheKey struct {
	canon string // canonical (least-rotation) label sequence, space-joined
	alg   string // algorithm name
	k     int
}

type lruItem struct {
	key cacheKey
	e   *entry
}

// entry is one cached (or in-flight) election result. ready is closed by
// the owner when out/err are set; waiters block on it.
type entry struct {
	ready chan struct{}
	out   *canonOutcome // leader index in the canonical frame
	err   error
	elem  *list.Element
}

// canonOutcome is an election outcome in the canonical rotation frame.
type canonOutcome struct {
	Leader        int // index in the canonical rotation
	LeaderLabel   ring.Label
	Messages      int
	TimeUnits     float64
	PeakSpaceBits int
	Engine        string // engine that computed the entry
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[cacheKey]*entry),
		lru:     list.New(),
	}
}

// canonSpec renders a label sequence as the cache-key string.
func canonSpec(labels []ring.Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(l.String())
	}
	return b.String()
}

// lookup returns the entry for key, creating an in-flight one when
// absent. owner is true for the caller that must compute the result and
// finish (or abandon) the entry; all other callers wait on entry.ready.
func (c *resultCache) lookup(key cacheKey) (e *entry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		return e, false
	}
	e = &entry{ready: make(chan struct{})}
	e.elem = c.lru.PushFront(&lruItem{key: key, e: e})
	c.entries[key] = e
	c.evictLocked()
	return e, true
}

// finish publishes the owner's result. Errored computations are removed
// from the cache so the next request retries instead of serving the error
// forever.
func (c *resultCache) finish(key cacheKey, e *entry, out *canonOutcome, err error) {
	c.mu.Lock()
	e.out, e.err = out, err
	if err != nil {
		c.removeLocked(key, e)
	}
	c.mu.Unlock()
	close(e.ready)
}

// abandon withdraws an in-flight entry whose computation never ran (shed
// or rejected by admission), failing any waiters with err.
func (c *resultCache) abandon(key cacheKey, e *entry, err error) {
	c.finish(key, e, nil, err)
}

// removeLocked unlinks e if it is still the entry stored under key.
func (c *resultCache) removeLocked(key cacheKey, e *entry) {
	if cur, ok := c.entries[key]; ok && cur == e {
		delete(c.entries, key)
		c.lru.Remove(e.elem)
	}
}

// evictLocked trims completed entries from the LRU tail down to capacity.
// In-flight entries (ready still open) are skipped: they have waiters.
func (c *resultCache) evictLocked() {
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.cap; {
		prev := el.Prev()
		it := el.Value.(*lruItem)
		select {
		case <-it.e.ready:
			delete(c.entries, it.key)
			c.lru.Remove(el)
		default: // in flight; keep
		}
		el = prev
	}
}

// len reports the number of cached (including in-flight) entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
