// End-to-end coverage for the randomized engine: symmetric rings — which
// every deterministic algorithm must 400 — served through ringd over both
// HTTP and the RGV1 wire, with rotation-canonical cache hits, plus a full
// load-generator mix that includes a symmetric class. Black-box (package
// serve_test) so the serve -> load import direction stays acyclic.
package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	repro "repro"
	"repro/internal/load"
	"repro/internal/ring"
	"repro/internal/serve"
)

// electJSON posts one election request and decodes the response,
// returning the status code alongside the (possibly zero) body.
func electJSON(t *testing.T, url, spec, alg string, k int) (int, serve.ElectResponse) {
	t.Helper()
	body := fmt.Sprintf(`{"ring":%q,"alg":%q,"k":%d}`, spec, alg, k)
	resp, err := http.Post(url+"/v1/elect", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/elect: %v", err)
	}
	defer resp.Body.Close()
	var er serve.ElectResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("decoding elect response: %v", err)
		}
	}
	return resp.StatusCode, er
}

// TestSymmetricRingServedEndToEnd is the acceptance scenario from the
// issue: a symmetric ring is a 400 under every deterministic algorithm,
// but under the randomized engine it is served, cached under its
// rotation-canonical key (a rotated resubmission is a cache hit), and
// the RGV1 wire path returns the identical outcome.
func TestSymmetricRingServedEndToEnd(t *testing.T) {
	var divergences []string
	var mu sync.Mutex
	s, url, shutdown := startServer(t, serve.Config{
		Workers:    2,
		Crosscheck: 1.0,
		OnDivergence: func(d string) {
			mu.Lock()
			divergences = append(divergences, d)
			mu.Unlock()
		},
	})
	defer shutdown()

	const spec = "1 2 1 2 1 2"
	const n = 6

	// Deterministic algorithms must refuse the symmetric ring.
	for _, alg := range []string{"A", "B", "A*", "ChangRoberts", "Peterson", "KnownN"} {
		if status, _ := electJSON(t, url, spec, alg, 3); status != http.StatusBadRequest {
			t.Errorf("alg %s on symmetric ring: status %d, want 400", alg, status)
		}
	}

	// The randomized engine serves it.
	status, first := electJSON(t, url, spec, "IR", 3)
	if status != http.StatusOK {
		t.Fatalf("IR on symmetric ring: status %d, want 200", status)
	}
	if first.Leader < 0 || first.Leader >= n {
		t.Fatalf("leader index %d outside [0, %d)", first.Leader, n)
	}
	labels := strings.Fields(spec)
	if first.LeaderLabel != labels[first.Leader] {
		t.Errorf("leader_label %q, want %q (label at index %d)", first.LeaderLabel, labels[first.Leader], first.Leader)
	}
	if first.Messages <= 0 || first.TotalBits <= 0 {
		t.Errorf("accounting missing: messages=%d total_bits=%d", first.Messages, first.TotalBits)
	}
	if first.Alg != "ItaiRodeh" {
		t.Errorf("alg echoed as %q, want ItaiRodeh", first.Alg)
	}

	// Exact repeat: a cache hit with the identical outcome — the seeded
	// engine is deterministic per ring, so "randomized" never means "a
	// different answer on the next request".
	status, again := electJSON(t, url, spec, "randomized", 3)
	if status != http.StatusOK || !again.Cached {
		t.Fatalf("repeat request: status=%d cached=%v, want 200 cached", status, again.Cached)
	}
	if again.Leader != first.Leader || again.Messages != first.Messages || again.TotalBits != first.TotalBits {
		t.Errorf("repeat diverged: %+v vs %+v", again, first)
	}

	// Every rotation of the ring hits the same canonical cache entry and
	// names the same canonical process as leader.
	canonLeader := (first.Leader - first.CanonicalRotation + n) % n
	for d := 1; d < n; d++ {
		rotSpec := strings.Join(append(append([]string{}, labels[d:]...), labels[:d]...), " ")
		status, rot := electJSON(t, url, rotSpec, "ir", 3)
		if status != http.StatusOK {
			t.Fatalf("rotation %d: status %d, want 200", d, status)
		}
		if !rot.Cached {
			t.Errorf("rotation %d missed the cache", d)
		}
		if rot.Canonical != first.Canonical {
			t.Errorf("rotation %d canonicalized to %q, want %q", d, rot.Canonical, first.Canonical)
		}
		if got := (rot.Leader - rot.CanonicalRotation + n) % n; got != canonLeader {
			t.Errorf("rotation %d elected canonical process %d, want %d", d, got, canonLeader)
		}
		if rot.Messages != first.Messages || rot.TotalBits != first.TotalBits {
			t.Errorf("rotation %d accounting diverged: messages=%d bits=%d, want %d/%d",
				d, rot.Messages, rot.TotalBits, first.Messages, first.TotalBits)
		}
	}

	// The RGV1 wire path serves the same symmetric ring with the same
	// outcome (and, with the cache warmed above, as a hit).
	ws := serve.NewWireServer(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- ws.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		if err := <-served; !errors.Is(err, serve.ErrWireServerClosed) {
			t.Errorf("wire Serve returned %v", err)
		}
	}()
	c, err := serve.DialWire(ln.Addr().String(), 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rl := make([]ring.Label, 0, n)
	for _, f := range labels {
		var l int64
		fmt.Sscan(f, &l)
		rl = append(rl, ring.Label(l))
	}
	out, err := c.Elect(rl, repro.AlgorithmItaiRodeh, 3)
	if err != nil {
		t.Fatalf("wire elect on symmetric ring: %v", err)
	}
	if out.Leader != first.Leader || out.Messages != first.Messages {
		t.Errorf("wire outcome %+v disagrees with HTTP %+v", out, first)
	}
	if !out.Cached {
		t.Error("wire request after HTTP warmup was not a cache hit")
	}

	// A deterministic algorithm over the wire gets the typed 400, not a
	// dropped connection.
	var we *serve.WireError
	if _, err := c.Elect(rl, repro.AlgorithmB, 3); !errors.As(err, &we) || we.Status != 400 {
		t.Errorf("wire alg B on symmetric ring: err %v, want *WireError status 400", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if snap := s.Metrics().Snapshot(); snap.Divergences != 0 || len(divergences) != 0 {
		t.Errorf("crosscheck divergences: %d, %v", snap.Divergences, divergences)
	}
}

// TestEndToEndSymmetricLoadMix runs the load generator with a symmetric
// share in the mix: symmetric-class requests ride the ItaiRodeh engine
// while the rest stay on B, and the whole run must verify clean — zero
// client crosscheck divergences and zero server-side ones.
func TestEndToEndSymmetricLoadMix(t *testing.T) {
	var divergences []string
	var mu sync.Mutex
	s, url, shutdown := startServer(t, serve.Config{
		Workers:    2,
		Crosscheck: 0.2,
		OnDivergence: func(d string) {
			mu.Lock()
			divergences = append(divergences, d)
			mu.Unlock()
		},
	})
	defer shutdown()

	rep, err := load.Run(load.Config{
		BaseURL:           url,
		Requests:          400,
		Workers:           8,
		Seed:              2,
		Alg:               "B",
		K:                 3,
		Crosscheck:        0.5,
		SymmetricFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransportErrors != 0 || rep.ServerErrors != 0 || rep.BadRequests != 0 {
		t.Errorf("unexpected failures: %+v", rep)
	}
	if rep.Crosschecks == 0 || rep.Divergences != 0 {
		t.Errorf("crosschecks=%d divergences=%d, want >0 and 0", rep.Crosschecks, rep.Divergences)
	}
	sym := rep.Classes[load.ClassSymmetric]
	if sym.Sent < 50 || sym.OK == 0 {
		t.Errorf("symmetric class: %+v, want ~100 sent and served", sym)
	}
	if sym.Cached == 0 {
		t.Error("symmetric hot set produced no cache hits")
	}
	mu.Lock()
	defer mu.Unlock()
	if snap := s.Metrics().Snapshot(); snap.Divergences != 0 || len(divergences) != 0 {
		t.Errorf("server crosscheck diverged: %d, %v", snap.Divergences, divergences)
	}
}
