package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ring"

	repro "repro"
)

// encKey builds an encoded cache key for tests.
func encKey(alg repro.Algorithm, k int, labels ...ring.Label) []byte {
	return appendCacheKey(nil, alg, k, labels, 0)
}

// TestShardSelection pins the shard-count policy: explicit requests round
// up to a power of two but never exceed the capacity; auto mode never
// splits a small cache (so tiny caches keep exact global-LRU semantics),
// and shard capacities always sum to the configured total.
func TestShardSelection(t *testing.T) {
	cases := []struct {
		capacity, requested, want int
	}{
		{4, 0, 1},      // auto: too small to split
		{63, 0, 1},     // auto: still below one full shard
		{4, 1, 1},      // explicit single shard
		{16, 5, 8},     // explicit rounds up to pow2
		{16, 16, 16},   // explicit exact
		{4, 64, 4},     // explicit clamped to capacity
		{4096, 8, 8},   // production-ish
		{4096, 64, 64}, // max useful split at default capacity
	}
	for _, c := range cases {
		if got := shardsFor(c.capacity, c.requested); got != c.want {
			t.Errorf("shardsFor(%d, %d) = %d, want %d", c.capacity, c.requested, got, c.want)
		}
		cache := newResultCache(c.capacity, c.requested)
		total := 0
		for i := range cache.shards {
			if cache.shards[i].cap < 1 {
				t.Errorf("capacity %d shards %d: shard %d has cap %d", c.capacity, c.requested, i, cache.shards[i].cap)
			}
			total += cache.shards[i].cap
		}
		if total != c.capacity {
			t.Errorf("capacity %d shards %d: shard caps sum to %d", c.capacity, c.requested, total)
		}
	}
}

// TestShardedCacheBounded floods a multi-shard cache with distinct
// completed keys and checks the total entry count never exceeds the
// configured capacity once every shard has seen eviction pressure.
func TestShardedCacheBounded(t *testing.T) {
	const capacity = 64
	c := newResultCache(capacity, 8)
	for i := 0; i < 40*capacity; i++ {
		key := encKey(repro.AlgorithmA, 2, 1, 2, ring.Label(i+3))
		e, owner := c.lookup(key, hashKey(key))
		if !owner {
			t.Fatalf("key %d: expected distinct keys to miss", i)
		}
		c.finish(e, &canonOutcome{Leader: 0}, nil)
	}
	if got := c.len(); got > capacity {
		t.Errorf("cache has %d entries, capacity %d", got, capacity)
	}
	// Re-requesting the newest key must hit its shard's LRU front.
	key := encKey(repro.AlgorithmA, 2, 1, 2, ring.Label(40*capacity+2))
	if _, owner := c.lookup(key, hashKey(key)); owner {
		t.Error("most recent key should still be cached")
	}
}

// TestRotationCanonicalCacheSharded reruns the rotation-invariance
// contract against an explicitly multi-shard cache: all rotations encode
// to one key, hence one shard and one entry, regardless of shard count.
func TestRotationCanonicalCacheSharded(t *testing.T) {
	s := New(Config{Workers: 2, CacheShards: 8})
	defer s.Close()
	h := s.Handler()
	base := ring.Figure1()
	for d := 0; d < base.N(); d++ {
		var resp ElectResponse
		code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: canonSpec(base.Rotate(d).Labels()), Alg: "B", K: 3}, &resp)
		if code != 200 {
			t.Fatalf("rotation %d: status %d", d, code)
		}
		if want := (base.N() - d) % base.N(); resp.Leader != want {
			t.Errorf("rotation %d: leader %d, want %d", d, resp.Leader, want)
		}
	}
	if got := s.cache.len(); got != 1 {
		t.Errorf("cache has %d entries, want 1 (all rotations share one shard entry)", got)
	}
	if snap := s.Metrics().Snapshot(); snap.Misses != 1 || snap.Hits != int64(base.N()-1) {
		t.Errorf("misses=%d hits=%d, want 1 and %d", snap.Misses, snap.Hits, base.N()-1)
	}
}

// TestWaiterSurvivesEviction is the waiter-vs-eviction race contract: an
// in-flight entry whose shard is under heavy eviction pressure must never
// be evicted out from under its waiters — every waiter still gets the
// owner's result. Exercised at both shard counts: 1 (the pre-shard
// global-LRU semantics) and 4.
func TestWaiterSurvivesEviction(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := newResultCache(shards, shards) // capacity 1 per shard: maximum pressure
			inflight := encKey(repro.AlgorithmB, 3, 7, 7, 9)
			owner, isOwner := c.lookup(inflight, hashKey(inflight))
			if !isOwner {
				t.Fatal("first lookup must own the entry")
			}

			const waiters = 8
			var wg sync.WaitGroup
			var got atomic.Int64
			for w := 0; w < waiters; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					e, own := c.lookup(inflight, hashKey(inflight))
					if own {
						t.Error("waiter unexpectedly became owner: in-flight entry was evicted")
						c.finish(e, &canonOutcome{Leader: -1}, nil) // unblock peers; -1 fails the count
						return
					}
					<-e.ready
					if e.err == nil && e.out != nil && e.out.Leader == 2 {
						got.Add(1)
					}
				}()
			}

			// Evict as hard as possible while the entry is in flight: every
			// one of these lands eviction passes on the in-flight entry's
			// shard (and the others).
			for i := 0; i < 200; i++ {
				key := encKey(repro.AlgorithmA, 2, 1, 2, ring.Label(i+3))
				e, own := c.lookup(key, hashKey(key))
				if own {
					c.finish(e, &canonOutcome{Leader: 0}, nil)
				}
			}

			c.finish(owner, &canonOutcome{Leader: 2}, nil)
			wg.Wait()
			if got.Load() != waiters {
				t.Errorf("%d of %d waiters saw the owner's result", got.Load(), waiters)
			}
		})
	}
}

// TestAbandonedWaitersRetry pins the other half of the contract: when the
// owner's computation is shed (abandon), waiters observe the shed error —
// a clean retry signal — and the next lookup becomes a fresh owner
// instead of waiting on a dead entry.
func TestAbandonedWaitersRetry(t *testing.T) {
	c := newResultCache(4, 4)
	key := encKey(repro.AlgorithmB, 3, 5, 6, 5)
	owner, isOwner := c.lookup(key, hashKey(key))
	if !isOwner {
		t.Fatal("first lookup must own the entry")
	}
	var wg, looked sync.WaitGroup
	shedErr := errors.New("shed")
	for w := 0; w < 4; w++ {
		wg.Add(1)
		looked.Add(1)
		go func() {
			defer wg.Done()
			e, own := c.lookup(key, hashKey(key))
			looked.Done()
			if own {
				t.Error("waiter became owner before abandon")
				c.finish(e, nil, shedErr) // unblock peers in the failure case
				return
			}
			<-e.ready
			if !errors.Is(e.err, shedErr) {
				t.Errorf("waiter error = %v, want the owner's shed error", e.err)
			}
		}()
	}
	looked.Wait() // every waiter is parked on the flight before it is shed
	c.abandon(owner, shedErr)
	wg.Wait()
	if _, own := c.lookup(key, hashKey(key)); !own {
		t.Error("lookup after abandon must start a fresh flight")
	}
}

// TestShardedCacheRaceStress hammers lookup/finish/abandon/evict across
// goroutines and shards; run under -race (make test-serve) it pins the
// absence of data races in the sharded hot path. Functional check: every
// waiter unblocks, and the cache stays within capacity.
func TestShardedCacheRaceStress(t *testing.T) {
	const (
		capacity = 16
		shards   = 4
		workers  = 8
		iters    = 400
	)
	c := newResultCache(capacity, shards)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// A deliberately small key space so goroutines collide on
				// entries and singleflight/waiter paths actually interleave.
				key := encKey(repro.AlgorithmA, 2, 1, 2, ring.Label(3+(i+w)%32))
				e, owner := c.lookup(key, hashKey(key))
				if owner {
					if i%7 == 0 {
						c.abandon(e, errSaturated)
					} else {
						c.finish(e, &canonOutcome{Leader: i % 3}, nil)
					}
				} else {
					<-e.ready
					if e.err == nil && e.out == nil {
						t.Error("completed entry with neither result nor error")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.len(); got > capacity {
		t.Errorf("cache has %d entries, capacity %d", got, capacity)
	}
}
