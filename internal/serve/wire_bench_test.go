package serve

import (
	"bytes"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	repro "repro"
)

// The tentpole A/B pair: one cached election hit served through the
// RGV1 wire path versus through the HTTP/JSON path, measured over the
// same pre-warmed cache. Both process exactly one request per op at the
// protocol layer — frame decode / canonicalize / lookup / frame encode
// for the wire, HTTP routing / JSON decode / validate / canonicalize /
// lookup / JSON encode for HTTP — which is precisely the per-request
// cost the v2 protocol exists to cut. BENCH_PR6.json pins the ratio
// (wire must stay ≥5x HTTP) via benchdiff's wire_bench section.

// benchWireBodies pre-encodes one ELECT frame body (length prefix
// stripped, as processFrame receives it) per rotated ring variant.
func benchWireBodies(b *testing.B, nRings, nRots int) (*Server, [][]byte) {
	b.Helper()
	base := benchRings(nRings, 32)
	s := New(Config{Workers: 1, CacheEntries: 4096})
	b.Cleanup(s.Close)
	for _, rg := range base {
		key, _, sc := canonicalKey(rg.LabelsView(), repro.AlgorithmB, 32)
		e, owner := s.cache.lookup(key, hashKey(key))
		sc.release()
		if !owner {
			b.Fatal("benchmark rings must be distinct")
		}
		s.cache.finish(e, &canonOutcome{Leader: 0, LeaderLabel: 1, Messages: 276}, nil)
	}
	variants := rotations(base, nRots)
	bodies := make([][]byte, len(variants))
	for i, rg := range variants {
		bodies[i] = appendWireElect(nil, uint64(i), repro.AlgorithmB, 32, rg.LabelsView())[4:]
	}
	return s, bodies
}

// BenchmarkWireHit: one served wire cache hit — frame decode into
// connection scratch, Booth canonicalization, sharded lookup, RESULT
// frame appended through the batched writer, metrics. Parallel over
// per-goroutine connections, as real traffic is. Expect 0 allocs/op.
func BenchmarkWireHit(b *testing.B) {
	const nRings, nRots = 128, 4
	s, bodies := benchWireBodies(b, nRings, nRots)
	ws := NewWireServer(s)

	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		wc := newWireConn(ws, discardConn{})
		defer wc.w.close()
		i := int(gid.Add(1)) * 131
		// Size the connection's scratch and writer buffers outside the
		// measured region, as a warm connection would be.
		for j := 0; j < 128; j++ {
			if !wc.processFrame(bodies[(i+j)%len(bodies)]) {
				b.Fatal("warmup frame rejected")
			}
		}
		for pb.Next() {
			if !wc.processFrame(bodies[i%len(bodies)]) {
				b.Fatal("frame rejected")
			}
			i++
		}
	})
	b.StopTimer()
	if misses := s.Metrics().Snapshot().Misses; misses != 0 {
		b.Fatalf("%d unexpected misses on a pre-warmed cache", misses)
	}
}

// BenchmarkHTTPHit: the same cached hit through the HTTP/JSON surface —
// mux routing, JSON decode, validation (including ProtocolFor),
// canonicalization, lookup, JSON encode. The denominator of the ≥5x
// acceptance ratio.
func BenchmarkHTTPHit(b *testing.B) {
	const nRings, nRots = 128, 4
	base := benchRings(nRings, 32)
	s := New(Config{Workers: 1, CacheEntries: 4096})
	b.Cleanup(s.Close)
	h := s.Handler()
	variants := rotations(base, nRots)
	bodies := make([][]byte, len(variants))
	for i, rg := range variants {
		bodies[i] = []byte(`{"ring":"` + canonSpec(rg.LabelsView()) + `","alg":"B","k":32}`)
	}
	for _, rg := range base {
		key, _, sc := canonicalKey(rg.LabelsView(), repro.AlgorithmB, 32)
		e, owner := s.cache.lookup(key, hashKey(key))
		sc.release()
		if !owner {
			b.Fatal("benchmark rings must be distinct")
		}
		s.cache.finish(e, &canonOutcome{Leader: 0, LeaderLabel: 1, Messages: 276}, nil)
	}

	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(gid.Add(1)) * 131
		for pb.Next() {
			body := bodies[i%len(bodies)]
			i++
			req := httptest.NewRequest("POST", "/v1/elect", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
	b.StopTimer()
	if misses := s.Metrics().Snapshot().Misses; misses != 0 {
		b.Fatalf("%d unexpected misses on a pre-warmed cache", misses)
	}
}
