// End-to-end tests: the load generator (internal/load) driven against a
// real ringd server on a loopback listener. Black-box (package
// serve_test) so the serve -> load import direction stays acyclic.
package serve_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/serve"
)

// startServer runs a serve.Server behind a real http.Server on a
// loopback port and returns its base URL plus a shutdown func honoring
// the contract: http.Server.Shutdown first, then serve.Server.Close.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, string, func()) {
	t.Helper()
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			t.Errorf("serve: %v", err)
		}
	}()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		s.Close()
		<-done
	}
	return s, "http://" + ln.Addr().String(), shutdown
}

// TestEndToEndLoadMix is the acceptance run from the issue: a seeded
// 1000-request hot/cold/rotated mix against an in-process ringd with
// crosschecking on. It must complete with zero divergences (both the
// server's sampled self-checks and the client's independent re-runs),
// a cache hit-rate above 50% on the hot+rotated portion, and every
// shed — if any — answered 429 with a Retry-After header.
func TestEndToEndLoadMix(t *testing.T) {
	var divergences []string
	var mu sync.Mutex
	s, url, shutdown := startServer(t, serve.Config{
		Workers:    2,
		Crosscheck: 0.2,
		OnDivergence: func(d string) {
			mu.Lock()
			divergences = append(divergences, d)
			mu.Unlock()
		},
	})
	defer shutdown()

	rep, err := load.Run(load.Config{
		BaseURL:    url,
		Requests:   1000,
		Workers:    8,
		Seed:       1,
		Alg:        "B",
		K:          3,
		Crosscheck: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.TransportErrors != 0 || rep.ServerErrors != 0 || rep.BadRequests != 0 {
		t.Errorf("unexpected failures: %+v", rep)
	}
	if rep.OK+rep.Shed != rep.Requests {
		t.Errorf("every request must be answered OK or shed: %+v", rep)
	}
	if rep.Shed != rep.ShedsWithRetryAfter {
		t.Errorf("%d sheds but only %d carried Retry-After", rep.Shed, rep.ShedsWithRetryAfter)
	}
	if rep.Crosschecks < 200 || rep.Divergences != 0 {
		t.Errorf("client crosschecks=%d divergences=%d, want >=200 and 0", rep.Crosschecks, rep.Divergences)
	}

	// Cache effectiveness on the portion the cache exists for: hot
	// repeats and rotated resubmissions of hot rings.
	hot, rot := rep.Classes[load.ClassHot], rep.Classes[load.ClassRotated]
	servedHotRot := hot.OK + rot.OK
	cachedHotRot := hot.Cached + rot.Cached
	if servedHotRot == 0 {
		t.Fatal("plan produced no hot/rotated traffic")
	}
	if rate := float64(cachedHotRot) / float64(servedHotRot); rate <= 0.5 {
		t.Errorf("hot+rotated hit-rate %.2f (cached %d of %d), want > 0.5", rate, cachedHotRot, servedHotRot)
	}

	// Server-side sampled self-checks must agree too.
	snap := s.Metrics().Snapshot()
	mu.Lock()
	defer mu.Unlock()
	if snap.Divergences != 0 || len(divergences) != 0 {
		t.Errorf("server crosscheck diverged: %d, %v", snap.Divergences, divergences)
	}
	if snap.Crosschecks == 0 {
		t.Error("server sampled no cache hits despite Crosscheck=0.2")
	}
	if snap.Hits == 0 || snap.Misses == 0 {
		t.Errorf("mix should produce both hits and misses: %+v", snap)
	}
}

// TestEndToEndGracefulDrain shuts the server down in the middle of a
// concurrent request storm. Every in-flight request must complete (200)
// or be refused promptly (429/503 or a connection error once the
// listener is down) — none may hang — and Shutdown+Close must return.
func TestEndToEndGracefulDrain(t *testing.T) {
	_, url, shutdown := startServer(t, serve.Config{
		Workers:   2,
		BatchWait: 5 * time.Millisecond,
	})

	const clients = 12
	var mu sync.Mutex
	var ok, refused, connErrs int
	var unexpected []int
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Distinct rings: every request is a miss that must ride
				// the queue, so the drain has real work to wait for.
				spec := fmt.Sprintf("1 2 %d %d", 3+c, 4+i%97)
				body := fmt.Sprintf(`{"ring":%q,"alg":"B","k":2}`, spec)
				resp, err := client.Post(url+"/v1/elect", "application/json", strings.NewReader(body))
				mu.Lock()
				switch {
				case err != nil:
					connErrs++ // listener already closed: acceptable, not a hang
				case resp.StatusCode == http.StatusOK:
					ok++
				case resp.StatusCode == http.StatusTooManyRequests,
					resp.StatusCode == http.StatusServiceUnavailable:
					refused++
				default:
					unexpected = append(unexpected, resp.StatusCode)
				}
				mu.Unlock()
				if err == nil {
					resp.Body.Close()
				}
			}
		}(c)
	}

	// Let the storm build, then shut down mid-flight.
	time.Sleep(50 * time.Millisecond)
	drained := make(chan struct{})
	go func() {
		shutdown()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(60 * time.Second):
		t.Fatal("shutdown did not drain: in-flight elections leaked")
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, status := range unexpected {
		t.Errorf("unexpected status %d during drain", status)
	}
	if ok == 0 {
		t.Error("no request succeeded before shutdown; storm never overlapped the drain")
	}
	t.Logf("drain: %d ok, %d refused, %d post-shutdown connection errors", ok, refused, connErrs)
}
