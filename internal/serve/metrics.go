package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/stats"
)

// Metrics is the daemon's observability registry: request/response
// counters, cache and shed counters, an in-flight gauge, and per-endpoint
// latency histograms, all hand-rolled on the standard library and exposed
// in the Prometheus text format by WritePrometheus. One instance per
// Server; every handler passes through ObserveRequest via the
// instrumentation middleware.
type Metrics struct {
	mu          sync.Mutex
	start       time.Time
	requests    map[string]int64 // by endpoint
	responses   map[int]int64    // by status code
	latency     map[string]*stats.Histogram
	hits        int64
	misses      int64
	sheds       int64
	errors      int64 // 5xx responses
	crosschecks int64
	divergences int64
	inFlight    int64
	gauges      map[string]func() float64 // extra gauges (cache size, queue depth)
}

// NewMetrics builds an empty registry. gauges supplies additional
// point-in-time values (e.g. cache entries) sampled at exposition time.
func NewMetrics(gauges map[string]func() float64) *Metrics {
	return &Metrics{
		start:     time.Now(),
		requests:  make(map[string]int64),
		responses: make(map[int]int64),
		latency:   make(map[string]*stats.Histogram),
		gauges:    gauges,
	}
}

// ObserveRequest records one completed request: endpoint counter, status
// counter, latency histogram, and the shed/error counters derived from
// the status code (429 → shed, 5xx → error).
func (m *Metrics) ObserveRequest(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint]++
	m.responses[status]++
	h, ok := m.latency[endpoint]
	if !ok {
		h = stats.MustHistogram(stats.DefaultLatencyBuckets)
		m.latency[endpoint] = h
	}
	h.Observe(d.Seconds())
	if status == 429 {
		m.sheds++
	}
	if status >= 500 {
		m.errors++
	}
}

// IncInFlight / DecInFlight maintain the in-flight request gauge.
func (m *Metrics) IncInFlight() { m.mu.Lock(); m.inFlight++; m.mu.Unlock() }

// DecInFlight decrements the in-flight request gauge.
func (m *Metrics) DecInFlight() { m.mu.Lock(); m.inFlight--; m.mu.Unlock() }

// CacheHit records a request answered from (or deduplicated into) the
// rotation-canonical result cache.
func (m *Metrics) CacheHit() { m.mu.Lock(); m.hits++; m.mu.Unlock() }

// CacheMiss records a request that had to run its election.
func (m *Metrics) CacheMiss() { m.mu.Lock(); m.misses++; m.mu.Unlock() }

// Crosscheck records one sampled cache hit re-verified through the
// simulator; diverged marks the re-run disagreeing with the cached result.
func (m *Metrics) Crosscheck(diverged bool) {
	m.mu.Lock()
	m.crosschecks++
	if diverged {
		m.divergences++
	}
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of the counters, for tests and the
// periodic log line.
type Snapshot struct {
	Requests    int64
	Hits        int64
	Misses      int64
	Sheds       int64
	Errors      int64
	Crosschecks int64
	Divergences int64
	InFlight    int64
}

// Snapshot returns a consistent copy of the counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Hits:        m.hits,
		Misses:      m.misses,
		Sheds:       m.sheds,
		Errors:      m.errors,
		Crosschecks: m.crosschecks,
		Divergences: m.divergences,
		InFlight:    m.inFlight,
	}
	for _, c := range m.requests {
		s.Requests += c
	}
	return s
}

// LogLine renders the one-line periodic operational summary.
func (m *Metrics) LogLine() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, c := range m.requests {
		total += c
	}
	hitRate := 0.0
	if m.hits+m.misses > 0 {
		hitRate = 100 * float64(m.hits) / float64(m.hits+m.misses)
	}
	p95 := 0.0
	if h, ok := m.latency["/v1/elect"]; ok && h.Count() > 0 {
		p95 = h.Quantile(0.95) * 1000
	}
	return fmt.Sprintf("served=%d hit=%d miss=%d (%.1f%% hit) shed=%d err=%d crosscheck=%d/%d inflight=%d p95(elect)=%.2fms",
		total, m.hits, m.misses, hitRate, m.sheds, m.errors, m.divergences, m.crosschecks, m.inFlight, p95)
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (v0.0.4), with deterministic ordering so the output is diffable.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP ringd_requests_total Requests received, by endpoint.\n# TYPE ringd_requests_total counter\n")
	for _, ep := range sortedKeys(m.requests) {
		fmt.Fprintf(w, "ringd_requests_total{endpoint=%q} %d\n", ep, m.requests[ep])
	}

	fmt.Fprintf(w, "# HELP ringd_responses_total Responses sent, by status code.\n# TYPE ringd_responses_total counter\n")
	codes := make([]int, 0, len(m.responses))
	for c := range m.responses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "ringd_responses_total{code=\"%d\"} %d\n", c, m.responses[c])
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("ringd_cache_hits_total", "Elect requests answered from or deduplicated into the canonical result cache.", m.hits)
	counter("ringd_cache_misses_total", "Elect requests that ran an election.", m.misses)
	counter("ringd_shed_total", "Requests shed with 429 by the admission layer.", m.sheds)
	counter("ringd_errors_total", "Responses with a 5xx status.", m.errors)
	counter("ringd_crosscheck_total", "Cache hits re-verified through the simulator.", m.crosschecks)
	counter("ringd_crosscheck_divergence_total", "Crosscheck re-runs that disagreed with the cached result.", m.divergences)

	fmt.Fprintf(w, "# HELP ringd_in_flight Requests currently being served.\n# TYPE ringd_in_flight gauge\nringd_in_flight %d\n", m.inFlight)
	for _, name := range sortedKeys(m.gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(m.gauges[name]()))
	}
	fmt.Fprintf(w, "# HELP ringd_uptime_seconds Seconds since the server started.\n# TYPE ringd_uptime_seconds gauge\nringd_uptime_seconds %s\n", formatFloat(time.Since(m.start).Seconds()))

	fmt.Fprintf(w, "# HELP ringd_request_seconds Request latency, by endpoint.\n# TYPE ringd_request_seconds histogram\n")
	for _, ep := range sortedKeys(m.latency) {
		h := m.latency[ep]
		h.Buckets(func(upper float64, cum int64) {
			fmt.Fprintf(w, "ringd_request_seconds_bucket{endpoint=%q,le=%q} %d\n", ep, formatFloat(upper), cum)
		})
		fmt.Fprintf(w, "ringd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.Count())
		fmt.Fprintf(w, "ringd_request_seconds_sum{endpoint=%q} %s\n", ep, formatFloat(h.Sum()))
		fmt.Fprintf(w, "ringd_request_seconds_count{endpoint=%q} %d\n", ep, h.Count())
	}
}

// latencyQuantile reports a quantile of an endpoint's latency histogram in
// seconds (0 when the endpoint has no samples). For tests and reports.
func (m *Metrics) latencyQuantile(endpoint string, q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[endpoint]
	if !ok || h.Count() == 0 {
		return 0
	}
	return h.Quantile(q)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
