package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// maxStatus bounds the per-status-code response counter array. HTTP
// status codes live in [100, 599]; anything outside is clamped into the
// overflow slot 0.
const maxStatus = 600

// Metrics is the daemon's observability registry: request/response
// counters, cache and shed counters, an in-flight gauge, and per-endpoint
// latency histograms, all hand-rolled on the standard library and exposed
// in the Prometheus text format by WritePrometheus. One instance per
// Server; every handler passes through the instrumentation middleware.
//
// The request path is lock-free: every counter is a sync/atomic value,
// status codes index a fixed atomic array, endpoint handles are resolved
// once at mux construction (a sync.Map covers the dynamic ObserveRequest
// entry point), and latency lands in a striped histogram
// (stats.Striped) that is only merged when /metrics is scraped. No
// request ever takes a registry-wide mutex.
type Metrics struct {
	start       time.Time
	responses   [maxStatus]atomic.Int64
	endpoints   sync.Map // string -> *endpointStats
	hits        atomic.Int64
	misses      atomic.Int64
	sheds       atomic.Int64
	errors      atomic.Int64 // 5xx responses
	crosschecks atomic.Int64
	divergences atomic.Int64
	panics      atomic.Int64
	inFlight    atomic.Int64
	handshakes  atomic.Int64              // secure handshake failures on a key-configured port
	rateLimited atomic.Int64              // requests shed by the per-peer rate limiter
	gauges      map[string]func() float64 // read-only after construction
}

// endpointStats is one endpoint's slice of the registry: an atomic
// request counter and a striped latency recorder. Handlers hold a handle
// to their endpointStats, resolved once when the mux is built, so the
// per-request path performs no map lookup at all.
type endpointStats struct {
	name     string
	requests atomic.Int64
	latency  *stats.Striped
}

// NewMetrics builds an empty registry. gauges supplies additional
// point-in-time values (e.g. cache entries) sampled at exposition time.
func NewMetrics(gauges map[string]func() float64) *Metrics {
	return &Metrics{
		start:  time.Now(),
		gauges: gauges,
	}
}

// Endpoint returns (registering on first use) the stats handle for an
// endpoint. Resolve once and reuse: observing through the handle is the
// lock-free fast path.
func (m *Metrics) Endpoint(name string) *endpointStats {
	if ep, ok := m.endpoints.Load(name); ok {
		return ep.(*endpointStats)
	}
	ep := &endpointStats{name: name, latency: stats.MustStriped(0, stats.DefaultLatencyBuckets)}
	actual, _ := m.endpoints.LoadOrStore(name, ep)
	return actual.(*endpointStats)
}

// observe records one completed request on a pre-resolved endpoint
// handle: endpoint counter, status counter, latency stripe, and the
// shed/error counters derived from the status code (429 → shed, 5xx →
// error). Entirely atomic; no shared lock.
func (m *Metrics) observe(ep *endpointStats, status int, d time.Duration) {
	ep.requests.Add(1)
	m.responses[clampStatus(status)].Add(1)
	ep.latency.Observe(d.Seconds())
	if status == 429 {
		m.sheds.Add(1)
	}
	if status >= 500 {
		m.errors.Add(1)
	}
}

// ObserveRequest records one completed request by endpoint name. It is
// the dynamic-entry form of observe for callers without a handle (tests,
// ad-hoc instrumentation); the serving middleware uses handles.
func (m *Metrics) ObserveRequest(endpoint string, status int, d time.Duration) {
	m.observe(m.Endpoint(endpoint), status, d)
}

func clampStatus(status int) int {
	if status < 0 || status >= maxStatus {
		return 0
	}
	return status
}

// IncInFlight / DecInFlight maintain the in-flight request gauge.
func (m *Metrics) IncInFlight() { m.inFlight.Add(1) }

// DecInFlight decrements the in-flight request gauge.
func (m *Metrics) DecInFlight() { m.inFlight.Add(-1) }

// CacheHit records a request answered from (or deduplicated into) the
// rotation-canonical result cache.
func (m *Metrics) CacheHit() { m.hits.Add(1) }

// CacheMiss records a request that had to run its election.
func (m *Metrics) CacheMiss() { m.misses.Add(1) }

// Panic records one handler panic contained by the middleware.
func (m *Metrics) Panic() { m.panics.Add(1) }

// HandshakeFailure records a connection to a key-configured port that
// did not complete the secure handshake — a plaintext client, a peer
// with the wrong key, or injected garbage. Distinct from sheds: these
// connections never produced a request.
func (m *Metrics) HandshakeFailure() { m.handshakes.Add(1) }

// HandshakeFailures reads the handshake-failure counter (for tests).
func (m *Metrics) HandshakeFailures() int64 { return m.handshakes.Load() }

// RateLimited records a request shed by the per-peer token-bucket rate
// limiter (it also counts as a shed via the 429 status observation).
func (m *Metrics) RateLimited() { m.rateLimited.Add(1) }

// Crosscheck records one sampled cache hit re-verified through the
// simulator; diverged marks the re-run disagreeing with the cached result.
func (m *Metrics) Crosscheck(diverged bool) {
	m.crosschecks.Add(1)
	if diverged {
		m.divergences.Add(1)
	}
}

// Snapshot is a point-in-time copy of the counters, for tests and the
// periodic log line.
type Snapshot struct {
	Requests          int64
	Hits              int64
	Misses            int64
	Sheds             int64
	Errors            int64
	Crosschecks       int64
	Divergences       int64
	Panics            int64
	InFlight          int64
	HandshakeFailures int64
	RateLimited       int64
}

// Snapshot returns a copy of the counters. Each counter is read
// atomically; the copy as a whole is as consistent as concurrent
// lock-free counters allow, which is what the callers (tests after
// quiescence, the periodic log line) need.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Hits:              m.hits.Load(),
		Misses:            m.misses.Load(),
		Sheds:             m.sheds.Load(),
		Errors:            m.errors.Load(),
		Crosschecks:       m.crosschecks.Load(),
		Divergences:       m.divergences.Load(),
		Panics:            m.panics.Load(),
		InFlight:          m.inFlight.Load(),
		HandshakeFailures: m.handshakes.Load(),
		RateLimited:       m.rateLimited.Load(),
	}
	m.endpoints.Range(func(_, v any) bool {
		s.Requests += v.(*endpointStats).requests.Load()
		return true
	})
	return s
}

// LogLine renders the one-line periodic operational summary.
func (m *Metrics) LogLine() string {
	s := m.Snapshot()
	hitRate := 0.0
	if s.Hits+s.Misses > 0 {
		hitRate = 100 * float64(s.Hits) / float64(s.Hits+s.Misses)
	}
	p95 := m.latencyQuantile("/v1/elect", 0.95) * 1000
	return fmt.Sprintf("served=%d hit=%d miss=%d (%.1f%% hit) shed=%d err=%d crosscheck=%d/%d inflight=%d p95(elect)=%.2fms",
		s.Requests, s.Hits, s.Misses, hitRate, s.Sheds, s.Errors, s.Divergences, s.Crosschecks, s.InFlight, p95)
}

// sortedEndpoints snapshots the endpoint registry in name order.
func (m *Metrics) sortedEndpoints() []*endpointStats {
	var eps []*endpointStats
	m.endpoints.Range(func(_, v any) bool {
		eps = append(eps, v.(*endpointStats))
		return true
	})
	sort.Slice(eps, func(i, j int) bool { return eps[i].name < eps[j].name })
	return eps
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (v0.0.4), with deterministic ordering so the output is diffable.
// This is the merge-on-scrape read path: each endpoint's latency stripes
// are folded into one histogram here, once per scrape, instead of
// serializing writers per request.
func (m *Metrics) WritePrometheus(w io.Writer) {
	eps := m.sortedEndpoints()

	fmt.Fprintf(w, "# HELP ringd_requests_total Requests received, by endpoint.\n# TYPE ringd_requests_total counter\n")
	for _, ep := range eps {
		fmt.Fprintf(w, "ringd_requests_total{endpoint=%q} %d\n", ep.name, ep.requests.Load())
	}

	fmt.Fprintf(w, "# HELP ringd_responses_total Responses sent, by status code.\n# TYPE ringd_responses_total counter\n")
	for code := range m.responses {
		if v := m.responses[code].Load(); v != 0 {
			fmt.Fprintf(w, "ringd_responses_total{code=\"%d\"} %d\n", code, v)
		}
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("ringd_cache_hits_total", "Elect requests answered from or deduplicated into the canonical result cache.", m.hits.Load())
	counter("ringd_cache_misses_total", "Elect requests that ran an election.", m.misses.Load())
	counter("ringd_shed_total", "Requests shed with 429 by the admission layer.", m.sheds.Load())
	counter("ringd_errors_total", "Responses with a 5xx status.", m.errors.Load())
	counter("ringd_crosscheck_total", "Cache hits re-verified through the simulator.", m.crosschecks.Load())
	counter("ringd_crosscheck_divergence_total", "Crosscheck re-runs that disagreed with the cached result.", m.divergences.Load())
	counter("ringd_panics_total", "Handler panics contained by the recovery middleware.", m.panics.Load())
	counter("ringd_handshake_failures_total", "Connections to a key-configured port that failed the secure handshake (plaintext, wrong key, or garbage).", m.handshakes.Load())
	counter("ringd_rate_limited_total", "Requests shed by the per-peer token-bucket rate limiter.", m.rateLimited.Load())

	fmt.Fprintf(w, "# HELP ringd_in_flight Requests currently being served.\n# TYPE ringd_in_flight gauge\nringd_in_flight %d\n", m.inFlight.Load())
	for _, name := range sortedKeys(m.gauges) {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(m.gauges[name]()))
	}
	fmt.Fprintf(w, "# HELP ringd_uptime_seconds Seconds since the server started.\n# TYPE ringd_uptime_seconds gauge\nringd_uptime_seconds %s\n", formatFloat(time.Since(m.start).Seconds()))

	fmt.Fprintf(w, "# HELP ringd_request_seconds Request latency, by endpoint.\n# TYPE ringd_request_seconds histogram\n")
	for _, ep := range eps {
		h := ep.latency.Snapshot()
		h.Buckets(func(upper float64, cum int64) {
			fmt.Fprintf(w, "ringd_request_seconds_bucket{endpoint=%q,le=%q} %d\n", ep.name, formatFloat(upper), cum)
		})
		fmt.Fprintf(w, "ringd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep.name, h.Count())
		fmt.Fprintf(w, "ringd_request_seconds_sum{endpoint=%q} %s\n", ep.name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "ringd_request_seconds_count{endpoint=%q} %d\n", ep.name, h.Count())
	}
}

// latencyQuantile reports a quantile of an endpoint's latency histogram in
// seconds (0 when the endpoint has no samples). For tests and reports.
func (m *Metrics) latencyQuantile(endpoint string, q float64) float64 {
	ep, ok := m.endpoints.Load(endpoint)
	if !ok {
		return 0
	}
	h := ep.(*endpointStats).latency.Snapshot()
	if h.Count() == 0 {
		return 0
	}
	return h.Quantile(q)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
