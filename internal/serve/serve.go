// Package serve is the election-serving subsystem behind cmd/ringd: an
// HTTP/JSON daemon that answers leader-election queries over labeled
// unidirectional rings at traffic rates the raw engines could not
// sustain, by exploiting the paper's own structure. Election outcomes on
// a ring are rotation-invariant (Theorems 2 and 4 are statements about
// the network, not its numbering), so the server canonicalizes every
// request to the lexicographically least rotation of its label sequence
// (Booth's algorithm, internal/words) and serves repeats — including
// every rotated resubmission of a known ring — from an LRU cache,
// mapping the cached canonical leader index back into the caller's
// frame. Three layers:
//
//   - a rotation-canonical result cache keyed by (least rotation, alg, k)
//     with singleflight deduplication of concurrent identical requests;
//   - a bounded admission layer that batches cache misses through the
//     internal/sweep worker pool and sheds overload with 429 +
//     Retry-After instead of queueing without bound;
//   - an observability layer: counters, per-endpoint latency histograms
//     (internal/stats), an in-flight gauge, a Prometheus text /metrics
//     endpoint, and a periodic one-line operational log.
//
// A configurable crosscheck mode re-runs a sampled fraction of cache
// hits through the deterministic simulator and fails loudly on
// divergence — the serving-path sibling of experiment E10's three-way
// engine agreement. Graceful shutdown drains in-flight elections.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
	"repro/internal/sweep"
	"repro/internal/words"

	repro "repro"
)

// errBadRequest marks a cache entry abandoned because its request was
// unservable (oversized, symmetric, or otherwise invalid ring). The HTTP
// path rejects such requests before the cache lookup; the wire path only
// discovers them on the miss path after materializing the ring, so
// deduplicated waiters — on either protocol — need the sentinel to map
// the failure to 400 rather than 500.
var errBadRequest = errors.New("bad request")

// Config parameterizes a Server. The zero value gets sensible defaults
// from New.
type Config struct {
	// CacheEntries bounds the result cache (default 4096 entries).
	CacheEntries int
	// CacheShards is the number of independently locked cache shards,
	// rounded up to a power of two (0 = auto: scales with GOMAXPROCS but
	// never splits a small cache below 64 entries per shard). More shards
	// mean less lock contention on the hit path; capacity is divided
	// across them and eviction is per-shard LRU.
	CacheShards int
	// QueueDepth bounds the admission queue; a full queue sheds with 429
	// (default 256).
	QueueDepth int
	// Workers is the election worker-pool width (default: one per CPU,
	// via sweep.DefaultWorkers).
	Workers int
	// BatchSize is the largest admission batch fanned across the pool at
	// once (default 16).
	BatchSize int
	// BatchWait is how long the dispatcher waits to fill a batch after
	// its first task (default 2ms).
	BatchWait time.Duration
	// RequestTimeout bounds one request's total queue + election time
	// (default 30s). Requests that out-wait it in the queue are shed.
	RequestTimeout time.Duration
	// ElectTimeout is the goroutine engine's watchdog (default 1m).
	ElectTimeout time.Duration
	// MaxRingSize rejects larger rings with 400 before they reach an
	// engine (default 4096 processes).
	MaxRingSize int
	// Crosscheck is the fraction of cache hits re-verified through the
	// deterministic simulator (0 = off, 1 = every hit).
	Crosscheck float64
	// OnDivergence is called with a description when a crosscheck
	// disagrees with the cached result. Default: panic — a divergence
	// means the cache layer broke the engines' agreement invariant, and
	// serving wrong leaders quietly is the one unacceptable failure.
	OnDivergence func(detail string)
	// RateLimit, when set, applies a per-peer token bucket to /v1/elect,
	// keyed by remote host (the HTTP edge has no authenticated peer
	// identity; put the encrypted wire port in front of untrusted
	// tenants for key-keyed limits). Over-budget requests get 429 with
	// a Retry-After hint before any parsing work is done.
	RateLimit *RateLimitConfig
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// LogEvery is the period of the metrics summary log line (0 = off;
	// requires Logf).
	LogEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	c.Workers = sweep.DefaultWorkers(c.Workers)
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ElectTimeout <= 0 {
		c.ElectTimeout = time.Minute
	}
	if c.MaxRingSize <= 0 {
		c.MaxRingSize = 4096
	}
	if c.OnDivergence == nil {
		c.OnDivergence = func(detail string) {
			panic("serve: crosscheck divergence: " + detail)
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is one election-serving instance. Build with New, mount
// Handler() on an http.Server, and Close() after the http.Server has
// shut down (Close drains the admission queue, so the order matters:
// first stop accepting connections, then drain).
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache
	adm     *admission
	limiter *rateLimiter // nil unless Config.RateLimit is set

	hitSeq   atomic.Int64 // crosscheck sampling counter
	reqSeq   atomic.Int64 // request-id counter (panic reports)
	draining atomic.Bool  // readiness: flipped by BeginDrain, served by /readyz

	stopLog chan struct{}
	logWG   sync.WaitGroup
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheEntries, cfg.CacheShards),
		stopLog: make(chan struct{}),
	}
	s.metrics = NewMetrics(map[string]func() float64{
		"ringd_cache_entries": func() float64 { return float64(s.cache.len()) },
		"ringd_cache_shards":  func() float64 { return float64(s.cache.shardCount()) },
		"ringd_queue_depth":   func() float64 { return float64(len(s.adm.queue)) },
	})
	s.adm = newAdmission(cfg.QueueDepth, cfg.Workers, cfg.BatchSize, cfg.BatchWait)
	if cfg.RateLimit != nil {
		s.limiter = newRateLimiter(*cfg.RateLimit)
	}
	if cfg.LogEvery > 0 {
		s.logWG.Add(1)
		go s.logLoop()
	}
	return s
}

// Metrics exposes the server's metrics registry (for tests and the
// daemon's final summary line).
func (s *Server) Metrics() *Metrics { return s.metrics }

// BeginDrain flips /readyz to 503 without touching the serving path. Call
// it the moment shutdown is decided — before http.Server.Shutdown — so a
// load balancer health-checking /readyz stops routing new traffic while
// in-flight requests are still being answered. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains and stops the server's background work: every admitted
// election runs to completion, then the dispatcher and the periodic
// logger exit. Call only after the HTTP listener has stopped accepting
// requests (http.Server.Shutdown).
func (s *Server) Close() {
	s.adm.close()
	close(s.stopLog)
	s.logWG.Wait()
}

func (s *Server) logLoop() {
	defer s.logWG.Done()
	t := time.NewTicker(s.cfg.LogEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.cfg.Logf("ringd: %s", s.metrics.LogLine())
		case <-s.stopLog:
			return
		}
	}
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/elect    {ring, alg, k, engine} → election outcome
//	POST /v1/classify {ring}                 → ring-class report
//	GET  /healthz                            → liveness (process is up)
//	GET  /readyz                             → readiness (503 once draining)
//	GET  /metrics                            → Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/elect", s.instrument("/v1/elect", s.handleElect))
	mux.Handle("POST /v1/classify", s.instrument("/v1/classify", s.handleClassify))
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// statusRecorder captures the response status for the metrics middleware
// and whether a header was ever sent (the panic recovery path may only
// write a 500 on a pristine response).
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the observability layer — in-flight
// gauge, request counter, status counter, latency histogram — and with
// panic containment: a panicking handler answers 500 with a request id,
// increments ringd_panics_total, and logs the id plus stack, instead of
// tearing down the whole connection from inside net/http. The endpoint's
// stats handle is resolved once here, at mux construction, so the
// per-request metrics path is atomic counters and a latency stripe — no
// map lookup, no registry lock.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	ep := s.metrics.Endpoint(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.IncInFlight()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				id := fmt.Sprintf("req-%d-%d", s.metrics.start.Unix(), s.reqSeq.Add(1))
				s.metrics.Panic()
				s.cfg.Logf("ringd: panic serving %s (request id %s): %v\n%s", endpoint, id, p, debug.Stack())
				if !rec.wrote {
					writeJSON(rec, http.StatusInternalServerError, errorResponse{
						Error:     "internal error; report the request id",
						RequestID: id,
					})
				} else {
					// The response already left; all we can do is account
					// for it as a server error.
					rec.status = http.StatusInternalServerError
				}
			}
			s.metrics.DecInFlight()
			s.metrics.observe(ep, rec.status, time.Since(start))
		}()
		h(rec, r)
	})
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID correlates a 500-from-panic with the server log line
	// carrying the stack trace.
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// shed answers a load-shed request: 429 with a Retry-After estimate, the
// contract that keeps overload visible and bounded instead of letting the
// queue collapse into timeouts.
func (s *Server) shed(w http.ResponseWriter, why error) {
	w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfterSeconds()))
	writeError(w, http.StatusTooManyRequests, "overloaded: %v; retry after the indicated delay", why)
}

// ElectRequest is the POST /v1/elect body.
type ElectRequest struct {
	// Ring is the clockwise label sequence, e.g. "1 3 1 3 2 2 1 2".
	Ring string `json:"ring"`
	// Alg is the algorithm name (default "A"). See repro.ParseAlgorithm.
	Alg string `json:"alg,omitempty"`
	// K is the multiplicity bound known to the processes (default 2).
	K int `json:"k,omitempty"`
	// Engine is "sim" (deterministic unit-delay simulator; default) or
	// "goroutines" (one goroutine per process).
	Engine string `json:"engine,omitempty"`
}

// ElectResponse is the POST /v1/elect result.
type ElectResponse struct {
	Ring          string  `json:"ring"`
	N             int     `json:"n"`
	Alg           string  `json:"alg"`
	K             int     `json:"k"`
	Engine        string  `json:"engine"` // engine that computed the result
	Leader        int     `json:"leader"` // index in the request's frame
	LeaderLabel   string  `json:"leader_label"`
	Messages      int     `json:"messages"`
	TotalBits     int     `json:"total_bits"`
	TimeUnits     float64 `json:"time_units,omitempty"`
	PeakSpaceBits int     `json:"peak_space_bits,omitempty"`
	Cached        bool    `json:"cached"`
	// Canonical is the least-rotation label sequence the result is cached
	// under; CanonicalRotation is the index of the request ring's process
	// that became canonical process 0.
	Canonical         string `json:"canonical"`
	CanonicalRotation int    `json:"canonical_rotation"`
}

func (s *Server) handleElect(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil {
		peer := r.RemoteAddr
		if host, _, err := net.SplitHostPort(peer); err == nil {
			peer = host
		}
		if ok, retry := s.limiter.allow(peer, time.Now()); !ok {
			// Shed before any parsing: a flooding peer pays for nothing.
			s.metrics.RateLimited()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusTooManyRequests, "rate limited; retry after the indicated delay")
			return
		}
	}
	var req ElectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Alg == "" {
		req.Alg = "A"
	}
	if req.K == 0 {
		req.K = 2
	}
	if req.K < 1 || req.K > 1024 {
		writeError(w, http.StatusBadRequest, "k must be in [1, 1024], got %d", req.K)
		return
	}
	if req.Engine == "" {
		req.Engine = "sim"
	}
	if req.Engine != "sim" && req.Engine != "goroutines" {
		writeError(w, http.StatusBadRequest, "unknown engine %q (want sim or goroutines)", req.Engine)
		return
	}
	alg, err := repro.ParseAlgorithm(req.Alg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rg, err := ring.Parse(req.Ring)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if rg.N() > s.cfg.MaxRingSize {
		writeError(w, http.StatusBadRequest, "ring has %d processes, limit is %d", rg.N(), s.cfg.MaxRingSize)
		return
	}
	// Validate the (ring, alg, k) combination up front so invalid
	// requests get a 400 without consuming queue budget or cache space.
	if _, err := repro.ProtocolFor(rg, alg, req.K); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Canonicalize: all rotations of this ring share one cache entry. The
	// key is computed into pooled scratch and only interned on a miss, and
	// the label sequence is borrowed from the ring rather than copied, so
	// the hit path allocates nothing in the cache layer.
	labels := rg.LabelsView()
	key, rot, sc := canonicalKey(labels, alg, req.K)
	e, owner := s.cache.lookup(key, hashKey(key))
	sc.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	if owner {
		s.metrics.CacheMiss()
		// Only the miss path materializes the canonical ring.
		canon := rg.Rotate(rot)
		if err := s.adm.submit(ctx, alg.String(), engineLabel(req.Engine), func(sc *repro.ElectScratch) {
			out, rerr := s.runElectionInto(canon, alg, req.K, req.Engine, sc)
			s.cache.finish(e, out, rerr)
		}); err != nil {
			s.cache.abandon(e, err)
			if errors.Is(err, errClosed) {
				writeError(w, http.StatusServiceUnavailable, "shutting down")
				return
			}
			s.shed(w, err)
			return
		}
	} else {
		s.metrics.CacheHit()
	}

	select {
	case <-e.ready:
	case <-ctx.Done():
		writeError(w, http.StatusServiceUnavailable, "timed out waiting for result: %v", ctx.Err())
		return
	}
	if e.err != nil {
		if errors.Is(e.err, errSaturated) || errors.Is(e.err, errExpired) {
			// The owner of this in-flight entry was shed; we were
			// deduplicated into its flight, so we shed too.
			s.shed(w, e.err)
			return
		}
		if errors.Is(e.err, errClosed) {
			writeError(w, http.StatusServiceUnavailable, "shutting down")
			return
		}
		if errors.Is(e.err, errBadRequest) {
			// A wire-path owner discovered the ring is unservable after we
			// were deduplicated into its flight.
			writeError(w, http.StatusBadRequest, "%v", e.err)
			return
		}
		writeError(w, http.StatusInternalServerError, "election failed: %v", e.err)
		return
	}
	out := e.out
	if !owner && s.shouldCrosscheck() {
		s.crosscheck(rg.Rotate(rot), alg, req.K, out)
	}
	writeJSON(w, http.StatusOK, ElectResponse{
		Ring:              canonSpec(labels),
		N:                 rg.N(),
		Alg:               alg.String(),
		K:                 req.K,
		Engine:            out.Engine,
		Leader:            (out.Leader + rot) % rg.N(),
		LeaderLabel:       out.LeaderLabel.String(),
		Messages:          out.Messages,
		TotalBits:         out.TotalBits,
		TimeUnits:         out.TimeUnits,
		PeakSpaceBits:     out.PeakSpaceBits,
		Cached:            !owner,
		Canonical:         canonSpecRotated(labels, rot),
		CanonicalRotation: rot,
	})
}

// engineLabel normalizes a request's engine string for pprof labeling:
// the empty default means the deterministic simulator.
func engineLabel(engine string) string {
	if engine == "" {
		return "sim"
	}
	return engine
}

// runElection executes one election on the canonical ring.
func (s *Server) runElection(canon *ring.Ring, alg repro.Algorithm, k int, engine string) (*canonOutcome, error) {
	var out *repro.Outcome
	var err error
	switch engine {
	case "goroutines":
		out, err = repro.ElectParallel(canon, alg, k, s.cfg.ElectTimeout)
	default:
		out, err = repro.Elect(canon, alg, k)
	}
	if err != nil {
		return nil, err
	}
	return &canonOutcome{
		Leader:        out.Leader,
		LeaderLabel:   out.LeaderLabel,
		Messages:      out.Messages,
		TotalBits:     out.TotalBits,
		TimeUnits:     out.TimeUnits,
		PeakSpaceBits: out.PeakSpaceBits,
		Engine:        engine,
	}, nil
}

// runElectionInto is runElection executing inside the admission worker's
// scratch arena: the simulator engine goes through the allocation-free
// repro.ElectInto kernel (byte-identical Outcome, pinned by the
// equivalence soak), while the goroutine engine — inherently one-goroutine-
// per-process — falls back to the allocating path. The returned
// canonOutcome is freshly allocated (it outlives the arena in the result
// cache); everything else the election touches is arena storage.
func (s *Server) runElectionInto(canon *ring.Ring, alg repro.Algorithm, k int, engine string, sc *repro.ElectScratch) (*canonOutcome, error) {
	if engine == "goroutines" || sc == nil {
		return s.runElection(canon, alg, k, engine)
	}
	var out repro.Outcome
	if err := repro.ElectInto(canon, alg, k, sc, &out); err != nil {
		return nil, err
	}
	return &canonOutcome{
		Leader:        out.Leader,
		LeaderLabel:   out.LeaderLabel,
		Messages:      out.Messages,
		TotalBits:     out.TotalBits,
		TimeUnits:     out.TimeUnits,
		PeakSpaceBits: out.PeakSpaceBits,
		Engine:        engine,
	}, nil
}

// shouldCrosscheck deterministically samples cache hits at the configured
// fraction: hit i is sampled when ⌊i·f⌋ > ⌊(i-1)·f⌋, i.e. every 1/f-th
// hit for small f, every hit for f = 1. The sequence counter is atomic so
// sampling never serializes the hit path.
func (s *Server) shouldCrosscheck() bool {
	f := s.cfg.Crosscheck
	if f <= 0 {
		return false
	}
	i := s.hitSeq.Add(1)
	return int64(float64(i)*f) > int64(float64(i-1)*f)
}

// crosscheck re-runs a cached election through the deterministic
// simulator and fails loudly if the cache layer has broken the engines'
// agreement invariant (the serving-path analogue of experiment E10).
func (s *Server) crosscheck(canon *ring.Ring, alg repro.Algorithm, k int, cached *canonOutcome) {
	canonStr := canonSpec(canon.Labels())
	fresh, err := repro.Elect(canon, alg, k)
	if err != nil {
		s.metrics.Crosscheck(true)
		s.cfg.OnDivergence(fmt.Sprintf("re-running %v alg=%s k=%d failed: %v", canonStr, alg, k, err))
		return
	}
	diverged := fresh.Leader != cached.Leader ||
		fresh.LeaderLabel != cached.LeaderLabel ||
		fresh.Messages != cached.Messages ||
		fresh.TotalBits != cached.TotalBits
	s.metrics.Crosscheck(diverged)
	if diverged {
		s.cfg.OnDivergence(fmt.Sprintf(
			"ring [%s] alg=%s k=%d: cached leader=%d label=%s messages=%d bits=%d (engine %s), fresh leader=%d label=%s messages=%d bits=%d",
			canonStr, alg, k,
			cached.Leader, cached.LeaderLabel, cached.Messages, cached.TotalBits, cached.Engine,
			fresh.Leader, fresh.LeaderLabel, fresh.Messages, fresh.TotalBits))
	}
}

// ClassifyRequest is the POST /v1/classify body.
type ClassifyRequest struct {
	Ring string `json:"ring"`
}

// ClassifyResponse reports the ring-class facts the paper's algorithms
// condition on: asymmetry (class A), the maximum label multiplicity (the
// least k with the ring in Kk), unique-label membership (U*), and the
// canonical rotation the result cache would key this ring under.
type ClassifyResponse struct {
	Ring              string `json:"ring"`
	N                 int    `json:"n"`
	Asymmetric        bool   `json:"asymmetric"`
	MaxMultiplicity   int    `json:"max_multiplicity"`
	UniqueLabel       bool   `json:"unique_label"`
	LabelBits         int    `json:"label_bits"`
	Electable         bool   `json:"electable"`   // asymmetric, i.e. leader election is solvable
	TrueLeader        int    `json:"true_leader"` // -1 when symmetric
	Canonical         string `json:"canonical"`
	CanonicalRotation int    `json:"canonical_rotation"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rg, err := ring.Parse(req.Ring)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if rg.N() > s.cfg.MaxRingSize {
		writeError(w, http.StatusBadRequest, "ring has %d processes, limit is %d", rg.N(), s.cfg.MaxRingSize)
		return
	}
	labels := rg.Labels()
	rot := words.LeastRotationIndex(labels)
	tl, ok := rg.TrueLeader()
	if !ok {
		tl = -1
	}
	writeJSON(w, http.StatusOK, ClassifyResponse{
		Ring:              canonSpec(labels),
		N:                 rg.N(),
		Asymmetric:        rg.IsAsymmetric(),
		MaxMultiplicity:   rg.MaxMultiplicity(),
		UniqueLabel:       rg.HasUniqueLabel(),
		LabelBits:         rg.LabelBits(),
		Electable:         ok,
		TrueLeader:        tl,
		Canonical:         canonSpec(rg.Rotate(rot).Labels()),
		CanonicalRotation: rot,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz is the load-balancer signal, distinct from /healthz: the
// process can be perfectly alive (healthz 200) yet draining for shutdown,
// in which case new traffic must go elsewhere. It flips to 503 the moment
// BeginDrain is called — before the HTTP listener stops accepting — so
// rolling restarts lose no requests.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}
