package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/ring"
)

// postJSON drives one request through the server's handler and decodes
// the JSON response into out (unless out is nil).
func postJSON(t *testing.T, h http.Handler, path string, body any, out any) (int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(buf))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s response %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec.Code, rec.Result().Header
}

// TestRotationCanonicalCache is the rotation-invariance contract: all n
// rotations of the Figure 1 ring (1 3 1 3 2 2 1 2, k = 3) must resolve
// to ONE cache entry — one miss, n-1 hits — and each response must map
// the elected leader back to the correct index in the rotated frame.
// Figure 1 elects p0, so the rotation that renumbers old process d to
// process 0 must report leader (n - d) mod n.
func TestRotationCanonicalCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := s.Handler()

	base := ring.Figure1()
	n := base.N()
	for d := 0; d < n; d++ {
		rotated := base.Rotate(d)
		var resp ElectResponse
		code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: canonSpec(rotated.Labels()), Alg: "B", K: 3}, &resp)
		if code != http.StatusOK {
			t.Fatalf("rotation %d: status %d", d, code)
		}
		wantLeader := (n - d) % n
		if resp.Leader != wantLeader {
			t.Errorf("rotation %d: leader %d, want %d", d, resp.Leader, wantLeader)
		}
		// The reported leader must be the rotated ring's true leader.
		if tl, ok := rotated.TrueLeader(); !ok || resp.Leader != tl {
			t.Errorf("rotation %d: leader %d, true leader %d", d, resp.Leader, tl)
		}
		if resp.LeaderLabel != "1" {
			t.Errorf("rotation %d: leader label %s, want 1", d, resp.LeaderLabel)
		}
		if resp.Messages != 276 { // pinned by cmd/ringelect's golden test
			t.Errorf("rotation %d: messages %d, want 276", d, resp.Messages)
		}
		if wantCached := d > 0; resp.Cached != wantCached {
			t.Errorf("rotation %d: cached=%t, want %t", d, resp.Cached, wantCached)
		}
		// Every rotation must report the same canonical sequence.
		if want := canonSpec(base.Rotate(0).Labels()); d == 0 && resp.Ring != want {
			t.Errorf("rotation 0 echoes ring %q, want %q", resp.Ring, want)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Misses != 1 || snap.Hits != int64(n-1) {
		t.Errorf("misses=%d hits=%d, want 1 and %d: rotations must share one entry", snap.Misses, snap.Hits, n-1)
	}
	if got := s.cache.len(); got != 1 {
		t.Errorf("cache has %d entries, want 1", got)
	}
}

// TestCacheKeyDiscriminates: same canonical ring but different alg or k
// must be separate entries.
func TestCacheKeyDiscriminates(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := s.Handler()
	for _, req := range []ElectRequest{
		{Ring: "1 3 1 3 2 2 1 2", Alg: "B", K: 3},
		{Ring: "1 3 1 3 2 2 1 2", Alg: "A", K: 3},
		{Ring: "1 3 1 3 2 2 1 2", Alg: "B", K: 4},
	} {
		var resp ElectResponse
		if code, _ := postJSON(t, h, "/v1/elect", req, &resp); code != 200 {
			t.Fatalf("%+v: status %d", req, code)
		}
		if resp.Cached {
			t.Errorf("%+v: unexpectedly cached", req)
		}
	}
	if got := s.cache.len(); got != 3 {
		t.Errorf("cache has %d entries, want 3", got)
	}
}

// TestSingleflightDedup: concurrent identical requests must run one
// election and count one miss; the rest are deduplicated hits.
func TestSingleflightDedup(t *testing.T) {
	s := New(Config{Workers: 2, CacheEntries: 16})
	defer s.Close()
	h := s.Handler()

	const clients = 16
	var wg sync.WaitGroup
	leaders := make([]int, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(ElectRequest{Ring: "1 3 1 3 2 2 1 2", Alg: "B", K: 3})
			req := httptest.NewRequest("POST", "/v1/elect", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
			var resp ElectResponse
			if rec.Code == 200 {
				_ = json.Unmarshal(rec.Body.Bytes(), &resp)
				leaders[i] = resp.Leader
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if codes[i] != 200 {
			t.Fatalf("client %d: status %d", i, codes[i])
		}
		if leaders[i] != 0 {
			t.Errorf("client %d: leader %d, want 0", i, leaders[i])
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", snap.Misses)
	}
	if snap.Hits != clients-1 {
		t.Errorf("hits = %d, want %d", snap.Hits, clients-1)
	}
}

// TestCacheEviction: the LRU must stay bounded and evict the oldest
// completed entry.
func TestCacheEviction(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: 4})
	defer s.Close()
	h := s.Handler()
	for i := 0; i < 10; i++ {
		spec := fmt.Sprintf("1 2 %d", i+3) // distinct rings
		var resp ElectResponse
		if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: spec, Alg: "A", K: 2}, &resp); code != 200 {
			t.Fatalf("ring %d: status %d", i, code)
		}
	}
	if got := s.cache.len(); got != 4 {
		t.Errorf("cache has %d entries, want capacity 4", got)
	}
	// Oldest ring must have been evicted: re-requesting it is a miss.
	var resp ElectResponse
	if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: "1 2 3", Alg: "A", K: 2}, &resp); code != 200 {
		t.Fatal("re-request failed")
	}
	if resp.Cached {
		t.Error("oldest entry should have been evicted")
	}
	// Newest ring must still be cached.
	if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: "1 2 12", Alg: "A", K: 2}, &resp); code != 200 || !resp.Cached {
		t.Errorf("newest entry should still be cached (code %d, cached %t)", code, resp.Cached)
	}
}

// TestErroredEntryNotCached: a failed computation must not poison the
// cache; exercised directly against the cache internals.
func TestErroredEntryNotCached(t *testing.T) {
	c := newResultCache(8, 1)
	key := []byte("\x00\x04\x02\x04\x04") // any encoded key works here
	e, owner := c.lookup(key, hashKey(key))
	if !owner {
		t.Fatal("first lookup must own the entry")
	}
	c.finish(e, nil, errors.New("engine exploded"))
	if c.len() != 0 {
		t.Fatalf("errored entry retained; cache len %d", c.len())
	}
	if _, owner := c.lookup(key, hashKey(key)); !owner {
		t.Error("next lookup must retry, not wait on the failed entry")
	}
}
