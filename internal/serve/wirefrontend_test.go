package serve

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ring"

	repro "repro"
)

// stubBackend answers elections from a fixed script and records calls.
type stubBackend struct {
	mu    sync.Mutex
	calls int
	out   WireOutcome
	err   error
}

func (b *stubBackend) Elect(ctx context.Context, labels []ring.Label, alg repro.Algorithm, k int) (WireOutcome, error) {
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	return b.out, b.err
}

// startFrontend brings a WireFrontend up on a loopback listener.
func startFrontend(t *testing.T, b WireBackend, cfg WireFrontendConfig) string {
	t.Helper()
	f := NewWireFrontend(b, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- f.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := f.Shutdown(ctx); err != nil {
			t.Errorf("frontend shutdown: %v", err)
		}
		if err := <-served; !errors.Is(err, ErrWireServerClosed) {
			t.Errorf("Serve returned %v, want ErrWireServerClosed", err)
		}
	})
	return ln.Addr().String()
}

// TestWireFrontendTerminates checks a WireClient can speak to a
// WireFrontend exactly as it speaks to a WireServer: results come back
// by id, the Cached bit survives, and typed errors keep their status
// and Retry-After through the two protocol hops.
func TestWireFrontendTerminates(t *testing.T) {
	b := &stubBackend{out: WireOutcome{Leader: 4, LeaderLabel: 3, Messages: 17, TimeUnits: 2.5, Cached: true}}
	addr := startFrontend(t, b, WireFrontendConfig{})
	c, err := DialWire(addr, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r := ring.Figure1()
	out, err := c.Elect(r.LabelsView(), repro.AlgorithmB, 3)
	if err != nil {
		t.Fatalf("elect through frontend: %v", err)
	}
	if out != b.out {
		t.Errorf("outcome through frontend = %+v, want %+v", out, b.out)
	}

	// Typed backend failures must round-trip as the same status.
	for _, tc := range []struct {
		status, retryAfter int
	}{{400, 0}, {429, 7}, {503, 0}, {500, 0}} {
		b.mu.Lock()
		b.err = &WireError{Status: tc.status, RetryAfter: tc.retryAfter, Msg: "scripted"}
		b.mu.Unlock()
		_, err := c.Elect(r.LabelsView(), repro.AlgorithmB, 3)
		var we *WireError
		if !errors.As(err, &we) || we.Status != tc.status || we.RetryAfter != tc.retryAfter {
			t.Errorf("status %d: got %v, want WireError with that status", tc.status, err)
		}
	}

	// An untyped failure is an internal error to the wire client.
	b.mu.Lock()
	b.err = errors.New("replica pool exhausted")
	b.mu.Unlock()
	_, err = c.Elect(r.LabelsView(), repro.AlgorithmB, 3)
	var we *WireError
	if !errors.As(err, &we) || we.Status != 500 {
		t.Errorf("untyped backend error: got %v, want WireError 500", err)
	}
}

// wireClientBackend proxies frontend elections to a real ringd wire
// port — the minimal gateway, with no routing layer in between.
type wireClientBackend struct{ c *WireClient }

func (b wireClientBackend) Elect(ctx context.Context, labels []ring.Label, alg repro.Algorithm, k int) (WireOutcome, error) {
	return b.c.Elect(labels, alg, k)
}

// TestWireFrontendProxiesToWireServer stacks the full binary path —
// client → frontend → client → WireServer → Server — and checks the
// answer matches a direct election, rotation frames included, and that
// malformed requests are rejected at the server with a 400 that
// survives the proxy hop.
func TestWireFrontendProxiesToWireServer(t *testing.T) {
	_, _, backendAddr := startWire(t, Config{})
	bc, err := DialWire(backendAddr, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	feAddr := startFrontend(t, wireClientBackend{bc}, WireFrontendConfig{})
	c, err := DialWire(feAddr, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	base := ring.Figure1()
	want, ok := base.TrueLeader()
	if !ok {
		t.Fatal("Figure1 has no unique leader")
	}
	for d := 0; d < base.N(); d++ {
		rot := base.Rotate(d)
		out, err := c.Elect(rot.LabelsView(), repro.AlgorithmB, 3)
		if err != nil {
			t.Fatalf("rotation %d: %v", d, err)
		}
		// The true leader's position in the rotated frame.
		if wantIdx := (want - d + base.N()) % base.N(); out.Leader != wantIdx {
			t.Errorf("rotation %d: leader %d, want %d", d, out.Leader, wantIdx)
		}
		if out.LeaderLabel != base.Labels()[want] {
			t.Errorf("rotation %d: leader label %d", d, out.LeaderLabel)
		}
	}

	// A symmetric ring is a 400 at the replica; the frontend must relay
	// it typed, not wrap it as a 500.
	_, err = c.Elect([]ring.Label{1, 1, 1, 1}, repro.AlgorithmB, 3)
	var we *WireError
	if !errors.As(err, &we) || we.Status != 400 {
		t.Errorf("symmetric ring through proxy: got %v, want WireError 400", err)
	}
}
