package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	repro "repro"
)

// TestElectShedsOverHTTP saturates the admission layer directly (one
// blocked worker, full queue) and checks the HTTP surface of shedding:
// an immediate 429 with a sane Retry-After header, the shed counter
// bumped, and — because the owner abandons the cache entry — deduped
// waiters for the same ring shed too instead of hanging.
func TestElectShedsOverHTTP(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, BatchSize: 1, BatchWait: time.Millisecond})
	defer s.Close()
	h := s.Handler()

	// Occupy the only worker, then the only queue slot.
	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(1)
	var occupied sync.WaitGroup
	for i := 0; i < 2; i++ {
		first := i == 0
		occupied.Add(1)
		go func() {
			defer occupied.Done()
			_ = s.adm.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) {
				if first {
					running.Done()
				}
				<-release
			})
		}()
		if first {
			running.Wait()
		} else {
			deadline := time.After(2 * time.Second)
			for len(s.adm.queue) < 1 {
				select {
				case <-deadline:
					t.Fatal("queue never filled")
				default:
					time.Sleep(time.Millisecond)
				}
			}
		}
	}

	start := time.Now()
	body := []byte(`{"ring":"1 2 2","alg":"A","k":2}`)
	req := httptest.NewRequest("POST", "/v1/elect", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", rec.Code, rec.Body.String())
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("shed took %v; must not block", d)
	}
	ra := rec.Result().Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 30 {
		t.Errorf("Retry-After %q, want an integer in [1, 30]", ra)
	}
	if snap := s.Metrics().Snapshot(); snap.Sheds != 1 {
		t.Errorf("shed counter = %d, want 1", snap.Sheds)
	}
	// The shed owner must not leave a poisoned entry behind.
	if got := s.cache.len(); got != 0 {
		t.Errorf("cache holds %d entries after a shed, want 0", got)
	}

	close(release)
	occupied.Wait()

	// With capacity free again the same request must now succeed.
	req = httptest.NewRequest("POST", "/v1/elect", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("after release: status %d, want 200; body %s", rec.Code, rec.Body.String())
	}
}
