package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/ring"

	repro "repro"
)

// WireOutcome is one completed wire election in the requester's frame —
// the binary-protocol twin of ElectResponse, minus the strings the wire
// never carries.
type WireOutcome struct {
	Leader        int
	LeaderLabel   ring.Label
	Messages      int
	PeakSpaceBits int
	TimeUnits     float64
	Cached        bool
}

// WireError is a typed ERROR frame surfaced to the caller, carrying the
// HTTP-equivalent status so wire and HTTP callers can share one
// accounting path, and the server's Retry-After hint on sheds.
type WireError struct {
	Status     int // HTTP-equivalent status (400/429/503/500)
	RetryAfter int // seconds; only meaningful when Status == 429
	Msg        string
}

// Error implements error.
func (e *WireError) Error() string {
	return fmt.Sprintf("wire error %d: %s", e.Status, e.Msg)
}

// ErrWireClientClosed fails calls on a closed client and in-flight calls
// whose connection died.
var ErrWireClientClosed = errors.New("serve: wire client closed")

// WireClient speaks RGV1 to a ringd wire port over a fixed pool of
// persistent connections. Calls are pipelined: every Elect appends one
// frame and parks on a per-request channel; a reader goroutine per
// connection dispatches RESULT/ERROR frames by request id, so any number
// of callers share the pool without head-of-line blocking on the
// response side. Safe for concurrent use.
type WireClient struct {
	timeout time.Duration
	conns   []*wireClientConn
	next    uint64 // round-robin cursor over conns; also the id sequence
	mu      sync.Mutex
	closed  bool
}

// wireClientConn is one pooled connection: a write-locked framer on the
// send side and a reader goroutine fanning responses out by id.
type wireClientConn struct {
	conn net.Conn

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte

	pmu     sync.Mutex
	pending map[uint64]chan wireReply
	dead    error // set when the reader exits; fails new and parked calls
}

// wireReply carries one RESULT or ERROR frame to its waiting caller.
type wireReply struct {
	res wireResult
	err *wireErrFrame
}

// DialWire connects a pool of conns RGV1 connections to addr. timeout
// bounds each Elect call end to end (0 means 30s).
func DialWire(addr string, conns int, timeout time.Duration) (*WireClient, error) {
	if conns <= 0 {
		conns = 1
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c := &WireClient{timeout: timeout}
	for i := 0; i < conns; i++ {
		nc, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("serve: dial wire %s: %w", addr, err)
		}
		if _, err := nc.Write([]byte(wireMagic)); err != nil {
			nc.Close()
			c.Close()
			return nil, fmt.Errorf("serve: wire handshake %s: %w", addr, err)
		}
		cc := &wireClientConn{conn: nc, pending: make(map[uint64]chan wireReply)}
		go cc.readLoop()
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

// Elect runs one election over the wire: labels is the clockwise label
// sequence in the caller's frame, and the returned leader index is in
// that same frame. A typed server failure comes back as *WireError; a
// transport failure as an ordinary error.
func (c *WireClient) Elect(labels []ring.Label, alg repro.Algorithm, k int) (WireOutcome, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return WireOutcome{}, ErrWireClientClosed
	}
	id := c.next
	c.next++
	c.mu.Unlock()
	cc := c.conns[id%uint64(len(c.conns))]

	ch := make(chan wireReply, 1)
	cc.pmu.Lock()
	if cc.dead != nil {
		err := cc.dead
		cc.pmu.Unlock()
		return WireOutcome{}, err
	}
	cc.pending[id] = ch
	cc.pmu.Unlock()

	cc.wmu.Lock()
	cc.wbuf = appendWireElect(cc.wbuf[:0], id, alg, k, labels)
	_, werr := cc.conn.Write(cc.wbuf)
	cc.wmu.Unlock()
	if werr != nil {
		// A failed write means the connection is gone (the server closed
		// it — e.g. a drain — or the transport died); the frame was never
		// accepted, so this is a clean closed-connection outcome, not a
		// truncation.
		cc.forget(id)
		cc.pmu.Lock()
		if cc.dead == nil {
			cc.dead = fmt.Errorf("%w (write: %v)", ErrWireClientClosed, werr)
		}
		err := cc.dead
		cc.pmu.Unlock()
		return WireOutcome{}, err
	}

	t := time.NewTimer(c.timeout)
	defer t.Stop()
	select {
	case rep, ok := <-ch:
		if !ok {
			cc.pmu.Lock()
			err := cc.dead
			cc.pmu.Unlock()
			if err == nil {
				err = ErrWireClientClosed
			}
			return WireOutcome{}, err
		}
		if rep.err != nil {
			return WireOutcome{}, &WireError{
				Status:     rep.err.code.httpStatus(),
				RetryAfter: rep.err.retryAfter,
				Msg:        rep.err.msg,
			}
		}
		return WireOutcome{
			Leader:        rep.res.leader,
			LeaderLabel:   rep.res.leaderLabel,
			Messages:      rep.res.messages,
			PeakSpaceBits: rep.res.peakSpaceBits,
			TimeUnits:     rep.res.timeUnits,
			Cached:        rep.res.cached,
		}, nil
	case <-t.C:
		cc.forget(id)
		return WireOutcome{}, fmt.Errorf("serve: wire elect %d timed out after %v", id, c.timeout)
	}
}

// forget drops a pending call (write failure or timeout) so a late
// response is discarded instead of leaking the channel.
func (cc *wireClientConn) forget(id uint64) {
	cc.pmu.Lock()
	delete(cc.pending, id)
	cc.pmu.Unlock()
}

// readLoop decodes response frames and completes pending calls by id.
// On any read or protocol error it marks the connection dead and fails
// everything still parked on it.
func (cc *wireClientConn) readLoop() {
	err := cc.readFrames()
	cc.pmu.Lock()
	if cc.dead == nil {
		cc.dead = err
	}
	for id, ch := range cc.pending {
		delete(cc.pending, id)
		close(ch)
	}
	cc.pmu.Unlock()
}

func (cc *wireClientConn) readFrames() error {
	var pfx [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(cc.conn, pfx[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return ErrWireClientClosed
			}
			return fmt.Errorf("serve: wire read: %w", err)
		}
		n := binary.BigEndian.Uint32(pfx[:])
		if int(n) < wireHeaderLen || int(n) > wireMaxResponseBody {
			return fmt.Errorf("serve: wire response frame %d bytes, limit %d", n, wireMaxResponseBody)
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(cc.conn, body); err != nil {
			return fmt.Errorf("serve: wire read body: %w", err)
		}
		typ, id, payload, err := decodeWireHeader(body)
		if err != nil {
			return err
		}
		var rep wireReply
		switch typ {
		case wireFrameResult:
			res, err := decodeWireResult(payload)
			if err != nil {
				return err
			}
			rep.res = res
		case wireFrameError:
			ef, err := decodeWireError(payload)
			if err != nil {
				return err
			}
			rep.err = &ef
		default:
			return fmt.Errorf("serve: unexpected %v frame from server", typ)
		}
		cc.pmu.Lock()
		ch, ok := cc.pending[id]
		delete(cc.pending, id)
		cc.pmu.Unlock()
		if ok {
			ch <- rep // buffered; never blocks the reader
		}
	}
}

// Close tears the pool down. In-flight calls fail with
// ErrWireClientClosed.
func (c *WireClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, cc := range c.conns {
		cc.pmu.Lock()
		if cc.dead == nil {
			cc.dead = ErrWireClientClosed
		}
		cc.pmu.Unlock()
		if err := cc.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
