package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/secure"

	repro "repro"
)

// WireOutcome is one completed wire election in the requester's frame —
// the binary-protocol twin of ElectResponse, minus the strings the wire
// never carries.
type WireOutcome struct {
	Leader        int
	LeaderLabel   ring.Label
	Messages      int
	PeakSpaceBits int
	TimeUnits     float64
	Cached        bool
}

// WireError is a typed ERROR frame surfaced to the caller, carrying the
// HTTP-equivalent status so wire and HTTP callers can share one
// accounting path, and the server's Retry-After hint on sheds.
type WireError struct {
	Status     int // HTTP-equivalent status (400/429/502/503/500)
	RetryAfter int // seconds; only meaningful when Status == 429
	Msg        string
}

// Error implements error.
func (e *WireError) Error() string {
	return fmt.Sprintf("wire error %d: %s", e.Status, e.Msg)
}

// ErrWireClientClosed fails calls on a closed client and in-flight calls
// whose connection died.
var ErrWireClientClosed = errors.New("serve: wire client closed")

// WireClient speaks RGV1 to a ringd wire port over a fixed pool of
// persistent connections. Calls are pipelined: every Elect appends one
// frame and parks on a per-request channel; a reader goroutine per
// connection dispatches RESULT/ERROR frames by request id, so any number
// of callers share the pool without head-of-line blocking on the
// response side. Safe for concurrent use.
//
// A broken pooled connection does not poison its slot: calls already in
// flight on it fail (their frames may or may not have reached the
// server), but the next Elect routed to the slot redials the address
// under the configured netring.Backoff — jittered exponential pacing,
// cancelled promptly by Close — so a restarted or briefly unreachable
// server costs one round of failures, not the client.
type WireClient struct {
	addr    string
	timeout time.Duration
	backoff netring.Backoff
	sec     *secure.ClientConfig // nil: plaintext RGV1
	conns   []*wireClientConn
	next    uint64 // round-robin cursor over conns; also the id sequence
	mu      sync.Mutex
	closed  bool
	done    chan struct{} // closed by Close; cancels redial backoff sleeps
}

// wireClientConn is one pool slot. The live connection state is swapped
// out wholesale on redial, so a late reader from a dead incarnation can
// never complete (or fail) calls parked on its successor.
type wireClientConn struct {
	c   *WireClient
	rng *rand.Rand // backoff jitter; guarded by dialMu

	dialMu sync.Mutex // serializes redials of this slot
	mu     sync.Mutex // guards st
	st     *wireConnState
}

// wireConnState is one connection incarnation: a write-locked framer on
// the send side and a reader goroutine fanning responses out by id.
type wireConnState struct {
	conn net.Conn

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte

	pmu     sync.Mutex
	pending map[uint64]chan wireReply
	dead    error // set when the reader exits; fails new and parked calls
}

// wireReply carries one RESULT or ERROR frame to its waiting caller.
type wireReply struct {
	res wireResult
	err *wireErrFrame
}

// DialWire connects a pool of conns RGV1 connections to addr. timeout
// bounds each Elect call end to end (0 means 30s). Redials of broken
// connections are paced by the default netring.Backoff; use
// DialWireBackoff to tune it.
func DialWire(addr string, conns int, timeout time.Duration) (*WireClient, error) {
	return DialWireBackoff(addr, conns, timeout, netring.Backoff{})
}

// DialWireBackoff is DialWire with an explicit redial pacing policy
// (zero fields take the netring defaults). The Attempts field bounds how
// many dials one Elect will make before giving up on a dead slot.
func DialWireBackoff(addr string, conns int, timeout time.Duration, b netring.Backoff) (*WireClient, error) {
	return DialWireSecure(addr, conns, timeout, b, nil)
}

// DialWireSecure is DialWireBackoff over authenticated encrypted
// connections: every pooled connection (and every redial — each fresh
// connection gets a fresh handshake and fresh keys) completes the
// ringsec handshake against the server identified by sec.ServerKey
// before the RGV1 magic. A nil sec dials plaintext.
func DialWireSecure(addr string, conns int, timeout time.Duration, b netring.Backoff, sec *secure.ClientConfig) (*WireClient, error) {
	if conns <= 0 {
		conns = 1
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	c := &WireClient{
		addr:    addr,
		timeout: timeout,
		backoff: b.WithDefaults(),
		sec:     sec,
		done:    make(chan struct{}),
	}
	for i := 0; i < conns; i++ {
		st, err := dialWireConn(addr, timeout, sec)
		if err != nil {
			c.Close()
			return nil, err
		}
		cc := &wireClientConn{c: c, rng: rand.New(rand.NewSource(int64(i) + 1)), st: st}
		go st.readLoop()
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

// dialWireConn opens one RGV1 connection: TCP dial, the secure
// handshake when configured, then the magic that tells the server's
// framer this is a wire client.
func dialWireConn(addr string, timeout time.Duration, sec *secure.ClientConfig) (*wireConnState, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial wire %s: %w", addr, err)
	}
	conn := nc
	if sec != nil {
		sconn, err := secure.Client(nc, sec)
		if err != nil {
			nc.Close()
			return nil, fmt.Errorf("serve: secure wire handshake %s: %w", addr, err)
		}
		conn = sconn
	}
	if _, err := conn.Write([]byte(wireMagic)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: wire handshake %s: %w", addr, err)
	}
	return &wireConnState{conn: conn, pending: make(map[uint64]chan wireReply)}, nil
}

// deadErr reports the state's terminal error, nil while it is live.
func (st *wireConnState) deadErr() error {
	st.pmu.Lock()
	defer st.pmu.Unlock()
	return st.dead
}

// state returns the slot's live connection, redialing a dead one. The
// redial is serialized per slot: concurrent callers hitting the same
// dead incarnation make one dial, not a stampede.
func (cc *wireClientConn) state() (*wireConnState, error) {
	cc.mu.Lock()
	st := cc.st
	cc.mu.Unlock()
	if st.deadErr() == nil {
		return st, nil
	}
	cc.dialMu.Lock()
	defer cc.dialMu.Unlock()
	// Someone may have redialed while we waited for the lock.
	cc.mu.Lock()
	st = cc.st
	cc.mu.Unlock()
	if st.deadErr() == nil {
		return st, nil
	}
	c := cc.c
	var lastErr error = st.deadErr()
	for attempt := 1; attempt <= c.backoff.Attempts; attempt++ {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrWireClientClosed
		}
		nst, err := dialWireConn(c.addr, c.timeout, c.sec)
		if err == nil {
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				nst.conn.Close()
				return nil, ErrWireClientClosed
			}
			c.mu.Unlock()
			cc.mu.Lock()
			cc.st = nst
			cc.mu.Unlock()
			go nst.readLoop()
			return nst, nil
		}
		lastErr = err
		if !c.backoff.Sleep(c.done, attempt, cc.rng) {
			return nil, ErrWireClientClosed
		}
	}
	return nil, fmt.Errorf("serve: wire redial %s gave up after %d attempts: %w", c.addr, c.backoff.Attempts, lastErr)
}

// Elect runs one election over the wire: labels is the clockwise label
// sequence in the caller's frame, and the returned leader index is in
// that same frame. A typed server failure comes back as *WireError; a
// transport failure as an ordinary error. A call that finds its pooled
// connection dead redials it first (bounded by the backoff's attempt
// budget) rather than failing outright.
func (c *WireClient) Elect(labels []ring.Label, alg repro.Algorithm, k int) (WireOutcome, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return WireOutcome{}, ErrWireClientClosed
	}
	id := c.next
	c.next++
	c.mu.Unlock()
	cc := c.conns[id%uint64(len(c.conns))]
	st, err := cc.state()
	if err != nil {
		return WireOutcome{}, err
	}

	ch := make(chan wireReply, 1)
	st.pmu.Lock()
	if st.dead != nil {
		err := st.dead
		st.pmu.Unlock()
		return WireOutcome{}, err
	}
	st.pending[id] = ch
	st.pmu.Unlock()

	st.wmu.Lock()
	st.wbuf = appendWireElect(st.wbuf[:0], id, alg, k, labels)
	_, werr := st.conn.Write(st.wbuf)
	st.wmu.Unlock()
	if werr != nil {
		// A failed write means the connection is gone (the server closed
		// it — e.g. a drain — or the transport died); the frame was never
		// accepted, so this is a clean closed-connection outcome, not a
		// truncation. The slot redials on the next call through it.
		st.forget(id)
		st.pmu.Lock()
		if st.dead == nil {
			st.dead = fmt.Errorf("%w (write: %v)", ErrWireClientClosed, werr)
		}
		err := st.dead
		st.pmu.Unlock()
		st.conn.Close()
		return WireOutcome{}, err
	}

	t := time.NewTimer(c.timeout)
	defer t.Stop()
	select {
	case rep, ok := <-ch:
		if !ok {
			err := st.deadErr()
			if err == nil {
				err = ErrWireClientClosed
			}
			return WireOutcome{}, err
		}
		if rep.err != nil {
			return WireOutcome{}, &WireError{
				Status:     rep.err.code.httpStatus(),
				RetryAfter: rep.err.retryAfter,
				Msg:        rep.err.msg,
			}
		}
		return WireOutcome{
			Leader:        rep.res.leader,
			LeaderLabel:   rep.res.leaderLabel,
			Messages:      rep.res.messages,
			PeakSpaceBits: rep.res.peakSpaceBits,
			TimeUnits:     rep.res.timeUnits,
			Cached:        rep.res.cached,
		}, nil
	case <-t.C:
		st.forget(id)
		return WireOutcome{}, fmt.Errorf("serve: wire elect %d timed out after %v", id, c.timeout)
	}
}

// forget drops a pending call (write failure or timeout) so a late
// response is discarded instead of leaking the channel.
func (st *wireConnState) forget(id uint64) {
	st.pmu.Lock()
	delete(st.pending, id)
	st.pmu.Unlock()
}

// readLoop decodes response frames and completes pending calls by id.
// On any read or protocol error it marks this incarnation dead and fails
// everything still parked on it; the slot's next caller redials.
func (st *wireConnState) readLoop() {
	err := st.readFrames()
	st.pmu.Lock()
	if st.dead == nil {
		st.dead = err
	}
	for id, ch := range st.pending {
		delete(st.pending, id)
		close(ch)
	}
	st.pmu.Unlock()
}

func (st *wireConnState) readFrames() error {
	var pfx [4]byte
	var body []byte
	for {
		if _, err := io.ReadFull(st.conn, pfx[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return ErrWireClientClosed
			}
			return fmt.Errorf("serve: wire read: %w", err)
		}
		n := binary.BigEndian.Uint32(pfx[:])
		if int(n) < wireHeaderLen || int(n) > wireMaxResponseBody {
			return fmt.Errorf("serve: wire response frame %d bytes, limit %d", n, wireMaxResponseBody)
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(st.conn, body); err != nil {
			return fmt.Errorf("serve: wire read body: %w", err)
		}
		typ, id, payload, err := decodeWireHeader(body)
		if err != nil {
			return err
		}
		var rep wireReply
		switch typ {
		case wireFrameResult:
			res, err := decodeWireResult(payload)
			if err != nil {
				return err
			}
			rep.res = res
		case wireFrameError:
			ef, err := decodeWireError(payload)
			if err != nil {
				return err
			}
			rep.err = &ef
		default:
			return fmt.Errorf("serve: unexpected %v frame from server", typ)
		}
		st.pmu.Lock()
		ch, ok := st.pending[id]
		delete(st.pending, id)
		st.pmu.Unlock()
		if ok {
			ch <- rep // buffered; never blocks the reader
		}
	}
}

// Close tears the pool down. In-flight calls fail with
// ErrWireClientClosed, and any redial backoff sleep is cancelled.
func (c *WireClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	var first error
	for _, cc := range c.conns {
		cc.mu.Lock()
		st := cc.st
		cc.mu.Unlock()
		st.pmu.Lock()
		if st.dead == nil {
			st.dead = ErrWireClientClosed
		}
		st.pmu.Unlock()
		if err := st.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
