package serve

import (
	"context"
	"errors"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/sweep"

	repro "repro"
)

// Shed errors returned by admission.submit. Handlers map all of them to
// 429 + Retry-After (except errClosed, which is a 503: the server is
// shutting down, not overloaded).
var (
	// errSaturated: the bounded queue was full at submission time.
	errSaturated = errors.New("serve: admission queue full")
	// errExpired: the request's deadline passed while it waited in the
	// queue; running it would waste a worker on an answer nobody reads.
	errExpired = errors.New("serve: deadline exceeded while queued")
	// errClosed: the server is draining; no new work is admitted.
	errClosed = errors.New("serve: admission closed")
)

// admission is the bounded admission layer between the HTTP handlers and
// the election engines. Handlers submit closures into a fixed-depth
// queue; a dispatcher goroutine collects them into small batches and fans
// each batch across the internal/sweep worker pool — the same
// deterministic fan-out engine behind the experiment grids — so that a
// burst of cache misses costs one pool spin-up instead of one goroutine
// per request, and the worker count bounds engine concurrency no matter
// how many requests are in flight.
//
// Overload policy: the queue never blocks a handler. A full queue sheds
// immediately (errSaturated) and a request whose context expires while
// queued is shed at dequeue time (errExpired) — load is refused with
// 429 + Retry-After instead of collapsing into unbounded latency.
//
// Shutdown policy: close() stops new submissions, then waits for every
// accepted task to finish before stopping the dispatcher, so graceful
// shutdown drains in-flight elections.
type admission struct {
	queue     chan *task
	workers   int
	batchSize int
	batchWait time.Duration

	// arenas holds one election scratch per sweep worker. runBatch is only
	// ever called from the single dispatcher goroutine and ForEachWorker
	// hands each concurrent job a distinct worker index, so arena w is
	// always owned by exactly one election at a time — cold misses run
	// allocation-free against warmed per-worker state, with no locking and
	// no cross-batch allocation.
	arenas []*repro.ElectScratch

	mu         sync.Mutex
	closing    bool
	submitters sync.WaitGroup // one per accepted (enqueued) task
	stop       chan struct{}
	done       sync.WaitGroup // dispatcher goroutine

	// ewmaServiceNS is an exponentially-weighted moving average of
	// per-task service time, feeding the Retry-After estimate. Guarded by
	// mu.
	ewmaServiceNS float64
}

type task struct {
	ctx context.Context
	// run executes the election inside the worker-owned scratch arena it
	// is handed; it must not retain the arena past its return.
	run  func(sc *repro.ElectScratch)
	done chan error // buffered(1); nil = ran, shed error otherwise
	// alg and engine label the task's pprof profile samples, so `ringd
	// -pprof` CPU/heap profiles attribute election cost per algorithm and
	// engine.
	alg, engine string
}

func newAdmission(queueDepth, workers, batchSize int, batchWait time.Duration) *admission {
	a := &admission{
		queue:     make(chan *task, queueDepth),
		workers:   workers,
		batchSize: batchSize,
		batchWait: batchWait,
		arenas:    make([]*repro.ElectScratch, workers),
		stop:      make(chan struct{}),
	}
	for i := range a.arenas {
		a.arenas[i] = repro.NewElectScratch()
	}
	a.done.Add(1)
	go a.dispatch()
	return a
}

// submit queues run and blocks until it has executed or been shed. alg and
// engine become pprof labels on the worker that runs it.
func (a *admission) submit(ctx context.Context, alg, engine string, run func(sc *repro.ElectScratch)) error {
	a.mu.Lock()
	if a.closing {
		a.mu.Unlock()
		return errClosed
	}
	t := &task{ctx: ctx, run: run, done: make(chan error, 1), alg: alg, engine: engine}
	select {
	case a.queue <- t:
		a.submitters.Add(1)
		a.mu.Unlock()
	default:
		a.mu.Unlock()
		return errSaturated
	}
	err := <-t.done
	a.submitters.Done()
	return err
}

// retryAfterSeconds estimates how long a shed client should back off:
// the time to drain the current queue through the worker pool, from the
// moving average of recent task service times. At least 1 second.
func (a *admission) retryAfterSeconds() int {
	a.mu.Lock()
	ewma := a.ewmaServiceNS
	a.mu.Unlock()
	backlog := float64(len(a.queue) + 1)
	sec := ewma * backlog / float64(a.workers) / 1e9
	return int(math.Min(math.Max(math.Ceil(sec), 1), 30))
}

// dispatch is the single dispatcher goroutine: collect a batch, shed the
// expired, fan the rest across the sweep pool, repeat.
func (a *admission) dispatch() {
	defer a.done.Done()
	for {
		select {
		case t := <-a.queue:
			a.runBatch(a.collect(t))
		case <-a.stop:
			// close() guarantees the queue is empty by now (every
			// accepted task has completed), but drain defensively.
			for {
				select {
				case t := <-a.queue:
					a.runBatch([]*task{t})
				default:
					return
				}
			}
		}
	}
}

// collect gathers up to batchSize tasks, waiting at most batchWait after
// the first so that a trickle is served promptly while a burst amortizes
// pool spin-up.
func (a *admission) collect(first *task) []*task {
	batch := []*task{first}
	if a.batchSize <= 1 {
		return batch
	}
	timer := time.NewTimer(a.batchWait)
	defer timer.Stop()
	for len(batch) < a.batchSize {
		select {
		case t := <-a.queue:
			batch = append(batch, t)
		case <-timer.C:
			return batch
		case <-a.stop:
			return batch
		}
	}
	return batch
}

// runBatch sheds tasks whose context has already expired, then runs the
// rest across the sweep worker pool.
func (a *admission) runBatch(batch []*task) {
	live := batch[:0]
	for _, t := range batch {
		if t.ctx.Err() != nil {
			t.done <- errExpired
			continue
		}
		live = append(live, t)
	}
	if len(live) == 0 {
		return
	}
	start := time.Now()
	size := strconv.Itoa(len(live))
	sweep.ForEachWorker(a.workers, len(live), func(w, i int) error {
		t := live[i]
		pprof.Do(t.ctx, pprof.Labels("alg", t.alg, "engine", t.engine, "batch_size", size), func(context.Context) {
			t.run(a.arenas[w])
		})
		t.done <- nil
		return nil
	})
	perTask := float64(time.Since(start).Nanoseconds()) / float64(len(live))
	a.mu.Lock()
	if a.ewmaServiceNS == 0 {
		a.ewmaServiceNS = perTask
	} else {
		a.ewmaServiceNS = 0.8*a.ewmaServiceNS + 0.2*perTask
	}
	a.mu.Unlock()
}

// close stops admission and drains: no new submissions are accepted,
// every already-accepted task runs (or sheds on its own deadline) to
// completion, then the dispatcher exits.
func (a *admission) close() {
	a.mu.Lock()
	if a.closing {
		a.mu.Unlock()
		return
	}
	a.closing = true
	a.mu.Unlock()
	a.submitters.Wait() // every accepted task has been answered
	close(a.stop)
	a.done.Wait()
}
