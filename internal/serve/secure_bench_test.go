package serve

import (
	"net"
	"testing"
	"time"

	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/secure"

	repro "repro"
)

// The encryption A/B pair: one cached election round trip over a real
// loopback TCP connection, plaintext versus ringsec. Unlike the
// in-process WireHit/HTTPHit pair this includes the sockets, because
// that is where encryption's cost lives — two AES-GCM seals and two
// opens per round trip, on top of the same frame work. BENCH_PR10.json
// pins the ratio (secure must stay ≤3x plaintext ns/op) via benchdiff's
// secure_bench section; in practice the syscall-dominated round trip
// keeps it far lower.

// benchLoopbackElect measures one client Elect per op against a wire
// server on a real listener, with the single ring pre-warmed into the
// cache so every op is a pure protocol round trip.
func benchLoopbackElect(b *testing.B, opts WireServerOptions, sec *secure.ClientConfig) {
	s := New(Config{Workers: 1, CacheEntries: 64})
	b.Cleanup(s.Close)
	ws := NewWireServerWith(s, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go ws.Serve(ln)
	b.Cleanup(func() { ln.Close() })

	c, err := DialWireSecure(ln.Addr().String(), 1, 5*time.Second, netring.Backoff{}, sec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	labels := ring.Figure1().LabelsView()
	if _, err := c.Elect(labels, repro.AlgorithmB, 3); err != nil {
		b.Fatalf("warmup elect: %v", err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Elect(labels, repro.AlgorithmB, 3); err != nil {
			b.Fatalf("elect: %v", err)
		}
	}
}

// BenchmarkWireElectPlain: the plaintext denominator of the ≤3x
// encryption-overhead ceiling.
func BenchmarkWireElectPlain(b *testing.B) {
	benchLoopbackElect(b, WireServerOptions{}, nil)
}

// BenchmarkWireElectSecure: the same round trip through the ringsec
// record layer — X25519 handshake once at dial, then AES-256-GCM per
// frame in both directions.
func BenchmarkWireElectSecure(b *testing.B) {
	serverKey, err := secure.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	clientKey, err := secure.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	benchLoopbackElect(b,
		WireServerOptions{Secure: &secure.ServerConfig{Config: secure.Config{Identity: serverKey}}},
		&secure.ClientConfig{Config: secure.Config{Identity: clientKey}, ServerKey: serverKey.Public()})
}
