package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestClassifyFigure1(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	var resp ClassifyResponse
	code, _ := postJSON(t, s.Handler(), "/v1/classify", ClassifyRequest{Ring: "1 3 1 3 2 2 1 2"}, &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	// Figure 1's multiplicities are 1×3, 2×3, 3×2 — no unique label.
	if resp.N != 8 || !resp.Asymmetric || resp.MaxMultiplicity != 3 || resp.UniqueLabel || !resp.Electable {
		t.Errorf("classify = %+v", resp)
	}
	if resp.TrueLeader != 0 {
		t.Errorf("true leader %d, want 0 (Figure 1 elects p0)", resp.TrueLeader)
	}
	if resp.LabelBits != 2 {
		t.Errorf("label bits %d, want 2", resp.LabelBits)
	}
	// The canonical sequence must be a rotation of the input and start
	// with the least label.
	if !strings.HasPrefix(resp.Canonical, "1 ") {
		t.Errorf("canonical %q does not start with the least label", resp.Canonical)
	}
}

func TestClassifySymmetricRing(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	var resp ClassifyResponse
	code, _ := postJSON(t, s.Handler(), "/v1/classify", ClassifyRequest{Ring: "1 2 1 2"}, &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Asymmetric || resp.Electable || resp.TrueLeader != -1 {
		t.Errorf("symmetric ring misclassified: %+v", resp)
	}
}

// TestElectRejections: every malformed or unservable request must be
// answered 400 with a JSON error — and must never reach the queue.
func TestElectRejections(t *testing.T) {
	s := New(Config{MaxRingSize: 16})
	defer s.Close()
	h := s.Handler()
	cases := []struct {
		name string
		body any
	}{
		{"empty ring", ElectRequest{Ring: ""}},
		{"garbage ring", ElectRequest{Ring: "1 x 2"}},
		{"symmetric ring", ElectRequest{Ring: "1 2 1 2", Alg: "A", K: 2}},
		{"multiplicity above k", ElectRequest{Ring: "1 1 1 2", Alg: "A", K: 2}},
		{"unknown alg", ElectRequest{Ring: "1 2 2", Alg: "nope", K: 2}},
		{"unknown engine", ElectRequest{Ring: "1 2 2", Engine: "warp", K: 2}},
		{"k out of range", ElectRequest{Ring: "1 2 2", K: -1}},
		{"oversized ring", ElectRequest{Ring: strings.Repeat("1 2 ", 16) + "3", K: 4}},
		{"unknown field", map[string]any{"ring": "1 2 2", "bogus": true}},
		{"homonyms for CR", ElectRequest{Ring: "1 2 2", Alg: "CR", K: 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _ := postJSON(t, h, "/v1/elect", c.body, nil)
			if code != http.StatusBadRequest {
				t.Errorf("status %d, want 400", code)
			}
		})
	}
	if snap := s.Metrics().Snapshot(); snap.Misses != 0 || snap.Hits != 0 {
		t.Errorf("rejected requests touched the cache: %+v", snap)
	}
}

func TestElectGoroutinesEngine(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	var resp ElectResponse
	code, _ := postJSON(t, s.Handler(), "/v1/elect", ElectRequest{Ring: "1 2 2", Alg: "B", K: 2, Engine: "goroutines"}, &resp)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Leader != 0 || resp.Engine != "goroutines" {
		t.Errorf("resp = %+v", resp)
	}
	// Cached answers reuse the first engine's result regardless of the
	// requested engine (the key has no engine: outcomes agree, E10).
	var second ElectResponse
	if code, _ := postJSON(t, s.Handler(), "/v1/elect", ElectRequest{Ring: "1 2 2", Alg: "B", K: 2, Engine: "sim"}, &second); code != 200 {
		t.Fatalf("second request: status %d", code)
	}
	if !second.Cached || second.Engine != "goroutines" || second.Messages != resp.Messages {
		t.Errorf("cached cross-engine answer = %+v, first = %+v", second, resp)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

// TestMetricsExposition drives traffic and checks the Prometheus text
// format carries every layer's series.
func TestMetricsExposition(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: "1 2 2", Alg: "A", K: 2}, nil); code != 200 {
			t.Fatalf("elect %d: status %d", i, code)
		}
	}
	postJSON(t, h, "/v1/classify", ClassifyRequest{Ring: "1 2 2"}, nil)
	postJSON(t, h, "/v1/elect", ElectRequest{Ring: "bogus"}, nil) // a 400

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	if ct := rec.Result().Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, frag := range []string{
		`ringd_requests_total{endpoint="/v1/elect"} 4`,
		`ringd_requests_total{endpoint="/v1/classify"} 1`,
		`ringd_responses_total{code="200"} 4`,
		`ringd_responses_total{code="400"} 1`,
		"ringd_cache_hits_total 2",
		"ringd_cache_misses_total 1",
		"ringd_shed_total 0",
		"ringd_errors_total 0",
		"ringd_in_flight 1", // the /metrics request itself
		"ringd_cache_entries 1",
		"ringd_queue_depth 0",
		`ringd_request_seconds_bucket{endpoint="/v1/elect",le="+Inf"} 4`,
		`ringd_request_seconds_count{endpoint="/v1/elect"} 4`,
		"ringd_uptime_seconds",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("exposition missing %q\n%s", frag, body)
		}
	}
}

// TestCrosscheckSamplesHits: with Crosscheck=1 every cache hit is
// re-verified; an honest server must count checks and zero divergences.
func TestCrosscheckSamplesHits(t *testing.T) {
	diverged := make([]string, 0)
	s := New(Config{Workers: 1, Crosscheck: 1, OnDivergence: func(d string) { diverged = append(diverged, d) }})
	defer s.Close()
	h := s.Handler()
	for i := 0; i < 6; i++ {
		if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: "1 3 1 3 2 2 1 2", Alg: "B", K: 3}, nil); code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Crosschecks != 5 {
		t.Errorf("crosschecks = %d, want 5 (one per hit)", snap.Crosschecks)
	}
	if snap.Divergences != 0 || len(diverged) != 0 {
		t.Errorf("honest server diverged: %d, %v", snap.Divergences, diverged)
	}
}

// TestCrosscheckFailsLoudly corrupts a cache entry and checks the next
// sampled hit reports the divergence with a usable description.
func TestCrosscheckFailsLoudly(t *testing.T) {
	var diverged []string
	s := New(Config{Workers: 1, Crosscheck: 1, OnDivergence: func(d string) { diverged = append(diverged, d) }})
	defer s.Close()
	h := s.Handler()
	if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: "1 3 1 3 2 2 1 2", Alg: "B", K: 3}, nil); code != 200 {
		t.Fatal("seed request failed")
	}
	// Corrupt the cached outcome behind the server's back.
	for i := range s.cache.shards {
		sh := &s.cache.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			e.out.Leader = (e.out.Leader + 1) % 8
			e.out.Messages += 7
		}
		sh.mu.Unlock()
	}

	if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: "1 3 1 3 2 2 1 2", Alg: "B", K: 3}, nil); code != 200 {
		t.Fatal("hit request failed")
	}
	if len(diverged) != 1 {
		t.Fatalf("divergences reported: %d, want 1", len(diverged))
	}
	for _, frag := range []string{"cached leader=3", "fresh leader=2", "alg=Bk", "k=3"} {
		if !strings.Contains(diverged[0], frag) {
			t.Errorf("divergence detail missing %q: %s", frag, diverged[0])
		}
	}
	if snap := s.Metrics().Snapshot(); snap.Divergences != 1 {
		t.Errorf("divergence counter = %d, want 1", snap.Divergences)
	}
}

// TestCrosscheckSamplingFraction: at f=0.25 exactly every 4th hit is
// sampled, deterministically.
func TestCrosscheckSamplingFraction(t *testing.T) {
	s := New(Config{Workers: 1, Crosscheck: 0.25})
	defer s.Close()
	h := s.Handler()
	for i := 0; i < 17; i++ { // 1 miss + 16 hits
		if code, _ := postJSON(t, h, "/v1/elect", ElectRequest{Ring: "1 2 2", Alg: "A", K: 2}, nil); code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	if snap := s.Metrics().Snapshot(); snap.Crosschecks != 4 {
		t.Errorf("crosschecks = %d, want 4 of 16 hits", snap.Crosschecks)
	}
}

// TestPanicRecovery injects a panicking handler through the same
// instrumentation middleware the real endpoints use and checks the
// contract: the client gets a 500 with a request id, the panic counter
// shows in both Snapshot and the Prometheus exposition, and the server
// keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	var logged strings.Builder
	s := New(Config{Logf: func(format string, args ...any) {
		fmt.Fprintf(&logged, format+"\n", args...)
	}})
	defer s.Close()
	h := s.instrument("/boom", func(http.ResponseWriter, *http.Request) {
		panic("injected for TestPanicRecovery")
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rec.Body.String())
	}
	if body.RequestID == "" || !strings.HasPrefix(body.RequestID, "req-") {
		t.Errorf("request id %q, want req-… for log correlation", body.RequestID)
	}
	if !strings.Contains(logged.String(), body.RequestID) {
		t.Errorf("log does not carry the request id %q:\n%s", body.RequestID, logged.String())
	}
	if !strings.Contains(logged.String(), "injected for TestPanicRecovery") {
		t.Errorf("log does not carry the panic value:\n%s", logged.String())
	}
	if snap := s.Metrics().Snapshot(); snap.Panics != 1 || snap.Errors != 1 {
		t.Errorf("snapshot after panic: panics=%d errors=%d, want 1/1", snap.Panics, snap.Errors)
	}

	// A panic after the handler has streamed a response body must not
	// write a second payload into it, but still counts.
	streamed := s.instrument("/boom2", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("late panic")
	})
	rec = httptest.NewRecorder()
	streamed.ServeHTTP(rec, httptest.NewRequest("GET", "/boom2", nil))
	if got := rec.Body.String(); got != "partial" {
		t.Errorf("late panic rewrote a committed body: %q", got)
	}
	if snap := s.Metrics().Snapshot(); snap.Panics != 2 {
		t.Errorf("panics = %d, want 2", snap.Panics)
	}

	// The server still works: a healthy endpoint answers and the metric
	// is exposed.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ringd_panics_total 2") {
		t.Errorf("metrics after panics: %d, missing ringd_panics_total 2", rec.Code)
	}
}

// TestReadyzDrain: /readyz mirrors /healthz while serving, flips to 503
// the moment BeginDrain is called, and /healthz stays 200 throughout —
// load balancers stop routing, health keeps reporting liveness.
func TestReadyzDrain(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, `"ready"`) {
		t.Errorf("readyz before drain: %d %q", code, body)
	}
	s.BeginDrain()
	if !s.Draining() {
		t.Error("Draining() = false after BeginDrain")
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Errorf("readyz during drain: %d %q, want 503 draining", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("healthz during drain: %d, want 200 (drain is not unhealth)", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	req := httptest.NewRequest("GET", "/v1/elect", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/elect: status %d, want 405", rec.Code)
	}
}
