package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/secure"

	repro "repro"
)

// testKey generates a fresh ringsec identity or fails the test.
func testKey(t *testing.T) *secure.PrivateKey {
	t.Helper()
	key, err := secure.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// startWireWith is startWire with explicit WireServerOptions — the
// secure and rate-limited variants of the wire port.
func startWireWith(t *testing.T, cfg Config, opts WireServerOptions) (*Server, string) {
	t.Helper()
	s := New(cfg)
	ws := NewWireServerWith(s, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- ws.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
		if err := <-served; !errors.Is(err, ErrWireServerClosed) {
			t.Errorf("Serve returned %v, want ErrWireServerClosed", err)
		}
		s.Close()
	})
	return s, ln.Addr().String()
}

// clientFor builds the client half of a ringsec session against server.
func clientFor(identity *secure.PrivateKey, server *secure.PrivateKey) *secure.ClientConfig {
	return &secure.ClientConfig{
		Config:    secure.Config{Identity: identity, HandshakeTimeout: 2 * time.Second},
		ServerKey: server.Public(),
	}
}

// TestWireSecureRoundTrip runs a real election over an authenticated
// encrypted wire connection, with the client pinned in the server's
// allow list, and checks the answer against the in-process engine.
func TestWireSecureRoundTrip(t *testing.T) {
	serverKey, clientKey := testKey(t), testKey(t)
	s, addr := startWireWith(t, Config{}, WireServerOptions{
		Secure: &secure.ServerConfig{
			Config:  secure.Config{Identity: serverKey, HandshakeTimeout: 2 * time.Second},
			Allowed: []secure.PublicKey{clientKey.Public()},
		},
	})
	c, err := DialWireSecure(addr, 2, 5*time.Second, netring.Backoff{}, clientFor(clientKey, serverKey))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r := ring.Figure1()
	want, err := repro.Elect(r, repro.AlgorithmB, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Elect(r.LabelsView(), repro.AlgorithmB, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Leader != want.Leader || out.Messages != want.Messages {
		t.Errorf("sealed election: leader p%d %d msgs, want p%d %d msgs",
			out.Leader, out.Messages, want.Leader, want.Messages)
	}
	if s.Metrics().HandshakeFailures() != 0 {
		t.Errorf("handshake failures = %d on a clean session", s.Metrics().HandshakeFailures())
	}
}

// TestWireSecureRejectsUnknownClient pins the allow list: a client
// authenticating with a key outside it is cut off during the handshake
// and counted in ringd_handshake_failures_total.
func TestWireSecureRejectsUnknownClient(t *testing.T) {
	serverKey, trusted, stranger := testKey(t), testKey(t), testKey(t)
	s, addr := startWireWith(t, Config{}, WireServerOptions{
		Secure: &secure.ServerConfig{
			Config:  secure.Config{Identity: serverKey, HandshakeTimeout: 2 * time.Second},
			Allowed: []secure.PublicKey{trusted.Public()},
		},
	})
	c, err := DialWireSecure(addr, 1, 2*time.Second, netring.Backoff{}, clientFor(stranger, serverKey))
	if err == nil {
		c.Close()
		t.Fatal("dial with a key outside the allow list succeeded")
	}
	if s.Metrics().HandshakeFailures() == 0 {
		t.Error("rejected client not counted as a handshake failure")
	}
}

// TestWireSecureDowngradeRejected pins both downgrade directions: a
// plaintext client on a secure port never gets served (and is counted
// as a handshake failure), and a secure client on a plaintext port
// fails its handshake instead of silently talking in the clear.
func TestWireSecureDowngradeRejected(t *testing.T) {
	serverKey, clientKey := testKey(t), testKey(t)
	s, addr := startWireWith(t, Config{}, WireServerOptions{
		Secure: &secure.ServerConfig{
			Config: secure.Config{Identity: serverKey, HandshakeTimeout: 500 * time.Millisecond},
		},
	})
	// Plaintext client, secure server: the magic bytes are not a
	// handshake, so the server must cut the connection without serving.
	c, err := DialWire(addr, 1, 2*time.Second)
	if err == nil {
		_, err = c.Elect(ring.Figure1().LabelsView(), repro.AlgorithmB, 3)
		c.Close()
	}
	if err == nil {
		t.Fatal("plaintext election served on a secure port")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics().HandshakeFailures() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Metrics().HandshakeFailures() == 0 {
		t.Error("plaintext downgrade not counted as a handshake failure")
	}

	// Secure client, plaintext server: the handshake must fail — the
	// client never falls back to cleartext.
	_, plainAddr := startWireWith(t, Config{}, WireServerOptions{})
	if c, err := DialWireSecure(plainAddr, 1, 2*time.Second, netring.Backoff{}, clientFor(clientKey, serverKey)); err == nil {
		c.Close()
		t.Fatal("secure dial to a plaintext port succeeded")
	}
}

// recordConn captures everything written through it while recording is
// on — the ciphertext a replaying adversary would have sniffed.
type recordConn struct {
	net.Conn
	mu  sync.Mutex
	buf bytes.Buffer
	rec bool
}

func (c *recordConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.rec {
		c.buf.Write(p)
	}
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *recordConn) record(on bool) {
	c.mu.Lock()
	c.rec = on
	c.mu.Unlock()
}

func (c *recordConn) captured() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

// TestWireSecureReplayRejected is the wire-level replay drill: the
// ciphertext of a served ELECT is re-sent verbatim on the same
// connection. The strict per-direction nonce counter must reject it —
// the server severs the connection and the replay never becomes a
// second election.
func TestWireSecureReplayRejected(t *testing.T) {
	serverKey, clientKey := testKey(t), testKey(t)
	s, addr := startWireWith(t, Config{}, WireServerOptions{
		Secure: &secure.ServerConfig{
			Config: secure.Config{Identity: serverKey, HandshakeTimeout: 2 * time.Second},
		},
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	rc := &recordConn{Conn: nc}
	sconn, err := secure.Client(rc, clientFor(clientKey, serverKey))
	if err != nil {
		t.Fatal(err)
	}

	// One real election, its ciphertext recorded off the socket.
	rc.record(true)
	if _, err := sconn.Write([]byte(wireMagic)); err != nil {
		t.Fatal(err)
	}
	if _, err := sconn.Write(appendWireElect(nil, 1, repro.AlgorithmB, 3, ring.Figure1().LabelsView())); err != nil {
		t.Fatal(err)
	}
	var prefix [4]byte
	if _, err := io.ReadFull(sconn, prefix[:]); err != nil {
		t.Fatal(err)
	}
	n := int(prefix[0])<<24 | int(prefix[1])<<16 | int(prefix[2])<<8 | int(prefix[3])
	body := make([]byte, n)
	if _, err := io.ReadFull(sconn, body); err != nil {
		t.Fatal(err)
	}
	typ, id, payload, err := decodeWireHeader(body)
	if err != nil || typ != wireFrameResult || id != 1 {
		t.Fatalf("first response: typ=%v id=%d err=%v", typ, id, err)
	}
	if _, err := decodeWireResult(payload); err != nil {
		t.Fatalf("first response: %v", err)
	}
	rc.record(false)

	before := s.Metrics().Snapshot()

	// The replay: the captured handshake-less ciphertext, bytes the
	// adversary saw on the wire, written straight to the socket.
	if _, err := nc.Write(rc.captured()); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The server must sever the connection without answering: nothing
	// but EOF may come back.
	if extra, err := io.ReadAll(nc); err != nil {
		t.Fatalf("expected a clean sever after the replay, got read error %v", err)
	} else if len(extra) != 0 {
		t.Fatalf("server sent %d bytes after a replayed record", len(extra))
	}
	after := s.Metrics().Snapshot()
	if got, want := after.Hits+after.Misses, before.Hits+before.Misses; got != want {
		t.Errorf("replay reached the election path: %d elections, want %d", got, want)
	}
}

// TestRateLimiter unit-tests the token bucket: burst spending,
// continuous refill, the Retry-After floor, and the peer-table bound.
func TestRateLimiter(t *testing.T) {
	rl := newRateLimiter(RateLimitConfig{Rate: 2, Burst: 2, MaxPeers: 2})
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := rl.allow("a", now); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := rl.allow("a", now)
	if ok {
		t.Fatal("request beyond the burst allowed")
	}
	if retry < 1 {
		t.Fatalf("Retry-After %d, want at least 1", retry)
	}
	if ok, _ := rl.allow("a", now.Add(600*time.Millisecond)); !ok {
		t.Fatal("refilled token denied") // 0.6s at 2/s refills 1.2 tokens
	}
	// A second peer has its own bucket.
	if ok, _ := rl.allow("b", now); !ok {
		t.Fatal("fresh peer denied")
	}
	// A third peer evicts the oldest instead of growing without bound.
	if ok, _ := rl.allow("c", now.Add(time.Second)); !ok {
		t.Fatal("evicting peer denied")
	}
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n > 2 {
		t.Fatalf("peer table grew to %d entries, bound is 2", n)
	}
}

// TestWireRateLimitFairness is the fairness drill from the acceptance
// list: a flooder hammering the secure wire port is shed with 429s and
// Retry-After hints, while a well-behaved peer — a different key, so a
// different bucket — keeps its requests inside the latency budget with
// zero sheds.
func TestWireRateLimitFairness(t *testing.T) {
	serverKey, floodKey, politeKey := testKey(t), testKey(t), testKey(t)
	s, addr := startWireWith(t, Config{}, WireServerOptions{
		Secure: &secure.ServerConfig{
			Config: secure.Config{Identity: serverKey, HandshakeTimeout: 2 * time.Second},
		},
		RateLimit: &RateLimitConfig{Rate: 25, Burst: 4},
	})
	flooder, err := DialWireSecure(addr, 1, 5*time.Second, netring.Backoff{}, clientFor(floodKey, serverKey))
	if err != nil {
		t.Fatal(err)
	}
	defer flooder.Close()
	polite, err := DialWireSecure(addr, 1, 5*time.Second, netring.Backoff{}, clientFor(politeKey, serverKey))
	if err != nil {
		t.Fatal(err)
	}
	defer polite.Close()
	labels := ring.Figure1().LabelsView()

	var politeWorst time.Duration
	politeDone := make(chan error, 1)
	go func() {
		for i := 0; i < 10; i++ {
			start := time.Now()
			if _, err := polite.Elect(labels, repro.AlgorithmB, 3); err != nil {
				politeDone <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			if d := time.Since(start); d > politeWorst {
				politeWorst = d
			}
			time.Sleep(100 * time.Millisecond) // 10 req/s, well under the 25/s cap
		}
		politeDone <- nil
	}()

	shed, served := 0, 0
	for i := 0; i < 60; i++ {
		_, err := flooder.Elect(labels, repro.AlgorithmB, 3)
		var we *WireError
		switch {
		case err == nil:
			served++
		case errors.As(err, &we) && we.Status == http.StatusTooManyRequests:
			shed++
			if we.RetryAfter < 1 {
				t.Fatalf("429 without a Retry-After hint: %+v", we)
			}
		default:
			t.Fatalf("flooder request %d: %v", i, err)
		}
	}
	if err := <-politeDone; err != nil {
		t.Fatalf("well-behaved peer shed or failed: %v", err)
	}
	if shed == 0 {
		t.Fatal("flooder was never rate limited")
	}
	if served == 0 {
		t.Fatal("flooder burst allowance never served a request")
	}
	if politeWorst > 2*time.Second {
		t.Errorf("well-behaved peer's worst latency %v exceeds the budget", politeWorst)
	}
	if s.Metrics().Snapshot().RateLimited != int64(shed) {
		t.Errorf("rate-limited counter %d, want %d", s.Metrics().Snapshot().RateLimited, shed)
	}
}

// TestHTTPRateLimit pins the HTTP edge of the limiter: past the burst,
// /v1/elect answers 429 with a Retry-After header and the shed shows up
// in ringd_rate_limited_total, all before the body is even parsed.
func TestHTTPRateLimit(t *testing.T) {
	s := New(Config{RateLimit: &RateLimitConfig{Rate: 1, Burst: 2}})
	defer s.Close()
	h := s.Handler()
	body := `{"ring":"1 2 2","alg":"A","k":2}`
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/elect", bytes.NewReader([]byte(body))))
		if rec.Code != http.StatusOK {
			t.Fatalf("burst request %d: status %d, body %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/elect", bytes.NewReader([]byte(body))))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d past the burst, want 429; body %s", rec.Code, rec.Body.String())
	}
	if ra, err := strconv.Atoi(rec.Result().Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After %q, want an integer of at least 1", rec.Result().Header.Get("Retry-After"))
	}
	if got := s.Metrics().Snapshot().RateLimited; got != 1 {
		t.Errorf("rate-limited counter %d, want 1", got)
	}
}
