package serve

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/secure"

	repro "repro"
)

// FuzzWireSecureHandshake throws arbitrary bytes at a secure wire
// port's pre-authentication surface — the exact position a network
// adversary occupies before it holds any key. Whatever arrives (empty
// streams, plaintext RGV1 magic, msg1-shaped garbage, oversized junk),
// the server must sever the connection without panicking, without ever
// emitting a frame, and stay alive for the next client.
func FuzzWireSecureHandshake(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(wireMagic)) // a plaintext client's downgrade attempt
	f.Add(appendWireElect([]byte(wireMagic), 1, repro.AlgorithmB, 3, []ring.Label{1, 3, 1, 3, 2, 2, 1, 2}))
	f.Add(make([]byte, 96)) // msg1-sized zeros
	f.Add(make([]byte, 95)) // one byte short of a msg1
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	serverKey, err := secure.GenerateKey()
	if err != nil {
		f.Fatal(err)
	}
	s := New(Config{})
	ws := NewWireServerWith(s, WireServerOptions{
		Secure: &secure.ServerConfig{
			Config: secure.Config{Identity: serverKey, HandshakeTimeout: 200 * time.Millisecond},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	go ws.Serve(ln)
	f.Cleanup(func() { ln.Close(); s.Close() })
	addr := ln.Addr().String()

	f.Fuzz(func(t *testing.T, input []byte) {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatalf("secure port died: %v", err)
		}
		defer conn.Close()
		conn.Write(input)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		// The server must answer with silence and a sever — any bytes
		// back would be a response to an unauthenticated peer.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if got, err := io.ReadAll(conn); err == nil && len(got) > 0 {
			t.Fatalf("unauthenticated connection received %d bytes", len(got))
		}
	})
}
