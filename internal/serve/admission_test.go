package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
)

// TestAdmissionSaturationSheds: with one slow worker and a depth-2
// queue, excess submissions must be refused immediately with
// errSaturated — never blocked.
func TestAdmissionSaturationSheds(t *testing.T) {
	a := newAdmission(2, 1, 1, time.Millisecond)
	defer a.close()

	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(1)
	go func() {
		_ = a.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) {
			running.Done()
			<-release
		})
	}()
	running.Wait() // the worker is now occupied

	// Fill the queue.
	filled := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			filled <- a.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) {})
		}()
	}
	// Wait until both queued tasks are actually enqueued.
	deadline := time.After(2 * time.Second)
	for len(a.queue) < 2 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// The next submission must shed immediately.
	start := time.Now()
	err := a.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) {})
	if !errors.Is(err, errSaturated) {
		t.Fatalf("expected errSaturated, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("shed took %v; must be immediate", d)
	}
	if ra := a.retryAfterSeconds(); ra < 1 || ra > 30 {
		t.Errorf("Retry-After estimate %d out of [1, 30]", ra)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-filled; err != nil {
			t.Errorf("queued task %d: %v", i, err)
		}
	}
}

// TestAdmissionShedsExpired: a task whose context expires while queued
// behind slow work must be shed with errExpired, not run.
func TestAdmissionShedsExpired(t *testing.T) {
	a := newAdmission(4, 1, 1, time.Millisecond)
	defer a.close()

	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(1)
	go func() {
		_ = a.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) {
			running.Done()
			<-release
		})
	}()
	running.Wait()

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	result := make(chan error, 1)
	go func() {
		result <- a.submit(ctx, "test", "sim", func(*repro.ElectScratch) { ran.Store(true) })
	}()
	// Let it enqueue, then kill its deadline while it waits.
	deadline := time.After(2 * time.Second)
	for len(a.queue) < 1 {
		select {
		case <-deadline:
			t.Fatal("task never enqueued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	close(release)

	if err := <-result; !errors.Is(err, errExpired) {
		t.Fatalf("expected errExpired, got %v", err)
	}
	if ran.Load() {
		t.Error("expired task must not run")
	}
}

// TestAdmissionBatches: a burst submitted while the dispatcher is busy
// must be collected into batches rather than dispatched one by one.
func TestAdmissionBatches(t *testing.T) {
	a := newAdmission(64, 4, 8, 20*time.Millisecond)
	defer a.close()

	var count atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) { count.Add(1) }); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := count.Load(); got != 24 {
		t.Fatalf("ran %d tasks, want 24", got)
	}
}

// TestAdmissionCloseDrains: close must wait for every accepted task —
// none may be dropped or left hanging — and reject later submissions.
func TestAdmissionCloseDrains(t *testing.T) {
	a := newAdmission(32, 2, 4, time.Millisecond)

	var completed atomic.Int32
	const tasks = 16
	errs := make(chan error, tasks)
	for i := 0; i < tasks; i++ {
		go func() {
			errs <- a.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) {
				time.Sleep(2 * time.Millisecond)
				completed.Add(1)
			})
		}()
	}
	// Give the submissions a moment to enqueue, then drain.
	time.Sleep(5 * time.Millisecond)
	a.close()

	// Every submission accepted before close must have completed; ones
	// that raced close may have been refused, but none may hang.
	accepted := 0
	for i := 0; i < tasks; i++ {
		select {
		case err := <-errs:
			if err == nil {
				accepted++
			} else if !errors.Is(err, errClosed) {
				t.Errorf("unexpected submit error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("a submission hung across close: drain is broken")
		}
	}
	if int(completed.Load()) != accepted {
		t.Errorf("%d tasks accepted but %d completed: close dropped work", accepted, completed.Load())
	}

	if err := a.submit(context.Background(), "test", "sim", func(*repro.ElectScratch) {}); !errors.Is(err, errClosed) {
		t.Errorf("submit after close: got %v, want errClosed", err)
	}
	a.close() // idempotent
}
