package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/ring"
	"repro/internal/secure"

	repro "repro"
)

// WireBackend is the election engine behind a WireFrontend. The labels
// are in the requester's frame and the returned Leader must be too; the
// cluster router satisfies this, as does any wrapper over a WireClient.
// A *WireError return is relayed to the wire client as a typed ERROR
// frame; any other error becomes an internal-error frame.
type WireBackend interface {
	Elect(ctx context.Context, labels []ring.Label, alg repro.Algorithm, k int) (WireOutcome, error)
}

// WireFrontendConfig tunes a WireFrontend. The zero value is usable.
type WireFrontendConfig struct {
	// MaxRingSize bounds the label count a single ELECT may carry,
	// and thereby the frame size the reader will accept. Default 4096.
	MaxRingSize int
	// RequestTimeout bounds one backend call. Default 30s.
	RequestTimeout time.Duration
	// Metrics, when set, records every terminated request under the
	// "wire/elect" endpoint with the HTTP-equivalent status.
	Metrics *Metrics
	// Secure, when set, requires the ringsec handshake before the RGV1
	// magic, exactly as on a WireServer port. Handshake failures are
	// counted in Metrics (when set) and dropped frameless.
	Secure *secure.ServerConfig
	// RateLimit, when set, applies a per-peer token bucket to ELECT
	// requests at the gateway edge, keyed by authenticated fingerprint
	// (secure) or remote host.
	RateLimit *RateLimitConfig
}

func (c WireFrontendConfig) withDefaults() WireFrontendConfig {
	if c.MaxRingSize <= 0 {
		c.MaxRingSize = 4096
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// WireFrontend terminates the RGV1 protocol over any WireBackend. It is
// the gateway-side twin of WireServer: the same framing, the same
// per-connection batching writer, and the same drain discipline (stop
// reading, answer everything in flight, flush, FIN, linger) — but the
// election itself is delegated, so a proxy can terminate wire traffic
// without owning a cache or an admission queue. Every decoded ELECT
// detaches onto a goroutine, because the backend call blocks on the
// network rather than on a local cache lookup.
type WireFrontend struct {
	b       WireBackend
	cfg     WireFrontendConfig
	ep      *endpointStats
	limiter *rateLimiter

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*feConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewWireFrontend builds a frontend terminating RGV1 onto b.
func NewWireFrontend(b WireBackend, cfg WireFrontendConfig) *WireFrontend {
	f := &WireFrontend{
		b:     b,
		cfg:   cfg.withDefaults(),
		conns: make(map[*feConn]struct{}),
	}
	if f.cfg.Metrics != nil {
		f.ep = f.cfg.Metrics.Endpoint("wire/elect")
	}
	if f.cfg.RateLimit != nil {
		f.limiter = newRateLimiter(*f.cfg.RateLimit)
	}
	return f
}

// Serve accepts RGV1 connections on ln until Shutdown. It returns
// ErrWireServerClosed after a graceful stop, or the accept error that
// ended the loop.
func (f *WireFrontend) Serve(ln net.Listener) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		ln.Close()
		return ErrWireServerClosed
	}
	f.ln = ln
	f.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			f.mu.Lock()
			closed := f.closed
			f.mu.Unlock()
			if closed {
				return ErrWireServerClosed
			}
			return err
		}
		fc := &feConn{f: f, conn: c, rw: c, w: newWireWriter(c), draining: make(chan struct{})}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			c.Close()
			return ErrWireServerClosed
		}
		f.conns[fc] = struct{}{}
		f.wg.Add(1)
		f.mu.Unlock()
		go fc.serve()
	}
}

// Shutdown drains the frontend with the WireServer discipline: stop
// accepting, stop reading, answer every in-flight proxied election,
// flush each writer completely, half-close, linger, close. If ctx
// expires first the remaining connections are torn down hard and
// ctx.Err is returned.
func (f *WireFrontend) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.closed = true
	ln := f.ln
	conns := make([]*feConn, 0, len(f.conns))
	for fc := range f.conns {
		conns = append(conns, fc)
	}
	f.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, fc := range conns {
		fc.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		f.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		f.mu.Lock()
		for fc := range f.conns {
			fc.conn.Close()
		}
		f.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// feConn is one terminated client connection of a WireFrontend.
type feConn struct {
	f        *WireFrontend
	conn     net.Conn // the accepted socket: deadlines and hard teardown
	rw       net.Conn // the framing stream: conn, or its secure wrapper
	w        *wireWriter
	peer     string // rate-limit identity
	draining chan struct{}
	drainOne sync.Once

	// Reader-goroutine-only scratch.
	body   []byte
	labels []ring.Label
}

func (fc *feConn) beginDrain() {
	fc.drainOne.Do(func() {
		close(fc.draining)
		fc.conn.SetReadDeadline(time.Now())
	})
}

func (fc *feConn) isDraining() bool {
	select {
	case <-fc.draining:
		return true
	default:
		return false
	}
}

// serve is the reader loop; the teardown mirrors wireConn.serve so a
// client of the gateway gets exactly the byte-level close behavior a
// client of ringd gets.
func (fc *feConn) serve() {
	defer fc.f.wg.Done()
	defer func() {
		fc.w.inflight.Wait()
		fc.w.close()
		if hc, ok := fc.rw.(interface{ CloseWrite() error }); ok {
			if hc.CloseWrite() == nil {
				fc.conn.SetReadDeadline(time.Now().Add(wireLingerTimeout))
				io.Copy(io.Discard, fc.conn)
			}
		}
		fc.conn.Close()
		fc.f.mu.Lock()
		delete(fc.f.conns, fc)
		fc.f.mu.Unlock()
	}()

	if sec := fc.f.cfg.Secure; sec != nil {
		sconn, err := secure.Server(fc.conn, sec)
		if err != nil {
			if fc.f.cfg.Metrics != nil {
				fc.f.cfg.Metrics.HandshakeFailure()
			}
			return
		}
		if fc.isDraining() {
			return
		}
		fc.rw = sconn
		fc.peer = sconn.Peer().Fingerprint()
		fc.w.setOut(sconn)
	} else if host, _, err := net.SplitHostPort(fc.conn.RemoteAddr().String()); err == nil {
		fc.peer = host
	} else {
		fc.peer = fc.conn.RemoteAddr().String()
	}

	var magic [4]byte
	if _, err := io.ReadFull(fc.rw, magic[:]); err != nil || string(magic[:]) != wireMagic {
		return
	}
	maxBody := wireMaxRequestBody(fc.f.cfg.MaxRingSize)
	var pfx [4]byte
	for {
		if _, err := io.ReadFull(fc.rw, pfx[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(pfx[:])
		if int(n) < wireHeaderLen || int(n) > maxBody {
			return
		}
		if cap(fc.body) < int(n) {
			fc.body = make([]byte, n)
		}
		body := fc.body[:n]
		if _, err := io.ReadFull(fc.rw, body); err != nil {
			return
		}
		if !fc.processFrame(body) {
			return
		}
	}
}

// processFrame decodes one ELECT and detaches the backend call. The
// decoded labels alias reader scratch, so they are copied before the
// goroutine launches — the one structural difference from wireConn,
// which consumes them synchronously.
func (fc *feConn) processFrame(body []byte) bool {
	start := time.Now()
	typ, id, payload, err := decodeWireHeader(body)
	if err != nil || typ != wireFrameElect {
		return false
	}
	var req wireElect
	req, fc.labels, err = decodeWireElect(id, payload, fc.labels, fc.f.cfg.MaxRingSize)
	if err != nil {
		fc.respondError(start, id, wireErrBadRequest, 0, err.Error())
		return true
	}
	if fc.isDraining() {
		fc.respondError(start, id, wireErrDraining, 0, "shutting down")
		return true
	}
	if rl := fc.f.limiter; rl != nil {
		if ok, retry := rl.allow(fc.peer, time.Now()); !ok {
			if fc.f.cfg.Metrics != nil {
				fc.f.cfg.Metrics.RateLimited()
			}
			fc.respondError(start, id, wireErrShed, retry, "rate limited")
			return true
		}
	}
	labels := make([]ring.Label, len(req.labels))
	copy(labels, req.labels)
	alg, k := req.alg, req.k
	fc.w.inflight.Add(1)
	go func() {
		defer fc.w.inflight.Done()
		ctx, cancel := context.WithTimeout(context.Background(), fc.f.cfg.RequestTimeout)
		defer cancel()
		out, err := fc.f.b.Elect(ctx, labels, alg, k)
		if err != nil {
			fc.respondBackendError(start, id, err)
			return
		}
		co := canonOutcome{
			Leader:        out.Leader, // already in the requester's frame
			LeaderLabel:   out.LeaderLabel,
			Messages:      out.Messages,
			PeakSpaceBits: out.PeakSpaceBits,
			TimeUnits:     out.TimeUnits,
		}
		fc.w.appendResult(id, out.Cached, out.Leader, &co)
		fc.observe(start, 200)
	}()
	return true
}

// respondBackendError maps a backend failure onto the ERROR frame
// vocabulary: a typed *WireError keeps its status (and Retry-After on
// sheds); anything else — including a transport failure to every
// replica — is an internal error from the client's point of view.
func (fc *feConn) respondBackendError(start time.Time, id uint64, err error) {
	var we *WireError
	if errors.As(err, &we) {
		switch we.Status {
		case 400:
			fc.respondError(start, id, wireErrBadRequest, 0, we.Msg)
		case 429:
			fc.respondError(start, id, wireErrShed, we.RetryAfter, we.Msg)
		case 503:
			fc.respondError(start, id, wireErrDraining, 0, we.Msg)
		default:
			fc.respondError(start, id, wireErrInternal, 0, we.Msg)
		}
		return
	}
	fc.respondError(start, id, wireErrInternal, 0, "election failed: "+err.Error())
}

func (fc *feConn) respondError(start time.Time, id uint64, code wireErrCode, retryAfter int, msg string) {
	fc.w.appendError(id, code, retryAfter, msg)
	fc.observe(start, code.httpStatus())
}

func (fc *feConn) observe(start time.Time, status int) {
	if fc.f.ep != nil {
		fc.f.cfg.Metrics.observe(fc.f.ep, status, time.Since(start))
	}
}
