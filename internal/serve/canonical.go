package serve

import (
	"repro/internal/ring"
	"repro/internal/words"

	repro "repro"
)

// CanonicalKey returns the stable byte encoding of the canonical election
// class of (labels, alg, k), plus the rotation that canonicalizes labels
// (the index of the caller's process that becomes canonical process 0).
//
// The layout is pinned — it is simultaneously the sharded result cache's
// key (cache.go appendCacheKey), the RGV1 ELECT payload after the
// algorithm byte (wire.go appendWireElect), and the cluster router's
// rendezvous-hash input, and those three must provably hash the same
// bytes so a gateway routes every rotation of a ring to the replica that
// caches its class:
//
//	byte 0:  the algorithm byte (repro.Algorithm's numeric value)
//	next:    k as a zigzag varint (encoding/binary.AppendVarint)
//	rest:    each label as a zigzag varint, in clockwise order starting
//	         from the lexicographically least rotation (Booth's algorithm)
//
// Varints are self-delimiting, so distinct canonical (alg, k, sequence)
// triples always encode to distinct keys. All n rotations of a labeled
// ring produce the identical key — the equivalence the paper's Figure 1
// rings form one class under.
//
// The returned slice is freshly allocated; hot paths that want to amortize
// the allocation use AppendCanonicalKey with a reused buffer.
func CanonicalKey(labels []ring.Label, alg repro.Algorithm, k int) (key []byte, rot int) {
	key, rot = AppendCanonicalKey(nil, labels, alg, k)
	return key, rot
}

// AppendCanonicalKey encodes the canonical key of (labels, alg, k) into
// dst — overwriting it from the start, like appendCacheKey — growing it
// as needed, and returns the encoded key plus the canonicalizing
// rotation. Booth's failure table is computed in pooled scratch, so the
// only allocation on a warm buffer is none at all.
func AppendCanonicalKey(dst []byte, labels []ring.Label, alg repro.Algorithm, k int) (key []byte, rot int) {
	sc := canonScratchPool.Get().(*canonScratch)
	if need := 2 * len(labels); cap(sc.booth) < need {
		sc.booth = make([]int, need)
	}
	rot = words.LeastRotationIndexInto(labels, sc.booth)
	dst = appendCacheKey(dst, alg, k, labels, rot)
	sc.release()
	return dst, rot
}
