package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ring"
	"repro/internal/serve"
)

// TestBuildPlanDeterministic: the plan is a pure function of the seed.
func TestBuildPlanDeterministic(t *testing.T) {
	cfg := Config{Requests: 200, Seed: 42, Crosscheck: 0.25}
	a, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different plans")
	}
	c, err := BuildPlan(Config{Requests: 200, Seed: 43, Crosscheck: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
}

// TestBuildPlanMix: classes follow the configured fractions, every spec
// parses, the hot set contains Figure 1 at k >= 3, and crosscheck
// sampling hits exactly every 1/f-th request.
func TestBuildPlanMix(t *testing.T) {
	plan, err := BuildPlan(Config{Requests: 1000, Seed: 7, K: 3, Crosscheck: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	checks := 0
	sawFigure1 := false
	fig1 := specOf(ring.Figure1())
	for i, p := range plan {
		counts[p.Class]++
		if p.Crosscheck {
			checks++
			if i%4 != 0 {
				t.Fatalf("request %d sampled; want every 4th", i)
			}
		}
		if p.Spec == fig1 && p.Class == ClassHot {
			sawFigure1 = true
		}
		if _, err := ring.Parse(p.Spec); err != nil {
			t.Fatalf("plan[%d] spec %q does not parse: %v", i, p.Spec, err)
		}
	}
	if checks != 250 {
		t.Errorf("crosschecks planned = %d, want 250", checks)
	}
	if !sawFigure1 {
		t.Error("hot set never served the Figure 1 ring")
	}
	// Defaults 0.45/0.30/0.25 with generous slack for a 1000-draw sample.
	if counts[ClassHot] < 350 || counts[ClassRotated] < 200 || counts[ClassCold] < 150 {
		t.Errorf("class mix off: %v", counts)
	}
	// Rotated specs must canonicalize to a hot ring: check one is a true
	// rotation (same multiset, different sequence at least once overall).
	if counts[ClassHot]+counts[ClassRotated]+counts[ClassCold] != 1000 {
		t.Errorf("classes do not partition the plan: %v", counts)
	}
}

// TestRunAggregatesReport drives the generator against a stub server and
// checks every response class lands in the right report bucket.
func TestRunAggregatesReport(t *testing.T) {
	fig1 := specOf(ring.Figure1())
	var served int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("POST /v1/elect", func(w http.ResponseWriter, r *http.Request) {
		var req serve.ElectRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(400)
			return
		}
		served++
		switch {
		case served%10 == 0: // periodic shed, with the contractual header
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			// Answer the hot ring truthfully (leader 0, label 1); anything
			// else gets a wrong answer so planned crosschecks flag it.
			resp := serve.ElectResponse{Ring: req.Ring, Leader: 0, LeaderLabel: "1", Messages: 276, TotalBits: 1380, Cached: req.Ring == fig1}
			if req.Ring != fig1 {
				resp.Leader = -1
			}
			_ = json.NewEncoder(w).Encode(resp)
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep, err := Run(Config{
		BaseURL:  srv.URL,
		Requests: 100,
		Workers:  1, // keep served%10 deterministic
		Seed:     9,
		// All-hot mix pinned to Figure 1 so the stub's truthful answer is
		// correct and only sheds/divergence accounting is under test.
		HotRings:    1,
		HotFraction: 0.999, RotatedFraction: 0.0005,
		K:          3,
		Crosscheck: 0.5,
		Client:     srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 100 || rep.OK+rep.Shed != 100 {
		t.Errorf("accounting off: %+v", rep)
	}
	if rep.Shed != 10 || rep.ShedsWithRetryAfter != 10 {
		t.Errorf("sheds = %d (with header %d), want 10/10", rep.Shed, rep.ShedsWithRetryAfter)
	}
	if rep.Cached != rep.OK {
		t.Errorf("cached = %d, want %d (stub marks all hot hits cached)", rep.Cached, rep.OK)
	}
	if rep.Crosschecks == 0 || rep.Divergences != 0 {
		t.Errorf("crosschecks=%d divergences=%d; truthful stub must verify clean", rep.Crosschecks, rep.Divergences)
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS || rep.ThroughputRPS <= 0 {
		t.Errorf("latency/throughput stats missing: %+v", rep)
	}
	// Per-outcome latency split: the stub marks every OK hot answer
	// cached, so all OK latencies are hits, none are misses, and every
	// shed carries its own quantiles.
	if rep.HitLatency.Count != rep.OK || rep.HitLatency.P50MS <= 0 || rep.HitLatency.P99MS < rep.HitLatency.P50MS {
		t.Errorf("hit latency stats wrong: %+v (ok=%d)", rep.HitLatency, rep.OK)
	}
	if rep.MissLatency.Count != 0 {
		t.Errorf("miss latency counted %d, want 0 (all-cached stub)", rep.MissLatency.Count)
	}
	if rep.ShedLatency.Count != rep.Shed || rep.ShedLatency.P50MS <= 0 {
		t.Errorf("shed latency stats wrong: %+v (shed=%d)", rep.ShedLatency, rep.Shed)
	}
	if cs := rep.Classes[ClassHot]; cs.Sent < 95 {
		t.Errorf("hot class sent %d, want ~100", cs.Sent)
	}
	// 100 HTTP requests cannot run allocation-free on the client; a zero
	// here means the MemStats capture is broken, not that the client is
	// perfect.
	if rep.ClientMem.Mallocs == 0 || rep.ClientMem.TotalAllocMB <= 0 {
		t.Errorf("client_mem not captured: %+v", rep.ClientMem)
	}
	buf, err := json.Marshal(rep)
	if err != nil || !strings.Contains(string(buf), `"p99_ms"`) {
		t.Errorf("report must marshal to JSON with quantiles: %v %s", err, buf)
	}
	if !strings.Contains(string(buf), `"client_mem"`) || !strings.Contains(string(buf), `"mallocs"`) {
		t.Errorf("report JSON missing client_mem section: %s", buf)
	}
}

// TestRunFlagsDivergence: a lying server must be caught by the local
// crosscheck.
func TestRunFlagsDivergence(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("POST /v1/elect", func(w http.ResponseWriter, r *http.Request) {
		var req serve.ElectRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		_ = json.NewEncoder(w).Encode(serve.ElectResponse{Ring: req.Ring, Leader: 3, LeaderLabel: "9", Messages: 1})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep, err := Run(Config{
		BaseURL: srv.URL, Requests: 8, Workers: 2, Seed: 5,
		HotRings: 1, HotFraction: 0.999, RotatedFraction: 0.0005,
		K: 3, Crosscheck: 1, Client: srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crosschecks != 8 || rep.Divergences != 8 {
		t.Errorf("crosschecks=%d divergences=%d, want 8/8", rep.Crosschecks, rep.Divergences)
	}
}

// TestRunReadyzPreflight: a target that is draining (or has no /readyz
// at all) must fail the run up front, before any election request is
// sent — a load run against a shutting-down daemon measures nothing.
func TestRunReadyzPreflight(t *testing.T) {
	var elects int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	})
	mux.HandleFunc("POST /v1/elect", func(w http.ResponseWriter, _ *http.Request) {
		elects++
		w.WriteHeader(200)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	_, err := Run(Config{
		BaseURL: srv.URL, Requests: 4, Workers: 1, Seed: 1,
		HotRings: 1, HotFraction: 0.999, RotatedFraction: 0.0005,
		K: 3, Client: srv.Client(),
	})
	if err == nil {
		t.Fatal("Run succeeded against a draining target")
	}
	if !strings.Contains(err.Error(), "not ready") || !strings.Contains(err.Error(), "503") {
		t.Errorf("error %q does not name the readyz verdict", err)
	}
	if elects != 0 {
		t.Errorf("%d election requests reached a draining target", elects)
	}

	// Unreachable target: the pre-flight turns a would-be storm of worker
	// errors into one dial error.
	srv.Close()
	if _, err := Run(Config{
		BaseURL: srv.URL, Requests: 4, Workers: 1, Seed: 1,
		HotRings: 1, HotFraction: 0.999, RotatedFraction: 0.0005, K: 3,
	}); err == nil || !strings.Contains(err.Error(), "pre-flight") {
		t.Errorf("unreachable target: err = %v, want a pre-flight dial error", err)
	}
}
