package load

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// ClusterConfig parameterizes a cluster scaling run: the same seeded
// load plan driven through a gateway at each rung of a replica ladder,
// so the only variable between rungs is fleet width. Everything runs in
// process (cluster.LocalFleet), but over real sockets and the real wire
// protocol — the numbers measure the production stack.
type ClusterConfig struct {
	// Replicas is the fleet-size ladder (default [1, 2, 4]).
	Replicas []int
	// ReplicaCache is each replica's result-cache capacity (0 = serve's
	// default). Small values force miss-heavy traffic, making the
	// compute-scaling term visible; the default makes the run
	// cache-realistic instead.
	ReplicaCache int
	// ReplicaWorkers is each replica's election worker-pool width
	// (0 = serve's default, one per CPU). In-process fleets share one
	// runtime, so pinning this to 1 keeps an N-replica rung from
	// overcommitting the box N-fold.
	ReplicaWorkers int
	// Load is the per-rung load configuration. BaseURL and WireAddr are
	// overwritten to point at each rung's gateway; everything else —
	// seed, mix, protocol, crosscheck — applies to every rung
	// identically.
	Load Config
	// ScaleFloor, when positive, makes RunCluster fail unless the best
	// rung achieves at least this speedup over the first (e.g. 2.5 for
	// the 1→4-replica acceptance bar). Callers should only set it when
	// the host can physically scale (GOMAXPROCS ≥ the top rung).
	ScaleFloor float64
}

// ClusterRung is one ladder step's outcome.
type ClusterRung struct {
	Replicas int     `json:"replicas"`
	Report   *Report `json:"report"`
	// Speedup is this rung's throughput over the first rung's.
	Speedup float64 `json:"speedup"`
	// HotHitRate is the cached fraction of successful hot+rotated
	// requests — the traffic whose locality the rendezvous routing is
	// supposed to preserve as the fleet widens.
	HotHitRate float64 `json:"hot_hit_rate"`
}

// ClusterReport is the JSON result of a cluster scaling run.
type ClusterReport struct {
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Rungs       []ClusterRung `json:"rungs"`
	Divergences int           `json:"divergences"` // summed over rungs
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if len(c.Replicas) == 0 {
		c.Replicas = []int{1, 2, 4}
	}
	return c
}

// hotHitRate extracts the cached fraction of hot+rotated successes.
func hotHitRate(rep *Report) float64 {
	hot, rot := rep.Classes[ClassHot], rep.Classes[ClassRotated]
	ok := hot.OK + rot.OK
	if ok == 0 {
		return 0
	}
	return float64(hot.Cached+rot.Cached) / float64(ok)
}

// RunCluster executes the ladder. Each rung gets a fresh fleet, health
// prober, router, and gateway; the identical seeded plan runs against
// the gateway's HTTP (or wire) front; then everything drains. Failures
// to scale only error when ScaleFloor demands it — the report always
// carries the observed numbers.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	cfg = cfg.withDefaults()
	out := &ClusterReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range cfg.Replicas {
		rep, err := runRung(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("load: cluster rung %d: %w", n, err)
		}
		rung := ClusterRung{Replicas: n, Report: rep, HotHitRate: hotHitRate(rep)}
		if base := firstThroughput(out); base > 0 {
			rung.Speedup = rep.ThroughputRPS / base
		} else {
			rung.Speedup = 1
		}
		out.Rungs = append(out.Rungs, rung)
		out.Divergences += rep.Divergences
	}
	if cfg.ScaleFloor > 0 {
		best := 0.0
		for _, r := range out.Rungs {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
		if best < cfg.ScaleFloor {
			return out, fmt.Errorf("load: best cluster speedup %.2fx is below the %.2fx floor", best, cfg.ScaleFloor)
		}
	}
	return out, nil
}

func firstThroughput(out *ClusterReport) float64 {
	if len(out.Rungs) == 0 {
		return 0
	}
	return out.Rungs[0].Report.ThroughputRPS
}

// runRung boots one fleet-plus-gateway stack, runs the plan, and tears
// it all down in reverse order.
func runRung(cfg ClusterConfig, replicas int) (*Report, error) {
	fleet, err := cluster.StartLocalFleet(replicas, serve.Config{
		CacheEntries: cfg.ReplicaCache,
		Workers:      cfg.ReplicaWorkers,
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Stop()

	health := cluster.StartHealth(fleet.Roster, cluster.HealthConfig{Interval: 100 * time.Millisecond})
	defer health.Stop()

	router, err := cluster.NewRouter(cluster.RouterConfig{Roster: fleet.Roster, Health: health})
	if err != nil {
		return nil, err
	}
	defer router.Close()

	gw := cluster.NewGateway(cluster.GatewayConfig{Router: router})

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: gw.Handler()}
	go hs.Serve(httpLn)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	loadCfg := cfg.Load
	loadCfg.BaseURL = "http://" + httpLn.Addr().String()
	if loadCfg.Proto == ProtoWire {
		wireLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		fe := serve.NewWireFrontend(gw, serve.WireFrontendConfig{Metrics: gw.Metrics()})
		go fe.Serve(wireLn)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			fe.Shutdown(ctx)
		}()
		loadCfg.WireAddr = wireLn.Addr().String()
	}
	return Run(loadCfg)
}
