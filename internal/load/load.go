// Package load is the seeded, deterministic load generator behind
// cmd/ringload: it drives a mix of hot (repeated), rotated (same rings
// under different harness numberings — the traffic the daemon's
// rotation-canonical cache exists for), and cold (fresh) election
// requests against a ringd instance, and reports throughput, latency
// quantiles (internal/stats, exact at this population size), and
// response-class counts as JSON. A -crosscheck fraction of successful
// responses is re-verified against the local deterministic simulator
// (repro.Elect) on the request's own frame, so a run also end-to-end
// checks the daemon's canonicalization and leader-index mapping.
//
// The request plan is a pure function of the seed: same seed, same
// rings, same classes, same crosscheck samples — only timing varies.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/netring"
	"repro/internal/ring"
	"repro/internal/secure"
	"repro/internal/serve"
	"repro/internal/stats"

	repro "repro"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL of the target ringd, e.g. "http://127.0.0.1:8322".
	BaseURL string
	// Proto selects the request protocol: "http" (the /v1/elect JSON
	// path; default) or "wire" (the RGV1 binary protocol on WireAddr).
	// The plan, the mix, and the crosscheck samples are identical either
	// way, so two runs differing only in Proto are a protocol A/B test.
	Proto string
	// WireAddr is the daemon's RGV1 port (host:port), required when
	// Proto is "wire".
	WireAddr string
	// WireConns is the pooled wire connection count requests are
	// pipelined over (default 4).
	WireConns int
	// WireSecure, when set, runs every wire connection through the
	// ringsec handshake against this server configuration (identity +
	// expected server key). Only meaningful with Proto "wire".
	WireSecure *secure.ClientConfig
	// Requests is the total request count (default 1000).
	Requests int
	// Workers is the client concurrency (default 8).
	Workers int
	// Seed makes the request mix reproducible (default 1).
	Seed int64
	// HotRings is the size of the hot working set (default 4).
	HotRings int
	// HotFraction and RotatedFraction split the mix: hot requests repeat
	// a hot ring verbatim, rotated requests resubmit a hot ring under a
	// random rotation, the rest are cold fresh rings. Defaults 0.45/0.30.
	HotFraction     float64
	RotatedFraction float64
	// SymmetricFraction (default 0) carves this share of the mix into
	// symmetric-ring requests served under the randomized ItaiRodeh
	// engine — rings every deterministic algorithm 400s. They draw from a
	// symmetric hot set under random rotations, so they exercise the
	// rotation-canonical cache exactly like the asymmetric classes.
	SymmetricFraction float64
	// Alg, K, Engine are passed through to /v1/elect (defaults "B", 3,
	// "sim").
	Alg    string
	K      int
	Engine string
	// Crosscheck is the fraction of OK responses re-verified against the
	// local simulator (0 = off).
	Crosscheck float64
	// Timeout bounds one HTTP request (default 30s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests pass the in-process one).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Proto == "" {
		c.Proto = ProtoHTTP
	}
	if c.WireConns <= 0 {
		c.WireConns = 4
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HotRings <= 0 {
		c.HotRings = 4
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.45
	}
	if c.RotatedFraction == 0 {
		c.RotatedFraction = 0.30
	}
	if c.Alg == "" {
		c.Alg = "B"
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.Engine == "" {
		c.Engine = "sim"
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Request protocols.
const (
	ProtoHTTP = "http"
	ProtoWire = "wire"
)

// Request classes.
const (
	ClassHot       = "hot"
	ClassRotated   = "rotated"
	ClassCold      = "cold"
	ClassSymmetric = "symmetric"
)

// PlannedRequest is one entry of the deterministic request plan.
type PlannedRequest struct {
	Spec       string // clockwise label sequence
	Class      string // hot, rotated, cold, symmetric
	Alg        string // algorithm for this request (symmetric requests use ItaiRodeh)
	Crosscheck bool   // verify this response against the local simulator
}

// BuildPlan derives the request mix from the seed. It is exported so
// tests can pin determinism without any network traffic.
func BuildPlan(cfg Config) ([]PlannedRequest, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	hot := make([]*ring.Ring, 0, cfg.HotRings)
	if cfg.K >= 3 {
		hot = append(hot, ring.Figure1())
	} else if cfg.K == 2 {
		hot = append(hot, ring.Ring122())
	}
	for len(hot) < cfg.HotRings {
		n := 4 + rng.Intn(7) // 4..10 processes
		r, err := ring.RandomAsymmetric(rng, n, cfg.K, max(4, n))
		if err != nil {
			return nil, fmt.Errorf("load: generating hot ring: %w", err)
		}
		hot = append(hot, r)
	}

	// The symmetric hot set: a short pattern repeated, so the ring has a
	// proper period and is provably symmetric.
	var symHot []*ring.Ring
	if cfg.SymmetricFraction > 0 {
		for len(symHot) < cfg.HotRings {
			d := 1 + rng.Intn(3) // pattern length
			m := 2 + rng.Intn(3) // repetitions ≥ 2 ⇒ symmetric
			labels := make([]ring.Label, d*m)
			for i := 0; i < d; i++ {
				labels[i] = ring.Label(1 + rng.Intn(4))
			}
			for i := d; i < len(labels); i++ {
				labels[i] = labels[i%d]
			}
			r, err := ring.New(labels)
			if err != nil {
				return nil, fmt.Errorf("load: generating symmetric ring: %w", err)
			}
			symHot = append(symHot, r)
		}
	}

	sampleEvery := 0
	if cfg.Crosscheck > 0 {
		sampleEvery = int(1 / cfg.Crosscheck)
		if sampleEvery < 1 {
			sampleEvery = 1
		}
	}

	plan := make([]PlannedRequest, cfg.Requests)
	for i := range plan {
		var spec, class string
		alg := cfg.Alg
		switch u := rng.Float64(); {
		case u < cfg.HotFraction:
			class = ClassHot
			spec = specOf(hot[rng.Intn(len(hot))])
		case u < cfg.HotFraction+cfg.RotatedFraction:
			class = ClassRotated
			r := hot[rng.Intn(len(hot))]
			spec = specOf(r.Rotate(1 + rng.Intn(r.N()-1)))
		case u < cfg.HotFraction+cfg.RotatedFraction+cfg.SymmetricFraction:
			class = ClassSymmetric
			alg = "ItaiRodeh"
			r := symHot[rng.Intn(len(symHot))]
			spec = specOf(r.Rotate(rng.Intn(r.N())))
		default:
			class = ClassCold
			n := 4 + rng.Intn(9) // 4..12 processes
			r, err := ring.RandomAsymmetric(rng, n, cfg.K, max(4, n))
			if err != nil {
				return nil, fmt.Errorf("load: generating cold ring: %w", err)
			}
			spec = specOf(r)
		}
		plan[i] = PlannedRequest{
			Spec:       spec,
			Class:      class,
			Alg:        alg,
			Crosscheck: sampleEvery > 0 && i%sampleEvery == 0,
		}
	}
	return plan, nil
}

func specOf(r *ring.Ring) string {
	labels := r.Labels()
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ")
}

// ClientMem is the load generator's own allocation bill for the run:
// runtime.MemStats deltas captured around the worker phase. It measures
// the CLIENT (request building, JSON decoding, crosschecking), not the
// daemon — a companion number to the server-side allocs/op benchmarks,
// and a tripwire for allocation regressions in the client hot loop.
type ClientMem struct {
	// Mallocs is the heap-object allocation count during the run.
	Mallocs uint64 `json:"mallocs"`
	// TotalAllocMB is cumulative bytes allocated (not peak RSS), in MiB.
	TotalAllocMB float64 `json:"total_alloc_mb"`
	// GCCycles is how many collections the run triggered.
	GCCycles uint32 `json:"gc_cycles"`
	// GCPauseMS is total stop-the-world pause accumulated during the run.
	GCPauseMS float64 `json:"gc_pause_ms"`
}

// ClassStats aggregates one request class.
type ClassStats struct {
	Sent   int `json:"sent"`
	OK     int `json:"ok"`
	Cached int `json:"cached"`
}

// LatencyStats summarizes the latency distribution of one response
// outcome. The combined quantiles hide the cache's bimodality — a hit is
// microseconds, a miss runs a full election, a shed is an immediate
// refusal — so the report breaks them out per outcome.
type LatencyStats struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Report is the JSON result of a load run.
type Report struct {
	BaseURL         string  `json:"base_url"`
	Proto           string  `json:"proto"`
	Seed            int64   `json:"seed"`
	Requests        int     `json:"requests"`
	OK              int     `json:"ok"`
	Shed            int     `json:"shed"` // 429 responses
	BadRequests     int     `json:"bad_requests"`
	ServerErrors    int     `json:"server_errors"`
	TransportErrors int     `json:"transport_errors"`
	Cached          int     `json:"cached"`
	WallMS          float64 `json:"wall_ms"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	MeanMS          float64 `json:"mean_ms"`
	P50MS           float64 `json:"p50_ms"`
	P95MS           float64 `json:"p95_ms"`
	P99MS           float64 `json:"p99_ms"`
	// HitLatency/MissLatency/ShedLatency split the latency distribution
	// by outcome: cache hits (200, cached), cache misses (200, a fresh
	// election ran), and sheds (429).
	HitLatency  LatencyStats `json:"hit_latency"`
	MissLatency LatencyStats `json:"miss_latency"`
	ShedLatency LatencyStats `json:"shed_latency"`
	Crosschecks int          `json:"crosschecks"`
	Divergences int          `json:"divergences"`
	// ShedsWithRetryAfter counts 429 responses carrying a Retry-After
	// header; the admission contract is that every shed does.
	ShedsWithRetryAfter int                   `json:"sheds_with_retry_after"`
	ClientMem           ClientMem             `json:"client_mem"`
	Classes             map[string]ClassStats `json:"classes"`
}

type result struct {
	status    int
	cached    bool
	latency   float64 // seconds
	retryHdr  bool
	transport bool
	checked   bool
	diverged  bool
}

// Run executes the plan against cfg.BaseURL (or, with Proto "wire",
// against cfg.WireAddr) and aggregates the report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Proto != ProtoHTTP && cfg.Proto != ProtoWire {
		return nil, fmt.Errorf("load: unknown proto %q (want %s or %s)", cfg.Proto, ProtoHTTP, ProtoWire)
	}
	plan, err := BuildPlan(cfg)
	if err != nil {
		return nil, err
	}
	workers := min(cfg.Workers, len(plan))
	client := cfg.Client
	if client == nil {
		// One pooled transport across all workers: every worker reuses
		// warm connections to the single target instead of churning
		// through dials, so the HTTP numbers measure the protocol, not
		// connection setup.
		client = &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        workers + 2,
				MaxIdleConnsPerHost: workers + 2,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}

	// Readiness pre-flight: a draining or half-started daemon would turn
	// the whole run into transport noise and shed counts that measure
	// nothing. Fail fast with a precise reason instead. The wire protocol
	// has no readiness frame by design; the HTTP /readyz speaks for the
	// shared serving layers behind both ports.
	resp, err := client.Get(cfg.BaseURL + "/readyz")
	if err != nil {
		return nil, fmt.Errorf("load: readyz pre-flight against %s: %w", cfg.BaseURL, err)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: target %s is not ready: /readyz answered %s", cfg.BaseURL, resp.Status)
	}

	var wireReq *wireRunner
	if cfg.Proto == ProtoWire {
		if cfg.WireAddr == "" {
			return nil, fmt.Errorf("load: proto %q requires WireAddr", ProtoWire)
		}
		wireReq, err = newWireRunner(cfg, plan)
		if err != nil {
			return nil, err
		}
		defer wireReq.close()
	}

	results := make([]result, len(plan))
	idx := make(chan int)
	var wg sync.WaitGroup
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if wireReq != nil {
					results[i] = wireReq.do(i, plan[i])
				} else {
					results[i] = cfg.do(client, plan[i])
				}
			}
		}()
	}
	for i := range plan {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	rep := &Report{
		BaseURL:  cfg.BaseURL,
		Proto:    cfg.Proto,
		Seed:     cfg.Seed,
		Requests: len(plan),
		WallMS:   float64(wall.Microseconds()) / 1000,
		ClientMem: ClientMem{
			Mallocs:      memAfter.Mallocs - memBefore.Mallocs,
			TotalAllocMB: float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / (1 << 20),
			GCCycles:     memAfter.NumGC - memBefore.NumGC,
			GCPauseMS:    float64(memAfter.PauseTotalNs-memBefore.PauseTotalNs) / 1e6,
		},
		Classes: map[string]ClassStats{},
	}
	hist := stats.MustHistogram(stats.DefaultLatencyBuckets)
	hitHist := stats.MustHistogram(stats.DefaultLatencyBuckets)
	missHist := stats.MustHistogram(stats.DefaultLatencyBuckets)
	shedHist := stats.MustHistogram(stats.DefaultLatencyBuckets)
	for i, res := range results {
		cs := rep.Classes[plan[i].Class]
		cs.Sent++
		switch {
		case res.transport:
			rep.TransportErrors++
		case res.status == http.StatusOK:
			rep.OK++
			cs.OK++
			if res.cached {
				rep.Cached++
				cs.Cached++
				hitHist.Observe(res.latency)
			} else {
				missHist.Observe(res.latency)
			}
			hist.Observe(res.latency)
		case res.status == http.StatusTooManyRequests:
			rep.Shed++
			if res.retryHdr {
				rep.ShedsWithRetryAfter++
			}
			shedHist.Observe(res.latency)
		case res.status >= 500:
			rep.ServerErrors++
		default:
			rep.BadRequests++
		}
		if res.checked {
			rep.Crosschecks++
			if res.diverged {
				rep.Divergences++
			}
		}
		rep.Classes[plan[i].Class] = cs
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(len(plan)) / wall.Seconds()
	}
	if hist.Count() > 0 {
		rep.MeanMS = hist.Mean() * 1000
		rep.P50MS = hist.Quantile(0.50) * 1000
		rep.P95MS = hist.Quantile(0.95) * 1000
		rep.P99MS = hist.Quantile(0.99) * 1000
	}
	rep.HitLatency = latencySummary(hitHist)
	rep.MissLatency = latencySummary(missHist)
	rep.ShedLatency = latencySummary(shedHist)
	return rep, nil
}

// latencySummary condenses one outcome histogram; an outcome with no
// observations reports zeroes.
func latencySummary(h *stats.Histogram) LatencyStats {
	if h.Count() == 0 {
		return LatencyStats{}
	}
	return LatencyStats{
		Count:  int(h.Count()),
		MeanMS: h.Mean() * 1000,
		P50MS:  h.Quantile(0.50) * 1000,
		P95MS:  h.Quantile(0.95) * 1000,
		P99MS:  h.Quantile(0.99) * 1000,
	}
}

// do issues one request and, when planned, crosschecks the response
// against the local deterministic simulator in the request's own frame —
// which exercises the server's canonicalization round trip.
func (cfg Config) do(client *http.Client, p PlannedRequest) result {
	body, _ := json.Marshal(serve.ElectRequest{Ring: p.Spec, Alg: p.Alg, K: cfg.K, Engine: cfg.Engine})
	start := time.Now()
	resp, err := client.Post(cfg.BaseURL+"/v1/elect", "application/json", bytes.NewReader(body))
	if err != nil {
		return result{transport: true}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	lat := time.Since(start).Seconds()
	if err != nil {
		return result{transport: true}
	}
	res := result{
		status:   resp.StatusCode,
		latency:  lat,
		retryHdr: resp.Header.Get("Retry-After") != "",
	}
	if resp.StatusCode != http.StatusOK {
		return res
	}
	var er serve.ElectResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		res.transport = true
		return res
	}
	res.cached = er.Cached
	if p.Crosscheck {
		res.checked = true
		res.diverged = !verify(p.Spec, p.Alg, cfg.K, er)
	}
	return res
}

// wireRunner drives the plan over the RGV1 binary protocol: one pooled,
// pipelined WireClient shared by every worker, and the plan's label
// sequences parsed once up front so the per-request loop sends raw
// frames. Same plan, same crosscheck samples as the HTTP path — only
// the transport differs.
type wireRunner struct {
	cfg    Config
	client *serve.WireClient
	algs   []repro.Algorithm // plan[i].Alg parsed, index-aligned
	labels [][]ring.Label    // plan[i].Spec parsed, index-aligned
}

func newWireRunner(cfg Config, plan []PlannedRequest) (*wireRunner, error) {
	algs := make([]repro.Algorithm, len(plan))
	labels := make([][]ring.Label, len(plan))
	for i, p := range plan {
		alg, err := repro.ParseAlgorithm(p.Alg)
		if err != nil {
			return nil, fmt.Errorf("load: planned request %d: %w", i, err)
		}
		algs[i] = alg
		r, err := ring.Parse(p.Spec)
		if err != nil {
			return nil, fmt.Errorf("load: planned ring %d: %w", i, err)
		}
		labels[i] = r.LabelsView()
	}
	client, err := serve.DialWireSecure(cfg.WireAddr, cfg.WireConns, cfg.Timeout, netring.Backoff{}, cfg.WireSecure)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	return &wireRunner{cfg: cfg, client: client, algs: algs, labels: labels}, nil
}

func (wr *wireRunner) close() { wr.client.Close() }

// do issues one wire election. Typed ERROR frames land in the same
// status-code accounting as HTTP responses (the codes are defined to
// mirror each other); sheds count as carrying Retry-After when the
// frame's hint is positive, matching the HTTP header contract.
func (wr *wireRunner) do(i int, p PlannedRequest) result {
	start := time.Now()
	out, err := wr.client.Elect(wr.labels[i], wr.algs[i], wr.cfg.K)
	lat := time.Since(start).Seconds()
	if err != nil {
		var we *serve.WireError
		if errors.As(err, &we) {
			return result{status: we.Status, latency: lat, retryHdr: we.RetryAfter > 0}
		}
		return result{transport: true}
	}
	res := result{status: http.StatusOK, cached: out.Cached, latency: lat}
	if p.Crosscheck {
		res.checked = true
		res.diverged = !verifyWire(p.Spec, wr.algs[i], wr.cfg.K, out)
	}
	return res
}

// verifyWire re-runs the election locally on the request's frame and
// compares it against the wire outcome — the binary twin of verify.
func verifyWire(spec string, alg repro.Algorithm, k int, wo serve.WireOutcome) bool {
	r, err := repro.ParseRing(spec)
	if err != nil {
		return false
	}
	out, err := repro.Elect(r, alg, k)
	if err != nil {
		return false
	}
	return out.Leader == wo.Leader &&
		out.LeaderLabel == wo.LeaderLabel &&
		out.Messages == wo.Messages
}

// verify re-runs the election locally on the request's frame and compares
// the leader index, label, and message count against the response.
func verify(spec, algName string, k int, er serve.ElectResponse) bool {
	r, err := repro.ParseRing(spec)
	if err != nil {
		return false
	}
	alg, err := repro.ParseAlgorithm(algName)
	if err != nil {
		return false
	}
	out, err := repro.Elect(r, alg, k)
	if err != nil {
		return false
	}
	// A zero TotalBits means the server did not report bit accounting
	// (the cluster gateway proxies over the RGV1 wire, whose RESULT frame
	// carries no bit totals) — real elections always cost bits, so zero is
	// "absent", not "disagrees".
	return out.Leader == er.Leader &&
		out.LeaderLabel.String() == er.LeaderLabel &&
		out.Messages == er.Messages &&
		(er.TotalBits == 0 || out.TotalBits == er.TotalBits)
}
