package load

import (
	"runtime"
	"testing"
)

// TestClusterScaling is the PR's load acceptance gate: the same seeded
// plan through 1, 2, and 4 replicas must (a) never diverge from the
// local simulator, (b) keep the hot+rotated hit rate within 5 points of
// the single-node run — rendezvous routing preserves cache locality as
// the fleet widens — and (c), on hosts with the cores to show it,
// scale throughput by at least 2.5x from 1 to 4 replicas. On narrower
// hosts the throughput floor is informational: a single-core box cannot
// speed up CPU-bound elections by adding in-process replicas, and
// asserting otherwise would just encode a flaky lie.
func TestClusterScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster ladder is a long test")
	}
	rep, err := RunCluster(ClusterConfig{
		Replicas:       []int{1, 2, 4},
		ReplicaWorkers: 1, // in-process fleet: don't overcommit the box N-fold
		Load: Config{
			Requests:   600,
			Workers:    16,
			Seed:       7,
			Crosscheck: 0.25,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergences != 0 {
		t.Fatalf("%d crosscheck divergences across the ladder", rep.Divergences)
	}
	if len(rep.Rungs) != 3 {
		t.Fatalf("rungs: %+v", rep.Rungs)
	}
	for _, r := range rep.Rungs {
		lr := r.Report
		if lr.TransportErrors != 0 || lr.ServerErrors != 0 || lr.BadRequests != 0 {
			t.Errorf("%d replicas: %d transport / %d server / %d bad-request errors on a healthy fleet",
				r.Replicas, lr.TransportErrors, lr.ServerErrors, lr.BadRequests)
		}
		if lr.Crosschecks == 0 {
			t.Errorf("%d replicas: no crosschecks ran", r.Replicas)
		}
		t.Logf("replicas=%d throughput=%.0f rps speedup=%.2fx hot-hit-rate=%.3f",
			r.Replicas, lr.ThroughputRPS, r.Speedup, r.HotHitRate)
	}

	single := rep.Rungs[0].HotHitRate
	for _, r := range rep.Rungs[1:] {
		if r.HotHitRate < single-0.05 {
			t.Errorf("%d replicas: hot hit rate %.3f fell more than 5 points below single-node %.3f",
				r.Replicas, r.HotHitRate, single)
		}
	}

	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; skipping the 2.5x @ 4-replica throughput floor (needs >= 4)", runtime.NumCPU())
	}
	if best := rep.Rungs[len(rep.Rungs)-1].Speedup; best < 2.5 {
		t.Errorf("4-replica speedup %.2fx, want >= 2.5x", best)
	}
}

// TestClusterScaleFloorEnforced pins that ScaleFloor actually fails a
// run: one rung cannot beat itself by 100x, and the report must still
// come back alongside the error for diagnosis.
func TestClusterScaleFloorEnforced(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{
		Replicas:   []int{1},
		ScaleFloor: 100,
		Load:       Config{Requests: 50, Workers: 4, Seed: 3},
	})
	if err == nil {
		t.Fatal("a 100x floor on a one-rung ladder must fail")
	}
	if rep == nil || len(rep.Rungs) != 1 {
		t.Fatalf("report missing alongside the floor error: %+v", rep)
	}
}
