// Package gorun executes a core.Protocol on a ring as real concurrency:
// one goroutine per process, connected by channel-backed unbounded FIFO
// links (one pump goroutine per link). The Go scheduler supplies the
// asynchrony; fairness follows from channel semantics. It cross-validates
// the deterministic simulator (same elected leader, spec respected) and
// provides wall-clock parallel benchmarks.
package gorun

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Result is the outcome of one parallel execution.
type Result struct {
	// Protocol is the protocol's display name.
	Protocol string
	// N is the ring size.
	N int
	// Messages is the total number of sends.
	Messages int
	// TotalBits is the total payload cost of all sends in bits
	// (core.Message.Bits) — identical to the simulator's for the same
	// (ring, protocol), since it is a pure function of the message
	// sequence.
	TotalBits int
	// LeaderIndex is the elected process's index.
	LeaderIndex int
	// Statuses is the terminal status of every process.
	Statuses []core.Status
	// PeakSpacePerProc is each process's peak SpaceBits.
	PeakSpacePerProc []int
	// Wall is the elapsed wall-clock time of the run.
	Wall time.Duration
}

// ErrTimeout reports that the execution did not terminate in time.
var ErrTimeout = errors.New("gorun: execution timed out")

// Run executes the protocol on r with one goroutine per process and
// returns when every process has halted. A non-terminating or deadlocked
// execution is aborted after timeout.
func Run(r *ring.Ring, p core.Protocol, timeout time.Duration) (*Result, error) {
	return RunTraced(r, p, timeout, nil)
}

// RunTraced is Run with event tracing. Each action's events (the delivery
// or init, any phase changes, and the sends it performs) are recorded
// atomically under one lock, so the resulting stream is a valid
// linearization: per-process program order and per-link FIFO order are
// preserved, and every send precedes its delivery. The same trace
// analyses that run on simulator output (phase tables, Figure 2
// conformance, Observation 1) therefore apply to real concurrent
// executions. sink may be nil.
func RunTraced(r *ring.Ring, p core.Protocol, timeout time.Duration, sink trace.Sink) (*Result, error) {
	n := r.N()
	labelBits := r.LabelBits()
	machines := make([]core.Machine, n)
	for i := 0; i < n; i++ {
		machines[i] = core.NewMachineFor(p, i, r.Label(i))
	}

	res := &Result{
		Protocol:         p.Name(),
		N:                n,
		LeaderIndex:      -1,
		PeakSpacePerProc: make([]int, n),
	}

	var (
		msgCount atomic.Int64
		bitCount atomic.Int64
		done     = make(chan struct{})
		stopOnce sync.Once
		firstErr atomic.Pointer[error]
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		e := err
		firstErr.CompareAndSwap(nil, &e)
		stopOnce.Do(func() { close(done) })
	}

	checker := spec.New(n)
	var checkMu sync.Mutex
	lastPhase := make([]int, n)
	// observe serializes spec checking and, when tracing, records the
	// action's events atomically: the init/delivery itself, phase
	// transitions, and the sends it produced.
	observe := func(i int, op trace.Op, action string, msg core.Message, sent []core.Message) error {
		checkMu.Lock()
		defer checkMu.Unlock()
		if sink != nil {
			m := machines[i]
			sink.Record(trace.Event{Op: op, Proc: i, Action: action, Msg: msg, State: m.StateName()})
			if pr, ok := m.(core.PhaseReporter); ok {
				if ph := pr.Phase(); ph > lastPhase[i] {
					for q := lastPhase[i] + 1; q <= ph; q++ {
						sink.Record(trace.Event{Op: trace.OpPhase, Proc: i, Phase: q, Guest: pr.Guest(), Active: pr.Active()})
					}
					lastPhase[i] = ph
				}
			}
			for _, sm := range sent {
				sink.Record(trace.Event{Op: trace.OpSend, Proc: i, Msg: sm, Bits: sm.Bits(labelBits, n)})
			}
			if m.Halted() {
				sink.Record(trace.Event{Op: trace.OpHalt, Proc: i, State: m.StateName()})
			}
		}
		return checker.Observe(i, machines[i].Status())
	}

	// inbox[i] is the delivery channel of process i; outbox[i] carries the
	// sends of process i to the pump of link (i, i+1).
	inbox := make([]chan core.Message, n)
	outbox := make([]chan core.Message, n)
	for i := 0; i < n; i++ {
		inbox[i] = make(chan core.Message, 64)
		outbox[i] = make(chan core.Message, 64)
	}

	var wg sync.WaitGroup

	// Link pumps: unbounded FIFO buffering between process i and i+1, so a
	// slow receiver can never deadlock a sender (the model's links hold
	// arbitrarily many messages).
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			to := (i + 1) % n
			var buf []core.Message
			in := outbox[i]
			for {
				var out chan core.Message
				var head core.Message
				if len(buf) > 0 {
					out = inbox[to]
					head = buf[0]
				} else if in == nil {
					return // source closed and buffer drained
				}
				select {
				case m, ok := <-in:
					if !ok {
						in = nil
						if len(buf) == 0 {
							return
						}
						continue
					}
					buf = append(buf, m)
				case out <- head:
					buf = buf[1:]
				case <-done:
					return
				}
			}
		}(i)
	}

	// Processes.
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(outbox[i])
			m := machines[i]
			peak := 0
			defer func() { res.PeakSpacePerProc[i] = peak }()

			send := func(msgs []core.Message) bool {
				for _, msg := range msgs {
					msgCount.Add(1)
					bitCount.Add(int64(msg.Bits(labelBits, n)))
					select {
					case outbox[i] <- msg:
					case <-done:
						return false
					}
				}
				return true
			}

			var out core.Outbox
			action := m.Init(&out)
			if sp := m.SpaceBits(); sp > peak {
				peak = sp
			}
			sent := out.Drain()
			if err := observe(i, trace.OpInit, action, core.Message{}, sent); err != nil {
				fail(err)
				return
			}
			if !send(sent) {
				return
			}
			for !m.Halted() {
				var msg core.Message
				select {
				case msg = <-inbox[i]:
				case <-done:
					return
				}
				action, err := m.Receive(msg, &out)
				if err != nil {
					fail(fmt.Errorf("gorun: process %d: %w", i, err))
					return
				}
				if sp := m.SpaceBits(); sp > peak {
					peak = sp
				}
				sent := out.Drain()
				if err := observe(i, trace.OpDeliver, action, msg, sent); err != nil {
					fail(err)
					return
				}
				if !send(sent) {
					return
				}
			}
		}(i)
	}

	start := time.Now()
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(timeout):
		fail(ErrTimeout)
		<-finished
	}
	res.Wall = time.Since(start)
	res.Messages = int(msgCount.Load())
	res.TotalBits = int(bitCount.Load())

	if errp := firstErr.Load(); errp != nil {
		return res, *errp
	}

	res.Statuses = make([]core.Status, n)
	ids := make([]ring.Label, n)
	halted := make([]bool, n)
	for i, m := range machines {
		res.Statuses[i] = m.Status()
		ids[i] = r.Label(i)
		halted[i] = m.Halted()
	}
	leader, err := checker.Finalize(ids, halted)
	if err != nil {
		return res, err
	}
	res.LeaderIndex = leader
	return res, nil
}
