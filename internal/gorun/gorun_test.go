package gorun_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gorun"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestAgreesWithSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rings := []*ring.Ring{ring.Ring122(), ring.Figure1(), ring.Distinct(12)}
	for i := 0; i < 4; i++ {
		r, err := ring.RandomAsymmetric(rng, 8+3*i, 3, 6)
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	for _, r := range rings {
		k := max(2, r.MaxMultiplicity())
		for _, mk := range []func(int, int) (core.Protocol, error){
			func(k, b int) (core.Protocol, error) { return core.NewAProtocol(k, b) },
			func(k, b int) (core.Protocol, error) { return core.NewStarProtocol(k, b) },
			func(k, b int) (core.Protocol, error) { return core.NewBProtocol(k, b) },
		} {
			p, err := mk(k, r.LabelBits())
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.RunSync(r, p, sim.Options{})
			if err != nil {
				t.Fatalf("sim %s on %s: %v", p.Name(), r, err)
			}
			got, err := gorun.Run(r, p, time.Minute)
			if err != nil {
				t.Fatalf("gorun %s on %s: %v", p.Name(), r, err)
			}
			if got.LeaderIndex != want.LeaderIndex {
				t.Errorf("%s on %s: gorun leader p%d, sim p%d", p.Name(), r, got.LeaderIndex, want.LeaderIndex)
			}
			if got.Messages != want.Messages {
				t.Errorf("%s on %s: gorun %d messages, sim %d", p.Name(), r, got.Messages, want.Messages)
			}
			for i := range got.Statuses {
				if got.Statuses[i] != want.Statuses[i] {
					t.Errorf("%s on %s: status[%d] %+v vs %+v", p.Name(), r, i, got.Statuses[i], want.Statuses[i])
				}
			}
		}
	}
}

func TestPeakSpaceMatchesSim(t *testing.T) {
	r := ring.Distinct(8)
	p, err := core.NewBProtocol(2, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunSync(r, p, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := gorun.Run(r, p, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.PeakSpacePerProc {
		if got.PeakSpacePerProc[i] != want.PeakSpacePerProc[i] {
			t.Errorf("peak space[%d] = %d, sim %d", i, got.PeakSpacePerProc[i], want.PeakSpacePerProc[i])
		}
	}
}

// silentProtocol never halts nor sends: the run can only end by timeout.
type silentProtocol struct{}

func (silentProtocol) Name() string { return "silent" }
func (silentProtocol) NewMachine(id ring.Label) core.Machine {
	return silentMachine{}
}

type silentMachine struct{}

func (silentMachine) Init(*core.Outbox) string { return "Z1" }
func (silentMachine) Receive(core.Message, *core.Outbox) (string, error) {
	return "Z2", nil
}
func (silentMachine) Halted() bool        { return false }
func (silentMachine) Status() core.Status { return core.Status{} }
func (silentMachine) StateName() string   { return "Z" }
func (silentMachine) SpaceBits() int      { return 1 }
func (silentMachine) Fingerprint() string { return "Z" }

func TestTimeout(t *testing.T) {
	r := ring.Distinct(3)
	_, err := gorun.Run(r, silentProtocol{}, 50*time.Millisecond)
	if !errors.Is(err, gorun.ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

// brokenProtocol rejects every received message, testing error propagation
// out of a process goroutine.
type brokenProtocol struct{}

func (brokenProtocol) Name() string { return "broken" }
func (brokenProtocol) NewMachine(id ring.Label) core.Machine {
	return &brokenMachine{id: id}
}

type brokenMachine struct{ id ring.Label }

func (m *brokenMachine) Init(out *core.Outbox) string {
	out.Send(core.Token(m.id))
	return "E1"
}
func (m *brokenMachine) Receive(msg core.Message, _ *core.Outbox) (string, error) {
	return "", fmt.Errorf("broken machine rejects %s", msg)
}
func (m *brokenMachine) Halted() bool        { return false }
func (m *brokenMachine) Status() core.Status { return core.Status{} }
func (m *brokenMachine) StateName() string   { return "E" }
func (m *brokenMachine) SpaceBits() int      { return 1 }
func (m *brokenMachine) Fingerprint() string { return "E" }

func TestMachineErrorPropagates(t *testing.T) {
	r := ring.Distinct(3)
	_, err := gorun.Run(r, brokenProtocol{}, 10*time.Second)
	if err == nil || errors.Is(err, gorun.ErrTimeout) {
		t.Errorf("err = %v, want machine error", err)
	}
}

func TestRepeatedRunsDeterministicOutcome(t *testing.T) {
	r, err := ring.RandomAsymmetric(rand.New(rand.NewSource(23)), 20, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewBProtocol(3, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	var leader, messages int
	for run := 0; run < 8; run++ {
		res, err := gorun.Run(r, p, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			leader, messages = res.LeaderIndex, res.Messages
			continue
		}
		if res.LeaderIndex != leader || res.Messages != messages {
			t.Fatalf("run %d: p%d/%d messages, first run p%d/%d — outcome must be schedule-independent",
				run, res.LeaderIndex, res.Messages, leader, messages)
		}
	}
}

// TestTracedFigure1UnderRealConcurrency reproduces Figure 1 from a trace
// of the goroutine engine: the phase table, active sets and guests must
// match the paper even when the Go scheduler supplies the asynchrony, and
// every observed transition must be a Figure 2 edge.
func TestTracedFigure1UnderRealConcurrency(t *testing.T) {
	r := ring.Figure1()
	p, err := core.NewBProtocol(3, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		mem := &trace.Mem{}
		res, err := gorun.RunTraced(r, p, time.Minute, mem)
		if err != nil {
			t.Fatal(err)
		}
		if res.LeaderIndex != 0 {
			t.Fatalf("run %d: leader p%d, want p0", run, res.LeaderIndex)
		}
		table := trace.BuildPhaseTable(mem.Events, r.N())
		if table.Phases() != 9 {
			t.Fatalf("run %d: %d phases, want 9", run, table.Phases())
		}
		wantActive := [][]int{{0, 1, 2, 3, 4, 5, 6, 7}, {0, 2, 6}, {0, 6}, {0}}
		for ph, want := range wantActive {
			got := table.ActiveSet(ph + 1)
			if len(got) != len(want) {
				t.Fatalf("run %d phase %d: active %v, want %v", run, ph+1, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("run %d phase %d: active %v, want %v", run, ph+1, got, want)
				}
			}
		}
		if bad := trace.CheckAgainstFigure2(trace.Transitions(mem.Events)); len(bad) > 0 {
			t.Fatalf("run %d: transitions outside Figure 2: %v", run, bad)
		}
		// Event accounting: sends == receives == messages.
		sends, delivers := 0, 0
		for _, e := range mem.Events {
			switch e.Op {
			case trace.OpSend:
				sends++
			case trace.OpDeliver:
				delivers++
			}
		}
		if sends != res.Messages || delivers != res.Messages {
			t.Fatalf("run %d: %d sends / %d delivers vs %d messages", run, sends, delivers, res.Messages)
		}
	}
}

func TestLargeParallelRing(t *testing.T) {
	if testing.Short() {
		t.Skip("large parallel ring skipped in -short mode")
	}
	r, err := ring.RandomAsymmetric(rand.New(rand.NewSource(31)), 256, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewAProtocol(4, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	res, err := gorun.Run(r, p, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.TrueLeader()
	if res.LeaderIndex != want {
		t.Errorf("leader p%d, want true leader p%d", res.LeaderIndex, want)
	}
}
