package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/trace"
)

// opInit and opDeliver keep the trace package out of the hot-path call
// signatures.
func opInit() trace.Op    { return trace.OpInit }
func opDeliver() trace.Op { return trace.OpDeliver }

// linkItem is one in-flight message with its scheduled delivery time.
type linkItem struct {
	at   float64
	seq  int // global tiebreak: FIFO across equal timestamps
	from int // sending process; delivered to from+1
	msg  core.Message
}

// before orders events by (at, seq): earliest delivery first, global send
// order as the tiebreak.
func (it linkItem) before(o linkItem) bool {
	if it.at != o.at {
		return it.at < o.at
	}
	return it.seq < o.seq
}

// eventQueue is a direct array min-heap over (at, seq). container/heap
// would box every linkItem into an `any` on Push and Pop — one heap
// allocation plus an interface round-trip per simulated message; sifting
// items directly keeps the event loop allocation-free once the backing
// array has grown.
type eventQueue struct {
	a []linkItem
}

func (q *eventQueue) len() int { return len(q.a) }

// push inserts it, sifting up.
func (q *eventQueue) push(it linkItem) {
	q.a = append(q.a, it)
	i := len(q.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.a[i].before(q.a[parent]) {
			break
		}
		q.a[i], q.a[parent] = q.a[parent], q.a[i]
		i = parent
	}
}

// pop removes and returns the minimum element, sifting down.
func (q *eventQueue) pop() linkItem {
	top := q.a[0]
	n := len(q.a) - 1
	q.a[0] = q.a[n]
	q.a = q.a[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.a[r].before(q.a[l]) {
			min = r
		}
		if !q.a[min].before(q.a[i]) {
			break
		}
		q.a[i], q.a[min] = q.a[min], q.a[i]
		i = min
	}
	return top
}

// RunAsync executes the protocol event-wise: every process runs its initial
// action at time 0, and each message is delivered delay(from, seq) time
// units after it was sent — clamped so deliveries on one link never overtake
// (reliable FIFO links). Process execution takes zero time, matching the
// paper's time-unit normalization; the reported TimeUnits is the largest
// delivery timestamp, which for ConstantDelay(1) equals the worst-case
// time-unit complexity.
func RunAsync(r *ring.Ring, p core.Protocol, delay DelayModel, opts Options) (*Result, error) {
	e := newEngine(r, p, opts)
	n := e.n

	q := eventQueue{a: make([]linkItem, 0, 2*n)}
	seq := 0
	lastSched := make([]float64, n) // last scheduled delivery per link, for FIFO clamping
	inFlight := make([]int, n)      // undelivered messages per link

	send := func(from int, msgs []core.Message, now float64, step int) {
		if len(msgs) == 0 {
			return
		}
		e.recordSends(from, msgs, step, now)
		for _, m := range msgs {
			if opts.Drop != nil && opts.Drop(from, seq) {
				seq++
				continue // lost in transit: reliable-links assumption injected away
			}
			at := now + delay.Delay(from, seq)
			if at < lastSched[from] {
				at = lastSched[from] // no overtaking on a FIFO link
			}
			lastSched[from] = at
			q.push(linkItem{at: at, seq: seq, from: from, msg: m})
			seq++
			inFlight[from]++
			if inFlight[from] > e.res.MaxLinkDepth {
				e.res.MaxLinkDepth = inFlight[from]
			}
		}
	}

	// One reusable outbox: sends are copied into the event heap before the
	// next action, so per-action allocation is unnecessary.
	var out core.Outbox

	// Initial actions, time 0.
	for i := 0; i < n; i++ {
		out.Reset()
		action := e.machines[i].Init(&out)
		if err := e.afterAction(i, action, opInit(), core.Message{}, 0, 0); err != nil {
			return e.res, err
		}
		send(i, out.Messages(), 0, 0)
	}

	deliveries := 0
	var now float64
	for q.len() > 0 {
		it := q.pop()
		now = it.at
		deliveries++
		inFlight[it.from]--
		if e.res.Actions+1 > e.maxAct {
			return e.res, fmt.Errorf("%w after %d deliveries", ErrMaxActions, deliveries)
		}
		to := (it.from + 1) % n
		m := e.machines[to]
		if m.Halted() {
			return e.res, fmt.Errorf("sim: message %s delivered to halted process %d at t=%.3f", it.msg, to, now)
		}
		out.Reset()
		action, err := m.Receive(it.msg, &out)
		if err != nil {
			return e.res, err
		}
		if err := e.afterAction(to, action, opDeliver(), it.msg, deliveries, now); err != nil {
			return e.res, err
		}
		send(to, out.Messages(), now, deliveries)
	}

	e.res.Steps = deliveries
	e.res.TimeUnits = now
	if err := e.finalize(true); err != nil {
		return e.res, err
	}
	return e.res, nil
}
