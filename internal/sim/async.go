package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/trace"
)

// opInit and opDeliver keep the trace package out of the hot-path call
// signatures.
func opInit() trace.Op    { return trace.OpInit }
func opDeliver() trace.Op { return trace.OpDeliver }

// linkItem is one in-flight message with its scheduled delivery time.
type linkItem struct {
	at   float64
	seq  int // global tiebreak: FIFO across equal timestamps
	from int // sending process; delivered to from+1
	msg  core.Message
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []linkItem

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(linkItem)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// RunAsync executes the protocol event-wise: every process runs its initial
// action at time 0, and each message is delivered delay(from, seq) time
// units after it was sent — clamped so deliveries on one link never overtake
// (reliable FIFO links). Process execution takes zero time, matching the
// paper's time-unit normalization; the reported TimeUnits is the largest
// delivery timestamp, which for ConstantDelay(1) equals the worst-case
// time-unit complexity.
func RunAsync(r *ring.Ring, p core.Protocol, delay DelayModel, opts Options) (*Result, error) {
	e := newEngine(r, p, opts)
	n := e.n

	var q eventQueue
	seq := 0
	lastSched := make([]float64, n) // last scheduled delivery per link, for FIFO clamping
	inFlight := make([]int, n)      // undelivered messages per link

	send := func(from int, msgs []core.Message, now float64, step int) {
		if len(msgs) == 0 {
			return
		}
		e.recordSends(from, msgs, step, now)
		for _, m := range msgs {
			if opts.Drop != nil && opts.Drop(from, seq) {
				seq++
				continue // lost in transit: reliable-links assumption injected away
			}
			at := now + delay.Delay(from, seq)
			if at < lastSched[from] {
				at = lastSched[from] // no overtaking on a FIFO link
			}
			lastSched[from] = at
			heap.Push(&q, linkItem{at: at, seq: seq, from: from, msg: m})
			seq++
			inFlight[from]++
			if inFlight[from] > e.res.MaxLinkDepth {
				e.res.MaxLinkDepth = inFlight[from]
			}
		}
	}

	// One reusable outbox: sends are copied into the event heap before the
	// next action, so per-action allocation is unnecessary.
	var out core.Outbox

	// Initial actions, time 0.
	for i := 0; i < n; i++ {
		out.Reset()
		action := e.machines[i].Init(&out)
		if err := e.afterAction(i, action, opInit(), core.Message{}, 0, 0); err != nil {
			return e.res, err
		}
		send(i, out.Messages(), 0, 0)
	}

	deliveries := 0
	var now float64
	for q.Len() > 0 {
		it := heap.Pop(&q).(linkItem)
		now = it.at
		deliveries++
		inFlight[it.from]--
		if e.res.Actions+1 > e.maxAct {
			return e.res, fmt.Errorf("%w after %d deliveries", ErrMaxActions, deliveries)
		}
		to := (it.from + 1) % n
		m := e.machines[to]
		if m.Halted() {
			return e.res, fmt.Errorf("sim: message %s delivered to halted process %d at t=%.3f", it.msg, to, now)
		}
		out.Reset()
		action, err := m.Receive(it.msg, &out)
		if err != nil {
			return e.res, err
		}
		if err := e.afterAction(to, action, opDeliver(), it.msg, deliveries, now); err != nil {
			return e.res, err
		}
		send(to, out.Messages(), now, deliveries)
	}

	e.res.Steps = deliveries
	e.res.TimeUnits = now
	if err := e.finalize(true); err != nil {
		return e.res, err
	}
	return e.res, nil
}
