package sim_test

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
)

// TestExploreConfluence model-checks outcome confluence exhaustively: on
// small rings, EVERY interleaving of initial actions and FIFO deliveries
// elects the same leader with the same message count, satisfying the
// specification throughout. This upgrades the sampled schedule tests to a
// proof over the full (finite) configuration lattice.
func TestExploreConfluence(t *testing.T) {
	cases := []struct {
		spec string
		k    int
	}{
		{"1 2", 1},
		{"2 1 3", 1},
		{"1 2 2", 2},
		{"2 2 1", 2},
		{"3 1 4 2", 1},
		{"1 1 2 2", 2},
		{"2 1 2 1 3", 2},
	}
	if !testing.Short() {
		// The clone-based explorer reaches 6-process rings in under a
		// second each (roughly 10⁴ distinct configurations).
		cases = append(cases,
			struct {
				spec string
				k    int
			}{"1 2 3 4 5", 1},
			struct {
				spec string
				k    int
			}{"2 1 2 1 3 3", 2},
			struct {
				spec string
				k    int
			}{"1 2 3 4 5 6", 1},
		)
	}
	for _, c := range cases {
		r, err := ring.Parse(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		protos := []core.Protocol{}
		if a, err := core.NewAProtocol(c.k, r.LabelBits()); err == nil {
			protos = append(protos, a)
		}
		if s, err := core.NewStarProtocol(c.k, r.LabelBits()); err == nil {
			protos = append(protos, s)
		}
		if kn, err := baseline.NewKnownNProtocol(r.N(), r.LabelBits()); err == nil {
			protos = append(protos, kn)
		}
		for _, p := range protos {
			res, err := sim.ExploreAll(r, p, 500_000)
			if err != nil {
				t.Fatalf("%s on %s: %v (after %d states)", p.Name(), r, err, res.States)
			}
			if res.Terminals != 1 {
				t.Fatalf("%s on %s: %d distinct terminal outcomes", p.Name(), r, res.Terminals)
			}
			want, _ := r.TrueLeader()
			if res.LeaderIndex != want {
				t.Fatalf("%s on %s: every schedule elected p%d, true leader p%d", p.Name(), r, res.LeaderIndex, want)
			}
			// The sampled engines must land on the same outcome.
			ref, err := sim.RunSync(r, p, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Messages != res.Messages {
				t.Fatalf("%s on %s: explored message count %d, sync engine %d", p.Name(), r, res.Messages, ref.Messages)
			}
			if res.States < 3 {
				t.Fatalf("%s on %s: implausibly small state space %d", p.Name(), r, res.States)
			}
			t.Logf("%s on %s: %d states, leader p%d, %d messages, max link depth %d",
				p.Name(), r, res.States, res.LeaderIndex, res.Messages, res.MaxLinkDepth)
		}
	}
}

// TestExploreBkSmall model-checks Bk on the smallest rings it is defined
// for (k ≥ 2). Bk's state space is larger (phases × shifts), so only the
// tiniest rings are exhaustively explored.
func TestExploreBkSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("state-space exploration skipped in -short mode")
	}
	for _, spec := range []string{"1 2", "1 2 2", "2 2 1", "2 1 3"} {
		r, err := ring.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewBProtocol(2, r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.ExploreAll(r, p, 2_000_000)
		if err != nil {
			t.Fatalf("Bk on %s: %v", r, err)
		}
		want, _ := r.TrueLeader()
		if res.Terminals != 1 || res.LeaderIndex != want {
			t.Fatalf("Bk on %s: %d terminals, leader p%d (want p%d)", r, res.Terminals, res.LeaderIndex, want)
		}
		t.Logf("Bk on %s: %d states, max link depth %d", r, res.States, res.MaxLinkDepth)
	}
}

// TestExploreCatchesNonConfluence feeds the explorer a protocol whose
// outcome depends on the schedule and checks it is reported.
func TestExploreCatchesNonConfluence(t *testing.T) {
	r := ring.Distinct(2)
	_, err := sim.ExploreAll(r, racyProtocol{}, 100_000)
	if err == nil || !strings.Contains(err.Error(), "schedule") && !strings.Contains(err.Error(), "spec") {
		t.Fatalf("err = %v, want schedule-dependence or spec violation", err)
	}
}

// racyProtocol elects whichever process receives a token first — a
// deliberately schedule-dependent (hence broken) protocol.
type racyProtocol struct{}

func (racyProtocol) Name() string { return "racy" }
func (racyProtocol) NewMachine(id ring.Label) core.Machine {
	return &racyMachine{id: id}
}

type racyMachine struct {
	id       ring.Label
	isLeader bool
	done     bool
	leader   ring.Label
	ledSet   bool
	halted   bool
}

func (m *racyMachine) Init(out *core.Outbox) string {
	out.Send(core.Token(m.id))
	return "R1"
}

func (m *racyMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	switch msg.Kind {
	case core.KindToken:
		if m.halted || m.done {
			return "R4", nil
		}
		// First token in wins: schedule-dependent.
		m.isLeader = true
		m.done = true
		m.leader = m.id
		m.ledSet = true
		out.Send(core.FinishLabel(m.id))
		return "R2", nil
	case core.KindFinishLabel:
		if !m.done {
			m.leader = msg.Label
			m.ledSet = true
			m.done = true
			out.Send(msg)
		}
		m.halted = true
		return "R3", nil
	default:
		return "R5", nil
	}
}

func (m *racyMachine) Halted() bool { return m.halted }
func (m *racyMachine) Status() core.Status {
	return core.Status{IsLeader: m.isLeader, Done: m.done, Leader: m.leader, LeaderSet: m.ledSet}
}
func (m *racyMachine) StateName() string { return "R" }
func (m *racyMachine) SpaceBits() int    { return 8 }
func (m *racyMachine) Fingerprint() string {
	return "racy " + m.id.String() + " " + m.leader.String()
}

// replayOnlyProtocol wraps a protocol, hiding its Clone method so the
// explorer falls back to prefix replay.
type replayOnlyProtocol struct{ inner core.Protocol }

func (p replayOnlyProtocol) Name() string { return p.inner.Name() + "/replay" }
func (p replayOnlyProtocol) NewMachine(id ring.Label) core.Machine {
	return replayOnlyMachine{p.inner.NewMachine(id)}
}

// replayOnlyMachine forwards everything but deliberately does not expose
// Clone (embedding would promote it, so forward explicitly).
type replayOnlyMachine struct{ m core.Machine }

func (w replayOnlyMachine) Init(out *core.Outbox) string { return w.m.Init(out) }
func (w replayOnlyMachine) Receive(msg core.Message, out *core.Outbox) (string, error) {
	return w.m.Receive(msg, out)
}
func (w replayOnlyMachine) Halted() bool        { return w.m.Halted() }
func (w replayOnlyMachine) Status() core.Status { return w.m.Status() }
func (w replayOnlyMachine) StateName() string   { return w.m.StateName() }
func (w replayOnlyMachine) SpaceBits() int      { return w.m.SpaceBits() }
func (w replayOnlyMachine) Fingerprint() string { return w.m.Fingerprint() }

// TestExploreCloneAndReplayAgree runs the same explorations through the
// clone-based fast path and the replay fallback: identical state counts
// and outcomes are required.
func TestExploreCloneAndReplayAgree(t *testing.T) {
	for _, spec := range []string{"1 2 2", "2 1 3", "1 1 2 2"} {
		r, err := ring.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		k := max(2, r.MaxMultiplicity())
		p, err := core.NewAProtocol(k, r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		fast, err := sim.ExploreAll(r, p, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Cloned {
			t.Fatalf("Ak machines must support cloning")
		}
		slow, err := sim.ExploreAll(r, replayOnlyProtocol{p}, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		if slow.Cloned {
			t.Fatalf("wrapped machines must not be cloneable")
		}
		if fast.States != slow.States || fast.LeaderIndex != slow.LeaderIndex ||
			fast.Messages != slow.Messages || fast.MaxLinkDepth != slow.MaxLinkDepth {
			t.Fatalf("clone and replay explorations disagree on %s: %+v vs %+v", r, fast, slow)
		}
	}
}

// TestCloneIndependence: mutating a clone must not affect the original.
func TestCloneIndependence(t *testing.T) {
	r := ring.Figure1()
	mks := []func() (core.Protocol, error){
		func() (core.Protocol, error) { return core.NewAProtocol(3, r.LabelBits()) },
		func() (core.Protocol, error) { return core.NewStarProtocol(3, r.LabelBits()) },
		func() (core.Protocol, error) { return core.NewBProtocol(3, r.LabelBits()) },
		func() (core.Protocol, error) { return baseline.NewCRProtocol(r.LabelBits()) },
		func() (core.Protocol, error) { return baseline.NewPetersonProtocol(r.LabelBits()) },
		func() (core.Protocol, error) { return baseline.NewKnownNProtocol(r.N(), r.LabelBits()) },
	}
	for _, mk := range mks {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		m := p.NewMachine(1)
		var out core.Outbox
		m.Init(&out)
		out.Drain()
		cl := m.(core.Cloner).Clone()
		if cl.Fingerprint() != m.Fingerprint() {
			t.Fatalf("%s: clone differs immediately: %q vs %q", p.Name(), cl.Fingerprint(), m.Fingerprint())
		}
		before := m.Fingerprint()
		// Drive the clone forward; the original must not move.
		_, _ = cl.Receive(core.Token(2), &out)
		out.Drain()
		if m.Fingerprint() != before {
			t.Fatalf("%s: mutating the clone changed the original", p.Name())
		}
	}
}

// TestExploreStateCap checks the explosion guard.
func TestExploreStateCap(t *testing.T) {
	r := ring.Distinct(4)
	p, err := core.NewAProtocol(2, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.ExploreAll(r, p, 10); err == nil {
		t.Fatal("tiny state cap must trip")
	}
}
