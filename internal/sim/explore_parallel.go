package sim

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ring"
)

// seenShards partitions the visited-fingerprint set so concurrent workers
// rarely contend on the same lock. 64 shards keep the expected queue
// depth per lock below one even at high core counts.
const seenShards = 64

// shardedSeen is a concurrent fingerprint set: insert is atomic per key
// and returns whether the key was new. Keys are routed to shards by a
// per-process random hash (maphash), so no adversarial ring labeling can
// serialize the search onto one lock.
type shardedSeen struct {
	seed   maphash.Seed
	shards [seenShards]struct {
		mu sync.Mutex
		m  map[string]struct{}
		_  [40]byte // pad to a cache line: shard locks must not false-share
	}
}

func newShardedSeen() *shardedSeen {
	s := &shardedSeen{seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].m = make(map[string]struct{})
	}
	return s
}

// insert adds key and reports whether it was absent.
func (s *shardedSeen) insert(key string) bool {
	sh := &s.shards[maphash.String(s.seed, key)%seenShards]
	sh.mu.Lock()
	_, dup := sh.m[key]
	if !dup {
		sh.m[key] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// exploreQueue is an unbounded work queue of configurations with
// completion detection: pending counts configurations that are queued or
// currently being expanded, so pending reaching zero means the whole
// reachable graph has been visited.
type exploreQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []*exploreConfig
	pending int
	err     error
}

func newExploreQueue() *exploreQueue {
	q := &exploreQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues c, accounting it as pending work.
func (q *exploreQueue) push(c *exploreConfig) {
	q.mu.Lock()
	q.pending++
	q.items = append(q.items, c)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until an item is available or the search is over (drained or
// failed); ok is false in the latter case.
func (q *exploreQueue) pop() (*exploreConfig, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.err != nil || (len(q.items) == 0 && q.pending == 0) {
			return nil, false
		}
		if n := len(q.items); n > 0 {
			// LIFO: depth-first expansion keeps the frontier (and thus
			// memory) close to the serial DFS's.
			c := q.items[n-1]
			q.items = q.items[:n-1]
			return c, true
		}
		q.cond.Wait()
	}
}

// finish marks one popped configuration fully expanded.
func (q *exploreQueue) finish() {
	q.mu.Lock()
	q.pending--
	done := q.pending == 0 && len(q.items) == 0
	q.mu.Unlock()
	if done {
		q.cond.Broadcast()
	}
}

// fail aborts the search with err (the first failure wins).
func (q *exploreQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// ExploreAllParallel is ExploreAll fanned out across a worker pool: the
// configuration graph is searched by workers goroutines sharing a
// LIFO work queue, with the visited set sharded across seenShards locks.
// workers ≤ 0 selects runtime.NumCPU(); workers == 1, or machines that
// cannot core.Cloner-deep-copy, fall back to the serial ExploreAll.
//
// The result is schedule-independent: States, Terminals, LeaderIndex,
// Messages and MaxLinkDepth are properties of the reachable configuration
// set, which does not depend on visit order, so parallel runs agree with
// serial runs exactly. The one caveat is error identity on *broken*
// protocols: when several violations exist, which one is reported first
// may vary between runs (the presence of an error never does).
func ExploreAllParallel(r *ring.Ring, p core.Protocol, maxStates, workers int) (*ExploreResult, error) {
	if maxStates <= 0 {
		maxStates = 200_000
	}
	workers = min(defaultExploreWorkers(workers), runtime.NumCPU()*4)
	x := newExplorer(r, p)
	if workers == 1 || !x.canClone() {
		return ExploreAll(r, p, maxStates)
	}

	res := &ExploreResult{LeaderIndex: -1, Messages: -1, Cloned: true}
	seen := newShardedSeen()
	queue := newExploreQueue()
	var (
		states       atomic.Int64
		maxLinkDepth atomic.Int64
		outcomeMu    sync.Mutex
	)
	bumpDepth := func(d int64) {
		for {
			cur := maxLinkDepth.Load()
			if d <= cur || maxLinkDepth.CompareAndSwap(cur, d) {
				return
			}
		}
	}

	// expand visits one configuration: dedup, account, branch.
	expand := func(c *exploreConfig) error {
		if !seen.insert(x.fingerprint(c)) {
			return nil
		}
		if states.Add(1) > int64(maxStates) {
			return fmt.Errorf("sim: exploration exceeded %d states", maxStates)
		}
		for _, l := range c.links {
			bumpDepth(int64(len(l)))
		}
		ms, err := x.moves(c)
		if err != nil {
			return err
		}
		if len(ms) == 0 {
			leader, err := x.terminalOutcome(c)
			if err != nil {
				return err
			}
			outcomeMu.Lock()
			defer outcomeMu.Unlock()
			if res.Terminals == 0 {
				res.LeaderIndex = leader
				res.Messages = c.sends
				res.Terminals = 1
			} else if res.LeaderIndex != leader || res.Messages != c.sends {
				res.Terminals++
				return fmt.Errorf("sim: schedule-dependent outcome: leader p%d/%d msgs vs p%d/%d msgs",
					leader, c.sends, res.LeaderIndex, res.Messages)
			}
			return nil
		}
		for i, mv := range ms {
			next := c
			if i < len(ms)-1 {
				next = x.clone(c) // last branch may consume c itself
			}
			if err := x.apply(next, mv); err != nil {
				return err
			}
			queue.push(next)
		}
		return nil
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c, ok := queue.pop()
				if !ok {
					return
				}
				if err := expand(c); err != nil {
					queue.fail(err)
				}
				queue.finish()
			}
		}()
	}
	queue.push(x.fresh())
	wg.Wait()

	res.States = int(states.Load())
	res.MaxLinkDepth = int(maxLinkDepth.Load())
	if queue.err != nil {
		return res, queue.err
	}
	return res, nil
}

// defaultExploreWorkers resolves the worker-count request without
// importing internal/sweep (sim must stay dependency-light).
func defaultExploreWorkers(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}
