package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/rand"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/trace"
)

// scratchCase pairs a protocol with a ring it can elect on.
type scratchCase struct {
	name   string
	labels []ring.Label
	proto  core.Protocol
}

func scratchCorpus(t *testing.T) []scratchCase {
	t.Helper()
	mk := func(name string, labels []ring.Label, p core.Protocol, err error) scratchCase {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return scratchCase{name: name, labels: labels, proto: p}
	}
	kk := []ring.Label{1, 3, 1, 3, 2, 2, 1, 2} // k = 3, asymmetric
	uniq := []ring.Label{5, 3, 8, 1, 9}        // unique labels
	sym := []ring.Label{3, 3, 3, 3, 3, 3}      // symmetric: IR only
	aProto, errA := core.NewAProtocol(3, 4)
	bProto, errB := core.NewBProtocol(3, 4)
	sProto, errS := core.NewStarProtocol(3, 4)
	crProto, errCR := baseline.NewCRProtocol(4)
	petProto, errPet := baseline.NewPetersonProtocol(4)
	knProto, errKN := baseline.NewKnownNProtocol(len(uniq), 4)
	irProto, errIR := rand.New(len(sym), rand.Alphabet, 2, 0, 0x9e3779b97f4a7c15)
	return []scratchCase{
		mk("Ak", kk, aProto, errA),
		mk("Bk", kk, bProto, errB),
		mk("Astar", kk, sProto, errS),
		mk("ChangRoberts", uniq, crProto, errCR),
		mk("Peterson", uniq, petProto, errPet),
		mk("KnownN", uniq, knProto, errKN),
		mk("ItaiRodeh", sym, irProto, errIR),
	}
}

// sameResult compares two Results field by field. Slices are compared
// element-wise so a nil legacy slice equals an empty arena-backed one
// (BitsByRound starts nil in fresh Results and resliced-to-zero in reused
// ones); everything the accounting theorems talk about must be identical.
func sameResult(t *testing.T, mode string, want, got *sim.Result) {
	t.Helper()
	if want.Protocol != got.Protocol {
		t.Errorf("%s: Protocol = %q, want %q", mode, got.Protocol, want.Protocol)
	}
	if want.N != got.N || want.Steps != got.Steps || want.Actions != got.Actions {
		t.Errorf("%s: N/Steps/Actions = %d/%d/%d, want %d/%d/%d",
			mode, got.N, got.Steps, got.Actions, want.N, want.Steps, want.Actions)
	}
	if want.TimeUnits != got.TimeUnits {
		t.Errorf("%s: TimeUnits = %v, want %v", mode, got.TimeUnits, want.TimeUnits)
	}
	if want.Messages != got.Messages || want.TotalBits != got.TotalBits {
		t.Errorf("%s: Messages/TotalBits = %d/%d, want %d/%d",
			mode, got.Messages, got.TotalBits, want.Messages, want.TotalBits)
	}
	if !reflect.DeepEqual(want.MessagesByKind, got.MessagesByKind) {
		t.Errorf("%s: MessagesByKind = %v, want %v", mode, got.MessagesByKind, want.MessagesByKind)
	}
	if len(want.BitsByRound) != len(got.BitsByRound) {
		t.Errorf("%s: BitsByRound lengths %d vs %d", mode, len(got.BitsByRound), len(want.BitsByRound))
	} else {
		for i := range want.BitsByRound {
			if want.BitsByRound[i] != got.BitsByRound[i] {
				t.Errorf("%s: BitsByRound[%d] = %d, want %d", mode, i, got.BitsByRound[i], want.BitsByRound[i])
			}
		}
	}
	if want.RandDraws != got.RandDraws {
		t.Errorf("%s: RandDraws = %d, want %d", mode, got.RandDraws, want.RandDraws)
	}
	if want.PeakSpaceBits != got.PeakSpaceBits || want.MaxLinkDepth != got.MaxLinkDepth {
		t.Errorf("%s: PeakSpaceBits/MaxLinkDepth = %d/%d, want %d/%d",
			mode, got.PeakSpaceBits, got.MaxLinkDepth, want.PeakSpaceBits, want.MaxLinkDepth)
	}
	if len(want.PeakSpacePerProc) != len(got.PeakSpacePerProc) {
		t.Errorf("%s: PeakSpacePerProc lengths differ", mode)
	} else {
		for i := range want.PeakSpacePerProc {
			if want.PeakSpacePerProc[i] != got.PeakSpacePerProc[i] {
				t.Errorf("%s: PeakSpacePerProc[%d] = %d, want %d", mode, i, got.PeakSpacePerProc[i], want.PeakSpacePerProc[i])
			}
		}
	}
	if want.LeaderIndex != got.LeaderIndex || want.Halted != got.Halted {
		t.Errorf("%s: LeaderIndex/Halted = %d/%t, want %d/%t",
			mode, got.LeaderIndex, got.Halted, want.LeaderIndex, want.Halted)
	}
	if len(want.Statuses) != len(got.Statuses) {
		t.Errorf("%s: Statuses lengths differ", mode)
	} else {
		for i := range want.Statuses {
			if want.Statuses[i] != got.Statuses[i] {
				t.Errorf("%s: Statuses[%d] = %+v, want %+v", mode, i, got.Statuses[i], want.Statuses[i])
			}
		}
	}
}

// TestScratchEquivalence runs every protocol through the legacy engines and
// the arena engines — one Scratch reused across all cases, so machine pools
// are handed from one protocol's concrete type to the next — and requires
// field-identical Results in both modes.
func TestScratchEquivalence(t *testing.T) {
	scr := sim.NewScratch()
	for _, tc := range scratchCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			r, err := ring.New(tc.labels)
			if err != nil {
				t.Fatal(err)
			}
			var opts sim.Options

			wantSync, err := sim.RunSync(r, tc.proto, opts)
			if err != nil {
				t.Fatalf("RunSync: %v", err)
			}
			gotSync, err := sim.RunSyncInto(r, tc.proto, opts, scr)
			if err != nil {
				t.Fatalf("RunSyncInto: %v", err)
			}
			sameResult(t, "sync", wantSync, gotSync)

			wantAsync, err := sim.RunAsync(r, tc.proto, sim.ConstantDelay(1), opts)
			if err != nil {
				t.Fatalf("RunAsync: %v", err)
			}
			gotAsync, err := sim.RunAsyncInto(r, tc.proto, sim.ConstantDelay(1), opts, scr)
			if err != nil {
				t.Fatalf("RunAsyncInto: %v", err)
			}
			sameResult(t, "async", wantAsync, gotAsync)
		})
	}
}

// TestScratchTraceEquivalence pins that a Scratch run with a Sink attached
// produces the exact event stream of the legacy engine — the quick
// accounting path only ever engages when no Sink is present.
func TestScratchTraceEquivalence(t *testing.T) {
	for _, tc := range scratchCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			r, err := ring.New(tc.labels)
			if err != nil {
				t.Fatal(err)
			}
			scr := sim.NewScratch()

			var legacy, arena trace.Mem
			if _, err := sim.RunAsync(r, tc.proto, sim.ConstantDelay(1), sim.Options{Sink: &legacy}); err != nil {
				t.Fatalf("RunAsync: %v", err)
			}
			if _, err := sim.RunAsyncInto(r, tc.proto, sim.ConstantDelay(1), sim.Options{Sink: &arena}, scr); err != nil {
				t.Fatalf("RunAsyncInto: %v", err)
			}
			if len(legacy.Events) != len(arena.Events) {
				t.Fatalf("event counts differ: legacy %d, arena %d", len(legacy.Events), len(arena.Events))
			}
			for i := range legacy.Events {
				if legacy.Events[i] != arena.Events[i] {
					t.Fatalf("event %d differs:\nlegacy %+v\narena  %+v", i, legacy.Events[i], arena.Events[i])
				}
			}
		})
	}
}

// TestScratchRepeatedReuse re-runs one protocol many times through a single
// Scratch and requires every run to reproduce the first — pooled machines
// must re-initialize completely (a partially reset field would drift the
// counts).
func TestScratchRepeatedReuse(t *testing.T) {
	for _, tc := range scratchCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			r, err := ring.New(tc.labels)
			if err != nil {
				t.Fatal(err)
			}
			scr := sim.NewScratch()
			first, err := sim.RunAsyncInto(r, tc.proto, sim.ConstantDelay(1), sim.Options{}, scr)
			if err != nil {
				t.Fatal(err)
			}
			// Copy the aliased fields we compare against before reuse.
			want := *first
			want.Statuses = append([]core.Status(nil), first.Statuses...)
			want.PeakSpacePerProc = append([]int(nil), first.PeakSpacePerProc...)
			want.BitsByRound = append([]int(nil), first.BitsByRound...)
			want.MessagesByKind = map[core.Kind]int{}
			for k, v := range first.MessagesByKind {
				want.MessagesByKind[k] = v
			}
			for run := 0; run < 5; run++ {
				got, err := sim.RunAsyncInto(r, tc.proto, sim.ConstantDelay(1), sim.Options{}, scr)
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				sameResult(t, "reuse", &want, got)
			}
		})
	}
}

// TestScratchShrinkingRing runs a large ring then a smaller one through the
// same Scratch: stale pooled machines beyond the smaller n must not leak
// into the result.
func TestScratchShrinkingRing(t *testing.T) {
	big := []ring.Label{1, 3, 1, 3, 2, 2, 1, 2}
	small := []ring.Label{1, 2, 2}
	p, err := core.NewAProtocol(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	scr := sim.NewScratch()
	for _, labels := range [][]ring.Label{big, small, big, small} {
		r, err := ring.New(labels)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.RunAsync(r, p, sim.ConstantDelay(1), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.RunAsyncInto(r, p, sim.ConstantDelay(1), sim.Options{}, scr)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "shrink", want, got)
	}
}

// TestScratchSyncErrorParity pins that the Into engines report budget
// exhaustion with the legacy engines' exact error text.
func TestScratchSyncErrorParity(t *testing.T) {
	labels := []ring.Label{1, 3, 1, 3, 2, 2, 1, 2}
	r, err := ring.New(labels)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewAProtocol(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{MaxActions: 10}
	scr := sim.NewScratch()

	_, errLegacy := sim.RunSync(r, p, opts)
	_, errArena := sim.RunSyncInto(r, p, opts, scr)
	if errLegacy == nil || errArena == nil || errLegacy.Error() != errArena.Error() {
		t.Fatalf("sync budget errors differ:\nlegacy: %v\narena:  %v", errLegacy, errArena)
	}

	_, errLegacy = sim.RunAsync(r, p, sim.ConstantDelay(1), opts)
	_, errArena = sim.RunAsyncInto(r, p, sim.ConstantDelay(1), opts, scr)
	if errLegacy == nil || errArena == nil || errLegacy.Error() != errArena.Error() {
		t.Fatalf("async budget errors differ:\nlegacy: %v\narena:  %v", errLegacy, errArena)
	}
}

// TestScratchSteadyStateAllocs pins the tentpole claim at the sim layer: a
// warmed Scratch executes whole elections without heap allocation.
func TestScratchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted under -race")
	}
	for _, tc := range scratchCorpus(t) {
		t.Run(tc.name, func(t *testing.T) {
			rr, err := ring.New(tc.labels)
			if err != nil {
				t.Fatal(err)
			}
			scr := sim.NewScratch()
			// Warm up: grow every arena buffer to this workload's size.
			for i := 0; i < 3; i++ {
				if _, err := sim.RunAsyncInto(rr, tc.proto, sim.ConstantDelay(1), sim.Options{}, scr); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				if _, err := sim.RunAsyncInto(rr, tc.proto, sim.ConstantDelay(1), sim.Options{}, scr); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Errorf("RunAsyncInto allocates %.1f/op after warm-up, want 0", allocs)
			}
		})
	}
}
