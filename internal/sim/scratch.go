package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Scratch is a caller-owned arena for RunSyncInto and RunAsyncInto: every
// piece of per-execution state — protocol machines, the event heap, FIFO
// link buffers, the spec checker, the Result itself — lives in the arena
// and is reused across runs, so a long sequence of elections through one
// Scratch settles into zero steady-state heap allocation. This is the
// serving miss path's election kernel (repro.ElectInto, internal/serve).
//
// Ownership rules:
//
//   - A Scratch is single-threaded: at most one run may execute in it at a
//     time. Concurrent elections need one Scratch each (internal/serve
//     keeps one per admission worker).
//   - The *Result returned by an Into run aliases the arena. It is valid
//     until the next run on the same Scratch; callers that retain results
//     must copy the fields they need first.
//   - Machines are pooled by ring index and re-initialized through
//     core.Resetter; protocols whose machines do not implement it are
//     still correct — their machines are simply rebuilt each run.
//
// The zero value is ready to use.
type Scratch struct {
	eng engine

	// machines is the machine pool, indexed by ring position. Its length
	// only grows (the largest n seen), so shrinking rings never discard
	// pooled state.
	machines  []core.Machine
	lastPhase []int
	checker   *spec.Checker

	// namedProto/protoName memoize Protocol.Name() per protocol instance:
	// repro.ElectInto reuses one protocol value across runs, so the
	// display-name formatting happens once, not per election.
	namedProto core.Protocol
	protoName  string

	// Asynchronous-mode state.
	queue     sortedQueue
	lastSched []float64
	inFlight  []int

	// Synchronous-mode state. Like machines, links never shrinks.
	links       []syncLink
	acts        []delivery
	initPending []bool

	out core.Outbox

	ids       []ring.Label
	haltedBuf []bool

	res Result
}

// NewScratch returns an empty arena, equivalent to new(Scratch).
func NewScratch() *Scratch { return &Scratch{} }

// syncLink is one FIFO link with an explicit head index: popping advances
// head instead of reslicing, so the backing array survives for the next
// run (RunSync's `links[from] = links[from][1:]` would lose it).
type syncLink struct {
	buf  []core.Message
	head int
}

// grown returns s with length n, reusing the backing array when it is
// large enough; all n elements are zeroed.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// prepare resets the arena for one execution of p on r and returns the
// embedded engine, configured exactly as newEngine would configure a fresh
// one.
func (scr *Scratch) prepare(r *ring.Ring, p core.Protocol, opts Options) *engine {
	n := r.N()

	if len(scr.machines) < n {
		ms := make([]core.Machine, n)
		copy(ms, scr.machines)
		scr.machines = ms
	}
	for i := 0; i < n; i++ {
		if m := scr.machines[i]; m != nil {
			scr.machines[i] = core.ResetMachineFor(m, p, i, r.Label(i))
		} else {
			scr.machines[i] = core.NewMachineFor(p, i, r.Label(i))
		}
	}

	if scr.checker == nil {
		scr.checker = spec.New(n)
	} else {
		scr.checker.Reset(n)
	}
	scr.lastPhase = grown(scr.lastPhase, n)
	scr.ids = grown(scr.ids, n)
	scr.haltedBuf = grown(scr.haltedBuf, n)

	if scr.namedProto != p {
		scr.namedProto, scr.protoName = p, p.Name()
	}

	res := &scr.res
	kinds := res.MessagesByKind
	if kinds == nil {
		kinds = make(map[core.Kind]int)
	} else {
		clear(kinds)
	}
	*res = Result{
		Protocol:         scr.protoName,
		N:                n,
		MessagesByKind:   kinds,
		BitsByRound:      res.BitsByRound[:0],
		PeakSpacePerProc: grown(res.PeakSpacePerProc, n),
		Statuses:         res.Statuses[:0],
		LeaderIndex:      -1,
	}

	e := &scr.eng
	*e = engine{
		r:         r,
		n:         n,
		labelBits: r.LabelBits(),
		machines:  scr.machines[:n],
		checker:   scr.checker,
		sink:      opts.Sink,
		res:       res,
		lastPhase: scr.lastPhase,
		maxAct:    opts.MaxActions,
		noSpec:    opts.DisableSpec,
		ids:       scr.ids,
		haltedBuf: scr.haltedBuf,
	}
	if e.sink == nil {
		e.sink = trace.Nop{}
	}
	if e.maxAct <= 0 {
		e.maxAct = DefaultMaxActions
	}
	return e
}

// afterActionQuick is afterAction without the trace layer, used by the
// Into runs when no Sink is configured. It preserves every Result-visible
// effect — action count, peak-space tracking, spec observation; the
// skipped work (trace events, phase reconstruction) feeds only Sinks.
func (e *engine) afterActionQuick(i int) error {
	m := e.machines[i]
	e.res.Actions++
	if sp := m.SpaceBits(); sp > e.res.PeakSpacePerProc[i] {
		e.res.PeakSpacePerProc[i] = sp
	}
	if !e.noSpec {
		return e.checker.Observe(i, m.Status())
	}
	return nil
}

// recordSendsQuick is recordSends without per-message trace events. The
// accounting — counts, kinds, bits, rounds, draws — is identical.
func (e *engine) recordSendsQuick(msgs []core.Message) {
	for _, m := range msgs {
		e.res.Messages++
		if int(m.Kind) < len(e.kindCounts) {
			e.kindCounts[m.Kind]++
		} else {
			e.res.MessagesByKind[m.Kind]++
		}
		bits := m.Bits(e.labelBits, e.n)
		e.res.TotalBits += bits
		if round := int(m.Round); round < len(e.res.BitsByRound) {
			e.res.BitsByRound[round] += bits
		} else {
			for len(e.res.BitsByRound) <= round {
				e.res.BitsByRound = append(e.res.BitsByRound, 0)
			}
			e.res.BitsByRound[round] = bits
		}
		if m.Kind == core.KindRandToken && m.Hop == 1 {
			e.res.RandDraws++
		}
	}
}

// sortedQueue is the Into path's event queue: the pending events kept
// fully sorted by (at, seq) in a slice, popped from an advancing head.
// It replaces the legacy binary heap (still used by RunAsync) because
// the miss-path workload is the heap's worst case: sends arrive in
// near-FIFO (at, seq) order, so almost every push lands at the tail —
// a zero-copy append here, but a full sift in the heap — and every heap
// pop sinks the largest element from the root. Insertion keeps the
// exact (at, seq) total order the heap pops in, so delivery sequences
// are identical event for event (the trace-equivalence test pins this);
// an adversarial delay model degrades insertion to a memmove of the
// in-flight window, which the link-depth bound keeps small.
type sortedQueue struct {
	a    []linkItem
	head int
}

func (q *sortedQueue) reset() { q.a = q.a[:0]; q.head = 0 }

func (q *sortedQueue) len() int { return len(q.a) - q.head }

func (q *sortedQueue) push(it linkItem) {
	// Scan for the insertion point from the tail: monotone delay models
	// (the serving path's ConstantDelay) append in one comparison.
	i := len(q.a)
	for i > q.head && it.before(q.a[i-1]) {
		i--
	}
	q.a = append(q.a, linkItem{})
	copy(q.a[i+1:], q.a[i:])
	q.a[i] = it
}

func (q *sortedQueue) pop() linkItem {
	it := q.a[q.head]
	q.a[q.head] = linkItem{} // drop the message reference
	q.head++
	// Compact so the backing array tracks the in-flight window, not the
	// run's total message count. Amortized O(1).
	if q.head == len(q.a) {
		q.reset()
	} else if q.head > 64 && q.head > len(q.a)/2 {
		q.a = q.a[:copy(q.a, q.a[q.head:])]
		q.head = 0
	}
	return it
}

// asyncState is RunAsyncInto's per-run send bookkeeping, a struct (not a
// closure) so the loop body stays allocation-free.
type asyncState struct {
	e         *engine
	q         *sortedQueue
	delay     DelayModel
	drop      func(from, seq int) bool
	seq       int
	lastSched []float64
	inFlight  []int
	quiet     bool
}

// send mirrors RunAsync's send closure exactly: account the messages,
// clamp to FIFO order, push onto the event heap.
func (st *asyncState) send(from int, msgs []core.Message, now float64, step int) {
	if len(msgs) == 0 {
		return
	}
	if st.quiet {
		st.e.recordSendsQuick(msgs)
	} else {
		st.e.recordSends(from, msgs, step, now)
	}
	for _, m := range msgs {
		if st.drop != nil && st.drop(from, st.seq) {
			st.seq++
			continue
		}
		at := now + st.delay.Delay(from, st.seq)
		if at < st.lastSched[from] {
			at = st.lastSched[from]
		}
		st.lastSched[from] = at
		st.q.push(linkItem{at: at, seq: st.seq, from: from, msg: m})
		st.seq++
		st.inFlight[from]++
		if st.inFlight[from] > st.e.res.MaxLinkDepth {
			st.e.res.MaxLinkDepth = st.inFlight[from]
		}
	}
}

// RunAsyncInto is RunAsync executing entirely inside scr: identical
// semantics, identical Result (the equivalence soak in the root package
// pins this for every registry algorithm), but the event heap, machine
// states, delivery bookkeeping, and the Result itself are reused arena
// storage. The returned *Result aliases scr and is valid until the next
// run on it.
func RunAsyncInto(r *ring.Ring, p core.Protocol, delay DelayModel, opts Options, scr *Scratch) (*Result, error) {
	e := scr.prepare(r, p, opts)
	n := e.n

	scr.queue.reset()
	scr.lastSched = grown(scr.lastSched, n)
	scr.inFlight = grown(scr.inFlight, n)
	st := asyncState{
		e:         e,
		q:         &scr.queue,
		delay:     delay,
		drop:      opts.Drop,
		lastSched: scr.lastSched,
		inFlight:  scr.inFlight,
		quiet:     opts.Sink == nil,
	}

	out := &scr.out
	for i := 0; i < n; i++ {
		out.Reset()
		action := e.machines[i].Init(out)
		var err error
		if st.quiet {
			err = e.afterActionQuick(i)
		} else {
			err = e.afterAction(i, action, opInit(), core.Message{}, 0, 0)
		}
		if err != nil {
			return e.res, err
		}
		st.send(i, out.Messages(), 0, 0)
	}

	deliveries := 0
	var now float64
	for st.q.len() > 0 {
		it := st.q.pop()
		now = it.at
		deliveries++
		st.inFlight[it.from]--
		if e.res.Actions+1 > e.maxAct {
			return e.res, fmt.Errorf("%w after %d deliveries", ErrMaxActions, deliveries)
		}
		to := (it.from + 1) % n
		m := e.machines[to]
		if m.Halted() {
			return e.res, fmt.Errorf("sim: message %s delivered to halted process %d at t=%.3f", it.msg, to, now)
		}
		out.Reset()
		action, err := m.Receive(it.msg, out)
		if err != nil {
			return e.res, err
		}
		if st.quiet {
			err = e.afterActionQuick(to)
		} else {
			err = e.afterAction(to, action, opDeliver(), it.msg, deliveries, now)
		}
		if err != nil {
			return e.res, err
		}
		st.send(to, out.Messages(), now, deliveries)
	}

	e.res.Steps = deliveries
	e.res.TimeUnits = now
	if err := e.finalize(true); err != nil {
		return e.res, err
	}
	return e.res, nil
}

// RunSyncInto is RunSync executing entirely inside scr, with the same
// semantics and Result. Link FIFOs use head indices instead of reslicing
// so their backing arrays survive across runs.
func RunSyncInto(r *ring.Ring, p core.Protocol, opts Options, scr *Scratch) (*Result, error) {
	e := scr.prepare(r, p, opts)
	n := e.n
	quiet := opts.Sink == nil

	if len(scr.links) < n {
		ls := make([]syncLink, n)
		copy(ls, scr.links)
		scr.links = ls
	}
	links := scr.links[:n]
	for i := range links {
		links[i].buf = links[i].buf[:0]
		links[i].head = 0
	}
	if cap(scr.initPending) < n {
		scr.initPending = make([]bool, n)
	}
	initPending := scr.initPending[:n]
	for i := range initPending {
		initPending[i] = true
	}
	if cap(scr.acts) < n {
		scr.acts = make([]delivery, 0, n)
	}
	acts := scr.acts[:0]
	out := &scr.out

	step := 0
	for {
		acts = acts[:0]
		for i := 0; i < n; i++ {
			m := e.machines[i]
			from := (i - 1 + n) % n
			l := &links[from]
			switch {
			case initPending[i]:
				acts = append(acts, delivery{proc: i, init: true})
			case l.head < len(l.buf):
				if m.Halted() {
					return e.res, fmt.Errorf("sim: message %s pending at halted process %d", l.buf[l.head], i)
				}
				acts = append(acts, delivery{proc: i, msg: l.buf[l.head], has: true})
			}
		}
		if len(acts) == 0 {
			break
		}
		step++
		if e.res.Actions+len(acts) > e.maxAct {
			return e.res, fmt.Errorf("%w at step %d", ErrMaxActions, step)
		}
		for _, d := range acts {
			if d.has {
				links[(d.proc-1+n)%n].head++
			}
		}
		for _, d := range acts {
			out.Reset()
			var action string
			var err error
			if d.init {
				initPending[d.proc] = false
				action = e.machines[d.proc].Init(out)
			} else {
				action, err = e.machines[d.proc].Receive(d.msg, out)
			}
			if err == nil {
				switch {
				case quiet:
					err = e.afterActionQuick(d.proc)
				case d.init:
					err = e.afterAction(d.proc, action, opInit(), core.Message{}, step, 0)
				default:
					err = e.afterAction(d.proc, action, opDeliver(), d.msg, step, 0)
				}
			}
			if err != nil {
				return e.res, err
			}
			if sent := out.Messages(); len(sent) > 0 {
				if quiet {
					e.recordSendsQuick(sent)
				} else {
					e.recordSends(d.proc, sent, step, 0)
				}
				l := &links[d.proc]
				l.buf = append(l.buf, sent...)
				if depth := len(l.buf) - l.head; depth > e.res.MaxLinkDepth {
					e.res.MaxLinkDepth = depth
				}
			}
		}
	}

	e.res.Steps = step
	e.res.TimeUnits = float64(step)
	linksEmpty := true
	for i := range links {
		if links[i].head < len(links[i].buf) {
			linksEmpty = false
		}
	}
	if err := e.finalize(linksEmpty); err != nil {
		return e.res, err
	}
	return e.res, nil
}
