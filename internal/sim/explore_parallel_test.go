package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/sim"
)

// TestExploreParallelMatchesSerial checks that the worker-pool search and
// the serial DFS agree on every field of the result — the parallel
// explorer visits the same reachable set, so States, Terminals, leader,
// message count and link depth must be identical.
func TestExploreParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		spec string
		k    int
	}{
		{"1 2", 1},
		{"1 2 2", 2},
		{"2 1 3", 1},
		{"3 1 4 2", 1},
		{"1 1 2 2", 2},
	}
	if !testing.Short() {
		cases = append(cases, struct {
			spec string
			k    int
		}{"2 1 2 1 3", 2})
	}
	for _, c := range cases {
		r, err := ring.Parse(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewAProtocol(c.k, r.LabelBits())
		if err != nil {
			t.Fatal(err)
		}
		serial, err := sim.ExploreAll(r, p, 2_000_000)
		if err != nil {
			t.Fatalf("%s: serial: %v", c.spec, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			par, err := sim.ExploreAllParallel(r, p, 2_000_000, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.spec, workers, err)
			}
			if *par != *serial {
				t.Errorf("%s workers=%d: parallel %+v != serial %+v", c.spec, workers, par, serial)
			}
		}
	}
}

// TestExploreParallelStateBudget checks that the maxStates guard fires in
// the parallel search too.
func TestExploreParallelStateBudget(t *testing.T) {
	r := ring.MustNew(3, 1, 4, 2)
	p, err := core.NewAProtocol(1, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.ExploreAllParallel(r, p, 10, 4); err == nil {
		t.Fatal("expected state-budget error")
	}
}

// TestExploreParallelDetectsViolation checks that spec violations still
// surface under concurrency: an ablated Ak threshold elects two leaders
// on [1 1 1 2], and some worker must observe it.
func TestExploreParallelDetectsViolation(t *testing.T) {
	r := ring.MustNew(1, 1, 1, 2)
	p, err := core.NewAProtocol(3, r.LabelBits())
	if err != nil {
		t.Fatal(err)
	}
	p.Threshold = 4 // k+1: unsound (E13's first counterexample family)
	if _, err := sim.ExploreAllParallel(r, p, 2_000_000, 4); err == nil {
		t.Fatal("expected a violation from the ablated threshold")
	}
}
